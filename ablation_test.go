package xseed

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// counter-stacks structure, the HET's zero-entries for kernel false
// positives, and the CARD_THRESHOLD pruning knob. Each reports accuracy or
// size as benchmark metrics so `go test -bench Ablation` quantifies the
// choice.

import (
	"testing"

	"xseed/internal/counterstack"
	"xseed/internal/estimate"
	"xseed/internal/het"
	"xseed/internal/metrics"
	"xseed/internal/workload"
	"xseed/internal/xmldoc"
)

// BenchmarkAblationCounterStacks compares the paper's counter stacks
// against naive recursion-level recomputation (scan the whole path per
// push) over a full Treebank pass — the reason Figure 3's structure exists.
func BenchmarkAblationCounterStacks(b *testing.B) {
	d, err := Generate("treebank", 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	dict := d.doc.Dict()

	b.Run("counterstacks", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := &csSink{cs: counterstack.New[xmldoc.LabelID]()}
			if err := d.doc.Emit(dict, sink); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive-rescan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sink := &naiveLevelSink{}
			if err := d.doc.Emit(dict, sink); err != nil {
				b.Fatal(err)
			}
			if sink.max < 5 {
				b.Fatal("recursion missing")
			}
		}
	})
}

// naiveLevelSink recomputes the recursion level by scanning the whole path
// on every open event: O(depth) per event instead of expected O(1).
type naiveLevelSink struct {
	path []xmldoc.LabelID
	max  int
}

func (s *naiveLevelSink) OpenElement(l xmldoc.LabelID) {
	s.path = append(s.path, l)
	counts := map[xmldoc.LabelID]int{}
	lvl := 0
	for _, x := range s.path {
		counts[x]++
		if counts[x]-1 > lvl {
			lvl = counts[x] - 1
		}
	}
	if lvl > s.max {
		s.max = lvl
	}
}

func (s *naiveLevelSink) CloseElement(l xmldoc.LabelID) {
	s.path = s.path[:len(s.path)-1]
}

// BenchmarkAblationFalsePositiveEntries quantifies the HET's
// zero-cardinality entries for paths the kernel derives but the document
// lacks: complex-path RMSE on DBLP with and without them.
func BenchmarkAblationFalsePositiveEntries(b *testing.B) {
	d, err := Generate("dblp", 0.02, 1)
	if err != nil {
		b.Fatal(err)
	}
	qs := workloadCP(b, d, 200)

	for _, ablate := range []bool{false, true} {
		name := "with-zero-entries"
		if ablate {
			name = "without-zero-entries"
		}
		b.Run(name, func(b *testing.B) {
			tab, _ := het.Precompute(d.doc, d.pt, d.kern, het.PrecomputeOptions{
				MBP:                    1,
				NoFalsePositiveEntries: ablate,
				EstimateOptions:        estimate.Options{ReuseEPT: true},
			})
			est := estimate.New(d.kern, estimate.Options{HET: tab, ReuseEPT: true})
			var rmse float64
			for i := 0; i < b.N; i++ {
				var acc metrics.Accumulator
				for _, q := range qs {
					acc.Add(est.Estimate(q.Path), float64(q.Actual))
				}
				rmse = acc.RMSE()
			}
			b.ReportMetric(rmse, "rmse")
		})
	}
}

// BenchmarkAblationCardThreshold sweeps CARD_THRESHOLD on recursive
// Treebank data: EPT size shrinks sharply while error grows slowly — the
// paper's Section 6.4 heuristic ("this heuristic greatly reduces the size
// of the EPT without causing much error").
func BenchmarkAblationCardThreshold(b *testing.B) {
	d, err := Generate("treebank", 0.02, 1)
	if err != nil {
		b.Fatal(err)
	}
	qs := workloadCP(b, d, 150)

	for _, tc := range []struct {
		name      string
		threshold float64
	}{
		{"t0", 0}, {"t0.5", 0.5}, {"t2", 2}, {"t8", 8},
	} {
		threshold := tc.threshold
		b.Run(tc.name, func(b *testing.B) {
			// ReuseEPT: the sweep compares accuracy and EPT size; without
			// it the t0 setting rebuilds a million-node EPT per query. The
			// node cap keeps t0 finite — its truncation (ept-nodes pinned
			// at the cap) is precisely why the threshold exists.
			est := estimate.New(d.kern, estimate.Options{
				CardThreshold: threshold,
				ReuseEPT:      true,
				MaxEPTNodes:   1 << 16,
			})
			var rmse float64
			var nodes int
			for i := 0; i < b.N; i++ {
				var acc metrics.Accumulator
				for _, q := range qs {
					acc.Add(est.Estimate(q.Path), float64(q.Actual))
				}
				rmse = acc.RMSE()
				nodes = est.LastEPTStats().Nodes
			}
			b.ReportMetric(rmse, "rmse")
			b.ReportMetric(float64(nodes), "ept-nodes")
		})
	}
}

func workloadCP(b *testing.B, d *Document, n int) []workload.Query {
	b.Helper()
	qs := workload.Complex(d.pt, d.ev, workload.Options{
		N: n, Seed: 17, RequireNonEmpty: true,
	})
	if len(qs) == 0 {
		b.Fatal("empty workload")
	}
	return qs
}
