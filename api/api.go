// Package api is the public wire contract of the xseedd estimation API:
// the request, response, and error types every versioned /v1 route
// marshals, shared verbatim by the server (xseed/internal/server) and the
// Go SDK (xseed/client). It has no dependencies beyond the standard
// library and the XPath parser's error type, so optimizer-embedded clients
// and additional transports can reuse it without pulling in the synopsis
// machinery — the xtp binary protocol (docs/PROTOCOL.md) carries exactly
// these types in binary frames.
//
// # Versioning
//
// Every route lives under /v1 (see Routes). The original unversioned paths
// from before the contract was public remain mounted as thin aliases that
// serve identical bodies plus a "Deprecation: true" header and a Link to
// their /v1 successor; new clients should never use them.
//
// # Batch estimates and partial success
//
// POST /v1/synopses/{name}/estimate is batch-first: one request carries N
// queries and the response carries exactly N EstimateItems in request
// order. A query that fails to parse does not fail the batch — the request
// still returns 200 and the failed query's item carries a typed Error
// (CodeParseError, with the byte offset in its ParseDetail) while every
// other item carries its estimate. Whole-request errors (unknown synopsis,
// undecodable body, canceled context) use the non-2xx ErrorResponse
// envelope instead.
package api

import "time"

// SynopsisConfig mirrors the synopsis construction knobs
// (xseed.Config/xseed.HETConfig) for the JSON API.
type SynopsisConfig struct {
	KernelOnly    bool    `json:"kernelOnly,omitempty"`
	FeedbackOnly  bool    `json:"feedbackOnly,omitempty"`
	MBP           int     `json:"mbp,omitempty"`
	BselThreshold float64 `json:"bselThreshold,omitempty"`
	BudgetBytes   int     `json:"budgetBytes,omitempty"`
	CardThreshold float64 `json:"cardThreshold,omitempty"`
	ReuseEPT      bool    `json:"reuseEPT,omitempty"`
}

// CreateRequest builds a synopsis from exactly one source: inline XML, an
// XML file on the server's disk (confined to its -data-dir), a generated
// dataset, or a serialized synopsis file written by `xseed build` or a
// snapshot download.
type CreateRequest struct {
	Name string `json:"name"`

	XML          string  `json:"xml,omitempty"`
	XMLFile      string  `json:"xmlFile,omitempty"`
	Dataset      string  `json:"dataset,omitempty"`
	Factor       float64 `json:"factor,omitempty"`
	Seed         int64   `json:"seed,omitempty"`
	SynopsisFile string  `json:"synopsisFile,omitempty"`

	Config *SynopsisConfig `json:"config,omitempty"`
}

// EstimateRequest carries one query or a batch (Query, if set, is treated
// as the first batch entry). Streaming selects the single-pass matcher
// with automatic per-query fallback.
type EstimateRequest struct {
	Query     string   `json:"query,omitempty"`
	Queries   []string `json:"queries,omitempty"`
	Streaming bool     `json:"streaming,omitempty"`
}

// EstimateItem is the outcome of estimating one query of a batch: either
// an estimate (with cache/matcher provenance) or a typed per-query error —
// never both. Query is the normalized (parsed and re-rendered) form when
// the query parsed, the raw input otherwise.
type EstimateItem struct {
	Query    string  `json:"query"`
	Estimate float64 `json:"estimate"`
	Cached   bool    `json:"cached,omitempty"`
	Streamed bool    `json:"streamed,omitempty"`
	Error    *Error  `json:"error,omitempty"`
}

// EstimateResponse answers an estimate request; Results holds one item per
// query in request order (partial success: see the package comment).
type EstimateResponse struct {
	Results []EstimateItem `json:"results"`
}

// FeedbackRequest records an executed query's actual cardinality
// (self-tuning feedback, paper Figure 1).
type FeedbackRequest struct {
	Query  string  `json:"query"`
	Actual float64 `json:"actual"`
}

// FeedbackItem is one observed (query, actual cardinality) pair of a
// feedback batch.
type FeedbackItem struct {
	Query  string  `json:"query"`
	Actual float64 `json:"actual"`
}

// FeedbackBatchRequest records a batch of executed queries' actual
// cardinalities in one call. The server coalesces the batch into one
// snapshot publication and one group-committed log flush, so it is the
// efficient way to report feedback in bulk.
type FeedbackBatchRequest struct {
	Items []FeedbackItem `json:"items"`
}

// FeedbackBatchItem is one item's outcome: a typed error, or success when
// Error is nil (the observation is absorbed and durable to the store's
// configured discipline).
type FeedbackBatchItem struct {
	Error *Error `json:"error,omitempty"`
}

// FeedbackBatchResponse answers a feedback batch; Results holds one item
// per request entry in request order (partial success, mirroring estimate
// batches).
type FeedbackBatchResponse struct {
	Results []FeedbackBatchItem `json:"results"`
}

// SubtreeRequest applies an incremental document update to the kernel.
type SubtreeRequest struct {
	Op      string   `json:"op"` // "add" or "remove"
	Context []string `json:"context"`
	XML     string   `json:"xml"`
}

// BudgetRequest changes a memory budget at runtime (0 = unlimited).
// Without Tenant it re-targets the fleet-wide budget shared by tenants
// that have no budget of their own; with Tenant it re-targets that
// tenant's private budget. Admin-only (the default tenant's token).
type BudgetRequest struct {
	Bytes  int    `json:"bytes"`
	Tenant string `json:"tenant,omitempty"`
}

// AccuracyStats is the running accuracy a synopsis observed via feedback.
// The q-error quantiles come from the same online histogram the /metrics
// xseed_qerror family exposes (q-error = max(est/actual, actual/est), the
// factor by which the estimate was off); they are bucket upper bounds, and
// zero until the synopsis has received feedback on a metrics-enabled server.
type AccuracyStats struct {
	N          int64   `json:"n"`
	RMSE       float64 `json:"rmse"`
	NRMSE      float64 `json:"nrmse"`
	R2         float64 `json:"r2"`
	MeanActual float64 `json:"meanActual"`
	QErrorP50  float64 `json:"qerrorP50,omitempty"`
	QErrorP90  float64 `json:"qerrorP90,omitempty"`
	QErrorP99  float64 `json:"qerrorP99,omitempty"`
}

// SynopsisInfo is the served view of one registered synopsis.
type SynopsisInfo struct {
	Name           string        `json:"name"`
	Source         string        `json:"source"`
	Created        time.Time     `json:"created"`
	KernelBytes    int           `json:"kernelBytes"`
	HETBytes       int           `json:"hetBytes"`
	TotalBytes     int           `json:"totalBytes"`
	HETResident    int           `json:"hetResident"`
	HETTotal       int           `json:"hetTotal"`
	Estimates      int64         `json:"estimates"`
	Feedbacks      int64         `json:"feedbacks"`
	SubtreeUpdates int64         `json:"subtreeUpdates"`
	Accuracy       AccuracyStats `json:"accuracy"`
}

// CacheStats is a point-in-time view of estimate-cache effectiveness.
// Hits/Misses/HitRate cover estimate-result lookups; PlanHits/PlanMisses
// cover compiled-plan lookups (counted apart, since plans survive the
// mutations that retire every estimate entry). Entries counts both kinds.
// CostSavedNs accumulates the recorded compute cost of every served hit
// (estimates and compiled plans): an estimate of the CPU time the cache has
// saved, and the observable the cost-aware eviction policy optimizes.
type CacheStats struct {
	Entries     int     `json:"entries"`
	Hits        int64   `json:"hits"`
	Misses      int64   `json:"misses"`
	HitRate     float64 `json:"hitRate"`
	PlanHits    int64   `json:"planHits"`
	PlanMisses  int64   `json:"planMisses"`
	CostSavedNs int64   `json:"costSavedNs"`
	Evictions   int64   `json:"evictions"`
}

// RebalanceStats is the /v1/stats view of budget-rebalance progress: Gen is
// the newest plan, AppliedGen the newest applied one; Pending > 0 means
// targets are still in flight to some entries.
type RebalanceStats struct {
	Async      bool   `json:"async"`
	Gen        uint64 `json:"gen"`
	AppliedGen uint64 `json:"appliedGen"`
	Pending    uint64 `json:"pending"`
}

// StoreSynopsisStats is the persistence state of one synopsis. Tenant is
// empty on servers running without -tenants (single-tenant layout).
type StoreSynopsisStats struct {
	Name         string `json:"name"`
	Tenant       string `json:"tenant,omitempty"`
	Seq          uint64 `json:"seq"`
	BaseBytes    int64  `json:"baseBytes"`
	DeltaBytes   int64  `json:"deltaBytes"`
	DeltaRecords int64  `json:"deltaRecords"`
	Compactions  int64  `json:"compactions"`
}

// StoreStats is the durable store's stats payload (absent when the daemon
// runs without -store-dir).
type StoreStats struct {
	Dir      string               `json:"dir"`
	Synopses []StoreSynopsisStats `json:"synopses"`
}

// TenantStats is one tenant's rollup inside /v1/stats, emitted only on
// servers running with -tenants. CacheHitRate covers this tenant's
// estimate-cache lookups; QErrorP50/90/99 aggregate feedback-observed
// q-error across the tenant's synopses (bucket upper bounds, zero until
// the tenant has received feedback on a metrics-enabled server).
type TenantStats struct {
	ID           string  `json:"id"`
	Synopses     int     `json:"synopses"`
	TotalBytes   int     `json:"totalBytes"`
	BudgetBytes  int     `json:"budgetBytes,omitempty"` // 0 = shares the fleet budget
	CacheQuota   int     `json:"cacheQuota,omitempty"`  // max estimate-cache entries (0 = uncapped)
	CacheHits    int64   `json:"cacheHits"`
	CacheMisses  int64   `json:"cacheMisses"`
	CacheHitRate float64 `json:"cacheHitRate"`
	RateLimited  int64   `json:"rateLimited"`
	QErrorP50    float64 `json:"qerrorP50,omitempty"`
	QErrorP90    float64 `json:"qerrorP90,omitempty"`
	QErrorP99    float64 `json:"qerrorP99,omitempty"`
}

// Stats is the server-wide stats payload. On a tenanted server every
// field is scoped to the requesting tenant except Tenants, which the
// admin (default) tenant sees for the whole fleet.
type Stats struct {
	Synopses        []SynopsisInfo `json:"synopses"`
	TotalBytes      int            `json:"totalBytes"`
	AggregateBudget int            `json:"aggregateBudget"`
	Rebalance       RebalanceStats `json:"rebalance"`
	Cache           CacheStats     `json:"cache"`
	Store           *StoreStats    `json:"store,omitempty"`   // nil when not persisting
	Tenants         []TenantStats  `json:"tenants,omitempty"` // only with -tenants
}

// RingNode is one xseedd instance in the cluster partition ring.
type RingNode struct {
	ID   string `json:"id"`             // stable node name from the cluster config
	HTTP string `json:"http"`           // HTTP base address ("host:port")
	XTP  string `json:"xtp,omitempty"`  // xtp listen address (empty = HTTP only)
	Repl string `json:"repl,omitempty"` // replication listen address
	// State is "active" (owns partitions) or "joining" (receiving catch-up
	// replication; flipped to active by the router once it has caught up).
	State string `json:"state"`
}

// Ring node states.
const (
	RingStateActive  = "active"
	RingStateJoining = "joining"
)

// Ring is the cluster partition ring served by GET /v1/cluster/ring: the
// consistent-hash membership clients and nodes route (tenant, name) keys
// by. Epoch increases on every membership or ownership change; a response
// with a higher epoch supersedes every lower one.
type Ring struct {
	Epoch    uint64     `json:"epoch"`
	Replicas int        `json:"replicas"` // standby copies per synopsis
	Nodes    []RingNode `json:"nodes"`
}

// ReplTargetLag is the replication lag one node observes toward one
// standby target: bytes of delta log written locally but not yet acked by
// the target, and the age of the oldest unacked byte.
type ReplTargetLag struct {
	Target  string  `json:"target"`
	Bytes   int64   `json:"bytes"`
	Seconds float64 `json:"seconds"`
}

// ClusterLag is the response of GET /v1/cluster/lag: per-target replication
// lag as seen by the serving node. The router polls it to decide when a
// joining node has caught up enough for the ownership flip.
type ClusterLag struct {
	Node    string          `json:"node"`
	Targets []ReplTargetLag `json:"targets"`
}

// CompactResponse reports a manual compaction sweep.
type CompactResponse struct {
	Compacted []string   `json:"compacted"`
	Store     StoreStats `json:"store"`
}
