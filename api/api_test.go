package api

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"xseed/internal/xpath"
)

// TestErrorCodeRoundTrip proves the acceptance contract: every code maps
// server → HTTP status → client back to the same code, with message and
// structured detail intact.
func TestErrorCodeRoundTrip(t *testing.T) {
	codes := []string{
		CodeBadRequest, CodeParseError, CodeNotFound, CodeConflict,
		CodeCanceled, CodeUnauthorized, CodeQuotaExceeded,
		CodeMoved, CodeUnavailable, CodeInternal,
	}
	for _, code := range codes {
		in := Errorf(code, "boom %s", code)
		if code == CodeParseError {
			in = NewParseError("boom", 7, "???")
		}
		if code == CodeMoved {
			in = NewMovedError("orders", "http://10.0.0.2:8080", 9)
			in.Msg = "boom " + code
		}
		rr := httptest.NewRecorder()
		WriteError(rr, in)
		if rr.Code != in.HTTPStatus() {
			t.Errorf("%s: wrote status %d, want %d", code, rr.Code, in.HTTPStatus())
		}
		out := DecodeErrorBody(rr.Code, rr.Body.Bytes())
		if out.Code != code {
			t.Errorf("%s: round-tripped to code %q", code, out.Code)
		}
		if out.Msg != in.Msg {
			t.Errorf("%s: message %q -> %q", code, in.Msg, out.Msg)
		}
		if code == CodeParseError {
			d, ok := out.ParseDetail()
			if !ok || d.Offset != 7 || d.Token != "???" {
				t.Errorf("parse detail did not survive: %+v ok=%v", d, ok)
			}
		}
		if code == CodeMoved {
			d, ok := out.MovedDetail()
			if !ok || d.Owner != "http://10.0.0.2:8080" || d.Epoch != 9 {
				t.Errorf("moved detail did not survive: %+v ok=%v", d, ok)
			}
		}
	}
}

func TestDecodeErrorBodyFallback(t *testing.T) {
	// A proxy's HTML error page still yields a typed error.
	e := DecodeErrorBody(503, []byte("<html>bad gateway-ish</html>"))
	if e.Code != CodeUnavailable || !strings.Contains(e.Msg, "bad gateway") {
		t.Errorf("fallback = %+v", e)
	}
	if e := DecodeErrorBody(404, nil); e.Code != CodeNotFound || e.Msg == "" {
		t.Errorf("empty-body fallback = %+v", e)
	}
	if e := DecodeErrorBody(418, []byte("teapot")); e.Code != CodeBadRequest {
		t.Errorf("unknown 4xx fallback = %+v", e)
	}
	if e := DecodeErrorBody(502, []byte("x")); e.Code != CodeInternal {
		t.Errorf("5xx fallback = %+v", e)
	}
}

func TestWrapError(t *testing.T) {
	// An XPath parse failure keeps its offset and offending token.
	_, perr := xpath.Parse("/a/b[c]??")
	if perr == nil {
		t.Fatal("expected parse error")
	}
	we := WrapError(perr, CodeBadRequest)
	if we.Code != CodeParseError {
		t.Fatalf("wrapped code = %q", we.Code)
	}
	pe, isParse := perr.(*xpath.ParseError)
	if !isParse {
		t.Fatalf("xpath.Parse returned %T", perr)
	}
	d, ok := we.ParseDetail()
	if !ok || d.Offset != pe.Pos || d.Token == "" {
		t.Fatalf("parse detail = %+v ok=%v, want offset %d", d, ok, pe.Pos)
	}

	// A wrapped *Error passes through unchanged.
	orig := Errorf(CodeNotFound, "nope")
	if got := WrapError(fmt.Errorf("outer: %w", orig), CodeInternal); got != orig {
		t.Errorf("wrapped *Error not unwrapped: %+v", got)
	}

	// Context errors become CodeCanceled.
	if got := WrapError(context.Canceled, CodeInternal); got.Code != CodeCanceled {
		t.Errorf("context.Canceled -> %q", got.Code)
	}
	if got := WrapError(fmt.Errorf("rpc: %w", context.DeadlineExceeded), CodeInternal); got.Code != CodeCanceled {
		t.Errorf("deadline -> %q", got.Code)
	}

	// Anything else takes the fallback code.
	if got := WrapError(fmt.Errorf("weird"), CodeConflict); got.Code != CodeConflict {
		t.Errorf("fallback -> %q", got.Code)
	}
}

// TestReadmeRouteTableInSync keeps api/README.md's generated route table
// identical to the Routes() metadata the server mounts from.
func TestReadmeRouteTableInSync(t *testing.T) {
	data, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), RoutesMarkdown()) {
		t.Fatalf("api/README.md route table is stale; regenerate it from api.RoutesMarkdown():\n%s", RoutesMarkdown())
	}
}

func TestRouteTableShape(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range Routes() {
		// /metrics is the one sanctioned unversioned route: Prometheus
		// convention puts the exposition at exactly that path.
		if !strings.HasPrefix(r.Path, "/v1/") && r.Path != "/metrics" {
			t.Errorf("route %s %s is not versioned", r.Method, r.Path)
		}
		if r.Legacy != "" && !strings.HasPrefix(r.Path, "/v1"+r.Legacy) {
			t.Errorf("legacy alias %s does not prefix-map to %s", r.Legacy, r.Path)
		}
		key := r.Method + " " + r.Path
		if seen[key] {
			t.Errorf("duplicate route %s", key)
		}
		seen[key] = true
	}
}
