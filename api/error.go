package api

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"unicode/utf8"

	"xseed/internal/xpath"
)

// Error codes. The code — not the HTTP status and never the message text —
// is the machine contract: servers map a code to a status with
// (*Error).HTTPStatus and clients recover the code from the response body,
// so it survives the wire round trip exactly. Statuses are a lossy
// projection (several codes share 400); CodeFromStatus exists only as the
// client's fallback when a response carries no parseable error body (a
// proxy error page, a truncated response).
const (
	// CodeBadRequest rejects a malformed or unprocessable request (missing
	// fields, conflicting sources, invalid XML, undecodable JSON).
	CodeBadRequest = "bad_request"

	// CodeParseError rejects an XPath query that does not parse. The error's
	// Detail carries a ParseDetail with the byte offset and offending token.
	CodeParseError = "parse_error"

	// CodeNotFound means the named synopsis (or other resource) is not
	// registered.
	CodeNotFound = "not_found"

	// CodeConflict means the request lost to existing state: the synopsis
	// name is taken, or the operation needs a feature the server runs
	// without (e.g. compaction on a store-less daemon).
	CodeConflict = "conflict"

	// CodeCanceled means the request's context was canceled or timed out
	// before the work completed.
	CodeCanceled = "canceled"

	// CodeUnauthorized rejects a request whose bearer token is missing,
	// unknown, or not permitted to act on the addressed tenant. Only
	// returned by servers running with -tenants; a tokenless request to an
	// untenanted server is never unauthorized.
	CodeUnauthorized = "unauthorized"

	// CodeQuotaExceeded means the request ran into a per-tenant limit
	// (token-bucket rate limit on the estimate/feedback paths). The request
	// was not processed; retrying after a backoff is safe.
	CodeQuotaExceeded = "quota_exceeded"

	// CodeMoved means the addressed synopsis lives on another node of a
	// cluster: this node is not (or no longer) its owner under the current
	// partition ring. The error's Detail carries a MovedDetail naming the
	// owning node and the ring epoch; clients refresh the ring and retry
	// against the named node. The request was not processed.
	CodeMoved = "moved"

	// CodeUnavailable means the server cannot serve the request right now
	// (shutting down, overloaded); the call is safe to retry.
	CodeUnavailable = "unavailable"

	// CodeInternal is an unexpected server-side failure.
	CodeInternal = "internal"
)

// Error is the wire form of every failure the estimation API reports, and
// the error type the client SDK returns for them. Code is machine-readable
// (the constants above), Msg is human-readable, and Detail optionally
// carries structured, code-specific context — for CodeParseError, a
// ParseDetail.
type Error struct {
	Code   string          `json:"code"`
	Msg    string          `json:"message"`
	Detail json.RawMessage `json:"detail,omitempty"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Msg == "" {
		return e.Code
	}
	return e.Code + ": " + e.Msg
}

// Errorf builds an Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Msg: fmt.Sprintf(format, args...)}
}

// HTTPStatus maps the error code onto the HTTP status a server should
// respond with. Unknown codes map to 500.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeParseError:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeCanceled:
		return 499 // client closed request (de-facto standard)
	case CodeUnauthorized:
		return http.StatusUnauthorized
	case CodeQuotaExceeded:
		return http.StatusTooManyRequests
	case CodeMoved:
		return http.StatusMisdirectedRequest
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// CodeFromStatus is the client-side fallback mapping for responses whose
// body carries no decodable Error (proxies, panics). It inverts HTTPStatus
// where that is unambiguous and degrades to CodeBadRequest/CodeInternal for
// the shared statuses.
func CodeFromStatus(status int) string {
	switch status {
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusConflict:
		return CodeConflict
	case 499:
		return CodeCanceled
	case http.StatusUnauthorized:
		return CodeUnauthorized
	case http.StatusTooManyRequests:
		return CodeQuotaExceeded
	case http.StatusMisdirectedRequest:
		return CodeMoved
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		if status >= 400 && status < 500 {
			return CodeBadRequest
		}
		return CodeInternal
	}
}

// ParseDetail is the Detail payload of a CodeParseError: the byte offset
// into the query where parsing stopped and the token found there (empty at
// end of input).
type ParseDetail struct {
	Offset int    `json:"offset"`
	Token  string `json:"token,omitempty"`
}

// NewParseError builds a CodeParseError carrying the offset and token
// structurally in Detail.
func NewParseError(msg string, offset int, token string) *Error {
	detail, _ := json.Marshal(ParseDetail{Offset: offset, Token: token})
	return &Error{Code: CodeParseError, Msg: msg, Detail: detail}
}

// ParseDetail decodes the structured detail of a CodeParseError; ok is
// false for other codes or an undecodable detail.
func (e *Error) ParseDetail() (ParseDetail, bool) {
	if e.Code != CodeParseError || len(e.Detail) == 0 {
		return ParseDetail{}, false
	}
	var d ParseDetail
	if err := json.Unmarshal(e.Detail, &d); err != nil {
		return ParseDetail{}, false
	}
	return d, true
}

// MovedDetail is the Detail payload of a CodeMoved: the HTTP base address
// of the node that owns the addressed synopsis and the partition-ring epoch
// the server routed by. Owner may be empty during a rebalance window when
// the server knows only that it is not the owner.
type MovedDetail struct {
	Owner string `json:"owner,omitempty"`
	Epoch uint64 `json:"epoch,omitempty"`
}

// NewMovedError builds a CodeMoved carrying the owning node and ring epoch
// structurally in Detail.
func NewMovedError(name, owner string, epoch uint64) *Error {
	detail, _ := json.Marshal(MovedDetail{Owner: owner, Epoch: epoch})
	return &Error{
		Code:   CodeMoved,
		Msg:    fmt.Sprintf("synopsis %q is owned by another node", name),
		Detail: detail,
	}
}

// MovedDetail decodes the structured detail of a CodeMoved; ok is false for
// other codes or an undecodable detail.
func (e *Error) MovedDetail() (MovedDetail, bool) {
	if e.Code != CodeMoved || len(e.Detail) == 0 {
		return MovedDetail{}, false
	}
	var d MovedDetail
	if err := json.Unmarshal(e.Detail, &d); err != nil {
		return MovedDetail{}, false
	}
	return d, true
}

// parseErrToken bounds the offending-token excerpt carried in ParseDetail.
const parseErrTokenMax = 24

// WrapError converts an arbitrary error into the wire taxonomy: an *Error
// passes through, an XPath parse error becomes a CodeParseError with its
// offset and offending token preserved structurally, context
// cancellation/expiry becomes CodeCanceled, and anything else gets the
// fallback code.
func WrapError(err error, fallbackCode string) *Error {
	var ae *Error
	if errors.As(err, &ae) {
		return ae
	}
	var pe *xpath.ParseError
	if errors.As(err, &pe) {
		token := pe.Input[min(pe.Pos, len(pe.Input)):]
		if len(token) > parseErrTokenMax {
			// Truncate on a rune boundary so a multibyte query excerpt
			// stays valid UTF-8 through JSON marshaling.
			cut := parseErrTokenMax
			for cut > 0 && !utf8.RuneStart(token[cut]) {
				cut--
			}
			token = token[:cut]
		}
		return NewParseError(pe.Error(), pe.Pos, token)
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return &Error{Code: CodeCanceled, Msg: err.Error()}
	}
	return &Error{Code: fallbackCode, Msg: err.Error()}
}

// ErrorResponse is the JSON envelope every non-2xx response body uses.
type ErrorResponse struct {
	Err *Error `json:"error"`
}

// WriteError writes e as its HTTP status plus the standard JSON envelope.
// It is what the server uses for every error response.
func WriteError(w http.ResponseWriter, e *Error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.HTTPStatus())
	json.NewEncoder(w).Encode(ErrorResponse{Err: e})
}

// DecodeErrorBody recovers the typed error from a non-2xx response body,
// falling back to the status-derived code when the body is not the standard
// envelope. It never returns nil.
func DecodeErrorBody(status int, body []byte) *Error {
	var env ErrorResponse
	if err := json.Unmarshal(body, &env); err == nil && env.Err != nil && env.Err.Code != "" {
		return env.Err
	}
	msg := http.StatusText(status)
	if len(body) > 0 {
		msg = string(body)
	}
	return &Error{Code: CodeFromStatus(status), Msg: msg}
}
