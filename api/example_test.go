package api_test

import (
	"errors"
	"fmt"

	"xseed/api"
)

// Typed error handling is code-first: match on Code, never on message
// text or HTTP status.
func ExampleError() {
	var err error = api.Errorf(api.CodeNotFound, "synopsis %q not found", "auction")

	var apiErr *api.Error
	if errors.As(err, &apiErr) {
		fmt.Println(apiErr.Code == api.CodeNotFound)
		fmt.Println(apiErr.HTTPStatus())
	}
	// Output:
	// true
	// 404
}

// A parse_error carries the failure position structurally; ParseDetail
// recovers it after any number of transport hops.
func ExampleError_ParseDetail() {
	err := api.NewParseError("xpath: parse \"//a[\" at offset 4: empty predicate", 4, "[")

	if d, ok := err.ParseDetail(); ok {
		fmt.Printf("offset %d, token %q\n", d.Offset, d.Token)
	}
	// Output:
	// offset 4, token "["
}

// WrapError turns any error into the typed envelope, passing through
// errors that already carry a code.
func ExampleWrapError() {
	plain := errors.New("disk on fire")
	typed := api.Errorf(api.CodeConflict, "synopsis exists")

	fmt.Println(api.WrapError(plain, api.CodeInternal).Code)
	fmt.Println(api.WrapError(typed, api.CodeInternal).Code)
	// Output:
	// internal
	// conflict
}
