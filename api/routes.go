package api

import (
	"fmt"
	"strings"
)

// Route describes one versioned endpoint of the estimation API: the
// method, the /v1 path pattern, the removed pre-/v1 alias (empty when the
// route never had one), and the wire types it speaks. The server mounts
// its mux from this table, so api/README.md (generated from
// RoutesMarkdown) can never drift from what is actually served.
type Route struct {
	Method   string // HTTP method
	Path     string // versioned pattern, e.g. /v1/synopses/{name}/estimate
	Legacy   string // removed pre-/v1 alias, now a typed 404 ("" = never had one)
	Request  string // request wire type or body ("-" = none)
	Response string // response wire type
	Doc      string // one-line description
}

// Routes is the authoritative endpoint table of API version 1.
func Routes() []Route {
	return []Route{
		{"GET", "/v1/healthz", "/healthz", "-", `"ok"`, "liveness probe"},
		{"GET", "/v1/stats", "/stats", "-", "Stats", "registry, cache, rebalance, and store statistics"},
		{"GET", "/v1/synopses", "/synopses", "-", "[]SynopsisInfo", "list registered synopses"},
		{"POST", "/v1/synopses", "/synopses", "CreateRequest", "SynopsisInfo", "build and register a synopsis from one source"},
		{"GET", "/v1/synopses/{name}", "/synopses/{name}", "-", "SynopsisInfo", "one synopsis's stats"},
		{"DELETE", "/v1/synopses/{name}", "/synopses/{name}", "-", "-", "unregister a synopsis (and drop its persisted state)"},
		{"POST", "/v1/synopses/{name}/estimate", "/synopses/{name}/estimate", "EstimateRequest", "EstimateResponse", "batch cardinality estimates (partial success per query)"},
		{"POST", "/v1/synopses/{name}/feedback", "/synopses/{name}/feedback", "FeedbackRequest", "-", "record an executed query's actual cardinality"},
		{"POST", "/v1/synopses/{name}/feedback:batch", "", "FeedbackBatchRequest", "FeedbackBatchResponse", "record a batch of actual cardinalities (partial success per item)"},
		{"POST", "/v1/synopses/{name}/subtree", "/synopses/{name}/subtree", "SubtreeRequest", "-", "incremental kernel maintenance after a document update"},
		{"GET", "/v1/synopses/{name}/snapshot", "/synopses/{name}/snapshot", "-", "binary stream", "download the serialized synopsis"},
		{"PUT", "/v1/synopses/{name}/snapshot", "/synopses/{name}/snapshot", "binary stream", "SynopsisInfo", "register (or replace) a synopsis from a snapshot"},
		{"GET", "/v1/cluster/ring", "", "-", "Ring", "cluster partition ring: epoch, replica count, node membership"},
		{"GET", "/v1/cluster/lag", "", "-", "ClusterLag", "replication lag this node observes toward each standby target"},
		{"POST", "/v1/admin/budget", "", "BudgetRequest", "RebalanceStats", "re-target the aggregate memory budget (applied asynchronously)"},
		{"POST", "/v1/admin/compact", "", "-", "CompactResponse", "fold delta logs into fresh base snapshots (?synopsis=name for one)"},
		// /metrics is deliberately unversioned: it is operational surface in
		// the standard Prometheus location, not part of the JSON contract.
		{"GET", "/metrics", "", "-", "Prometheus text", "metrics exposition (Prometheus text format): HTTP, estimate-stage, cache, rebalancer, store, and accuracy families"},
	}
}

// RoutesMarkdown renders the route table as the GitHub-flavored markdown
// table embedded in api/README.md; a test keeps the file in sync.
func RoutesMarkdown() string {
	var b strings.Builder
	b.WriteString("| Method | /v1 path | Removed alias | Request | Response | Description |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range Routes() {
		legacy := "—"
		if r.Legacy != "" {
			legacy = "`" + r.Legacy + "`"
		}
		fmt.Fprintf(&b, "| %s | `%s` | %s | %s | %s | %s |\n",
			r.Method, r.Path, legacy, code(r.Request), code(r.Response), r.Doc)
	}
	return b.String()
}

func code(s string) string {
	if s == "-" {
		return "—"
	}
	return "`" + s + "`"
}
