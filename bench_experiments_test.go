package xseed_test

// Experiment benchmarks: one per table and figure of the paper's
// evaluation (Section 6), each regenerating the corresponding rows at a
// reduced scale and logging them (run with -bench . -v to see the tables;
// cmd/xseedbench runs the same experiments at arbitrary scale). They live
// in the external test package because internal/experiments itself links
// against the root xseed package (the unified Estimator interface).

import (
	"bytes"
	"testing"

	"xseed/internal/experiments"
)

// benchCfg keeps experiment benchmarks fast enough for `go test -bench .`;
// use cmd/xseedbench for larger scales.
var benchCfg = experiments.Config{Scale: 0.02, QueriesPerClass: 100, Seed: 1}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		rows, err := experiments.Table2(benchCfg, &buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
		if i == 0 {
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		rows, err := experiments.Table3(benchCfg, &buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
		if i == 0 {
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		rows, err := experiments.Figure5(benchCfg, &buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
		if i == 0 {
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		rows, err := experiments.Figure6(benchCfg, &buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatalf("rows = %d", len(rows))
		}
		if i == 0 {
			b.Log("\n" + buf.String())
		}
	}
}

func BenchmarkSection64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		rows, err := experiments.Section64(benchCfg, &buf)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 5 {
			b.Fatalf("rows = %d", len(rows))
		}
		if i == 0 {
			b.Log("\n" + buf.String())
		}
	}
}
