package xseed

// Micro-benchmarks of the primitive operations (construction, estimation,
// exact evaluation, serialization) that the paper's timing claims rest on.
// The per-table/figure experiment benchmarks live in
// bench_experiments_test.go (external test package).

import (
	"bytes"
	"testing"

	"xseed/internal/counterstack"
	"xseed/internal/estimate"
	"xseed/internal/het"
	"xseed/internal/kernel"
	"xseed/internal/nok"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

// --- Micro-benchmarks -----------------------------------------------------

// benchDoc loads a moderately sized XMark sample shared by the
// micro-benchmarks.
func benchDoc(b *testing.B) *Document {
	b.Helper()
	d, err := Generate("xmark", 0.01, 1)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkKernelConstruction measures Algorithm 1 over the document's
// event stream (the paper's negligible kernel construction time).
func BenchmarkKernelConstruction(b *testing.B) {
	d := benchDoc(b)
	var src xmldoc.Source = docSource{d}
	dict := d.doc.Dict()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernel.Build(src, dict); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(d.NumNodes()), "nodes/op")
}

type docSource struct{ d *Document }

func (s docSource) Emit(dict *xmldoc.Dict, sink xmldoc.Sink) error {
	return s.d.doc.Emit(dict, sink)
}

// BenchmarkEPTBuild measures unfolding the kernel into the expanded path
// tree — the dominant per-estimate cost without caching.
func BenchmarkEPTBuild(b *testing.B) {
	d := benchDoc(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root, st := estimate.BuildEPT(d.kern, estimate.Options{})
		if root == nil || st.Nodes == 0 {
			b.Fatal("empty EPT")
		}
	}
}

// Estimation benchmarks per query class, EPT regenerated per estimate as in
// the paper's timing experiments.
func benchEstimate(b *testing.B, query string) {
	d := benchDoc(b)
	syn, err := BuildSynopsis(d, nil)
	if err != nil {
		b.Fatal(err)
	}
	q := MustParseQuery(query)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn.EstimateQuery(q)
	}
}

func BenchmarkEstimateSP(b *testing.B) {
	benchEstimate(b, "/site/open_auctions/open_auction/bidder")
}

func BenchmarkEstimateBP(b *testing.B) {
	benchEstimate(b, "/site/regions/australia/item[shipping]/location")
}

func BenchmarkEstimateCP(b *testing.B) {
	benchEstimate(b, "//open_auction[bidder/personref]//description")
}

func BenchmarkEstimateRecursiveCP(b *testing.B) {
	d, err := Generate("treebank", 0.005, 1)
	if err != nil {
		b.Fatal(err)
	}
	syn, err := KernelOnly(d, &Config{CardThreshold: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := MustParseQuery("//NP//NP//NN")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn.EstimateQuery(q)
	}
}

// BenchmarkActualEvaluation measures the NoK exact evaluator — the
// denominator of the paper's Section 6.4 time ratio.
func BenchmarkActualEvaluation(b *testing.B) {
	d := benchDoc(b)
	ev := nok.New(d.doc)
	q := xpath.MustParse("//open_auction[bidder/personref]//description")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Count(q)
	}
	b.ReportMetric(float64(d.NumNodes()), "nodes/op")
}

// BenchmarkHETPrecompute1BP measures hyper-edge table pre-computation
// (Table 2's second construction column).
func BenchmarkHETPrecompute1BP(b *testing.B) {
	d := benchDoc(b)
	pt := d.pt
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, _ := het.Precompute(d.doc, pt, d.kern, het.PrecomputeOptions{
			MBP:             1,
			EstimateOptions: estimate.Options{ReuseEPT: true},
		})
		if tab.NumEntries() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTreeSketchBuild measures baseline construction at a 25KB budget.
func BenchmarkTreeSketchBuild(b *testing.B) {
	d := benchDoc(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := BuildTreeSketch(d, 25*1024); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSynopsisSerialize measures WriteTo+ReadSynopsis round trips.
func BenchmarkSynopsisSerialize(b *testing.B) {
	d := benchDoc(b)
	syn, err := BuildSynopsis(d, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := syn.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadSynopsis(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// csSink drives a counter stack from document events.
type csSink struct {
	cs  *counterstack.Stack[xmldoc.LabelID]
	max int
}

func (s *csSink) OpenElement(l xmldoc.LabelID) {
	s.cs.Push(l)
	if lvl := s.cs.Level(); lvl > s.max {
		s.max = lvl
	}
}

func (s *csSink) CloseElement(l xmldoc.LabelID) { s.cs.Pop(l) }

// BenchmarkCounterStackTraversal measures recursion-level bookkeeping over
// a full document pass (the expected-O(1) structure of Figure 3).
func BenchmarkCounterStackTraversal(b *testing.B) {
	d, err := Generate("treebank", 0.005, 1)
	if err != nil {
		b.Fatal(err)
	}
	dict := d.doc.Dict()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink := &csSink{cs: counterstack.New[xmldoc.LabelID]()}
		if err := d.doc.Emit(dict, sink); err != nil {
			b.Fatal(err)
		}
		if sink.max < 5 {
			b.Fatalf("max recursion level %d, want >= 5", sink.max)
		}
	}
	b.ReportMetric(float64(d.NumNodes()), "nodes/op")
}
