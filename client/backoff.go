package client

import (
	"math/rand/v2"
	"time"
)

// defaultBackoffCap bounds a retry sleep regardless of attempt count: a
// long retry budget must not grow into multi-second stalls per attempt.
const defaultBackoffCap = 2 * time.Second

// retryDelay computes the sleep before retry attempt n (n ≥ 1): linear
// base·n, capped, then ±20% jitter. The jitter is the point — without it,
// every client that failed at the same moment (a server restart, a network
// blip) retries at the same moment too, and keeps doing so in lockstep on
// every subsequent attempt; the herd arrives spread over a 40% window
// instead. rnd returns a uniform [0,1) sample (rand.Float64 in production;
// tests inject a deterministic source).
func retryDelay(n int, base, cap time.Duration, rnd func() float64) time.Duration {
	if base <= 0 {
		return 0
	}
	if cap <= 0 {
		cap = defaultBackoffCap
	}
	d := time.Duration(n) * base
	if d > cap {
		d = cap
	}
	d = time.Duration(float64(d) * (0.8 + 0.4*rnd()))
	if d > cap {
		d = cap
	}
	return d
}

// jitter is the production randomness source for retryDelay
// (math/rand/v2's global generator is concurrency-safe and per-goroutine
// sharded, so concurrent retry storms draw independent samples).
func jitter() float64 { return rand.Float64() }
