package client

import (
	"math/rand/v2"
	"testing"
	"time"
)

func TestRetryDelayBoundsAndCap(t *testing.T) {
	const base = 100 * time.Millisecond
	const cap = 2 * time.Second
	for n := 1; n <= 50; n++ {
		for _, r := range []float64{0, 0.25, 0.5, 0.75, 0.999999} {
			d := retryDelay(n, base, cap, func() float64 { return r })
			linear := time.Duration(n) * base
			if linear > cap {
				linear = cap
			}
			lo := time.Duration(float64(linear) * 0.8)
			hi := time.Duration(float64(linear) * 1.2)
			if hi > cap {
				hi = cap
			}
			if d < lo || d > hi {
				t.Fatalf("retryDelay(%d, r=%v) = %v, want in [%v, %v]", n, r, d, lo, hi)
			}
			if d > cap {
				t.Fatalf("retryDelay(%d) = %v exceeds cap %v", n, d, cap)
			}
		}
	}
}

func TestRetryDelayZeroBase(t *testing.T) {
	if d := retryDelay(3, 0, time.Second, func() float64 { return 0.5 }); d != 0 {
		t.Fatalf("zero base delay = %v, want 0", d)
	}
}

func TestRetryDelayDefaultCap(t *testing.T) {
	// cap <= 0 falls back to defaultBackoffCap rather than growing without
	// bound with the attempt count.
	d := retryDelay(1000, time.Second, 0, func() float64 { return 1 - 1e-9 })
	if d > defaultBackoffCap {
		t.Fatalf("uncapped delay = %v, want <= %v", d, defaultBackoffCap)
	}
}

// TestRetryDelayDesynchronizesStorms is the regression the jitter exists
// for: two clients that fail at the same instant (same attempt schedule,
// independent randomness) must not keep retrying in lockstep. Without
// jitter every pairwise delay would be identical; with ±20% jitter the
// schedules separate almost surely.
func TestRetryDelayDesynchronizesStorms(t *testing.T) {
	rndA := rand.New(rand.NewPCG(1, 2))
	rndB := rand.New(rand.NewPCG(3, 4))
	const attempts = 20
	same := 0
	var cumA, cumB time.Duration
	for n := 1; n <= attempts; n++ {
		dA := retryDelay(n, 50*time.Millisecond, 2*time.Second, rndA.Float64)
		dB := retryDelay(n, 50*time.Millisecond, 2*time.Second, rndB.Float64)
		if dA == dB {
			same++
		}
		cumA += dA
		cumB += dB
	}
	if same == attempts {
		t.Fatal("two independent retry storms produced identical schedules — jitter is not being applied")
	}
	// The cumulative wake-up times must drift apart, not just individual
	// sleeps: lockstep herds re-form if totals converge.
	drift := cumA - cumB
	if drift < 0 {
		drift = -drift
	}
	if drift == 0 {
		t.Fatal("cumulative retry schedules are identical")
	}
}
