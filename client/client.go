// Package client is the Go SDK for the xseedd estimation server: a thin,
// dependency-free HTTP client over the public xseed/api wire contract
// (versioned /v1 routes), with connection pooling, per-call
// context.Context, configurable retries on idempotent calls, and batch
// estimate helpers.
//
// A Client bound to a synopsis (Synopsis, or the WithSynopsis option)
// implements xseed.Estimator, so an optimizer built against the interface
// runs unchanged whether its estimates come from an embedded
// xseed.Synopsis or a remote xseedd:
//
//	c, _ := client.New("http://localhost:8080", client.WithSynopsis("auction"))
//	res, err := c.EstimateBatch(ctx, []string{"//open_auction[bidder]/seller"})
//
// Every API failure is returned as an *api.Error whose Code — not the
// HTTP status — is the contract; a query that fails to parse reports the
// byte offset structurally via api.Error.ParseDetail, identically to the
// embedded backend.
//
// For high-frequency estimate traffic the package also speaks xtp, the
// binary protocol an xseedd serves on its -xtp listener: DialXTP returns
// an XTP backend with the same Estimator surface and error taxonomy over
// pipelined length-prefixed frames on one multiplexed connection. See the
// XTP type and docs/PROTOCOL.md. A conformance suite holds the two
// transports to identical observable behavior.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"xseed"
	"xseed/api"
)

// Client talks to one xseedd server. It is safe for concurrent use; the
// zero value is not usable — construct with New.
type Client struct {
	base     string // normalized base URL, no trailing slash
	hc       *http.Client
	synopsis string // bound synopsis for the Estimator methods ("" = unbound)
	token    string // bearer token sent on every request ("" = none)
	tenant   string // tenant ID for partition routing (Cluster only)
	xtpEst   bool   // route estimates over xtp (Cluster only)

	retries    int           // extra attempts for idempotent calls
	backoff    time.Duration // base sleep between attempts (linear, jittered)
	backoffCap time.Duration // upper bound on any one sleep
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transport, TLS, timeouts). The default uses http.DefaultTransport's
// pooling with no overall timeout — deadlines come from each call's ctx.
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetry makes idempotent calls (every GET — including snapshot
// downloads — and estimates, which are read-only by construction) retry
// up to n extra times on transport errors and 502/503/504 responses,
// sleeping backoff, 2*backoff, ... between attempts (context-aware), each
// sleep jittered ±20% and capped (2s default; WithRetryCap changes it) so
// clients that failed together do not retry in lockstep. Non-idempotent
// calls (create, feedback, subtree, snapshot upload, admin) never retry.
func WithRetry(n int, backoff time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = n, backoff }
}

// WithRetryCap bounds any single retry sleep (default 2s): with a long
// retry budget the linear ramp stops growing at the cap instead of
// stretching into multi-second stalls per attempt.
func WithRetryCap(cap time.Duration) Option {
	return func(c *Client) { c.backoffCap = cap }
}

// WithSynopsis binds the client to a synopsis name, enabling the
// xseed.Estimator methods (EstimateBatch, Feedback).
func WithSynopsis(name string) Option { return func(c *Client) { c.synopsis = name } }

// WithToken sends the bearer token on every request as
// "Authorization: Bearer <token>", scoping calls to the token's tenant on
// a multi-tenant server (-tenants). An untenanted server ignores the
// header, so setting a token is always safe; an unknown token fails every
// call with api.CodeUnauthorized.
func WithToken(token string) Option { return func(c *Client) { c.token = token } }

// WithTenantID names the tenant whose synopses the client addresses. Only
// the partition-aware Cluster client consults it — node ownership hashes
// the (tenant, name) store key, so routing must hash the same tenant the
// server resolves from the bearer token. A plain Client ignores it (the
// server alone maps token to tenant). Defaults to the untenanted
// namespace when unset.
func WithTenantID(id string) Option { return func(c *Client) { c.tenant = id } }

// WithXTPEstimates makes a Cluster route estimate batches over each
// owner's xtp listener (binary frames, one pipelined connection per node)
// instead of HTTP. Everything else — create, delete, list, snapshots —
// stays on HTTP. A plain Client ignores it; use DialXTP directly for a
// single-node binary-transport client.
func WithXTPEstimates() Option { return func(c *Client) { c.xtpEst = true } }

// New builds a client for the server at baseURL (e.g.
// "http://10.0.0.7:8080"; a bare "host:port" gets "http://" prefixed).
func New(baseURL string, opts ...Option) (*Client, error) {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parse base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: unsupported scheme %q", u.Scheme)
	}
	c := &Client{
		base:    strings.TrimRight(u.String(), "/"),
		hc:      &http.Client{},
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Synopsis returns a copy of the client bound to the named synopsis; the
// copy shares the connection pool and implements xseed.Estimator.
func (c *Client) Synopsis(name string) *Client {
	bound := *c
	bound.synopsis = name
	return &bound
}

// do runs one API call: marshal in (nil = no body), issue method path,
// decode a 2xx response into out (nil = discard), and map any non-2xx
// response onto *api.Error. Idempotent calls retry per WithRetry. A done
// context always surfaces as the context's error (context.Canceled /
// context.DeadlineExceeded), never as a transport error string.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: marshal request: %w", err)
		}
	}
	attempts := 1
	if idempotent {
		attempts += c.retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retryDelay(attempt, c.backoff, c.backoffCap, jitter)):
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("client: build request: %w", err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		c.authorize(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			lastErr = fmt.Errorf("client: %s %s: %w", method, path, err)
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
		resp.Body.Close()
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			lastErr = fmt.Errorf("client: read response: %w", err)
			continue
		}
		if resp.StatusCode >= 200 && resp.StatusCode < 300 {
			if out == nil || len(data) == 0 {
				return nil
			}
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("client: decode %s %s response: %w", method, path, err)
			}
			return nil
		}
		apiErr := api.DecodeErrorBody(resp.StatusCode, data)
		if retriableStatus(resp.StatusCode) {
			lastErr = apiErr
			continue
		}
		return apiErr
	}
	return lastErr
}

// authorize attaches the configured bearer token, if any.
func (c *Client) authorize(req *http.Request) {
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
}

func retriableStatus(status int) bool {
	switch status {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	case http.StatusMisdirectedRequest:
		// 421 is api.CodeMoved: the synopsis lives on another cluster node.
		// Against a router the retry lands after the router re-reads the
		// ring; against a node, after an ownership flip settles. The
		// partition-aware Cluster client intercepts the typed error first
		// and re-routes instead of blindly retrying.
		return true
	}
	return false
}

func synPath(name, suffix string) string {
	return "/v1/synopses/" + url.PathEscape(name) + suffix
}

// Health checks the server's liveness probe.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil, true)
}

// Stats fetches server-wide registry, cache, rebalance, and store stats.
func (c *Client) Stats(ctx context.Context) (api.Stats, error) {
	var st api.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st, true)
	return st, err
}

// List returns every registered synopsis, sorted by name.
func (c *Client) List(ctx context.Context) ([]api.SynopsisInfo, error) {
	var out []api.SynopsisInfo
	err := c.do(ctx, http.MethodGet, "/v1/synopses", nil, &out, true)
	return out, err
}

// Create builds and registers a synopsis server-side from the request's
// single source.
func (c *Client) Create(ctx context.Context, req api.CreateRequest) (api.SynopsisInfo, error) {
	var info api.SynopsisInfo
	err := c.do(ctx, http.MethodPost, "/v1/synopses", req, &info, false)
	return info, err
}

// Get returns one synopsis's stats.
func (c *Client) Get(ctx context.Context, name string) (api.SynopsisInfo, error) {
	var info api.SynopsisInfo
	err := c.do(ctx, http.MethodGet, synPath(name, ""), nil, &info, true)
	return info, err
}

// Delete unregisters the synopsis and removes its persisted state.
func (c *Client) Delete(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, synPath(name, ""), nil, nil, false)
}

// Estimate runs one estimate request — single query, batch, streaming —
// against the named synopsis, returning the full wire response. Estimates
// are read-only, so the call retries per WithRetry.
func (c *Client) Estimate(ctx context.Context, name string, req api.EstimateRequest) (api.EstimateResponse, error) {
	var resp api.EstimateResponse
	err := c.do(ctx, http.MethodPost, synPath(name, "/estimate"), req, &resp, true)
	return resp, err
}

// Subtree applies an incremental document update to the named synopsis.
func (c *Client) Subtree(ctx context.Context, name string, req api.SubtreeRequest) error {
	return c.do(ctx, http.MethodPost, synPath(name, "/subtree"), req, nil, false)
}

// SnapshotGet downloads the serialized synopsis; the caller must Close the
// reader. Feed it to xseed.ReadSynopsis to rehydrate locally. The download
// is a bodyless GET, so it retries per WithRetry like every other
// idempotent call.
func (c *Client) SnapshotGet(ctx context.Context, name string) (io.ReadCloser, error) {
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(retryDelay(attempt, c.backoff, c.backoffCap, jitter)):
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+synPath(name, "/snapshot"), nil)
		if err != nil {
			return nil, err
		}
		c.authorize(req)
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			apiErr := api.DecodeErrorBody(resp.StatusCode, data)
			if retriableStatus(resp.StatusCode) {
				lastErr = apiErr
				continue
			}
			return nil, apiErr
		}
		return resp.Body, nil
	}
	return nil, lastErr
}

// SnapshotPut registers (or replaces) the named synopsis from a serialized
// snapshot stream — the remote twin of xseed.ReadSynopsis.
func (c *Client) SnapshotPut(ctx context.Context, name string, snapshot io.Reader) (api.SynopsisInfo, error) {
	var info api.SynopsisInfo
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+synPath(name, "/snapshot"), snapshot)
	if err != nil {
		return info, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.authorize(req)
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return info, ctxErr
		}
		return info, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return info, err
	}
	if resp.StatusCode != http.StatusCreated {
		return info, api.DecodeErrorBody(resp.StatusCode, data)
	}
	return info, json.Unmarshal(data, &info)
}

// SetAggregateBudget re-targets the server's fleet-wide memory budget
// (0 lifts it). Budgets apply asynchronously; poll Stats until
// rebalance.appliedGen reaches the returned generation.
func (c *Client) SetAggregateBudget(ctx context.Context, bytes int) (api.RebalanceStats, error) {
	var st api.RebalanceStats
	err := c.do(ctx, http.MethodPost, "/v1/admin/budget", api.BudgetRequest{Bytes: bytes}, &st, false)
	return st, err
}

// Compact folds the named synopsis's delta log into a fresh base snapshot
// (name "" compacts everything with a non-empty log).
func (c *Client) Compact(ctx context.Context, name string) (api.CompactResponse, error) {
	path := "/v1/admin/compact"
	if name != "" {
		path += "?synopsis=" + url.QueryEscape(name)
	}
	var resp api.CompactResponse
	err := c.do(ctx, http.MethodPost, path, nil, &resp, false)
	return resp, err
}

// EstimateBatch implements xseed.Estimator against the bound synopsis:
// one POST, N queries, per-query result-or-error in request order.
func (c *Client) EstimateBatch(ctx context.Context, queries []string) ([]xseed.Result, error) {
	name, err := c.boundSynopsis()
	if err != nil {
		return nil, err
	}
	resp, err := c.Estimate(ctx, name, api.EstimateRequest{Queries: queries})
	if err != nil {
		return nil, err
	}
	return resultsFromItems(resp.Results, len(queries))
}

// resultsFromItems converts wire estimate items into Estimator results,
// enforcing the one-item-per-query contract. Shared by the HTTP and XTP
// backends, so the two transports cannot drift in result shape.
func resultsFromItems(items []api.EstimateItem, nq int) ([]xseed.Result, error) {
	if len(items) != nq {
		return nil, fmt.Errorf("client: server returned %d results for %d queries", len(items), nq)
	}
	out := make([]xseed.Result, len(items))
	for i, it := range items {
		out[i] = xseed.Result{
			Query:    it.Query,
			Estimate: it.Estimate,
			Cached:   it.Cached,
			Streamed: it.Streamed,
		}
		if it.Error != nil {
			out[i].Err = it.Error
		}
	}
	return out, nil
}

// Feedback implements xseed.Estimator against the bound synopsis.
func (c *Client) Feedback(ctx context.Context, query string, actual float64) error {
	name, err := c.boundSynopsis()
	if err != nil {
		return err
	}
	return c.do(ctx, http.MethodPost, synPath(name, "/feedback"), api.FeedbackRequest{Query: query, Actual: actual}, nil, false)
}

// FeedbackBatch implements xseed.Estimator against the bound synopsis: one
// POST carrying every observation, per-item error-or-nil in request order.
func (c *Client) FeedbackBatch(ctx context.Context, items []xseed.FeedbackObs) ([]error, error) {
	name, err := c.boundSynopsis()
	if err != nil {
		return nil, err
	}
	req := api.FeedbackBatchRequest{Items: make([]api.FeedbackItem, len(items))}
	for i, it := range items {
		req.Items[i] = api.FeedbackItem{Query: it.Query, Actual: it.Actual}
	}
	var resp api.FeedbackBatchResponse
	if err := c.do(ctx, http.MethodPost, synPath(name, "/feedback:batch"), req, &resp, false); err != nil {
		return nil, err
	}
	return feedbackErrsFromItems(resp.Results, len(items))
}

// feedbackErrsFromItems converts wire batch-feedback outcomes into the
// Estimator's []error shape, enforcing one outcome per item. Shared by the
// HTTP and XTP backends, so the transports cannot drift.
func feedbackErrsFromItems(results []api.FeedbackBatchItem, n int) ([]error, error) {
	if len(results) != n {
		return nil, fmt.Errorf("client: server returned %d results for %d feedback items", len(results), n)
	}
	errs := make([]error, n)
	for i, res := range results {
		if res.Error != nil {
			errs[i] = res.Error
		}
	}
	return errs, nil
}

func (c *Client) boundSynopsis() (string, error) {
	if c.synopsis == "" {
		return "", fmt.Errorf("client: no synopsis bound (use Synopsis(name) or WithSynopsis)")
	}
	return c.synopsis, nil
}

var _ xseed.Estimator = (*Client)(nil)
