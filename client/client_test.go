package client

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/fixtures"
	"xseed/internal/server"
	"xseed/internal/xpath"
)

// newServerClient mounts a fresh in-memory xseedd on httptest and dials it.
func newServerClient(t testing.TB, opts ...Option) (*server.Server, *Client) {
	t.Helper()
	s, err := server.New(server.Config{CacheCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	c, err := New(ts.URL, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

func TestClientCreateEstimateFeedback(t *testing.T) {
	_, c := newServerClient(t)
	ctx := context.Background()

	info, err := c.Create(ctx, api.CreateRequest{Name: "fig2", XML: fixtures.PaperFigure2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "fig2" || info.KernelBytes <= 0 {
		t.Fatalf("create info = %+v", info)
	}

	// Duplicate create carries the typed conflict code.
	_, err = c.Create(ctx, api.CreateRequest{Name: "fig2", XML: fixtures.PaperFigure2})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeConflict {
		t.Fatalf("duplicate create error = %v", err)
	}

	// Estimator-interface batch against the bound synopsis.
	syn := c.Synopsis("fig2")
	res, err := syn.EstimateBatch(ctx, []string{"/a/c/s", "//s//p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Err != nil || res[0].Estimate <= 0 || res[1].Estimate <= 0 {
		t.Fatalf("batch = %+v", res)
	}

	// Feedback tunes the synopsis; the next estimate is exact.
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	actual, err := doc.Count("/a/c/s")
	if err != nil {
		t.Fatal(err)
	}
	if err := syn.Feedback(ctx, "/a/c/s", float64(actual)); err != nil {
		t.Fatal(err)
	}
	est, err := xseed.Estimate(ctx, syn, "/a/c/s")
	if err != nil {
		t.Fatal(err)
	}
	if est != float64(actual) {
		t.Fatalf("post-feedback estimate = %v, want %d", est, actual)
	}

	// Management surface: list, get, stats, delete, then typed not-found.
	if list, err := c.List(ctx); err != nil || len(list) != 1 {
		t.Fatalf("list = %+v, %v", list, err)
	}
	if _, err := c.Get(ctx, "fig2"); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx)
	if err != nil || len(st.Synopses) != 1 || st.Synopses[0].Feedbacks != 1 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
	if err := c.Delete(ctx, "fig2"); err != nil {
		t.Fatal(err)
	}
	_, err = c.Get(ctx, "fig2")
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Fatalf("get after delete = %v", err)
	}
}

// TestClientParseErrorOffsetRoundTrip is the satellite contract: a bad
// query's parse offset reaches the SDK caller structurally, identical to
// what the embedded parser reports.
func TestClientParseErrorOffsetRoundTrip(t *testing.T) {
	_, c := newServerClient(t)
	ctx := context.Background()
	if _, err := c.Create(ctx, api.CreateRequest{Name: "fig2", XML: fixtures.PaperFigure2}); err != nil {
		t.Fatal(err)
	}

	const bogus = "/a/c[s]trailing garbage"
	_, perr := xpath.Parse(bogus)
	pe, ok := perr.(*xpath.ParseError)
	if !ok {
		t.Fatalf("fixture query parsed; want error, got %T", perr)
	}

	res, err := c.Synopsis("fig2").EstimateBatch(ctx, []string{"/a/c/s", bogus})
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Err != nil || res[0].Estimate <= 0 {
		t.Fatalf("good query = %+v", res[0])
	}
	var apiErr *api.Error
	if !errors.As(res[1].Err, &apiErr) || apiErr.Code != api.CodeParseError {
		t.Fatalf("bad query error = %v", res[1].Err)
	}
	d, ok := apiErr.ParseDetail()
	if !ok {
		t.Fatalf("no parse detail on %+v", apiErr)
	}
	if d.Offset != pe.Pos {
		t.Errorf("offset over the wire = %d, embedded parser reports %d", d.Offset, pe.Pos)
	}
	if d.Token == "" {
		t.Error("offending token lost in transit")
	}

	// The local adapter reports the identical typed error for the same
	// query: one error-handling path for both backends.
	doc, _ := xseed.ParseXMLString(fixtures.PaperFigure2)
	syn, _ := xseed.BuildSynopsis(doc, nil)
	lres, err := xseed.NewLocalEstimator(syn).EstimateBatch(ctx, []string{bogus})
	if err != nil {
		t.Fatal(err)
	}
	var lerr *api.Error
	if !errors.As(lres[0].Err, &lerr) || lerr.Code != api.CodeParseError {
		t.Fatalf("local adapter error = %v", lres[0].Err)
	}
	ld, _ := lerr.ParseDetail()
	if ld.Offset != d.Offset {
		t.Errorf("local offset %d != remote offset %d", ld.Offset, d.Offset)
	}
}

// TestClientCancellation is the acceptance contract: a canceled context
// returns context.Canceled from the SDK — never a hung call or an opaque
// transport error.
func TestClientCancellation(t *testing.T) {
	_, c := newServerClient(t)
	if _, err := c.Create(context.Background(), api.CreateRequest{Name: "fig2", XML: fixtures.PaperFigure2}); err != nil {
		t.Fatal(err)
	}

	// Pre-canceled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Synopsis("fig2").EstimateBatch(ctx, []string{"/a/c/s"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled batch = %v, want context.Canceled", err)
	}

	// A server that never answers: the deadline fires instead of hanging.
	hang := make(chan struct{})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-hang:
		case <-r.Context().Done():
		}
	}))
	defer slow.Close()
	defer close(hang)
	sc, err := New(slow.URL, WithSynopsis("x"))
	if err != nil {
		t.Fatal(err)
	}
	tctx, tcancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer tcancel()
	start := time.Now()
	_, err = sc.EstimateBatch(tctx, []string{"/a"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung-server batch = %v, want context.DeadlineExceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancellation did not abort the in-flight call")
	}
}

// TestClientRetry: idempotent calls survive transient 503s; non-idempotent
// calls never retry.
func TestClientRetry(t *testing.T) {
	var gets, posts atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			if gets.Add(1) <= 2 {
				api.WriteError(w, api.Errorf(api.CodeUnavailable, "warming up"))
				return
			}
			w.Header().Set("Content-Type", "text/plain")
			w.Write([]byte("ok\n"))
		default:
			posts.Add(1)
			api.WriteError(w, api.Errorf(api.CodeUnavailable, "nope"))
		}
	}))
	defer backend.Close()

	c, err := New(backend.URL, WithRetry(3, time.Millisecond), WithSynopsis("x"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("health with retries = %v", err)
	}
	if got := gets.Load(); got != 3 {
		t.Errorf("GET attempts = %d, want 3", got)
	}

	err = c.Feedback(context.Background(), "/a", 1)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("feedback error = %v", err)
	}
	if got := posts.Load(); got != 1 {
		t.Errorf("non-idempotent POST attempts = %d, want 1 (no retry)", got)
	}
}

func TestClientSnapshotRoundTrip(t *testing.T) {
	_, c := newServerClient(t)
	ctx := context.Background()
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if _, err := syn.WriteTo(&blob); err != nil {
		t.Fatal(err)
	}
	info, err := c.SnapshotPut(ctx, "uploaded", &blob)
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "uploaded" {
		t.Fatalf("snapshot put info = %+v", info)
	}

	// Download it back and prove the local rehydration estimates identically
	// to the served copy.
	rc, err := c.SnapshotGet(ctx, "uploaded")
	if err != nil {
		t.Fatal(err)
	}
	back, err := xseed.ReadSynopsis(rc)
	rc.Close()
	if err != nil {
		t.Fatal(err)
	}
	local := xseed.NewLocalEstimator(back)
	remote := c.Synopsis("uploaded")
	for _, q := range []string{"/a/c/s", "//s//p", "/a/c/s[p]/t"} {
		le, err := xseed.Estimate(ctx, local, q)
		if err != nil {
			t.Fatal(err)
		}
		re, err := xseed.Estimate(ctx, remote, q)
		if err != nil {
			t.Fatal(err)
		}
		if le != re {
			t.Errorf("%s: local %v != remote %v", q, le, re)
		}
	}
}

// BenchmarkClientEstimateBatch measures the SDK's batch path end to end
// over HTTP loopback (100-query batches, warm server cache) — the number
// an optimizer embedding the client should budget against, wired into
// BENCH_ci.json.
func BenchmarkClientEstimateBatch(b *testing.B) {
	s, c := newServerClient(b)
	ctx := context.Background()
	if _, err := c.Create(ctx, api.CreateRequest{Name: "xmark", Dataset: "xmark", Factor: 0.005, Seed: 1}); err != nil {
		b.Fatal(err)
	}
	_ = s
	queries := make([]string, 100)
	base := []string{"/site/open_auctions/open_auction/bidder", "//item[shipping]/location", "//person", "/site/regions//item"}
	for i := range queries {
		queries[i] = base[i%len(base)]
	}
	syn := c.Synopsis("xmark")
	if _, err := syn.EstimateBatch(ctx, queries); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := syn.EstimateBatch(ctx, queries)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(queries) {
			b.Fatalf("results = %d", len(res))
		}
	}
	b.ReportMetric(float64(len(queries)), "queries/op")
}
