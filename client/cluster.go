package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/cluster"
	"xseed/internal/store"
)

// Cluster is the partition-aware client for a distributed xseed
// deployment: it fetches the partition ring from a seed (the router or
// any node), hashes each synopsis to its owning node exactly as the
// servers do, and talks to owners directly — the router never sits on
// the data path. On a typed moved error (an ownership flip mid-call,
// e.g. during a rebalance or failover) it follows the error's owner
// hint, refreshes the ring, and retries with the same jittered, capped
// backoff schedule as Client — so a rebalance costs a redirect, not a
// failure.
//
//	cl, _ := client.NewCluster([]string{"http://10.0.0.5:7070"},
//	    client.WithRetry(5, 100*time.Millisecond))
//	defer cl.Close()
//	res, err := cl.Synopsis("auction").EstimateBatch(ctx, queries)
//
// Estimates ride HTTP by default; WithXTPEstimates switches them to each
// owner's xtp listener (one pipelined connection per node). All other
// calls stay on HTTP. A Cluster is safe for concurrent use.
type Cluster struct {
	seeds []string
	proto *Client // carries the shared options; never issues requests itself

	mu   sync.Mutex
	ring *cluster.Ring      // nil until the first successful fetch
	cs   map[string]*Client // per-node HTTP clients, keyed by base URL
	xs   map[string]*XTP    // per-node xtp clients, keyed by addr
}

// NewCluster builds a cluster client from one or more seed base URLs —
// the router's address and/or any node addresses; every node serves the
// same ring. Options are the plain Client options: WithToken,
// WithTenantID (required for routing when the token maps to a non-default
// tenant), WithRetry/WithRetryCap, WithHTTPClient, WithXTPEstimates.
// The ring is fetched lazily on first use; call Refresh to fail fast.
func NewCluster(seeds []string, opts ...Option) (*Cluster, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("client: NewCluster needs at least one seed URL")
	}
	proto := &Client{hc: &http.Client{}, backoff: 100 * time.Millisecond}
	for _, o := range opts {
		o(proto)
	}
	cl := &Cluster{
		proto: proto,
		cs:    make(map[string]*Client),
		xs:    make(map[string]*XTP),
	}
	for _, s := range seeds {
		if !strings.Contains(s, "://") {
			s = "http://" + s
		}
		cl.seeds = append(cl.seeds, strings.TrimRight(s, "/"))
	}
	return cl, nil
}

// Close releases every per-node xtp connection. HTTP clients share the
// standard pooled transport and need no teardown.
func (cl *Cluster) Close() error {
	cl.mu.Lock()
	xs := cl.xs
	cl.xs = make(map[string]*XTP)
	cl.mu.Unlock()
	var first error
	for _, x := range xs {
		if err := x.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Refresh fetches the partition ring from the seeds, keeping the highest
// epoch seen. It is called automatically on first use and after moved /
// unavailable errors; call it directly to fail fast at startup.
func (cl *Cluster) Refresh(ctx context.Context) error {
	var lastErr error
	for _, seed := range cl.seeds {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, seed+"/v1/cluster/ring", nil)
		if err != nil {
			lastErr = err
			continue
		}
		if cl.proto.token != "" {
			req.Header.Set("Authorization", "Bearer "+cl.proto.token)
		}
		resp, err := cl.proto.hc.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = api.DecodeErrorBody(resp.StatusCode, data)
			continue
		}
		var r api.Ring
		if err := json.Unmarshal(data, &r); err != nil {
			lastErr = fmt.Errorf("client: decode ring from %s: %w", seed, err)
			continue
		}
		cl.adoptRing(r)
	}
	cl.mu.Lock()
	ok := cl.ring != nil
	cl.mu.Unlock()
	if ok {
		return nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("client: no seed returned a ring")
	}
	return lastErr
}

// adoptRing installs r unless a newer epoch is already held — seeds are
// polled in order and a lagging node must not roll the view back.
func (cl *Cluster) adoptRing(r api.Ring) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.ring != nil && r.Epoch <= cl.ring.Epoch {
		return
	}
	cl.ring = cluster.NewRing(r)
}

// Ring returns the client's current view of the partition ring; ok is
// false before the first successful fetch.
func (cl *Cluster) Ring() (api.Ring, bool) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.ring == nil {
		return api.Ring{}, false
	}
	return cl.ring.Ring, true
}

// routingKey is the store key ownership hashes: the configured tenant's
// namespace, or the untenanted default.
func (cl *Cluster) routingKey(name string) string {
	t := cl.proto.tenant
	if t == "" {
		t = store.DefaultTenant
	}
	return store.Key(t, name)
}

// owner resolves name's owning node under the current ring, fetching the
// ring first if none is held yet.
func (cl *Cluster) owner(ctx context.Context, name string) (api.RingNode, error) {
	cl.mu.Lock()
	r := cl.ring
	cl.mu.Unlock()
	if r == nil {
		if err := cl.Refresh(ctx); err != nil {
			return api.RingNode{}, err
		}
		cl.mu.Lock()
		r = cl.ring
		cl.mu.Unlock()
	}
	n, ok := r.Owner(cl.routingKey(name))
	if !ok {
		return api.RingNode{}, api.Errorf(api.CodeUnavailable, "cluster has no active nodes")
	}
	return n, nil
}

// nodeClient returns the cached HTTP client for a node base URL. The
// per-node clients never retry internally: the Cluster loop owns
// retries, because a retry must be allowed to re-route.
func (cl *Cluster) nodeClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	cl.mu.Lock()
	defer cl.mu.Unlock()
	c, ok := cl.cs[base]
	if !ok {
		bound := *cl.proto
		bound.base = base
		bound.retries = 0
		c = &bound
		cl.cs[base] = c
	}
	return c
}

// nodeXTP returns the cached xtp client for a node's xtp address,
// dialing on first use.
func (cl *Cluster) nodeXTP(addr string) (*XTP, error) {
	cl.mu.Lock()
	x, ok := cl.xs[addr]
	cl.mu.Unlock()
	if ok {
		return x, nil
	}
	var opts []XTPOption
	if cl.proto.token != "" {
		opts = append(opts, WithXTPToken(cl.proto.token))
	}
	x, err := DialXTP(addr, opts...)
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if prev, ok := cl.xs[addr]; ok {
		cl.mu.Unlock()
		x.Close()
		return prev, nil
	}
	cl.xs[addr] = x
	cl.mu.Unlock()
	return x, nil
}

// doRouted runs fn against name's owner, retrying with re-routing: a
// typed moved error redirects the next attempt to the node the error
// names (and refreshes the ring, so the attempt after that routes right
// from the hash); unavailable and transport errors drop back to ring
// routing after a refresh. Attempts beyond the first sleep the same
// jittered, capped backoff as Client. Non-retryable API errors (parse
// errors, not found, unauthorized) return immediately.
func (cl *Cluster) doRouted(ctx context.Context, name string, fn func(c *Client) error) error {
	attempts := 1 + cl.proto.retries
	var override string // owner base URL from a moved hint
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retryDelay(attempt, cl.proto.backoff, cl.proto.backoffCap, jitter)):
			}
		}
		var c *Client
		if override != "" {
			c = cl.nodeClient(override)
		} else {
			n, err := cl.owner(ctx, name)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return ctxErr
				}
				lastErr = err
				continue
			}
			c = cl.nodeClient(n.HTTP)
		}
		err := fn(c)
		if err == nil {
			return nil
		}
		var ae *api.Error
		switch {
		case errors.As(err, &ae) && ae.Code == api.CodeMoved:
			// Ownership flipped under us. Follow the hint for the next
			// attempt and refresh the ring in the background of the backoff
			// so the attempt after next routes from the hash again — if two
			// nodes point at each other (a desynced rebalance window), the
			// refreshed ring breaks the cycle instead of ping-ponging.
			override = ""
			if d, ok := ae.MovedDetail(); ok && d.Owner != "" {
				override = d.Owner
			}
			cl.Refresh(ctx)
		case errors.As(err, &ae) && ae.Code == api.CodeUnavailable:
			override = ""
			cl.Refresh(ctx)
		case errors.As(err, &ae):
			return err // typed and not retryable
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			override = "" // transport-level failure: re-resolve the owner
			cl.Refresh(ctx)
		}
		lastErr = err
	}
	return lastErr
}

// Health probes any reachable node (the first active ring member).
func (cl *Cluster) Health(ctx context.Context) error {
	return cl.doRouted(ctx, "", func(c *Client) error { return c.Health(ctx) })
}

// Create registers a synopsis on its owning node, routed by the
// request's name.
func (cl *Cluster) Create(ctx context.Context, req api.CreateRequest) (api.SynopsisInfo, error) {
	var info api.SynopsisInfo
	err := cl.doRouted(ctx, req.Name, func(c *Client) error {
		var err error
		info, err = c.Create(ctx, req)
		return err
	})
	return info, err
}

// Get returns one synopsis's stats from its owner.
func (cl *Cluster) Get(ctx context.Context, name string) (api.SynopsisInfo, error) {
	var info api.SynopsisInfo
	err := cl.doRouted(ctx, name, func(c *Client) error {
		var err error
		info, err = c.Get(ctx, name)
		return err
	})
	return info, err
}

// Delete removes the synopsis from its owner (replication propagates the
// delete to standbys).
func (cl *Cluster) Delete(ctx context.Context, name string) error {
	return cl.doRouted(ctx, name, func(c *Client) error { return c.Delete(ctx, name) })
}

// List merges every active node's synopsis listing into one sorted
// slice. Nodes list only the synopses they own (standby replicas are
// hidden), so the merge is duplicate-free by construction.
func (cl *Cluster) List(ctx context.Context) ([]api.SynopsisInfo, error) {
	cl.mu.Lock()
	r := cl.ring
	cl.mu.Unlock()
	if r == nil {
		if err := cl.Refresh(ctx); err != nil {
			return nil, err
		}
		cl.mu.Lock()
		r = cl.ring
		cl.mu.Unlock()
	}
	var out []api.SynopsisInfo
	for _, n := range r.Nodes {
		if n.State != api.RingStateActive {
			continue
		}
		part, err := cl.nodeClient(n.HTTP).List(ctx)
		if err != nil {
			return nil, fmt.Errorf("client: list from node %s: %w", n.ID, err)
		}
		out = append(out, part...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Estimate runs one estimate request against the named synopsis on its
// owning node, re-routing on moved per doRouted.
func (cl *Cluster) Estimate(ctx context.Context, name string, req api.EstimateRequest) (api.EstimateResponse, error) {
	var resp api.EstimateResponse
	err := cl.doRouted(ctx, name, func(c *Client) error {
		var err error
		resp, err = c.Estimate(ctx, name, req)
		return err
	})
	return resp, err
}

// Synopsis binds the cluster client to a synopsis name. The binding
// implements xseed.Estimator, so an optimizer built against the
// interface runs unchanged against a sharded deployment.
func (cl *Cluster) Synopsis(name string) *ClusterSynopsis {
	return &ClusterSynopsis{cl: cl, name: name}
}

// ClusterSynopsis is a Cluster bound to one synopsis: the partition-aware
// xseed.Estimator.
type ClusterSynopsis struct {
	cl   *Cluster
	name string
}

// EstimateBatch implements xseed.Estimator: the batch goes whole to the
// synopsis's owning node (a batch addresses one synopsis, so it never
// splits), over xtp when the cluster was built WithXTPEstimates, HTTP
// otherwise. Moved redirects re-route per doRouted either way.
func (s *ClusterSynopsis) EstimateBatch(ctx context.Context, queries []string) ([]xseed.Result, error) {
	var out []xseed.Result
	if s.cl.proto.xtpEst {
		err := s.cl.doRoutedXTP(ctx, s.name, func(x *XTP) error {
			var err error
			out, err = x.Synopsis(s.name).EstimateBatch(ctx, queries)
			return err
		})
		return out, err
	}
	err := s.cl.doRouted(ctx, s.name, func(c *Client) error {
		resp, err := c.Estimate(ctx, s.name, api.EstimateRequest{Queries: queries})
		if err != nil {
			return err
		}
		out, err = resultsFromItems(resp.Results, len(queries))
		return err
	})
	return out, err
}

// Feedback implements xseed.Estimator against the owning node, over HTTP
// (feedback is not latency-critical enough to justify the xtp window
// machinery per node).
func (s *ClusterSynopsis) Feedback(ctx context.Context, query string, actual float64) error {
	return s.cl.doRouted(ctx, s.name, func(c *Client) error {
		return c.do(ctx, http.MethodPost, synPath(s.name, "/feedback"),
			api.FeedbackRequest{Query: query, Actual: actual}, nil, false)
	})
}

// FeedbackBatch implements xseed.Estimator against the synopsis owner; the
// whole batch routes to one node so it rides a single group-commit flush.
func (s *ClusterSynopsis) FeedbackBatch(ctx context.Context, items []xseed.FeedbackObs) ([]error, error) {
	req := api.FeedbackBatchRequest{Items: make([]api.FeedbackItem, len(items))}
	for i, it := range items {
		req.Items[i] = api.FeedbackItem{Query: it.Query, Actual: it.Actual}
	}
	var resp api.FeedbackBatchResponse
	err := s.cl.doRouted(ctx, s.name, func(c *Client) error {
		return c.do(ctx, http.MethodPost, synPath(s.name, "/feedback:batch"), req, &resp, false)
	})
	if err != nil {
		return nil, err
	}
	return feedbackErrsFromItems(resp.Results, len(items))
}

// doRoutedXTP is doRouted over the binary transport: resolve the owner,
// run fn against its xtp client, re-route on moved / unavailable /
// transport errors. A moved hint names the owner's HTTP base, so the
// hinted node is resolved back to its ring entry to find the xtp
// address.
func (cl *Cluster) doRoutedXTP(ctx context.Context, name string, fn func(x *XTP) error) error {
	attempts := 1 + cl.proto.retries
	var overrideXTP string // xtp addr resolved from a moved hint
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(retryDelay(attempt, cl.proto.backoff, cl.proto.backoffCap, jitter)):
			}
		}
		addr := overrideXTP
		if addr == "" {
			n, err := cl.owner(ctx, name)
			if err != nil {
				if ctxErr := ctx.Err(); ctxErr != nil {
					return ctxErr
				}
				lastErr = err
				continue
			}
			if n.XTP == "" {
				return api.Errorf(api.CodeUnavailable, "node %s serves no xtp listener", n.ID)
			}
			addr = n.XTP
		}
		x, err := cl.nodeXTP(addr)
		if err != nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return ctxErr
			}
			overrideXTP = ""
			cl.Refresh(ctx)
			lastErr = err
			continue
		}
		err = fn(x)
		if err == nil {
			return nil
		}
		var ae *api.Error
		switch {
		case errors.As(err, &ae) && ae.Code == api.CodeMoved:
			overrideXTP = ""
			if d, ok := ae.MovedDetail(); ok && d.Owner != "" {
				overrideXTP = cl.xtpAddrFor(d.Owner)
			}
			cl.Refresh(ctx)
		case errors.As(err, &ae) && ae.Code == api.CodeUnavailable:
			overrideXTP = ""
			cl.Refresh(ctx)
		case errors.As(err, &ae):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			overrideXTP = ""
			cl.Refresh(ctx)
		}
		lastErr = err
	}
	return lastErr
}

// xtpAddrFor maps a moved hint (an HTTP base URL) back to that node's
// xtp address via the current ring; "" when the node is unknown, which
// drops the next attempt back to hash routing.
func (cl *Cluster) xtpAddrFor(httpBase string) string {
	host := strings.TrimRight(strings.TrimPrefix(strings.TrimPrefix(httpBase, "http://"), "https://"), "/")
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if cl.ring == nil {
		return ""
	}
	for _, n := range cl.ring.Nodes {
		if n.HTTP == host {
			return n.XTP
		}
	}
	return ""
}

var _ xseed.Estimator = (*ClusterSynopsis)(nil)
