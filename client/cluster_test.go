package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"xseed/api"
)

// ringSeed serves /v1/cluster/ring from a swappable api.Ring and counts
// fetches.
type ringSeed struct {
	srv     *httptest.Server
	ring    atomic.Pointer[api.Ring]
	fetches atomic.Int64
}

func newRingSeed(t *testing.T, r api.Ring) *ringSeed {
	t.Helper()
	s := &ringSeed{}
	s.ring.Store(&r)
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/v1/cluster/ring" {
			http.NotFound(w, req)
			return
		}
		s.fetches.Add(1)
		json.NewEncoder(w).Encode(s.ring.Load())
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *ringSeed) set(r api.Ring) { s.ring.Store(&r) }

// hostport strips the scheme from an httptest server URL, the way node
// addresses appear in a ring.
func hostport(srv *httptest.Server) string {
	return strings.TrimPrefix(srv.URL, "http://")
}

// synServer is one fake node: it answers GET /v1/synopses/<name> with a
// fixed behavior and counts hits.
func synServer(t *testing.T, handler http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		handler(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &hits
}

func serveInfo(name string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.SynopsisInfo{Name: name})
	}
}

func serveMoved(name, owner string, epoch uint64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, api.NewMovedError(name, owner, epoch))
	}
}

func activeRing(epoch uint64, nodes ...api.RingNode) api.Ring {
	return api.Ring{Epoch: epoch, Nodes: nodes}
}

func node(id, http string) api.RingNode {
	return api.RingNode{ID: id, HTTP: http, State: api.RingStateActive}
}

func TestClusterRoutesToOwner(t *testing.T) {
	a, hits := synServer(t, serveInfo("s"))
	seed := newRingSeed(t, activeRing(1, node("a", hostport(a))))
	cl, err := NewCluster([]string{seed.srv.URL})
	if err != nil {
		t.Fatal(err)
	}
	info, err := cl.Get(context.Background(), "s")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "s" || hits.Load() != 1 {
		t.Fatalf("info=%+v hits=%d", info, hits.Load())
	}
	if r, ok := cl.Ring(); !ok || r.Epoch != 1 {
		t.Fatalf("ring = %+v, %v", r, ok)
	}
}

func TestClusterFollowsMovedHint(t *testing.T) {
	// The ring names only A, but ownership flipped to B mid-rebalance: A
	// answers moved with B's address. One retry lands on B.
	b, bHits := synServer(t, serveInfo("s"))
	a, aHits := synServer(t, serveMoved("s", b.URL, 2))
	seed := newRingSeed(t, activeRing(1, node("a", hostport(a))))
	cl, err := NewCluster([]string{seed.srv.URL},
		WithRetry(3, time.Millisecond), WithRetryCap(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	info, err := cl.Get(context.Background(), "s")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "s" {
		t.Fatalf("info = %+v", info)
	}
	if aHits.Load() != 1 || bHits.Load() != 1 {
		t.Fatalf("hits: a=%d b=%d, want one each", aHits.Load(), bHits.Load())
	}
}

func TestClusterMovedWithoutHintRefreshesRing(t *testing.T) {
	// A answers moved with no owner hint (the rebalance window where the
	// server only knows it is not the owner). The client must fall back to
	// a ring refresh — which now names B — instead of hammering A.
	b, bHits := synServer(t, serveInfo("s"))
	var a *httptest.Server
	var seed *ringSeed
	a, aHits := synServer(t, func(w http.ResponseWriter, r *http.Request) {
		// Next refresh sees epoch 2 naming B alone.
		seed.set(activeRing(2, node("b", hostport(b))))
		api.WriteError(w, &api.Error{Code: api.CodeMoved, Msg: "not the owner"})
	})
	seed = newRingSeed(t, activeRing(1, node("a", hostport(a))))
	cl, err := NewCluster([]string{seed.srv.URL},
		WithRetry(3, time.Millisecond), WithRetryCap(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Get(context.Background(), "s"); err != nil {
		t.Fatal(err)
	}
	if aHits.Load() != 1 || bHits.Load() != 1 {
		t.Fatalf("hits: a=%d b=%d, want one each", aHits.Load(), bHits.Load())
	}
	if r, _ := cl.Ring(); r.Epoch != 2 {
		t.Fatalf("ring epoch = %d, want refreshed to 2", r.Epoch)
	}
}

// TestClusterRedirectStormDesync pins the desync behavior: two nodes
// each claim the other owns the synopsis (a pathological rebalance
// window). The client must bounce between them at most once per retry —
// jittered, capped backoff between hops — and surface the typed moved
// error when the budget runs out, never loop unboundedly.
func TestClusterRedirectStormDesync(t *testing.T) {
	var aURL, bURL string
	a, aHits := synServer(t, func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, api.NewMovedError("s", bURL, 7))
	})
	b, bHits := synServer(t, func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, api.NewMovedError("s", aURL, 7))
	})
	aURL, bURL = a.URL, b.URL
	seed := newRingSeed(t, activeRing(1, node("a", hostport(a)), node("b", hostport(b))))

	const retries = 4
	cl, err := NewCluster([]string{seed.srv.URL},
		WithRetry(retries, time.Millisecond), WithRetryCap(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = cl.Get(context.Background(), "s")
	if err == nil {
		t.Fatal("storm converged on a success that no node would serve")
	}
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeMoved {
		t.Fatalf("err = %v, want typed %s", err, api.CodeMoved)
	}
	total := aHits.Load() + bHits.Load()
	if want := int64(retries + 1); total != want {
		t.Fatalf("storm cost %d node requests, want exactly %d (one per attempt)", total, want)
	}
	if aHits.Load() == 0 || bHits.Load() == 0 {
		t.Fatalf("client did not alternate: a=%d b=%d", aHits.Load(), bHits.Load())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("storm took %v — backoff not capped", elapsed)
	}
	// Every redirect refreshed the ring: the initial fetch plus one per
	// moved response.
	if f := seed.fetches.Load(); f < int64(retries) {
		t.Fatalf("ring fetched %d times during the storm, want at least %d", f, retries)
	}
}

func TestClusterRetriesDeadNodeViaRefresh(t *testing.T) {
	// The ring names a dead node; the request fails at the transport. The
	// retry refreshes the ring — which now names a live node — and
	// succeeds. This is the client half of failover.
	live, liveHits := synServer(t, serveInfo("s"))
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadAddr := hostport(dead)
	dead.Close()

	seed := newRingSeed(t, activeRing(1, node("a", deadAddr)))
	cl, err := NewCluster([]string{seed.srv.URL},
		WithRetry(3, time.Millisecond), WithRetryCap(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	// Promote the live node at epoch 2; the first refresh after the
	// transport error adopts it.
	seed.set(activeRing(2, node("b", hostport(live))))
	if _, err := cl.Get(context.Background(), "s"); err != nil {
		t.Fatal(err)
	}
	if liveHits.Load() != 1 {
		t.Fatalf("live node hits = %d, want 1", liveHits.Load())
	}
}

func TestClusterTenantChangesRouting(t *testing.T) {
	// Routing hashes the (tenant, name) store key, so the same name may
	// route differently per tenant — assert the key actually varies.
	cl, err := NewCluster([]string{"http://127.0.0.1:1"}, WithTenantID("acme"))
	if err != nil {
		t.Fatal(err)
	}
	if got := cl.routingKey("s"); got != "acme\x00s" {
		t.Fatalf("routingKey = %q", got)
	}
	cl2, _ := NewCluster([]string{"http://127.0.0.1:1"})
	if got := cl2.routingKey("s"); got != "s" {
		t.Fatalf("default routingKey = %q", got)
	}
}
