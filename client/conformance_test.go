package client

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"

	"xseed"
	"xseed/api"
	"xseed/internal/fixtures"
	"xseed/internal/server"
	"xseed/internal/xpath"
)

// transportTarget is one SDK backend under conformance test: a way to bind
// any synopsis name as an xseed.Estimator, plus a barrier that surfaces
// deferred feedback errors (a no-op for transports whose Feedback is
// synchronous).
type transportTarget struct {
	bind  func(name string) xseed.Estimator
	flush func(ctx context.Context) error
}

// transports mounts one xseedd-equivalent backend per wire protocol, each
// preloaded with "fig2". Every conformance test runs against all of them:
// the HTTP JSON API and the xtp binary protocol must be indistinguishable
// through the Estimator interface.
func transports(t *testing.T) map[string]transportTarget {
	t.Helper()

	// HTTP: a full server.Server behind httptest.
	s, err := server.New(server.Config{CacheCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	hc, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Create(context.Background(), api.CreateRequest{Name: "fig2", XML: fixtures.PaperFigure2}); err != nil {
		t.Fatal(err)
	}

	// xtp: the binary listener over an identically-loaded registry.
	_, addr := newXTPBackend(t, nil)
	xc, err := DialXTP(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { xc.Close() })

	return map[string]transportTarget{
		"http": {
			bind:  func(name string) xseed.Estimator { return hc.Synopsis(name) },
			flush: func(context.Context) error { return nil },
		},
		"xtp": {
			bind:  func(name string) xseed.Estimator { return xc.Synopsis(name) },
			flush: xc.Flush,
		},
	}
}

// TestConformanceTypedErrorParity: a whole-call failure (unknown synopsis)
// is the same typed *api.Error on every transport.
func TestConformanceTypedErrorParity(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			_, err := tr.bind("nope").EstimateBatch(context.Background(), []string{"/a"})
			var apiErr *api.Error
			if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
				t.Fatalf("unknown-synopsis error = %v, want typed %s", err, api.CodeNotFound)
			}
		})
	}
}

// TestConformanceParseOffsetSurvival: a bad query's byte offset and token
// survive every transport encoding, byte-identical to the embedded parser.
func TestConformanceParseOffsetSurvival(t *testing.T) {
	const bogus = "/a/c[s]trailing garbage"
	_, perr := xpath.Parse(bogus)
	pe, ok := perr.(*xpath.ParseError)
	if !ok {
		t.Fatalf("fixture query parsed; want error, got %T", perr)
	}

	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			res, err := tr.bind("fig2").EstimateBatch(context.Background(), []string{bogus})
			if err != nil {
				t.Fatal(err)
			}
			var apiErr *api.Error
			if !errors.As(res[0].Err, &apiErr) || apiErr.Code != api.CodeParseError {
				t.Fatalf("bad query error = %v", res[0].Err)
			}
			d, ok := apiErr.ParseDetail()
			if !ok {
				t.Fatalf("no parse detail on %+v", apiErr)
			}
			if d.Offset != pe.Pos {
				t.Errorf("offset over %s = %d, embedded parser reports %d", name, d.Offset, pe.Pos)
			}
			if d.Token == "" {
				t.Error("offending token lost in transit")
			}
		})
	}
}

// TestConformanceMidBatchPartialSuccess: one rotten query never spoils the
// batch — results stay positional, errors stay per-item.
func TestConformanceMidBatchPartialSuccess(t *testing.T) {
	queries := []string{"/a/c/s", "//s[@", "//s//p"}
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			res, err := tr.bind("fig2").EstimateBatch(context.Background(), queries)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(queries) {
				t.Fatalf("results = %d, want %d", len(res), len(queries))
			}
			if res[0].Err != nil || res[0].Estimate <= 0 {
				t.Errorf("res[0] = %+v, want success", res[0])
			}
			var apiErr *api.Error
			if !errors.As(res[1].Err, &apiErr) || apiErr.Code != api.CodeParseError {
				t.Errorf("res[1].Err = %v, want %s", res[1].Err, api.CodeParseError)
			}
			if res[2].Err != nil || res[2].Estimate <= 0 {
				t.Errorf("res[2] = %+v, want success", res[2])
			}
		})
	}
}

// TestConformanceCancellation: a canceled context returns context.Canceled
// and leaves the client usable for the next call on every transport.
func TestConformanceCancellation(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			est := tr.bind("fig2")
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := est.EstimateBatch(ctx, []string{"/a/c/s"}); !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled batch = %v, want context.Canceled", err)
			}
			res, err := est.EstimateBatch(context.Background(), []string{"/a/c/s"})
			if err != nil || len(res) != 1 || res[0].Err != nil {
				t.Fatalf("batch after cancel = %+v, %v", res, err)
			}
		})
	}
}

// TestConformanceFeedbackErrors: feedback failures carry the same typed
// code everywhere — synchronously on HTTP, via the Flush barrier on xtp.
func TestConformanceFeedbackErrors(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			err := tr.bind("nope").Feedback(ctx, "/a", 1)
			if err == nil {
				err = tr.flush(ctx)
			}
			var apiErr *api.Error
			if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
				t.Fatalf("feedback to unknown synopsis = %v, want %s", err, api.CodeNotFound)
			}

			// And the success path leaves no residue behind the barrier.
			if err := tr.bind("fig2").Feedback(ctx, "/a/c/s", 2); err != nil {
				t.Fatal(err)
			}
			if err := tr.flush(ctx); err != nil {
				t.Fatalf("flush after good feedback = %v", err)
			}
		})
	}
}
