package client

import (
	"context"
	"errors"
	"net"
	"net/http/httptest"
	"testing"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/fixtures"
	"xseed/internal/server"
	"xseed/internal/xpath"
)

// transportTarget is one SDK backend under conformance test: a way to bind
// any synopsis name as an xseed.Estimator, plus a barrier that surfaces
// deferred feedback errors (a no-op for transports whose Feedback is
// synchronous).
type transportTarget struct {
	bind  func(name string) xseed.Estimator
	flush func(ctx context.Context) error
}

// transports mounts one xseedd-equivalent backend per wire protocol, each
// preloaded with "fig2". Every conformance test runs against all of them:
// the HTTP JSON API and the xtp binary protocol must be indistinguishable
// through the Estimator interface.
func transports(t *testing.T) map[string]transportTarget {
	t.Helper()

	// HTTP: a full server.Server behind httptest.
	s, err := server.New(server.Config{CacheCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	hc, err := New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.Create(context.Background(), api.CreateRequest{Name: "fig2", XML: fixtures.PaperFigure2}); err != nil {
		t.Fatal(err)
	}

	// xtp: the binary listener over an identically-loaded registry.
	_, addr := newXTPBackend(t, nil)
	xc, err := DialXTP(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { xc.Close() })

	return map[string]transportTarget{
		"http": {
			bind:  func(name string) xseed.Estimator { return hc.Synopsis(name) },
			flush: func(context.Context) error { return nil },
		},
		"xtp": {
			bind:  func(name string) xseed.Estimator { return xc.Synopsis(name) },
			flush: xc.Flush,
		},
	}
}

// TestConformanceTypedErrorParity: a whole-call failure (unknown synopsis)
// is the same typed *api.Error on every transport.
func TestConformanceTypedErrorParity(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			_, err := tr.bind("nope").EstimateBatch(context.Background(), []string{"/a"})
			var apiErr *api.Error
			if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
				t.Fatalf("unknown-synopsis error = %v, want typed %s", err, api.CodeNotFound)
			}
		})
	}
}

// TestConformanceParseOffsetSurvival: a bad query's byte offset and token
// survive every transport encoding, byte-identical to the embedded parser.
func TestConformanceParseOffsetSurvival(t *testing.T) {
	const bogus = "/a/c[s]trailing garbage"
	_, perr := xpath.Parse(bogus)
	pe, ok := perr.(*xpath.ParseError)
	if !ok {
		t.Fatalf("fixture query parsed; want error, got %T", perr)
	}

	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			res, err := tr.bind("fig2").EstimateBatch(context.Background(), []string{bogus})
			if err != nil {
				t.Fatal(err)
			}
			var apiErr *api.Error
			if !errors.As(res[0].Err, &apiErr) || apiErr.Code != api.CodeParseError {
				t.Fatalf("bad query error = %v", res[0].Err)
			}
			d, ok := apiErr.ParseDetail()
			if !ok {
				t.Fatalf("no parse detail on %+v", apiErr)
			}
			if d.Offset != pe.Pos {
				t.Errorf("offset over %s = %d, embedded parser reports %d", name, d.Offset, pe.Pos)
			}
			if d.Token == "" {
				t.Error("offending token lost in transit")
			}
		})
	}
}

// TestConformanceMidBatchPartialSuccess: one rotten query never spoils the
// batch — results stay positional, errors stay per-item.
func TestConformanceMidBatchPartialSuccess(t *testing.T) {
	queries := []string{"/a/c/s", "//s[@", "//s//p"}
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			res, err := tr.bind("fig2").EstimateBatch(context.Background(), queries)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != len(queries) {
				t.Fatalf("results = %d, want %d", len(res), len(queries))
			}
			if res[0].Err != nil || res[0].Estimate <= 0 {
				t.Errorf("res[0] = %+v, want success", res[0])
			}
			var apiErr *api.Error
			if !errors.As(res[1].Err, &apiErr) || apiErr.Code != api.CodeParseError {
				t.Errorf("res[1].Err = %v, want %s", res[1].Err, api.CodeParseError)
			}
			if res[2].Err != nil || res[2].Estimate <= 0 {
				t.Errorf("res[2] = %+v, want success", res[2])
			}
		})
	}
}

// TestConformanceCancellation: a canceled context returns context.Canceled
// and leaves the client usable for the next call on every transport.
func TestConformanceCancellation(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			est := tr.bind("fig2")
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := est.EstimateBatch(ctx, []string{"/a/c/s"}); !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled batch = %v, want context.Canceled", err)
			}
			res, err := est.EstimateBatch(context.Background(), []string{"/a/c/s"})
			if err != nil || len(res) != 1 || res[0].Err != nil {
				t.Fatalf("batch after cancel = %+v, %v", res, err)
			}
		})
	}
}

// TestConformanceFeedbackErrors: feedback failures carry the same typed
// code everywhere — synchronously on HTTP, via the Flush barrier on xtp.
func TestConformanceFeedbackErrors(t *testing.T) {
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			err := tr.bind("nope").Feedback(ctx, "/a", 1)
			if err == nil {
				err = tr.flush(ctx)
			}
			var apiErr *api.Error
			if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
				t.Fatalf("feedback to unknown synopsis = %v, want %s", err, api.CodeNotFound)
			}

			// And the success path leaves no residue behind the barrier.
			if err := tr.bind("fig2").Feedback(ctx, "/a/c/s", 2); err != nil {
				t.Fatal(err)
			}
			if err := tr.flush(ctx); err != nil {
				t.Fatalf("flush after good feedback = %v", err)
			}
		})
	}
}

// TestConformanceFeedbackBatchPartialSuccess: batch feedback keeps the
// batch-estimate contract on every transport — one malformed query gets a
// positional typed error (parse detail intact) while its neighbors apply,
// and a whole-call failure (unknown synopsis) is the typed not_found.
func TestConformanceFeedbackBatchPartialSuccess(t *testing.T) {
	items := []xseed.FeedbackObs{
		{Query: "/a/c/s", Actual: 3},
		{Query: "//s[@", Actual: 1},
		{Query: "//s//p", Actual: 2},
	}
	for name, tr := range transports(t) {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			errs, err := tr.bind("fig2").FeedbackBatch(ctx, items)
			if err != nil {
				t.Fatal(err)
			}
			if len(errs) != len(items) {
				t.Fatalf("results = %d, want %d", len(errs), len(items))
			}
			if errs[0] != nil || errs[2] != nil {
				t.Errorf("good items carry errors: %v, %v", errs[0], errs[2])
			}
			var apiErr *api.Error
			if !errors.As(errs[1], &apiErr) || apiErr.Code != api.CodeParseError {
				t.Fatalf("malformed item = %v, want typed %s", errs[1], api.CodeParseError)
			}
			if _, ok := apiErr.ParseDetail(); !ok {
				t.Errorf("parse detail lost in transit: %+v", apiErr)
			}

			// Whole-call failure: unknown synopsis fails the batch wholesale.
			if _, err := tr.bind("nope").FeedbackBatch(ctx, items); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
				t.Fatalf("batch to unknown synopsis = %v, want typed %s", err, api.CodeNotFound)
			}
		})
	}
}

// tenantedBackends mounts one multi-tenant server — tenant "acme" holds a
// valid token, tenant "throttled" a rate limit its first request already
// exceeds — behind both transports, returning the HTTP base URL and the
// xtp address. Tenancy conformance tests dial these with varying tokens.
func tenantedBackends(t *testing.T) (httpURL, xtpAddr string) {
	t.Helper()
	s, err := server.New(server.Config{CacheCapacity: 1024, Tenants: []server.TenantConfig{
		{ID: "acme", Token: "acme-tok"},
		{ID: "throttled", Token: "throttled-tok", RatePerSec: 0.0001},
	}})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	t.Cleanup(func() { s.Close() })

	x := server.NewXTP(s.Registry(), server.XTPOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go x.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		x.Shutdown(ctx)
	})
	return hs.URL, ln.Addr().String()
}

// TestConformanceUnauthorizedParity: an unknown bearer token is the same
// typed unauthorized error on every transport — an HTTP 401 body and an
// xtp Error frame decode to the identical *api.Error code, and neither
// transport degrades to unauthenticated operation.
func TestConformanceUnauthorizedParity(t *testing.T) {
	httpURL, xtpAddr := tenantedBackends(t)

	hc, err := New(httpURL, WithToken("wrong-tok"))
	if err != nil {
		t.Fatal(err)
	}
	_, herr := hc.List(context.Background())
	var apiErr *api.Error
	if !errors.As(herr, &apiErr) || apiErr.Code != api.CodeUnauthorized {
		t.Fatalf("http with bad token = %v, want typed %s", herr, api.CodeUnauthorized)
	}

	// xtp authenticates at dial; a bad token is a dial failure.
	if _, xerr := DialXTP(xtpAddr, WithXTPToken("wrong-tok")); !errors.As(xerr, &apiErr) || apiErr.Code != api.CodeUnauthorized {
		t.Fatalf("xtp dial with bad token = %v, want typed %s", xerr, api.CodeUnauthorized)
	}

	// The same tokens that fail above succeed when valid: parity is about
	// the error, not a broken fixture.
	if _, err := New(httpURL, WithToken("acme-tok")); err != nil {
		t.Fatal(err)
	}
	xc, err := DialXTP(xtpAddr, WithXTPToken("acme-tok"))
	if err != nil {
		t.Fatalf("xtp dial with valid token = %v", err)
	}
	xc.Close()
}

// TestConformanceQuotaParity: a request over the tenant's rate limit is
// the same typed quota_exceeded error on every transport (HTTP 429, xtp
// Error frame), and on xtp the rejection is per-request — the connection
// survives it, unlike the terminal unauthorized.
func TestConformanceQuotaParity(t *testing.T) {
	httpURL, xtpAddr := tenantedBackends(t)
	ctx := context.Background()

	hc, err := New(httpURL, WithToken("throttled-tok"))
	if err != nil {
		t.Fatal(err)
	}
	_, herr := hc.Estimate(ctx, "fig2", api.EstimateRequest{Queries: []string{"/a"}})
	var apiErr *api.Error
	if !errors.As(herr, &apiErr) || apiErr.Code != api.CodeQuotaExceeded {
		t.Fatalf("http over rate limit = %v, want typed %s", herr, api.CodeQuotaExceeded)
	}

	xc, err := DialXTP(xtpAddr, WithXTPToken("throttled-tok"))
	if err != nil {
		t.Fatal(err)
	}
	defer xc.Close()
	for i := 0; i < 2; i++ { // twice: the rejection must not kill the connection
		_, xerr := xc.Synopsis("fig2").EstimateBatch(ctx, []string{"/a"})
		if !errors.As(xerr, &apiErr) || apiErr.Code != api.CodeQuotaExceeded {
			t.Fatalf("xtp over rate limit (call %d) = %v, want typed %s", i, xerr, api.CodeQuotaExceeded)
		}
	}
	if err := xc.Ping(ctx); err != nil {
		t.Fatalf("ping after quota rejection = %v, want live connection", err)
	}
}

// TestConformanceFeedbackBatchAuthAndQuotaParity: batch feedback meets the
// tenancy taxonomy identically on both transports. Over the rate limit the
// whole batch is the typed quota_exceeded (charged as N events, rejected as
// one unit) and the xtp connection survives; a bad token is the typed
// unauthorized — an HTTP 401 per call, a terminal dial failure on xtp.
func TestConformanceFeedbackBatchAuthAndQuotaParity(t *testing.T) {
	httpURL, xtpAddr := tenantedBackends(t)
	ctx := context.Background()
	items := []xseed.FeedbackObs{{Query: "/a", Actual: 1}, {Query: "/b", Actual: 2}}
	var apiErr *api.Error

	// Quota: the throttled tenant's very first batch is over its limit.
	hc, err := New(httpURL, WithToken("throttled-tok"))
	if err != nil {
		t.Fatal(err)
	}
	if _, herr := hc.Synopsis("fig2").FeedbackBatch(ctx, items); !errors.As(herr, &apiErr) || apiErr.Code != api.CodeQuotaExceeded {
		t.Fatalf("http batch over rate limit = %v, want typed %s", herr, api.CodeQuotaExceeded)
	}
	xc, err := DialXTP(xtpAddr, WithXTPToken("throttled-tok"))
	if err != nil {
		t.Fatal(err)
	}
	defer xc.Close()
	if _, xerr := xc.Synopsis("fig2").FeedbackBatch(ctx, items); !errors.As(xerr, &apiErr) || apiErr.Code != api.CodeQuotaExceeded {
		t.Fatalf("xtp batch over rate limit = %v, want typed %s", xerr, api.CodeQuotaExceeded)
	}
	if err := xc.Ping(ctx); err != nil {
		t.Fatalf("ping after batch quota rejection = %v, want live connection", err)
	}

	// Unauthorized: same typed code; xtp surfaces it at dial, so a bad-token
	// connection never exists to carry a batch at all.
	hb, err := New(httpURL, WithToken("wrong-tok"))
	if err != nil {
		t.Fatal(err)
	}
	if _, herr := hb.Synopsis("fig2").FeedbackBatch(ctx, items); !errors.As(herr, &apiErr) || apiErr.Code != api.CodeUnauthorized {
		t.Fatalf("http batch with bad token = %v, want typed %s", herr, api.CodeUnauthorized)
	}
	if _, xerr := DialXTP(xtpAddr, WithXTPToken("wrong-tok")); !errors.As(xerr, &apiErr) || apiErr.Code != api.CodeUnauthorized {
		t.Fatalf("xtp dial with bad token = %v, want typed %s", xerr, api.CodeUnauthorized)
	}
}
