package client_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"xseed"
	"xseed/api"
	"xseed/client"
)

// New dials the HTTP JSON API. A client bound to a synopsis implements
// xseed.Estimator; jittered retries apply to idempotent calls only.
func ExampleNew() {
	c, err := client.New("http://localhost:8080",
		client.WithSynopsis("auction"),
		client.WithRetry(3, 100*time.Millisecond),
		client.WithRetryCap(2*time.Second))
	if err != nil {
		panic(err)
	}

	ctx := context.Background()
	res, err := c.EstimateBatch(ctx, []string{"//open_auction[bidder]/seller"})
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) && apiErr.Code == api.CodeNotFound {
			// create the synopsis first: c.Create(ctx, api.CreateRequest{...})
		}
		return
	}
	fmt.Println(res[0].Estimate)
}

// DialXTP dials the binary protocol (xseedd -xtp). Concurrent calls
// pipeline over one connection; feedback is fire-and-forget behind a
// bounded ack window, with Flush as the barrier that surfaces ack errors.
func ExampleDialXTP() {
	x, err := client.DialXTP("localhost:9090",
		client.WithXTPSynopsis("auction"),
		client.WithFeedbackWindow(256))
	if err != nil {
		panic(err) // unreachable, not speaking xtp, or version mismatch
	}
	defer x.Close()

	ctx := context.Background()
	res, err := x.EstimateBatch(ctx, []string{"//open_auction[bidder]/seller"})
	if err != nil {
		return
	}
	fmt.Println(res[0].Estimate)

	// Record what execution actually observed; returns once enqueued.
	_ = x.Feedback(ctx, "//open_auction[bidder]/seller", 42)
	if err := x.Flush(ctx); err != nil {
		fmt.Println("some feedback failed:", err)
	}
}

// Both backends satisfy xseed.Estimator, so transport choice is one line
// at startup — estimation code never changes.
func ExampleXTP_Synopsis() {
	var est xseed.Estimator

	useBinary := true
	if useBinary {
		x, err := client.DialXTP("localhost:9090")
		if err != nil {
			return
		}
		defer x.Close()
		est = x.Synopsis("auction")
	} else {
		c, err := client.New("http://localhost:8080")
		if err != nil {
			return
		}
		est = c.Synopsis("auction")
	}

	res, err := est.EstimateBatch(context.Background(), []string{"//item"})
	if err == nil {
		fmt.Println(res[0].Estimate)
	}
}
