package client

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xseed"
	"xseed/internal/server"
)

// The served-QPS pair below measures the same workload — batch-of-1
// estimates against a warm registry over a real TCP socket — through each
// transport's SDK backend. The delta is pure transport cost: HTTP/1.1 +
// JSON framing versus xtp's length-prefixed binary frames. CI gates on
// the ratio (xtp must be >=2x faster per op); see .github/workflows/ci.yml.

var transportBenchState struct {
	once    sync.Once
	err     error
	syn     *xseed.Synopsis
	queries []string
}

// transportBenchSetup builds one XMark synopsis and workload, shared by
// both transport benchmarks so they serve identical traffic.
func transportBenchSetup(b testing.TB) (*xseed.Synopsis, []string) {
	transportBenchState.once.Do(func() {
		doc, err := xseed.Generate("xmark", 0.01, 1)
		if err != nil {
			transportBenchState.err = err
			return
		}
		syn, err := xseed.BuildSynopsis(doc, nil)
		if err != nil {
			transportBenchState.err = err
			return
		}
		var queries []string
		for _, q := range doc.SimplePathQueries(16) {
			queries = append(queries, q.String())
		}
		transportBenchState.syn, transportBenchState.queries = syn, queries
	})
	if transportBenchState.err != nil {
		b.Fatal(transportBenchState.err)
	}
	if len(transportBenchState.queries) == 0 {
		b.Fatal("no benchmark queries")
	}
	return transportBenchState.syn, transportBenchState.queries
}

// servedQPS drives batch-of-1 estimates through any Estimator-shaped
// backend from GOMAXPROCS goroutines.
func servedQPS(b *testing.B, est xseed.Estimator, queries []string) {
	ctx := context.Background()
	// Warm the server's estimate cache so both transports measure framing,
	// not first-touch estimation.
	if _, err := est.EstimateBatch(ctx, queries); err != nil {
		b.Fatal(err)
	}
	var idx atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			q := queries[int(idx.Add(1))%len(queries)]
			res, err := est.EstimateBatch(ctx, []string{q})
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != 1 || res[0].Err != nil {
				b.Fatalf("served estimate = %+v", res)
			}
		}
	})
}

// servedFeedbackQPS drives 64-observation feedback batches through any
// Estimator-shaped backend from GOMAXPROCS goroutines. Each op is one
// round trip carrying 64 events; events/s is reported alongside ns/op.
func servedFeedbackQPS(b *testing.B, est xseed.Estimator, queries []string) {
	ctx := context.Background()
	const batch = 64
	items := make([]xseed.FeedbackObs, batch)
	for i := range items {
		items[i] = xseed.FeedbackObs{Query: queries[i%len(queries)], Actual: float64(1 + i%17)}
	}
	// One warm-up batch outside the timer: first-touch parse + HET seeding.
	if _, err := est.FeedbackBatch(ctx, items); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			errs, err := est.FeedbackBatch(ctx, items)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range errs {
				if e != nil {
					b.Fatalf("item error: %v", e)
				}
			}
		}
	})
	b.StopTimer()
	if b.Elapsed() > 0 {
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "events/s")
	}
}

// BenchmarkServedFeedbackQPS_HTTP: batch-64 feedback over the JSON API —
// one POST feedback:batch per op against a real TCP listener.
func BenchmarkServedFeedbackQPS_HTTP(b *testing.B) {
	syn, queries := transportBenchSetup(b)
	s, err := server.New(server.Config{
		CacheCapacity: 4096,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Registry().Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c, err := New(ts.URL, WithSynopsis("xmark"))
	if err != nil {
		b.Fatal(err)
	}
	servedFeedbackQPS(b, c, queries)
}

// BenchmarkServedFeedbackQPS_XTP is the same batches as one
// FeedbackBatchReq frame per op on a pipelined binary connection.
func BenchmarkServedFeedbackQPS_XTP(b *testing.B) {
	syn, queries := transportBenchSetup(b)
	reg := server.NewRegistry(4096, 0)
	defer reg.Close()
	if _, err := reg.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	x := server.NewXTP(reg, server.XTPOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- x.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		x.Shutdown(ctx)
		<-done
	}()
	c, err := DialXTP(ln.Addr().String(), WithXTPSynopsis("xmark"))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	servedFeedbackQPS(b, c, queries)
}

// BenchmarkServedQPS_HTTP is the JSON API baseline: SDK -> HTTP/1.1 ->
// httptest's real TCP listener -> mux -> registry.
func BenchmarkServedQPS_HTTP(b *testing.B) {
	syn, queries := transportBenchSetup(b)
	// Request logging off: both sides measure transport cost, not slog.
	s, err := server.New(server.Config{
		CacheCapacity: 4096,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Registry().Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c, err := New(ts.URL, WithSynopsis("xmark"))
	if err != nil {
		b.Fatal(err)
	}
	servedQPS(b, c, queries)
}

// BenchmarkServedQPS_XTP is the same traffic over the binary protocol:
// SDK -> pipelined frames on one TCP connection -> registry.
func BenchmarkServedQPS_XTP(b *testing.B) {
	syn, queries := transportBenchSetup(b)
	reg := server.NewRegistry(4096, 0)
	defer reg.Close()
	if _, err := reg.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	x := server.NewXTP(reg, server.XTPOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- x.Serve(ln) }()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		x.Shutdown(ctx)
		<-done
	}()
	c, err := DialXTP(ln.Addr().String(), WithXTPSynopsis("xmark"))
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	servedQPS(b, c, queries)
}
