package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/wire"
)

// XTP is the binary-transport backend of the SDK: a pipelining client for
// the xtp protocol (docs/PROTOCOL.md) an xseedd serves on its -xtp
// listener. Like Client it implements xseed.Estimator when bound to a
// synopsis, so an optimizer switches transports without touching
// estimation code:
//
//	x, _ := client.DialXTP("10.0.0.7:9090", client.WithXTPSynopsis("auction"))
//	defer x.Close()
//	res, err := x.EstimateBatch(ctx, []string{"//open_auction[bidder]/seller"})
//
// Concurrent calls coalesce onto one multiplexed connection: each request
// carries a correlation ID, responses are matched back as they arrive, and
// nothing waits for a stranger's round trip. Canceling one call's context
// abandons that call only — the connection (and everyone else's in-flight
// requests) survives. A broken connection fails in-flight calls with
// api.CodeUnavailable and the next call redials.
//
// Feedback is fire-and-forget: Feedback returns once the record is on the
// wire, acks are consumed in the background against a bounded in-flight
// window, and ack errors surface on Flush (or the final Close). Estimates,
// by contrast, always wait for their response.
type XTP struct {
	addr        string
	synopsis    string
	token       string
	dialTimeout time.Duration
	window      int

	// shared, when non-nil, is the root *XTP owning the connection and the
	// feedback-error slot; copies made by Synopsis delegate to it so all
	// bindings multiplex onto one connection.
	shared *XTP

	mu     sync.Mutex
	conn   *xconn // current connection, nil until first use or after failure
	closed bool

	fbMu  sync.Mutex
	fbErr error // first unreported feedback ack failure
}

// XTPOption configures a DialXTP client.
type XTPOption func(*XTP)

// WithXTPSynopsis binds the client to a synopsis name, enabling the
// xseed.Estimator methods (EstimateBatch, Feedback).
func WithXTPSynopsis(name string) XTPOption { return func(x *XTP) { x.synopsis = name } }

// WithXTPToken authenticates every connection (including redials) with the
// bearer token during dial: an AuthReq frame binds the connection to the
// token's tenant before any request rides it. An unknown token — or a
// pre-tenancy server, which closes on the unfamiliar frame — fails the
// dial; there is no silent fallback to unauthenticated operation.
func WithXTPToken(token string) XTPOption { return func(x *XTP) { x.token = token } }

// WithXTPDialTimeout bounds each dial + handshake (default 10s).
func WithXTPDialTimeout(d time.Duration) XTPOption { return func(x *XTP) { x.dialTimeout = d } }

// WithFeedbackWindow sets how many feedback records may be on the wire
// awaiting acks before Feedback blocks (default 128).
func WithFeedbackWindow(n int) XTPOption {
	return func(x *XTP) {
		if n > 0 {
			x.window = n
		}
	}
}

// DialXTP connects to an xseedd xtp listener ("host:port") and completes
// the protocol handshake. The returned client is safe for concurrent use;
// it holds one connection and redials transparently after failures.
func DialXTP(addr string, opts ...XTPOption) (*XTP, error) {
	x := &XTP{addr: addr, dialTimeout: 10 * time.Second, window: 128}
	for _, o := range opts {
		o(x)
	}
	// Dial eagerly so an unreachable or non-xtp endpoint fails here, at
	// construction, not on the first estimate deep inside an optimizer.
	cn, err := x.dial()
	if err != nil {
		return nil, err
	}
	x.conn = cn
	return x, nil
}

// Synopsis returns a view of the client bound to the named synopsis; the
// view shares the underlying connection and implements xseed.Estimator.
func (x *XTP) Synopsis(name string) *XTP {
	return &XTP{addr: x.addr, synopsis: name, token: x.token,
		dialTimeout: x.dialTimeout, window: x.window, shared: x.sharedSelf()}
}

// sharedSelf resolves the root client owning the connection (views made
// by Synopsis delegate connection management to it).
func (x *XTP) sharedSelf() *XTP {
	if x.shared != nil {
		return x.shared
	}
	return x
}

// Close closes the connection and fails any in-flight calls. It returns
// the first unreported feedback ack error, if any — the last chance to
// observe fire-and-forget failures.
func (x *XTP) Close() error {
	root := x.sharedSelf()
	root.mu.Lock()
	root.closed = true
	cn := root.conn
	root.conn = nil
	root.mu.Unlock()
	if cn != nil {
		cn.close(api.Errorf(api.CodeUnavailable, "client closed"))
	}
	return x.takeFeedbackErr()
}

// getConn returns the live connection, dialing if needed.
func (x *XTP) getConn() (*xconn, error) {
	root := x.sharedSelf()
	root.mu.Lock()
	defer root.mu.Unlock()
	if root.closed {
		return nil, api.Errorf(api.CodeUnavailable, "client closed")
	}
	if root.conn != nil && !root.conn.dead() {
		return root.conn, nil
	}
	cn, err := root.dial()
	if err != nil {
		return nil, err
	}
	root.conn = cn
	return cn, nil
}

// dial opens and handshakes one connection.
func (x *XTP) dial() (*xconn, error) {
	c, err := net.DialTimeout("tcp", x.addr, x.dialTimeout)
	if err != nil {
		return nil, api.Errorf(api.CodeUnavailable, "xtp dial %s: %s", x.addr, err)
	}
	c.SetDeadline(time.Now().Add(x.dialTimeout))
	if err := wire.WriteHandshake(c, wire.Version); err != nil {
		c.Close()
		return nil, api.Errorf(api.CodeUnavailable, "xtp handshake write: %s", err)
	}
	ver, err := wire.ReadHandshake(c)
	if err != nil {
		c.Close()
		return nil, api.Errorf(api.CodeUnavailable, "xtp handshake: %s", err)
	}
	if ver != wire.Version {
		c.Close()
		return nil, api.Errorf(api.CodeUnavailable,
			"xtp version mismatch: server speaks %d, client speaks %d", ver, wire.Version)
	}
	cn := &xconn{
		c:        c,
		owner:    x.sharedSelf(),
		w:        wire.NewWriter(c),
		r:        wire.NewReader(c),
		pending:  make(map[uint64]*xcall),
		nextCorr: 1, // corr 1 is reserved for the dial-time AuthReq
		fbTokens: make(chan struct{}, x.window),
		closedCh: make(chan struct{}),
	}
	if x.token != "" {
		if err := cn.authenticate(x.token); err != nil {
			c.Close()
			return nil, err
		}
	}
	c.SetDeadline(time.Time{})
	go cn.readLoop()
	return cn, nil
}

// authenticate binds the freshly dialed connection to the token's tenant,
// synchronously, before the read loop starts: one AuthReq, one response.
// Failure is a dial failure — notably including an old server that closes
// on the unknown frame type, which must never degrade silently into
// unauthenticated operation (docs/PROTOCOL.md §4.9).
func (cn *xconn) authenticate(token string) error {
	buf := wire.GetBuf()
	*buf = wire.AppendAuthReq(*buf, token)
	err := cn.w.WriteFrame(wire.FrameAuthReq, 1, *buf)
	wire.PutBuf(buf)
	if err != nil {
		return api.Errorf(api.CodeUnavailable, "xtp auth write: %s", err)
	}
	f, err := cn.r.ReadFrame()
	if err != nil {
		return api.Errorf(api.CodeUnauthorized,
			"xtp auth: connection closed before AuthResp (server may predate authentication): %s", err)
	}
	switch f.Type {
	case wire.FrameAuthResp:
		if _, err := wire.DecodeAuthResp(f.Payload); err != nil {
			return api.Errorf(api.CodeUnavailable, "xtp auth response decode: %s", err)
		}
		return nil
	case wire.FrameError:
		ae, err := wire.DecodeError(f.Payload)
		if err != nil {
			return api.Errorf(api.CodeUnavailable, "xtp auth error decode: %s", err)
		}
		return ae
	default:
		return api.Errorf(api.CodeUnavailable, "xtp auth: unexpected %s response", f.Type)
	}
}

// retire clears the current connection if it is cn (so the next call
// redials) — called by a conn's read loop when the conn dies.
func (x *XTP) retire(cn *xconn) {
	x.mu.Lock()
	if x.conn == cn {
		x.conn = nil
	}
	x.mu.Unlock()
}

// recordFeedbackErr keeps the first unreported ack failure for Flush/Close.
func (x *XTP) recordFeedbackErr(err error) {
	root := x.sharedSelf()
	root.fbMu.Lock()
	if root.fbErr == nil {
		root.fbErr = err
	}
	root.fbMu.Unlock()
}

func (x *XTP) takeFeedbackErr() error {
	root := x.sharedSelf()
	root.fbMu.Lock()
	err := root.fbErr
	root.fbErr = nil
	root.fbMu.Unlock()
	return err
}

// EstimateBatch implements xseed.Estimator: one EstimateReq frame, one
// response, per-query result-or-error in request order — the same
// partial-success contract as the HTTP backend and the embedded one.
func (x *XTP) EstimateBatch(ctx context.Context, queries []string) ([]xseed.Result, error) {
	if x.synopsis == "" {
		return nil, fmt.Errorf("client: no synopsis bound (use Synopsis(name) or WithXTPSynopsis)")
	}
	cn, err := x.getConn()
	if err != nil {
		return nil, err
	}
	call := cn.register(callEstimate)
	buf := wire.GetBuf()
	*buf = wire.AppendEstimateReq(*buf, x.synopsis, queries, false)
	err = cn.writeFrame(wire.FrameEstimateReq, call.corr, *buf)
	wire.PutBuf(buf)
	if err != nil {
		cn.unregister(call.corr)
		cn.close(api.Errorf(api.CodeUnavailable, "xtp write: %s", err))
		return nil, api.Errorf(api.CodeUnavailable, "xtp write: %s", err)
	}
	select {
	case <-ctx.Done():
		// Abandon this call only: the response, when it arrives, finds no
		// pending entry and is dropped; the connection and every other
		// in-flight call continue untouched.
		cn.unregister(call.corr)
		return nil, ctx.Err()
	case res := <-call.ch:
		if res.err != nil {
			return nil, res.err
		}
		items, err := wire.DecodeEstimateResp(res.payload)
		if err != nil {
			cn.close(api.Errorf(api.CodeUnavailable, "xtp response decode: %s", err))
			return nil, err
		}
		return resultsFromItems(items, len(queries))
	}
}

// Feedback implements xseed.Estimator, fire-and-forget: it returns once
// the record is written and a window slot is held; the ack is consumed in
// the background. A full window (window size in-flight unacked records)
// blocks until acks drain — that backpressure, not an unbounded queue, is
// what keeps a feedback firehose from overrunning the server. Ack errors
// (unknown synopsis, parse failure) surface on Flush or Close.
func (x *XTP) Feedback(ctx context.Context, query string, actual float64) error {
	if x.synopsis == "" {
		return fmt.Errorf("client: no synopsis bound (use Synopsis(name) or WithXTPSynopsis)")
	}
	cn, err := x.getConn()
	if err != nil {
		return err
	}
	select {
	case cn.fbTokens <- struct{}{}: // acquire a window slot; the ack returns it
	case <-ctx.Done():
		return ctx.Err()
	case <-cn.closedCh:
		return cn.err()
	}
	call := cn.register(callFeedback)
	buf := wire.GetBuf()
	*buf = wire.AppendFeedbackReq(*buf, x.synopsis, query, actual)
	err = cn.writeFrame(wire.FrameFeedbackReq, call.corr, *buf)
	wire.PutBuf(buf)
	if err != nil {
		cn.unregister(call.corr)
		<-cn.fbTokens
		cn.close(api.Errorf(api.CodeUnavailable, "xtp write: %s", err))
		return api.Errorf(api.CodeUnavailable, "xtp write: %s", err)
	}
	return nil
}

// FeedbackBatch implements xseed.Estimator: one FeedbackBatchReq frame
// carrying every observation, one ack with per-item outcomes in request
// order. Unlike single-event Feedback it is synchronous — the ack already
// rode one coalesced publication and one group-commit flush server-side, so
// there is no window to pipeline through — and its per-item errors return
// directly instead of surfacing on Flush.
func (x *XTP) FeedbackBatch(ctx context.Context, items []xseed.FeedbackObs) ([]error, error) {
	if x.synopsis == "" {
		return nil, fmt.Errorf("client: no synopsis bound (use Synopsis(name) or WithXTPSynopsis)")
	}
	cn, err := x.getConn()
	if err != nil {
		return nil, err
	}
	wi := make([]api.FeedbackItem, len(items))
	for i, it := range items {
		wi[i] = api.FeedbackItem{Query: it.Query, Actual: it.Actual}
	}
	call := cn.register(callEstimate)
	buf := wire.GetBuf()
	*buf = wire.AppendFeedbackBatchReq(*buf, x.synopsis, wi)
	err = cn.writeFrame(wire.FrameFeedbackBatchReq, call.corr, *buf)
	wire.PutBuf(buf)
	if err != nil {
		cn.unregister(call.corr)
		cn.close(api.Errorf(api.CodeUnavailable, "xtp write: %s", err))
		return nil, api.Errorf(api.CodeUnavailable, "xtp write: %s", err)
	}
	select {
	case <-ctx.Done():
		cn.unregister(call.corr)
		return nil, ctx.Err()
	case res := <-call.ch:
		if res.err != nil {
			return nil, res.err
		}
		aerrs, err := wire.DecodeFeedbackBatchAck(res.payload)
		if err != nil {
			cn.close(api.Errorf(api.CodeUnavailable, "xtp response decode: %s", err))
			return nil, err
		}
		if len(aerrs) != len(items) {
			return nil, fmt.Errorf("client: server returned %d results for %d feedback items", len(aerrs), len(items))
		}
		errs := make([]error, len(items))
		for i, ae := range aerrs {
			if ae != nil {
				errs[i] = ae
			}
		}
		return errs, nil
	}
}

// Flush blocks until every in-flight feedback record has been acked (or
// the connection died), then reports and clears the first ack failure
// observed since the last Flush. Use it as a barrier before trusting that
// feedback landed — e.g. before reading accuracy stats.
func (x *XTP) Flush(ctx context.Context) error {
	root := x.sharedSelf()
	root.mu.Lock()
	cn := root.conn
	root.mu.Unlock()
	if cn != nil {
		// Acquire the entire window: possible only once every in-flight
		// slot has been returned by its ack, i.e. the pipeline is empty.
		held := 0
	acquire:
		for held < cap(cn.fbTokens) {
			select {
			case cn.fbTokens <- struct{}{}:
				held++
			case <-ctx.Done():
				for ; held > 0; held-- {
					<-cn.fbTokens
				}
				return ctx.Err()
			case <-cn.closedCh:
				break acquire // conn died; its readLoop settled all slots
			}
		}
		for ; held > 0; held-- {
			<-cn.fbTokens
		}
	}
	return x.takeFeedbackErr()
}

// Ping round-trips a liveness probe (the xtp analogue of Client.Health).
func (x *XTP) Ping(ctx context.Context) error {
	cn, err := x.getConn()
	if err != nil {
		return err
	}
	call := cn.register(callEstimate)
	if err := cn.writeFrame(wire.FramePing, call.corr, nil); err != nil {
		cn.unregister(call.corr)
		cn.close(api.Errorf(api.CodeUnavailable, "xtp write: %s", err))
		return api.Errorf(api.CodeUnavailable, "xtp write: %s", err)
	}
	select {
	case <-ctx.Done():
		cn.unregister(call.corr)
		return ctx.Err()
	case res := <-call.ch:
		return res.err
	}
}

// Stats fetches server-wide stats over the binary transport (the payload
// rides as JSON — stats is a cold path; see docs/PROTOCOL.md).
func (x *XTP) Stats(ctx context.Context) (api.Stats, error) {
	var st api.Stats
	cn, err := x.getConn()
	if err != nil {
		return st, err
	}
	call := cn.register(callEstimate)
	if err := cn.writeFrame(wire.FrameStatsReq, call.corr, nil); err != nil {
		cn.unregister(call.corr)
		cn.close(api.Errorf(api.CodeUnavailable, "xtp write: %s", err))
		return st, api.Errorf(api.CodeUnavailable, "xtp write: %s", err)
	}
	select {
	case <-ctx.Done():
		cn.unregister(call.corr)
		return st, ctx.Err()
	case res := <-call.ch:
		if res.err != nil {
			return st, res.err
		}
		if err := json.Unmarshal(res.payload, &st); err != nil {
			return st, fmt.Errorf("client: decode stats: %w", err)
		}
		return st, nil
	}
}

// callKind distinguishes response-bearing calls from windowed feedbacks.
type callKind int

const (
	callEstimate callKind = iota // waiter on call.ch (estimate/ping/stats)
	callFeedback                 // acked in the background, returns a window slot
)

// xresult is a demultiplexed response: the frame payload (copied out of
// the reader's scratch) or the call's terminal error.
type xresult struct {
	payload []byte
	err     error
}

// xcall is one in-flight request.
type xcall struct {
	corr uint64
	kind callKind
	ch   chan xresult // buffered(1); unused for callFeedback
}

// xconn is one multiplexed client connection: a writer shared under wmu
// and a reader goroutine that routes responses by correlation ID.
type xconn struct {
	c     net.Conn
	owner *XTP

	wmu sync.Mutex
	w   *wire.Writer

	// r is created at dial (the dial-time auth exchange shares its buffer
	// with the read loop) and owned by readLoop thereafter.
	r *wire.Reader

	mu       sync.Mutex
	pending  map[uint64]*xcall
	nextCorr uint64
	failure  error

	fbTokens chan struct{} // counting semaphore: in-flight unacked feedbacks

	closeOnce sync.Once
	closedCh  chan struct{}
}

func (cn *xconn) register(kind callKind) *xcall {
	cn.mu.Lock()
	cn.nextCorr++
	call := &xcall{corr: cn.nextCorr, kind: kind}
	if kind != callFeedback {
		call.ch = make(chan xresult, 1)
	}
	cn.pending[call.corr] = call
	cn.mu.Unlock()
	return call
}

func (cn *xconn) unregister(corr uint64) {
	cn.mu.Lock()
	delete(cn.pending, corr)
	cn.mu.Unlock()
}

func (cn *xconn) writeFrame(t wire.FrameType, corr uint64, payload []byte) error {
	cn.wmu.Lock()
	defer cn.wmu.Unlock()
	return cn.w.WriteFrame(t, corr, payload)
}

func (cn *xconn) dead() bool {
	select {
	case <-cn.closedCh:
		return true
	default:
		return false
	}
}

func (cn *xconn) err() error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	if cn.failure != nil {
		return cn.failure
	}
	return api.Errorf(api.CodeUnavailable, "xtp connection closed")
}

// close tears the connection down once: fails every pending call, settles
// every in-flight feedback slot, and retires the conn from its owner.
func (cn *xconn) close(cause *api.Error) {
	cn.closeOnce.Do(func() {
		cn.mu.Lock()
		cn.failure = cause
		pending := cn.pending
		cn.pending = make(map[uint64]*xcall)
		cn.mu.Unlock()
		cn.c.Close()
		close(cn.closedCh)
		for _, call := range pending {
			switch call.kind {
			case callFeedback:
				<-cn.fbTokens // settle the window slot
				cn.owner.recordFeedbackErr(cause)
			default:
				call.ch <- xresult{err: cause}
			}
		}
		cn.owner.retire(cn)
	})
}

// readLoop demultiplexes responses until the connection dies. It owns the
// wire.Reader, whose payload buffer it copies before handing a response to
// a waiter.
func (cn *xconn) readLoop() {
	r := cn.r
	for {
		f, err := r.ReadFrame()
		if err != nil {
			cn.close(api.Errorf(api.CodeUnavailable, "xtp connection lost: %s", err))
			return
		}
		switch f.Type {
		case wire.FrameGoaway:
			// Server is draining: route new calls to a fresh connection,
			// keep reading — in-flight responses still arrive here.
			cn.owner.retire(cn)
			continue
		}
		cn.mu.Lock()
		call, ok := cn.pending[f.Corr]
		if ok {
			delete(cn.pending, f.Corr)
		}
		cn.mu.Unlock()
		if !ok {
			continue // canceled call's late response; drop it
		}
		switch call.kind {
		case callFeedback:
			cn.settleFeedback(f)
		default:
			cn.settleCall(call, f)
		}
	}
}

// settleFeedback consumes one FeedbackAck: return the window slot, record
// any error for Flush.
func (cn *xconn) settleFeedback(f wire.Frame) {
	<-cn.fbTokens
	switch f.Type {
	case wire.FrameFeedbackAck:
		ae, err := wire.DecodeFeedbackAck(f.Payload)
		switch {
		case err != nil:
			cn.owner.recordFeedbackErr(err)
		case ae != nil:
			cn.owner.recordFeedbackErr(ae)
		}
	case wire.FrameError:
		if ae, err := wire.DecodeError(f.Payload); err == nil {
			cn.owner.recordFeedbackErr(ae)
		} else {
			cn.owner.recordFeedbackErr(err)
		}
	default:
		cn.owner.recordFeedbackErr(fmt.Errorf("client: unexpected %s ack for feedback", f.Type))
	}
}

// settleCall delivers a response to its waiter, translating Error frames
// into typed errors and copying the payload out of the reader's scratch.
func (cn *xconn) settleCall(call *xcall, f wire.Frame) {
	switch f.Type {
	case wire.FrameError:
		ae, err := wire.DecodeError(f.Payload)
		if err != nil {
			call.ch <- xresult{err: err}
			return
		}
		call.ch <- xresult{err: ae}
	default:
		payload := make([]byte, len(f.Payload))
		copy(payload, f.Payload)
		call.ch <- xresult{payload: payload}
	}
}

var _ xseed.Estimator = (*XTP)(nil)
