package client

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/fixtures"
	"xseed/internal/obs"
	"xseed/internal/server"
)

// newXTPBackend serves the binary protocol on loopback over a registry
// preloaded with "fig2" and returns the address to dial. om may be nil.
func newXTPBackend(t testing.TB, om *obs.Registry) (*server.Registry, string) {
	t.Helper()
	reg := server.NewRegistry(1024, 0)
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	x := server.NewXTP(reg, server.XTPOptions{Metrics: om})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- x.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := x.Shutdown(ctx); err != nil {
			t.Errorf("xtp shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("xtp serve: %v", err)
		}
		reg.Close()
	})
	return reg, ln.Addr().String()
}

func TestXTPClientEstimateFeedbackStats(t *testing.T) {
	_, addr := newXTPBackend(t, nil)
	x, err := DialXTP(addr, WithXTPSynopsis("fig2"))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	ctx := context.Background()

	if err := x.Ping(ctx); err != nil {
		t.Fatalf("ping = %v", err)
	}

	res, err := x.EstimateBatch(ctx, []string{"/a/c/s", "//s//p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Err != nil || res[0].Estimate <= 0 || res[1].Estimate <= 0 {
		t.Fatalf("batch = %+v", res)
	}

	// Feedback is fire-and-forget; Flush is the barrier after which its
	// effect (and any ack error) is visible.
	doc, _ := xseed.ParseXMLString(fixtures.PaperFigure2)
	actual, err := doc.Count("/a/c/s")
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Feedback(ctx, "/a/c/s", float64(actual)); err != nil {
		t.Fatal(err)
	}
	if err := x.Flush(ctx); err != nil {
		t.Fatalf("flush = %v", err)
	}
	est, err := xseed.Estimate(ctx, x, "/a/c/s")
	if err != nil {
		t.Fatal(err)
	}
	if est != float64(actual) {
		t.Fatalf("post-feedback estimate = %v, want %d", est, actual)
	}

	st, err := x.Stats(ctx)
	if err != nil || len(st.Synopses) != 1 || st.Synopses[0].Feedbacks != 1 {
		t.Fatalf("stats = %+v, %v", st, err)
	}
}

// TestXTPClientCoalescing: concurrent batches share one connection — the
// point of pipelining — and every caller gets its own answer back.
func TestXTPClientCoalescing(t *testing.T) {
	om := obs.NewRegistry()
	_, addr := newXTPBackend(t, om)
	x, err := DialXTP(addr, WithXTPSynopsis("fig2"))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	const callers = 16
	var wg sync.WaitGroup
	errc := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				q := fmt.Sprintf("/a/c/s[%d]", i*8+j)
				res, err := x.EstimateBatch(context.Background(), []string{q})
				if err != nil {
					errc <- err
					return
				}
				if len(res) != 1 || res[0].Err != nil {
					errc <- fmt.Errorf("caller %d: %+v", i, res)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := om.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "xseed_xtp_connections_total 1") {
		t.Fatalf("concurrent callers did not coalesce onto one connection:\n%s",
			grepLines(sb.String(), "xseed_xtp_connections"))
	}
}

// TestXTPClientCancelKeepsConnection: abandoning one call must not tear
// down the shared connection other calls are multiplexed over.
func TestXTPClientCancelKeepsConnection(t *testing.T) {
	om := obs.NewRegistry()
	_, addr := newXTPBackend(t, om)
	x, err := DialXTP(addr, WithXTPSynopsis("fig2"))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := x.EstimateBatch(ctx, []string{"/a/c/s"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch = %v, want context.Canceled", err)
	}

	// The next call rides the same connection; its late predecessor's
	// response (if any) was dropped by the demultiplexer.
	res, err := x.EstimateBatch(context.Background(), []string{"/a/c/s"})
	if err != nil || len(res) != 1 || res[0].Err != nil {
		t.Fatalf("batch after cancel = %+v, %v", res, err)
	}
	var sb strings.Builder
	om.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "xseed_xtp_connections_total 1") {
		t.Fatalf("cancellation redialed:\n%s", grepLines(sb.String(), "xseed_xtp_connections"))
	}
}

// TestXTPClientRedial: a dead server fails in-flight calls with a typed
// unavailable error; once something is listening again the same client
// reconnects on the next call — no new DialXTP needed.
func TestXTPClientRedial(t *testing.T) {
	reg := server.NewRegistry(64, 0)
	defer reg.Close()
	doc, _ := xseed.ParseXMLString(fixtures.PaperFigure2)
	syn, err := xseed.BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}

	x1 := server.NewXTP(reg, server.XTPOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	done := make(chan error, 1)
	go func() { done <- x1.Serve(ln) }()

	c, err := DialXTP(addr, WithXTPSynopsis("fig2"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.EstimateBatch(context.Background(), []string{"/a/c/s"}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := x1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Down: typed unavailable, not a hang or a panic.
	_, err = c.EstimateBatch(context.Background(), []string{"/a/c/s"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnavailable {
		t.Fatalf("estimate against dead server = %v, want %s", err, api.CodeUnavailable)
	}

	// Back up on the same port: the client redials transparently.
	x2 := server.NewXTP(reg, server.XTPOptions{})
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	done2 := make(chan error, 1)
	go func() { done2 <- x2.Serve(ln2) }()
	defer func() {
		x2.Shutdown(context.Background())
		<-done2
	}()
	res, err := c.EstimateBatch(context.Background(), []string{"/a/c/s"})
	if err != nil || len(res) != 1 || res[0].Err != nil {
		t.Fatalf("estimate after redial = %+v, %v", res, err)
	}
}

// TestXTPClientFeedbackWindowAndFlush: ack errors from fire-and-forget
// feedback surface on Flush — including with far more records in flight
// than the window admits at once.
func TestXTPClientFeedbackWindowAndFlush(t *testing.T) {
	_, addr := newXTPBackend(t, nil)
	x, err := DialXTP(addr, WithFeedbackWindow(4))
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	ctx := context.Background()

	bad := x.Synopsis("nope")
	for i := 0; i < 32; i++ { // 8× the window: exercises blocking + draining
		if err := bad.Feedback(ctx, "/a", 1); err != nil {
			t.Fatalf("feedback enqueue %d = %v", i, err)
		}
	}
	err = x.Flush(ctx)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Fatalf("flush = %v, want not_found", err)
	}
	// The error was consumed; a clean pipeline flushes clean.
	if err := x.Flush(ctx); err != nil {
		t.Fatalf("second flush = %v", err)
	}

	good := x.Synopsis("fig2")
	if err := good.Feedback(ctx, "/a/c/s", 2); err != nil {
		t.Fatal(err)
	}
	if err := good.Flush(ctx); err != nil {
		t.Fatalf("flush after good feedback = %v", err)
	}
}

// TestXTPClientVersionMismatch: a server speaking a different protocol
// version is refused at dial time with the versions in the error.
func TestXTPClientVersionMismatch(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		buf := make([]byte, 4)
		c.Read(buf)
		c.Write([]byte{'X', 'T', 'P', 99})
	}()
	_, err = DialXTP(ln.Addr().String())
	if err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("dial future-versioned server = %v, want version mismatch", err)
	}
}

func TestXTPClientRequiresSynopsis(t *testing.T) {
	_, addr := newXTPBackend(t, nil)
	x, err := DialXTP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if _, err := x.EstimateBatch(context.Background(), []string{"/a"}); err == nil ||
		!strings.Contains(err.Error(), "no synopsis bound") {
		t.Fatalf("unbound estimate = %v", err)
	}
	if err := x.Feedback(context.Background(), "/a", 1); err == nil ||
		!strings.Contains(err.Error(), "no synopsis bound") {
		t.Fatalf("unbound feedback = %v", err)
	}
}

// grepLines filters exposition output for failure messages.
func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
