// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark report on stdout, for CI artifacts (BENCH_ci.json):
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson > BENCH_ci.json
//
// Each benchmark line becomes {op, iters, ns_per_op, bytes_per_op,
// allocs_per_op, extra{...}}; goos/goarch/cpu/pkg context lines are captured
// into the report header. The tool exits non-zero if the stream contains no
// benchmark lines or contains a FAIL line, so a broken bench run fails the
// CI job instead of uploading an empty artifact.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	Op          string             `json:"op"`
	Pkg         string             `json:"pkg,omitempty"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Report is the BENCH_ci.json payload.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	rep := Report{Results: []Result{}}
	failed := false
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBenchLine(line); ok {
				r.Pkg = pkg
				rep.Results = append(rep.Results, r)
			}
		case strings.HasPrefix(line, "FAIL"), strings.HasPrefix(line, "--- FAIL"):
			failed = true
			fmt.Fprintln(os.Stderr, "benchjson:", line)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson: read stdin:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchjson: bench stream contains failures")
		os.Exit(1)
	}
	if len(rep.Results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines in input")
		os.Exit(1)
	}
}

// parseBenchLine parses a line like
//
//	BenchmarkFoo-8   123   4567 ns/op   89 B/op   2 allocs/op   1.5 MB/s
//
// Fields alternate value/unit after the iteration count; unknown units land
// in Extra.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Op: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		default:
			if r.Extra == nil {
				r.Extra = map[string]float64{}
			}
			r.Extra[fields[i+1]] = v
		}
	}
	return r, true
}
