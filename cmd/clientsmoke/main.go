// Command clientsmoke is the CI client↔server end-to-end smoke: pointed at
// a live xseedd, it drives the full SDK surface — create from a generated
// dataset, batch estimates, typed-error mapping for a bogus query and a
// missing synopsis, feedback self-tuning verified against exact local
// cardinalities, and context cancellation — and exits non-zero on the
// first deviation from the wire contract.
//
// With -xtp it repeats the estimation surface over the binary protocol
// (docs/PROTOCOL.md) against the daemon's -xtp listener: pipelined batch
// estimates, typed-error parity, windowed feedback with a Flush barrier,
// and liveness pings — proving both transports serve the same contract
// outside httptest.
//
// With -token/-token2 (two distinct tenants' bearer tokens for a daemon
// running -tenants) it additionally proves tenant isolation end to end:
// the main smoke runs tokenless first — a tenanted daemon must serve
// pre-tenancy clients unchanged via the default tenant — then tenant 1
// creates a synopsis that tenant 2 must not see (typed not_found on both
// transports, absent from its list), and a bogus token is a typed
// unauthorized on HTTP and a typed dial failure on xtp.
//
// Usage: clientsmoke -addr http://127.0.0.1:PORT [-xtp 127.0.0.1:PORT2]
//
//	[-token TOK1 -token2 TOK2]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"xseed"
	"xseed/api"
	"xseed/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "xseedd base URL")
	xtpAddr := flag.String("xtp", "", "xseedd xtp listener (host:port; empty = skip the binary-protocol smoke)")
	token := flag.String("token", "", "tenant 1 bearer token (with -token2: run the tenant-isolation smoke)")
	token2 := flag.String("token2", "", "tenant 2 bearer token (must belong to a different tenant than -token)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("clientsmoke: ")
	if (*token == "") != (*token2 == "") {
		log.Print("-token and -token2 must be set together")
		os.Exit(2)
	}
	if err := run(*addr, *xtpAddr); err != nil {
		log.Print(err)
		os.Exit(1)
	}
	if *token != "" {
		if err := runTenancy(*addr, *xtpAddr, *token, *token2); err != nil {
			log.Printf("tenancy: %v", err)
			os.Exit(1)
		}
	}
	fmt.Println("clientsmoke: ok")
}

func run(addr, xtpAddr string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c, err := client.New(addr, client.WithRetry(20, 250*time.Millisecond))
	if err != nil {
		return err
	}

	// Health (with retries: the daemon may still be binding its port).
	if err := c.Health(ctx); err != nil {
		return fmt.Errorf("health: %w", err)
	}

	// Create from a generated dataset.
	const name = "smoke-xmark"
	c.Delete(ctx, name) // tolerate a previous partial run
	info, err := c.Create(ctx, api.CreateRequest{Name: name, Dataset: "xmark", Factor: 0.005, Seed: 7})
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	if info.KernelBytes <= 0 {
		return fmt.Errorf("create info = %+v", info)
	}

	// Batch estimate with a bogus query in the middle: partial success with
	// a typed parse error carrying the offset.
	syn := c.Synopsis(name)
	queries := []string{"//person", "/site/open_auctions]broken", "//item[shipping]/location"}
	res, err := syn.EstimateBatch(ctx, queries)
	if err != nil {
		return fmt.Errorf("batch estimate: %w", err)
	}
	if len(res) != 3 || res[0].Err != nil || res[0].Estimate <= 0 || res[2].Err != nil || res[2].Estimate <= 0 {
		return fmt.Errorf("batch results = %+v", res)
	}
	var apiErr *api.Error
	if !errors.As(res[1].Err, &apiErr) || apiErr.Code != api.CodeParseError {
		return fmt.Errorf("bogus query error = %v, want code %s", res[1].Err, api.CodeParseError)
	}
	if d, ok := apiErr.ParseDetail(); !ok || d.Offset != len("/site/open_auctions") {
		return fmt.Errorf("parse detail = %+v (ok=%v), want offset %d", apiErr, ok, len("/site/open_auctions"))
	}

	// Typed not-found for an unknown synopsis.
	if _, err := c.Synopsis("no-such-synopsis").EstimateBatch(ctx, []string{"//person"}); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		return fmt.Errorf("unknown synopsis error = %v, want code %s", err, api.CodeNotFound)
	}

	// Feedback self-tuning, verified against the exact cardinality computed
	// from the identical locally generated document.
	doc, err := xseed.Generate("xmark", 0.005, 7)
	if err != nil {
		return err
	}
	actual, err := doc.Count("//person")
	if err != nil {
		return err
	}
	if err := syn.Feedback(ctx, "//person", float64(actual)); err != nil {
		return fmt.Errorf("feedback: %w", err)
	}
	est, err := xseed.Estimate(ctx, syn, "//person")
	if err != nil {
		return err
	}
	if est != float64(actual) {
		return fmt.Errorf("post-feedback estimate = %v, want exact %d", est, actual)
	}

	// Cancellation: a canceled context surfaces as context.Canceled.
	cctx, ccancel := context.WithCancel(ctx)
	ccancel()
	if _, err := syn.EstimateBatch(cctx, []string{"//person"}); !errors.Is(err, context.Canceled) {
		return fmt.Errorf("canceled batch = %v, want context.Canceled", err)
	}

	// The same contract over the binary protocol, against the synopsis the
	// HTTP smoke just tuned.
	if xtpAddr != "" {
		if err := runXTP(ctx, xtpAddr, name, queries, actual); err != nil {
			return fmt.Errorf("xtp: %w", err)
		}
	}

	// Clean up and confirm the typed not-found on re-delete.
	if err := c.Delete(ctx, name); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	if err := c.Delete(ctx, name); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		return fmt.Errorf("double delete = %v, want code %s", err, api.CodeNotFound)
	}
	return nil
}

// runXTP drives the estimation surface over the xtp binary protocol:
// same queries, same typed errors, same post-feedback exactness as the
// HTTP pass — transport parity against a real daemon.
func runXTP(ctx context.Context, addr, name string, queries []string, actual int64) error {
	x, err := client.DialXTP(addr, client.WithXTPSynopsis(name))
	if err != nil {
		return fmt.Errorf("dial: %w", err)
	}
	defer x.Close()

	if err := x.Ping(ctx); err != nil {
		return fmt.Errorf("ping: %w", err)
	}

	// The HTTP pass already fed back the exact //person cardinality; the
	// binary transport must see the identical tuned estimate.
	res, err := x.EstimateBatch(ctx, queries)
	if err != nil {
		return fmt.Errorf("batch estimate: %w", err)
	}
	if len(res) != 3 || res[0].Err != nil || res[2].Err != nil {
		return fmt.Errorf("batch results = %+v", res)
	}
	if res[0].Estimate != float64(actual) {
		return fmt.Errorf("tuned //person estimate over xtp = %v, want exact %d", res[0].Estimate, actual)
	}
	var apiErr *api.Error
	if !errors.As(res[1].Err, &apiErr) || apiErr.Code != api.CodeParseError {
		return fmt.Errorf("bogus query error = %v, want code %s", res[1].Err, api.CodeParseError)
	}
	if d, ok := apiErr.ParseDetail(); !ok || d.Offset != len("/site/open_auctions") {
		return fmt.Errorf("parse detail = %+v (ok=%v)", apiErr, ok)
	}

	// Typed not-found, same taxonomy as HTTP.
	if _, err := x.Synopsis("no-such-synopsis").EstimateBatch(ctx, []string{"//person"}); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		return fmt.Errorf("unknown synopsis error = %v, want code %s", err, api.CodeNotFound)
	}

	// Fire-and-forget feedback: enqueue, then Flush as the ack barrier.
	if err := x.Feedback(ctx, "//item[shipping]/location", res[2].Estimate); err != nil {
		return fmt.Errorf("feedback enqueue: %w", err)
	}
	if err := x.Flush(ctx); err != nil {
		return fmt.Errorf("feedback flush: %w", err)
	}

	// Stats over the binary transport sees the same registry.
	st, err := x.Stats(ctx)
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	found := false
	for _, s := range st.Synopses {
		found = found || s.Name == name
	}
	if !found {
		return fmt.Errorf("stats over xtp misses synopsis %q", name)
	}

	// Cancellation leaves the shared connection usable.
	cctx, ccancel := context.WithCancel(ctx)
	ccancel()
	if _, err := x.EstimateBatch(cctx, []string{"//person"}); !errors.Is(err, context.Canceled) {
		return fmt.Errorf("canceled batch = %v, want context.Canceled", err)
	}
	if _, err := x.EstimateBatch(ctx, []string{"//person"}); err != nil {
		return fmt.Errorf("batch after cancel: %w", err)
	}
	return nil
}

// runTenancy proves tenant isolation against a live -tenants daemon: a
// synopsis created by tenant 1 is invisible to tenant 2 (typed not_found
// on HTTP and xtp, absent from its list), a bogus bearer token is a typed
// unauthorized on HTTP and a typed dial failure on xtp, and tenant 1
// itself sees its synopsis over both transports the whole time.
func runTenancy(addr, xtpAddr, tok1, tok2 string) error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	c1, err := client.New(addr, client.WithToken(tok1))
	if err != nil {
		return err
	}
	c2, err := client.New(addr, client.WithToken(tok2))
	if err != nil {
		return err
	}

	const name = "smoke-tenant"
	c1.Delete(ctx, name) // tolerate a previous partial run
	if _, err := c1.Create(ctx, api.CreateRequest{Name: name, XML: "<a><b/><b><c/></b></a>"}); err != nil {
		return fmt.Errorf("tenant1 create: %w", err)
	}

	// Tenant 2 must not see tenant 1's synopsis: a typed not_found on a
	// direct estimate, and no leak through the listing either.
	var apiErr *api.Error
	if _, err := c2.Synopsis(name).EstimateBatch(ctx, []string{"/a/b"}); !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		return fmt.Errorf("tenant2 estimate on tenant1's synopsis = %v, want code %s", err, api.CodeNotFound)
	}
	list2, err := c2.List(ctx)
	if err != nil {
		return fmt.Errorf("tenant2 list: %w", err)
	}
	for _, s := range list2 {
		if s.Name == name {
			return fmt.Errorf("tenant2 list leaks tenant1's synopsis %q", name)
		}
	}

	// A bogus token is a typed unauthorized — never a fallthrough to the
	// default tenant.
	cbad, err := client.New(addr, client.WithToken(tok1+"-definitely-wrong"))
	if err != nil {
		return err
	}
	if _, err := cbad.List(ctx); !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnauthorized {
		return fmt.Errorf("bogus token list = %v, want code %s", err, api.CodeUnauthorized)
	}

	// Tenant 1 itself sees its synopsis, so the not_founds above are
	// isolation, not a broken fixture.
	if res, err := c1.Synopsis(name).EstimateBatch(ctx, []string{"/a/b"}); err != nil || len(res) != 1 || res[0].Err != nil || res[0].Estimate <= 0 {
		return fmt.Errorf("tenant1 estimate = %+v, %v, want success", res, err)
	}

	// The same three outcomes over the binary protocol.
	if xtpAddr != "" {
		x2, err := client.DialXTP(xtpAddr, client.WithXTPToken(tok2), client.WithXTPSynopsis(name))
		if err != nil {
			return fmt.Errorf("tenant2 xtp dial: %w", err)
		}
		_, xerr := x2.EstimateBatch(ctx, []string{"/a/b"})
		x2.Close()
		if !errors.As(xerr, &apiErr) || apiErr.Code != api.CodeNotFound {
			return fmt.Errorf("tenant2 xtp estimate on tenant1's synopsis = %v, want code %s", xerr, api.CodeNotFound)
		}

		if _, err := client.DialXTP(xtpAddr, client.WithXTPToken(tok1+"-definitely-wrong")); !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnauthorized {
			return fmt.Errorf("bogus token xtp dial = %v, want code %s", err, api.CodeUnauthorized)
		}

		x1, err := client.DialXTP(xtpAddr, client.WithXTPToken(tok1), client.WithXTPSynopsis(name))
		if err != nil {
			return fmt.Errorf("tenant1 xtp dial: %w", err)
		}
		res, err := x1.EstimateBatch(ctx, []string{"/a/b"})
		x1.Close()
		if err != nil || len(res) != 1 || res[0].Err != nil || res[0].Estimate <= 0 {
			return fmt.Errorf("tenant1 xtp estimate = %+v, %v, want success", res, err)
		}
	}

	if err := c1.Delete(ctx, name); err != nil {
		return fmt.Errorf("tenant1 delete: %w", err)
	}
	return nil
}
