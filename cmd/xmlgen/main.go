// Command xmlgen writes one of the built-in synthetic datasets as an XML
// file, for use with external tools or the xseed command.
//
// Usage:
//
//	xmlgen -dataset dblp -factor 0.05 -seed 1 -o dblp.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xseed/internal/datagen"
	"xseed/internal/xmldoc"
)

func main() {
	dataset := flag.String("dataset", "dblp", "dataset: "+strings.Join(datagen.Names(), ", "))
	factor := flag.Float64("factor", 0.05, "scale factor (1.0 = paper-size)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	src, err := datagen.New(*dataset, *factor, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmlgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	dict := xmldoc.NewDict()
	xw := xmldoc.NewXMLWriter(w, dict)
	if err := src.Emit(dict, xw); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
	if err := xw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
}
