// Command xseed builds XSEED synopses from XML files and estimates path
// query cardinalities with them.
//
// Subcommands:
//
//	xseed stats    -xml doc.xml
//	    Print document statistics (the paper's Table 2 columns) and the
//	    kernel size.
//
//	xseed build    -xml doc.xml -o doc.xsd [-mbp 1] [-budget 25600]
//	    Build a synopsis (kernel + HET) and write it to a file.
//
//	xseed estimate (-xml doc.xml | -synopsis doc.xsd) query...
//	    Estimate the cardinality of each query.
//
//	xseed eval     -xml doc.xml query...
//	    Evaluate each query exactly (NoK scan) and print actual counts.
//
//	xseed compare  -xml doc.xml [-mbp 1] [-budget 0] query...
//	    Print estimate vs actual side by side with relative error.
//
//	xseed ept      -xml doc.xml [-threshold 0]
//	    Dump the expanded path tree as annotated XML (paper Section 4).
//
//	xseed serve    [-addr :8080] [-cache 4096] [-budget 0] [-store-dir DIR]
//	               [-synopsis name=path]...
//	    Run the xseedd estimation server (same daemon as cmd/xseedd):
//	    a synopsis registry with a sharded estimate cache behind an HTTP
//	    JSON API, persisted to -store-dir when given. See the xseedd
//	    command documentation for the endpoints and store flags.
package main

import (
	"flag"
	"fmt"
	"os"

	"xseed"
	"xseed/internal/estimate"
	"xseed/internal/kernel"
	"xseed/internal/server"
	"xseed/internal/xmldoc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "stats":
		runStats(args)
	case "build":
		runBuild(args)
	case "estimate":
		runEstimate(args)
	case "eval":
		runEval(args)
	case "compare":
		runCompare(args)
	case "ept":
		runEPT(args)
	case "serve":
		if err := server.RunCLI("xseed serve", args); err != nil {
			fail(err)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: xseed {stats|build|estimate|eval|compare|ept|serve} [flags] [query...]")
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xseed:", err)
	os.Exit(1)
}

func loadDoc(path string) *xseed.Document {
	if path == "" {
		fail(fmt.Errorf("missing -xml"))
	}
	d, err := xseed.LoadFile(path)
	if err != nil {
		fail(err)
	}
	return d
}

func runStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	xml := fs.String("xml", "", "XML input file")
	fs.Parse(args)
	d := loadDoc(*xml)
	st := d.Stats()
	syn, err := xseed.KernelOnly(d, nil)
	if err != nil {
		fail(err)
	}
	fmt.Printf("nodes:          %d\n", st.Nodes)
	fmt.Printf("labels:         %d\n", st.Labels)
	fmt.Printf("distinct paths: %d\n", st.PathCount)
	fmt.Printf("max depth:      %d\n", st.MaxDepth)
	fmt.Printf("avg rec level:  %.4f\n", st.AvgRecLevel)
	fmt.Printf("max rec level:  %d\n", st.MaxRecLevel)
	fmt.Printf("kernel size:    %d bytes\n", syn.KernelSizeBytes())
}

func runBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	xml := fs.String("xml", "", "XML input file")
	out := fs.String("o", "", "output synopsis file")
	mbp := fs.Int("mbp", 1, "max branching predicates in HET patterns (0 = kernel only)")
	budget := fs.Int("budget", 0, "total synopsis budget in bytes (0 = unlimited)")
	bsel := fs.Float64("bsel-threshold", 0.1, "BSEL_THRESHOLD for HET pre-computation")
	threshold := fs.Float64("card-threshold", 0, "CARD_THRESHOLD for estimator traversal")
	fs.Parse(args)
	if *out == "" {
		fail(fmt.Errorf("missing -o"))
	}
	d := loadDoc(*xml)
	cfg := &xseed.Config{CardThreshold: *threshold}
	if *mbp <= 0 {
		cfg.HET = &xseed.HETConfig{Disable: true}
	} else {
		cfg.HET = &xseed.HETConfig{MBP: *mbp, BselThreshold: *bsel}
	}
	syn, err := xseed.BuildSynopsis(d, cfg)
	if err != nil {
		fail(err)
	}
	if *budget > 0 {
		syn.SetBudget(*budget)
	}
	f, err := os.Create(*out)
	if err != nil {
		fail(err)
	}
	defer f.Close()
	n, err := syn.WriteTo(f)
	if err != nil {
		fail(err)
	}
	resident, total := syn.HETEntries()
	fmt.Printf("wrote %s: %d bytes on disk; kernel %dB + HET %dB resident (%d/%d entries)\n",
		*out, n, syn.KernelSizeBytes(), syn.HETSizeBytes(), resident, total)
}

func runEstimate(args []string) {
	fs := flag.NewFlagSet("estimate", flag.ExitOnError)
	xml := fs.String("xml", "", "XML input file (build synopsis on the fly)")
	synPath := fs.String("synopsis", "", "synopsis file from `xseed build`")
	fs.Parse(args)
	var syn *xseed.Synopsis
	switch {
	case *synPath != "":
		f, err := os.Open(*synPath)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		s, err := xseed.ReadSynopsis(f)
		if err != nil {
			fail(err)
		}
		syn = s
	case *xml != "":
		s, err := xseed.BuildSynopsis(loadDoc(*xml), nil)
		if err != nil {
			fail(err)
		}
		syn = s
	default:
		fail(fmt.Errorf("need -xml or -synopsis"))
	}
	for _, q := range fs.Args() {
		est, err := syn.Estimate(q)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-50s %12.2f\n", q, est)
	}
}

func runEval(args []string) {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	xml := fs.String("xml", "", "XML input file")
	fs.Parse(args)
	d := loadDoc(*xml)
	for _, q := range fs.Args() {
		n, err := d.Count(q)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-50s %12d\n", q, n)
	}
}

func runCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	xml := fs.String("xml", "", "XML input file")
	mbp := fs.Int("mbp", 1, "max branching predicates in HET (0 = kernel only)")
	budget := fs.Int("budget", 0, "total synopsis budget in bytes (0 = unlimited)")
	fs.Parse(args)
	d := loadDoc(*xml)
	cfg := &xseed.Config{}
	if *mbp <= 0 {
		cfg.HET = &xseed.HETConfig{Disable: true}
	} else {
		cfg.HET = &xseed.HETConfig{MBP: *mbp}
	}
	syn, err := xseed.BuildSynopsis(d, cfg)
	if err != nil {
		fail(err)
	}
	if *budget > 0 {
		syn.SetBudget(*budget)
	}
	fmt.Printf("%-50s %12s %12s %9s\n", "query", "estimate", "actual", "rel.err")
	for _, q := range fs.Args() {
		est, err := syn.Estimate(q)
		if err != nil {
			fail(err)
		}
		act, err := d.Count(q)
		if err != nil {
			fail(err)
		}
		rel := 0.0
		if act != 0 {
			rel = (est - float64(act)) / float64(act)
		}
		fmt.Printf("%-50s %12.2f %12d %8.1f%%\n", q, est, act, rel*100)
	}
}

func runEPT(args []string) {
	fs := flag.NewFlagSet("ept", flag.ExitOnError)
	xml := fs.String("xml", "", "XML input file")
	threshold := fs.Float64("threshold", 0, "CARD_THRESHOLD for traversal pruning")
	fs.Parse(args)
	if *xml == "" {
		fail(fmt.Errorf("missing -xml"))
	}
	dict := xmldoc.NewDict()
	k, err := kernel.Build(xmldoc.NewParserFile(*xml), dict)
	if err != nil {
		fail(err)
	}
	fmt.Print(estimate.DumpEPTXML(k, estimate.Options{CardThreshold: *threshold}))
}
