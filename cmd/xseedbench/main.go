// Command xseedbench runs the paper's experiments (Tables 2-3, Figures 5-6,
// Section 6.4) at a configurable scale and prints paper-style tables.
//
// The accuracy experiments (table3, fig5, fig6) estimate through the
// unified xseed.Estimator interface; -remote selects the client-SDK
// backend against a live xseedd (each measured synopsis is uploaded as a
// snapshot and estimated over the wire), so the same tables verify the
// serving path end to end. Construction-timing experiments and the
// TreeSketch baseline always run embedded.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"xseed/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table2, table3, fig5, fig6, sec64, or all")
	scale := flag.Float64("scale", 0.05, "dataset scale (1.0 = paper-size datasets)")
	queries := flag.Int("queries", 200, "random queries per workload class (paper: 1000)")
	seed := flag.Int64("seed", 1, "deterministic seed for datasets and workloads")
	tsops := flag.Int64("ts-op-budget", 0, "TreeSketch construction op budget (0 = default 3e8; exceeding reports DNF)")
	remote := flag.String("remote", "", "xseedd address (host:port or URL); accuracy estimates run via the client SDK instead of embedded")
	flag.Parse()

	cfg := experiments.Config{
		Scale:              *scale,
		QueriesPerClass:    *queries,
		Seed:               *seed,
		TreeSketchOpBudget: *tsops,
		Remote:             *remote,
	}

	run := func(name string, f func() error) {
		fmt.Printf("=== %s ===\n", name)
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "xseedbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println()
	}

	want := strings.ToLower(*exp)
	all := want == "all"
	ran := false
	if all || want == "table2" {
		run("Table 2", func() error { _, err := experiments.Table2(cfg, os.Stdout); return err })
		ran = true
	}
	if all || want == "table3" {
		run("Table 3", func() error { _, err := experiments.Table3(cfg, os.Stdout); return err })
		ran = true
	}
	if all || want == "fig5" {
		run("Figure 5", func() error { _, err := experiments.Figure5(cfg, os.Stdout); return err })
		ran = true
	}
	if all || want == "fig6" {
		run("Figure 6", func() error { _, err := experiments.Figure6(cfg, os.Stdout); return err })
		ran = true
	}
	if all || want == "sec64" {
		run("Section 6.4", func() error { _, err := experiments.Section64(cfg, os.Stdout); return err })
		ran = true
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "xseedbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
