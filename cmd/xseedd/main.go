// Command xseedd is the XSEED estimation daemon: a long-lived server
// managing many named synopses concurrently, with a sharded cache of
// estimate results in front of them and an optional durable store behind
// them. It speaks HTTP JSON always and, with -xtp, the xtp binary
// protocol beside it.
//
//	xseedd [-addr :8080] [-xtp addr] [-cache 4096] [-budget 0]
//	       [-synopsis name=path]... [-tenants file.json]
//	       [-store-dir DIR] [-store-compact-ratio 0.5]
//	       [-store-compact-interval 15s] [-store-fsync[=off|batch|every]]
//	       [-store-batch-latency 2ms]
//	       [-log-format text|json] [-log-level info] [-pprof addr]
//	xseedd -store-fsck -store-dir DIR
//	xseedd -cluster topo.json -cluster-node ID -store-dir DIR   (cluster node)
//	xseedd -cluster topo.json -router                           (cluster router)
//
// Each -synopsis flag preloads one synopsis at startup from either a file
// written by `xseed build` or a raw XML document.
//
// With -store-dir the daemon is restart-safe: every registered synopsis is
// persisted as a base snapshot plus an append-only delta log (feedback,
// subtree updates, and budget changes cost O(delta) bytes each, not a full
// snapshot rewrite), a background compactor folds grown logs into fresh
// bases, and on start the whole registry is reloaded from the store's
// manifest with deltas replayed — tolerating the torn log tail a kill -9
// leaves behind. -store-fsync picks the durability mode: off (page cache),
// batch (group commit: concurrent appends share one fsync per
// -store-batch-latency window, callers ack only after their batch is
// durable), or every (one fsync per record); see the README's
// "Durability modes" table. -store-fsck validates a store directory (manifest,
// snapshot loads, delta checksums, full replay) and exits, for use as a CI
// or pre-start smoke check.
//
// The HTTP API supports creating, estimating against, tuning, and
// snapshotting synopses at runtime. Its wire contract — versioned /v1
// routes, request/response types, and the typed error taxonomy — is the
// public xseed/api package (see api/README.md for the route table), and
// xseed/client is the Go SDK over it:
//
//	POST   /v1/synopses                      build/load a named synopsis
//	GET    /v1/synopses                      list synopses
//	GET    /v1/synopses/{name}               one synopsis's stats
//	DELETE /v1/synopses/{name}               drop a synopsis
//	POST   /v1/synopses/{name}/estimate      batched estimates (partial success)
//	POST   /v1/synopses/{name}/feedback      record an actual cardinality
//	POST   /v1/synopses/{name}/feedback:batch  batched feedback (partial success)
//	POST   /v1/synopses/{name}/subtree       incremental add/remove update
//	GET    /v1/synopses/{name}/snapshot      download serialized synopsis
//	PUT    /v1/synopses/{name}/snapshot      upload serialized synopsis
//	GET    /v1/cluster/ring                  partition ring (cluster mode)
//	GET    /v1/cluster/lag                   per-target replication lag (cluster mode)
//	POST   /v1/admin/budget                  re-target the aggregate budget
//	POST   /v1/admin/compact                 fold delta logs into fresh bases
//	GET    /v1/stats                         sizes, cache hit rate, accuracy, store
//	GET    /v1/healthz                       liveness
//	GET    /metrics                          Prometheus text exposition
//
// The pre-versioning unversioned paths were removed after their
// deprecation window; they answer a typed not_found naming the /v1
// successor.
//
// -tenants FILE enables multi-tenant serving: every /v1 route then
// requires an Authorization: Bearer token resolving one of the
// configured tenants, all synopsis names are tenant-scoped, and each
// tenant gets its own rate limit, cache quota, and memory budget.
// Tokenless requests act as the built-in "default" tenant, keeping
// pre-tenancy clients working unchanged. See api/README.md
// ("Authentication and tenancy") and docs/ARCHITECTURE.md ("Tenancy").
//
// -cluster FILE runs the daemon as part of a distributed xseed cluster
// described by one shared topology file (replicas, router address, node
// addresses). With -cluster-node ID it serves as that node: the synopsis
// registry is partitioned across nodes by consistent hashing on the
// (tenant, name) key, each node streams its primaries' delta logs to
// warm standbys, and requests for synopses owned elsewhere answer a
// typed moved error (HTTP 421) naming the owner. With -router it runs
// the membership authority instead: health checks, ring epochs, join
// activation, and a retrying proxy for thin clients — never on the
// replication path. Node listen addresses come from the topology file,
// and -store-dir is required on nodes (replication is log shipping).
// client.NewCluster is the partition-aware SDK; see docs/ARCHITECTURE.md
// ("Cluster") and docs/PROTOCOL.md §4.10 for the replication wire format.
//
// -xtp ADDR opens a second listener serving the same registry over xtp,
// a length-prefixed binary protocol with request pipelining for
// latency-sensitive optimizer traffic (estimates, feedback, stats — the
// same api types and error taxonomy as HTTP, at a fraction of the
// framing cost). The wire format is specified in docs/PROTOCOL.md;
// client.DialXTP is the SDK backend. Both listeners drain in parallel on
// graceful shutdown.
//
// Observability: every request is logged through log/slog (-log-format
// json for machine-parseable access logs, -log-level to filter) with an
// X-Request-Id that is accepted from or issued to the client and echoed on
// the response. GET /metrics exposes counters, gauges, and latency/accuracy
// histograms for every layer — HTTP, estimate stages, caches, rebalancer,
// store — reading the same atomics /v1/stats reports. -pprof ADDR starts
// net/http/pprof on a separate admin-only listener; see the "Observing
// xseedd" section of the top-level README.
package main

import (
	"fmt"
	"os"

	"xseed/internal/server"
)

func main() {
	if err := server.RunCLI("xseedd", os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xseedd:", err)
		os.Exit(1)
	}
}
