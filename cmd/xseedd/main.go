// Command xseedd is the XSEED estimation daemon: a long-lived HTTP server
// managing many named synopses concurrently, with a sharded cache of
// estimate results in front of them.
//
//	xseedd [-addr :8080] [-cache 4096] [-budget 0] [-synopsis name=path]...
//
// Each -synopsis flag preloads one synopsis at startup from either a file
// written by `xseed build` or a raw XML document. The HTTP API (see
// internal/server) then supports creating, estimating against, tuning, and
// snapshotting synopses at runtime:
//
//	POST   /synopses                      build/load a named synopsis
//	GET    /synopses                      list synopses
//	GET    /synopses/{name}               one synopsis's stats
//	DELETE /synopses/{name}               drop a synopsis
//	POST   /synopses/{name}/estimate      single or batched estimates
//	POST   /synopses/{name}/feedback      record an actual cardinality
//	POST   /synopses/{name}/subtree       incremental add/remove update
//	GET    /synopses/{name}/snapshot      download serialized synopsis
//	PUT    /synopses/{name}/snapshot      upload serialized synopsis
//	GET    /stats                         sizes, cache hit rate, accuracy
//	GET    /healthz                       liveness
package main

import (
	"fmt"
	"os"

	"xseed/internal/server"
)

func main() {
	if err := server.RunCLI("xseedd", os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xseedd:", err)
		os.Exit(1)
	}
}
