package xseed

import (
	"sync"
	"testing"

	"xseed/internal/fixtures"
)

// TestConcurrentEstimates exercises the Synopsis concurrency contract: any
// number of estimate calls may run in parallel with each other (run under
// -race). Mutations are covered by the server-level RWMutex tests in
// internal/server.
func TestConcurrentEstimates(t *testing.T) {
	d, err := ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	for _, reuse := range []bool{false, true} {
		syn, err := BuildSynopsis(d, &Config{ReuseEPT: reuse})
		if err != nil {
			t.Fatal(err)
		}
		queries := []string{"/a/c/s", "/a/c/s/s/t", "//s//p", "/a/c/s[p]/t", "//s[t]", "/a/*/s"}
		want := make([]float64, len(queries))
		for i, q := range queries {
			if want[i], err = syn.Estimate(q); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					idx := (g + i) % len(queries)
					got, err := syn.Estimate(queries[idx])
					if err != nil {
						t.Error(err)
						return
					}
					if got != want[idx] {
						t.Errorf("reuse=%v %s: concurrent estimate %v, want %v", reuse, queries[idx], got, want[idx])
						return
					}
					if sg, _ := syn.EstimateStreamingQuery(MustParseQuery(queries[idx])); sg < 0 {
						t.Errorf("streaming estimate negative: %v", sg)
						return
					}
					syn.EPTStats()
					syn.SizeBytes()
				}
			}(g)
		}
		wg.Wait()
	}
}
