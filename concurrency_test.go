package xseed

import (
	"sync"
	"testing"
	"time"

	"xseed/internal/fixtures"
)

// TestConcurrentEstimates exercises the Synopsis concurrency contract: any
// number of estimate calls may run in parallel with each other (run under
// -race). Mixed readers and mutators are covered by
// TestSnapshotConsistencyHammer below and the server-level tests in
// internal/server.
func TestConcurrentEstimates(t *testing.T) {
	d, err := ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	for _, reuse := range []bool{false, true} {
		syn, err := BuildSynopsis(d, &Config{ReuseEPT: reuse})
		if err != nil {
			t.Fatal(err)
		}
		queries := []string{"/a/c/s", "/a/c/s/s/t", "//s//p", "/a/c/s[p]/t", "//s[t]", "/a/*/s"}
		want := make([]float64, len(queries))
		for i, q := range queries {
			if want[i], err = syn.Estimate(q); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					idx := (g + i) % len(queries)
					got, err := syn.Estimate(queries[idx])
					if err != nil {
						t.Error(err)
						return
					}
					if got != want[idx] {
						t.Errorf("reuse=%v %s: concurrent estimate %v, want %v", reuse, queries[idx], got, want[idx])
						return
					}
					if sg, _ := syn.EstimateStreamingQuery(MustParseQuery(queries[idx])); sg < 0 {
						t.Errorf("streaming estimate negative: %v", sg)
						return
					}
					syn.EPTStats()
					syn.SizeBytes()
				}
			}(g)
		}
		wg.Wait()
	}
}

// TestSnapshotConsistencyHammer proves the lock-free snapshot semantics
// under -race: while one (externally serialized) mutator interleaves
// feedback, subtree add/remove, and budget changes, concurrent readers
// estimate lock-free — and every estimate must equal, bit for bit, the
// value of *some published snapshot* for that query. The mutator captures
// each snapshot it publishes; after the run, every (version, query,
// estimate) observation is replayed against the captured snapshot of that
// version. A torn read (an estimate interpolating two versions) or a
// mutation leaking into a pinned snapshot would break bit-equality.
func TestSnapshotConsistencyHammer(t *testing.T) {
	d, err := ParseXMLString("<a><b><c/><c/><d/></b><b><c/></b><e><c/><d/></e></a>")
	if err != nil {
		t.Fatal(err)
	}
	syn, err := BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries := []*Query{
		MustParseQuery("/a/b"),
		MustParseQuery("/a/b/c"),
		MustParseQuery("//c"),
		MustParseQuery("/a/b[c]/d"),
		MustParseQuery("/a/*[d]"),
	}

	// Every published snapshot, captured by the serialized mutator (plus
	// the initial one). Guarded by snapMu; the version is the map key so a
	// mutation that publishes nothing (unapplied feedback) is harmless.
	snapMu := sync.Mutex{}
	snaps := map[uint64]*Snapshot{}
	capture := func() {
		sn := syn.Snapshot()
		snapMu.Lock()
		snaps[sn.Version()] = sn
		snapMu.Unlock()
	}
	capture()

	type obs struct {
		ver uint64
		qi  int
		val float64
	}
	const readers = 4
	observed := make([][]obs, readers)
	stop := make(chan struct{})

	var wg sync.WaitGroup
	mutatorDead := make(chan struct{})
	wg.Add(1)
	go func() { // the single mutator (mutations must be serialized)
		defer wg.Done()
		defer close(mutatorDead)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 5 {
			case 0:
				if err := syn.Feedback("/a/b/c", float64(1+i%7)); err != nil {
					t.Error(err)
					return
				}
			case 1:
				if err := syn.Feedback("/a/b[c]/d", float64(1+i%3)); err != nil {
					t.Error(err)
					return
				}
			case 2:
				if err := syn.AddSubtree([]string{"a"}, "<b><c/><c/></b>"); err != nil {
					t.Error(err)
					return
				}
			case 3:
				if err := syn.RemoveSubtree([]string{"a"}, "<b><c/><c/></b>"); err != nil {
					t.Error(err)
					return
				}
			case 4:
				if i%2 == 0 {
					syn.SetBudget(syn.KernelSizeBytes() + 48)
				} else {
					syn.SetBudget(-1)
				}
			}
			capture()
		}
	}()
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sn := syn.Snapshot()
				qi := (g + i) % len(queries)
				var val float64
				if i%3 == 0 {
					val, _ = sn.EstimateStreamingQuery(queries[qi])
					// Streaming values are checked for determinism against
					// the captured snapshot the same way (replay below).
					observed[g] = append(observed[g], obs{^sn.Version(), qi, val})
					continue
				}
				if i%3 == 1 {
					val = sn.Compile(queries[qi]).Run(sn)
				} else {
					val = sn.EstimateQuery(queries[qi])
				}
				observed[g] = append(observed[g], obs{sn.Version(), qi, val})
			}
		}(g)
	}
	// Run the hammer for a fixed volume of mutations rather than wall time.
	// A mutator that died on error stops publishing — bail out instead of
	// spinning until the go-test timeout buries its t.Error.
	for alive := true; alive; {
		snapMu.Lock()
		n := len(snaps)
		snapMu.Unlock()
		if n > 300 {
			break
		}
		select {
		case <-mutatorDead:
			alive = false
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()

	// Replay: every observation must equal the captured snapshot's answer.
	total := 0
	for g := range observed {
		for _, o := range observed[g] {
			streaming := false
			ver := o.ver
			if ver > 1<<62 { // streaming observations carry ^version
				streaming = true
				ver = ^ver
			}
			sn := snaps[ver]
			if sn == nil {
				t.Fatalf("reader %d observed unpublished snapshot version %d", g, ver)
			}
			var want float64
			if streaming {
				want, _ = sn.EstimateStreamingQuery(queries[o.qi])
			} else {
				want = sn.EstimateQuery(queries[o.qi])
			}
			if o.val != want {
				t.Fatalf("reader %d: %s at version %d = %v, want %v (torn read)",
					g, queries[o.qi], ver, o.val, want)
			}
			total++
		}
	}
	if total == 0 {
		t.Fatal("no estimates observed")
	}
	t.Logf("verified %d estimates across %d snapshots", total, len(snaps))
}
