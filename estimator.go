package xseed

import (
	"context"
	"fmt"

	"xseed/api"
)

// Result is the outcome of estimating one query of a batch through an
// Estimator: either an estimate (with provenance) or a per-query error —
// never both. Err, when set, is an *api.Error regardless of backend, so a
// parse failure's byte offset is recoverable the same way (via
// api.Error.ParseDetail) whether the estimate ran embedded or against a
// remote xseedd.
type Result struct {
	Query    string  // normalized query (raw input when it failed to parse)
	Estimate float64 // estimated cardinality
	Cached   bool    // answered from a server-side estimate cache
	Streamed bool    // the single-pass streaming matcher produced it
	Err      error   // per-query failure (*api.Error), nil on success
}

// Estimator is the unified estimation surface a cost-based optimizer codes
// against: batch cardinality estimates plus execution feedback, with
// per-call context. Both the embedded backend (NewLocalEstimator around a
// *Synopsis) and the remote one (xseed/client.Client against a live
// xseedd) implement it, so callers switch between in-process and served
// synopses without touching estimation code.
//
// EstimateBatch returns one Result per query in request order; a query
// that fails to parse sets that Result's Err and never fails the batch
// (partial-success semantics, shared with POST /v1/synopses/{name}/estimate).
// A whole-call error means no estimates were produced — a canceled
// context, an unreachable server, an unknown synopsis.
//
// FeedbackBatch records many observations in one call with the same
// partial-success split: one error slot per item in request order (nil =
// absorbed and durable to the backend's configured discipline), and a
// whole-call error when none were recorded. Served backends coalesce a
// batch into one snapshot publication and one group-committed log flush,
// so it is the efficient way to report execution feedback in bulk.
type Estimator interface {
	EstimateBatch(ctx context.Context, queries []string) ([]Result, error)
	Feedback(ctx context.Context, query string, actual float64) error
	FeedbackBatch(ctx context.Context, items []FeedbackObs) ([]error, error)
}

// FeedbackObs is one observed (query, actual cardinality) pair of a
// feedback batch.
type FeedbackObs struct {
	Query  string
	Actual float64
}

// LocalEstimator adapts a *Synopsis to the Estimator interface.
//
// Concurrency follows the synopsis it wraps: EstimateBatch calls are
// lock-free and safe with each other and with any single mutator (each
// batch pins one estimation snapshot, so its queries see one consistent
// version even while Feedback runs); Feedback and other synopsis mutations
// must still be serialized with each other externally, exactly as for
// *Synopsis. The served registry (xseed/internal/server) does that locking
// for the remote backend.
type LocalEstimator struct {
	syn *Synopsis
}

// NewLocalEstimator wraps a synopsis as the embedded Estimator backend.
func NewLocalEstimator(s *Synopsis) *LocalEstimator {
	return &LocalEstimator{syn: s}
}

// EstimateBatch estimates the queries in order, honoring ctx between
// queries. Parse failures are per-query (typed *api.Error with the offset
// in the detail); cancellation fails the whole call.
func (l *LocalEstimator) EstimateBatch(ctx context.Context, queries []string) ([]Result, error) {
	out := make([]Result, len(queries))
	sn := l.syn.Snapshot() // one consistent version for the whole batch
	for i, raw := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		q, err := ParseQuery(raw)
		if err != nil {
			out[i] = Result{Query: raw, Err: api.WrapError(err, api.CodeBadRequest)}
			continue
		}
		out[i] = Result{Query: q.String(), Estimate: sn.EstimateQuery(q)}
	}
	return out, nil
}

// Feedback records an executed query's actual cardinality into the
// synopsis (self-tuning).
func (l *LocalEstimator) Feedback(ctx context.Context, query string, actual float64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	q, err := ParseQuery(query)
	if err != nil {
		return api.WrapError(err, api.CodeBadRequest)
	}
	l.syn.FeedbackQuery(q, actual)
	return nil
}

// FeedbackBatch applies each observation in order with deferred snapshot
// publication and publishes exactly one successor covering the batch.
// Parse failures are per-item; cancellation fails the whole call.
func (l *LocalEstimator) FeedbackBatch(ctx context.Context, items []FeedbackObs) ([]error, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	errs := make([]error, len(items))
	applied := false
	for i, it := range items {
		q, err := ParseQuery(it.Query)
		if err != nil {
			errs[i] = api.WrapError(err, api.CodeBadRequest)
			continue
		}
		if _, _, ok := l.syn.FeedbackQueryDeltaDeferred(q, it.Actual); ok {
			applied = true
		}
	}
	if applied {
		l.syn.Publish()
	}
	return errs, nil
}

// Estimate is a single-query convenience over any Estimator: it returns
// the one estimate or its error (per-query or whole-call).
func Estimate(ctx context.Context, e Estimator, query string) (float64, error) {
	res, err := e.EstimateBatch(ctx, []string{query})
	if err != nil {
		return 0, err
	}
	if len(res) != 1 {
		return 0, fmt.Errorf("xseed: estimator returned %d results for 1 query", len(res))
	}
	if res[0].Err != nil {
		return 0, res[0].Err
	}
	return res[0].Estimate, nil
}

var _ Estimator = (*LocalEstimator)(nil)
