package xseed

import (
	"context"
	"errors"
	"testing"

	"xseed/api"
)

const estimatorTestXML = "<a><c><s><t/><p/></s><s><s><t/></s></s></c><c><s><t/></s></c></a>"

func TestLocalEstimatorBatchAndFeedback(t *testing.T) {
	doc, err := ParseXMLString(estimatorTestXML)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := NewLocalEstimator(syn)
	ctx := context.Background()

	res, err := est.EstimateBatch(ctx, []string{"/a/c/s", "/a/c[s]???", "//s//t"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %+v", res)
	}
	if res[0].Err != nil || res[0].Estimate <= 0 {
		t.Errorf("res[0] = %+v", res[0])
	}
	var apiErr *api.Error
	if !errors.As(res[1].Err, &apiErr) || apiErr.Code != api.CodeParseError {
		t.Errorf("res[1].Err = %v, want typed parse_error", res[1].Err)
	}
	if d, ok := apiErr.ParseDetail(); !ok || d.Offset <= 0 {
		t.Errorf("parse detail = %+v ok=%v", d, ok)
	}
	if res[2].Err != nil || res[2].Estimate <= 0 {
		t.Errorf("res[2] = %+v", res[2])
	}

	// Feedback through the interface tunes the synopsis like direct calls.
	actual, err := doc.Count("/a/c/s")
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Feedback(ctx, "/a/c/s", float64(actual)); err != nil {
		t.Fatal(err)
	}
	got, err := Estimate(ctx, est, "/a/c/s")
	if err != nil {
		t.Fatal(err)
	}
	if got != float64(actual) {
		t.Errorf("post-feedback estimate = %v, want %d", got, actual)
	}

	// The single-query helper surfaces per-query errors as call errors.
	if _, err := Estimate(ctx, est, "broken ["); err == nil {
		t.Error("Estimate of a broken query succeeded")
	}
}

func TestLocalEstimatorCancellation(t *testing.T) {
	doc, err := ParseXMLString(estimatorTestXML)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	est := NewLocalEstimator(syn)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := est.EstimateBatch(ctx, []string{"/a/c/s"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch = %v, want context.Canceled", err)
	}
	if err := est.Feedback(ctx, "/a/c/s", 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled feedback = %v, want context.Canceled", err)
	}
}
