package xseed_test

import (
	"context"
	"errors"
	"fmt"

	"xseed"
	"xseed/api"
)

// An optimizer codes against xseed.Estimator and never learns whether its
// estimates come from an embedded synopsis, a remote xseedd over HTTP
// (xseed/client.New), or one over the xtp binary protocol
// (xseed/client.DialXTP) — all three implement the interface identically,
// partial-success semantics included.
func ExampleEstimator() {
	doc, _ := xseed.ParseXMLString("<a><b><c/></b><b><c/><c/></b><b/></a>")
	syn, _ := xseed.BuildSynopsis(doc, nil)
	var est xseed.Estimator = xseed.NewLocalEstimator(syn)

	// One bad query cannot spoil the batch: it gets a per-item typed
	// error, its neighbors still answer.
	res, err := est.EstimateBatch(context.Background(), []string{"/a/b", "//c", "//c["})
	if err != nil {
		panic(err) // whole-call failure: canceled ctx, unreachable server
	}
	for _, r := range res {
		if r.Err != nil {
			var apiErr *api.Error
			errors.As(r.Err, &apiErr)
			fmt.Printf("%s: %s\n", r.Query, apiErr.Code)
			continue
		}
		fmt.Printf("%s: %.0f\n", r.Query, r.Estimate)
	}

	// Feedback self-tunes the synopsis from an executed query's actual.
	_ = est.Feedback(context.Background(), "//c", 3)
	// Output:
	// /a/b: 3
	// //c: 3
	// //c[: parse_error
}

// NewLocalEstimator adapts a built synopsis to the Estimator interface —
// the embedded backend.
func ExampleNewLocalEstimator() {
	doc, _ := xseed.ParseXMLString("<root><item/><item/></root>")
	syn, _ := xseed.BuildSynopsis(doc, nil)
	est := xseed.NewLocalEstimator(syn)

	v, _ := xseed.Estimate(context.Background(), est, "/root/item")
	fmt.Printf("%.0f\n", v)
	// Output:
	// 2
}
