// Feedback: self-tuning estimation from query feedback (paper Figure 1's
// feedback arrow and Section 5's "populated by the optimizer through query
// feedback").
//
// A synopsis starts with no pre-computed hyper-edge table. As a query
// workload executes, the optimizer learns each query's actual cardinality
// and feeds it back; the hyper-edge table accumulates corrections and the
// workload error drops, round over round.
//
// Run with: go run ./examples/feedback
package main

import (
	"fmt"
	"log"
	"math"

	"xseed"
)

func rmse(d *xseed.Document, syn *xseed.Synopsis, qs []*xseed.Query) float64 {
	var sum float64
	for _, q := range qs {
		act, _ := q.Actual()
		est := syn.EstimateQuery(q)
		diff := est - float64(act)
		sum += diff * diff
	}
	return math.Sqrt(sum / float64(len(qs)))
}

func main() {
	d, err := xseed.Generate("dblp", 0.005, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Start from a synopsis whose HET is enabled but empty: no
	// pre-computation pass touches the document; every entry will come
	// from feedback.
	syn, err := xseed.BuildSynopsis(d, &xseed.Config{
		HET: &xseed.HETConfig{FeedbackOnly: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	bp, err := d.RandomWorkload("BP", 120, 1, 3)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := d.RandomWorkload("CP", 120, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	qs := append(bp, cp...)

	fmt.Printf("DBLP sample: %d elements; workload: %d queries\n\n", d.NumNodes(), len(qs))
	fmt.Printf("%-8s %12s %14s\n", "round", "RMSE", "HET entries")
	for round := 0; round <= 4; round++ {
		_, entries := syn.HETEntries()
		fmt.Printf("%-8d %12.2f %14d\n", round, rmse(d, syn, qs), entries)
		if round == 4 {
			break
		}
		// Execute a quarter of the workload per round and feed actual
		// cardinalities back — like an optimizer observing operators. Each
		// twig execution also reveals the count of the scan underneath it
		// (the query with its predicates stripped), so feed that too.
		lo, hi := round*len(qs)/4, (round+1)*len(qs)/4
		for _, q := range qs[lo:hi] {
			act, _ := q.Actual() // stands in for "run the query, count results"
			if err := syn.Feedback(q.String(), float64(act)); err != nil {
				log.Fatal(err)
			}
			base := q.WithoutPredicates()
			if base.String() != q.String() {
				if err := syn.Feedback(base.String(), float64(d.CountQuery(base))); err != nil {
					log.Fatal(err)
				}
			}
		}
	}
	fmt.Println("\nfeedback teaches the synopsis its own blind spots without re-reading the document")
}
