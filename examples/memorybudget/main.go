// Memorybudget: the synopsis adapts to shrinking memory budgets (the
// paper's "adaptive to memory budgets" property).
//
// One pre-computed hyper-edge table serves every budget: entries are ranked
// by estimation error and only the top slice is resident, so the same
// synopsis can be re-fit whenever the optimizer's memory allowance changes
// — no reconstruction, no document access. Accuracy degrades gracefully
// toward the bare kernel as the budget approaches the kernel size.
//
// Run with: go run ./examples/memorybudget
package main

import (
	"fmt"
	"log"
	"math"

	"xseed"
)

func main() {
	d, err := xseed.Generate("dblp", 0.01, 21)
	if err != nil {
		log.Fatal(err)
	}
	// A 2BP table is larger than the default 1BP one, so shrinking budgets
	// show a gradual accuracy/size tradeoff.
	syn, err := xseed.BuildSynopsis(d, &xseed.Config{HET: &xseed.HETConfig{MBP: 2}})
	if err != nil {
		log.Fatal(err)
	}

	bp, err := d.RandomWorkload("BP", 150, 1, 31)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := d.RandomWorkload("CP", 150, 1, 32)
	if err != nil {
		log.Fatal(err)
	}
	qs := append(append([]*xseed.Query{}, bp...), cp...)
	qs = append(qs, d.SimplePathQueries(0)...)

	fmt.Printf("DBLP sample: %d elements; kernel %d bytes; full synopsis %d bytes\n\n",
		d.NumNodes(), syn.KernelSizeBytes(), syn.SizeBytes())
	fmt.Printf("%-12s %12s %14s %12s\n", "budget", "size", "HET resident", "RMSE")

	budgets := []int{1 << 20, 50 * 1024, 25 * 1024, 10 * 1024, 5 * 1024, 2 * 1024, 0}
	for _, budget := range budgets {
		label := fmt.Sprintf("%dKB", budget/1024)
		if budget == 0 {
			label = "kernel"
			budget = syn.KernelSizeBytes() // nothing left for the HET
		}
		syn.SetBudget(budget)
		var sum float64
		for _, q := range qs {
			act, _ := q.Actual()
			diff := syn.EstimateQuery(q) - float64(act)
			sum += diff * diff
		}
		resident, _ := syn.HETEntries()
		fmt.Printf("%-12s %12d %14d %12.2f\n",
			label, syn.SizeBytes(), resident, math.Sqrt(sum/float64(len(qs))))
	}
	fmt.Println("\nthe same synopsis serves every budget; eviction follows estimation error")
}
