// Optimizer: use XSEED cardinality estimates to drive a (toy) cost-based
// plan choice, the paper's motivating use case.
//
// The scenario: an auction application (XMark-like data) evaluates the
// join-style twig query
//
//	//open_auction[bidder]/seller  vs  //open_auction[privacy]/seller
//
// and, more generally, must decide for each twig which predicate to check
// first: the cost of a navigational plan is dominated by how many elements
// survive each step. The "optimizer" below scores plans with synopsis
// estimates, picks the cheapest, and we then verify the decision against
// exact cardinalities — without the synopsis, every candidate would need a
// full document scan to cost.
//
// Run with: go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"xseed"
)

// plan is a predicate evaluation order for a two-predicate twig: check
// First, then Second on the survivors.
type plan struct {
	First, Second string
}

// cost models a navigational evaluator: it pays |context| for the first
// filter and |survivors of First| for the second.
func cost(syn *xseed.Synopsis, base string, p plan) float64 {
	all, _ := syn.Estimate(base)
	firstSurvivors, _ := syn.Estimate(base + "[" + p.First + "]")
	return all + firstSurvivors
}

func exactCost(d *xseed.Document, base string, p plan) float64 {
	all, _ := d.Count(base)
	firstSurvivors, _ := d.Count(base + "[" + p.First + "]")
	return float64(all + firstSurvivors)
}

func main() {
	d, err := xseed.Generate("xmark", 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XMark document: %d elements; synopsis %d bytes (%.4f%% of document text)\n\n",
		d.NumNodes(), syn.SizeBytes(),
		100*float64(syn.SizeBytes())/float64(d.Stats().TextBytes))

	cases := []struct {
		base string
		a, b string // the two predicates to order
	}{
		{"/site/open_auctions/open_auction", "bidder", "privacy"},
		{"/site/open_auctions/open_auction", "reserve", "bidder"},
		{"//person", "homepage", "creditcard"},
		{"//item", "shipping", "mailbox"},
	}
	agree := 0
	for _, c := range cases {
		p1 := plan{c.a, c.b}
		p2 := plan{c.b, c.a}
		est1, est2 := cost(syn, c.base, p1), cost(syn, c.base, p2)
		act1, act2 := exactCost(d, c.base, p1), exactCost(d, c.base, p2)

		chosen, alt := p1, p2
		if est2 < est1 {
			chosen, alt = p2, p1
		}
		correct := (est2 < est1) == (act2 < act1)
		if correct {
			agree++
		}
		fmt.Printf("twig %s[%s][%s]\n", c.base, c.a, c.b)
		fmt.Printf("  plan [%s]->[%s]: estimated cost %.0f (exact %.0f)\n",
			p1.First, p1.Second, est1, act1)
		fmt.Printf("  plan [%s]->[%s]: estimated cost %.0f (exact %.0f)\n",
			p2.First, p2.Second, est2, act2)
		verdict := "matches"
		if !correct {
			verdict = "DIFFERS FROM"
		}
		fmt.Printf("  optimizer picks [%s] first (over [%s]) — %s the exact-cost choice\n\n",
			chosen.First, alt.First, verdict)
	}
	fmt.Printf("%d/%d plan choices match the exact-cost decision\n", agree, len(cases))
}
