// Optimizer: use XSEED cardinality estimates to drive a (toy) cost-based
// plan choice, the paper's motivating use case.
//
// The scenario: an auction application (XMark-like data) evaluates the
// join-style twig query
//
//	//open_auction[bidder]/seller  vs  //open_auction[privacy]/seller
//
// and, more generally, must decide for each twig which predicate to check
// first: the cost of a navigational plan is dominated by how many elements
// survive each step. The "optimizer" (internal/optdemo) scores plans
// through the unified xseed.Estimator interface, picks the cheapest, and
// verifies the decision against exact cardinalities — without the
// synopsis, every candidate would need a full document scan to cost.
//
// Run embedded:             go run ./examples/optimizer
// Run against a live xseedd: go run ./examples/optimizer -remote localhost:8080
//
// With -remote the locally built synopsis is uploaded as a snapshot and
// every estimate is served by the daemon through the client SDK; the
// decisions are identical to the embedded run because the synopsis is.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"xseed"
	"xseed/client"
	"xseed/internal/optdemo"
)

func main() {
	remote := flag.String("remote", "", "xseedd address (host:port or URL); empty runs embedded")
	flag.Parse()
	// run, not main, owns the work so deferred cleanup (deleting the
	// uploaded synopsis from the remote daemon) still happens on failure —
	// log.Fatal would skip it.
	if err := run(*remote); err != nil {
		log.Fatal(err)
	}
}

func run(remote string) error {
	ctx := context.Background()
	d, err := xseed.Generate("xmark", 0.01, 7)
	if err != nil {
		return err
	}
	syn, err := xseed.BuildSynopsis(d, nil)
	if err != nil {
		return err
	}
	fmt.Printf("XMark document: %d elements; synopsis %d bytes (%.4f%% of document text)\n",
		d.NumNodes(), syn.SizeBytes(),
		100*float64(syn.SizeBytes())/float64(d.Stats().TextBytes))

	// Select the estimation backend: the embedded adapter, or the client
	// SDK against a live daemon serving the same synopsis.
	var est xseed.Estimator = xseed.NewLocalEstimator(syn)
	if remote != "" {
		c, err := client.New(remote)
		if err != nil {
			return err
		}
		var blob bytes.Buffer
		if _, err := syn.WriteTo(&blob); err != nil {
			return err
		}
		if _, err := c.SnapshotPut(ctx, "optimizer-demo", &blob); err != nil {
			return fmt.Errorf("upload synopsis to %s: %w", remote, err)
		}
		defer c.Delete(ctx, "optimizer-demo")
		est = c.Synopsis("optimizer-demo")
		fmt.Printf("estimating remotely via %s\n", remote)
	}
	fmt.Println()

	_, _, err = optdemo.Run(ctx, est, d, optdemo.DefaultCases(), os.Stdout)
	return err
}
