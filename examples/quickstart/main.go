// Quickstart: build an XSEED synopsis for a small document and compare
// estimated against actual cardinalities.
//
// The document is the running example of the XSEED paper (Figure 2): an
// article with two chapters whose sections nest recursively. Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"xseed"
)

const doc = `<article>
  <title/>
  <authors/>
  <chapter>
    <title/>
    <para/>
    <sect><title/><para/><para/></sect>
    <sect><para/><para/>
      <sect><title/><para/><para/>
        <sect><para/><para/></sect>
        <sect><para/></sect>
      </sect>
    </sect>
  </chapter>
  <chapter>
    <title/>
    <para/><para/>
    <sect><para/><para/><sect/></sect>
    <sect><title/><para/><para/></sect>
    <sect><para/></sect>
  </chapter>
</article>`

func main() {
	d, err := xseed.ParseXMLString(doc)
	if err != nil {
		log.Fatal(err)
	}
	st := d.Stats()
	fmt.Printf("document: %d elements, %d labels, max depth %d, recursion level %d\n\n",
		st.Nodes, st.Labels, st.MaxDepth, st.MaxRecLevel)

	// A synopsis with the default configuration: kernel + 1BP hyper-edge
	// table.
	syn, err := xseed.BuildSynopsis(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synopsis: %d bytes (kernel %d + HET %d)\n\n",
		syn.SizeBytes(), syn.KernelSizeBytes(), syn.HETSizeBytes())

	queries := []string{
		"/article/chapter/sect/para",        // simple path
		"/article/chapter/sect/sect",        // recursion: sections in sections
		"//sect//sect//para",                // recursive complex path
		"/article/chapter/sect[title]/para", // branching path
		"//sect[para]",                      // descendant + predicate
		"/article/*/title",                  // wildcard
	}
	fmt.Printf("%-38s %10s %10s\n", "query", "estimate", "actual")
	for _, q := range queries {
		est, err := syn.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		act, err := d.Count(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-38s %10.2f %10d\n", q, est, act)
	}

	// The kernel alone is a few hundred bytes and still accurate — the
	// paper's point is that a tiny, recursion-aware synopsis goes a long
	// way.
	bare, err := xseed.KernelOnly(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkernel-only synopsis is %d bytes; |//sect//sect//para| = ", bare.SizeBytes())
	est, _ := bare.Estimate("//sect//sect//para")
	act, _ := d.Count("//sect//sect//para")
	fmt.Printf("%.0f (actual %d)\n", est, act)
}
