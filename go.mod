module xseed

go 1.22
