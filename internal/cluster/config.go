package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// NodeConfig names one xseedd instance of the cluster and its listen
// addresses.
type NodeConfig struct {
	ID   string `json:"id"`             // stable node name, unique in the cluster
	HTTP string `json:"http"`           // HTTP listen address ("host:port")
	XTP  string `json:"xtp,omitempty"`  // xtp listen address (empty = HTTP only)
	Repl string `json:"repl,omitempty"` // replication listen address (defaults required for replicas > 0)
}

// Config is the shared static cluster topology, one JSON file handed to
// every node (-cluster, -cluster-node) and to the router (-cluster,
// -router). Membership *state* — who is alive, active, joining — is
// dynamic and owned by the router; this file only names the candidates.
type Config struct {
	// Replicas is the number of warm standby copies per synopsis. 0 (or
	// omitted) defaults to 1 on a multi-node cluster and 0 on a single
	// node. With N nodes at most N-1 replicas are achievable.
	Replicas int `json:"replicas"`

	// Router is the router's listen address ("host:port"). Nodes poll it
	// for the ring; clients may use it as a seed or proxy.
	Router string `json:"router"`

	Nodes []NodeConfig `json:"nodes"`

	// PollIntervalMs is how often nodes poll the router for the ring and
	// the router health-checks nodes (default 500; CI uses 200 for fast
	// failover detection).
	PollIntervalMs int `json:"pollIntervalMs,omitempty"`

	// ReplIntervalMs is how often each sender tails its owned synopses'
	// delta logs toward a target (default 100).
	ReplIntervalMs int `json:"replIntervalMs,omitempty"`
}

// PollInterval returns the membership poll interval with its default.
func (c Config) PollInterval() time.Duration {
	if c.PollIntervalMs <= 0 {
		return 500 * time.Millisecond
	}
	return time.Duration(c.PollIntervalMs) * time.Millisecond
}

// ReplInterval returns the replication tail interval with its default.
func (c Config) ReplInterval() time.Duration {
	if c.ReplIntervalMs <= 0 {
		return 100 * time.Millisecond
	}
	return time.Duration(c.ReplIntervalMs) * time.Millisecond
}

// Node returns the configured node with the given ID.
func (c Config) Node(id string) (NodeConfig, bool) {
	for _, n := range c.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return NodeConfig{}, false
}

// Validate checks the topology for the mistakes that would otherwise
// surface as silent routing bugs: duplicate or empty IDs, missing
// addresses, a replica count the membership cannot satisfy.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: config has no nodes")
	}
	if c.Router == "" {
		return fmt.Errorf("cluster: config has no router address")
	}
	if c.Replicas < 0 {
		return fmt.Errorf("cluster: negative replicas %d", c.Replicas)
	}
	if c.Replicas >= len(c.Nodes) {
		return fmt.Errorf("cluster: %d replicas need at least %d nodes, config has %d", c.Replicas, c.Replicas+1, len(c.Nodes))
	}
	seen := make(map[string]bool, len(c.Nodes))
	for i, n := range c.Nodes {
		if n.ID == "" {
			return fmt.Errorf("cluster: node %d has no id", i)
		}
		if seen[n.ID] {
			return fmt.Errorf("cluster: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
		if n.HTTP == "" {
			return fmt.Errorf("cluster: node %q has no http address", n.ID)
		}
		if n.Repl == "" && c.Replicas > 0 {
			return fmt.Errorf("cluster: node %q has no repl address but replicas = %d", n.ID, c.Replicas)
		}
	}
	return nil
}

// LoadConfigFile reads and validates a cluster config. Unknown fields are
// rejected: a typoed key silently defaulting is exactly the config bug
// this should catch.
func LoadConfigFile(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var c Config
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("cluster: parse %s: %w", path, err)
	}
	if c.Replicas == 0 && len(c.Nodes) > 1 {
		c.Replicas = 1
	}
	if err := c.Validate(); err != nil {
		return Config{}, fmt.Errorf("%w (in %s)", err, path)
	}
	return c, nil
}
