package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func validConfig() Config {
	return Config{
		Replicas: 1,
		Router:   "127.0.0.1:7070",
		Nodes: []NodeConfig{
			{ID: "a", HTTP: "127.0.0.1:8081", XTP: "127.0.0.1:9091", Repl: "127.0.0.1:7071"},
			{ID: "b", HTTP: "127.0.0.1:8082", XTP: "127.0.0.1:9092", Repl: "127.0.0.1:7072"},
		},
	}
}

func TestConfigValidate(t *testing.T) {
	if err := validConfig().Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no nodes", func(c *Config) { c.Nodes = nil }, "no nodes"},
		{"no router", func(c *Config) { c.Router = "" }, "no router"},
		{"negative replicas", func(c *Config) { c.Replicas = -1 }, "negative replicas"},
		{"too many replicas", func(c *Config) { c.Replicas = 2 }, "need at least 3 nodes"},
		{"empty id", func(c *Config) { c.Nodes[1].ID = "" }, "has no id"},
		{"duplicate id", func(c *Config) { c.Nodes[1].ID = "a" }, "duplicate node id"},
		{"no http", func(c *Config) { c.Nodes[0].HTTP = "" }, "no http address"},
		{"no repl with replicas", func(c *Config) { c.Nodes[0].Repl = "" }, "no repl address"},
	}
	for _, tc := range cases {
		c := validConfig()
		tc.mutate(&c)
		err := c.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	// Replicas == 0 tolerates missing repl addresses: single-node and
	// replication-free clusters need no repl listeners.
	c := validConfig()
	c.Replicas = 0
	c.Nodes[0].Repl, c.Nodes[1].Repl = "", ""
	if err := c.Validate(); err != nil {
		t.Fatalf("replicas=0 without repl addresses rejected: %v", err)
	}
}

func writeConfig(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "cluster.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadConfigFile(t *testing.T) {
	path := writeConfig(t, `{
		"router": "127.0.0.1:7070",
		"nodes": [
			{"id": "a", "http": "127.0.0.1:8081", "repl": "127.0.0.1:7071"},
			{"id": "b", "http": "127.0.0.1:8082", "repl": "127.0.0.1:7072"}
		]
	}`)
	c, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Omitted replicas defaults to 1 on a multi-node cluster.
	if c.Replicas != 1 {
		t.Errorf("replicas = %d, want defaulted 1", c.Replicas)
	}
	if c.PollInterval() != 500*time.Millisecond || c.ReplInterval() != 100*time.Millisecond {
		t.Errorf("intervals = %v / %v, want defaults", c.PollInterval(), c.ReplInterval())
	}
	if _, ok := c.Node("b"); !ok {
		t.Error("Node(b) not found")
	}
}

func TestLoadConfigFileSingleNodeDefaultsToZeroReplicas(t *testing.T) {
	path := writeConfig(t, `{
		"router": "127.0.0.1:7070",
		"nodes": [{"id": "a", "http": "127.0.0.1:8081"}]
	}`)
	c, err := LoadConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Replicas != 0 {
		t.Errorf("single-node replicas = %d, want 0", c.Replicas)
	}
}

func TestLoadConfigFileRejectsUnknownFields(t *testing.T) {
	path := writeConfig(t, `{
		"router": "127.0.0.1:7070",
		"replcias": 2,
		"nodes": [{"id": "a", "http": "127.0.0.1:8081"}]
	}`)
	if _, err := LoadConfigFile(path); err == nil || !strings.Contains(err.Error(), "replcias") {
		t.Fatalf("typoed field not rejected: %v", err)
	}
}

func TestLoadConfigFileMissing(t *testing.T) {
	if _, err := LoadConfigFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file did not error")
	}
}
