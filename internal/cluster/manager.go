package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"xseed/api"
	"xseed/internal/obs"
)

// Manager is the node-side cluster brain: it follows the router's ring
// epochs, flips local synopses between primary and replica as ownership
// moves, and runs one replication sender per target the current ring
// assigns this node. It never makes membership decisions itself — the
// router is the single authority — so two nodes can never disagree about
// ownership for longer than a poll interval.
type Manager struct {
	cfg       Config
	self      string
	host      Host
	log       *slog.Logger
	m         *Metrics
	cursorDir string
	hc        *http.Client

	ring atomic.Pointer[Ring]

	mu      sync.Mutex
	senders map[string]*senderHandle // by target node ID
}

type senderHandle struct {
	s      *sender
	cancel context.CancelFunc
	done   chan struct{}
}

// NewManager builds a node-side manager. cursorDir holds the per-target
// replication cursor files (created on demand).
func NewManager(cfg Config, self string, host Host, cursorDir string, om *obs.Registry, lg *slog.Logger) (*Manager, error) {
	if _, ok := cfg.Node(self); !ok {
		return nil, fmt.Errorf("cluster: node %q is not in the cluster config", self)
	}
	if err := os.MkdirAll(cursorDir, 0o755); err != nil {
		return nil, err
	}
	return &Manager{
		cfg:       cfg,
		self:      self,
		host:      host,
		log:       lg.With("node", self),
		m:         NewMetrics(om),
		cursorDir: cursorDir,
		hc:        &http.Client{Timeout: 2 * time.Second},
		senders:   make(map[string]*senderHandle),
	}, nil
}

// Self returns this node's ID.
func (m *Manager) Self() string { return m.self }

// Metrics returns the node's replication metrics (for the server's
// stats plumbing).
func (m *Manager) Metrics() *Metrics { return m.m }

// Run polls the router for ring epochs and reconciles senders until ctx is
// canceled. The first ring fetch is attempted immediately so a freshly
// started node demotes non-owned synopses within one round trip.
func (m *Manager) Run(ctx context.Context) {
	m.fetchRing(ctx)
	poll := time.NewTicker(m.cfg.PollInterval())
	defer poll.Stop()
	recon := time.NewTicker(m.cfg.PollInterval())
	defer recon.Stop()
	for {
		select {
		case <-ctx.Done():
			m.stopSenders()
			return
		case <-poll.C:
			m.fetchRing(ctx)
		case <-recon.C:
			// Senders are also reconciled on a timer, not just on epoch
			// change: a synopsis created after the last epoch still needs
			// its targets streaming.
			m.reconcileSenders()
		}
	}
}

func (m *Manager) fetchRing(ctx context.Context) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+m.cfg.Router+"/v1/cluster/ring", nil)
	if err != nil {
		return
	}
	resp, err := m.hc.Do(req)
	if err != nil {
		m.log.Debug("ring fetch failed", "err", err)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var r api.Ring
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		m.log.Debug("ring decode failed", "err", err)
		return
	}
	m.SetRing(r)
}

// SetRing installs a ring and applies its ownership to local synopses:
// keys owned here are promoted (a replica taking over is a failover), keys
// owned elsewhere are demoted to replicas. Stale epochs are ignored.
// Exported for in-process tests; production rings arrive via Run's poll.
func (m *Manager) SetRing(r api.Ring) {
	old := m.ring.Load()
	if old != nil && r.Epoch <= old.Epoch {
		return
	}
	ring := NewRing(r)
	m.ring.Store(ring)
	m.log.Info("ring epoch applied", "epoch", r.Epoch, "nodes", len(r.Nodes))
	for _, key := range m.host.AllKeys() {
		owner, ok := ring.Owner(key)
		if !ok {
			continue // no active nodes; keep current roles
		}
		primary := owner.ID == m.self
		if m.host.SetPrimary(key, primary) && primary {
			m.m.failovers.Inc()
			m.log.Info("promoted to primary", "key", key, "epoch", r.Epoch)
		}
	}
	m.reconcileSenders()
}

// Ring returns the last applied ring.
func (m *Manager) Ring() (api.Ring, bool) {
	r := m.ring.Load()
	if r == nil {
		return api.Ring{}, false
	}
	return r.Ring, true
}

// RingJSON returns the last applied ring as JSON (the RingResp payload).
func (m *Manager) RingJSON() ([]byte, bool) {
	r, ok := m.Ring()
	if !ok {
		return nil, false
	}
	data, err := json.Marshal(r)
	if err != nil {
		return nil, false
	}
	return data, true
}

// Owner resolves key's owning node under the current ring. known is false
// before the first ring arrives (serve locally — bootstrap) or when the
// ring has no active nodes.
func (m *Manager) Owner(key string) (owner api.RingNode, epoch uint64, known bool) {
	r := m.ring.Load()
	if r == nil {
		return api.RingNode{}, 0, false
	}
	owner, ok := r.Owner(key)
	return owner, r.Epoch, ok
}

// NotifyDelete propagates a primary-side synopsis deletion to every
// current replication target.
func (m *Manager) NotifyDelete(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, h := range m.senders {
		h.s.notifyDelete(key)
	}
}

// Lag reports the current replication lag toward each target.
func (m *Manager) Lag() []api.ReplTargetLag {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]api.ReplTargetLag, 0, len(m.senders))
	now := time.Now()
	for id, h := range m.senders {
		out = append(out, api.ReplTargetLag{
			Target:  id,
			Bytes:   h.s.lagBytes(),
			Seconds: h.s.lagSeconds(now),
		})
	}
	return out
}

// reconcileSenders starts a sender per node the current ring makes a
// target of any of this node's primaries, and stops senders whose target
// left the ring.
func (m *Manager) reconcileSenders() {
	r := m.ring.Load()
	m.mu.Lock()
	defer m.mu.Unlock()
	desired := make(map[string]api.RingNode)
	if r != nil {
		for _, key := range m.host.PrimaryKeys() {
			for _, n := range r.Targets(key, m.self) {
				desired[n.ID] = n
			}
		}
	}
	for id, h := range m.senders {
		if _, ok := desired[id]; !ok {
			h.cancel()
			delete(m.senders, id)
			m.m.lagBytes.Delete(id)
			m.m.lagSeconds.Delete(id)
			m.log.Info("replication target removed", "target", id)
		}
	}
	for id, n := range desired {
		if _, ok := m.senders[id]; ok {
			continue
		}
		target := n
		keysFn := func() []string {
			ring := m.ring.Load()
			if ring == nil {
				return nil
			}
			var keys []string
			for _, key := range m.host.PrimaryKeys() {
				for _, t := range ring.Targets(key, m.self) {
					if t.ID == target.ID {
						keys = append(keys, key)
						break
					}
				}
			}
			return keys
		}
		s := newSender(m.self, target, m.host, keysFn, m.cfg.ReplInterval(), m.cursorDir, m.m, m.log)
		ctx, cancel := context.WithCancel(context.Background())
		h := &senderHandle{s: s, cancel: cancel, done: make(chan struct{})}
		go func() {
			defer close(h.done)
			s.run(ctx)
		}()
		m.senders[id] = h
		m.log.Info("replication target added", "target", id)
	}
}

func (m *Manager) stopSenders() {
	m.mu.Lock()
	handles := make([]*senderHandle, 0, len(m.senders))
	for id, h := range m.senders {
		handles = append(handles, h)
		delete(m.senders, id)
	}
	m.mu.Unlock()
	for _, h := range handles {
		h.cancel()
		<-h.done
	}
}
