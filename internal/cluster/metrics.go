package cluster

import (
	"xseed/internal/obs"
	"xseed/internal/store"
)

// Host is the surface the cluster layer needs from the serving node — the
// registry and store glue, implemented by internal/server. cluster never
// imports internal/server; this interface is the boundary that keeps the
// dependency one-way.
type Host interface {
	// PrimaryKeys returns the (tenant, name) store keys this node currently
	// serves as primary — the keys its senders replicate out.
	PrimaryKeys() []string

	// AllKeys returns every key hosted here, primary or replica.
	AllKeys() []string

	// SetPrimary flips a hosted key between primary (serves traffic, is
	// replicated out) and replica (applies replicated segments only). It
	// reports whether the role actually changed. Unknown keys are ignored.
	SetPrimary(key string, primary bool) (changed bool)

	// Replication source (primary side).
	Tail(key string) (seq uint64, size int64, ok bool)
	ReadSegment(key string, seq uint64, off, max int64) ([]byte, error)
	ExportBase(key string) (store.BaseExport, error)

	// Replication apply (standby side). ApplySegment returns the new
	// durable log size; store.ErrSeqMismatch asks the sender to re-ship
	// the base.
	ImportBase(key string, seq uint64, meta store.BaseMeta, snapshot []byte) error
	ApplySegment(key string, seq uint64, off int64, data []byte) (newSize int64, err error)
	DeleteReplica(key string) error
}

// Metrics is the replication metric surface, registered once per node
// (xseed_repl_*). Per-target children resolve lazily as senders start.
type Metrics struct {
	lagBytes   *obs.GaugeVec
	lagSeconds *obs.GaugeVec
	failovers  *obs.Counter
	segsSent   *obs.CounterVec
	bytesSent  *obs.CounterVec
	baseShips  *obs.CounterVec
}

// NewMetrics registers the xseed_repl_* families on r (obs.Disabled for
// none).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		lagBytes: r.GaugeVec("xseed_repl_lag_bytes",
			"Delta-log bytes written locally but not yet acked by the target standby.", "target"),
		lagSeconds: r.GaugeVec("xseed_repl_lag_seconds",
			"Seconds since the target standby was last fully caught up.", "target"),
		failovers: r.Counter("xseed_repl_failovers_total",
			"Local synopsis promotions from replica to primary (ring epoch changes)."),
		segsSent: r.CounterVec("xseed_repl_segments_sent_total",
			"Delta-log segments shipped and acked per replication target.", "target"),
		bytesSent: r.CounterVec("xseed_repl_bytes_sent_total",
			"Replication payload bytes shipped and acked per replication target (segments and bases).", "target"),
		baseShips: r.CounterVec("xseed_repl_base_ships_total",
			"Full base-snapshot ships per replication target (first contact, compaction, divergence).", "target"),
	}
}
