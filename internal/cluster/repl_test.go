package cluster

import (
	"bytes"
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/fixtures"
	"xseed/internal/logx"
	"xseed/internal/obs"
	"xseed/internal/store"
)

// storeHost adapts one store (plus an in-memory synopsis map, standing in
// for the registry) to the Host interface — both ends of a replication
// loopback use it.
type storeHost struct {
	st *store.Store

	mu       sync.Mutex
	syns     map[string]*xseed.Synopsis
	primarry map[string]bool
}

func newStoreHost(t testing.TB, dir string) *storeHost {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return &storeHost{st: st, syns: make(map[string]*xseed.Synopsis), primarry: make(map[string]bool)}
}

func (h *storeHost) PrimaryKeys() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for k, p := range h.primarry {
		if p {
			out = append(out, k)
		}
	}
	return out
}

func (h *storeHost) AllKeys() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []string
	for k := range h.syns {
		out = append(out, k)
	}
	return out
}

func (h *storeHost) SetPrimary(key string, primary bool) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.primarry[key] == primary {
		return false
	}
	h.primarry[key] = primary
	return true
}

func (h *storeHost) Tail(key string) (uint64, int64, bool) { return h.st.Tail(key) }
func (h *storeHost) ReadSegment(key string, seq uint64, off, max int64) ([]byte, error) {
	return h.st.ReadSegment(key, seq, off, max)
}
func (h *storeHost) ExportBase(key string) (store.BaseExport, error) { return h.st.ExportBase(key) }

func (h *storeHost) ImportBase(key string, seq uint64, meta store.BaseMeta, snapshot []byte) error {
	l, err := h.st.ImportBase(key, seq, meta, snapshot)
	if err != nil {
		return err
	}
	h.mu.Lock()
	h.syns[key] = l.Syn
	h.mu.Unlock()
	return nil
}

func (h *storeHost) ApplySegment(key string, seq uint64, off int64, data []byte) (int64, error) {
	newSize, records, err := h.st.AppendSegment(key, seq, off, data)
	if err != nil {
		return 0, err
	}
	if records == 0 {
		return newSize, nil
	}
	h.mu.Lock()
	syn := h.syns[key]
	h.mu.Unlock()
	if syn == nil {
		return 0, store.ErrSeqMismatch
	}
	if _, err := store.ReplaySegment(syn, data); err != nil {
		return 0, err
	}
	return newSize, nil
}

func (h *storeHost) DeleteReplica(key string) error {
	h.mu.Lock()
	delete(h.syns, key)
	h.mu.Unlock()
	return h.st.Remove(key)
}

func buildFig2(t testing.TB) *xseed.Synopsis {
	t.Helper()
	d, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	return syn
}

func feedback(t testing.TB, h *storeHost, key string, syn *xseed.Synopsis, query string, actual float64) {
	t.Helper()
	q, err := xseed.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	_, delta, applied := syn.FeedbackQueryDelta(q, actual)
	if !applied {
		t.Fatalf("feedback %s not applied", query)
	}
	if err := h.st.AppendFeedback(key, delta); err != nil {
		t.Fatal(err)
	}
}

// replPair wires a sender directly to a ReplServer over a loopback TCP
// listener and returns both hosts plus the sender (tests drive ticks by
// hand — no loops, no sleeps).
func replPair(t *testing.T, key string) (primary, standby *storeHost, s *sender) {
	t.Helper()
	primary = newStoreHost(t, t.TempDir())
	standby = newStoreHost(t, t.TempDir())

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs := NewReplServer("b", standby, nil, logx.Discard())
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go rs.Serve(ctx, ln)

	target := api.RingNode{ID: "b", Repl: ln.Addr().String(), State: api.RingStateActive}
	s = newSender("a", target, primary, func() []string { return []string{key} },
		time.Hour, t.TempDir(), NewMetrics(obs.Disabled), logx.Discard())
	t.Cleanup(s.disconnect)
	return primary, standby, s
}

// segmentBytes reads the whole delta log of key from a store via the
// replication read path.
func segmentBytes(t *testing.T, h *storeHost, key string) (uint64, []byte) {
	t.Helper()
	seq, size, ok := h.st.Tail(key)
	if !ok {
		t.Fatalf("no tail for %q", key)
	}
	if size == 0 {
		return seq, nil
	}
	data, err := h.st.ReadSegment(key, seq, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	return seq, data
}

// assertMirrored checks the standby holds a bit-identical (generation,
// log) pair for key — the invariant failover parity rests on.
func assertMirrored(t *testing.T, primary, standby *storeHost, key string) {
	t.Helper()
	pSeq, pLog := segmentBytes(t, primary, key)
	sSeq, sLog := segmentBytes(t, standby, key)
	if pSeq != sSeq {
		t.Fatalf("generation diverged: primary seq %d, standby seq %d", pSeq, sSeq)
	}
	if !bytes.Equal(pLog, sLog) {
		t.Fatalf("delta log diverged: primary %d bytes, standby %d bytes", len(pLog), len(sLog))
	}
	pExp, err := primary.st.ExportBase(key)
	if err != nil {
		t.Fatal(err)
	}
	sExp, err := standby.st.ExportBase(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pExp.Data, sExp.Data) {
		t.Fatal("base snapshot bytes diverged")
	}
}

// replKey is the (default tenant, "fig2") store key — the bare name, by
// the default-tenant key contract.
const replKey = "fig2"

func TestReplicationBaseAndSegments(t *testing.T) {
	primary, standby, s := replPair(t, replKey)
	syn := buildFig2(t)
	if err := primary.st.SaveBase(replKey, syn, "test", time.Now(), 0, 1); err != nil {
		t.Fatal(err)
	}

	// First tick: first contact ships the base verbatim.
	s.tick()
	assertMirrored(t, primary, standby, replKey)

	// Deltas appended after the ship stream as segments.
	feedback(t, primary, replKey, syn, "/a/c/s/s/t", 2)
	feedback(t, primary, replKey, syn, "/a/c/s[t]/p", 7)
	s.tick()
	assertMirrored(t, primary, standby, replKey)

	// The standby's in-memory synopsis tracked the replay: estimates agree
	// with the primary's live synopsis.
	standby.mu.Lock()
	ssyn := standby.syns[replKey]
	standby.mu.Unlock()
	if ssyn == nil {
		t.Fatal("standby holds no synopsis")
	}
	for _, q := range []string{"/a/c/s/s/t", "/a/c/s", "//s//p", "/a/c/s[t]/p"} {
		want, err := syn.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ssyn.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%s: standby estimates %g, primary %g", q, got, want)
		}
	}
}

func TestReplicationDuplicateRetransmitIsIdempotent(t *testing.T) {
	primary, standby, s := replPair(t, replKey)
	syn := buildFig2(t)
	if err := primary.st.SaveBase(replKey, syn, "test", time.Now(), 0, 1); err != nil {
		t.Fatal(err)
	}
	feedback(t, primary, replKey, syn, "/a/c/s/s/t", 2)
	s.tick()
	assertMirrored(t, primary, standby, replKey)

	// Simulate an ack lost to a primary crash after the send but before
	// the cursor persisted: rewind the cursor to the log start and tick.
	// The standby must ack the duplicate at its durable tail without
	// re-applying a byte.
	_, size, _ := standby.st.Tail(replKey)
	s.mu.Lock()
	cur := s.cursors[replKey]
	cur.Off = 0
	s.cursors[replKey] = cur
	s.mu.Unlock()
	s.tick()
	if _, sizeAfter, _ := standby.st.Tail(replKey); sizeAfter != size {
		t.Fatalf("duplicate retransmit grew the standby log: %d -> %d", size, sizeAfter)
	}
	assertMirrored(t, primary, standby, replKey)
	if lag := s.lagBytes(); lag != 0 {
		t.Fatalf("sender lag after duplicate retransmit = %d, want 0", lag)
	}
}

func TestReplicationNeedBaseResync(t *testing.T) {
	primary, standby, s := replPair(t, replKey)
	syn := buildFig2(t)
	if err := primary.st.SaveBase(replKey, syn, "test", time.Now(), 0, 1); err != nil {
		t.Fatal(err)
	}
	s.tick()
	assertMirrored(t, primary, standby, replKey)

	// The standby loses the synopsis (disk wipe, recovery race). The next
	// segment nacks with needBase and the sender re-ships the base — the
	// stream self-heals without operator action.
	if err := standby.DeleteReplica(replKey); err != nil {
		t.Fatal(err)
	}
	feedback(t, primary, replKey, syn, "/a/c/s/s/t", 2)
	s.tick()
	assertMirrored(t, primary, standby, replKey)
}

func TestReplicationDeletePropagates(t *testing.T) {
	primary, standby, s := replPair(t, replKey)
	syn := buildFig2(t)
	if err := primary.st.SaveBase(replKey, syn, "test", time.Now(), 0, 1); err != nil {
		t.Fatal(err)
	}
	s.tick()
	assertMirrored(t, primary, standby, replKey)

	if err := primary.st.Remove(replKey); err != nil {
		t.Fatal(err)
	}
	// The delete rides the sender's durable queue (the NotifyDelete path).
	s.notifyDelete(replKey)
	s.tick()
	if _, _, ok := standby.st.Tail(replKey); ok {
		t.Fatal("standby still persists the deleted synopsis")
	}
	// Idempotent: a retransmitted delete acks cleanly.
	s.notifyDelete(replKey)
	s.tick()
}

func TestReplicationSenderSurvivesDeadTarget(t *testing.T) {
	// A dead standby must cost the sender nothing but lag: tick returns,
	// reporting unsent bytes, and never blocks the caller.
	primary := newStoreHost(t, t.TempDir())
	syn := buildFig2(t)
	if err := primary.st.SaveBase(replKey, syn, "test", time.Now(), 0, 1); err != nil {
		t.Fatal(err)
	}
	feedback(t, primary, replKey, syn, "/a/c/s/s/t", 2)

	// Reserve a port and close it so the dial fails fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	target := api.RingNode{ID: "dead", Repl: addr, State: api.RingStateActive}
	s := newSender("a", target, primary, func() []string { return []string{replKey} },
		time.Hour, t.TempDir(), NewMetrics(obs.Disabled), logx.Discard())
	done := make(chan struct{})
	go func() {
		s.tick()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("tick against a dead target did not return")
	}
	if s.lagBytes() == 0 {
		t.Fatal("sender reports no lag toward a dead target with unshipped state")
	}
	if s.lagSeconds(time.Now()) <= 0 {
		t.Fatal("sender reports no lag age toward a dead target")
	}
}
