package cluster

import (
	"context"
	"errors"
	"log/slog"
	"net"
	"sync"
	"time"

	"xseed/api"
	"xseed/internal/store"
	"xseed/internal/wire"
)

// ReplServer is the standby side of replication: it accepts streams from
// primaries on the node's cluster-internal repl listener, validates and
// applies base ships and delta-log segments through the Host, and acks
// each with its durable position. Apply errors never crash the stream —
// they nack with needBase so the sender resynchronizes.
type ReplServer struct {
	self     string
	host     Host
	log      *slog.Logger
	ringJSON func() ([]byte, bool) // nil or not-ok answers RingReq with an error

	mu    sync.Mutex
	conns map[net.Conn]struct{}
}

// NewReplServer builds a standby receiver for the named node.
func NewReplServer(self string, host Host, ringJSON func() ([]byte, bool), lg *slog.Logger) *ReplServer {
	return &ReplServer{self: self, host: host, ringJSON: ringJSON, log: lg, conns: make(map[net.Conn]struct{})}
}

// Serve accepts replication streams until ctx is canceled or ln fails.
// Canceling ctx closes the listener and every open stream.
func (rs *ReplServer) Serve(ctx context.Context, ln net.Listener) error {
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-ctx.Done():
		case <-done:
		}
		ln.Close()
		rs.mu.Lock()
		for c := range rs.conns {
			c.Close()
		}
		rs.mu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		rs.mu.Lock()
		rs.conns[conn] = struct{}{}
		rs.mu.Unlock()
		go rs.handle(conn)
	}
}

func (rs *ReplServer) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		rs.mu.Lock()
		delete(rs.conns, conn)
		rs.mu.Unlock()
	}()
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	ver, err := wire.ReadHandshake(conn)
	if err != nil {
		return
	}
	if err := wire.WriteHandshake(conn, wire.Version); err != nil || ver != wire.Version {
		return
	}
	fr := wire.NewReader(conn)
	fw := wire.NewWriter(conn)
	f, err := fr.ReadFrame()
	if err != nil || f.Type != wire.FrameReplHello {
		return
	}
	peer, err := wire.DecodeReplHello(f.Payload)
	if err != nil {
		return
	}
	buf := wire.GetBuf()
	err = fw.WriteFrame(wire.FrameReplWelcome, f.Corr, wire.AppendReplWelcome(*buf, rs.self))
	wire.PutBuf(buf)
	if err != nil {
		return
	}
	conn.SetDeadline(time.Time{})
	lg := rs.log.With("peer", peer)
	lg.Info("replication stream opened")
	for {
		f, err := fr.ReadFrame()
		if err != nil {
			if !errors.Is(err, net.ErrClosed) {
				lg.Debug("replication stream closed", "err", err)
			}
			return
		}
		if !rs.dispatch(fw, f, lg) {
			return
		}
	}
}

// dispatch handles one replication frame, returning false when the stream
// must close.
func (rs *ReplServer) dispatch(fw *wire.Writer, f wire.Frame, lg *slog.Logger) bool {
	buf := wire.GetBuf()
	defer wire.PutBuf(buf)
	switch f.Type {
	case wire.FrameBaseShip:
		bs, err := wire.DecodeBaseShip(f.Payload)
		if err != nil {
			return false
		}
		meta := store.BaseMeta{
			Source:  bs.Source,
			Created: time.Unix(0, bs.Created),
			Budget:  int(bs.Budget),
			Ver:     bs.Ver,
		}
		ierr := rs.host.ImportBase(bs.Key, bs.Seq, meta, bs.Snapshot)
		if ierr != nil {
			lg.Warn("base import failed", "key", bs.Key, "err", ierr)
		}
		ack := wire.SegmentAck{Key: bs.Key, Seq: bs.Seq, OK: ierr == nil}
		return fw.WriteFrame(wire.FrameSegmentAck, f.Corr, wire.AppendSegmentAck(*buf, ack)) == nil
	case wire.FrameSegmentData:
		sd, err := wire.DecodeSegmentData(f.Payload)
		if err != nil {
			return false
		}
		newSize, aerr := rs.host.ApplySegment(sd.Key, sd.Seq, sd.Off, sd.Data)
		ack := wire.SegmentAck{Key: sd.Key, Seq: sd.Seq, Off: newSize, OK: aerr == nil}
		if aerr != nil {
			// Any apply failure resynchronizes via a fresh base: the
			// standby's copy may no longer match the primary byte-for-byte.
			ack.NeedBase = true
			if !errors.Is(aerr, store.ErrSeqMismatch) {
				lg.Warn("segment apply failed", "key", sd.Key, "err", aerr)
			}
		}
		return fw.WriteFrame(wire.FrameSegmentAck, f.Corr, wire.AppendSegmentAck(*buf, ack)) == nil
	case wire.FrameReplDelete:
		key, err := wire.DecodeReplDelete(f.Payload)
		if err != nil {
			return false
		}
		derr := rs.host.DeleteReplica(key)
		if derr != nil {
			lg.Warn("replica delete failed", "key", key, "err", derr)
		}
		ack := wire.SegmentAck{Key: key, OK: derr == nil}
		return fw.WriteFrame(wire.FrameSegmentAck, f.Corr, wire.AppendSegmentAck(*buf, ack)) == nil
	case wire.FrameRingReq:
		if rs.ringJSON != nil {
			if data, ok := rs.ringJSON(); ok {
				return fw.WriteFrame(wire.FrameRingResp, f.Corr, data) == nil
			}
		}
		e := api.Errorf(api.CodeUnavailable, "ring not yet known")
		return fw.WriteFrame(wire.FrameError, f.Corr, wire.AppendError(*buf, e)) == nil
	case wire.FramePing:
		return fw.WriteFrame(wire.FramePong, f.Corr, nil) == nil
	default:
		e := api.Errorf(api.CodeBadRequest, "unexpected %s frame on a replication stream", f.Type)
		fw.WriteFrame(wire.FrameError, f.Corr, wire.AppendError(*buf, e))
		return false
	}
}
