// Package cluster partitions the xseedd synopsis registry across nodes and
// keeps warm standbys for failover. It has three moving parts:
//
//   - a consistent-hash partition ring over (tenant, name) store keys
//     (this file), computed by the router and distributed as api.Ring;
//   - delta-log replication from each primary to its standby targets
//     (sender.go / replserver.go): base snapshots ship verbatim, then
//     validated delta-log segments stream with positional acks, so a
//     standby's durable state is bit-identical to the primary's;
//   - a node-side Manager (manager.go) that follows ring epochs, promotes
//     and demotes local synopses, and runs one sender per target; and a
//     Router (router.go) that owns membership — health checks, epoch bumps,
//     join activation — and proxies client traffic to owners.
//
// The membership group (the router) handles router state only, never the
// data path: estimates, feedback, and replication flow directly between
// clients, primaries, and standbys.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"

	"xseed/api"
)

// vnodes is the number of ring points per node. 64 keeps key distribution
// within a few percent of even for small clusters while keeping ring
// construction trivially cheap.
const vnodes = 64

// point is one virtual node position on the hash circle.
type point struct {
	h    uint64
	node int // index into Ring.Nodes
}

// Ring is an api.Ring with its hash points precomputed: Owner runs on the
// estimate data path, so lookups must not re-hash the membership. Build
// one per epoch with NewRing and share it read-only.
type Ring struct {
	api.Ring
	active []point // points of active nodes only — ownership walks these
	all    []point // points of active and joining nodes — replication walks these
}

// NewRing precomputes hash points for r. Node order does not matter: points
// are positioned by hashing node IDs, so every observer of the same
// membership derives the same ring.
func NewRing(r api.Ring) *Ring {
	ring := &Ring{Ring: r}
	for i, n := range r.Nodes {
		for v := 0; v < vnodes; v++ {
			p := point{h: nodeHash(n.ID, v), node: i}
			ring.all = append(ring.all, p)
			if n.State == api.RingStateActive {
				ring.active = append(ring.active, p)
			}
		}
	}
	sort.Slice(ring.all, func(i, j int) bool { return ring.all[i].h < ring.all[j].h })
	sort.Slice(ring.active, func(i, j int) bool { return ring.active[i].h < ring.active[j].h })
	return ring
}

// mix64 is a full-avalanche finalizer (murmur3's fmix64) over the raw
// fnv sum. It is load-bearing: fnv-1a alone places inputs that differ
// only in their final bytes within a few multiples of the fnv prime of
// each other — sequentially named synopses ("q-1", "q-2", ...) would
// cluster on one arc of the circle and land on one node.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// hashKey positions a (tenant, name) store key on the circle.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// nodeHash positions one virtual node of a member on the circle.
func nodeHash(id string, v int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	h.Write([]byte{'#'})
	h.Write([]byte(strconv.Itoa(v)))
	return mix64(h.Sum64())
}

// walk returns the distinct node indices in ring order starting at key's
// position, at most max of them.
func walk(points []point, key string, max int) []int {
	if len(points) == 0 || max <= 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(points), func(i int) bool { return points[i].h >= h })
	var out []int
	seen := make(map[int]bool, max)
	for i := 0; i < len(points) && len(out) < max; i++ {
		p := points[(start+i)%len(points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		out = append(out, p.node)
	}
	return out
}

// Owner returns the active node that owns key. ok is false on an empty
// ring (no active nodes yet).
func (r *Ring) Owner(key string) (api.RingNode, bool) {
	idx := walk(r.active, key, 1)
	if len(idx) == 0 {
		return api.RingNode{}, false
	}
	return r.Nodes[idx[0]], true
}

// Targets returns the replication targets for key from selfID's point of
// view: the first Replicas+1 distinct nodes of the active∪joining walk,
// minus self. Walking the joined set means a joining node starts receiving
// its future partitions before the ownership flip (snapshot ship + delta
// catch-up), and the property that makes failover work: the first active
// successor of a dead owner — the node the next epoch promotes — is always
// among the old owner's targets, so promotion always finds a warm replica.
func (r *Ring) Targets(key, selfID string) []api.RingNode {
	idx := walk(r.all, key, r.Replicas+1)
	var out []api.RingNode
	for _, i := range idx {
		if r.Nodes[i].ID != selfID {
			out = append(out, r.Nodes[i])
		}
	}
	return out
}

// Node returns the ring member with the given ID.
func (r *Ring) Node(id string) (api.RingNode, bool) {
	for _, n := range r.Nodes {
		if n.ID == id {
			return n, true
		}
	}
	return api.RingNode{}, false
}
