package cluster

import (
	"fmt"
	"testing"

	"xseed/api"
	"xseed/internal/store"
)

func mkRing(replicas int, nodes ...api.RingNode) *Ring {
	return NewRing(api.Ring{Epoch: 1, Replicas: replicas, Nodes: nodes})
}

func activeNode(id string) api.RingNode {
	return api.RingNode{ID: id, HTTP: id + ":8080", Repl: id + ":7071", State: api.RingStateActive}
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = store.Key(store.DefaultTenant, fmt.Sprintf("synopsis-%d", i))
	}
	return keys
}

func TestRingOwnerEmpty(t *testing.T) {
	if _, ok := mkRing(0).Owner("k"); ok {
		t.Fatal("empty ring reported an owner")
	}
	// A ring of only joining nodes has no owner either: ownership walks
	// active points only.
	joining := api.RingNode{ID: "j", State: api.RingStateJoining}
	if _, ok := mkRing(0, joining).Owner("k"); ok {
		t.Fatal("all-joining ring reported an owner")
	}
}

func TestRingDistribution(t *testing.T) {
	r := mkRing(1, activeNode("a"), activeNode("b"), activeNode("c"), activeNode("d"), activeNode("e"))
	counts := make(map[string]int)
	keys := testKeys(10000)
	for _, k := range keys {
		n, ok := r.Owner(k)
		if !ok {
			t.Fatal("no owner")
		}
		counts[n.ID]++
	}
	mean := len(keys) / len(r.Nodes)
	for id, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("node %s owns %d keys, mean %d — distribution too skewed for %d vnodes", id, c, mean, vnodes)
		}
	}
	if len(counts) != len(r.Nodes) {
		t.Errorf("only %d of %d nodes own keys", len(counts), len(r.Nodes))
	}
}

func TestRingOwnerDeterministicAcrossOrder(t *testing.T) {
	// Every observer of the same membership must derive the same ring,
	// regardless of the order the nodes were listed in.
	a := mkRing(1, activeNode("a"), activeNode("b"), activeNode("c"))
	b := mkRing(1, activeNode("c"), activeNode("a"), activeNode("b"))
	for _, k := range testKeys(500) {
		oa, _ := a.Owner(k)
		ob, _ := b.Owner(k)
		if oa.ID != ob.ID {
			t.Fatalf("key %q: owner %s in one order, %s in another", k, oa.ID, ob.ID)
		}
	}
}

func TestRingTargetsExcludeSelf(t *testing.T) {
	r := mkRing(2, activeNode("a"), activeNode("b"), activeNode("c"), activeNode("d"))
	for _, k := range testKeys(200) {
		owner, _ := r.Owner(k)
		for _, tg := range r.Targets(k, owner.ID) {
			if tg.ID == owner.ID {
				t.Fatalf("key %q: owner %s is its own replication target", k, owner.ID)
			}
		}
		if got := len(r.Targets(k, owner.ID)); got != r.Replicas {
			t.Fatalf("key %q: %d targets from the owner, want %d", k, got, r.Replicas)
		}
	}
}

// TestRingFailoverProperty pins the property failover correctness rests
// on: the node promoted after an owner dies (the key's first active
// successor in the survivor ring) was always among the dead owner's
// replication targets — so promotion always finds a warm replica.
func TestRingFailoverProperty(t *testing.T) {
	for _, size := range []int{2, 3, 4, 5, 6} {
		for replicas := 1; replicas < size && replicas <= 2; replicas++ {
			var nodes []api.RingNode
			for i := 0; i < size; i++ {
				nodes = append(nodes, activeNode(fmt.Sprintf("n%d", i)))
			}
			r := mkRing(replicas, nodes...)
			for _, k := range testKeys(300) {
				owner, _ := r.Owner(k)
				targets := r.Targets(k, owner.ID)
				var survivors []api.RingNode
				for _, n := range nodes {
					if n.ID != owner.ID {
						survivors = append(survivors, n)
					}
				}
				after := mkRing(replicas, survivors...)
				promoted, ok := after.Owner(k)
				if !ok {
					t.Fatalf("size=%d: no owner after killing %s", size, owner.ID)
				}
				found := false
				for _, tg := range targets {
					if tg.ID == promoted.ID {
						found = true
					}
				}
				if !found {
					t.Fatalf("size=%d replicas=%d key=%q: promoted %s was not a target of dead owner %s (targets %v)",
						size, replicas, k, promoted.ID, owner.ID, targets)
				}
			}
		}
	}
}

// TestRingJoiningNodeReplicatedNotOwning: a joining node starts receiving
// its future partitions (it appears in Targets) before it ever owns
// anything (Owner never names it).
func TestRingJoiningNodeReplicatedNotOwning(t *testing.T) {
	joiner := api.RingNode{ID: "c", HTTP: "c:8080", Repl: "c:7071", State: api.RingStateJoining}
	r := mkRing(1, activeNode("a"), activeNode("b"), joiner)
	seenAsTarget := false
	for _, k := range testKeys(2000) {
		owner, _ := r.Owner(k)
		if owner.ID == "c" {
			t.Fatalf("joining node owns key %q", k)
		}
		for _, tg := range r.Targets(k, owner.ID) {
			if tg.ID == "c" {
				seenAsTarget = true
			}
		}
	}
	if !seenAsTarget {
		t.Fatal("joining node never appeared as a replication target")
	}

	// Once active, the joiner owns exactly the keys it was receiving:
	// every key it comes to own listed it as a target while joining.
	active := mkRing(1, activeNode("a"), activeNode("b"), activeNode("c"))
	for _, k := range testKeys(2000) {
		newOwner, _ := active.Owner(k)
		if newOwner.ID != "c" {
			continue
		}
		oldOwner, _ := r.Owner(k)
		found := false
		for _, tg := range r.Targets(k, oldOwner.ID) {
			if tg.ID == "c" {
				found = true
			}
		}
		if !found {
			t.Fatalf("key %q: c owns it after activation but was not a pre-activation target of %s", k, oldOwner.ID)
		}
	}
}

func TestRingNode(t *testing.T) {
	r := mkRing(1, activeNode("a"), activeNode("b"))
	if n, ok := r.Node("b"); !ok || n.HTTP != "b:8080" {
		t.Fatalf("Node(b) = %+v, %v", n, ok)
	}
	if _, ok := r.Node("zz"); ok {
		t.Fatal("Node(zz) found")
	}
}
