package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xseed/api"
	"xseed/internal/store"
)

// healthMisses is how many consecutive failed health checks mark a node
// down (and trigger the failover epoch).
const healthMisses = 3

// joinGracePolls is how many poll intervals a recovered node stays in the
// joining state at minimum before zero observed lag can activate it —
// long enough for the actives' senders to notice the new target and start
// streaming, so "no lag reported" cannot be mistaken for "caught up".
const joinGracePolls = 3

// member is the router's dynamic view of one configured node.
type member struct {
	cfg    NodeConfig
	state  string // api.RingStateActive, api.RingStateJoining, or "down"
	misses int
	since  time.Time // when the current state was entered
}

// Router owns cluster membership — health checks, epoch bumps, join
// activation — and proxies client traffic to partition owners. It is
// deliberately not on the replication path and holds no synopsis state:
// a router restart loses nothing but a few seconds of routing.
type Router struct {
	cfg Config
	log *slog.Logger
	hc  *http.Client

	mu        sync.Mutex
	members   []*member
	epoch     uint64
	bootstrap bool // first health sweep activates every healthy node at once

	ring     atomic.Pointer[Ring]
	ringJSON atomic.Pointer[[]byte]
}

// NewRouter builds a router over the configured topology. All nodes start
// down; the first health sweep forms the initial ring.
func NewRouter(cfg Config, lg *slog.Logger) *Router {
	rt := &Router{
		cfg:       cfg,
		log:       lg.With("role", "router"),
		hc:        &http.Client{Timeout: 2 * time.Second},
		bootstrap: true,
	}
	for _, n := range cfg.Nodes {
		rt.members = append(rt.members, &member{cfg: n, state: "down"})
	}
	return rt
}

// Run serves the router on cfg.Router and health-checks the nodes until
// ctx is canceled.
func (rt *Router) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", rt.cfg.Router)
	if err != nil {
		return fmt.Errorf("router listen: %w", err)
	}
	rt.log.Info("router listening", "addr", ln.Addr().String(), "nodes", len(rt.cfg.Nodes))
	go rt.healthLoop(ctx)
	srv := &http.Server{Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Shutdown(sctx)
	<-errc
	return nil
}

// healthLoop sweeps node health every poll interval and republishes the
// ring on membership changes.
func (rt *Router) healthLoop(ctx context.Context) {
	rt.sweep(ctx)
	t := time.NewTicker(rt.cfg.PollInterval())
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			rt.sweep(ctx)
		}
	}
}

// sweep health-checks every node in parallel and applies the state
// machine: healthy down-nodes join (or bootstrap straight to active),
// joining nodes activate once replication lag toward them drains, and
// healthMisses consecutive failures take a node down.
func (rt *Router) sweep(ctx context.Context) {
	healthy := make([]bool, len(rt.cfg.Nodes))
	var wg sync.WaitGroup
	for i, n := range rt.cfg.Nodes {
		wg.Add(1)
		go func(i int, n NodeConfig) {
			defer wg.Done()
			healthy[i] = rt.checkHealth(ctx, n)
		}(i, n)
	}
	wg.Wait()

	rt.mu.Lock()
	changed := false
	now := time.Now()
	anyActive := false
	for _, m := range rt.members {
		if m.state == api.RingStateActive {
			anyActive = true
		}
	}
	for i, m := range rt.members {
		if !healthy[i] {
			m.misses++
			if m.misses >= healthMisses && m.state != "down" {
				rt.log.Warn("node down", "node", m.cfg.ID, "state", m.state)
				m.state, m.since, changed = "down", now, true
			}
			continue
		}
		m.misses = 0
		if m.state != "down" {
			continue
		}
		if rt.bootstrap || !anyActive {
			// Initial formation (or a fully-dead cluster recovering): there
			// is no one to catch up from, so activate directly.
			rt.log.Info("node active", "node", m.cfg.ID)
			m.state, m.since, changed = api.RingStateActive, now, true
			anyActive = true
		} else {
			rt.log.Info("node joining", "node", m.cfg.ID)
			m.state, m.since, changed = api.RingStateJoining, now, true
		}
	}
	rt.bootstrap = false
	joining := make([]*member, 0, 1)
	grace := time.Duration(joinGracePolls) * rt.cfg.PollInterval()
	for _, m := range rt.members {
		if m.state == api.RingStateJoining && now.Sub(m.since) >= grace {
			joining = append(joining, m)
		}
	}
	actives := make([]NodeConfig, 0, len(rt.members))
	for _, m := range rt.members {
		if m.state == api.RingStateActive {
			actives = append(actives, m.cfg)
		}
	}
	rt.mu.Unlock()

	// Lag probes run unlocked: they are network calls against the actives.
	promote := make([]*member, 0, len(joining))
	for _, m := range joining {
		if rt.caughtUp(ctx, actives, m.cfg.ID) {
			promote = append(promote, m)
		}
	}

	rt.mu.Lock()
	for _, m := range promote {
		if m.state == api.RingStateJoining {
			rt.log.Info("node active", "node", m.cfg.ID, "joinedFor", time.Since(m.since).Round(time.Millisecond))
			m.state, m.since, changed = api.RingStateActive, now, true
		}
	}
	if changed {
		rt.publishLocked()
	}
	rt.mu.Unlock()
}

func (rt *Router) checkHealth(ctx context.Context, n NodeConfig) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+n.HTTP+"/v1/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.hc.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// caughtUp reports whether no active node still observes replication lag
// toward target. An unreachable active vetoes promotion: its lag is
// unknown, and promoting a stale standby serves stale estimates.
func (rt *Router) caughtUp(ctx context.Context, actives []NodeConfig, target string) bool {
	for _, n := range actives {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+n.HTTP+"/v1/cluster/lag", nil)
		if err != nil {
			return false
		}
		resp, err := rt.hc.Do(req)
		if err != nil {
			return false
		}
		var lag api.ClusterLag
		derr := json.NewDecoder(resp.Body).Decode(&lag)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			return false
		}
		for _, t := range lag.Targets {
			if t.Target == target && t.Bytes > 0 {
				return false
			}
		}
	}
	return true
}

// publishLocked rebuilds the ring from the current member states under a
// bumped epoch. Down nodes are excluded entirely; joining nodes appear so
// primaries replicate toward them, but take no ownership until active.
func (rt *Router) publishLocked() {
	rt.epoch++
	r := api.Ring{Epoch: rt.epoch, Replicas: rt.cfg.Replicas}
	for _, m := range rt.members {
		if m.state == "down" {
			continue
		}
		r.Nodes = append(r.Nodes, api.RingNode{
			ID:    m.cfg.ID,
			HTTP:  m.cfg.HTTP,
			XTP:   m.cfg.XTP,
			Repl:  m.cfg.Repl,
			State: m.state,
		})
	}
	ring := NewRing(r)
	rt.ring.Store(ring)
	data, err := json.Marshal(r)
	if err == nil {
		rt.ringJSON.Store(&data)
	}
	rt.log.Info("ring published", "epoch", r.Epoch, "members", len(r.Nodes))
}

// Ring returns the current ring (nil before the first health sweep
// completes).
func (rt *Router) Ring() *Ring { return rt.ring.Load() }

// Handler serves the router surface: the ring and health endpoints
// locally, everything else proxied to the owning node.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cluster/ring", func(w http.ResponseWriter, r *http.Request) {
		data := rt.ringJSON.Load()
		if data == nil {
			api.WriteError(w, api.Errorf(api.CodeUnavailable, "ring not yet formed"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(*data)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/synopses", rt.proxyList)
	mux.HandleFunc("/", rt.proxy)
	return mux
}

// proxyRetries bounds one proxied request's attempts: transient failures
// (a dying node, a mid-rebalance moved) re-resolve the owner and retry,
// which covers the healthMisses×poll window a failover takes to detect.
const (
	proxyRetries = 40
	proxyBackoff = 100 * time.Millisecond
)

// maxProxyBody bounds a buffered request body (snapshot uploads are the
// largest legitimate payload; the node enforces its own limit too).
const maxProxyBody = 256 << 20

// proxy forwards one request to the node that owns its synopsis, following
// moved redirects and retrying around node failures. The body is buffered
// once so every retry replays identical bytes.
func (rt *Router) proxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxProxyBody+1))
	if err != nil {
		api.WriteError(w, api.Errorf(api.CodeBadRequest, "read request body: %v", err))
		return
	}
	if len(body) > maxProxyBody {
		api.WriteError(w, api.Errorf(api.CodeBadRequest, "request body exceeds %d bytes", maxProxyBody))
		return
	}
	name := synopsisName(r, body)
	override := "" // owner address learned from a moved redirect
	var lastErr error
	for attempt := 0; attempt < proxyRetries; attempt++ {
		if attempt > 0 {
			select {
			case <-r.Context().Done():
				api.WriteError(w, api.WrapError(r.Context().Err(), api.CodeCanceled))
				return
			case <-time.After(proxyBackoff):
			}
		}
		base := override
		if base == "" {
			node, ok := rt.route(name)
			if !ok {
				lastErr = errors.New("no active nodes")
				continue
			}
			base = "http://" + node.HTTP
		}
		resp, err := rt.forward(r, base, body)
		if err != nil {
			lastErr = err
			override = ""
			continue
		}
		switch {
		case resp.StatusCode == http.StatusMisdirectedRequest:
			// The node knows better than our default-tenant guess (or the
			// ring moved under us): follow its owner hint once, then fall
			// back to re-resolving.
			respBody, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			override = ""
			if d, ok := api.DecodeErrorBody(resp.StatusCode, respBody).MovedDetail(); ok && d.Owner != "" {
				override = d.Owner
			}
			lastErr = fmt.Errorf("moved (epoch race), owner hint %q", override)
			continue
		case resp.StatusCode == http.StatusBadGateway ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode == http.StatusGatewayTimeout:
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			override = ""
			lastErr = fmt.Errorf("%s from %s", resp.Status, base)
			continue
		}
		copyResponse(w, resp)
		return
	}
	api.WriteError(w, api.Errorf(api.CodeUnavailable, "no node could serve the request: %v", lastErr))
}

// route picks the first-guess node for a request: the ring owner of the
// default tenant's key for synopsis routes (a tenanted request a node
// re-keys answers with a moved hint we follow), any active node otherwise.
func (rt *Router) route(name string) (api.RingNode, bool) {
	ring := rt.ring.Load()
	if ring == nil {
		return api.RingNode{}, false
	}
	if name != "" {
		return ring.Owner(store.Key(store.DefaultTenant, name))
	}
	for _, n := range ring.Nodes {
		if n.State == api.RingStateActive {
			return n, true
		}
	}
	return api.RingNode{}, false
}

func (rt *Router) forward(r *http.Request, base string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	req.Header.Set("X-Forwarded-For", r.RemoteAddr)
	return rt.hc.Do(req)
}

func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// proxyList fans GET /v1/synopses out to every active node and merges the
// partitions' listings. Nodes list only the synopses they own, so the
// merge is a concatenation, not a dedup.
func (rt *Router) proxyList(w http.ResponseWriter, r *http.Request) {
	ring := rt.ring.Load()
	if ring == nil {
		api.WriteError(w, api.Errorf(api.CodeUnavailable, "ring not yet formed"))
		return
	}
	merged := []api.SynopsisInfo{}
	for _, n := range ring.Nodes {
		if n.State != api.RingStateActive {
			continue
		}
		resp, err := rt.forward(r, "http://"+n.HTTP, nil)
		if err != nil {
			api.WriteError(w, api.Errorf(api.CodeUnavailable, "list from %s: %v", n.ID, err))
			return
		}
		respBody, rerr := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		resp.Body.Close()
		if rerr != nil {
			api.WriteError(w, api.Errorf(api.CodeUnavailable, "list from %s: %v", n.ID, rerr))
			return
		}
		if resp.StatusCode != http.StatusOK {
			copyResponseBytes(w, resp, respBody)
			return
		}
		var part []api.SynopsisInfo
		if err := json.Unmarshal(respBody, &part); err != nil {
			api.WriteError(w, api.Errorf(api.CodeInternal, "list from %s: %v", n.ID, err))
			return
		}
		merged = append(merged, part...)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(merged)
}

func copyResponseBytes(w http.ResponseWriter, resp *http.Response, body []byte) {
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// synopsisName extracts the synopsis a request addresses: the {name} path
// segment of /v1/synopses/{name}/..., or the name field of a create body.
// Empty means the route is not synopsis-scoped.
func synopsisName(r *http.Request, body []byte) string {
	if rest, ok := strings.CutPrefix(r.URL.Path, "/v1/synopses/"); ok {
		seg, _, _ := strings.Cut(rest, "/")
		if name, err := url.PathUnescape(seg); err == nil {
			return name
		}
		return seg
	}
	if r.Method == http.MethodPost && r.URL.Path == "/v1/synopses" {
		var peek struct {
			Name string `json:"name"`
		}
		json.Unmarshal(body, &peek)
		return peek.Name
	}
	return ""
}
