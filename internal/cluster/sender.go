package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"xseed/api"
	"xseed/internal/obs"
	"xseed/internal/store"
	"xseed/internal/wire"
)

// maxSegment bounds one SegmentData payload. Well under wire.MaxFrame so a
// catch-up burst streams as many medium frames instead of one giant one.
const maxSegment = 1 << 20

// cursorPos is the acked replication position of one synopsis at one
// target.
type cursorPos struct {
	Seq uint64 `json:"seq"`
	Off int64  `json:"off"`
}

// sender replicates this node's primary synopses to one target standby.
// The delta log itself is the durable queue: the sender tails each owned
// synopsis's log from a persisted per-target cursor, ships validated
// segments, and advances the cursor on ack — so a slow or dead standby
// just lags (bounded only by the log) and never backpressures the write
// path, and a restarted primary resumes where the standby's acks left off.
type sender struct {
	self     string
	target   api.RingNode
	host     Host
	keysFn   func() []string // primary keys routed to this target under the current ring
	interval time.Duration
	log      *slog.Logger

	cursorPath string

	gLagBytes   *obs.Gauge
	gLagSeconds *obs.Gauge
	cSegs       *obs.Counter
	cBytes      *obs.Counter
	cBases      *obs.Counter

	mu      sync.Mutex // guards cursors and deletes (run loop vs. NotifyDelete)
	cursors map[string]cursorPos
	deletes map[string]bool
	dirty   bool

	conn net.Conn
	fr   *wire.Reader
	fw   *wire.Writer
	corr uint64

	lagB     atomic.Int64
	caughtUp atomic.Int64 // unix nanos of the last fully-caught-up tick
}

func newSender(self string, target api.RingNode, host Host, keysFn func() []string,
	interval time.Duration, cursorDir string, m *Metrics, lg *slog.Logger) *sender {
	s := &sender{
		self:        self,
		target:      target,
		host:        host,
		keysFn:      keysFn,
		interval:    interval,
		log:         lg.With("target", target.ID),
		cursorPath:  filepath.Join(cursorDir, "cursor-"+target.ID+".json"),
		gLagBytes:   m.lagBytes.With(target.ID),
		gLagSeconds: m.lagSeconds.With(target.ID),
		cSegs:       m.segsSent.With(target.ID),
		cBytes:      m.bytesSent.With(target.ID),
		cBases:      m.baseShips.With(target.ID),
		cursors:     make(map[string]cursorPos),
		deletes:     make(map[string]bool),
	}
	s.caughtUp.Store(time.Now().UnixNano())
	if data, err := os.ReadFile(s.cursorPath); err == nil {
		var saved map[string]cursorPos
		if json.Unmarshal(data, &saved) == nil {
			s.cursors = saved
		}
	}
	return s
}

// notifyDelete queues a synopsis deletion for propagation.
func (s *sender) notifyDelete(key string) {
	s.mu.Lock()
	s.deletes[key] = true
	delete(s.cursors, key)
	s.dirty = true
	s.mu.Unlock()
}

// run is the sender loop: one goroutine, one connection, synchronous
// request/ack per frame. Transport errors drop the connection and the
// next tick redials — the cursor file means nothing is ever re-sent past
// an ack except by the standby's explicit needBase.
func (s *sender) run(ctx context.Context) {
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			s.disconnect()
			return
		case <-t.C:
			s.tick()
		}
	}
}

func (s *sender) tick() {
	s.sendDeletes()
	var lag int64
	for _, key := range s.keysFn() {
		n, err := s.syncKey(key)
		lag += n
		if err != nil {
			s.log.Debug("replication sync failed", "key", key, "err", err)
			s.disconnect()
			break
		}
	}
	now := time.Now()
	if lag == 0 {
		s.caughtUp.Store(now.UnixNano())
	}
	s.lagB.Store(lag)
	s.gLagBytes.Set(lag)
	s.gLagSeconds.Set(int64(s.lagSeconds(now)))
	s.saveCursors()
}

// lagSeconds reports how long the target has been behind: 0 when caught
// up, otherwise seconds since the last fully-caught-up tick.
func (s *sender) lagSeconds(now time.Time) float64 {
	if s.lagB.Load() == 0 {
		return 0
	}
	return now.Sub(time.Unix(0, s.caughtUp.Load())).Seconds()
}

// lagBytes reports the current unacked byte count toward the target.
func (s *sender) lagBytes() int64 { return s.lagB.Load() }

func (s *sender) sendDeletes() {
	s.mu.Lock()
	var keys []string
	for k := range s.deletes {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	for _, key := range keys {
		buf := wire.GetBuf()
		ack, err := s.roundTrip(wire.FrameReplDelete, wire.AppendReplDelete(*buf, key))
		wire.PutBuf(buf)
		if err != nil {
			s.disconnect()
			return
		}
		_ = ack
		s.mu.Lock()
		delete(s.deletes, key)
		s.mu.Unlock()
	}
}

// syncKey brings one synopsis's replica up to the local log tail,
// returning the bytes still unacked (0 when caught up).
func (s *sender) syncKey(key string) (lag int64, err error) {
	seq, size, ok := s.host.Tail(key)
	if !ok {
		return 0, nil
	}
	s.mu.Lock()
	cur := s.cursors[key]
	s.mu.Unlock()
	if cur.Seq != seq {
		// First contact, primary compaction, or standby divergence: restart
		// this synopsis from a verbatim base ship.
		if cur, err = s.shipBase(key); err != nil {
			return size, err
		}
		if seq, size, ok = s.host.Tail(key); !ok || seq != cur.Seq {
			return 0, nil // compacted under us; next tick restarts
		}
	}
	for cur.Off < size {
		data, rerr := s.host.ReadSegment(key, cur.Seq, cur.Off, maxSegment)
		if rerr == store.ErrSeqMismatch {
			return size - cur.Off, nil // compacted under us; next tick re-ships
		}
		if rerr != nil {
			return size - cur.Off, rerr
		}
		if len(data) == 0 {
			break
		}
		buf := wire.GetBuf()
		payload := wire.AppendSegmentData(*buf, wire.SegmentData{Key: key, Seq: cur.Seq, Off: cur.Off, Data: data})
		ack, werr := s.roundTrip(wire.FrameSegmentData, payload)
		wire.PutBuf(buf)
		if werr != nil {
			return size - cur.Off, werr
		}
		if ack.NeedBase || !ack.OK {
			if cur, err = s.shipBase(key); err != nil {
				return size - cur.Off, err
			}
			continue
		}
		cur.Off = ack.Off
		s.cSegs.Inc()
		s.cBytes.Add(uint64(len(data)))
		s.setCursor(key, cur)
	}
	return size - cur.Off, nil
}

// shipBase sends the synopsis's full base snapshot verbatim and resets the
// cursor to the shipped generation's log start.
func (s *sender) shipBase(key string) (cursorPos, error) {
	exp, err := s.host.ExportBase(key)
	if err == store.ErrSeqMismatch {
		// Racing a compaction; report no progress and let the next tick
		// export the new generation.
		return cursorPos{}, nil
	}
	if err != nil {
		return cursorPos{}, err
	}
	buf := wire.GetBuf()
	payload := wire.AppendBaseShip(*buf, wire.BaseShip{
		Key:      key,
		Seq:      exp.Seq,
		Ver:      exp.Meta.Ver,
		Budget:   int64(exp.Meta.Budget),
		Created:  exp.Meta.Created.UnixNano(),
		Source:   exp.Meta.Source,
		Snapshot: exp.Data,
	})
	ack, err := s.roundTrip(wire.FrameBaseShip, payload)
	wire.PutBuf(buf)
	if err != nil {
		return cursorPos{}, err
	}
	if !ack.OK {
		return cursorPos{}, fmt.Errorf("cluster: %s rejected base ship for %q", s.target.ID, key)
	}
	cur := cursorPos{Seq: exp.Seq, Off: 0}
	s.setCursor(key, cur)
	s.cBases.Inc()
	s.cBytes.Add(uint64(len(exp.Data)))
	return cur, nil
}

func (s *sender) setCursor(key string, cur cursorPos) {
	s.mu.Lock()
	s.cursors[key] = cur
	s.dirty = true
	s.mu.Unlock()
}

// saveCursors persists the acked positions (atomic rename) so a restarted
// primary resumes streaming where the standby's acks left off instead of
// re-shipping every base.
func (s *sender) saveCursors() {
	s.mu.Lock()
	if !s.dirty {
		s.mu.Unlock()
		return
	}
	s.dirty = false
	data, err := json.Marshal(s.cursors)
	s.mu.Unlock()
	if err != nil {
		return
	}
	tmp := s.cursorPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	os.Rename(tmp, s.cursorPath)
}

// roundTrip sends one frame and waits for its SegmentAck (the replication
// exchange is synchronous per sender; pipelining would buy nothing against
// a same-DC standby and would complicate cursor recovery).
func (s *sender) roundTrip(t wire.FrameType, payload []byte) (wire.SegmentAck, error) {
	if err := s.ensureConn(); err != nil {
		return wire.SegmentAck{}, err
	}
	s.corr++
	corr := s.corr
	s.conn.SetDeadline(time.Now().Add(30 * time.Second))
	if err := s.fw.WriteFrame(t, corr, payload); err != nil {
		return wire.SegmentAck{}, err
	}
	for {
		f, err := s.fr.ReadFrame()
		if err != nil {
			return wire.SegmentAck{}, err
		}
		switch f.Type {
		case wire.FrameSegmentAck:
			if f.Corr != corr {
				continue // stale ack from a previous connection incarnation
			}
			return wire.DecodeSegmentAck(f.Payload)
		case wire.FrameError:
			ae, derr := wire.DecodeError(f.Payload)
			if derr != nil {
				return wire.SegmentAck{}, derr
			}
			return wire.SegmentAck{}, fmt.Errorf("cluster: %s: %w", s.target.ID, ae)
		default:
			return wire.SegmentAck{}, fmt.Errorf("cluster: unexpected %s frame on replication stream", f.Type)
		}
	}
}

func (s *sender) ensureConn() error {
	if s.conn != nil {
		return nil
	}
	addr := s.target.Repl
	if addr == "" {
		return fmt.Errorf("cluster: target %s has no repl address", s.target.ID)
	}
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := wire.WriteHandshake(conn, wire.Version); err != nil {
		conn.Close()
		return err
	}
	ver, err := wire.ReadHandshake(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if ver != wire.Version {
		conn.Close()
		return fmt.Errorf("%w: server speaks %d", wire.ErrVersionMismatch, ver)
	}
	fw := wire.NewWriter(conn)
	fr := wire.NewReader(conn)
	buf := wire.GetBuf()
	err = fw.WriteFrame(wire.FrameReplHello, 1, wire.AppendReplHello(*buf, s.self))
	wire.PutBuf(buf)
	if err != nil {
		conn.Close()
		return err
	}
	f, err := fr.ReadFrame()
	if err != nil {
		conn.Close()
		return err
	}
	if f.Type != wire.FrameReplWelcome {
		conn.Close()
		return fmt.Errorf("cluster: expected ReplWelcome, got %s", f.Type)
	}
	if _, err := wire.DecodeReplWelcome(f.Payload); err != nil {
		conn.Close()
		return err
	}
	conn.SetDeadline(time.Time{})
	s.conn, s.fr, s.fw, s.corr = conn, fr, fw, 1
	return nil
}

func (s *sender) disconnect() {
	if s.conn != nil {
		s.conn.Close()
		s.conn, s.fr, s.fw = nil, nil, nil
	}
}
