// Package counterstack implements the "counter stacks" data structure of the
// XSEED paper (Figure 3): a stack discipline over arbitrary comparable items
// that reports, in expected O(1) per operation, the recursion level of the
// current rooted path.
//
// The recursion level of a path is the maximum number of occurrences of any
// single item in the path, minus one (paper Definition 1). The structure
// partitions pushed items into a list of stacks: an item whose current
// occurrence count is k (before the push) goes onto stack k+1. The recursion
// level of the whole path is then the number of non-empty stacks minus one,
// because stack k+1 is non-empty exactly when some item occurs more than k
// times.
package counterstack

import "fmt"

// Stack tracks recursion levels of a rooted path of items of type K.
// The zero value is not ready to use; call New.
type Stack[K comparable] struct {
	occ    map[K]int // current occurrence count per item on the path
	stacks [][]K     // stacks[i] holds the (i+1)-th occurrences, bottom first
	depth  int       // total number of items on the path
}

// New returns an empty counter stack.
func New[K comparable]() *Stack[K] {
	return &Stack[K]{occ: make(map[K]int)}
}

// Push appends item to the path and returns the recursion level of the path
// ending at item: the number of occurrences of item on the path, minus one.
//
// Note that the returned value is the level contribution of this item, which
// the XSEED kernel uses to index edge-label vectors; the level of the whole
// path is available via Level.
func (s *Stack[K]) Push(item K) int {
	n := s.occ[item] // occurrences before this push
	s.occ[item] = n + 1
	if n >= len(s.stacks) {
		s.stacks = append(s.stacks, nil)
	}
	s.stacks[n] = append(s.stacks[n], item)
	s.depth++
	return n
}

// Pop removes item from the path. Items must be popped in reverse push order
// (stack discipline); Pop panics if item is not the most recent occurrence
// of itself, which indicates a caller bug (mismatched open/close events).
func (s *Stack[K]) Pop(item K) {
	n := s.occ[item]
	if n == 0 {
		panic(fmt.Sprintf("counterstack: pop of item %v not on path", item))
	}
	st := s.stacks[n-1]
	if len(st) == 0 || st[len(st)-1] != item {
		panic(fmt.Sprintf("counterstack: pop of %v violates stack discipline", item))
	}
	s.stacks[n-1] = st[:len(st)-1]
	if n == 1 {
		delete(s.occ, item)
	} else {
		s.occ[item] = n - 1
	}
	s.depth--
}

// Level reports the recursion level of the whole current path: the number of
// non-empty stacks minus one, or -1 for the empty path.
func (s *Stack[K]) Level() int {
	// Stacks empty out from the top (highest occurrence) first under stack
	// discipline, so scan down from the current top. The scan is amortized
	// O(1): the top index only moves when pushes/pops cross a boundary.
	for i := len(s.stacks) - 1; i >= 0; i-- {
		if len(s.stacks[i]) > 0 {
			return i
		}
	}
	return -1
}

// Count returns the number of occurrences of item on the current path.
func (s *Stack[K]) Count(item K) int { return s.occ[item] }

// Depth returns the number of items on the current path.
func (s *Stack[K]) Depth() int { return s.depth }

// Reset empties the structure for reuse without reallocating.
func (s *Stack[K]) Reset() {
	clear(s.occ)
	for i := range s.stacks {
		s.stacks[i] = s.stacks[i][:0]
	}
	s.depth = 0
}
