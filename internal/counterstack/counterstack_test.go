package counterstack

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refLevel computes the recursion level of a path by brute force:
// max occurrences of any item minus one, or -1 for the empty path.
func refLevel(path []string) int {
	if len(path) == 0 {
		return -1
	}
	occ := map[string]int{}
	max := 0
	for _, it := range path {
		occ[it]++
		if occ[it] > max {
			max = occ[it]
		}
	}
	return max - 1
}

func TestPaperFigure3(t *testing.T) {
	// After pushing (a, b, b, c, c, b): occurrences a=>1, b=>3, c=>2;
	// stacks 1:{a,b,c} 2:{b,c} 3:{b}; level = 3-1 = 2.
	s := New[string]()
	seq := []string{"a", "b", "b", "c", "c", "b"}
	wantPushLevels := []int{0, 0, 1, 0, 1, 2}
	for i, it := range seq {
		if got := s.Push(it); got != wantPushLevels[i] {
			t.Fatalf("push %d (%s): level = %d, want %d", i, it, got, wantPushLevels[i])
		}
	}
	if got := s.Level(); got != 2 {
		t.Errorf("Level() = %d, want 2", got)
	}
	if got := s.Count("b"); got != 3 {
		t.Errorf("Count(b) = %d, want 3", got)
	}
	if got := s.Count("c"); got != 2 {
		t.Errorf("Count(c) = %d, want 2", got)
	}
	if got := s.Depth(); got != 6 {
		t.Errorf("Depth() = %d, want 6", got)
	}
}

func TestPaperDefinition1Examples(t *testing.T) {
	// Path (a,c,s,p) has recursion level 0; (a,c,s,s,s,p) has level 2.
	s := New[string]()
	for _, it := range []string{"a", "c", "s", "p"} {
		s.Push(it)
	}
	if got := s.Level(); got != 0 {
		t.Errorf("level of (a,c,s,p) = %d, want 0", got)
	}
	s.Reset()
	for _, it := range []string{"a", "c", "s", "s", "s", "p"} {
		s.Push(it)
	}
	if got := s.Level(); got != 2 {
		t.Errorf("level of (a,c,s,s,s,p) = %d, want 2", got)
	}
}

func TestEmptyPath(t *testing.T) {
	s := New[string]()
	if got := s.Level(); got != -1 {
		t.Errorf("Level() of empty = %d, want -1", got)
	}
	if got := s.Depth(); got != 0 {
		t.Errorf("Depth() of empty = %d, want 0", got)
	}
	s.Push("x")
	s.Pop("x")
	if got := s.Level(); got != -1 {
		t.Errorf("Level() after push/pop = %d, want -1", got)
	}
}

func TestPopRestoresLevels(t *testing.T) {
	s := New[string]()
	s.Push("a")
	s.Push("b")
	s.Push("a") // level 1
	if got := s.Level(); got != 1 {
		t.Fatalf("Level() = %d, want 1", got)
	}
	s.Pop("a")
	if got := s.Level(); got != 0 {
		t.Errorf("Level() after pop = %d, want 0", got)
	}
	if got := s.Count("a"); got != 1 {
		t.Errorf("Count(a) = %d, want 1", got)
	}
}

func TestPopPanicsOnUnknownItem(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Pop of absent item did not panic")
		}
	}()
	s := New[string]()
	s.Push("a")
	s.Pop("b")
}

func TestPopPanicsOnWrongOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Pop did not panic")
		}
	}()
	s := New[string]()
	s.Push("a")
	s.Push("b")
	s.Push("a")
	// "a" was pushed after "b" at occurrence 1; popping the occurrence-1 "a"
	// while the occurrence-2 "a" is still on the path is fine, but popping
	// "b" then "b" again must panic.
	s.Pop("a")
	s.Pop("b")
	s.Pop("b")
}

// TestRandomWalkAgainstReference drives a random DFS-like walk (push/pop
// sequences forming a valid tree traversal) and checks Level against the
// brute-force definition after every operation.
func TestRandomWalkAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	labels := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 200; trial++ {
		s := New[string]()
		var path []string
		for op := 0; op < 400; op++ {
			if len(path) > 0 && rng.Intn(3) == 0 {
				top := path[len(path)-1]
				path = path[:len(path)-1]
				s.Pop(top)
			} else {
				it := labels[rng.Intn(len(labels))]
				lvl := s.Push(it)
				path = append(path, it)
				// per-item level = occurrences-1
				occ := 0
				for _, p := range path {
					if p == it {
						occ++
					}
				}
				if lvl != occ-1 {
					t.Fatalf("Push(%s) level = %d, want %d (path %v)", it, lvl, occ-1, path)
				}
			}
			if got, want := s.Level(), refLevel(path); got != want {
				t.Fatalf("Level() = %d, want %d (path %v)", got, want, path)
			}
			if got := s.Depth(); got != len(path) {
				t.Fatalf("Depth() = %d, want %d", got, len(path))
			}
		}
	}
}

// TestQuickLevelMatchesReference is a property-based test: for any sequence
// of small label indices interpreted as pushes, Level matches the reference.
func TestQuickLevelMatchesReference(t *testing.T) {
	f := func(seq []uint8) bool {
		s := New[int]()
		var path []string
		var pathInts []int
		for _, b := range seq {
			v := int(b % 5)
			s.Push(v)
			pathInts = append(pathInts, v)
			path = append(path, string(rune('a'+v)))
		}
		_ = pathInts
		return s.Level() == refLevel(path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	s := New[int]()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v := i % 7
		s.Push(v)
		if s.Depth() > 64 {
			s.Reset()
		}
	}
}
