// Package datagen generates deterministic synthetic XML documents that
// stand in for the paper's experimental datasets (DESIGN.md Section 4
// documents each substitution). Every generator is an xmldoc.Source: it can
// be replayed into any sink (document builder, kernel builder, XML writer)
// and produces the identical stream for a fixed seed and scale factor.
//
// The generators reproduce the structural characteristics the XSEED
// experiments depend on, not the text content:
//
//   - DBLP: shallow, wide, non-recursive bibliography with per-type
//     optional fields and the pages/publisher sibling correlation that
//     drives the paper's Figure 5 discussion.
//   - XMark: the auction schema of the XML Benchmark Project with its mild
//     parlist/listitem recursion (avg ≈ 0.04, max 1); factor 0.1 ≈ XMark10
//     and 1.0 ≈ XMark100 in the paper's proportions.
//   - Treebank: a probabilistic phrase-structure grammar with deep
//     same-label nesting (avg recursion ≈ 1.3, max ≈ 8-10), the paper's
//     "complex with high degree of recursion" stressor.
//   - SwissProt / TPCH / NASA / XBench: lighter generators covering the
//     remaining datasets ("the trends for the other data sets are
//     similar").
package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"xseed/internal/xmldoc"
)

// Dataset names accepted by New.
const (
	NameDBLP      = "dblp"
	NameXMark     = "xmark"
	NameTreebank  = "treebank"
	NameSwissProt = "swissprot"
	NameTPCH      = "tpch"
	NameNASA      = "nasa"
	NameXBench    = "xbench"
)

// Names lists all supported dataset names.
func Names() []string {
	return []string{NameDBLP, NameXMark, NameTreebank, NameSwissProt, NameTPCH, NameNASA, NameXBench}
}

// New returns a generator for the named dataset at the given scale factor.
// Factor 1.0 approximates the paper's full-size dataset node counts
// (DBLP ≈ 4.0M nodes, XMark ≈ 1.67M, Treebank ≈ 2.4M); the paper's derived
// sets are factors of these (XMark10 ≈ 0.1, Treebank.05 = 0.05).
func New(name string, factor float64, seed int64) (xmldoc.Source, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("datagen: factor must be positive, got %g", factor)
	}
	switch strings.ToLower(name) {
	case NameDBLP:
		return &DBLP{Factor: factor, Seed: seed}, nil
	case NameXMark:
		return &XMark{Factor: factor, Seed: seed}, nil
	case NameTreebank:
		return &Treebank{Factor: factor, Seed: seed}, nil
	case NameSwissProt:
		return &SwissProt{Factor: factor, Seed: seed}, nil
	case NameTPCH:
		return &TPCH{Factor: factor, Seed: seed}, nil
	case NameNASA:
		return &NASA{Factor: factor, Seed: seed}, nil
	case NameXBench:
		return &XBench{Factor: factor, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("datagen: unknown dataset %q (known: %s)",
			name, strings.Join(Names(), ", "))
	}
}

// emitter wraps a sink with interned-label helpers shared by all
// generators.
type emitter struct {
	dict *xmldoc.Dict
	sink xmldoc.Sink
	ids  map[string]xmldoc.LabelID
}

func newEmitter(dict *xmldoc.Dict, sink xmldoc.Sink) *emitter {
	return &emitter{dict: dict, sink: sink, ids: map[string]xmldoc.LabelID{}}
}

func (e *emitter) id(name string) xmldoc.LabelID {
	if id, ok := e.ids[name]; ok {
		return id
	}
	id := e.dict.Intern(name)
	e.ids[name] = id
	return id
}

func (e *emitter) open(name string)  { e.sink.OpenElement(e.id(name)) }
func (e *emitter) close(name string) { e.sink.CloseElement(e.id(name)) }

// leaf emits an empty element.
func (e *emitter) leaf(name string) {
	id := e.id(name)
	e.sink.OpenElement(id)
	e.sink.CloseElement(id)
}

// leaves emits n empty elements.
func (e *emitter) leaves(name string, n int) {
	id := e.id(name)
	for i := 0; i < n; i++ {
		e.sink.OpenElement(id)
		e.sink.CloseElement(id)
	}
}

// scaled converts a full-size count through the scale factor, keeping at
// least 1.
func scaled(base int, factor float64) int {
	n := int(float64(base) * factor)
	if n < 1 {
		n = 1
	}
	return n
}

// chance reports true with probability p.
func chance(rng *rand.Rand, p float64) bool { return rng.Float64() < p }

// between returns a uniform int in [lo, hi].
func between(rng *rand.Rand, lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}
