package datagen

import (
	"testing"

	"xseed/internal/xmldoc"
)

func buildDataset(t *testing.T, name string, factor float64, seed int64) *xmldoc.Document {
	t.Helper()
	src, err := New(name, factor, seed)
	if err != nil {
		t.Fatal(err)
	}
	dict := xmldoc.NewDict()
	doc, err := xmldoc.Build(src, dict)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return doc
}

func TestUnknownDataset(t *testing.T) {
	if _, err := New("nope", 1, 0); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := New(NameDBLP, 0, 0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := New(NameDBLP, -1, 0); err == nil {
		t.Error("negative factor accepted")
	}
}

func TestAllDatasetsBuild(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			doc := buildDataset(t, name, 0.002, 1)
			if doc.NumNodes() < 50 {
				t.Errorf("%s produced only %d nodes", name, doc.NumNodes())
			}
		})
	}
}

func TestDeterministicReplay(t *testing.T) {
	for _, name := range []string{NameDBLP, NameXMark, NameTreebank} {
		src, err := New(name, 0.002, 7)
		if err != nil {
			t.Fatal(err)
		}
		dict := xmldoc.NewDict()
		d1, err := xmldoc.Build(src, dict)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := xmldoc.Build(src, dict) // replay with the same source
		if err != nil {
			t.Fatal(err)
		}
		if d1.NumNodes() != d2.NumNodes() {
			t.Fatalf("%s: replay node count %d != %d", name, d2.NumNodes(), d1.NumNodes())
		}
		for i := 0; i < d1.NumNodes(); i++ {
			if d1.Label(xmldoc.NodeID(i)) != d2.Label(xmldoc.NodeID(i)) {
				t.Fatalf("%s: replay differs at node %d", name, i)
			}
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	a := buildDataset(t, NameDBLP, 0.002, 1)
	b := buildDataset(t, NameDBLP, 0.002, 2)
	if a.NumNodes() == b.NumNodes() {
		// Node counts may coincide; compare label sequences.
		same := true
		for i := 0; i < a.NumNodes(); i++ {
			if a.LabelName(xmldoc.NodeID(i)) != b.LabelName(xmldoc.NodeID(i)) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical documents")
		}
	}
}

// TestDBLPCharacteristics checks the Table 2 shape: non-recursive except
// the rare note/note (max 1), shallow, and the pages⊂publisher correlation.
func TestDBLPCharacteristics(t *testing.T) {
	doc := buildDataset(t, NameDBLP, 0.02, 42) // ≈ 80k nodes
	st := doc.Stats()
	if st.MaxRecLevel > 1 {
		t.Errorf("MaxRecLevel = %d, want <= 1", st.MaxRecLevel)
	}
	if st.AvgRecLevel > 0.01 {
		t.Errorf("AvgRecLevel = %f, want ~0", st.AvgRecLevel)
	}
	if st.MaxDepth > 4 {
		t.Errorf("MaxDepth = %d, want <= 4", st.MaxDepth)
	}
	// Scale: factor 0.02 ≈ 80k nodes (4M × 0.02).
	if st.Nodes < 50000 || st.Nodes > 120000 {
		t.Errorf("Nodes = %d, want ≈ 80k", st.Nodes)
	}
}

func TestXMarkCharacteristics(t *testing.T) {
	doc := buildDataset(t, NameXMark, 0.02, 42)
	st := doc.Stats()
	if st.MaxRecLevel != 1 {
		t.Errorf("MaxRecLevel = %d, want 1 (parlist nesting)", st.MaxRecLevel)
	}
	if st.AvgRecLevel <= 0 || st.AvgRecLevel > 0.15 {
		t.Errorf("AvgRecLevel = %f, want ≈ 0.04", st.AvgRecLevel)
	}
	// Scale: ≈ 1.67M × 0.02 ≈ 33k.
	if st.Nodes < 20000 || st.Nodes > 55000 {
		t.Errorf("Nodes = %d, want ≈ 33k", st.Nodes)
	}
}

func TestTreebankCharacteristics(t *testing.T) {
	doc := buildDataset(t, NameTreebank, 0.02, 42)
	st := doc.Stats()
	if st.AvgRecLevel < 0.8 || st.AvgRecLevel > 2.0 {
		t.Errorf("AvgRecLevel = %f, want ≈ 1.3", st.AvgRecLevel)
	}
	if st.MaxRecLevel < 6 || st.MaxRecLevel > 14 {
		t.Errorf("MaxRecLevel = %d, want ≈ 8-10", st.MaxRecLevel)
	}
	// Scale: ≈ 2.4M × 0.02 ≈ 48k.
	if st.Nodes < 25000 || st.Nodes > 90000 {
		t.Errorf("Nodes = %d, want ≈ 48k", st.Nodes)
	}
}

// TestXMarkScaleInvariantKernelShape: the schema is scale-free, so the
// label sets at two factors coincide (Section 6.4's "their XSEED kernels
// are very similar").
func TestXMarkScaleInvariantLabels(t *testing.T) {
	small := buildDataset(t, NameXMark, 0.005, 1)
	large := buildDataset(t, NameXMark, 0.02, 1)
	ls := map[string]bool{}
	for _, n := range small.Dict().Names() {
		ls[n] = true
	}
	for _, n := range large.Dict().Names() {
		if !ls[n] {
			t.Errorf("label %s only at larger scale", n)
		}
	}
}

func TestFactorScalesNodeCount(t *testing.T) {
	small := buildDataset(t, NameDBLP, 0.002, 1)
	large := buildDataset(t, NameDBLP, 0.01, 1)
	ratio := float64(large.NumNodes()) / float64(small.NumNodes())
	if ratio < 3.5 || ratio > 7.5 {
		t.Errorf("5x factor gave %gx nodes", ratio)
	}
}
