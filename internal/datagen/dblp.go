package datagen

import (
	"math/rand"

	"xseed/internal/xmldoc"
)

// DBLP generates a bibliography shaped like the DBLP XML dump: a flat root
// with hundreds of thousands of publication records of several types, each
// a shallow subtree of per-type fields. At Factor 1.0 it produces ≈ 4.0M
// elements (the paper's DBLP has 4,022,548).
//
// Structural properties the experiments rely on:
//
//   - Non-recursive except a rare note/note nesting (max recursion level 1,
//     average ≈ 0, matching Table 2's "0 / 1").
//   - Shared child labels (author, title, year, pages, url, ee) across
//     publication types with different distributions, giving branching and
//     complex queries real independence-assumption errors.
//   - The publisher ⊂ pages correlation inside article: every article with
//     a publisher also has pages, while bsel(pages | article) = 0.8 stays
//     above the default BSEL_THRESHOLD of 0.1 — reproducing the paper's
//     /dblp/article[pages]/publisher failure case (Figure 5 discussion).
type DBLP struct {
	Factor float64
	Seed   int64
}

// publications at factor 1.0; each record averages ≈ 10 elements,
// giving ≈ 4M total.
const dblpBasePublications = 400000

// Emit implements xmldoc.Source.
func (g *DBLP) Emit(dict *xmldoc.Dict, sink xmldoc.Sink) error {
	rng := rand.New(rand.NewSource(g.Seed ^ 0xdb1b))
	e := newEmitter(dict, sink)
	n := scaled(dblpBasePublications, g.Factor)

	e.open("dblp")
	for i := 0; i < n; i++ {
		switch r := rng.Float64(); {
		case r < 0.30:
			g.article(rng, e)
		case r < 0.80:
			g.inproceedings(rng, e)
		case r < 0.84:
			g.proceedings(rng, e)
		case r < 0.90:
			g.incollection(rng, e)
		case r < 0.94:
			g.book(rng, e)
		case r < 0.97:
			g.phdthesis(rng, e)
		default:
			g.www(rng, e)
		}
	}
	e.close("dblp")
	return nil
}

func (g *DBLP) common(rng *rand.Rand, e *emitter, authorsLo, authorsHi int) {
	// Author counts follow a wide, skewed distribution (real DBLP ranges
	// from 1 to dozens); the diversity of per-record child-count vectors is
	// what makes count-stable partitions large.
	e.leaves("author", between(rng, authorsLo, authorsHi)+skewExtra(rng))
	e.leaf("title")
	e.leaf("year")
}

func (g *DBLP) article(rng *rand.Rand, e *emitter) {
	e.open("article")
	g.common(rng, e, 1, 3)
	e.leaf("journal")
	e.leaf("volume")
	hasNumber := chance(rng, 0.7)
	if hasNumber {
		e.leaf("number")
	}
	hasPages := chance(rng, 0.8) // bsel(pages|article) = 0.8 > threshold
	if hasPages {
		e.leaf("pages")
		// publisher only ever occurs alongside pages: the correlation the
		// default HET misses (its trigger bsel 0.8 sits above the 0.1
		// threshold, the paper's Figure 5 BP failure case).
		if chance(rng, 0.15) {
			e.leaf("publisher")
		}
	}
	hasEE := chance(rng, 0.55)
	if hasEE {
		e.leaf("ee")
		// cdrom implies ee: a rare (bsel ≈ 0.04) strongly correlated field;
		// low-bsel fields like this one are what 1BP HET pre-computation
		// targets.
		if chance(rng, 0.08) {
			e.leaf("cdrom")
		}
	}
	// url co-occurs with ee (both mean "electronic edition available"), so
	// predicate *pairs* like [cdrom][url] are jointly correlated beyond
	// what per-predicate 1BP corrections compose to — the signal 2BP HET
	// captures (Figure 6).
	urlP := 0.25
	if hasEE {
		urlP = 0.55
	}
	if chance(rng, urlP) {
		e.leaf("url")
	}
	// month implies number: another rare correlated pair (bsel ≈ 0.08).
	if hasNumber && chance(rng, 0.12) {
		e.leaf("month")
	}
	// Citations: article citations usually carry a label and sometimes a
	// ref, unlike inproceedings citations — the ancestor correlation of the
	// paper's Example 4 (the cite vertex blends both parents, so
	// /dblp/article/cite/label is systematically misestimated by the
	// kernel).
	if chance(rng, 0.3) {
		for n := between(rng, 1, 4) + skewExtra(rng); n > 0; n-- {
			e.open("cite")
			if chance(rng, 0.9) {
				e.leaf("label")
			}
			if chance(rng, 0.3) {
				e.leaf("ref")
			}
			e.close("cite")
		}
	}
	g.maybeNote(rng, e, 0.002)
	e.close("article")
}

func (g *DBLP) inproceedings(rng *rand.Rand, e *emitter) {
	e.open("inproceedings")
	g.common(rng, e, 2, 4)
	e.leaf("booktitle")
	if chance(rng, 0.9) {
		e.leaf("pages")
	}
	if chance(rng, 0.75) {
		e.leaf("ee")
		if chance(rng, 0.06) {
			e.leaf("cdrom") // cdrom implies ee here too (bsel ≈ 0.045)
		}
	}
	if chance(rng, 0.6) {
		e.leaf("url")
	}
	hasCrossref := chance(rng, 0.2)
	if hasCrossref {
		e.leaf("crossref")
		// address implies crossref: rare correlated pair (bsel ≈ 0.04).
		if chance(rng, 0.2) {
			e.leaf("address")
		}
	}
	if chance(rng, 0.07) {
		e.leaf("month")
	}
	// Inproceedings citations are bare (no label/ref) — see the article
	// side of this correlation.
	if chance(rng, 0.25) {
		e.leaves("cite", between(rng, 1, 3)+skewExtra(rng))
	}
	g.maybeNote(rng, e, 0.001)
	e.close("inproceedings")
}

func (g *DBLP) proceedings(rng *rand.Rand, e *emitter) {
	e.open("proceedings")
	e.leaves("editor", between(rng, 1, 3))
	e.leaf("title")
	e.leaf("year")
	e.leaf("booktitle")
	e.leaf("publisher") // proceedings almost always carry a publisher
	if chance(rng, 0.8) {
		e.leaf("isbn")
	}
	if chance(rng, 0.5) {
		e.leaf("series")
	}
	if chance(rng, 0.4) {
		e.leaf("volume")
	}
	e.leaf("url")
	e.close("proceedings")
}

func (g *DBLP) incollection(rng *rand.Rand, e *emitter) {
	e.open("incollection")
	g.common(rng, e, 1, 3)
	e.leaf("booktitle")
	if chance(rng, 0.85) {
		e.leaf("pages")
	}
	if chance(rng, 0.3) {
		e.leaf("publisher")
	}
	if chance(rng, 0.5) {
		e.leaf("ee")
	}
	e.close("incollection")
}

func (g *DBLP) book(rng *rand.Rand, e *emitter) {
	e.open("book")
	g.common(rng, e, 1, 2)
	e.leaf("publisher")
	if chance(rng, 0.9) {
		e.leaf("isbn")
	}
	if chance(rng, 0.3) {
		e.leaf("pages")
	}
	if chance(rng, 0.4) {
		e.leaf("series")
	}
	e.close("book")
}

func (g *DBLP) phdthesis(rng *rand.Rand, e *emitter) {
	e.open("phdthesis")
	e.leaf("author")
	e.leaf("title")
	e.leaf("year")
	e.leaf("school")
	if chance(rng, 0.25) {
		e.leaf("publisher")
	}
	if chance(rng, 0.4) {
		e.leaf("isbn")
	}
	e.close("phdthesis")
}

func (g *DBLP) www(rng *rand.Rand, e *emitter) {
	e.open("www")
	e.leaves("author", between(rng, 0, 2))
	e.leaf("title")
	e.leaf("url")
	if chance(rng, 0.2) {
		e.leaf("crossref")
	}
	e.close("www")
}

// maybeNote occasionally nests note inside note, giving DBLP its recursion
// level 1 tail without affecting averages.
func (g *DBLP) maybeNote(rng *rand.Rand, e *emitter, p float64) {
	if !chance(rng, p) {
		return
	}
	e.open("note")
	if chance(rng, 0.5) {
		e.leaf("note")
	}
	e.close("note")
}

// skewExtra adds a long-tailed extra count: 0 most of the time, with
// geometrically decaying chances of 1..6 more.
func skewExtra(rng *rand.Rand) int {
	n := 0
	for n < 6 && chance(rng, 0.35) {
		n++
	}
	return n
}
