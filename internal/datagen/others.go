package datagen

import (
	"math/rand"

	"xseed/internal/xmldoc"
)

// SwissProt generates protein-entry documents shaped like the SwissProt XML
// conversion: a flat root of Entry records with repeated Ref/Features
// substructure, non-recursive. Factor 1.0 ≈ 3.0M elements.
type SwissProt struct {
	Factor float64
	Seed   int64
}

const swissprotBaseEntries = 100000

// Emit implements xmldoc.Source.
func (g *SwissProt) Emit(dict *xmldoc.Dict, sink xmldoc.Sink) error {
	rng := rand.New(rand.NewSource(g.Seed ^ 0x5155))
	e := newEmitter(dict, sink)
	e.open("root")
	for i := 0; i < scaled(swissprotBaseEntries, g.Factor); i++ {
		e.open("Entry")
		e.leaf("AC")
		e.leaf("Mod")
		e.leaves("Descr", 1)
		e.leaves("Species", between(rng, 1, 2))
		e.leaves("Org", between(rng, 1, 3))
		for r := between(rng, 1, 4); r > 0; r-- {
			e.open("Ref")
			e.leaves("Author", between(rng, 1, 5))
			e.leaf("Cite")
			if chance(rng, 0.6) {
				e.leaf("MedlineID")
			}
			e.close("Ref")
		}
		e.open("Features")
		for f := between(rng, 0, 5); f > 0; f-- {
			e.open("DOMAIN")
			e.leaf("Descr")
			e.close("DOMAIN")
		}
		if chance(rng, 0.4) {
			e.open("BINDING")
			e.leaf("Descr")
			e.close("BINDING")
		}
		e.close("Features")
		if chance(rng, 0.7) {
			e.leaves("Keyword", between(rng, 1, 4))
		}
		e.close("Entry")
	}
	e.close("root")
	return nil
}

// TPCH generates the relational TPC-H data rendered as XML: tables of
// uniform rows, the extreme regular/non-recursive case. Factor 1.0 ≈ 3.0M
// elements.
type TPCH struct {
	Factor float64
	Seed   int64
}

const tpchBaseCustomers = 30000

// Emit implements xmldoc.Source.
func (g *TPCH) Emit(dict *xmldoc.Dict, sink xmldoc.Sink) error {
	rng := rand.New(rand.NewSource(g.Seed ^ 0x79c4))
	e := newEmitter(dict, sink)
	nCust := scaled(tpchBaseCustomers, g.Factor)

	e.open("tpch")
	e.open("customers")
	for i := 0; i < nCust; i++ {
		e.open("customer")
		e.leaf("custkey")
		e.leaf("name")
		e.leaf("address")
		e.leaf("nationkey")
		e.leaf("phone")
		e.leaf("acctbal")
		e.leaf("mktsegment")
		e.close("customer")
	}
	e.close("customers")
	e.open("orders")
	for i := 0; i < nCust*2; i++ {
		e.open("order")
		e.leaf("orderkey")
		e.leaf("custkey")
		e.leaf("orderstatus")
		e.leaf("totalprice")
		e.leaf("orderdate")
		e.open("lineitems")
		for l := between(rng, 1, 7); l > 0; l-- {
			e.open("lineitem")
			e.leaf("partkey")
			e.leaf("suppkey")
			e.leaf("quantity")
			e.leaf("extendedprice")
			e.leaf("discount")
			e.close("lineitem")
		}
		e.close("lineitems")
		e.close("order")
	}
	e.close("orders")
	e.open("nations")
	for i := 0; i < 25; i++ {
		e.open("nation")
		e.leaf("nationkey")
		e.leaf("name")
		e.leaf("regionkey")
		e.close("nation")
	}
	e.close("nations")
	e.close("tpch")
	return nil
}

// NASA generates astronomy dataset records shaped like the NASA ADC XML:
// moderately nested, lightly recursive through nested reference/source
// structures. Factor 1.0 ≈ 0.5M elements.
type NASA struct {
	Factor float64
	Seed   int64
}

const nasaBaseDatasets = 12000

// Emit implements xmldoc.Source.
func (g *NASA) Emit(dict *xmldoc.Dict, sink xmldoc.Sink) error {
	rng := rand.New(rand.NewSource(g.Seed ^ 0xa5a))
	e := newEmitter(dict, sink)
	e.open("datasets")
	for i := 0; i < scaled(nasaBaseDatasets, g.Factor); i++ {
		e.open("dataset")
		e.leaf("title")
		e.leaf("altname")
		e.open("initial")
		e.open("author")
		e.leaf("lastName")
		if chance(rng, 0.8) {
			e.leaf("firstName")
		}
		e.close("author")
		e.close("initial")
		for r := between(rng, 0, 3); r > 0; r-- {
			e.open("reference")
			e.open("source")
			e.open("other")
			e.leaf("title")
			e.leaves("author", between(rng, 1, 3))
			e.leaf("name")
			if chance(rng, 0.1) {
				// nested citation: source within other's journal entry
				e.open("source")
				e.leaf("title")
				e.close("source")
			}
			e.close("other")
			e.close("source")
			e.close("reference")
		}
		e.open("tableHead")
		for f := between(rng, 2, 6); f > 0; f-- {
			e.open("field")
			e.leaf("name")
			if chance(rng, 0.5) {
				e.leaf("units")
			}
			e.close("field")
		}
		e.close("tableHead")
		if chance(rng, 0.5) {
			e.leaves("keyword", between(rng, 1, 4))
		}
		e.close("dataset")
	}
	e.close("datasets")
	return nil
}

// XBench generates a data-centric/text-centric mix in the spirit of the
// XBench DC/TC families [Yao, Özsu, Khandelwal, ICDE 2004]: catalog records
// with nested item descriptions. Factor 1.0 ≈ 1.0M elements.
type XBench struct {
	Factor float64
	Seed   int64
}

const xbenchBaseItems = 40000

// Emit implements xmldoc.Source.
func (g *XBench) Emit(dict *xmldoc.Dict, sink xmldoc.Sink) error {
	rng := rand.New(rand.NewSource(g.Seed ^ 0xbe2c))
	e := newEmitter(dict, sink)
	e.open("catalog")
	for i := 0; i < scaled(xbenchBaseItems, g.Factor); i++ {
		e.open("item")
		e.leaf("title")
		e.open("authors")
		for a := between(rng, 1, 3); a > 0; a-- {
			e.open("author")
			e.leaf("name")
			if chance(rng, 0.4) {
				e.open("contact_information")
				e.leaf("mailing_address")
				if chance(rng, 0.5) {
					e.leaf("email_address")
				}
				e.close("contact_information")
			}
			e.close("author")
		}
		e.close("authors")
		e.leaf("date_of_release")
		e.leaf("publisher")
		if chance(rng, 0.6) {
			e.open("related_items")
			for r := between(rng, 1, 2); r > 0; r-- {
				e.open("related_item")
				e.leaf("item_id")
				e.close("related_item")
			}
			e.close("related_items")
		}
		if chance(rng, 0.7) {
			e.open("description")
			e.leaves("paragraph", between(rng, 1, 3))
			e.close("description")
		}
		e.close("item")
	}
	e.close("catalog")
	return nil
}
