package datagen

import (
	"math/rand"

	"xseed/internal/xmldoc"
)

// Treebank generates parse-tree documents shaped like the Penn Treebank XML
// conversion: a FILE root holding sentence subtrees produced by a
// probabilistic phrase-structure grammar with deeply recursive NP/PP/SBAR
// productions. Factor 1.0 ≈ 2.4M elements (the paper's Treebank has
// 2,437,666); factor 0.05 ≈ Treebank.05.
//
// Recursion calibration targets Table 2: average node recursion level ≈ 1.3
// and document recursion level ≈ 8-10. The grammar's recursion probability
// decays with depth, so sentences stay finite while deep chains remain
// common enough to stress every recursion-aware code path (multi-level edge
// vectors, CARD_THRESHOLD pruning, TreeSketch's cyclic summary).
type Treebank struct {
	Factor float64
	Seed   int64
}

// sentences at factor 1.0; a sentence averages ≈ 35 elements.
const treebankBaseSentences = 70000

// Emit implements xmldoc.Source.
func (g *Treebank) Emit(dict *xmldoc.Dict, sink xmldoc.Sink) error {
	rng := rand.New(rand.NewSource(g.Seed ^ 0x7eeb))
	e := newEmitter(dict, sink)
	n := scaled(treebankBaseSentences, g.Factor)

	e.open("FILE")
	for i := 0; i < n; i++ {
		e.open("EMPTY")
		g.sentence(rng, e, 0)
		e.close("EMPTY")
	}
	e.close("FILE")
	return nil
}

const treebankMaxDepth = 26

// decay reduces a probability as depth grows, keeping trees finite.
func decay(p float64, depth int) float64 {
	return p / (1 + float64(depth)*0.18)
}

func (g *Treebank) sentence(rng *rand.Rand, e *emitter, depth int) {
	e.open("S")
	g.np(rng, e, depth+1)
	g.vp(rng, e, depth+1)
	if chance(rng, decay(0.15, depth)) {
		g.pp(rng, e, depth+1)
	}
	e.close("S")
}

func (g *Treebank) np(rng *rand.Rand, e *emitter, depth int) {
	e.open("NP")
	if depth < treebankMaxDepth {
		switch r := rng.Float64(); {
		case r < decay(0.42, depth): // NP -> NP PP (the recursive workhorse)
			g.np(rng, e, depth+1)
			g.pp(rng, e, depth+1)
		case r < 0.52:
			e.leaf("DT")
			if chance(rng, 0.5) {
				g.adjp(rng, e, depth+1)
			}
			e.leaf("NN")
		case r < 0.64:
			e.leaf("NNP")
			if chance(rng, 0.3) {
				e.leaf("NNP")
			}
			if chance(rng, 0.1) {
				e.leaf("POS")
			}
		case r < 0.72:
			e.leaf("PRP")
		case r < 0.80:
			e.leaf("DT")
			e.leaf("NNS")
		case r < 0.86:
			g.qp(rng, e)
			e.leaf("NNS")
		case r < 0.92:
			e.leaf("PRPS")
			e.leaf("NN")
		default: // NP -> NP SBAR
			g.npBase(rng, e)
			g.sbar(rng, e, depth+1)
		}
	} else {
		g.npBase(rng, e)
	}
	e.close("NP")
}

// adjp emits an adjective phrase, occasionally recursive through ADVP.
func (g *Treebank) adjp(rng *rand.Rand, e *emitter, depth int) {
	e.open("ADJP")
	if chance(rng, 0.3) {
		e.open("ADVP")
		e.leaf("RB")
		if chance(rng, 0.2) {
			e.leaf("RBR")
		}
		e.close("ADVP")
	}
	switch r := rng.Float64(); {
	case r < 0.6:
		e.leaf("JJ")
	case r < 0.8:
		e.leaf("JJR")
	default:
		e.leaf("VBN")
	}
	e.close("ADJP")
}

// qp emits a quantifier phrase.
func (g *Treebank) qp(rng *rand.Rand, e *emitter) {
	e.open("QP")
	if chance(rng, 0.4) {
		e.leaf("IN")
	}
	e.leaf("CD")
	if chance(rng, 0.3) {
		e.leaf("CD")
	}
	e.close("QP")
}

func (g *Treebank) npBase(rng *rand.Rand, e *emitter) {
	e.leaf("DT")
	e.leaf("NN")
}

func (g *Treebank) vp(rng *rand.Rand, e *emitter, depth int) {
	e.open("VP")
	if depth < treebankMaxDepth {
		switch r := rng.Float64(); {
		case r < 0.30:
			e.leaf("VBD")
			g.np(rng, e, depth+1)
		case r < 0.48:
			e.leaf("VBZ")
			g.np(rng, e, depth+1)
			if chance(rng, decay(0.4, depth)) {
				g.pp(rng, e, depth+1)
			}
		case r < 0.55:
			e.leaf("MD")
			e.leaf("VB")
			g.np(rng, e, depth+1)
		case r < decay(0.75, depth): // VP -> VB VP (auxiliary chain)
			e.leaf("VB")
			g.vp(rng, e, depth+1)
		case r < 0.84:
			e.leaf("VBD")
			g.sbar(rng, e, depth+1)
		case r < 0.90:
			e.leaf("VBG")
			g.pp(rng, e, depth+1)
		case r < 0.95:
			e.leaf("TO")
			e.leaf("VB")
			if chance(rng, 0.4) {
				g.np(rng, e, depth+1)
			}
		default:
			e.leaf("VB")
			if chance(rng, 0.5) {
				e.leaf("RB")
			}
		}
	} else {
		e.leaf("VB")
	}
	e.close("VP")
}

func (g *Treebank) pp(rng *rand.Rand, e *emitter, depth int) {
	e.open("PP")
	e.leaf("IN")
	if depth < treebankMaxDepth {
		g.np(rng, e, depth+1)
	} else {
		g.npBase(rng, e)
	}
	e.close("PP")
}

func (g *Treebank) sbar(rng *rand.Rand, e *emitter, depth int) {
	e.open("SBAR")
	if chance(rng, 0.6) {
		e.leaf("IN")
	} else {
		e.leaf("WHNP")
	}
	if depth < treebankMaxDepth {
		g.sentence(rng, e, depth+1)
	} else {
		e.leaf("NN")
	}
	e.close("SBAR")
}
