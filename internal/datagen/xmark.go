package datagen

import (
	"math/rand"

	"xseed/internal/xmldoc"
)

// XMark generates documents following the XML Benchmark Project auction
// schema [Schmidt et al., CWI 2001] that the paper scales to 10MB (XMark10)
// and 100MB (XMark100). Factor 1.0 ≈ 1.67M elements (the paper's XMark100
// has 1,666,315); factor 0.1 ≈ XMark10.
//
// The only recursion is description → parlist → listitem → parlist, bounded
// at one nested parlist as in the real generator's typical output: average
// recursion level ≈ 0.04 and maximum 1, matching Table 2. Because the
// schema is scale-invariant, the XSEED kernels of XMark10 and XMark100 are
// nearly identical — the property Section 6.4 relies on.
type XMark struct {
	Factor float64
	Seed   int64
}

// Entity counts at factor 1.0, in the proportions of the original xmlgen.
const (
	xmarkItems          = 30000
	xmarkPersons        = 36000
	xmarkOpenAuctions   = 17000
	xmarkClosedAuctions = 13500
	xmarkCategories     = 1400
)

var xmarkRegions = []struct {
	name  string
	share float64
}{
	{"africa", 0.025},
	{"asia", 0.092},
	{"australia", 0.101},
	{"europe", 0.276},
	{"namerica", 0.460},
	{"samerica", 0.046},
}

// Emit implements xmldoc.Source.
func (g *XMark) Emit(dict *xmldoc.Dict, sink xmldoc.Sink) error {
	rng := rand.New(rand.NewSource(g.Seed ^ 0x3a6b))
	e := newEmitter(dict, sink)

	e.open("site")

	e.open("regions")
	items := scaled(xmarkItems, g.Factor)
	for _, r := range xmarkRegions {
		e.open(r.name)
		n := int(float64(items) * r.share)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			g.item(rng, e)
		}
		e.close(r.name)
	}
	e.close("regions")

	e.open("categories")
	for i := 0; i < scaled(xmarkCategories, g.Factor); i++ {
		e.open("category")
		e.leaf("name")
		g.description(rng, e)
		e.close("category")
	}
	e.close("categories")

	e.open("catgraph")
	e.leaves("edge", scaled(xmarkCategories, g.Factor))
	e.close("catgraph")

	e.open("people")
	for i := 0; i < scaled(xmarkPersons, g.Factor); i++ {
		g.person(rng, e)
	}
	e.close("people")

	e.open("open_auctions")
	for i := 0; i < scaled(xmarkOpenAuctions, g.Factor); i++ {
		g.openAuction(rng, e)
	}
	e.close("open_auctions")

	e.open("closed_auctions")
	for i := 0; i < scaled(xmarkClosedAuctions, g.Factor); i++ {
		g.closedAuction(rng, e)
	}
	e.close("closed_auctions")

	e.close("site")
	return nil
}

func (g *XMark) item(rng *rand.Rand, e *emitter) {
	e.open("item")
	e.leaf("location")
	e.leaf("quantity")
	e.leaf("name")
	e.open("payment")
	e.close("payment")
	g.description(rng, e)
	// shipping present on most but not all items: the paper's sample query
	// //regions/australia/item[shipping]/location needs a non-trivial bsel.
	if chance(rng, 0.8) {
		e.leaf("shipping")
	}
	e.leaves("incategory", between(rng, 1, 4))
	if chance(rng, 0.4) {
		e.open("mailbox")
		for m := between(rng, 1, 3); m > 0; m-- {
			e.open("mail")
			e.leaf("from")
			e.leaf("to")
			e.leaf("date")
			e.leaf("text")
			e.close("mail")
		}
		e.close("mailbox")
	}
	e.close("item")
}

// description is text or a parlist; a parlist's listitems may contain one
// nested parlist (recursion level 1).
func (g *XMark) description(rng *rand.Rand, e *emitter) {
	e.open("description")
	if chance(rng, 0.6) {
		e.leaf("text")
	} else {
		g.parlist(rng, e, 0)
	}
	e.close("description")
}

func (g *XMark) parlist(rng *rand.Rand, e *emitter, depth int) {
	e.open("parlist")
	for n := between(rng, 1, 3); n > 0; n-- {
		e.open("listitem")
		if depth == 0 && chance(rng, 0.3) {
			g.parlist(rng, e, 1)
		} else {
			e.leaf("text")
		}
		e.close("listitem")
	}
	e.close("parlist")
}

func (g *XMark) person(rng *rand.Rand, e *emitter) {
	e.open("person")
	e.leaf("name")
	e.leaf("emailaddress")
	if chance(rng, 0.5) {
		e.leaf("phone")
	}
	if chance(rng, 0.6) {
		e.open("address")
		e.leaf("street")
		e.leaf("city")
		e.leaf("country")
		e.leaf("zipcode")
		e.close("address")
	}
	if chance(rng, 0.3) {
		e.leaf("homepage")
	}
	if chance(rng, 0.4) {
		e.leaf("creditcard")
	}
	if chance(rng, 0.7) {
		e.open("profile")
		e.leaves("interest", between(rng, 0, 3))
		if chance(rng, 0.5) {
			e.leaf("education")
		}
		if chance(rng, 0.8) {
			e.leaf("gender")
		}
		e.leaf("business")
		if chance(rng, 0.6) {
			e.leaf("age")
		}
		e.close("profile")
	}
	if chance(rng, 0.5) {
		e.open("watches")
		e.leaves("watch", between(rng, 0, 4))
		e.close("watches")
	}
	e.close("person")
}

func (g *XMark) openAuction(rng *rand.Rand, e *emitter) {
	e.open("open_auction")
	e.leaf("initial")
	if chance(rng, 0.5) {
		e.leaf("reserve")
	}
	for b := between(rng, 0, 5); b > 0; b-- {
		e.open("bidder")
		e.leaf("date")
		e.leaf("time")
		e.leaf("personref")
		e.leaf("increase")
		e.close("bidder")
	}
	e.leaf("current")
	if chance(rng, 0.3) {
		e.leaf("privacy")
	}
	e.leaf("itemref")
	e.leaf("seller")
	g.annotation(rng, e)
	e.leaf("quantity")
	e.leaf("type")
	e.open("interval")
	e.leaf("start")
	e.leaf("end")
	e.close("interval")
	e.close("open_auction")
}

func (g *XMark) closedAuction(rng *rand.Rand, e *emitter) {
	e.open("closed_auction")
	e.leaf("seller")
	e.leaf("buyer")
	e.leaf("itemref")
	e.leaf("price")
	e.leaf("date")
	e.leaf("quantity")
	e.leaf("type")
	g.annotation(rng, e)
	e.close("closed_auction")
}

func (g *XMark) annotation(rng *rand.Rand, e *emitter) {
	e.open("annotation")
	e.leaf("author")
	g.description(rng, e)
	if chance(rng, 0.6) {
		e.leaf("happiness")
	}
	e.close("annotation")
}
