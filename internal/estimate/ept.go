// Package estimate implements XSEED cardinality estimation (paper
// Section 4): the traveler that unfolds the kernel depth-first into the
// expanded path tree (EPT) computing estimated cardinality, forward
// selectivity and backward selectivity per rooted path (Algorithm 2 / the
// EST recurrences of Definition 5), and the matcher that evaluates a query
// twig over the EPT aggregating card × absel over result matches
// (Algorithm 3 semantics; see DESIGN.md for the precise multi-embedding
// semantics we fix).
package estimate

import (
	"xseed/internal/counterstack"
	"xseed/internal/kernel"
	"xseed/internal/pathhash"
	"xseed/internal/xmldoc"
)

// HET is the hyper-edge table interface the estimator consults; implemented
// by internal/het. Defining it here keeps the dependency one-way (het
// imports estimate for pre-computation).
type HET interface {
	// LookupPath returns the stored actual cardinality (and, when bselOK,
	// actual backward selectivity) for the rooted label path with the given
	// incHash value.
	LookupPath(h uint32) (card, bsel float64, bselOK, ok bool)
	// LookupPattern returns the stored correlated backward selectivity for
	// a branching pattern hash (pathhash.Pattern).
	LookupPattern(h uint32) (bsel float64, ok bool)
}

// Options configure estimation.
type Options struct {
	// CardThreshold prunes traversal: an EPT node whose estimated
	// cardinality is <= CardThreshold is not visited (Section 4; the paper
	// sets it to 20 for Treebank in Section 6.4, and it is the mechanism
	// that keeps the EPT small on highly recursive documents).
	CardThreshold float64

	// MaxEPTNodes is a hard safety cap on EPT size; traversal beyond it is
	// pruned and Truncated is reported. Zero means the default (1<<20).
	MaxEPTNodes int

	// HET, when non-nil, supplies actual cardinalities for simple paths and
	// correlated backward selectivities for branching patterns (Section 5).
	HET HET

	// ReuseEPT caches the expanded path tree across Estimate calls. The
	// paper's traveler regenerates it per query ("dynamically generated and
	// does not need to be stored"), which is what the timing experiments
	// measure, so the default is off; long-lived optimizers should enable
	// it and call Invalidate on synopsis updates.
	ReuseEPT bool
}

func (o Options) maxNodes() int {
	if o.MaxEPTNodes <= 0 {
		return 1 << 20
	}
	return o.MaxEPTNodes
}

// EPTNode is one node of the expanded path tree: a distinct rooted label
// path derivable from the kernel, with its estimated cardinality and
// selectivities.
type EPTNode struct {
	Label    xmldoc.LabelID
	Card     float64 // estimated |rooted simple path|
	Fsel     float64 // forward selectivity of the path (Definition 5)
	Bsel     float64 // backward selectivity of the path (Definition 5)
	Hash     uint32  // incHash of the rooted label path
	Children []*EPTNode
}

// EPTStats reports the size of a generated EPT (the Section 6.4 metric).
type EPTStats struct {
	Nodes     int  // EPT nodes generated (including the root)
	Truncated bool // true if MaxEPTNodes pruned traversal
}

// BuildEPT unfolds the kernel into the expanded path tree.
func BuildEPT(k *kernel.Kernel, opt Options) (*EPTNode, EPTStats) {
	return buildEPT(k, k.Dict(), opt)
}

// buildEPT is BuildEPT resolving label names through an explicit dictionary.
// Estimation snapshots pass their frozen clone so a lazy build never reads
// the live dictionary a concurrent subtree update may be interning into.
func buildEPT(k *kernel.Kernel, dict *xmldoc.Dict, opt Options) (*EPTNode, EPTStats) {
	if !k.HasRoot() {
		return nil, EPTStats{}
	}
	b := &eptBuilder{
		k:    k,
		opt:  opt,
		max:  opt.maxNodes(),
		rl:   counterstack.New[xmldoc.LabelID](),
		dict: dict,
	}
	rootLabel := k.RootLabel()
	b.rl.Push(rootLabel)
	root := &EPTNode{
		Label: rootLabel,
		Card:  float64(k.RootCount()),
		Fsel:  1,
		Bsel:  1,
		Hash:  pathhash.AddLabel(pathhash.Basis, b.dict.Name(rootLabel)),
	}
	b.nodes = 1
	// A HET entry for the root path would be redundant (the root count is
	// exact) but is honored for uniformity.
	if opt.HET != nil {
		if card, bsel, bselOK, ok := opt.HET.LookupPath(root.Hash); ok {
			root.Card = card
			if bselOK {
				root.Bsel = bsel
			}
		}
	}
	b.expand(root, k.Vertex(rootLabel))
	b.rl.Pop(rootLabel)
	return root, EPTStats{Nodes: b.nodes, Truncated: b.truncated}
}

type eptBuilder struct {
	k         *kernel.Kernel
	opt       Options
	dict      *xmldoc.Dict
	rl        *counterstack.Stack[xmldoc.LabelID]
	nodes     int
	max       int
	truncated bool
}

// expand visits vertex v's out-edges in deterministic (label id) order,
// applying the EST recurrences; children surviving the cardinality
// threshold are attached and recursed into. This is the recursion that
// Algorithm 2's explicit pathTrace stack linearizes.
func (b *eptBuilder) expand(n *EPTNode, v *kernel.Vertex) {
	if v == nil {
		return
	}
	oldLvl := b.rl.Level()
	for _, e := range v.Out {
		if b.nodes >= b.max {
			b.truncated = true
			return
		}
		b.rl.Push(e.To)
		lvl := b.rl.Level()

		// EST (Algorithm 2): card, fsel, bsel of the extended path.
		var card, fsel, bsel float64
		if lvl < len(e.Levels) {
			card = float64(e.Levels[lvl].C) * n.Fsel
			if su := b.k.TotalChildren(v.Label, oldLvl); su > 0 {
				bsel = float64(e.Levels[lvl].P) / float64(su)
			}
		}
		h := pathhash.AddLabel(n.Hash, b.dict.Name(e.To))
		if b.opt.HET != nil {
			if aCard, aBsel, bselOK, ok := b.opt.HET.LookupPath(h); ok {
				card = aCard
				if bselOK {
					bsel = aBsel
				}
			}
		}
		if sv := b.k.TotalChildren(e.To, lvl); sv > 0 {
			fsel = card / float64(sv)
		}

		if card <= b.opt.CardThreshold {
			b.rl.Pop(e.To)
			continue
		}
		child := &EPTNode{Label: e.To, Card: card, Fsel: fsel, Bsel: bsel, Hash: h}
		n.Children = append(n.Children, child)
		b.nodes++
		b.expand(child, b.k.Vertex(e.To))
		b.rl.Pop(e.To)
	}
}
