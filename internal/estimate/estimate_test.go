package estimate

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"xseed/internal/fixtures"
	"xseed/internal/kernel"
	"xseed/internal/nok"
	"xseed/internal/pathhash"
	"xseed/internal/pathtree"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

func pathHash(labels ...string) uint32 { return pathhash.Path(labels...) }

func patternHash(p string, preds []string, next string) uint32 {
	return pathhash.Pattern(p, preds, next)
}

// fig2 builds the Figure 2 document, kernel, path tree and evaluator.
func fig2(t *testing.T) (*xmldoc.Document, *kernel.Kernel, *pathtree.Tree, *nok.Evaluator) {
	t.Helper()
	dict := xmldoc.NewDict()
	kb := kernel.NewBuilder(dict)
	pb := pathtree.NewBuilder(dict)
	doc, err := xmldoc.Build(xmldoc.NewParserString(fixtures.PaperFigure2), dict, kb, pb)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kb.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return doc, k, pb.Tree(), nok.New(doc)
}

func fig4(t *testing.T) (*xmldoc.Document, *kernel.Kernel, *nok.Evaluator) {
	t.Helper()
	dict := xmldoc.NewDict()
	kb := kernel.NewBuilder(dict)
	doc, err := xmldoc.Build(xmldoc.NewParserString(fixtures.PaperFigure4), dict, kb)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kb.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return doc, k, nok.New(doc)
}

// findEPT walks the EPT along a label-name path (first matching child).
func findEPT(dict *xmldoc.Dict, root *EPTNode, names ...string) *EPTNode {
	n := root
	if len(names) == 0 || dict.Name(root.Label) != names[0] {
		return nil
	}
	for _, name := range names[1:] {
		var next *EPTNode
		for _, c := range n.Children {
			if dict.Name(c.Label) == name {
				next = c
				break
			}
		}
		if next == nil {
			return nil
		}
		n = next
	}
	return n
}

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestExample3Trace reproduces the estimation trace of the paper's
// Example 3 for /a/c/s/s/t: per-vertex cardinality, fsel, and bsel.
func TestExample3Trace(t *testing.T) {
	_, k, _, _ := fig2(t)
	root, _ := BuildEPT(k, Options{})
	want := []struct {
		path             []string
		card, fsel, bsel float64
	}{
		{[]string{"a"}, 1, 1, 1},
		{[]string{"a", "c"}, 2, 1, 1},
		{[]string{"a", "c", "s"}, 5, 1, 1},
		{[]string{"a", "c", "s", "s"}, 2, 1, 0.4},
		{[]string{"a", "c", "s", "s", "t"}, 1, 1, 0.5},
	}
	for _, w := range want {
		n := findEPT(k.Dict(), root, w.path...)
		if n == nil {
			t.Fatalf("EPT misses path %v", w.path)
		}
		if !approx(n.Card, w.card, 1e-12) || !approx(n.Fsel, w.fsel, 1e-12) || !approx(n.Bsel, w.bsel, 1e-12) {
			t.Errorf("path %v: card=%g fsel=%g bsel=%g, want %g %g %g",
				w.path, n.Card, n.Fsel, n.Bsel, w.card, w.fsel, w.bsel)
		}
	}
	est := New(k, Options{})
	if got, _ := est.EstimateString("/a/c/s/s/t"); !approx(got, 1, 1e-12) {
		t.Errorf("|/a/c/s/s/t| = %g, want 1", got)
	}
}

// TestSection4EPTDump reproduces the expanded path tree XML of Section 4.
func TestSection4EPTDump(t *testing.T) {
	_, k, _, _ := fig2(t)
	got := DumpEPTXML(k, Options{})
	want := strings.Join([]string{
		`<a dID="1." card="1" fsel="1" bsel="1">`,
		`  <t dID="1.1." card="1" fsel="0.2" bsel="1"/>`,
		`  <u dID="1.2." card="1" fsel="1" bsel="1"/>`,
		`  <c dID="1.3." card="2" fsel="1" bsel="1">`,
		`    <t dID="1.3.1." card="2" fsel="0.4" bsel="1"/>`,
		`    <p dID="1.3.2." card="3" fsel="0.25" bsel="1"/>`,
		`    <s dID="1.3.3." card="5" fsel="1" bsel="1">`,
		`      <t dID="1.3.3.1." card="2" fsel="0.4" bsel="0.4"/>`,
		`      <p dID="1.3.3.2." card="9" fsel="0.75" bsel="1"/>`,
		`      <s dID="1.3.3.3." card="2" fsel="1" bsel="0.4">`,
		`        <t dID="1.3.3.3.1." card="1" fsel="1" bsel="0.5"/>`,
		`        <p dID="1.3.3.3.2." card="2" fsel="1" bsel="0.5"/>`,
		`        <s dID="1.3.3.3.3." card="2" fsel="1" bsel="0.5">`,
		`          <p dID="1.3.3.3.3.1." card="3" fsel="1" bsel="1"/>`,
		`        </s>`,
		`      </s>`,
		`    </s>`,
		`  </c>`,
		`</a>`,
	}, "\n") + "\n"
	if got != want {
		t.Errorf("EPT dump mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestSimplePathsExactOnFigure2 checks that every simple path estimate on
// Figure 2 is exact: the document's label-sharing happens to satisfy the
// ancestor independence assumption, so fsel stays 1 along every path and
// the kernel reproduces all path tree cardinalities.
func TestSimplePathsExactOnFigure2(t *testing.T) {
	_, k, pt, _ := fig2(t)
	est := New(k, Options{})
	pt.Walk(func(n *pathtree.Node) {
		q := xpath.MustParse(n.PathString(pt.Dict()))
		got := est.Estimate(q)
		if !approx(got, float64(n.Card), 1e-9) {
			t.Errorf("|%s| = %g, want %d", n.PathString(pt.Dict()), got, n.Card)
		}
	})
}

// TestExample4 reproduces |b/d/e| ≈ 7.14 on the Figure 4 kernel: the
// ancestor-independence approximation.
func TestExample4(t *testing.T) {
	_, k, _ := fig4(t)
	est := New(k, Options{})
	got, err := est.EstimateString("/a/b/d/e")
	if err != nil {
		t.Fatal(err)
	}
	want := 20.0 * 5.0 / 14.0
	if !approx(got, want, 1e-9) {
		t.Errorf("|/a/b/d/e| = %g, want %g", got, want)
	}
	// The symmetric path through c gets the complementary share.
	got, _ = est.EstimateString("/a/c/d/e")
	if want := 20.0 * 9.0 / 14.0; !approx(got, want, 1e-9) {
		t.Errorf("|/a/c/d/e| = %g, want %g", got, want)
	}
}

// TestExample5 reproduces |b/d[f]/e| ≈ 2.04 on the Figure 4 kernel: the
// sibling-independence approximation (absel).
func TestExample5(t *testing.T) {
	_, k, _ := fig4(t)
	est := New(k, Options{})
	got, err := est.EstimateString("/a/b/d[f]/e")
	if err != nil {
		t.Fatal(err)
	}
	want := 20.0 * (5.0 / 14.0) * (4.0 / 14.0)
	if !approx(got, want, 1e-9) {
		t.Errorf("|/a/b/d[f]/e| = %g, want %g", got, want)
	}
}

func TestBranchingOnFigure2(t *testing.T) {
	_, k, _, ev := fig2(t)
	est := New(k, Options{})
	// /a/c/s[t]/p: |/a/c/s/p| × bsel(s→t at level 0) = 9 × 0.4 = 3.6
	// (actual 4).
	got, _ := est.EstimateString("/a/c/s[t]/p")
	if !approx(got, 3.6, 1e-9) {
		t.Errorf("|/a/c/s[t]/p| = %g, want 3.6", got)
	}
	actual, _ := ev.CountString("/a/c/s[t]/p")
	if actual != 4 {
		t.Fatalf("actual = %d, want 4", actual)
	}
	// Predicate on the result step: /a/c/s[s] = 5 × 0.4 = 2 (exact).
	got, _ = est.EstimateString("/a/c/s[s]")
	if !approx(got, 2, 1e-9) {
		t.Errorf("|/a/c/s[s]| = %g, want 2", got)
	}
}

func TestComplexPathsOnFigure2(t *testing.T) {
	_, k, _, ev := fig2(t)
	est := New(k, Options{})
	cases := []struct {
		q    string
		want float64 // exact expectations where the kernel preserves them
	}{
		{"//s//s//p", 5}, // Observation 3
		{"//s//p", 14},
		{"//s/p", 14},
		{"//p", 17},
		{"//s", 9},
		{"//s//s", 4},
		{"//*", 36},
		{"/a/*/t", 2},
		{"/*", 1},
	}
	for _, tc := range cases {
		got, err := est.EstimateString(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if !approx(got, tc.want, 1e-9) {
			t.Errorf("|%s| = %g, want %g", tc.q, got, tc.want)
		}
		actual, _ := ev.CountString(tc.q)
		if int64(tc.want) != actual {
			t.Errorf("fixture drift: actual |%s| = %d, expected %g", tc.q, actual, tc.want)
		}
	}
}

func TestNestedPredicates(t *testing.T) {
	_, k, _, _ := fig2(t)
	est := New(k, Options{})
	// /a/c[s/s]/t: |/a/c/t| × (bsel(c→s) × bsel(s→s under c/s)) = 2 × (1 ×
	// 0.4) = 0.8 (actual 2; sibling/descendant correlation is lost — this
	// is precisely the error class the HET exists to patch).
	got, _ := est.EstimateString("/a/c[s/s]/t")
	if !approx(got, 0.8, 1e-9) {
		t.Errorf("|/a/c[s/s]/t| = %g, want 0.8", got)
	}
	// Descendant predicate: /a/c/s[.//t]/p.
	got, _ = est.EstimateString("/a/c/s[.//t]/p")
	// weight = bsel(t)+bsel(s)*(bsel(t at s/s)+bsel(s at s/s)*bsel(t at s/s/s... )):
	// = 0.4 + 0.4*(0.5 + 0.5*0) = 0.6; note s/s/s has no t child in the
	// kernel. 9 × 0.6 = 5.4 (actual 6).
	if !approx(got, 5.4, 1e-9) {
		t.Errorf("|/a/c/s[.//t]/p| = %g, want 5.4", got)
	}
}

func TestUnknownLabelsEstimateZero(t *testing.T) {
	_, k, _, _ := fig2(t)
	est := New(k, Options{})
	for _, q := range []string{"/zzz", "//zzz", "/a/zzz", "/a/c[zzz]/s", "/a[zzz]"} {
		if got, _ := est.EstimateString(q); got != 0 {
			t.Errorf("|%s| = %g, want 0", q, got)
		}
	}
	if _, err := est.EstimateString("///"); err == nil {
		t.Error("parse error not propagated")
	}
}

func TestCardThresholdPrunes(t *testing.T) {
	_, k, _, _ := fig2(t)
	full, fullStats := BuildEPT(k, Options{})
	if fullStats.Nodes != 14 {
		t.Fatalf("full EPT = %d nodes, want 14", fullStats.Nodes)
	}
	var count func(n *EPTNode) int
	count = func(n *EPTNode) int {
		total := 1
		for _, c := range n.Children {
			total += count(c)
		}
		return total
	}
	if got := count(full); got != 14 {
		t.Fatalf("full count = %d, want 14", got)
	}
	// With threshold 2, every child of the root has card <= 2 (t=1, u=1,
	// c=2), so only the root (never thresholded) survives.
	pruned, prunedStats := BuildEPT(k, Options{CardThreshold: 2})
	if prunedStats.Nodes != 1 || count(pruned) != 1 {
		t.Errorf("pruned EPT = %d nodes (counted %d), want 1", prunedStats.Nodes, count(pruned))
	}
	// With threshold 1, c (card 2) survives and so do its card>1 children.
	_, st1 := BuildEPT(k, Options{CardThreshold: 1})
	if st1.Nodes <= 1 || st1.Nodes >= 14 {
		t.Errorf("threshold 1 EPT = %d nodes, want in (1,14)", st1.Nodes)
	}
}

func TestMaxEPTNodesTruncates(t *testing.T) {
	// Deep chain: x nested 60 deep.
	var sb strings.Builder
	for i := 0; i < 60; i++ {
		sb.WriteString("<x>")
	}
	for i := 0; i < 60; i++ {
		sb.WriteString("</x>")
	}
	dict := xmldoc.NewDict()
	k, err := kernel.Build(xmldoc.NewParserString(sb.String()), dict)
	if err != nil {
		t.Fatal(err)
	}
	_, st := BuildEPT(k, Options{MaxEPTNodes: 10})
	if !st.Truncated {
		t.Error("truncation not reported")
	}
	if st.Nodes > 10 {
		t.Errorf("EPT has %d nodes, cap 10", st.Nodes)
	}
	// Without a cap the chain unfolds fully and terminates (recursion
	// levels exhaust the edge vector).
	_, st = BuildEPT(k, Options{})
	if st.Truncated {
		t.Error("unexpected truncation")
	}
	if st.Nodes != 60 {
		t.Errorf("EPT = %d nodes, want 60", st.Nodes)
	}
}

func TestTerminationOnCyclicKernel(t *testing.T) {
	// a→b→a cycle in the kernel (document a/b/a/b).
	dict := xmldoc.NewDict()
	k, err := kernel.Build(xmldoc.NewParserString("<a><b><a><b/></a></b></a>"), dict)
	if err != nil {
		t.Fatal(err)
	}
	_, st := BuildEPT(k, Options{})
	if st.Truncated {
		t.Error("cyclic kernel truncated; should terminate via recursion levels")
	}
	est := New(k, Options{})
	if got, _ := est.EstimateString("//a//a"); got <= 0 {
		t.Errorf("|//a//a| = %g, want > 0", got)
	}
}

// fakeHET implements the HET interface for tests.
type fakeHET struct {
	paths    map[uint32][3]float64 // card, bsel, bselOK(1/0)
	patterns map[uint32]float64
}

func (f *fakeHET) LookupPath(h uint32) (float64, float64, bool, bool) {
	v, ok := f.paths[h]
	return v[0], v[1], v[2] != 0, ok
}

func (f *fakeHET) LookupPattern(h uint32) (float64, bool) {
	v, ok := f.patterns[h]
	return v, ok
}

func TestHETPathOverride(t *testing.T) {
	// On the Figure 4 document, |/a/b/d/e| actual is 18 but the kernel
	// estimates 7.14; a HET path entry restores exactness.
	_, k, ev := fig4(t)
	actual, _ := ev.CountString("/a/b/d/e")
	if actual != 18 {
		t.Fatalf("fixture drift: actual /a/b/d/e = %d, want 18", actual)
	}
	het := &fakeHET{paths: map[uint32][3]float64{}, patterns: map[uint32]float64{}}
	import1 := func(path ...string) uint32 { return pathHash(path...) }
	het.paths[import1("a", "b", "d", "e")] = [3]float64{18, 0, 0}
	est := New(k, Options{HET: het})
	got, _ := est.EstimateString("/a/b/d/e")
	if !approx(got, 18, 1e-9) {
		t.Errorf("with HET |/a/b/d/e| = %g, want 18", got)
	}
	// Other paths keep kernel estimates.
	got, _ = est.EstimateString("/a/c/d/e")
	if !approx(got, 20.0*9/14, 1e-9) {
		t.Errorf("|/a/c/d/e| = %g, want %g", got, 20.0*9/14)
	}
}

func TestHETPatternOverride(t *testing.T) {
	// Correlated bsel for d[f]/e: |//d[f]/e| / |//d/e| = 8/20 = 0.4.
	_, k, ev := fig4(t)
	if a, _ := ev.CountString("//d[f]/e"); a != 8 {
		t.Fatalf("fixture drift: actual //d[f]/e = %d, want 8", a)
	}
	het := &fakeHET{paths: map[uint32][3]float64{}, patterns: map[uint32]float64{}}
	het.patterns[patternHash("d", []string{"f"}, "e")] = 0.4
	est := New(k, Options{HET: het})
	got, _ := est.EstimateString("/a/b/d[f]/e")
	want := 20.0 * (5.0 / 14.0) * 0.4 // card(/a/b/d/e) × corr-bsel
	if !approx(got, want, 1e-9) {
		t.Errorf("with pattern HET = %g, want %g", got, want)
	}
}

func TestReuseEPTCache(t *testing.T) {
	_, k, _, _ := fig2(t)
	plain := New(k, Options{})
	cached := New(k, Options{ReuseEPT: true})
	queries := []string{"/a/c/s/p", "//s//p", "/a/c/s[t]/p", "//*"}
	for _, q := range queries {
		a, _ := plain.EstimateString(q)
		b, _ := cached.EstimateString(q)
		if a != b {
			t.Errorf("%s: cached %g != plain %g", q, b, a)
		}
	}
	if cached.LastEPTStats().Nodes != 14 {
		t.Errorf("cached stats = %+v", cached.LastEPTStats())
	}
	cached.Invalidate()
	if got, _ := cached.EstimateString("//*"); !approx(got, 36, 1e-9) {
		t.Errorf("after invalidate: %g", got)
	}
}

// TestDepth1ExactOnRandomDocs: for any document, the estimate of /root and
// /root/x is exact (no independence assumption applies at depth ≤ 2).
func TestDepth1ExactOnRandomDocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 100; trial++ {
		xml := randomXML(rng, labels, 5, 3)
		dict := xmldoc.NewDict()
		doc, err := xmldoc.Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatal(err)
		}
		k, err := kernel.Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatal(err)
		}
		est := New(k, Options{})
		ev := nok.New(doc)
		rootName := doc.LabelName(0)
		for _, l := range labels {
			q := "/" + rootName + "/" + l
			got, _ := est.EstimateString(q)
			actual, _ := ev.CountString(q)
			if !approx(got, float64(actual), 1e-9) {
				t.Fatalf("trial %d: |%s| = %g, actual %d\ndoc: %s", trial, q, got, actual, xml)
			}
		}
	}
}

// randomXML builds a random small document string (shared shape with the
// kernel package's test helper).
func randomXML(rng *rand.Rand, labels []string, maxDepth, maxFanout int) string {
	var sb strings.Builder
	var gen func(depth int)
	gen = func(depth int) {
		l := labels[rng.Intn(len(labels))]
		sb.WriteString("<" + l + ">")
		if depth < maxDepth {
			for i := 0; i < rng.Intn(maxFanout+1); i++ {
				gen(depth + 1)
			}
		}
		sb.WriteString("</" + l + ">")
	}
	gen(0)
	return sb.String()
}

func TestTravelerEventStream(t *testing.T) {
	_, k, _, _ := fig2(t)
	tr := NewTraveler(k, Options{})
	opens, closes := 0, 0
	var deweys []string
	for {
		evt := tr.NextEvent()
		if evt.Kind == EOSEvent {
			break
		}
		if evt.Kind == OpenEvent {
			opens++
			deweys = append(deweys, evt.Dewey)
		} else {
			closes++
		}
	}
	if opens != 14 || closes != 14 {
		t.Errorf("events: %d opens %d closes, want 14/14", opens, closes)
	}
	if deweys[0] != "1." {
		t.Errorf("root dewey = %q", deweys[0])
	}
	// Dewey of the deep p: 1.3.3.3.3.1.
	found := false
	for _, d := range deweys {
		if d == "1.3.3.3.3.1." {
			found = true
		}
	}
	if !found {
		t.Errorf("deep dewey missing from %v", deweys)
	}
	// After EOS, the traveler keeps returning EOS.
	if evt := tr.NextEvent(); evt.Kind != EOSEvent {
		t.Error("traveler did not stay at EOS")
	}
}
