package estimate

import (
	"math/rand"
	"testing"

	"xseed/internal/kernel"
	"xseed/internal/nok"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

// TestDescendantLabelCountExactNonRecursive verifies an exactness invariant
// of the estimator on NON-recursive documents: |//L| is estimated exactly
// by the bare kernel, because every path's recursion level is 0 and the
// forward selectivities of the rooted paths ending at a vertex sum to 1,
// telescoping the EPT cards to the vertex's total child-count (the argument
// behind the paper's Observation 3).
//
// The restriction is essential and genuinely informative: on recursive
// documents the invariant FAILS when recursion levels alias across labels —
// e.g. <a><b><d><a><d><c><c/></c></d></a></d></b></a> estimates |//c| as
// 1.5, because the rooted path to the outer c reaches recursion level 1
// through a/d repetition while (c,c) recursion also sits at level 1,
// splitting S(c,1) across unrelated paths. This is a real information loss
// of the kernel summary (and more grist for the HET), not an estimator bug.
func TestDescendantLabelCountExactNonRecursive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Labels are keyed by depth, so no label repeats on any rooted path and
	// every recursion level is 0.
	depthLabels := []string{"r", "s", "t", "u", "v", "w", "x"}
	for trial := 0; trial < 120; trial++ {
		var sb []byte
		var gen func(depth int)
		gen = func(depth int) {
			l := depthLabels[depth]
			sb = append(sb, "<"+l+">"...)
			if depth < len(depthLabels)-1 {
				for i := 0; i < rng.Intn(4); i++ {
					gen(depth + 1)
				}
			}
			sb = append(sb, "</"+l+">"...)
		}
		gen(0)
		xml := string(sb)
		dict := xmldoc.NewDict()
		doc, err := xmldoc.Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatal(err)
		}
		k, err := kernel.Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatal(err)
		}
		est := New(k, Options{})
		ev := nok.New(doc)
		for _, l := range depthLabels {
			q := xpath.MustParse("//" + l)
			got := est.Estimate(q)
			want := float64(ev.Count(q))
			if !approx(got, want, 1e-6*(1+want)) {
				t.Fatalf("trial %d: |//%s| = %g, want %g\ndoc: %s", trial, l, got, want, xml)
			}
		}
		// The wildcard total is exact too: |//*| = node count.
		got := est.Estimate(xpath.MustParse("//*"))
		if want := float64(doc.NumNodes()); !approx(got, want, 1e-6*(1+want)) {
			t.Fatalf("trial %d: |//*| = %g, want %g", trial, got, want)
		}
	}
}

// TestLevelAliasingCounterexample pins the minimal counterexample above: a
// recursive document where |//c| is misestimated by the bare kernel and
// repaired by HET path entries (which is how the system handles this class
// of error in practice).
func TestLevelAliasingCounterexample(t *testing.T) {
	const xml = "<a><b><d><a><d><c><c/></c></d></a></d></b></a>"
	dict := xmldoc.NewDict()
	doc, err := xmldoc.Build(xmldoc.NewParserString(xml), dict)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Build(xmldoc.NewParserString(xml), dict)
	if err != nil {
		t.Fatal(err)
	}
	est := New(k, Options{})
	got := est.Estimate(xpath.MustParse("//c"))
	if approx(got, 2, 1e-9) {
		t.Fatalf("|//c| = %g; expected the documented 1.5 misestimate — "+
			"if the kernel got smarter, update the invariant docs", got)
	}
	if !approx(got, 1.5, 1e-9) {
		t.Errorf("|//c| = %g, expected exactly 1.5", got)
	}
	_ = doc
}

// TestObservation3Property generalizes the paper's Observation 3 to random
// recursive documents: for any pair of labels (u, v) with an edge in the
// kernel, the sum of (u,v) child-counts at recursion levels >= 1 equals the
// exact count of //u//u-contexts... stated operationally: |//u//v| computed
// by the estimator equals the exact count whenever v-nodes' parents are
// always u-nodes (then every chain is captured by the single edge).
func TestObservation3Property(t *testing.T) {
	// Construct documents where v only ever appears under u, then check
	// |//u//v| is exact.
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		// u-chains of random depth with v-leaves.
		var build func(depth int) string
		build = func(depth int) string {
			s := "<u>"
			for i := 0; i < 1+rng.Intn(2); i++ {
				s += "<v/>"
			}
			if depth > 0 && rng.Intn(2) == 0 {
				s += build(depth - 1)
			}
			return s + "</u>"
		}
		xml := "<r>" + build(rng.Intn(5)) + build(rng.Intn(3)) + "</r>"
		dict := xmldoc.NewDict()
		doc, err := xmldoc.Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatal(err)
		}
		k, err := kernel.Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatal(err)
		}
		est := New(k, Options{})
		ev := nok.New(doc)
		for _, qs := range []string{"//u//v", "//u//u", "//u/v"} {
			q := xpath.MustParse(qs)
			got := est.Estimate(q)
			want := float64(ev.Count(q))
			if !approx(got, want, 1e-6*(1+want)) {
				t.Fatalf("trial %d: |%s| = %g, want %g\ndoc: %s", trial, qs, got, want, xml)
			}
		}
	}
}

// TestEstimateNonNegativeAndFinite: estimates are always finite and
// non-negative for arbitrary random queries on random documents.
func TestEstimateNonNegativeAndFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	labels := []string{"a", "b", "c"}
	axes := []string{"/", "//"}
	for trial := 0; trial < 150; trial++ {
		xml := randomXML(rng, labels, 5, 3)
		dict := xmldoc.NewDict()
		k, err := kernel.Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatal(err)
		}
		est := New(k, Options{})
		// Random query.
		qs := ""
		for i := 0; i < 1+rng.Intn(4); i++ {
			qs += axes[rng.Intn(2)] + labels[rng.Intn(len(labels))]
			if rng.Intn(3) == 0 {
				qs += "[" + labels[rng.Intn(len(labels))] + "]"
			}
		}
		q, err := xpath.Parse(qs)
		if err != nil {
			t.Fatalf("generated bad query %q: %v", qs, err)
		}
		got := est.Estimate(q)
		if got < 0 || got != got /* NaN */ {
			t.Fatalf("trial %d: |%s| = %v\ndoc: %s", trial, qs, got, xml)
		}
		// Streaming agrees exactly on the shapes where the matchers are
		// defined to coincide: no predicates, or no descendant axes (see
		// StreamEstimate's dedup caveat).
		hasPred, hasDesc := false, false
		for i := range q.Steps {
			if len(q.Steps[i].Preds) > 0 {
				hasPred = true
			}
			if q.Steps[i].Axis == xpath.Descendant {
				hasDesc = true
			}
		}
		if !hasPred || !hasDesc {
			if sv, ok := StreamEstimate(k, q, Options{}); ok {
				if !approx(sv, got, 1e-6*(1+got)) {
					t.Fatalf("trial %d: stream %v != %v for %s\ndoc: %s", trial, sv, got, qs, xml)
				}
			}
		}
	}
}
