package estimate

import (
	"xseed/internal/pathhash"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

// matcher evaluates one query over a materialized EPT (Algorithm 3
// semantics). The estimate is Σ over EPT nodes matched by the result node
// test of card(node) × weight, where weight is the accumulated aggregated
// backward selectivity (absel) of the predicates on the main path: each
// predicate contributes the probability-style weight defined below, and the
// hyper-edge table supplies correlated backward selectivities for branching
// patterns it covers.
type matcher struct {
	dict *xmldoc.Dict
	het  HET
}

// entry is one weighted context node during navigation.
type entry struct {
	n *EPTNode
	w float64
}

// estimate evaluates the absolute path q against the EPT rooted at root.
func (m *matcher) estimate(root *EPTNode, q *xpath.Path) float64 {
	if root == nil || len(q.Steps) == 0 {
		return 0
	}
	// Navigation starts at a virtual node above the EPT root whose only
	// child is the root.
	virtual := &EPTNode{Children: []*EPTNode{root}, Card: 1, Fsel: 1, Bsel: 1}
	ctx := []entry{{n: virtual, w: 1}}
	for i := range q.Steps {
		st := &q.Steps[i]
		var nextLabel string
		if i+1 < len(q.Steps) && !q.Steps[i+1].Wildcard {
			nextLabel = q.Steps[i+1].Label
		}
		ctx = m.step(ctx, st, nextLabel)
		if len(ctx) == 0 {
			return 0
		}
	}
	var est float64
	for _, e := range ctx {
		est += e.n.Card * e.w
	}
	return est
}

// step applies one location step to the weighted context set. Node-set
// semantics: each EPT node appears at most once in the result; when it is
// reachable from several context entries (possible with the descendant
// axis), the maximum weight is kept.
func (m *matcher) step(ctx []entry, st *xpath.Step, nextLabel string) []entry {
	label, known := m.resolve(st)
	if !known {
		return nil
	}
	var out []entry
	index := make(map[*EPTNode]int)
	add := func(n *EPTNode, w float64) {
		if i, ok := index[n]; ok {
			if w > out[i].w {
				out[i].w = w
			}
			return
		}
		index[n] = len(out)
		out = append(out, entry{n, w})
	}
	var visitDesc func(n *EPTNode, w float64)
	visitDesc = func(n *EPTNode, w float64) {
		for _, c := range n.Children {
			if m.matches(c, st, label) {
				if wp := m.predWeight(c, st.Preds, nextLabel); wp > 0 {
					add(c, w*wp)
				}
			}
			visitDesc(c, w)
		}
	}
	for _, e := range ctx {
		if st.Axis == xpath.Child {
			for _, c := range e.n.Children {
				if m.matches(c, st, label) {
					if wp := m.predWeight(c, st.Preds, nextLabel); wp > 0 {
						add(c, e.w*wp)
					}
				}
			}
		} else {
			visitDesc(e.n, e.w)
		}
	}
	return out
}

func (m *matcher) resolve(st *xpath.Step) (xmldoc.LabelID, bool) {
	if st.Wildcard {
		return -1, true
	}
	id, ok := m.dict.Lookup(st.Label)
	if !ok {
		return 0, false
	}
	return id, true
}

func (m *matcher) matches(n *EPTNode, st *xpath.Step, label xmldoc.LabelID) bool {
	return st.Wildcard || n.Label == label
}

// predWeight returns the aggregated backward selectivity contribution of a
// step's predicates evaluated at EPT node n: the estimated fraction of the
// elements represented by n that satisfy every predicate.
//
// When the hyper-edge table holds a correlated backward selectivity for the
// branching pattern label(n)[preds...]/nextLabel (all predicates single
// child-axis name steps — the "leaf level" branching the paper's HET
// stores), that value is used for the whole predicate set, capturing
// sibling correlation (Section 5). Otherwise each predicate is first tried
// individually against the HET and independence is assumed across
// predicates (the absel product of Section 4).
func (m *matcher) predWeight(n *EPTNode, preds []*xpath.Path, nextLabel string) float64 {
	if len(preds) == 0 {
		return 1
	}
	if m.het != nil && nextLabel != "" {
		if labels, ok := simplePredLabels(preds); ok {
			h := pathhash.Pattern(m.dict.Name(n.Label), labels, nextLabel)
			if bsel, ok := m.het.LookupPattern(h); ok {
				return clamp01(bsel)
			}
		}
	}
	w := 1.0
	for _, p := range preds {
		var pw float64
		// Individual 1BP pattern lookup before falling back to
		// independence.
		if m.het != nil && nextLabel != "" && len(preds) > 1 {
			if labels, ok := simplePredLabels([]*xpath.Path{p}); ok {
				h := pathhash.Pattern(m.dict.Name(n.Label), labels, nextLabel)
				if bsel, ok := m.het.LookupPattern(h); ok {
					w *= clamp01(bsel)
					continue
				}
			}
		}
		pw = m.predPathWeight(n, p.Steps)
		if pw <= 0 {
			return 0
		}
		w *= pw
	}
	return clamp01(w)
}

// predPathWeight estimates the fraction of n's elements having a match of
// the relative path steps: the sum over witnesses of the product of
// backward selectivities along the EPT path from n to the witness, capped
// at 1 (a fraction). A single-witness, single-step predicate reduces to the
// paper's bsel term exactly.
func (m *matcher) predPathWeight(n *EPTNode, steps []xpath.Step) float64 {
	if len(steps) == 0 {
		return 1
	}
	st := &steps[0]
	label, known := m.resolve(st)
	if !known {
		return 0
	}
	var sum float64
	var visit func(c *EPTNode) float64
	if st.Axis == xpath.Child {
		for _, c := range n.Children {
			if m.matches(c, st, label) {
				sum += c.Bsel * m.stepOwnPreds(c, st) * m.predPathWeight(c, steps[1:])
			}
		}
		return clamp01(sum)
	}
	visit = func(parent *EPTNode) float64 {
		var s float64
		for _, c := range parent.Children {
			var here float64
			if m.matches(c, st, label) {
				here = m.stepOwnPreds(c, st) * m.predPathWeight(c, steps[1:])
			}
			s += c.Bsel * (here + visit(c))
		}
		return s
	}
	return clamp01(visit(n))
}

// stepOwnPreds evaluates the nested predicates attached to a predicate step
// (e.g. the [h] in /a/b[g[h]]). Nested predicates never consult the HET
// pattern table (there is no main-path sibling); independence applies.
func (m *matcher) stepOwnPreds(c *EPTNode, st *xpath.Step) float64 {
	w := 1.0
	for _, p := range st.Preds {
		pw := m.predPathWeight(c, p.Steps)
		if pw <= 0 {
			return 0
		}
		w *= pw
	}
	return w
}

// simplePredLabels extracts predicate labels when every predicate is a
// single child-axis name step without nesting — the shape stored in the
// HET.
func simplePredLabels(preds []*xpath.Path) ([]string, bool) {
	labels := make([]string, len(preds))
	for i, p := range preds {
		if len(p.Steps) != 1 {
			return nil, false
		}
		st := &p.Steps[0]
		if st.Axis != xpath.Child || st.Wildcard || len(st.Preds) != 0 {
			return nil, false
		}
		labels[i] = st.Label
	}
	return labels, true
}

func clamp01(f float64) float64 {
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}
