package estimate

import (
	"sync"

	"xseed/internal/pathhash"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

// Plan is a query compiled against a label dictionary: every node test is
// resolved to its dense label ID, every HET branching-pattern key is reduced
// to precomputed canonical suffix bytes, and every predicate's shape is
// classified — once, at compile time. Running the plan against an estimation
// snapshot then touches only the immutable EPT and the HET lookup view:
// no dictionary lookups, no string hashing, no re-deriving predicate shapes
// per evaluation (the whole-query-compilation idea of Maneth & Nguyen
// applied to estimation).
//
// A Plan is immutable and safe for concurrent Run calls; per-run scratch
// state is pooled, so steady-state execution does not allocate. The plan
// evaluates the exact arithmetic of the interpretive matcher it replaced, in
// the same order — estimates are bit-identical.
type Plan struct {
	steps   []planStep
	dictLen int // labels interned when compiled; see CompatibleWith
}

// planStep is one compiled main-path location step.
type planStep struct {
	axis     xpath.Axis
	wildcard bool
	known    bool // node test resolves in the dictionary (always true for wildcards)
	label    xmldoc.LabelID
	preds    []planPred

	// HET pattern acceleration, valid only when the following main-path step
	// is a non-wildcard name test. wholeSuffix is the canonical
	// "[p1]..[pk]/next" bytes when every predicate is a single child-axis
	// name step (the whole-set correlated lookup); predSuffix[i] is the
	// per-predicate "[pi]/next" bytes used by the individual fallback when
	// the step carries several predicates and predicate i is simple.
	wholeSuffix []byte
	predSuffix  [][]byte
}

// planPred is one compiled predicate (a relative path).
type planPred struct {
	steps []planPredStep
}

// planPredStep is one compiled step of a predicate path, with its own nested
// predicates.
type planPredStep struct {
	axis     xpath.Axis
	wildcard bool
	known    bool
	label    xmldoc.LabelID
	preds    []planPred
}

// Compile compiles q against dict. Labels the dictionary has never seen
// compile to unmatchable steps (a query over them estimates 0), exactly as
// the interpretive matcher resolved them; CompatibleWith reports when a
// later snapshot has interned labels this plan compiled as unknown.
func Compile(q *xpath.Path, dict *xmldoc.Dict) *Plan {
	p := &Plan{dictLen: dict.Len(), steps: make([]planStep, len(q.Steps))}
	for i := range q.Steps {
		st := &q.Steps[i]
		ps := planStep{axis: st.Axis, wildcard: st.Wildcard}
		ps.label, ps.known = resolveLabel(st.Wildcard, st.Label, dict)
		for _, pr := range st.Preds {
			ps.preds = append(ps.preds, compilePred(pr, dict))
		}
		var nextLabel string
		if i+1 < len(q.Steps) && !q.Steps[i+1].Wildcard {
			nextLabel = q.Steps[i+1].Label
		}
		if nextLabel != "" && len(st.Preds) > 0 {
			if labels, ok := simplePredLabels(st.Preds); ok {
				ps.wholeSuffix = pathhash.PatternSuffix(labels, nextLabel)
			}
			if len(st.Preds) > 1 {
				ps.predSuffix = make([][]byte, len(st.Preds))
				for j, pr := range st.Preds {
					if labels, ok := simplePredLabels([]*xpath.Path{pr}); ok {
						ps.predSuffix[j] = pathhash.PatternSuffix(labels, nextLabel)
					}
				}
			}
		}
		p.steps[i] = ps
	}
	return p
}

func compilePred(pr *xpath.Path, dict *xmldoc.Dict) planPred {
	out := planPred{steps: make([]planPredStep, len(pr.Steps))}
	for i := range pr.Steps {
		st := &pr.Steps[i]
		ps := planPredStep{axis: st.Axis, wildcard: st.Wildcard}
		ps.label, ps.known = resolveLabel(st.Wildcard, st.Label, dict)
		for _, nested := range st.Preds {
			ps.preds = append(ps.preds, compilePred(nested, dict))
		}
		out.steps[i] = ps
	}
	return out
}

// resolveLabel mirrors the interpretive matcher's resolve: wildcards match
// anything (label -1), unknown labels are unmatchable.
func resolveLabel(wildcard bool, label string, dict *xmldoc.Dict) (xmldoc.LabelID, bool) {
	if wildcard {
		return -1, true
	}
	return dict.Lookup(label)
}

// CompatibleWith reports whether the plan's compiled label resolution is
// still authoritative for sn: true when the snapshot's dictionary has not
// interned any label since the plan was compiled (interning is append-only,
// so existing IDs never change — only a grown dictionary can turn one of the
// plan's unknown labels into a known one).
func (p *Plan) CompatibleWith(sn *Snapshot) bool { return p.dictLen == sn.dict.Len() }

// NumSteps returns the number of compiled main-path steps.
func (p *Plan) NumSteps() int { return len(p.steps) }

// Run evaluates the plan against the snapshot and returns the estimated
// cardinality. The caller is responsible for compatibility (CompatibleWith);
// running an incompatible plan is safe but may estimate 0 for labels the
// plan compiled before they were interned.
func (p *Plan) Run(sn *Snapshot) float64 {
	root, _ := sn.EPT()
	return p.run(root, sn.opt.HET, sn.hashes)
}

// entry is one weighted context node during navigation.
type entry struct {
	n *EPTNode
	w float64
}

// runner is the pooled per-run scratch state: the context/result buffers and
// the node-dedup index reused across steps and across runs.
type runner struct {
	het    HET
	hashes []uint32

	cur, next []entry
	index     map[*EPTNode]int
	virtual   EPTNode
	rootChild [1]*EPTNode
}

var runnerPool = sync.Pool{New: func() any {
	return &runner{index: make(map[*EPTNode]int)}
}}

// run evaluates the compiled query over the EPT rooted at root — the
// Algorithm 3 semantics of the interpretive matcher, operation for
// operation: Σ over result matches of card × accumulated absel, with
// node-set max-weight merging per step.
func (p *Plan) run(root *EPTNode, het HET, hashes []uint32) float64 {
	if root == nil || len(p.steps) == 0 {
		return 0
	}
	r := runnerPool.Get().(*runner)
	r.het, r.hashes = het, hashes
	// Navigation starts at a virtual node above the EPT root whose only
	// child is the root.
	r.rootChild[0] = root
	r.virtual = EPTNode{Children: r.rootChild[:], Card: 1, Fsel: 1, Bsel: 1}
	ctx := append(r.cur[:0], entry{n: &r.virtual, w: 1})
	for i := range p.steps {
		ctx = r.step(ctx, &p.steps[i])
		if len(ctx) == 0 {
			break
		}
		// The buffers swap roles each step: the step's output becomes the
		// next step's context and the old context is recycled as output.
		r.cur, r.next = r.next, r.cur
	}
	var est float64
	for _, e := range ctx {
		est += e.n.Card * e.w
	}
	// Scrub every EPT reference before pooling: a runner parked with stale
	// node pointers (in the dedup index or the truncated buffers' backing
	// arrays) would pin a retired snapshot's whole EPT while idle.
	clear(r.index)
	clearEntries(r.cur)
	clearEntries(r.next)
	r.cur, r.next = r.cur[:0], r.next[:0]
	r.het, r.hashes, r.rootChild[0], r.virtual = nil, nil, nil, EPTNode{}
	runnerPool.Put(r)
	return est
}

// clearEntries zeroes the slice's full backing array.
func clearEntries(s []entry) {
	s = s[:cap(s)]
	for i := range s {
		s[i] = entry{}
	}
}

// step applies one location step to the weighted context set. Node-set
// semantics: each EPT node appears at most once in the result; when it is
// reachable from several context entries (possible with the descendant
// axis), the maximum weight is kept.
func (r *runner) step(ctx []entry, st *planStep) []entry {
	if !st.known {
		return nil
	}
	out := r.next[:0]
	clear(r.index)
	add := func(n *EPTNode, w float64) {
		if i, ok := r.index[n]; ok {
			if w > out[i].w {
				out[i].w = w
			}
			return
		}
		r.index[n] = len(out)
		out = append(out, entry{n, w})
	}
	matches := func(c *EPTNode) bool { return st.wildcard || c.Label == st.label }
	var visitDesc func(n *EPTNode, w float64)
	visitDesc = func(n *EPTNode, w float64) {
		for _, c := range n.Children {
			if matches(c) {
				if wp := r.predWeight(c, st); wp > 0 {
					add(c, w*wp)
				}
			}
			visitDesc(c, w)
		}
	}
	for _, e := range ctx {
		if st.axis == xpath.Child {
			for _, c := range e.n.Children {
				if matches(c) {
					if wp := r.predWeight(c, st); wp > 0 {
						add(c, e.w*wp)
					}
				}
			}
		} else {
			visitDesc(e.n, e.w)
		}
	}
	r.next = out
	return out
}

// predWeight returns the aggregated backward selectivity contribution of a
// step's predicates evaluated at EPT node n: the estimated fraction of the
// elements represented by n that satisfy every predicate.
//
// When the hyper-edge table holds a correlated backward selectivity for the
// branching pattern label(n)[preds...]/nextLabel (precompiled into
// wholeSuffix), that value is used for the whole predicate set, capturing
// sibling correlation (Section 5). Otherwise each predicate is first tried
// individually against the HET and independence is assumed across
// predicates (the absel product of Section 4).
func (r *runner) predWeight(n *EPTNode, st *planStep) float64 {
	if len(st.preds) == 0 {
		return 1
	}
	if r.het != nil && st.wholeSuffix != nil {
		h := pathhash.Bytes(r.hashes[n.Label], st.wholeSuffix)
		if bsel, ok := r.het.LookupPattern(h); ok {
			return clamp01(bsel)
		}
	}
	w := 1.0
	for j := range st.preds {
		// Individual 1BP pattern lookup before falling back to independence.
		if r.het != nil && st.predSuffix != nil && st.predSuffix[j] != nil {
			h := pathhash.Bytes(r.hashes[n.Label], st.predSuffix[j])
			if bsel, ok := r.het.LookupPattern(h); ok {
				w *= clamp01(bsel)
				continue
			}
		}
		pw := r.predPathWeight(n, st.preds[j].steps)
		if pw <= 0 {
			return 0
		}
		w *= pw
	}
	return clamp01(w)
}

// predPathWeight estimates the fraction of n's elements having a match of
// the relative path steps: the sum over witnesses of the product of
// backward selectivities along the EPT path from n to the witness, capped
// at 1 (a fraction). A single-witness, single-step predicate reduces to the
// paper's bsel term exactly.
func (r *runner) predPathWeight(n *EPTNode, steps []planPredStep) float64 {
	if len(steps) == 0 {
		return 1
	}
	st := &steps[0]
	if !st.known {
		return 0
	}
	matches := func(c *EPTNode) bool { return st.wildcard || c.Label == st.label }
	if st.axis == xpath.Child {
		var sum float64
		for _, c := range n.Children {
			if matches(c) {
				sum += c.Bsel * r.stepOwnPreds(c, st) * r.predPathWeight(c, steps[1:])
			}
		}
		return clamp01(sum)
	}
	var visit func(parent *EPTNode) float64
	visit = func(parent *EPTNode) float64 {
		var s float64
		for _, c := range parent.Children {
			var here float64
			if matches(c) {
				here = r.stepOwnPreds(c, st) * r.predPathWeight(c, steps[1:])
			}
			s += c.Bsel * (here + visit(c))
		}
		return s
	}
	return clamp01(visit(n))
}

// stepOwnPreds evaluates the nested predicates attached to a predicate step
// (e.g. the [h] in /a/b[g[h]]). Nested predicates never consult the HET
// pattern table (there is no main-path sibling); independence applies.
func (r *runner) stepOwnPreds(c *EPTNode, st *planPredStep) float64 {
	w := 1.0
	for i := range st.preds {
		pw := r.predPathWeight(c, st.preds[i].steps)
		if pw <= 0 {
			return 0
		}
		w *= pw
	}
	return w
}

// simplePredLabels extracts predicate labels when every predicate is a
// single child-axis name step without nesting — the shape stored in the
// HET.
func simplePredLabels(preds []*xpath.Path) ([]string, bool) {
	labels := make([]string, len(preds))
	for i, p := range preds {
		if len(p.Steps) != 1 {
			return nil, false
		}
		st := &p.Steps[0]
		if st.Axis != xpath.Child || st.Wildcard || len(st.Preds) != 0 {
			return nil, false
		}
		labels[i] = st.Label
	}
	return labels, true
}

func clamp01(f float64) float64 {
	if f > 1 {
		return 1
	}
	if f < 0 {
		return 0
	}
	return f
}
