package estimate

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xseed/internal/xpath"
)

// TestEstimatorColdCacheSingleflight regression-tests the redundant
// concurrent first build the old estimator allowed: two goroutines racing a
// cold ReuseEPT cache both ran BuildEPT. The build hook blocks the first
// builder until every racer is known to be in Estimate, so without the
// singleflight this test would count several builds (and, before the
// atomic-pointer rewrite, deadlock or race).
func TestEstimatorColdCacheSingleflight(t *testing.T) {
	_, k, _, _ := fig2(t)
	e := New(k, Options{ReuseEPT: true})

	const readers = 8
	var builds atomic.Int32
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	e.buildHook = func() {
		builds.Add(1)
		select {
		case arrived <- struct{}{}:
		default:
		}
		<-release
	}

	q, err := xpath.Parse("/a/c/s/p")
	if err != nil {
		t.Fatal(err)
	}
	want := New(k, Options{}).Estimate(q)

	results := make([]float64, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = e.Estimate(q)
		}(i)
	}
	<-arrived // one goroutine is inside the build critical section
	// Give the others time to pile up behind the singleflight before the
	// build completes; any of them running BuildEPT would bump the counter.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("cold cache ran %d EPT builds, want exactly 1", got)
	}
	for i, got := range results {
		if got != want {
			t.Errorf("reader %d: estimate %g, want %g", i, got, want)
		}
	}
	if e.LastEPTStats().Nodes == 0 {
		t.Error("LastEPTStats not recorded")
	}
}

// TestSnapshotEPTSingleflight is the same property on the estimation
// snapshot itself (the object the lock-free Synopsis read path pins): many
// goroutines triggering the lazy EPT build get one construction and the
// same root.
func TestSnapshotEPTSingleflight(t *testing.T) {
	_, k, _, _ := fig2(t)
	sn := NewSnapshot(k, k.Dict(), Options{})

	const readers = 8
	var builds atomic.Int32
	arrived := make(chan struct{}, 1)
	release := make(chan struct{})
	sn.buildHook = func() {
		builds.Add(1)
		select {
		case arrived <- struct{}{}:
		default:
		}
		<-release
	}

	roots := make([]*EPTNode, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			roots[i], _ = sn.EPT()
		}(i)
	}
	<-arrived
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("snapshot ran %d EPT builds, want exactly 1", got)
	}
	for i := 1; i < readers; i++ {
		if roots[i] != roots[0] {
			t.Fatalf("reader %d got a different EPT root", i)
		}
	}
}
