package estimate

import (
	"sync"
	"sync/atomic"

	"xseed/internal/kernel"
	"xseed/internal/pathhash"
	"xseed/internal/xmldoc"
)

// eptState is the immutable product of one EPT construction.
type eptState struct {
	root  *EPTNode
	stats EPTStats
}

// Snapshot is an immutable estimation view: a kernel that will not mutate
// under it, a frozen label dictionary, a HET lookup view (inside opt), the
// per-label name hashes compiled plans finish pattern hashes with, and the
// expanded path tree — built lazily, at most once, on first use
// (singleflight: concurrent first estimates block on one construction
// instead of each paying for a redundant build).
//
// Everything reachable from a Snapshot is read-only after publication, so
// any number of goroutines may estimate against it with no locking while
// successors are published; the publishing layer (xseed.Synopsis) guarantees
// the kernel and dictionary handed here are never mutated afterwards
// (copy-on-write for subtree updates, Dict.Clone for the dictionary).
type Snapshot struct {
	k    *kernel.Kernel
	dict *xmldoc.Dict
	opt  Options // opt.HET is the frozen lookup view (nil without HET)

	// hashes[id] is pathhash.String of the label name — the precomputed
	// prefix of every branching-pattern hash anchored at that label.
	hashes []uint32

	ept     atomic.Pointer[eptState]
	buildMu sync.Mutex

	// buildHook, when set, runs inside the singleflight critical section
	// just before BuildEPT. Test-only: it is how the races that motivated
	// the singleflight are made deterministic.
	buildHook func()
}

// NewSnapshot wraps the inputs as an estimation snapshot. The caller
// promises k, dict, and opt.HET are immutable for the snapshot's lifetime.
func NewSnapshot(k *kernel.Kernel, dict *xmldoc.Dict, opt Options) *Snapshot {
	names := dict.Names()
	hashes := make([]uint32, len(names))
	for i, name := range names {
		hashes[i] = pathhash.String(name)
	}
	return &Snapshot{k: k, dict: dict, opt: opt, hashes: hashes}
}

// WithOptions returns a fresh snapshot (unbuilt EPT) sharing this one's
// kernel view, frozen dictionary, and label hashes, under new options.
// The publishing layer uses it for mutations that cannot have changed the
// kernel or dictionary — feedback and budget changes — so a feedback storm
// skips the dictionary clone and hash recomputation entirely.
func (sn *Snapshot) WithOptions(opt Options) *Snapshot {
	return &Snapshot{k: sn.k, dict: sn.dict, opt: opt, hashes: sn.hashes}
}

// Kernel returns the snapshot's kernel view.
func (sn *Snapshot) Kernel() *kernel.Kernel { return sn.k }

// Dict returns the snapshot's frozen dictionary (for compiling plans).
func (sn *Snapshot) Dict() *xmldoc.Dict { return sn.dict }

// Options returns the snapshot's estimation options.
func (sn *Snapshot) Options() Options { return sn.opt }

// EPT returns the snapshot's expanded path tree, building it on first use.
// The fast path is one atomic load; the cold path serializes construction so
// exactly one BuildEPT runs per snapshot no matter how many goroutines race
// the first estimate.
func (sn *Snapshot) EPT() (*EPTNode, EPTStats) {
	if st := sn.ept.Load(); st != nil {
		return st.root, st.stats
	}
	sn.buildMu.Lock()
	defer sn.buildMu.Unlock()
	if st := sn.ept.Load(); st != nil {
		return st.root, st.stats
	}
	if sn.buildHook != nil {
		sn.buildHook()
	}
	root, stats := buildEPT(sn.k, sn.dict, sn.opt)
	st := &eptState{root: root, stats: stats}
	sn.ept.Store(st)
	return st.root, st.stats
}

// Stats returns the EPT size metrics (building the EPT if needed).
func (sn *Snapshot) Stats() EPTStats {
	_, stats := sn.EPT()
	return stats
}
