package estimate

import (
	"xseed/internal/kernel"
	"xseed/internal/pathhash"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

// StreamEstimate evaluates a query over the traveler's event stream in a
// single pass with memory proportional to the EPT depth (plus buffered
// contributions) — the execution style of the paper's Algorithm 3:
// candidate matches buffer in per-frame queues and resolve when close
// events reveal whether predicates matched.
//
// Supported query shape: arbitrary child/descendant axes and wildcards on
// the main path, with predicates restricted to single child-axis name
// steps (the paper's BP/CP workload shape and exactly what the hyper-edge
// table stores). ok reports false for queries outside this shape; callers
// fall back to the materialized matcher. On supported queries the result
// equals the materialized matcher's except where a descendant axis yields
// several embeddings for one EPT node with different predicate weights (the
// materialized matcher merges per step with the maximum weight; the
// streaming matcher keeps the maximum pre-resolution weight, which can pick
// a different chain). Pred-free queries and child-axis-only queries agree
// exactly; the cross-validation tests assert both.
func StreamEstimate(k *kernel.Kernel, q *xpath.Path, opt Options) (est float64, ok bool) {
	if !streamable(q) {
		return 0, false
	}
	m := newStreamMatcher(k.Dict(), q, opt.HET)
	return runStream(m, NewTraveler(k, opt))
}

// StreamEstimate is the snapshot form of the package-level StreamEstimate:
// the same single-pass matcher fed from the snapshot's shared EPT (built
// once per synopsis version) through its frozen dictionary and HET view, so
// a streaming estimate is as lock-free as a plan run. Results equal the
// kernel form's exactly — the traveler replays the identical event stream.
func (sn *Snapshot) StreamEstimate(q *xpath.Path) (est float64, ok bool) {
	if !streamable(q) {
		return 0, false
	}
	m := newStreamMatcher(sn.dict, q, sn.opt.HET)
	root, _ := sn.EPT()
	return runStream(m, NewTravelerEPT(root))
}

// runStream drains the traveler through the matcher.
func runStream(m *streamMatcher, tr *Traveler) (float64, bool) {
	for {
		evt := tr.NextEvent()
		if evt.Kind == EOSEvent {
			break
		}
		if evt.Kind == OpenEvent {
			m.open(evt)
		} else {
			m.close()
		}
	}
	return m.total, true
}

// streamable reports whether every predicate is a single child-axis name
// step.
func streamable(q *xpath.Path) bool {
	for i := range q.Steps {
		for _, p := range q.Steps[i].Preds {
			if len(p.Steps) != 1 {
				return false
			}
			st := &p.Steps[0]
			if st.Axis != xpath.Child || st.Wildcard || len(st.Preds) != 0 {
				return false
			}
		}
	}
	return true
}

// depEntry names one unresolved predicate weight: frame f matched main-path
// step `step`, whose predicates resolve when f closes.
type depEntry struct {
	f    *streamFrame
	step int
}

// pending is a buffered result contribution — the analog of the paper's
// output queues: a value waiting for the predicate weights of the frames in
// deps (ordered innermost first).
type pending struct {
	value float64
	deps  []depEntry
}

// matchInfo is one main-path step match at a frame: the chain weight (1
// unless an ancestor's predicates already resolved — they never have, so
// weights stay 1 and deps carry the unresolved factors) and the chain's
// dependency list, outermost first.
type matchInfo struct {
	deps []depEntry
}

// streamFrame is the matcher state for one open EPT node.
type streamFrame struct {
	label xmldoc.LabelID
	card  float64
	bsel  float64

	// matches[i] holds the dependency chain for this node's match of
	// main-path step i (first chain wins; see StreamEstimate).
	matches map[int]matchInfo

	// predSeen accumulates Σ bsel of children per predicate label for the
	// matched steps that carry predicates.
	predSeen map[xmldoc.LabelID]float64

	// queue buffers contributions from the subtree whose innermost
	// unresolved dependency is this frame.
	queue []pending
}

type streamMatcher struct {
	dict  *xmldoc.Dict
	het   HET
	steps []streamStep

	stack []*streamFrame
	total float64
}

type streamStep struct {
	axis     xpath.Axis
	label    xmldoc.LabelID
	wildcard bool
	known    bool // label resolves in the dictionary
	preds    []xmldoc.LabelID
	predStrs []string
	nextStr  string // label of the following step ("" if none or wildcard)
}

func newStreamMatcher(dict *xmldoc.Dict, q *xpath.Path, h HET) *streamMatcher {
	m := &streamMatcher{dict: dict, het: h}
	for i := range q.Steps {
		st := &q.Steps[i]
		ss := streamStep{axis: st.Axis, wildcard: st.Wildcard, known: true}
		if !st.Wildcard {
			ss.label, ss.known = dict.Lookup(st.Label)
		}
		for _, p := range st.Preds {
			id, ok := dict.Lookup(p.Steps[0].Label)
			if !ok {
				id = -2 // never matches; weight stays 0
			}
			ss.preds = append(ss.preds, id)
			ss.predStrs = append(ss.predStrs, p.Steps[0].Label)
		}
		if i+1 < len(q.Steps) && !q.Steps[i+1].Wildcard {
			ss.nextStr = q.Steps[i+1].Label
		}
		m.steps = append(m.steps, ss)
	}
	return m
}

func (m *streamMatcher) stepMatches(i int, label xmldoc.LabelID) bool {
	s := &m.steps[i]
	return s.wildcard || (s.known && s.label == label)
}

// chainTo extends ancestor anc's match of step i to a new match of step
// i+1: the dependency list grows by anc itself when step i carries
// predicates (they resolve at anc's close).
func (m *streamMatcher) chainTo(anc *streamFrame, i int, mi matchInfo) matchInfo {
	deps := mi.deps
	if len(m.steps[i].preds) > 0 {
		// Copy-on-extend: chains share prefixes.
		deps = append(append([]depEntry{}, deps...), depEntry{anc, i})
	}
	return matchInfo{deps: deps}
}

// open processes an open event.
func (m *streamMatcher) open(evt Event) {
	f := &streamFrame{label: evt.Label, card: evt.Card, bsel: evt.Bsel}
	depth := len(m.stack)

	// Step 0 matches from the virtual root: child axis only at depth 0,
	// descendant axis anywhere.
	if m.stepMatches(0, evt.Label) && (m.steps[0].axis == xpath.Descendant || depth == 0) {
		f.addMatch(0, matchInfo{})
	}
	// Step i+1 via the parent (child axis) or any ancestor (descendant).
	if depth > 0 {
		parent := m.stack[depth-1]
		for i, mi := range parent.matches {
			if i+1 < len(m.steps) && m.steps[i+1].axis == xpath.Child && m.stepMatches(i+1, evt.Label) {
				f.addMatch(i+1, m.chainTo(parent, i, mi))
			}
		}
		for _, anc := range m.stack {
			for i, mi := range anc.matches {
				if i+1 < len(m.steps) && m.steps[i+1].axis == xpath.Descendant && m.stepMatches(i+1, evt.Label) {
					f.addMatch(i+1, m.chainTo(anc, i, mi))
				}
			}
		}
	}

	// Feed the parent's predicate accumulator: predicates are child-axis
	// steps, so only direct children count.
	if depth > 0 {
		parent := m.stack[depth-1]
		if parent.predSeen != nil {
			if _, interested := parent.predSeen[evt.Label]; interested {
				parent.predSeen[evt.Label] += evt.Bsel
			}
		}
	}

	// Initialize this frame's own predicate accumulators for matched
	// predicated steps.
	for i := range f.matches {
		if len(m.steps[i].preds) > 0 {
			if f.predSeen == nil {
				f.predSeen = map[xmldoc.LabelID]float64{}
			}
			for _, p := range m.steps[i].preds {
				if _, exists := f.predSeen[p]; !exists {
					f.predSeen[p] = 0
				}
			}
		}
	}

	// Result-step match: buffer card × (chain deps + own-step deps).
	last := len(m.steps) - 1
	if mi, ok := f.matches[last]; ok {
		deps := mi.deps
		if len(m.steps[last].preds) > 0 {
			deps = append(append([]depEntry{}, deps...), depEntry{f, last})
		}
		// emit wants innermost-first; chains build outermost-first.
		rev := make([]depEntry, len(deps))
		for i, d := range deps {
			rev[len(deps)-1-i] = d
		}
		m.emit(pending{value: evt.Card, deps: rev})
	}

	m.stack = append(m.stack, f)
}

// addMatch records a step match; the first chain wins (ties in weight are
// impossible to break without materializing, see StreamEstimate).
func (f *streamFrame) addMatch(i int, mi matchInfo) {
	if f.matches == nil {
		f.matches = map[int]matchInfo{}
	}
	if _, ok := f.matches[i]; !ok {
		f.matches[i] = mi
	}
}

// emit routes a contribution: to the total when fully resolved, else into
// its innermost dependency's queue.
func (m *streamMatcher) emit(p pending) {
	if len(p.deps) == 0 {
		m.total += p.value
		return
	}
	inner := p.deps[0].f
	inner.queue = append(inner.queue, p)
}

// close resolves the top frame: scale queued contributions by the frame's
// per-step predicate weight and pass them outward.
func (m *streamMatcher) close() {
	n := len(m.stack)
	f := m.stack[n-1]
	m.stack = m.stack[:n-1]
	for _, p := range f.queue {
		step := p.deps[0].step
		p.deps = p.deps[1:]
		p.value *= m.stepPredWeight(f, &m.steps[step])
		if p.value == 0 {
			continue
		}
		m.emit(p)
	}
	f.queue = nil
}

// stepPredWeight mirrors the materialized matcher's predicate weighting:
// whole-set HET pattern, then per-predicate HET patterns, then independence
// over accumulated child bsels.
func (m *streamMatcher) stepPredWeight(f *streamFrame, s *streamStep) float64 {
	if m.het != nil && s.nextStr != "" {
		h := pathhash.Pattern(m.dict.Name(f.label), s.predStrs, s.nextStr)
		if bsel, ok := m.het.LookupPattern(h); ok {
			return clamp01(bsel)
		}
	}
	w := 1.0
	for pi, p := range s.preds {
		if m.het != nil && s.nextStr != "" && len(s.preds) > 1 {
			h := pathhash.Pattern(m.dict.Name(f.label), s.predStrs[pi:pi+1], s.nextStr)
			if bsel, ok := m.het.LookupPattern(h); ok {
				w *= clamp01(bsel)
				continue
			}
		}
		var pw float64
		if p >= 0 {
			pw = clamp01(f.predSeen[p])
		}
		if pw == 0 {
			return 0
		}
		w *= pw
	}
	return clamp01(w)
}
