package estimate

import (
	"testing"

	"xseed/internal/datagen"
	"xseed/internal/kernel"
	"xseed/internal/pathtree"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

func TestStreamableShapes(t *testing.T) {
	yes := []string{"/a/b", "//a//b", "/a/*[x]/b", "/a/b[x][y]/c", "//a[x]"}
	no := []string{"/a/b[x/y]/c", "/a/b[.//x]/c", "/a/b[*]/c", "/a/b[x[z]]/c"}
	for _, q := range yes {
		if !streamable(xpath.MustParse(q)) {
			t.Errorf("%s should be streamable", q)
		}
	}
	for _, q := range no {
		if streamable(xpath.MustParse(q)) {
			t.Errorf("%s should not be streamable", q)
		}
	}
}

// TestStreamMatchesMaterializedOnFigure2 cross-validates the two matchers
// on the paper's running example across the supported query shapes.
func TestStreamMatchesMaterializedOnFigure2(t *testing.T) {
	_, k, _, _ := fig2(t)
	est := New(k, Options{})
	queries := []string{
		"/a", "/a/c", "/a/c/s", "/a/c/s/p", "/a/c/s/s/t",
		"//s", "//p", "//s//p", "//s//s//p", "//s/p",
		"/a/c/s[t]/p", "/a/c/s[t][p]", "/a/c[p]/s", "/a/c/s[s]",
		"//c[t]/s", "/a/*/t", "//*", "/*",
		"//s[t]/p", "//s[s]/p",
		"/zzz", "//zzz", "/a/c[zzz]/s",
	}
	for _, qs := range queries {
		q := xpath.MustParse(qs)
		want := est.Estimate(q)
		got, ok := StreamEstimate(k, q, Options{})
		if !ok {
			t.Errorf("%s: not streamable", qs)
			continue
		}
		if !approx(got, want, 1e-9) {
			t.Errorf("%s: stream %g != materialized %g", qs, got, want)
		}
	}
}

// TestStreamMatchesMaterializedOnWorkloads cross-validates on generated
// workloads over a real generator: child-only branching queries must agree
// exactly; pred-free complex queries must agree exactly.
func TestStreamMatchesMaterializedOnWorkloads(t *testing.T) {
	src, err := datagen.New(datagen.NameXMark, 0.002, 5)
	if err != nil {
		t.Fatal(err)
	}
	dict := xmldoc.NewDict()
	kb := kernel.NewBuilder(dict)
	pb := pathtree.NewBuilder(dict)
	doc, err := xmldoc.Build(src, dict, kb, pb)
	if err != nil {
		t.Fatal(err)
	}
	k, _ := kb.Kernel()
	_ = doc
	est := New(k, Options{})

	// All simple paths.
	pb.Tree().Walk(func(n *pathtree.Node) {
		q := xpath.MustParse(n.PathString(dict))
		want := est.Estimate(q)
		got, ok := StreamEstimate(k, q, Options{})
		if !ok || !approx(got, want, 1e-6*(1+want)) {
			t.Errorf("%s: stream %g materialized %g ok=%v", q, got, want, ok)
		}
	})

	// Branching (child axes only): exact agreement required.
	for _, qs := range []string{
		"/site/regions/australia/item[shipping]/location",
		"/site/people/person[homepage]/name",
		"/site/people/person[phone][homepage]/emailaddress",
		"/site/open_auctions/open_auction[privacy]/seller",
	} {
		q := xpath.MustParse(qs)
		want := est.Estimate(q)
		got, ok := StreamEstimate(k, q, Options{})
		if !ok || !approx(got, want, 1e-9) {
			t.Errorf("%s: stream %g materialized %g ok=%v", qs, got, want, ok)
		}
	}

	// Pred-free complex paths: exact agreement required.
	for _, qs := range []string{
		"//item/location", "//person//interest", "//description//text",
		"//parlist//parlist", "//open_auction/bidder/increase", "//*/listitem",
	} {
		q := xpath.MustParse(qs)
		want := est.Estimate(q)
		got, ok := StreamEstimate(k, q, Options{})
		if !ok || !approx(got, want, 1e-6*(1+want)) {
			t.Errorf("%s: stream %g materialized %g ok=%v", qs, got, want, ok)
		}
	}
}

// TestStreamBoundedQueues: after EOS the matcher retains no buffered
// contributions (every queue drained by close events).
func TestStreamQueueDrained(t *testing.T) {
	_, k, _, _ := fig2(t)
	q := xpath.MustParse("//s[t]/p")
	m := newStreamMatcher(k.Dict(), q, nil)
	tr := NewTraveler(k, Options{})
	for {
		evt := tr.NextEvent()
		if evt.Kind == EOSEvent {
			break
		}
		if evt.Kind == OpenEvent {
			m.open(evt)
		} else {
			m.close()
		}
	}
	if len(m.stack) != 0 {
		t.Errorf("stack not drained: %d frames", len(m.stack))
	}
	if m.total <= 0 {
		t.Errorf("total = %g", m.total)
	}
}
