// Package experiments implements the paper's evaluation (Section 6): one
// function per table or figure, each building the required datasets,
// synopses and workloads and reporting the same rows/series the paper
// reports. The bench harness (bench_test.go) and the xseedbench command
// both drive this package; EXPERIMENTS.md records paper-vs-measured
// results.
//
// Scales: the paper's datasets are reproduced by synthetic generators at
// configurable fractions of their full size (Config.Scale multiplies the
// per-dataset paper proportions). Absolute numbers therefore differ from
// the paper; the comparisons the paper draws — who wins, by what factor,
// where construction blows up — are what the harness verifies.
package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"time"

	"xseed"
	"xseed/client"
	"xseed/internal/datagen"
	"xseed/internal/kernel"
	"xseed/internal/metrics"
	"xseed/internal/nok"
	"xseed/internal/pathtree"
	"xseed/internal/workload"
	"xseed/internal/xmldoc"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Scale multiplies every dataset's paper-proportioned size (1.0 = paper
	// scale: DBLP ≈ 4M nodes). Zero means 0.05.
	Scale float64

	// QueriesPerClass is the number of random BP and CP queries per
	// workload (the paper uses 1,000). Zero means 200.
	QueriesPerClass int

	// Seed drives dataset and workload generation.
	Seed int64

	// TreeSketchOpBudget bounds TreeSketch construction; exceeding it
	// reports DNF, reproducing the paper's 24-hour cutoff. Zero means
	// 3e8 operations.
	TreeSketchOpBudget int64

	// Remote routes the accuracy experiments' XSEED estimates through a
	// live xseedd at this address (host:port or URL): each synopsis under
	// measurement is uploaded as a snapshot and estimated via the client
	// SDK, so the numbers cover the full serving path. Empty estimates
	// embedded. Construction-timing experiments (Table 2, Section 6.4) and
	// the TreeSketch baseline — which xseedd does not serve — always run
	// locally.
	Remote string
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 0.05
	}
	return c.Scale
}

func (c Config) queries() int {
	if c.QueriesPerClass <= 0 {
		return 200
	}
	return c.QueriesPerClass
}

func (c Config) tsOpBudget() int64 {
	if c.TreeSketchOpBudget <= 0 {
		return 3e8
	}
	return c.TreeSketchOpBudget
}

// DatasetSpec describes one of the paper's experimental datasets in
// generator terms.
type DatasetSpec struct {
	Key           string  // paper name, e.g. "Treebank.05"
	Generator     string  // datagen name
	Factor        float64 // fraction of the generator's full size
	BselThreshold float64 // HET pre-computation threshold (Section 6.2)
	CardThreshold float64 // estimator pruning threshold (Section 6.4)
}

// PaperDatasets are the representative datasets of Tables 2 and 3.
func PaperDatasets() []DatasetSpec {
	return []DatasetSpec{
		{Key: "DBLP", Generator: datagen.NameDBLP, Factor: 1.0, BselThreshold: 0.1},
		{Key: "XMark10", Generator: datagen.NameXMark, Factor: 0.1, BselThreshold: 0.1},
		{Key: "XMark100", Generator: datagen.NameXMark, Factor: 1.0, BselThreshold: 0.1},
		{Key: "Treebank.05", Generator: datagen.NameTreebank, Factor: 0.05, BselThreshold: 0.001, CardThreshold: 20},
		{Key: "Treebank", Generator: datagen.NameTreebank, Factor: 1.0, BselThreshold: 0.001, CardThreshold: 20},
	}
}

func specByKey(key string) (DatasetSpec, bool) {
	for _, s := range PaperDatasets() {
		if s.Key == key {
			return s, true
		}
	}
	return DatasetSpec{}, false
}

// built bundles everything one dataset needs.
type built struct {
	spec DatasetSpec
	doc  *xmldoc.Document
	pt   *pathtree.Tree
	kern *kernel.Kernel
	ev   *nok.Evaluator

	kernelBuildTime time.Duration
	docStats        xmldoc.Stats
}

// buildDataset generates the dataset at the configured scale and builds
// document storage + path tree + kernel in one pass, timing the kernel
// construction separately (a second, kernel-only pass) for Table 2.
//
// CARD_THRESHOLD is proportional to dataset cardinalities, so the spec's
// paper-scale value (20 for Treebank) is multiplied by the effective scale:
// at scale 1.0 the paper's setting applies verbatim.
func buildDataset(cfg Config, spec DatasetSpec) (*built, error) {
	spec.CardThreshold *= cfg.scale()
	factor := spec.Factor * cfg.scale()
	src, err := datagen.New(spec.Generator, factor, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dict := xmldoc.NewDict()
	kb := kernel.NewBuilder(dict)
	pb := pathtree.NewBuilder(dict)
	doc, err := xmldoc.Build(src, dict, kb, pb)
	if err != nil {
		return nil, err
	}
	k, err := kb.Kernel()
	if err != nil {
		return nil, err
	}
	// Kernel-only pass for construction timing (the paper times synopsis
	// construction given the document).
	start := time.Now()
	kb2 := kernel.NewBuilder(dict)
	if err := doc.Emit(dict, kb2); err != nil {
		return nil, err
	}
	if _, err := kb2.Kernel(); err != nil {
		return nil, err
	}
	kernelTime := time.Since(start)

	return &built{
		spec:            spec,
		doc:             doc,
		pt:              pb.Tree(),
		kern:            k,
		ev:              nok.New(doc),
		kernelBuildTime: kernelTime,
		docStats:        doc.Stats(),
	}, nil
}

// combinedWorkload is Section 6.4's internal-API copy of the combined
// SP+BP+CP workload (same seeds and options as combinedQueries below, but
// yielding workload.Query with parsed paths for the timing loops, which
// never go through the Estimator seam). Keep the two in lockstep.
func combinedWorkload(cfg Config, b *built) []workload.Query {
	qs := workload.AllSimplePaths(b.pt, 0)
	opt := workload.Options{N: cfg.queries(), Seed: cfg.Seed + 1, RequireNonEmpty: true}
	qs = append(qs, workload.Branching(b.pt, b.ev, opt)...)
	opt.Seed = cfg.Seed + 2
	qs = append(qs, workload.Complex(b.pt, b.ev, opt)...)
	return qs
}

// The accuracy experiments measure every synopsis — XSEED and the
// TreeSketch baseline alike — through the unified xseed.Estimator
// interface, the same surface optimizers code against. With Config.Remote
// set, XSEED estimates are served by a live xseedd via the client SDK
// instead of the embedded adapter; the numbers must not change, only the
// transport.

// measure batch-estimates the workload through an Estimator and
// accumulates error metrics against the queries' exact cardinalities.
func measure(e xseed.Estimator, qs []*xseed.Query) (*metrics.Accumulator, error) {
	strs := make([]string, len(qs))
	for i, q := range qs {
		strs[i] = q.String()
	}
	res, err := e.EstimateBatch(context.Background(), strs)
	if err != nil {
		return nil, err
	}
	var acc metrics.Accumulator
	for i, r := range res {
		if r.Err != nil {
			return nil, fmt.Errorf("estimate %s: %w", strs[i], r.Err)
		}
		actual, _ := qs[i].Actual()
		acc.Add(r.Estimate, float64(actual))
	}
	return &acc, nil
}

// ceEstimator adapts a bare CardinalityEstimator (the TreeSketch baseline)
// to the Estimator interface for measurement; it has no feedback.
type ceEstimator struct{ ce xseed.CardinalityEstimator }

func (c ceEstimator) EstimateBatch(ctx context.Context, queries []string) ([]xseed.Result, error) {
	out := make([]xseed.Result, len(queries))
	for i, q := range queries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		est, err := c.ce.Estimate(q)
		out[i] = xseed.Result{Query: q, Estimate: est, Err: err}
	}
	return out, nil
}

func (c ceEstimator) Feedback(context.Context, string, float64) error {
	return fmt.Errorf("experiments: baseline estimator accepts no feedback")
}

func (c ceEstimator) FeedbackBatch(context.Context, []xseed.FeedbackObs) ([]error, error) {
	return nil, fmt.Errorf("experiments: baseline estimator accepts no feedback")
}

// estimatorFor selects the measurement backend for an XSEED synopsis: the
// embedded adapter, or — when cfg.Remote is set — the client SDK bound to
// a fresh snapshot upload of the synopsis on the remote daemon. cleanup
// unregisters the upload.
func (c Config) estimatorFor(name string, syn *xseed.Synopsis) (est xseed.Estimator, cleanup func(), err error) {
	if c.Remote == "" {
		return xseed.NewLocalEstimator(syn), func() {}, nil
	}
	cl, err := client.New(c.Remote)
	if err != nil {
		return nil, nil, err
	}
	var blob bytes.Buffer
	if _, err := syn.WriteTo(&blob); err != nil {
		return nil, nil, err
	}
	if _, err := cl.SnapshotPut(context.Background(), name, &blob); err != nil {
		return nil, nil, fmt.Errorf("upload %q to %s: %w", name, c.Remote, err)
	}
	return cl.Synopsis(name), func() { cl.Delete(context.Background(), name) }, nil
}

// scaledSpec applies the configured scale to a paper spec's
// scale-proportional knobs (CARD_THRESHOLD tracks dataset cardinalities).
func scaledSpec(cfg Config, spec DatasetSpec) DatasetSpec {
	spec.CardThreshold *= cfg.scale()
	return spec
}

// rootDataset generates the dataset at the configured scale through the
// public API; accuracy experiments build synopses and workloads from it.
func rootDataset(cfg Config, spec DatasetSpec) (*xseed.Document, error) {
	return xseed.Generate(spec.Generator, spec.Factor*cfg.scale(), cfg.Seed)
}

// synopsisWithBudget builds the paper's accuracy-experiment synopsis (1BP
// HET) whose total size — kernel plus resident HET — fits totalBudget
// bytes; totalBudget 0, or one too small to leave HET room, builds
// kernel-only.
func synopsisWithBudget(d *xseed.Document, spec DatasetSpec, totalBudget int) (*xseed.Synopsis, error) {
	base := &xseed.Config{CardThreshold: spec.CardThreshold, ReuseEPT: true}
	kernelOnly, err := xseed.KernelOnly(d, base)
	if err != nil {
		return nil, err
	}
	if totalBudget == 0 {
		return kernelOnly, nil
	}
	hetBudget := totalBudget - kernelOnly.KernelSizeBytes()
	if hetBudget <= 0 {
		return kernelOnly, nil // no room for any HET
	}
	cfg := *base
	cfg.HET = &xseed.HETConfig{
		MBP:           1,
		BselThreshold: spec.BselThreshold,
		BudgetBytes:   hetBudget,
	}
	return xseed.BuildSynopsis(d, &cfg)
}

// combinedQueries is the Table 3 workload over the public API: all SP
// queries plus N random BP and N random CP queries, each carrying its
// exact cardinality.
func combinedQueries(cfg Config, d *xseed.Document) ([]*xseed.Query, error) {
	qs := d.SimplePathQueries(0)
	bp, err := d.RandomWorkload("BP", cfg.queries(), 0, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	cp, err := d.RandomWorkload("CP", cfg.queries(), 0, cfg.Seed+2)
	if err != nil {
		return nil, err
	}
	qs = append(qs, bp...)
	return append(qs, cp...), nil
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
