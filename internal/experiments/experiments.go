// Package experiments implements the paper's evaluation (Section 6): one
// function per table or figure, each building the required datasets,
// synopses and workloads and reporting the same rows/series the paper
// reports. The bench harness (bench_test.go) and the xseedbench command
// both drive this package; EXPERIMENTS.md records paper-vs-measured
// results.
//
// Scales: the paper's datasets are reproduced by synthetic generators at
// configurable fractions of their full size (Config.Scale multiplies the
// per-dataset paper proportions). Absolute numbers therefore differ from
// the paper; the comparisons the paper draws — who wins, by what factor,
// where construction blows up — are what the harness verifies.
package experiments

import (
	"fmt"
	"io"
	"time"

	"xseed/internal/datagen"
	"xseed/internal/estimate"
	"xseed/internal/het"
	"xseed/internal/kernel"
	"xseed/internal/metrics"
	"xseed/internal/nok"
	"xseed/internal/pathtree"
	"xseed/internal/treesketch"
	"xseed/internal/workload"
	"xseed/internal/xmldoc"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Scale multiplies every dataset's paper-proportioned size (1.0 = paper
	// scale: DBLP ≈ 4M nodes). Zero means 0.05.
	Scale float64

	// QueriesPerClass is the number of random BP and CP queries per
	// workload (the paper uses 1,000). Zero means 200.
	QueriesPerClass int

	// Seed drives dataset and workload generation.
	Seed int64

	// TreeSketchOpBudget bounds TreeSketch construction; exceeding it
	// reports DNF, reproducing the paper's 24-hour cutoff. Zero means
	// 3e8 operations.
	TreeSketchOpBudget int64
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 0.05
	}
	return c.Scale
}

func (c Config) queries() int {
	if c.QueriesPerClass <= 0 {
		return 200
	}
	return c.QueriesPerClass
}

func (c Config) tsOpBudget() int64 {
	if c.TreeSketchOpBudget <= 0 {
		return 3e8
	}
	return c.TreeSketchOpBudget
}

// DatasetSpec describes one of the paper's experimental datasets in
// generator terms.
type DatasetSpec struct {
	Key           string  // paper name, e.g. "Treebank.05"
	Generator     string  // datagen name
	Factor        float64 // fraction of the generator's full size
	BselThreshold float64 // HET pre-computation threshold (Section 6.2)
	CardThreshold float64 // estimator pruning threshold (Section 6.4)
}

// PaperDatasets are the representative datasets of Tables 2 and 3.
func PaperDatasets() []DatasetSpec {
	return []DatasetSpec{
		{Key: "DBLP", Generator: datagen.NameDBLP, Factor: 1.0, BselThreshold: 0.1},
		{Key: "XMark10", Generator: datagen.NameXMark, Factor: 0.1, BselThreshold: 0.1},
		{Key: "XMark100", Generator: datagen.NameXMark, Factor: 1.0, BselThreshold: 0.1},
		{Key: "Treebank.05", Generator: datagen.NameTreebank, Factor: 0.05, BselThreshold: 0.001, CardThreshold: 20},
		{Key: "Treebank", Generator: datagen.NameTreebank, Factor: 1.0, BselThreshold: 0.001, CardThreshold: 20},
	}
}

func specByKey(key string) (DatasetSpec, bool) {
	for _, s := range PaperDatasets() {
		if s.Key == key {
			return s, true
		}
	}
	return DatasetSpec{}, false
}

// built bundles everything one dataset needs.
type built struct {
	spec DatasetSpec
	doc  *xmldoc.Document
	pt   *pathtree.Tree
	kern *kernel.Kernel
	ev   *nok.Evaluator

	kernelBuildTime time.Duration
	docStats        xmldoc.Stats
}

// buildDataset generates the dataset at the configured scale and builds
// document storage + path tree + kernel in one pass, timing the kernel
// construction separately (a second, kernel-only pass) for Table 2.
//
// CARD_THRESHOLD is proportional to dataset cardinalities, so the spec's
// paper-scale value (20 for Treebank) is multiplied by the effective scale:
// at scale 1.0 the paper's setting applies verbatim.
func buildDataset(cfg Config, spec DatasetSpec) (*built, error) {
	spec.CardThreshold *= cfg.scale()
	factor := spec.Factor * cfg.scale()
	src, err := datagen.New(spec.Generator, factor, cfg.Seed)
	if err != nil {
		return nil, err
	}
	dict := xmldoc.NewDict()
	kb := kernel.NewBuilder(dict)
	pb := pathtree.NewBuilder(dict)
	doc, err := xmldoc.Build(src, dict, kb, pb)
	if err != nil {
		return nil, err
	}
	k, err := kb.Kernel()
	if err != nil {
		return nil, err
	}
	// Kernel-only pass for construction timing (the paper times synopsis
	// construction given the document).
	start := time.Now()
	kb2 := kernel.NewBuilder(dict)
	if err := doc.Emit(dict, kb2); err != nil {
		return nil, err
	}
	if _, err := kb2.Kernel(); err != nil {
		return nil, err
	}
	kernelTime := time.Since(start)

	return &built{
		spec:            spec,
		doc:             doc,
		pt:              pb.Tree(),
		kern:            k,
		ev:              nok.New(doc),
		kernelBuildTime: kernelTime,
		docStats:        doc.Stats(),
	}, nil
}

// combinedWorkload is the Table 3 workload: all SP queries plus N random BP
// and N random CP queries.
func combinedWorkload(cfg Config, b *built) []workload.Query {
	qs := workload.AllSimplePaths(b.pt, 0)
	opt := workload.Options{N: cfg.queries(), Seed: cfg.Seed + 1, RequireNonEmpty: true}
	qs = append(qs, workload.Branching(b.pt, b.ev, opt)...)
	opt.Seed = cfg.Seed + 2
	qs = append(qs, workload.Complex(b.pt, b.ev, opt)...)
	return qs
}

// estimator abstracts XSEED and TreeSketch for error measurement.
type estimator interface {
	estimate(q workload.Query) float64
}

type xseedEstimator struct{ est *estimate.Estimator }

func (x xseedEstimator) estimate(q workload.Query) float64 { return x.est.Estimate(q.Path) }

type tsEstimator struct{ syn *treesketch.Synopsis }

func (t tsEstimator) estimate(q workload.Query) float64 { return t.syn.Estimate(q.Path) }

// measure runs a workload through an estimator and accumulates metrics.
func measure(qs []workload.Query, e estimator) *metrics.Accumulator {
	var acc metrics.Accumulator
	for _, q := range qs {
		acc.Add(e.estimate(q), float64(q.Actual))
	}
	return &acc
}

// xseedWithBudget builds an XSEED estimator (kernel + HET precomputed with
// MBP=1) whose total size fits budgetBytes; budgetBytes <= 0 means
// kernel-only.
func xseedWithBudget(b *built, budgetBytes int) (*estimate.Estimator, *het.Table, time.Duration) {
	eopt := estimate.Options{CardThreshold: b.spec.CardThreshold, ReuseEPT: true}
	if budgetBytes > 0 && budgetBytes <= b.kern.SizeBytes() {
		budgetBytes = 0 // no room for any HET
	}
	if budgetBytes == 0 {
		return estimate.New(b.kern, eopt), nil, 0
	}
	start := time.Now()
	tab, _ := het.Precompute(b.doc, b.pt, b.kern, het.PrecomputeOptions{
		MBP:             1,
		BselThreshold:   b.spec.BselThreshold,
		Budget:          budgetBytes - b.kern.SizeBytes(),
		EstimateOptions: eopt,
	})
	elapsed := time.Since(start)
	eopt.HET = tab
	return estimate.New(b.kern, eopt), tab, elapsed
}

func fmtDur(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Millisecond).String()
}

func fprintf(w io.Writer, format string, args ...any) {
	if w != nil {
		fmt.Fprintf(w, format, args...)
	}
}
