package experiments

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"xseed/internal/server"
)

// tinyCfg keeps experiment tests fast; assertions are structural (row
// counts, orderings the paper's conclusions rest on), not absolute values.
var tinyCfg = Config{Scale: 0.01, QueriesPerClass: 60, Seed: 1}

func TestTable2(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table2(tinyCfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Nodes <= 0 || r.KernelBytes <= 0 {
			t.Errorf("%s: empty row %+v", r.Dataset, r)
		}
	}
	byKey := map[string]Table2Row{}
	for _, r := range rows {
		byKey[r.Dataset] = r
	}
	// Structural claims of Table 2.
	if byKey["Treebank"].MaxRecLevel < 6 {
		t.Errorf("Treebank max recursion = %d, want >= 6", byKey["Treebank"].MaxRecLevel)
	}
	if byKey["DBLP"].MaxRecLevel > 1 {
		t.Errorf("DBLP max recursion = %d, want <= 1", byKey["DBLP"].MaxRecLevel)
	}
	// The XMark kernels are nearly scale-invariant (Section 6.4).
	k10, k100 := byKey["XMark10"].KernelBytes, byKey["XMark100"].KernelBytes
	if diff := float64(k100-k10) / float64(k100); diff > 0.2 && diff < -0.2 {
		t.Errorf("XMark kernels differ too much: %d vs %d", k10, k100)
	}
	// Treebank kernels are larger than DBLP's (recursion levels).
	if byKey["Treebank"].KernelBytes <= byKey["DBLP"].KernelBytes {
		t.Errorf("Treebank kernel %d <= DBLP kernel %d",
			byKey["Treebank"].KernelBytes, byKey["DBLP"].KernelBytes)
	}
	if !strings.Contains(buf.String(), "Treebank") {
		t.Error("rendered table missing rows")
	}
}

func TestTable3(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table3(tinyCfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Queries == 0 {
			t.Errorf("%s: no queries", r.Dataset)
		}
		// The HET never makes XSEED worse than the bare kernel (small
		// numeric tolerance for workload noise).
		if r.XSeed50.RMSE > r.Kernel.RMSE*1.05+1 {
			t.Errorf("%s: XSEED@50K RMSE %.2f > kernel %.2f",
				r.Dataset, r.XSeed50.RMSE, r.Kernel.RMSE)
		}
		if r.Dataset == "Treebank.05" && !r.Sketch25.DNF {
			// The paper's core claim: XSEED beats TreeSketch by a wide
			// margin on recursive data.
			if r.Sketch25.NRMSE < r.XSeed25.NRMSE {
				t.Errorf("Treebank.05: TreeSketch NRMSE %.2f beat XSEED %.2f",
					r.Sketch25.NRMSE, r.XSeed25.NRMSE)
			}
		}
	}
}

func TestFigure5(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Figure5(tinyCfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].Class != "SP" || rows[1].Class != "BP" || rows[2].Class != "CP" {
		t.Errorf("classes = %v %v %v", rows[0].Class, rows[1].Class, rows[2].Class)
	}
	// The HET makes SP essentially exact on DBLP.
	if rows[0].XSeed.RMSE > 0.01 {
		t.Errorf("SP XSEED RMSE = %g, want ~0", rows[0].XSeed.RMSE)
	}
	// And the bare kernel is measurably worse than XSEED on every class
	// where it has error at all.
	for _, r := range rows {
		if r.Kernel.RMSE+1 < r.XSeed.RMSE {
			t.Errorf("%s: kernel %.2f better than XSEED %.2f", r.Class, r.Kernel.RMSE, r.XSeed.RMSE)
		}
	}
}

func TestFigure6(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Figure6(tinyCfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0].MBP != 0 || rows[1].MBP != 1 || rows[2].MBP != 2 {
		t.Fatalf("MBP sequence wrong: %+v", rows)
	}
	// 1BP reduces error versus the bare kernel; 2BP doesn't increase it.
	if rows[1].RMSE > rows[0].RMSE {
		t.Errorf("1BP RMSE %.2f > kernel %.2f", rows[1].RMSE, rows[0].RMSE)
	}
	if rows[2].RMSE > rows[1].RMSE+0.01 {
		t.Errorf("2BP RMSE %.2f > 1BP %.2f", rows[2].RMSE, rows[1].RMSE)
	}
	// 2BP enumerates strictly more patterns and costs more to build.
	if rows[2].Entries <= rows[1].Entries {
		t.Errorf("2BP entries %d <= 1BP %d", rows[2].Entries, rows[1].Entries)
	}
	if rows[2].BuildTime <= rows[1].BuildTime {
		t.Errorf("2BP build %v <= 1BP %v", rows[2].BuildTime, rows[1].BuildTime)
	}
}

func TestSection64(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Section64(tinyCfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.EPTNodes <= 0 || r.DocNodes <= 0 {
			t.Errorf("%s: empty row %+v", r.Dataset, r)
		}
		if r.EPTRatio <= 0 || r.EPTRatio > 1 {
			t.Errorf("%s: EPT ratio %g out of range", r.Dataset, r.EPTRatio)
		}
		if r.AvgEstimate <= 0 || r.AvgActual <= 0 {
			t.Errorf("%s: zero timings %+v", r.Dataset, r)
		}
	}
}

// TestFigure5RemoteMatchesLocal proves the Remote transport changes
// nothing but the transport: the XSEED accuracy cells served by a live
// xseedd (snapshot upload + client SDK batch estimates) are identical to
// the embedded adapter's.
func TestFigure5RemoteMatchesLocal(t *testing.T) {
	local, err := Figure5(tinyCfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	s, err := server.New(server.Config{CacheCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	rcfg := tinyCfg
	rcfg.Remote = ts.URL
	remote, err := Figure5(rcfg, nil)
	if err != nil {
		t.Fatal(err)
	}

	if len(local) != len(remote) {
		t.Fatalf("rows: local %d, remote %d", len(local), len(remote))
	}
	for i := range local {
		l, r := local[i], remote[i]
		if l.Kernel != r.Kernel || l.XSeed != r.XSeed {
			t.Errorf("%s: XSEED cells differ local/remote:\n  %+v\n  %+v", l.Class, l, r)
		}
	}
	// The uploads were cleaned up.
	if infos := s.Registry().List(); len(infos) != 0 {
		t.Errorf("remote run leaked synopses: %+v", infos)
	}
}

func TestSpecLookup(t *testing.T) {
	if _, ok := specByKey("DBLP"); !ok {
		t.Error("DBLP spec missing")
	}
	if _, ok := specByKey("nope"); ok {
		t.Error("bogus spec found")
	}
	if len(PaperDatasets()) != 5 {
		t.Errorf("datasets = %d", len(PaperDatasets()))
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.scale() != 0.05 || c.queries() != 200 || c.tsOpBudget() != 3e8 {
		t.Errorf("defaults: %g %d %d", c.scale(), c.queries(), c.tsOpBudget())
	}
}
