package experiments

import (
	"io"
	"time"

	"xseed/internal/estimate"
	"xseed/internal/het"
	"xseed/internal/workload"
)

// Figure5Row is one query-class group of the paper's Figure 5 bar chart:
// estimation errors on DBLP for the bare kernel, XSEED (kernel+HET), and
// TreeSketch.
type Figure5Row struct {
	Class      string // SP, BP, CP
	Queries    int
	Kernel     Table3Cell
	XSeed      Table3Cell
	TreeSketch Table3Cell
}

// Figure5 reproduces the paper's Figure 5: per-query-type errors on DBLP.
// The paper's finding: TreeSketch beats XSEED only on BP queries, where the
// pages/publisher sibling correlation sits above BSEL_THRESHOLD and escapes
// the HET.
func Figure5(cfg Config, w io.Writer) ([]Figure5Row, error) {
	spec, _ := specByKey("DBLP")
	b, err := buildDataset(cfg, spec)
	if err != nil {
		return nil, err
	}

	sp := workload.AllSimplePaths(b.pt, 0)
	opt := workload.Options{N: cfg.queries(), Seed: cfg.Seed + 1, RequireNonEmpty: true}
	bp := workload.Branching(b.pt, b.ev, opt)
	opt.Seed = cfg.Seed + 2
	cp := workload.Complex(b.pt, b.ev, opt)

	bare, _, _ := xseedWithBudget(b, 0)
	full, _, _ := xseedWithBudget(b, 50*1024)
	sketch := func(qs []workload.Query) Table3Cell { return sketchCell(cfg, b, qs, 50*1024) }

	var rows []Figure5Row
	fprintf(w, "Figure 5: estimation errors by query type on DBLP (RMSE, NRMSE)\n")
	fprintf(w, "%-4s %6s | %-19s %-19s %-19s\n", "type", "#q", "kernel", "XSEED", "TreeSketch")
	for _, group := range []struct {
		class string
		qs    []workload.Query
	}{
		{"SP", sp}, {"BP", bp}, {"CP", cp},
	} {
		row := Figure5Row{
			Class:      group.class,
			Queries:    len(group.qs),
			Kernel:     cell(measure(group.qs, xseedEstimator{bare})),
			XSeed:      cell(measure(group.qs, xseedEstimator{full})),
			TreeSketch: sketch(group.qs),
		}
		fprintf(w, "%-4s %6d | %-19s %-19s %-19s\n",
			row.Class, row.Queries,
			renderCell(row.Kernel), renderCell(row.XSeed), renderCell(row.TreeSketch))
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure6Row is one MBP setting of the paper's Figure 6: HET construction
// time and the RMSE of a 2BP workload.
type Figure6Row struct {
	MBP       int // 0 = bare kernel
	BuildTime time.Duration
	Entries   int
	RMSE      float64
	NRMSE     float64
}

// Figure6 reproduces the paper's Figure 6 on DBLP: the error/construction-
// time tradeoff of MBP ∈ {0, 1, 2} measured on a 2BP workload. The paper's
// finding: 1BP cuts the error ~66% cheaply; 2BP costs ~10× more
// construction time for only ~8% further reduction.
func Figure6(cfg Config, w io.Writer) ([]Figure6Row, error) {
	spec, _ := specByKey("DBLP")
	b, err := buildDataset(cfg, spec)
	if err != nil {
		return nil, err
	}
	// 2BP workload: up to 2 predicates per step.
	qs := workload.Branching(b.pt, b.ev, workload.Options{
		N: cfg.queries(), Seed: cfg.Seed + 3, MaxPredsPerStep: 2,
		PredProb: 0.7, RequireNonEmpty: true,
	})

	var rows []Figure6Row
	fprintf(w, "Figure 6: MBP settings on DBLP, 2BP workload (%d queries)\n", len(qs))
	fprintf(w, "%-12s %12s %10s %12s %10s\n", "setting", "build-time", "entries", "RMSE", "NRMSE")
	for _, mbp := range []int{0, 1, 2} {
		eopt := estimate.Options{CardThreshold: spec.CardThreshold, ReuseEPT: true}
		var est *estimate.Estimator
		row := Figure6Row{MBP: mbp}
		if mbp == 0 {
			est = estimate.New(b.kern, eopt)
		} else {
			start := time.Now()
			tab, _ := het.Precompute(b.doc, b.pt, b.kern, het.PrecomputeOptions{
				MBP:             mbp,
				BselThreshold:   spec.BselThreshold,
				EstimateOptions: eopt,
			})
			row.BuildTime = time.Since(start)
			row.Entries = tab.NumEntries()
			eopt.HET = tab
			est = estimate.New(b.kern, eopt)
		}
		acc := measure(qs, xseedEstimator{est})
		row.RMSE = acc.RMSE()
		row.NRMSE = acc.NRMSE()
		name := "0BP (kernel)"
		if mbp > 0 {
			name = itoa(mbp) + "BP"
		}
		fprintf(w, "%-12s %12s %10d %12.2f %9.2f%%\n",
			name, fmtDur(row.BuildTime), row.Entries, row.RMSE, row.NRMSE*100)
		rows = append(rows, row)
	}
	return rows, nil
}

func itoa(n int) string {
	return string(rune('0' + n))
}
