package experiments

import (
	"io"
	"time"

	"xseed"
)

// Figure5Row is one query-class group of the paper's Figure 5 bar chart:
// estimation errors on DBLP for the bare kernel, XSEED (kernel+HET), and
// TreeSketch.
type Figure5Row struct {
	Class      string // SP, BP, CP
	Queries    int
	Kernel     Table3Cell
	XSeed      Table3Cell
	TreeSketch Table3Cell
}

// Figure5 reproduces the paper's Figure 5: per-query-type errors on DBLP.
// The paper's finding: TreeSketch beats XSEED only on BP queries, where the
// pages/publisher sibling correlation sits above BSEL_THRESHOLD and escapes
// the HET. Estimates flow through the xseed.Estimator interface;
// cfg.Remote serves the XSEED columns from a live xseedd.
func Figure5(cfg Config, w io.Writer) ([]Figure5Row, error) {
	spec, _ := specByKey("DBLP")
	spec = scaledSpec(cfg, spec)
	d, err := rootDataset(cfg, spec)
	if err != nil {
		return nil, err
	}

	sp := d.SimplePathQueries(0)
	bp, err := d.RandomWorkload("BP", cfg.queries(), 0, cfg.Seed+1)
	if err != nil {
		return nil, err
	}
	cp, err := d.RandomWorkload("CP", cfg.queries(), 0, cfg.Seed+2)
	if err != nil {
		return nil, err
	}

	bareSyn, err := synopsisWithBudget(d, spec, 0)
	if err != nil {
		return nil, err
	}
	fullSyn, err := synopsisWithBudget(d, spec, 50*1024)
	if err != nil {
		return nil, err
	}
	bare, bareCleanup, err := cfg.estimatorFor("f5-kernel", bareSyn)
	if err != nil {
		return nil, err
	}
	defer bareCleanup()
	full, fullCleanup, err := cfg.estimatorFor("f5-50k", fullSyn)
	if err != nil {
		return nil, err
	}
	defer fullCleanup()

	var rows []Figure5Row
	fprintf(w, "Figure 5: estimation errors by query type on DBLP (RMSE, NRMSE)\n")
	fprintf(w, "%-4s %6s | %-19s %-19s %-19s\n", "type", "#q", "kernel", "XSEED", "TreeSketch")
	for _, group := range []struct {
		class string
		qs    []*xseed.Query
	}{
		{"SP", sp}, {"BP", bp}, {"CP", cp},
	} {
		row := Figure5Row{Class: group.class, Queries: len(group.qs)}
		bacc, err := measure(bare, group.qs)
		if err != nil {
			return rows, err
		}
		row.Kernel = cell(bacc)
		facc, err := measure(full, group.qs)
		if err != nil {
			return rows, err
		}
		row.XSeed = cell(facc)
		if row.TreeSketch, err = sketchCell(cfg, d, group.qs, 50*1024); err != nil {
			return rows, err
		}
		fprintf(w, "%-4s %6d | %-19s %-19s %-19s\n",
			row.Class, row.Queries,
			renderCell(row.Kernel), renderCell(row.XSeed), renderCell(row.TreeSketch))
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure6Row is one MBP setting of the paper's Figure 6: HET construction
// time and the RMSE of a 2BP workload.
type Figure6Row struct {
	MBP       int // 0 = bare kernel
	BuildTime time.Duration
	Entries   int
	RMSE      float64
	NRMSE     float64
}

// Figure6 reproduces the paper's Figure 6 on DBLP: the error/construction-
// time tradeoff of MBP ∈ {0, 1, 2} measured on a 2BP workload. The paper's
// finding: 1BP cuts the error ~66% cheaply; 2BP costs ~10× more
// construction time for only ~8% further reduction.
func Figure6(cfg Config, w io.Writer) ([]Figure6Row, error) {
	spec, _ := specByKey("DBLP")
	d, err := rootDataset(cfg, spec)
	if err != nil {
		return nil, err
	}
	// 2BP workload: up to 2 predicates per step, predicate-rich.
	qs, err := d.RandomWorkloadOpts("BP", xseed.WorkloadOptions{
		N: cfg.queries(), Seed: cfg.Seed + 3, MaxPredsPerStep: 2, PredProb: 0.7,
	})
	if err != nil {
		return nil, err
	}

	var rows []Figure6Row
	fprintf(w, "Figure 6: MBP settings on DBLP, 2BP workload (%d queries)\n", len(qs))
	fprintf(w, "%-12s %12s %10s %12s %10s\n", "setting", "build-time", "entries", "RMSE", "NRMSE")
	for _, mbp := range []int{0, 1, 2} {
		// The historical Figure 6 setting uses the paper-scale
		// CARD_THRESHOLD (0 on DBLP) without per-scale adjustment.
		base := &xseed.Config{CardThreshold: spec.CardThreshold, ReuseEPT: true}
		row := Figure6Row{MBP: mbp}
		var syn *xseed.Synopsis
		if mbp == 0 {
			if syn, err = xseed.KernelOnly(d, base); err != nil {
				return rows, err
			}
		} else {
			cfgS := *base
			cfgS.HET = &xseed.HETConfig{MBP: mbp, BselThreshold: spec.BselThreshold}
			start := time.Now()
			if syn, err = xseed.BuildSynopsis(d, &cfgS); err != nil {
				return rows, err
			}
			row.BuildTime = time.Since(start)
			_, row.Entries = syn.HETEntries()
		}
		est, cleanup, err := cfg.estimatorFor("f6-"+itoa(mbp)+"bp", syn)
		if err != nil {
			return rows, err
		}
		acc, err := measure(est, qs)
		cleanup()
		if err != nil {
			return rows, err
		}
		row.RMSE = acc.RMSE()
		row.NRMSE = acc.NRMSE()
		name := "0BP (kernel)"
		if mbp > 0 {
			name = itoa(mbp) + "BP"
		}
		fprintf(w, "%-12s %12s %10d %12.2f %9.2f%%\n",
			name, fmtDur(row.BuildTime), row.Entries, row.RMSE, row.NRMSE*100)
		rows = append(rows, row)
	}
	return rows, nil
}

func itoa(n int) string {
	return string(rune('0' + n))
}
