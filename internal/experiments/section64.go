package experiments

import (
	"io"
	"time"

	"xseed/internal/estimate"
	"xseed/internal/workload"
)

// workloadQuery aliases the workload entry for readability here.
type workloadQuery = workload.Query

// Section64Row is one dataset's entry in the paper's Section 6.4
// efficiency results: EPT size relative to the document, and estimation
// time relative to actual query evaluation time.
type Section64Row struct {
	Dataset string
	Queries int

	EPTNodes     int
	DocNodes     int64
	EPTRatio     float64 // EPT nodes / document nodes
	AvgEstimate  time.Duration
	AvgActual    time.Duration
	TimeRatioPct float64 // 100 × estimate / actual
}

// Section64 reproduces the paper's Section 6.4: the estimation algorithm's
// cost. The paper reports EPT sizes of 0.0035%-0.05% for DBLP/XMark and
// 5.5-6.9% for Treebank (with CARD_THRESHOLD 20), and estimation times
// between 0.018% and 2% of actual query evaluation.
func Section64(cfg Config, w io.Writer) ([]Section64Row, error) {
	var rows []Section64Row
	fprintf(w, "Section 6.4: estimation efficiency (scale %.3g)\n", cfg.scale())
	fprintf(w, "%-12s %6s %10s %10s %9s %12s %12s %9s\n",
		"Dataset", "#q", "EPTnodes", "docNodes", "EPT%", "est-time", "query-time", "ratio%")
	for _, spec := range PaperDatasets() {
		b, err := buildDataset(cfg, spec)
		if err != nil {
			return rows, err
		}
		qs := combinedWorkload(cfg, b)
		if len(qs) == 0 {
			continue
		}
		// Timing needs a bounded sample: recursive datasets have tens of
		// thousands of SP queries and the actual-evaluation side scans the
		// whole document per query. Deterministic stride sampling keeps the
		// class mix.
		const maxTimed = 400
		if len(qs) > maxTimed {
			stride := len(qs) / maxTimed
			sampled := make([]workloadQuery, 0, maxTimed)
			for i := 0; i < len(qs) && len(sampled) < maxTimed; i += stride {
				sampled = append(sampled, qs[i])
			}
			qs = sampled
		}

		// Estimation per the paper: the traveler regenerates the EPT per
		// query (no caching), with the dataset's CARD_THRESHOLD.
		eopt := estimate.Options{CardThreshold: spec.CardThreshold}
		est := estimate.New(b.kern, eopt)

		start := time.Now()
		for _, q := range qs {
			est.Estimate(q.Path)
		}
		estTime := time.Since(start) / time.Duration(len(qs))
		eptNodes := est.LastEPTStats().Nodes

		start = time.Now()
		for _, q := range qs {
			b.ev.Count(q.Path)
		}
		actTime := time.Since(start) / time.Duration(len(qs))

		row := Section64Row{
			Dataset:     spec.Key,
			Queries:     len(qs),
			EPTNodes:    eptNodes,
			DocNodes:    b.docStats.Nodes,
			EPTRatio:    float64(eptNodes) / float64(b.docStats.Nodes),
			AvgEstimate: estTime,
			AvgActual:   actTime,
		}
		if actTime > 0 {
			row.TimeRatioPct = 100 * float64(estTime) / float64(actTime)
		}
		fprintf(w, "%-12s %6d %10d %10d %8.4f%% %12s %12s %8.3f%%\n",
			row.Dataset, row.Queries, row.EPTNodes, row.DocNodes, row.EPTRatio*100,
			row.AvgEstimate.Round(time.Microsecond), row.AvgActual.Round(time.Microsecond),
			row.TimeRatioPct)
		rows = append(rows, row)
	}
	return rows, nil
}
