package experiments

import (
	"errors"
	"io"
	"time"

	"xseed/internal/estimate"
	"xseed/internal/het"
	"xseed/internal/treesketch"
)

// Table2Row is one dataset's row of the paper's Table 2: data
// characteristics, XSEED kernel size, and synopsis construction times.
type Table2Row struct {
	Dataset     string
	TextBytes   int64
	Nodes       int64
	AvgRecLevel float64
	MaxRecLevel int

	KernelBytes   int
	KernelTime    time.Duration
	HETTime       time.Duration
	HETEntries    int
	TreeSketchDur time.Duration
	TreeSketchDNF bool
}

// Table2 reproduces the paper's Table 2 on every paper dataset at the
// configured scale.
func Table2(cfg Config, w io.Writer) ([]Table2Row, error) {
	var rows []Table2Row
	fprintf(w, "Table 2: dataset characteristics and synopsis construction (scale %.3g)\n", cfg.scale())
	fprintf(w, "%-12s %10s %9s %7s %4s | %8s %10s %12s %14s\n",
		"Dataset", "size", "#nodes", "avgRec", "max", "kernel", "k-time", "1BP-HET-time", "TreeSketch")
	for _, spec := range PaperDatasets() {
		b, err := buildDataset(cfg, spec)
		if err != nil {
			return rows, err
		}
		row := Table2Row{
			Dataset:     spec.Key,
			TextBytes:   b.docStats.TextBytes,
			Nodes:       b.docStats.Nodes,
			AvgRecLevel: b.docStats.AvgRecLevel,
			MaxRecLevel: b.docStats.MaxRecLevel,
			KernelBytes: b.kern.SizeBytes(),
			KernelTime:  b.kernelBuildTime,
		}

		// 1BP HET construction time (unbounded budget: the paper times the
		// full pre-computation; residency is decided later).
		start := time.Now()
		tab, _ := het.Precompute(b.doc, b.pt, b.kern, het.PrecomputeOptions{
			MBP:           1,
			BselThreshold: spec.BselThreshold,
			EstimateOptions: estimate.Options{
				CardThreshold: spec.CardThreshold,
				ReuseEPT:      true,
			},
		})
		row.HETTime = time.Since(start)
		row.HETEntries = tab.NumEntries()

		// TreeSketch at a 50KB budget with the operation cutoff.
		start = time.Now()
		_, _, err = treesketch.Build(b.doc, treesketch.Options{
			BudgetBytes: 50 * 1024,
			OpBudget:    cfg.tsOpBudget(),
			Seed:        cfg.Seed,
		})
		row.TreeSketchDur = time.Since(start)
		if err != nil {
			if !errors.Is(err, treesketch.ErrDNF) {
				return rows, err
			}
			row.TreeSketchDNF = true
		}

		tsCol := fmtDur(row.TreeSketchDur)
		if row.TreeSketchDNF {
			tsCol = "DNF"
		}
		fprintf(w, "%-12s %9.1fM %9d %7.2f %4d | %7.1fK %10s %12s %14s\n",
			row.Dataset, float64(row.TextBytes)/1e6, row.Nodes, row.AvgRecLevel,
			row.MaxRecLevel, float64(row.KernelBytes)/1024,
			fmtDur(row.KernelTime), fmtDur(row.HETTime), tsCol)
		rows = append(rows, row)
	}
	return rows, nil
}
