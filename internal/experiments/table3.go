package experiments

import (
	"errors"
	"fmt"
	"io"

	"xseed"
	"xseed/internal/metrics"
)

// Table3Cell is one (program setting, dataset) cell of the paper's Table 3.
type Table3Cell struct {
	RMSE  float64
	NRMSE float64
	R2    float64
	OPD   float64
	DNF   bool // TreeSketch construction did not finish
}

// Table3Row holds one dataset's results across program settings.
type Table3Row struct {
	Dataset string
	Queries int

	Kernel   Table3Cell // bare XSEED kernel, no HET
	XSeed25  Table3Cell // XSEED within 25KB total
	Sketch25 Table3Cell // TreeSketch within 25KB
	XSeed50  Table3Cell // XSEED within 50KB total
	Sketch50 Table3Cell // TreeSketch within 50KB
}

// table3Datasets are the four datasets the paper lists (full Treebank's
// TreeSketch cannot be constructed, so the paper omits it).
var table3Datasets = []string{"DBLP", "XMark10", "XMark100", "Treebank.05"}

// Table3 reproduces the paper's Table 3: error metrics of the XSEED kernel,
// XSEED and TreeSketch at 25KB and 50KB memory budgets, over the combined
// SP+BP+CP workload. Every estimate flows through the xseed.Estimator
// interface; cfg.Remote serves the XSEED columns from a live xseedd.
func Table3(cfg Config, w io.Writer) ([]Table3Row, error) {
	var rows []Table3Row
	fprintf(w, "Table 3: error metrics, combined SP+BP+CP workload (scale %.3g, %d queries/class)\n",
		cfg.scale(), cfg.queries())
	fprintf(w, "%-12s %6s | %-19s | %-19s %-19s | %-19s %-19s\n",
		"Dataset", "#q", "kernel", "XSEED@25K", "TreeSketch@25K", "XSEED@50K", "TreeSketch@50K")
	for _, key := range table3Datasets {
		spec, ok := specByKey(key)
		if !ok {
			continue
		}
		spec = scaledSpec(cfg, spec)
		d, err := rootDataset(cfg, spec)
		if err != nil {
			return rows, err
		}
		qs, err := combinedQueries(cfg, d)
		if err != nil {
			return rows, err
		}
		row := Table3Row{Dataset: key, Queries: len(qs)}

		xseedCell := func(budget int, name string) (Table3Cell, error) {
			syn, err := synopsisWithBudget(d, spec, budget)
			if err != nil {
				return Table3Cell{}, err
			}
			est, cleanup, err := cfg.estimatorFor(name, syn)
			if err != nil {
				return Table3Cell{}, err
			}
			defer cleanup()
			acc, err := measure(est, qs)
			if err != nil {
				return Table3Cell{}, err
			}
			return cell(acc), nil
		}
		if row.Kernel, err = xseedCell(0, "t3-"+key+"-kernel"); err != nil {
			return rows, err
		}
		if row.XSeed25, err = xseedCell(25*1024, "t3-"+key+"-25k"); err != nil {
			return rows, err
		}
		if row.XSeed50, err = xseedCell(50*1024, "t3-"+key+"-50k"); err != nil {
			return rows, err
		}

		if row.Sketch25, err = sketchCell(cfg, d, qs, 25*1024); err != nil {
			return rows, err
		}
		if row.Sketch50, err = sketchCell(cfg, d, qs, 50*1024); err != nil {
			return rows, err
		}

		fprintf(w, "%-12s %6d | %-19s | %-19s %-19s | %-19s %-19s\n",
			row.Dataset, row.Queries,
			renderCell(row.Kernel), renderCell(row.XSeed25), renderCell(row.Sketch25),
			renderCell(row.XSeed50), renderCell(row.Sketch50))
		rows = append(rows, row)
	}
	return rows, nil
}

func cell(acc *metrics.Accumulator) Table3Cell {
	return Table3Cell{
		RMSE:  acc.RMSE(),
		NRMSE: acc.NRMSE(),
		R2:    acc.R2(),
		OPD:   acc.OPD(),
	}
}

func renderCell(c Table3Cell) string {
	if c.DNF {
		return "DNF"
	}
	return fmt.Sprintf("%.1f (%.2f%%)", c.RMSE, c.NRMSE*100)
}

// sketchCell builds the TreeSketch baseline within budget and measures it
// through the same Estimator seam (always embedded — xseedd serves XSEED
// synopses, not TreeSketches).
func sketchCell(cfg Config, d *xseed.Document, qs []*xseed.Query, budget int) (Table3Cell, error) {
	ts, _, err := xseed.BuildTreeSketch(d, budget, xseed.TreeSketchOptions{
		OpBudget: cfg.tsOpBudget(),
		Seed:     cfg.Seed,
	})
	if err != nil {
		if errors.Is(err, xseed.ErrTreeSketchDNF) {
			return Table3Cell{DNF: true}, nil
		}
		return Table3Cell{DNF: true}, nil
	}
	acc, err := measure(ceEstimator{ts}, qs)
	if err != nil {
		return Table3Cell{}, err
	}
	return cell(acc), nil
}
