package experiments

import (
	"errors"
	"fmt"
	"io"

	"xseed/internal/metrics"
	"xseed/internal/treesketch"
	"xseed/internal/workload"
)

// Table3Cell is one (program setting, dataset) cell of the paper's Table 3.
type Table3Cell struct {
	RMSE  float64
	NRMSE float64
	R2    float64
	OPD   float64
	DNF   bool // TreeSketch construction did not finish
}

// Table3Row holds one dataset's results across program settings.
type Table3Row struct {
	Dataset string
	Queries int

	Kernel   Table3Cell // bare XSEED kernel, no HET
	XSeed25  Table3Cell // XSEED within 25KB total
	Sketch25 Table3Cell // TreeSketch within 25KB
	XSeed50  Table3Cell // XSEED within 50KB total
	Sketch50 Table3Cell // TreeSketch within 50KB
}

// table3Datasets are the four datasets the paper lists (full Treebank's
// TreeSketch cannot be constructed, so the paper omits it).
var table3Datasets = []string{"DBLP", "XMark10", "XMark100", "Treebank.05"}

// Table3 reproduces the paper's Table 3: error metrics of the XSEED kernel,
// XSEED and TreeSketch at 25KB and 50KB memory budgets, over the combined
// SP+BP+CP workload.
func Table3(cfg Config, w io.Writer) ([]Table3Row, error) {
	var rows []Table3Row
	fprintf(w, "Table 3: error metrics, combined SP+BP+CP workload (scale %.3g, %d queries/class)\n",
		cfg.scale(), cfg.queries())
	fprintf(w, "%-12s %6s | %-19s | %-19s %-19s | %-19s %-19s\n",
		"Dataset", "#q", "kernel", "XSEED@25K", "TreeSketch@25K", "XSEED@50K", "TreeSketch@50K")
	for _, key := range table3Datasets {
		spec, ok := specByKey(key)
		if !ok {
			continue
		}
		b, err := buildDataset(cfg, spec)
		if err != nil {
			return rows, err
		}
		qs := combinedWorkload(cfg, b)
		row := Table3Row{Dataset: key, Queries: len(qs)}

		bare, _, _ := xseedWithBudget(b, 0)
		row.Kernel = cell(measure(qs, xseedEstimator{bare}))

		x25, _, _ := xseedWithBudget(b, 25*1024)
		row.XSeed25 = cell(measure(qs, xseedEstimator{x25}))
		x50, _, _ := xseedWithBudget(b, 50*1024)
		row.XSeed50 = cell(measure(qs, xseedEstimator{x50}))

		row.Sketch25 = sketchCell(cfg, b, qs, 25*1024)
		row.Sketch50 = sketchCell(cfg, b, qs, 50*1024)

		fprintf(w, "%-12s %6d | %-19s | %-19s %-19s | %-19s %-19s\n",
			row.Dataset, row.Queries,
			renderCell(row.Kernel), renderCell(row.XSeed25), renderCell(row.Sketch25),
			renderCell(row.XSeed50), renderCell(row.Sketch50))
		rows = append(rows, row)
	}
	return rows, nil
}

func cell(acc *metrics.Accumulator) Table3Cell {
	return Table3Cell{
		RMSE:  acc.RMSE(),
		NRMSE: acc.NRMSE(),
		R2:    acc.R2(),
		OPD:   acc.OPD(),
	}
}

func renderCell(c Table3Cell) string {
	if c.DNF {
		return "DNF"
	}
	return fmt.Sprintf("%.1f (%.2f%%)", c.RMSE, c.NRMSE*100)
}

func sketchCell(cfg Config, b *built, qs []workload.Query, budget int) Table3Cell {
	syn, _, err := treesketch.Build(b.doc, treesketch.Options{
		BudgetBytes: budget,
		OpBudget:    cfg.tsOpBudget(),
		Seed:        cfg.Seed,
	})
	if err != nil {
		if errors.Is(err, treesketch.ErrDNF) {
			return Table3Cell{DNF: true}
		}
		return Table3Cell{DNF: true}
	}
	return cell(measure(qs, tsEstimator{syn}))
}
