// Package fixtures holds the paper's running examples as shared test data:
// the Figure 2(a) XML tree (whose XSEED kernel is Figure 2(b)) and the
// Figure 4 kernel used by Examples 4 and 5 and Table 1 — plus a checked-in
// v1 synopsis snapshot guarding serialization back-compat.
package fixtures

import _ "embed"

// SynopsisV1 is a synopsis snapshot in the v1 stream format (no "XSNP"
// header; the stream begins with the kernel's "XSK1" magic), written by the
// pre-versioning build from PaperFigure2 with default config plus two
// feedback calls: ("/a/c/s/s/t", 2) and ("//s//p", 14). It is frozen
// byte-for-byte: xseed.ReadSynopsis must keep loading it unchanged, because
// real deployments hold snapshots written by old builds. Expected state:
// 14/14 HET entries; estimates /a/c/s/s/t=2, //s//p=14, /a/c/s=5,
// //s//s//p=5.
//
//go:embed testdata/synopsis_v1.snap
var SynopsisV1 []byte

// PaperFigure2 is an XML instance consistent with the paper's Figure 2:
// building its XSEED kernel yields exactly the edge labels of Figure 2(b):
//
//	(a,t) = (1:1)            (a,u) = (1:1)          (a,c) = (1:2)
//	(c,t) = (2:2)            (c,p) = (2:3)          (c,s) = (2:5)
//	(s,t) = (2:2, 1:1)       (s,p) = (5:9, 1:2, 2:3)
//	(s,s) = (0:0, 2:2, 1:2)
//
// It also satisfies every number in the paper's worked examples: the
// expanded path tree dump in Section 4, the Example 3 estimation trace for
// /a/c/s/s/t, and Observation 3's |//s//s//p| = 5.
const PaperFigure2 = `<a>
  <t/>
  <u/>
  <c>
    <t/>
    <p/>
    <s><t/><p/><p/></s>
    <s><p/><p/>
      <s><t/><p/><p/>
        <s><p/><p/></s>
        <s><p/></s>
      </s>
    </s>
  </c>
  <c>
    <t/>
    <p/><p/>
    <s><p/><p/><s/></s>
    <s><t/><p/><p/></s>
    <s><p/></s>
  </c>
</a>`

// PaperFigure2Nodes is the element count of PaperFigure2.
const PaperFigure2Nodes = 36

// PaperFigure4 is an XML instance consistent with the paper's Figure 4
// kernel (all recursion level 0):
//
//	(a,b) = (2:5)   (a,c) = (3:9)   (b,d) = (1:3)... — see below.
//
// Figure 4's kernel is:
//
//	a → b (2:5), a → c (3:9), b → d (1:3), c → d (1:4),
//	d → e (4:50) ... (paper label (4:50) appears on (d,e)), d → f (3:20).
//
// The figure labels as printed are: (a,b)=(2:5)?? The paper lists
// (4:50) on (d,e), (2:5) and (3:9) on the two a-edges, (1:3), (1:4) on the
// b/c→d edges, and (3:20) on (d,f). Example 4 computes
// |b/d/e| = 20 × 5/14 using e(d,e)[0].C = 20, e(b,d)[0].C = 5,
// e(c,d)[0].C = 9; so the printed (2:5) belongs to (b,d) and (3:9) to
// (c,d), while (4:50) is (d,f)... Example 5 uses e(d,f)[0].P = 4 and
// denominator 14 = 5 + 9. We therefore fix the kernel as:
//
//	(a,b) = (1:3)    (a,c) = (1:4)
//	(b,d) = (2:5)    (c,d) = (3:9)
//	(d,e) = (3:20)   (d,f) = (4:50)
//
// which reproduces Example 4 (|b/d/e| ≈ 20 × 5/14 = 7.14) and Example 5
// (|b/d[f]/e| ≈ 20 × 5/14 × 4/14 = 2.04) exactly.
//
// This instance realizes those counts: 1 a root; 3 b children and 4 c
// children; 2 of the b's have d children (5 total), 3 of the c's have d
// children (9 total); of the 14 d's, 3 have e children (20 total) and 4
// have f children (50 total).
var PaperFigure4 = buildFigure4()

func buildFigure4() string {
	rep := func(s string, n int) string {
		out := ""
		for i := 0; i < n; i++ {
			out += s
		}
		return out
	}
	// b1: 3 d's (d with 8 e's + 20 f's; d with 12 e's; d plain)
	// b2: 2 d's (d with 15 f's; d plain)
	// b3: no d
	// c1: 4 d's (d with 10 f's; d plain ×3)
	// c2: 3 d's (d with 5 f's; d plain ×2)
	// c3: 2 d's (d plain ×2)
	// c4: no d
	// e-parents: 2 (8+12=20 e's)... need 3 d's with e (total 20): 8 + 10 + 2.
	b1 := "<b>" +
		"<d>" + rep("<e/>", 8) + rep("<f/>", 20) + "</d>" +
		"<d>" + rep("<e/>", 10) + "</d>" +
		"<d/>" +
		"</b>"
	b2 := "<b>" +
		"<d>" + rep("<f/>", 15) + "</d>" +
		"<d/>" +
		"</b>"
	b3 := "<b/>"
	c1 := "<c>" +
		"<d>" + rep("<f/>", 10) + "</d>" +
		"<d>" + rep("<e/>", 2) + "</d>" +
		"<d/><d/>" +
		"</c>"
	c2 := "<c>" +
		"<d>" + rep("<f/>", 5) + "</d>" +
		"<d/><d/>" +
		"</c>"
	c3 := "<c><d/><d/></c>"
	c4 := "<c/>"
	return "<a>" + b1 + b2 + b3 + c1 + c2 + c3 + c4 + "</a>"
}
