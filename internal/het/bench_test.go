package het

import (
	"math/rand"
	"testing"
)

// seededTable builds a table holding n entries with pseudorandom errors, the
// shape of a long-lived feedback-driven HET.
func seededTable(n int, budget int) (*Table, *rand.Rand) {
	rng := rand.New(rand.NewSource(1))
	tab := New(budget)
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{
			Hash: uint32(i + 1),
			Card: float64(rng.Intn(1000)),
			Err:  rng.Float64() * 100,
		}
	}
	tab.AddBatch(entries)
	return tab, rng
}

// BenchmarkTableAdd10kUpsert is sustained query feedback against a warm
// ~10k-entry table: every Add hits an existing (hash, kind) with a slightly
// changed error, the common self-tuning case.
func BenchmarkTableAdd10kUpsert(b *testing.B) {
	const n = 10_000
	tab, rng := seededTable(n, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := uint32(rng.Intn(n) + 1)
		tab.Add(Entry{Hash: h, Card: float64(i), Err: rng.Float64() * 100})
	}
}

// BenchmarkTableAdd10kInsert grows the table with brand-new entries starting
// from ~10k, the cold half of the feedback workload.
func BenchmarkTableAdd10kInsert(b *testing.B) {
	const n = 10_000
	tab, rng := seededTable(n, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Add(Entry{Hash: uint32(n + 1 + i), Card: float64(i), Err: rng.Float64()})
	}
}

// BenchmarkTableSetBudget is the per-entry cost the registry's budget
// rebalancer pays while holding the entry's write lock.
func BenchmarkTableSetBudget(b *testing.B) {
	const n = 10_000
	tab, _ := seededTable(n, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.SetBudget((n/2 + i%1000) * EntrySize)
	}
}
