// Package het implements the XSEED hyper-edge table (paper Section 5): a
// table of actual cardinalities for simple paths and correlated backward
// selectivities for branching patterns, keyed by 32-bit incremental path
// hashes. The HET patches the cases where the kernel's independence
// assumptions (ancestor independence, Example 4; sibling independence,
// Example 5) break.
//
// Entries are ranked by absolute estimation error. The full table plays the
// role of the paper's "secondary storage" copy; only the top-k entries that
// fit the memory budget are resident and consulted by the estimator, so the
// synopsis can be dynamically reconfigured when the budget changes.
package het

import (
	"sort"

	"xseed/internal/pathhash"
	"xseed/internal/xpath"
)

// EntrySize is the budget accounting per resident entry: 4-byte hash +
// 8-byte cardinality + 4-byte selectivity, as in the paper's "hashed
// integer (32 bits) ... serves as a key to the actual cardinality and the
// correlated backward selectivity".
const EntrySize = 16

// Entry is one hyper-edge.
type Entry struct {
	Hash    uint32
	Pattern bool    // false: rooted simple path; true: branching pattern p[q...]/r
	Card    float64 // actual cardinality
	Bsel    float64 // actual (paths) or correlated (patterns) backward selectivity
	BselOK  bool    // false when only the cardinality is known (query feedback)
	Err     float64 // |estimate - actual| priority; not part of EntrySize
}

// tkey identifies an entry: path and pattern hashes live in separate
// namespaces.
type tkey struct {
	hash    uint32
	pattern bool
}

// Table is a hyper-edge table. The zero value is unusable; use New.
//
// all stays sorted by Err descending at all times, maintained incrementally:
// an Add binary-searches for the rank position and shifts only the span
// between the entry's old and new slots, instead of re-sorting the whole
// table per feedback. Residency is then just the prefix all[:limit], so
// SetBudget — the paper's dynamic reconfiguration, which the serving layer's
// rebalancer calls while holding a synopsis's write lock — is O(1) rather
// than a full map rebuild.
type Table struct {
	budget int

	// all is every known hyper-edge, sorted by Err descending ("secondary
	// storage").
	all []Entry

	// idx locates every entry (resident or not) by (hash, kind).
	idx map[tkey]int

	// limit is the resident prefix length: all[:limit] fits the budget.
	limit int
}

// New returns an empty table with the given memory budget in bytes. A
// budget <= 0 keeps every entry resident.
func New(budgetBytes int) *Table {
	return &Table{budget: budgetBytes, idx: make(map[tkey]int)}
}

// LookupPath implements estimate.HET.
func (t *Table) LookupPath(h uint32) (card, bsel float64, bselOK, ok bool) {
	i, ok := t.idx[tkey{h, false}]
	if !ok || i >= t.limit {
		return 0, 0, false, false
	}
	e := &t.all[i]
	return e.Card, e.Bsel, e.BselOK, true
}

// LookupPattern implements estimate.HET.
func (t *Table) LookupPattern(h uint32) (bsel float64, ok bool) {
	i, ok := t.idx[tkey{h, true}]
	if !ok || i >= t.limit {
		return 0, false
	}
	e := &t.all[i]
	if !e.BselOK {
		return 0, false
	}
	return e.Bsel, true
}

// Add upserts an entry by (hash, kind), keeping rank order. An incoming
// entry that carries no backward selectivity (BselOK false — card-only query
// feedback) merges with an existing one instead of replacing it wholesale:
// the precomputed Bsel survives, only the cardinality and error refresh.
// This merge runs identically during delta-log replay (ApplyHETDelta calls
// Add), so recovered tables match live ones.
func (t *Table) Add(e Entry) {
	k := tkey{e.Hash, e.Pattern}
	if i, ok := t.idx[k]; ok {
		if old := &t.all[i]; !e.BselOK && old.BselOK {
			e.Bsel, e.BselOK = old.Bsel, old.BselOK
		}
		t.all[i] = e
		t.reposition(i)
		return
	}
	// New entry: insert after any equal-Err entries (the order a stable
	// append-then-sort would produce).
	pos := sort.Search(len(t.all), func(i int) bool { return t.all[i].Err < e.Err })
	t.all = append(t.all, Entry{})
	copy(t.all[pos+1:], t.all[pos:])
	t.all[pos] = e
	for j := pos; j < len(t.all); j++ {
		t.idx[tkey{t.all[j].Hash, t.all[j].Pattern}] = j
	}
	t.limit = t.residentLimit()
}

// reposition restores rank order after the entry at i changed its error,
// shifting only the entries between its old and new positions.
func (t *Table) reposition(i int) {
	e := t.all[i]
	if i > 0 && t.all[i-1].Err < e.Err {
		// Error grew: move left, past strictly smaller errors only.
		j := sort.Search(i, func(p int) bool { return t.all[p].Err < e.Err })
		copy(t.all[j+1:i+1], t.all[j:i])
		t.all[j] = e
		for p := j; p <= i; p++ {
			t.idx[tkey{t.all[p].Hash, t.all[p].Pattern}] = p
		}
		return
	}
	if i < len(t.all)-1 && e.Err < t.all[i+1].Err {
		// Error shrank: move right, past strictly larger-or-equal errors.
		j := i + sort.Search(len(t.all)-i-1, func(p int) bool { return t.all[i+1+p].Err < e.Err })
		copy(t.all[i:j], t.all[i+1:j+1])
		t.all[j] = e
		for p := i; p <= j; p++ {
			t.idx[tkey{t.all[p].Hash, t.all[p].Pattern}] = p
		}
	}
}

// AddBatch inserts many entries at once with a single sort (the precompute
// and deserialization path). Entries are assumed unique by (hash, kind);
// duplicates keep one index winner, as the old per-prefix map rebuild did.
func (t *Table) AddBatch(entries []Entry) {
	t.all = append(t.all, entries...)
	sort.SliceStable(t.all, func(i, j int) bool { return t.all[i].Err > t.all[j].Err })
	t.idx = make(map[tkey]int, len(t.all))
	for i := range t.all {
		t.idx[tkey{t.all[i].Hash, t.all[i].Pattern}] = i
	}
	t.limit = t.residentLimit()
}

// SetBudget changes the resident memory budget in bytes and recomputes the
// resident set. This is the "dynamic reconfiguration" the paper describes:
// entries can be dropped or readmitted at any time without touching the
// kernel. Residency is a prefix of the ranked table, so this is O(1).
func (t *Table) SetBudget(bytes int) {
	t.budget = bytes
	t.limit = t.residentLimit()
}

// Budget returns the configured budget in bytes (<= 0: unlimited).
func (t *Table) Budget() int { return t.budget }

// SizeBytes returns the resident size under EntrySize accounting.
func (t *Table) SizeBytes() int { return t.limit * EntrySize }

// NumEntries returns the total number of known entries (resident or not).
func (t *Table) NumEntries() int { return len(t.all) }

// NumResident returns the number of resident entries.
func (t *Table) NumResident() int { return t.limit }

// Entries returns a copy of all entries in rank order, for inspection.
func (t *Table) Entries() []Entry {
	out := make([]Entry, len(t.all))
	copy(out, t.all)
	return out
}

func (t *Table) residentLimit() int {
	limit := len(t.all)
	if t.budget > 0 {
		if max := t.budget / EntrySize; max < limit {
			limit = max
		}
	}
	return limit
}

// pathVal is the payload of one resident simple-path hyper-edge in a View.
type pathVal struct {
	card   float64
	bsel   float64
	bselOK bool
}

// View is an immutable snapshot of the table's resident set. It implements
// the estimator's HET interface, so an estimation snapshot can keep
// consulting the hyper-edges it was published with while feedback and budget
// changes mutate the live table underneath — lock-free readers never observe
// a half-shifted rank array. Building one is O(resident); the estimation
// layer builds a fresh view inside each mutation's critical section.
type View struct {
	paths    map[uint32]pathVal
	patterns map[uint32]float64
}

// View snapshots the current resident prefix.
func (t *Table) View() *View {
	v := &View{
		paths:    make(map[uint32]pathVal, t.limit),
		patterns: make(map[uint32]float64, t.limit/4),
	}
	for i := 0; i < t.limit; i++ {
		e := &t.all[i]
		if e.Pattern {
			// LookupPattern only answers when a backward selectivity is
			// known; entries without one are invisible, same as the table.
			if e.BselOK {
				v.patterns[e.Hash] = e.Bsel
			}
			continue
		}
		v.paths[e.Hash] = pathVal{card: e.Card, bsel: e.Bsel, bselOK: e.BselOK}
	}
	return v
}

// LookupPath implements estimate.HET over the frozen resident set.
func (v *View) LookupPath(h uint32) (card, bsel float64, bselOK, ok bool) {
	p, ok := v.paths[h]
	if !ok {
		return 0, 0, false, false
	}
	return p.card, p.bsel, p.bselOK, true
}

// LookupPattern implements estimate.HET over the frozen resident set.
func (v *View) LookupPattern(h uint32) (bsel float64, ok bool) {
	bsel, ok = v.patterns[h]
	return bsel, ok
}

// Feedback records an executed query's actual cardinality (paper Figure 1:
// "the optimizer may feedback the actual cardinality or selectivity of the
// query to the HET"). Simple paths store the actual cardinality; queries of
// the form .../p[preds...]/r with single-step child predicates store a
// correlated backward selectivity computed against baseEstimate, the
// synopsis estimate of the same query without the predicates. Other query
// shapes are ignored (the paper's HET covers SP and leaf-level branching).
//
// The upserted entry is returned with applied=true so callers can persist
// the table mutation as a delta (re-applying it with Add reproduces the
// table state without re-estimating); ignored shapes return applied=false.
func (t *Table) Feedback(q *xpath.Path, actual, estimate, baseEstimate float64) (delta Entry, applied bool) {
	if q.IsSimple() {
		labels := q.Labels()
		delta = Entry{
			Hash: pathhash.Path(labels...),
			Card: actual,
			Err:  abs(estimate - actual),
		}
		t.Add(delta)
		return delta, true
	}
	parent, preds, next, ok := leafBranchShape(q)
	if !ok || baseEstimate <= 0 {
		return Entry{}, false
	}
	corr := actual / baseEstimate
	if corr > 1 {
		corr = 1
	}
	delta = Entry{
		Hash:    pathhash.Pattern(parent, preds, next),
		Pattern: true,
		Card:    actual,
		Bsel:    corr,
		BselOK:  true,
		Err:     abs(estimate - actual),
	}
	t.Add(delta)
	return delta, true
}

// leafBranchShape recognizes queries of the form
// /l1/.../p[q1]...[qk]/r where exactly one step carries predicates, all
// predicates are single child-axis name steps, and the predicated step has
// a following step. It returns the pattern components.
func leafBranchShape(q *xpath.Path) (parent string, preds []string, next string, ok bool) {
	predStep := -1
	for i := range q.Steps {
		if len(q.Steps[i].Preds) == 0 {
			continue
		}
		if predStep >= 0 {
			return "", nil, "", false
		}
		predStep = i
	}
	if predStep < 0 || predStep == len(q.Steps)-1 {
		return "", nil, "", false
	}
	st := &q.Steps[predStep]
	nextStep := &q.Steps[predStep+1]
	if st.Wildcard || nextStep.Wildcard || nextStep.Axis != xpath.Child {
		return "", nil, "", false
	}
	for _, p := range st.Preds {
		if len(p.Steps) != 1 {
			return "", nil, "", false
		}
		ps := &p.Steps[0]
		if ps.Axis != xpath.Child || ps.Wildcard || len(ps.Preds) != 0 {
			return "", nil, "", false
		}
		preds = append(preds, ps.Label)
	}
	return st.Label, preds, nextStep.Label, true
}

// StripPreds returns a copy of q with every predicate removed — the base
// query used to compute correlated selectivities from feedback.
func StripPreds(q *xpath.Path) *xpath.Path {
	c := q.Clone()
	for i := range c.Steps {
		c.Steps[i].Preds = nil
	}
	return c
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
