package het

import (
	"math"
	"testing"

	"xseed/internal/estimate"
	"xseed/internal/fixtures"
	"xseed/internal/kernel"
	"xseed/internal/nok"
	"xseed/internal/pathhash"
	"xseed/internal/pathtree"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

type built struct {
	doc *xmldoc.Document
	k   *kernel.Kernel
	pt  *pathtree.Tree
	ev  *nok.Evaluator
}

func build(t *testing.T, xml string) built {
	t.Helper()
	dict := xmldoc.NewDict()
	kb := kernel.NewBuilder(dict)
	pb := pathtree.NewBuilder(dict)
	doc, err := xmldoc.Build(xmldoc.NewParserString(xml), dict, kb, pb)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kb.Kernel()
	if err != nil {
		t.Fatal(err)
	}
	return built{doc, k, pb.Tree(), nok.New(doc)}
}

func TestTableRankingAndBudget(t *testing.T) {
	tab := New(3 * EntrySize) // room for 3 entries
	tab.AddBatch([]Entry{
		{Hash: 1, Card: 10, Err: 5, BselOK: true, Bsel: 0.5},
		{Hash: 2, Card: 20, Err: 50, BselOK: true, Bsel: 0.5},
		{Hash: 3, Card: 30, Err: 1, BselOK: true, Bsel: 0.5},
		{Hash: 4, Card: 40, Err: 100, BselOK: true, Bsel: 0.5},
		{Hash: 5, Card: 50, Err: 20, BselOK: true, Bsel: 0.5},
	})
	if tab.NumEntries() != 5 || tab.NumResident() != 3 {
		t.Fatalf("entries %d resident %d, want 5/3", tab.NumEntries(), tab.NumResident())
	}
	// Top-3 by error: hashes 4 (100), 2 (50), 5 (20).
	for _, h := range []uint32{4, 2, 5} {
		if _, _, _, ok := tab.LookupPath(h); !ok {
			t.Errorf("hash %d should be resident", h)
		}
	}
	for _, h := range []uint32{1, 3} {
		if _, _, _, ok := tab.LookupPath(h); ok {
			t.Errorf("hash %d should be evicted", h)
		}
	}
	if got := tab.SizeBytes(); got != 3*EntrySize {
		t.Errorf("SizeBytes = %d, want %d", got, 3*EntrySize)
	}
	// Raising the budget admits everything.
	tab.SetBudget(0)
	if tab.NumResident() != 5 {
		t.Errorf("resident after unlimited = %d", tab.NumResident())
	}
	// Shrinking to one entry keeps only the worst offender.
	tab.SetBudget(EntrySize)
	if tab.NumResident() != 1 {
		t.Fatalf("resident = %d, want 1", tab.NumResident())
	}
	if card, _, _, ok := tab.LookupPath(4); !ok || card != 40 {
		t.Errorf("worst entry = %v %v", card, ok)
	}
}

func TestTablePatternVsPathNamespaces(t *testing.T) {
	tab := New(0)
	tab.Add(Entry{Hash: 7, Card: 1, Err: 1})
	tab.Add(Entry{Hash: 7, Pattern: true, Bsel: 0.25, BselOK: true, Err: 2})
	if _, _, _, ok := tab.LookupPath(7); !ok {
		t.Error("path entry lost")
	}
	if bsel, ok := tab.LookupPattern(7); !ok || bsel != 0.25 {
		t.Errorf("pattern entry = %v %v", bsel, ok)
	}
	// Replacement updates in place.
	tab.Add(Entry{Hash: 7, Pattern: true, Bsel: 0.75, BselOK: true, Err: 3})
	if tab.NumEntries() != 2 {
		t.Fatalf("entries = %d, want 2", tab.NumEntries())
	}
	if bsel, _ := tab.LookupPattern(7); bsel != 0.75 {
		t.Errorf("pattern not replaced: %v", bsel)
	}
	// Pattern without valid bsel is not served.
	tab.Add(Entry{Hash: 9, Pattern: true, Bsel: 0.1, BselOK: false, Err: 1})
	if _, ok := tab.LookupPattern(9); ok {
		t.Error("pattern with invalid bsel served")
	}
}

func TestPrecomputePathEntriesFigure2(t *testing.T) {
	b := build(t, fixtures.PaperFigure2)
	tab, stats := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{MBP: 0})
	if stats.PathEntries != 14 {
		t.Errorf("path entries = %d, want 14 (path tree size)", stats.PathEntries)
	}
	if stats.PatternEntries != 0 || stats.NokEvaluations != 0 {
		t.Errorf("MBP=0 built patterns: %+v", stats)
	}
	// Figure 2's simple paths estimate exactly, so every error is 0.
	for _, e := range tab.Entries() {
		if e.Err != 0 {
			t.Errorf("entry %x has error %g on an exact document", e.Hash, e.Err)
		}
	}
	// Lookup of a known path returns the actual card and bsel.
	card, bsel, bselOK, ok := tab.LookupPath(pathhash.Path("a", "c", "s", "s"))
	if !ok || !bselOK || card != 2 || bsel != 0.4 {
		t.Errorf("lookup a/c/s/s = %v %v %v %v", card, bsel, bselOK, ok)
	}
}

func TestPrecomputePatternsFigure2(t *testing.T) {
	b := build(t, fixtures.PaperFigure2)
	tab, stats := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{MBP: 1, BselThreshold: 0.5})
	if stats.PatternEntries != 4 {
		t.Errorf("pattern entries = %d, want 4 (s[t]/p, s[t]/s, s[s]/t, s[s]/p)", stats.PatternEntries)
	}
	bsel, ok := tab.LookupPattern(pathhash.Pattern("s", []string{"t"}, "p"))
	if !ok || !approx(bsel, 4.0/9.0, 1e-12) {
		t.Errorf("corr bsel s[t]/p = %v %v, want 4/9", bsel, ok)
	}
	// With the HET, the branching estimate becomes exact on the dominant
	// rooted path: |/a/c/s[t]/p| = 9 × 4/9 = 4 (actual 4; bare kernel said
	// 3.6).
	est := estimate.New(b.k, estimate.Options{HET: tab})
	got, _ := est.EstimateString("/a/c/s[t]/p")
	if !approx(got, 4, 1e-9) {
		t.Errorf("|/a/c/s[t]/p| with HET = %g, want 4", got)
	}
}

// TestPrecomputeFigure4EndToEnd exercises the full Section 5 flow on the
// document whose kernel is Figure 4: path entries repair the ancestor
// independence error of Example 4; pattern entries repair the sibling
// independence error of Example 5.
func TestPrecomputeFigure4EndToEnd(t *testing.T) {
	b := build(t, fixtures.PaperFigure4)
	tab, stats := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{MBP: 1, BselThreshold: 0.5})
	if stats.PathEntries == 0 || stats.PatternEntries == 0 {
		t.Fatalf("stats = %+v", stats)
	}
	// The aggregated relative pattern d[f]/e: (8+0)/(18+2) = 0.4.
	bsel, ok := tab.LookupPattern(pathhash.Pattern("d", []string{"f"}, "e"))
	if !ok || !approx(bsel, 0.4, 1e-12) {
		t.Fatalf("corr bsel d[f]/e = %v %v, want 0.4", bsel, ok)
	}

	bare := estimate.New(b.k, estimate.Options{})
	with := estimate.New(b.k, estimate.Options{HET: tab})

	// Simple paths become exact.
	b.pt.Walk(func(n *pathtree.Node) {
		q := xpath.MustParse(n.PathString(b.pt.Dict()))
		if got := with.Estimate(q); !approx(got, float64(n.Card), 1e-9) {
			t.Errorf("|%s| with HET = %g, want %d", n.PathString(b.pt.Dict()), got, n.Card)
		}
	})

	// Example 4's error disappears: bare 7.14 -> exact 18.
	if got, _ := with.EstimateString("/a/b/d/e"); !approx(got, 18, 1e-9) {
		t.Errorf("|/a/b/d/e| with HET = %g, want 18", got)
	}

	// Example 5's error shrinks: actual 8, bare 2.04, with HET 18×0.4=7.2.
	actual, _ := b.ev.CountString("/a/b/d[f]/e")
	bareEst, _ := bare.EstimateString("/a/b/d[f]/e")
	withEst, _ := with.EstimateString("/a/b/d[f]/e")
	if math.Abs(withEst-float64(actual)) >= math.Abs(bareEst-float64(actual)) {
		t.Errorf("HET did not improve: bare %g, with %g, actual %d", bareEst, withEst, actual)
	}
	if !approx(withEst, 7.2, 1e-9) {
		t.Errorf("|/a/b/d[f]/e| with HET = %g, want 7.2", withEst)
	}
}

func TestPrecomputeMBP2(t *testing.T) {
	// A parent with three children, two of which can serve as predicates:
	// MBP=2 must enumerate two-predicate patterns.
	xml := `<r>
	  <x><e/><f/><g/></x><x><e/><f/><g/></x><x><f/><g/></x>
	  <x><g/></x><x><g/></x><x><g/></x><x><g/></x><x><g/></x><x><g/></x><x><g/></x>
	</r>`
	b := build(t, xml)
	tab, stats := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{MBP: 2, BselThreshold: 0.5})
	if stats.PatternEntries == 0 {
		t.Fatal("no pattern entries")
	}
	// x[e][f]/g: actual parents with both e and f: 2; base |/r/x/g| = 10 →
	// corr 0.2.
	bsel, ok := tab.LookupPattern(pathhash.Pattern("x", []string{"e", "f"}, "g"))
	if !ok {
		t.Fatal("2BP pattern x[e][f]/g missing")
	}
	if !approx(bsel, 0.2, 1e-12) {
		t.Errorf("corr bsel = %g, want 0.2", bsel)
	}
	// The estimator uses it for the 2-predicate query.
	est := estimate.New(b.k, estimate.Options{HET: tab})
	got, _ := est.EstimateString("/r/x[e][f]/g")
	if !approx(got, 2, 1e-9) {
		t.Errorf("|/r/x[e][f]/g| = %g, want 2 (exact via 2BP HET)", got)
	}
	// MBP=1 on the same data must not contain the pair pattern.
	tab1, _ := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{MBP: 1, BselThreshold: 0.5})
	if _, ok := tab1.LookupPattern(pathhash.Pattern("x", []string{"e", "f"}, "g")); ok {
		t.Error("MBP=1 table contains a 2-predicate pattern")
	}
}

// TestFalsePositivePathsZeroed: the kernel derives /r/a/b/d although no d
// exists under a/b (Observation 1's false positives); pre-computation must
// record a zero-cardinality entry that the estimator then honors.
func TestFalsePositivePathsZeroed(t *testing.T) {
	b := build(t, "<r><a><b/></a><c><b><d/></b></c></r>")
	bare := estimate.New(b.k, estimate.Options{})
	if got, _ := bare.EstimateString("/r/a/b/d"); got <= 0 {
		t.Fatalf("fixture drift: bare estimate of the false positive = %g, want > 0", got)
	}
	tab, _ := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{MBP: 0})
	card, _, _, ok := tab.LookupPath(pathhash.Path("r", "a", "b", "d"))
	if !ok || card != 0 {
		t.Fatalf("false-positive entry: card=%v ok=%v, want 0/true", card, ok)
	}
	with := estimate.New(b.k, estimate.Options{HET: tab})
	if got, _ := with.EstimateString("/r/a/b/d"); got != 0 {
		t.Errorf("with HET |/r/a/b/d| = %g, want 0", got)
	}
	// Real paths stay exact.
	if got, _ := with.EstimateString("/r/c/b/d"); !approx(got, 1, 1e-9) {
		t.Errorf("|/r/c/b/d| = %g, want 1", got)
	}
	// Complex queries over the union also improve: //a/b/d is 0.
	if got, _ := with.EstimateString("//a/b/d"); got != 0 {
		t.Errorf("|//a/b/d| with HET = %g, want 0", got)
	}
}

// TestThresholdPrunedPathsStillRecorded: path tree nodes pruned from the
// EPT by CARD_THRESHOLD still get entries (error = actual cardinality).
func TestThresholdPrunedPathsStillRecorded(t *testing.T) {
	b := build(t, fixtures.PaperFigure2)
	tab, _ := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{
		MBP:             0,
		EstimateOptions: estimate.Options{CardThreshold: 100}, // prune everything
	})
	card, _, _, ok := tab.LookupPath(pathhash.Path("a", "c", "s", "p"))
	if !ok || card != 9 {
		t.Errorf("pruned path entry card=%v ok=%v, want 9/true", card, ok)
	}
}

func TestMaxCandidatesPerNodeCap(t *testing.T) {
	b := build(t, fixtures.PaperFigure2)
	_, unbounded := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{MBP: 1, BselThreshold: 0.99})
	_, capped := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{MBP: 1, BselThreshold: 0.99, MaxCandidatesPerNode: 1})
	if capped.NokEvaluations >= unbounded.NokEvaluations {
		t.Errorf("cap had no effect: %d vs %d", capped.NokEvaluations, unbounded.NokEvaluations)
	}
}

func TestFeedbackSimplePath(t *testing.T) {
	b := build(t, fixtures.PaperFigure4)
	tab := New(0)
	est := estimate.New(b.k, estimate.Options{HET: tab})

	q := xpath.MustParse("/a/b/d/e")
	bare := est.Estimate(q)
	actual := float64(b.ev.Count(q))
	tab.Feedback(q, actual, bare, 0)

	if got := est.Estimate(q); !approx(got, actual, 1e-9) {
		t.Errorf("after feedback |/a/b/d/e| = %g, want %g", got, actual)
	}
	// The entry has card only; bsel stays from the kernel (BselOK false).
	_, _, bselOK, ok := tab.LookupPath(pathhash.Path("a", "b", "d", "e"))
	if !ok || bselOK {
		t.Errorf("feedback entry: ok=%v bselOK=%v, want true/false", ok, bselOK)
	}
}

func TestFeedbackBranching(t *testing.T) {
	b := build(t, fixtures.PaperFigure4)
	tab := New(0)
	est := estimate.New(b.k, estimate.Options{HET: tab})

	q := xpath.MustParse("/a/b/d[f]/e")
	actual := float64(b.ev.Count(q))
	estimateBefore := est.Estimate(q)
	base := est.Estimate(StripPreds(q)) // |/a/b/d/e| estimate
	tab.Feedback(q, actual, estimateBefore, base)

	bsel, ok := tab.LookupPattern(pathhash.Pattern("d", []string{"f"}, "e"))
	if !ok {
		t.Fatal("branching feedback did not create a pattern entry")
	}
	if bsel <= 0 || bsel > 1 {
		t.Errorf("corr bsel = %g out of range", bsel)
	}
	after := est.Estimate(q)
	if math.Abs(after-actual) > math.Abs(estimateBefore-actual) {
		t.Errorf("feedback worsened estimate: before %g after %g actual %g",
			estimateBefore, after, actual)
	}
}

func TestFeedbackIgnoresComplexShapes(t *testing.T) {
	tab := New(0)
	for _, qs := range []string{
		"/a/b[c]/d[e]/f", // two predicated steps
		"/a/b[c/x]/d",    // multi-step predicate
		"/a/b[.//c]/d",   // descendant predicate
		"/a/b[*]/d",      // wildcard predicate
		"/a/*[c]/d",      // wildcard parent
		"/a/b[c]",        // predicate on the result step
	} {
		q := xpath.MustParse(qs)
		tab.Feedback(q, 10, 5, 20)
	}
	if tab.NumEntries() != 0 {
		t.Errorf("complex shapes created %d entries", tab.NumEntries())
	}
}

// TestStreamMatcherWithHET cross-validates the streaming matcher against
// the materialized one with hyper-edge tables in play (path overrides and
// correlated pattern bsels).
func TestStreamMatcherWithHET(t *testing.T) {
	b := build(t, fixtures.PaperFigure4)
	tab, _ := Precompute(b.doc, b.pt, b.k, PrecomputeOptions{MBP: 2, BselThreshold: 0.5})
	opt := estimate.Options{HET: tab}
	est := estimate.New(b.k, opt)
	for _, qs := range []string{
		"/a/b/d/e", "/a/c/d/e", "/a/b/d[f]/e", "/a/c/d[e]/f",
		"//d[f]/e", "//d[e][f]/e", "/a/b/d[e][f]/e",
	} {
		q := xpath.MustParse(qs)
		want := est.Estimate(q)
		got, ok := estimate.StreamEstimate(b.k, q, opt)
		if !ok {
			t.Fatalf("%s: not streamable", qs)
		}
		if !approx(got, want, 1e-9) {
			t.Errorf("%s: stream %g != materialized %g", qs, got, want)
		}
	}
}

func TestStripPreds(t *testing.T) {
	q := xpath.MustParse("/a/b[c][d]/e[f/g]")
	s := StripPreds(q)
	if s.String() != "/a/b/e" {
		t.Errorf("StripPreds = %q, want /a/b/e", s.String())
	}
	if q.String() != "/a/b[c][d]/e[f/g]" {
		t.Errorf("original mutated: %q", q.String())
	}
}

// TestFeedbackPreservesPrecomputedBsel pins the merge-on-upsert fix: a
// card-only query feedback (the simple-path branch builds an entry with
// BselOK=false) must not wipe a path's precomputed backward selectivity —
// only the cardinality and error refresh.
func TestFeedbackPreservesPrecomputedBsel(t *testing.T) {
	tab := New(0)
	h := pathhash.Path("a", "b")
	tab.Add(Entry{Hash: h, Card: 10, Bsel: 0.5, BselOK: true, Err: 3})

	q := xpath.MustParse("/a/b")
	delta, applied := tab.Feedback(q, 12, 10, 0)
	if !applied || delta.BselOK {
		t.Fatalf("feedback delta = %+v applied=%v, want card-only applied", delta, applied)
	}
	card, bsel, bselOK, ok := tab.LookupPath(h)
	if !ok {
		t.Fatal("entry lost after feedback")
	}
	if card != 12 {
		t.Errorf("card = %g, want fed-back 12", card)
	}
	if !bselOK || bsel != 0.5 {
		t.Errorf("bsel = %g ok=%v after card-only feedback, want precomputed 0.5 preserved", bsel, bselOK)
	}
	// Replaying the recorded delta onto a copy of the pre-feedback table
	// converges to the same merged state (what the store's log replay does).
	replay := New(0)
	replay.Add(Entry{Hash: h, Card: 10, Bsel: 0.5, BselOK: true, Err: 3})
	replay.Add(delta)
	rc, rb, rok, _ := replay.LookupPath(h)
	if rc != card || rb != bsel || rok != bselOK {
		t.Errorf("replayed entry = (%g, %g, %v), live = (%g, %g, %v)", rc, rb, rok, card, bsel, bselOK)
	}
	// An entry that does carry a selectivity still replaces wholesale.
	tab.Add(Entry{Hash: h, Card: 20, Bsel: 0.9, BselOK: true, Err: 1})
	if _, bsel, _, _ := tab.LookupPath(h); bsel != 0.9 {
		t.Errorf("bsel = %g after full upsert, want 0.9", bsel)
	}
}

// TestTableIncrementalRankOrder cross-checks the incremental rank
// maintenance against a from-scratch rebuild over a randomized workload of
// inserts, upserts, and budget changes.
func TestTableIncrementalRankOrder(t *testing.T) {
	tab := New(8 * EntrySize)
	ref := make(map[tkey]Entry)
	rnd := uint32(1)
	next := func() uint32 { rnd = rnd*1664525 + 1013904223; return rnd }
	for i := 0; i < 2000; i++ {
		e := Entry{
			Hash:    next()%64 + 1,
			Pattern: next()%2 == 0,
			Card:    float64(next() % 100),
			Err:     float64(next() % 50),
		}
		tab.Add(e)
		k := tkey{e.Hash, e.Pattern}
		if old, ok := ref[k]; ok && !e.BselOK && old.BselOK {
			e.Bsel, e.BselOK = old.Bsel, old.BselOK
		}
		ref[k] = e
		if i%97 == 0 {
			tab.SetBudget(int(next()%16+1) * EntrySize)
		}
	}
	all := tab.Entries()
	if len(all) != len(ref) {
		t.Fatalf("table has %d entries, reference %d", len(all), len(ref))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Err < all[i].Err {
			t.Fatalf("rank order violated at %d: %g < %g", i, all[i-1].Err, all[i].Err)
		}
	}
	for i, e := range all {
		want, ok := ref[tkey{e.Hash, e.Pattern}]
		if !ok || want.Card != e.Card || want.Err != e.Err {
			t.Errorf("entry %d (%x,%v) = %+v, want %+v", i, e.Hash, e.Pattern, e, want)
		}
	}
	// The resident set is exactly the in-budget prefix.
	wantRes := tab.Budget() / EntrySize
	if wantRes > len(all) {
		wantRes = len(all)
	}
	if tab.NumResident() != wantRes {
		t.Errorf("resident = %d, want %d", tab.NumResident(), wantRes)
	}
	for i, e := range all {
		var ok bool
		if e.Pattern {
			if !e.BselOK {
				continue // unservable regardless of residency
			}
			_, ok = tab.LookupPattern(e.Hash)
		} else {
			_, _, _, ok = tab.LookupPath(e.Hash)
		}
		if got, want := ok, i < wantRes; got != want {
			t.Errorf("entry %d resident=%v, want %v", i, got, want)
		}
	}
}
