package het

import (
	"sort"

	"xseed/internal/estimate"
	"xseed/internal/kernel"
	"xseed/internal/nok"
	"xseed/internal/pathhash"
	"xseed/internal/pathtree"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

// PrecomputeOptions configure HET pre-computation (paper Section 5, "HET
// Construction").
type PrecomputeOptions struct {
	// MBP is the maximum number of branching predicates in candidate
	// patterns (0 = simple paths only, the bare kernel case; the paper
	// recommends 1 as the best construction-time/accuracy tradeoff and
	// shows 2 costing ~10x for ~8% further error reduction — Figure 6).
	MBP int

	// BselThreshold: branching candidates are enumerated only for path tree
	// nodes whose backward selectivity is below this threshold (the paper
	// uses 0.1 everywhere except Treebank's 0.001). Zero means 0.1.
	BselThreshold float64

	// MaxCandidatesPerNode caps branching-pattern enumeration per path tree
	// node, bounding the combinatorial blowup on bushy schemas. Zero means
	// no cap.
	MaxCandidatesPerNode int

	// Budget is the resident memory budget of the resulting table in bytes
	// (<= 0: unlimited).
	Budget int

	// NoFalsePositiveEntries skips zero-cardinality entries for paths the
	// kernel derives but the document lacks (ablation knob; see the walk
	// comment in Precompute for why they matter).
	NoFalsePositiveEntries bool

	// Estimator options used when ranking entries by estimation error.
	EstimateOptions estimate.Options
}

func (o PrecomputeOptions) bselThreshold() float64 {
	if o.BselThreshold == 0 {
		return 0.1
	}
	return o.BselThreshold
}

// PrecomputeStats reports construction effort, for the Figure 6 experiment.
type PrecomputeStats struct {
	PathEntries    int
	PatternEntries int
	NokEvaluations int // actual-cardinality evaluations over the document
}

// Precompute builds a hyper-edge table for the document: the actual
// cardinality and backward selectivity of every simple path (from the path
// tree, no document scan needed), plus correlated backward selectivities
// for leaf-level branching patterns with up to MBP predicates, evaluated
// with the NoK operator. Entries are ranked by absolute estimation error of
// the bare kernel.
func Precompute(doc *xmldoc.Document, pt *pathtree.Tree, k *kernel.Kernel, opt PrecomputeOptions) (*Table, PrecomputeStats) {
	var stats PrecomputeStats
	dict := pt.Dict()
	eopt := opt.EstimateOptions
	eopt.HET = nil // rank against the bare kernel
	eopt.ReuseEPT = true
	est := estimate.New(k, eopt)
	ev := nok.New(doc)

	var entries []Entry

	// Simple paths: walk the path tree and the EPT in lockstep; both index
	// rooted label paths, so each node costs O(children) instead of a full
	// matcher run. The walk covers the union of the two trees:
	//
	//   - paths in both: entry with the actual cardinality and bsel, error
	//     |est - actual|;
	//   - paths only in the path tree (pruned from the EPT by
	//     CARD_THRESHOLD): entry with the actual values, error = actual;
	//   - paths only in the EPT (the kernel's false positives,
	//     Observation 1): entry with cardinality 0, error = estimate.
	//     The kernel cannot tell these from real paths, and they dominate
	//     complex-path error on heterogeneous data; the path tree knows
	//     they do not exist, so pre-computation records them.
	root, _ := estimate.BuildEPT(k, eopt)
	var walk func(pn *pathtree.Node, en *estimate.EPTNode, h uint32)
	walk = func(pn *pathtree.Node, en *estimate.EPTNode, h uint32) {
		// At least one of pn, en is non-nil; they describe the same rooted
		// label path.
		var label xmldoc.LabelID
		if pn != nil {
			label = pn.Label
		} else {
			label = en.Label
		}
		h = pathhash.AddLabel(h, dict.Name(label))
		var estCard, actCard, actBsel float64
		if en != nil {
			estCard = en.Card
		}
		if pn != nil {
			actCard = float64(pn.Card)
			actBsel = pn.Bsel()
		}
		entries = append(entries, Entry{
			Hash:   h,
			Card:   actCard,
			Bsel:   actBsel,
			BselOK: true,
			Err:    abs(estCard - actCard),
		})
		// Children over the union of labels, path tree first for
		// deterministic order.
		seen := map[xmldoc.LabelID]bool{}
		if pn != nil {
			for _, pc := range pn.Children {
				seen[pc.Label] = true
				walk(pc, eptChild(en, pc.Label), h)
			}
		}
		if en != nil && !opt.NoFalsePositiveEntries {
			for _, ec := range en.Children {
				if !seen[ec.Label] {
					walk(nil, ec, h)
				}
			}
		}
	}
	switch {
	case pt.Root != nil && root != nil && pt.Root.Label == root.Label:
		walk(pt.Root, root, pathhash.Basis)
	case pt.Root != nil:
		walk(pt.Root, nil, pathhash.Basis)
	case root != nil:
		walk(nil, root, pathhash.Basis)
	}
	stats.PathEntries = len(entries)

	// Branching patterns. Candidates follow the paper: for each path tree
	// node v with bsel(v) < BSEL_THRESHOLD, enumerate leaf-level branching
	// paths u[v...]/r where u is v's parent and r a distinct sibling.
	// Patterns are relative (Table 1 stores d[e]/f, not /a/b/d[e]/f), so
	// occurrences under different rooted paths aggregate.
	if opt.MBP >= 1 && pt.Root != nil {
		type acc struct {
			parent  string
			preds   []string
			next    string
			act     float64
			base    float64
			est     float64
			estBase float64
		}
		accs := map[uint32]*acc{}
		threshold := opt.bselThreshold()

		pt.Walk(func(u *pathtree.Node) {
			if len(u.Children) < 2 {
				return
			}
			// Predicate candidates: children below the bsel threshold.
			var cands []*pathtree.Node
			for _, v := range u.Children {
				if v.Bsel() < threshold {
					cands = append(cands, v)
				}
			}
			if len(cands) == 0 {
				return
			}
			uPath := u.PathString(dict)
			emitted := 0
			emit := func(preds []*pathtree.Node, r *pathtree.Node) bool {
				if opt.MaxCandidatesPerNode > 0 && emitted >= opt.MaxCandidatesPerNode {
					return false
				}
				emitted++
				predLabels := make([]string, len(preds))
				qs := uPath
				for i, p := range preds {
					predLabels[i] = dict.Name(p.Label)
					qs += "[" + predLabels[i] + "]"
				}
				rName := dict.Name(r.Label)
				qs += "/" + rName
				parentName := dict.Name(u.Label)
				h := pathhash.Pattern(parentName, predLabels, rName)
				a := accs[h]
				if a == nil {
					a = &acc{parent: parentName, preds: predLabels, next: rName}
					accs[h] = a
				}
				q := xpath.MustParse(qs)
				actual := float64(ev.Count(q))
				stats.NokEvaluations++
				a.act += actual
				a.base += float64(r.Card)
				a.est += est.Estimate(q)
				a.estBase += float64(r.Card) // base is exact from the path tree
				return true
			}

			// Predicate sets of size 1..MBP and sibling continuations. Per
			// the paper, a below-threshold node need only be *one of* the
			// predicates; the others range over all distinct siblings.
			// Subsets are enumerated once each (index-ascending), which is
			// what makes 2BP/3BP combinatorially more expensive than 1BP
			// (Figure 6's ~10× construction time).
			isCand := func(v *pathtree.Node) bool { return v.Bsel() < threshold }
			var choose func(start int, chosen []*pathtree.Node, hasCand bool) bool
			choose = func(start int, chosen []*pathtree.Node, hasCand bool) bool {
				if len(chosen) >= 1 && hasCand {
					for _, r := range u.Children {
						if containsNode(chosen, r) {
							continue
						}
						if !emit(chosen, r) {
							return false
						}
					}
				}
				if len(chosen) == opt.MBP {
					return true
				}
				for i := start; i < len(u.Children); i++ {
					v := u.Children[i]
					if !choose(i+1, append(chosen, v), hasCand || isCand(v)) {
						return false
					}
				}
				return true
			}
			choose(0, nil, false)
		})

		hashes := make([]uint32, 0, len(accs))
		for h := range accs {
			hashes = append(hashes, h)
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		for _, h := range hashes {
			a := accs[h]
			if a.base <= 0 {
				continue
			}
			corr := a.act / a.base
			if corr > 1 {
				corr = 1
			}
			entries = append(entries, Entry{
				Hash:    h,
				Pattern: true,
				Card:    a.act,
				Bsel:    corr,
				BselOK:  true,
				Err:     abs(a.est - a.act),
			})
			stats.PatternEntries++
		}
	}

	t := New(opt.Budget)
	t.AddBatch(entries)
	return t, stats
}

func containsNode(s []*pathtree.Node, n *pathtree.Node) bool {
	for _, x := range s {
		if x == n {
			return true
		}
	}
	return false
}

func eptChild(en *estimate.EPTNode, label xmldoc.LabelID) *estimate.EPTNode {
	if en == nil {
		return nil
	}
	for _, c := range en.Children {
		if c.Label == label {
			return c
		}
	}
	return nil
}
