package het

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Serialization format:
//
//	magic "XSH1" (4 bytes)
//	budget (varint, 0 = unlimited)
//	numEntries (varint), then per entry:
//	    hash (4 bytes LE), flags (1 byte: bit0 pattern, bit1 bselOK),
//	    card (8 bytes float LE), bsel (8 bytes float LE),
//	    err (8 bytes float LE)
//
// Entries serialize in rank order, so loading reproduces the resident set.

var hetMagic = [4]byte{'X', 'S', 'H', '1'}

// WriteTo serializes the full table (all entries, not only resident).
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		m, err := bw.Write(p)
		n += int64(m)
		return err
	}
	if err := write(hetMagic[:]); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	budget := t.budget
	if budget < 0 {
		budget = 0
	}
	if err := write(buf[:binary.PutUvarint(buf[:], uint64(budget))]); err != nil {
		return n, err
	}
	if err := write(buf[:binary.PutUvarint(buf[:], uint64(len(t.all)))]); err != nil {
		return n, err
	}
	var rec [29]byte
	for _, e := range t.all {
		binary.LittleEndian.PutUint32(rec[0:], e.Hash)
		var flags byte
		if e.Pattern {
			flags |= 1
		}
		if e.BselOK {
			flags |= 2
		}
		rec[4] = flags
		binary.LittleEndian.PutUint64(rec[5:], math.Float64bits(e.Card))
		binary.LittleEndian.PutUint64(rec[13:], math.Float64bits(e.Bsel))
		binary.LittleEndian.PutUint64(rec[21:], math.Float64bits(e.Err))
		if err := write(rec[:]); err != nil {
			return n, err
		}
	}
	if err := bw.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// Read deserializes a table written by WriteTo. When r is a *bufio.Reader
// it is used directly, so tables can be embedded in larger streams.
func Read(r io.Reader) (*Table, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("het: read header: %w", err)
	}
	if m != hetMagic {
		return nil, errors.New("het: bad magic")
	}
	budget, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("het: budget: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("het: entry count: %w", err)
	}
	if count > 1<<28 {
		return nil, fmt.Errorf("het: implausible entry count %d", count)
	}
	t := New(int(budget))
	entries := make([]Entry, 0, count)
	var rec [29]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("het: entry %d: %w", i, err)
		}
		entries = append(entries, Entry{
			Hash:    binary.LittleEndian.Uint32(rec[0:]),
			Pattern: rec[4]&1 != 0,
			BselOK:  rec[4]&2 != 0,
			Card:    math.Float64frombits(binary.LittleEndian.Uint64(rec[5:])),
			Bsel:    math.Float64frombits(binary.LittleEndian.Uint64(rec[13:])),
			Err:     math.Float64frombits(binary.LittleEndian.Uint64(rec[21:])),
		})
	}
	t.AddBatch(entries)
	return t, nil
}
