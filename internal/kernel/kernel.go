// Package kernel implements the XSEED kernel (paper Section 3): an
// edge-labeled label-split graph summarizing an XML document. Each vertex
// stands for one element label; each edge (u,v) carries a vector of integer
// pairs indexed by recursion level — at level i, Levels[i].P parents mapped
// to u have a total of Levels[i].C children mapped to v (Definition 4).
//
// The kernel is built in a single event pass (paper Algorithm 1) using the
// counter-stacks structure for O(1) recursion levels, supports incremental
// add/remove of subtrees (Section 3, "Synopsis update"), and serializes to
// a compact binary form whose length is the synopsis size used for memory
// budget accounting.
package kernel

import (
	"fmt"
	"sort"

	"xseed/internal/counterstack"
	"xseed/internal/xmldoc"
)

// Level is one recursion-level entry of an edge label: P parent elements
// have a total of C child elements at this level.
type Level struct {
	P int64 // parent-count  (e[i][P_CNT])
	C int64 // child-count   (e[i][C_CNT])
}

// Edge is a directed kernel edge with its per-recursion-level label vector.
// Levels[i] describes parent/child counts at recursion level i of the
// rooted path ending with this edge.
type Edge struct {
	From, To xmldoc.LabelID
	Levels   []Level
}

// level returns a pointer to Levels[i], growing the vector as needed.
func (e *Edge) level(i int) *Level {
	for len(e.Levels) <= i {
		e.Levels = append(e.Levels, Level{})
	}
	return &e.Levels[i]
}

// ChildSum returns the sum of child-counts at recursion level i and greater
// (Observation 3: the result count of q//u//v at recursion level ≥ i).
func (e *Edge) ChildSum(from int) int64 {
	var s int64
	for i := from; i < len(e.Levels); i++ {
		s += e.Levels[i].C
	}
	return s
}

// Vertex is a kernel vertex: one element label with its adjacency.
type Vertex struct {
	Label xmldoc.LabelID
	Out   []*Edge // ordered by To label for deterministic traversal
	In    []*Edge
}

// OutTo returns the out-edge to label, or nil.
func (v *Vertex) OutTo(to xmldoc.LabelID) *Edge {
	i := sort.Search(len(v.Out), func(i int) bool { return v.Out[i].To >= to })
	if i < len(v.Out) && v.Out[i].To == to {
		return v.Out[i]
	}
	return nil
}

// Kernel is the XSEED kernel of a document.
type Kernel struct {
	dict      *xmldoc.Dict
	verts     map[xmldoc.LabelID]*Vertex
	rootLabel xmldoc.LabelID
	rootCount int64
	hasRoot   bool
}

// New returns an empty kernel whose labels belong to dict.
func New(dict *xmldoc.Dict) *Kernel {
	return &Kernel{dict: dict, verts: make(map[xmldoc.LabelID]*Vertex)}
}

// Dict returns the label dictionary.
func (k *Kernel) Dict() *xmldoc.Dict { return k.dict }

// HasRoot reports whether the kernel has a document root vertex (subtree
// kernels produced for incremental update do not).
func (k *Kernel) HasRoot() bool { return k.hasRoot }

// RootLabel returns the document root label. Valid only when HasRoot.
func (k *Kernel) RootLabel() xmldoc.LabelID { return k.rootLabel }

// RootCount returns the number of document roots summarized (1 for a single
// document; more after merging several documents with the same root label).
func (k *Kernel) RootCount() int64 { return k.rootCount }

// Vertex returns the vertex for label, or nil.
func (k *Kernel) Vertex(label xmldoc.LabelID) *Vertex { return k.verts[label] }

// VertexByName returns the vertex for the label string, or nil.
func (k *Kernel) VertexByName(name string) *Vertex {
	id, ok := k.dict.Lookup(name)
	if !ok {
		return nil
	}
	return k.verts[id]
}

// NumVertices returns the number of vertices.
func (k *Kernel) NumVertices() int { return len(k.verts) }

// NumEdges returns the number of edges.
func (k *Kernel) NumEdges() int {
	n := 0
	for _, v := range k.verts {
		n += len(v.Out)
	}
	return n
}

// Edge returns the edge from→to, or nil.
func (k *Kernel) Edge(from, to xmldoc.LabelID) *Edge {
	v := k.verts[from]
	if v == nil {
		return nil
	}
	return v.OutTo(to)
}

// EdgeByName returns the edge between two label strings, or nil.
func (k *Kernel) EdgeByName(from, to string) *Edge {
	f, ok1 := k.dict.Lookup(from)
	t, ok2 := k.dict.Lookup(to)
	if !ok1 || !ok2 {
		return nil
	}
	return k.Edge(f, t)
}

// getVertex returns the vertex for label, creating it if absent
// (GET-VERTEX in Algorithm 1).
func (k *Kernel) getVertex(label xmldoc.LabelID) *Vertex {
	v := k.verts[label]
	if v == nil {
		v = &Vertex{Label: label}
		k.verts[label] = v
	}
	return v
}

// getEdge returns the edge u→v, creating it if absent (GET-EDGE in
// Algorithm 1).
func (k *Kernel) getEdge(u, v *Vertex) *Edge {
	if e := u.OutTo(v.Label); e != nil {
		return e
	}
	e := &Edge{From: u.Label, To: v.Label}
	i := sort.Search(len(u.Out), func(i int) bool { return u.Out[i].To >= v.Label })
	u.Out = append(u.Out, nil)
	copy(u.Out[i+1:], u.Out[i:])
	u.Out[i] = e
	j := sort.Search(len(v.In), func(i int) bool { return v.In[i].From >= u.Label })
	v.In = append(v.In, nil)
	copy(v.In[j+1:], v.In[j:])
	v.In[j] = e
	return e
}

// TotalChildren returns S(v, level): the sum of child-counts at the given
// recursion level over all in-edges of the vertex labeled v, plus the root
// count when v is the document root label at level 0 (the root has no
// in-edge; the paper initializes its cardinality to 1). This is the
// denominator of both selectivity recurrences (Definition 5).
func (k *Kernel) TotalChildren(label xmldoc.LabelID, level int) int64 {
	var s int64
	if v := k.verts[label]; v != nil {
		for _, e := range v.In {
			if level < len(e.Levels) {
				s += e.Levels[level].C
			}
		}
	}
	if k.hasRoot && label == k.rootLabel && level == 0 {
		s += k.rootCount
	}
	return s
}

// VertexCount returns the total number of document elements mapped to the
// vertex (sum of in-edge child-counts over all levels, plus root count).
func (k *Kernel) VertexCount(label xmldoc.LabelID) int64 {
	var s int64
	if v := k.verts[label]; v != nil {
		for _, e := range v.In {
			for i := range e.Levels {
				s += e.Levels[i].C
			}
		}
	}
	if k.hasRoot && label == k.rootLabel {
		s += k.rootCount
	}
	return s
}

// MaxRecLevel returns the maximum recursion level represented on any edge.
func (k *Kernel) MaxRecLevel() int {
	max := 0
	for _, v := range k.verts {
		for _, e := range v.Out {
			if n := len(e.Levels) - 1; n > max {
				max = n
			}
		}
	}
	return max
}

// SizeBytes returns the memory-budget size of the kernel. The accounting
// matches the serialized form: 8 bytes per vertex, 4 bytes per edge header,
// and 8 bytes (two 32-bit counters) per recursion-level entry.
func (k *Kernel) SizeBytes() int {
	n := 8 * len(k.verts)
	for _, v := range k.verts {
		for _, e := range v.Out {
			n += 4 + 8*len(e.Levels)
		}
	}
	return n
}

// String renders the kernel edges in the paper's notation, for debugging
// and golden tests.
func (k *Kernel) String() string {
	labels := make([]xmldoc.LabelID, 0, len(k.verts))
	for l := range k.verts {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	out := ""
	for _, l := range labels {
		v := k.verts[l]
		for _, e := range v.Out {
			out += fmt.Sprintf("(%s,%s) = (", k.dict.Name(e.From), k.dict.Name(e.To))
			for i, lv := range e.Levels {
				if i > 0 {
					out += ", "
				}
				out += fmt.Sprintf("%d:%d", lv.P, lv.C)
			}
			out += ")\n"
		}
	}
	return out
}

// Builder constructs a kernel from an event stream (paper Algorithm 1).
// It implements xmldoc.Sink.
type Builder struct {
	k *Kernel

	// rlCnt is the counter-stacks structure giving the recursion level of
	// the rooted path in expected O(1) per event.
	rlCnt *counterstack.Stack[xmldoc.LabelID]

	// pathStk mirrors Algorithm 1's path_stk: per open element, the kernel
	// vertex and the set of (edge, level) pairs of its children, used to
	// increment parent-counts once per distinct pair on the close event.
	pathStk []builderFrame

	// phantomDepth marks the outermost phantomDepth entries of pathStk as
	// context-only (used by subtree kernels): edges between two phantom
	// frames are not counted.
	phantomDepth int

	err error
}

type builderFrame struct {
	v        *Vertex
	outEdges []edgeLevel // distinct (edge, level) pairs of this element's children
	phantom  bool
}

type edgeLevel struct {
	e *Edge
	l int
}

// NewBuilder returns a kernel builder.
func NewBuilder(dict *xmldoc.Dict) *Builder {
	return &Builder{k: New(dict), rlCnt: counterstack.New[xmldoc.LabelID]()}
}

// OpenElement implements xmldoc.Sink (Algorithm 1, opening tag case).
func (b *Builder) OpenElement(label xmldoc.LabelID) {
	b.open(label, false)
}

func (b *Builder) open(label xmldoc.LabelID, phantom bool) {
	if b.err != nil {
		return
	}
	v := b.k.getVertex(label)
	if len(b.pathStk) == 0 {
		b.rlCnt.Push(label)
		if lvl := b.rlCnt.Level(); lvl != 0 {
			b.err = fmt.Errorf("kernel: root at recursion level %d", lvl)
			return
		}
		if !phantom {
			if b.k.hasRoot && b.k.rootLabel != label {
				b.err = fmt.Errorf("kernel: conflicting root labels %q and %q",
					b.k.dict.Name(b.k.rootLabel), b.k.dict.Name(label))
				return
			}
			b.k.hasRoot = true
			b.k.rootLabel = label
			b.k.rootCount++
		}
		b.pathStk = append(b.pathStk, builderFrame{v: v, phantom: phantom})
		return
	}
	parent := &b.pathStk[len(b.pathStk)-1]
	// The edge-vector index is the recursion level of the whole rooted path
	// including the new element (Definition 1 / Algorithm 1 line 11), which
	// counter stacks report as the number of non-empty stacks minus one —
	// not merely the occurrence count of the new label.
	b.rlCnt.Push(label)
	lvl := b.rlCnt.Level()
	if !(parent.phantom && phantom) {
		e := b.k.getEdge(parent.v, v)
		e.level(lvl).C++
		found := false
		for _, el := range parent.outEdges {
			if el.e == e && el.l == lvl {
				found = true
				break
			}
		}
		if !found {
			parent.outEdges = append(parent.outEdges, edgeLevel{e, lvl})
		}
	}
	b.pathStk = append(b.pathStk, builderFrame{v: v, phantom: phantom})
}

// CloseElement implements xmldoc.Sink (Algorithm 1, closing tag case).
func (b *Builder) CloseElement(label xmldoc.LabelID) {
	if b.err != nil {
		return
	}
	n := len(b.pathStk)
	if n == 0 {
		b.err = fmt.Errorf("kernel: unbalanced close of %q", b.k.dict.Name(label))
		return
	}
	f := b.pathStk[n-1]
	b.pathStk = b.pathStk[:n-1]
	for _, el := range f.outEdges {
		el.e.level(el.l).P++
	}
	b.rlCnt.Pop(label)
}

// Kernel finalizes and returns the kernel.
func (b *Builder) Kernel() (*Kernel, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.pathStk) != 0 {
		return nil, fmt.Errorf("kernel: %d elements left open", len(b.pathStk))
	}
	return b.k, nil
}

// Build constructs the kernel of a document source in one pass.
func Build(src xmldoc.Source, dict *xmldoc.Dict) (*Kernel, error) {
	b := NewBuilder(dict)
	if err := src.Emit(dict, b); err != nil {
		return nil, err
	}
	return b.Kernel()
}
