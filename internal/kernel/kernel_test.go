package kernel

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"xseed/internal/fixtures"
	"xseed/internal/xmldoc"
)

func buildFig2(t *testing.T) *Kernel {
	t.Helper()
	dict := xmldoc.NewDict()
	k, err := Build(xmldoc.NewParserString(fixtures.PaperFigure2), dict)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return k
}

// TestPaperFigure2Kernel checks every edge label of Figure 2(b) exactly.
func TestPaperFigure2Kernel(t *testing.T) {
	k := buildFig2(t)
	want := map[[2]string][]Level{
		{"a", "t"}: {{1, 1}},
		{"a", "u"}: {{1, 1}},
		{"a", "c"}: {{1, 2}},
		{"c", "t"}: {{2, 2}},
		{"c", "p"}: {{2, 3}},
		{"c", "s"}: {{2, 5}},
		{"s", "t"}: {{2, 2}, {1, 1}},
		{"s", "p"}: {{5, 9}, {1, 2}, {2, 3}},
		{"s", "s"}: {{0, 0}, {2, 2}, {1, 2}},
	}
	if got := k.NumEdges(); got != len(want) {
		t.Errorf("NumEdges = %d, want %d\n%s", got, len(want), k.String())
	}
	for key, lvls := range want {
		e := k.EdgeByName(key[0], key[1])
		if e == nil {
			t.Errorf("edge (%s,%s) missing", key[0], key[1])
			continue
		}
		if len(e.Levels) != len(lvls) {
			t.Errorf("edge (%s,%s) levels = %v, want %v", key[0], key[1], e.Levels, lvls)
			continue
		}
		for i := range lvls {
			if e.Levels[i] != lvls[i] {
				t.Errorf("edge (%s,%s)[%d] = %d:%d, want %d:%d",
					key[0], key[1], i, e.Levels[i].P, e.Levels[i].C, lvls[i].P, lvls[i].C)
			}
		}
	}
	if !k.HasRoot() || k.Dict().Name(k.RootLabel()) != "a" || k.RootCount() != 1 {
		t.Errorf("root = %v %d", k.HasRoot(), k.RootCount())
	}
	if got := k.NumVertices(); got != 6 {
		t.Errorf("NumVertices = %d, want 6", got)
	}
}

func TestTotalChildrenOnFigure2(t *testing.T) {
	k := buildFig2(t)
	id := func(s string) xmldoc.LabelID {
		v, ok := k.Dict().Lookup(s)
		if !ok {
			t.Fatalf("label %s missing", s)
		}
		return v
	}
	cases := []struct {
		label string
		level int
		want  int64
	}{
		{"a", 0, 1},  // root: no in-edges, root count 1
		{"t", 0, 5},  // 1 (a,t) + 2 (c,t) + 2 (s,t)
		{"t", 1, 1},  // (s,t)[1]
		{"s", 0, 5},  // (c,s)
		{"s", 1, 2},  // (s,s)[1]
		{"s", 2, 2},  // (s,s)[2]
		{"p", 0, 12}, // 3 (c,p) + 9 (s,p)[0]
		{"p", 1, 2},  // (s,p)[1]
		{"p", 2, 3},  // (s,p)[2]
		{"u", 0, 1},
		{"c", 0, 2},
		{"t", 2, 0}, // no level-2 t
		{"a", 1, 0},
	}
	for _, tc := range cases {
		if got := k.TotalChildren(id(tc.label), tc.level); got != tc.want {
			t.Errorf("S(%s,%d) = %d, want %d", tc.label, tc.level, got, tc.want)
		}
	}
}

func TestVertexCountOnFigure2(t *testing.T) {
	k := buildFig2(t)
	cases := map[string]int64{"a": 1, "t": 6, "u": 1, "c": 2, "s": 9, "p": 17}
	for name, want := range cases {
		id, _ := k.Dict().Lookup(name)
		if got := k.VertexCount(id); got != want {
			t.Errorf("VertexCount(%s) = %d, want %d", name, got, want)
		}
	}
}

// TestObservation3 checks that the sum of (s,p) child-counts at recursion
// levels >= 1 equals |//s//s//p| = 5, as the paper's Observation 3 states.
func TestObservation3(t *testing.T) {
	k := buildFig2(t)
	e := k.EdgeByName("s", "p")
	if e == nil {
		t.Fatal("edge (s,p) missing")
	}
	if got := e.ChildSum(1); got != 5 {
		t.Errorf("ChildSum(1) of (s,p) = %d, want 5", got)
	}
	if got := e.ChildSum(0); got != 14 {
		t.Errorf("ChildSum(0) of (s,p) = %d, want 14 (|//s//p|)", got)
	}
	if got := e.ChildSum(2); got != 3 {
		t.Errorf("ChildSum(2) of (s,p) = %d, want 3", got)
	}
}

func TestMaxRecLevelAndSize(t *testing.T) {
	k := buildFig2(t)
	if got := k.MaxRecLevel(); got != 2 {
		t.Errorf("MaxRecLevel = %d, want 2", got)
	}
	// 6 vertices * 8 + 9 edges * 4 + 14 level entries * 8 = 196.
	if got := k.SizeBytes(); got != 196 {
		t.Errorf("SizeBytes = %d, want 196", got)
	}
}

func TestStringGolden(t *testing.T) {
	k := buildFig2(t)
	s := k.String()
	for _, line := range []string{
		"(s,p) = (5:9, 1:2, 2:3)",
		"(s,s) = (0:0, 2:2, 1:2)",
		"(a,c) = (1:2)",
	} {
		if !strings.Contains(s, line) {
			t.Errorf("String() missing %q:\n%s", line, s)
		}
	}
}

// refEdgeCounts computes, by brute force on the document, the expected
// kernel counts: for each (parentLabel, childLabel, level of rooted path
// ending at child), the total children (C) and the number of distinct
// parent elements with at least one such child (P).
func refEdgeCounts(doc *xmldoc.Document) map[[3]int32]Level {
	out := map[[3]int32]Level{}
	occ := map[xmldoc.LabelID]int{} // occurrences per label on the current path
	maxOf := func() int {
		m := 0
		for _, v := range occ {
			if v > m {
				m = v
			}
		}
		return m
	}
	var walk func(n xmldoc.NodeID)
	walk = func(n xmldoc.NodeID) {
		label := doc.Label(n)
		occ[label]++
		seen := map[[2]int32]bool{}
		for c := doc.FirstChild(n); c >= 0; c = doc.NextSibling(n, c) {
			cl := doc.Label(c)
			occ[cl]++
			lvl := maxOf() - 1 // PRL of the rooted path ending at c
			occ[cl]--
			key := [3]int32{int32(label), int32(cl), int32(lvl)}
			lv := out[key]
			lv.C++
			if !seen[[2]int32{int32(cl), int32(lvl)}] {
				seen[[2]int32{int32(cl), int32(lvl)}] = true
				lv.P++
			}
			out[key] = lv
			walk(c)
		}
		occ[label]--
	}
	if doc.NumNodes() > 0 {
		walk(0)
	}
	return out
}

// randomXML builds a random small document string.
func randomXML(rng *rand.Rand, labels []string, maxDepth, maxFanout int) string {
	var sb strings.Builder
	var gen func(depth int)
	gen = func(depth int) {
		l := labels[rng.Intn(len(labels))]
		sb.WriteString("<" + l + ">")
		if depth < maxDepth {
			for i := 0; i < rng.Intn(maxFanout+1); i++ {
				gen(depth + 1)
			}
		}
		sb.WriteString("</" + l + ">")
	}
	gen(0)
	return sb.String()
}

// TestRandomDocsAgainstReference cross-checks kernel counts against the
// brute-force reference on many random documents, including recursive ones.
func TestRandomDocsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"a", "b", "c"}
	for trial := 0; trial < 300; trial++ {
		xml := randomXML(rng, labels, 6, 3)
		dict := xmldoc.NewDict()
		doc, err := xmldoc.Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatalf("trial %d: build doc: %v", trial, err)
		}
		k, err := Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatalf("trial %d: build kernel: %v", trial, err)
		}
		ref := refEdgeCounts(doc)
		// Every reference entry must match the kernel.
		total := 0
		for key, lv := range ref {
			e := k.Edge(key[0], key[1])
			if e == nil {
				t.Fatalf("trial %d: edge (%s,%s) missing\ndoc: %s",
					trial, dict.Name(key[0]), dict.Name(key[1]), xml)
			}
			if int(key[2]) >= len(e.Levels) || e.Levels[key[2]] != lv {
				t.Fatalf("trial %d: edge (%s,%s)[%d] = %v, want %v\ndoc: %s",
					trial, dict.Name(key[0]), dict.Name(key[1]), key[2],
					e.Levels, lv, xml)
			}
			total++
		}
		// And the kernel must not contain counts the reference lacks.
		kTotal := 0
		for _, name := range dict.Names() {
			v := k.VertexByName(name)
			if v == nil {
				continue
			}
			for _, e := range v.Out {
				for i, lv := range e.Levels {
					if lv == (Level{}) {
						continue
					}
					kTotal++
					if ref[[3]int32{int32(e.From), int32(e.To), int32(i)}] != lv {
						t.Fatalf("trial %d: spurious kernel entry (%s,%s)[%d]=%v\ndoc: %s",
							trial, dict.Name(e.From), dict.Name(e.To), i, lv, xml)
					}
				}
			}
		}
		if total != kTotal {
			t.Fatalf("trial %d: entry counts differ: ref %d kernel %d", trial, total, kTotal)
		}
	}
}

// TestObservation1 checks on random documents that every rooted path of the
// document exists in the kernel with a label vector longer than the path's
// recursion level.
func TestObservation1(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	labels := []string{"x", "y"}
	for trial := 0; trial < 100; trial++ {
		xml := randomXML(rng, labels, 7, 2)
		dict := xmldoc.NewDict()
		doc, err := xmldoc.Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatal(err)
		}
		k, err := Build(xmldoc.NewParserString(xml), dict)
		if err != nil {
			t.Fatal(err)
		}
		var walk func(n xmldoc.NodeID, path []xmldoc.LabelID)
		walk = func(n xmldoc.NodeID, path []xmldoc.LabelID) {
			path = append(path, doc.Label(n))
			if len(path) >= 2 {
				// recursion level of the rooted path
				occ := map[xmldoc.LabelID]int{}
				max := 0
				for _, l := range path {
					occ[l]++
					if occ[l] > max {
						max = occ[l]
					}
				}
				lvl := max - 1
				e := k.Edge(path[len(path)-2], path[len(path)-1])
				if e == nil {
					t.Fatalf("kernel misses edge for path %v\ndoc: %s", path, xml)
				}
				if len(e.Levels) <= lvl {
					t.Fatalf("edge (%s,%s) has %d levels, path needs > %d\ndoc: %s",
						dict.Name(e.From), dict.Name(e.To), len(e.Levels), lvl, xml)
				}
			}
			for c := doc.FirstChild(n); c >= 0; c = doc.NextSibling(n, c) {
				walk(c, path)
			}
		}
		walk(0, nil)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	k := buildFig2(t)
	var buf bytes.Buffer
	n, err := k.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo returned %d, wrote %d", n, buf.Len())
	}
	dict2 := xmldoc.NewDict()
	k2, err := Read(&buf, dict2)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Compare via string rendering (label names survive re-interning).
	if k.String() != k2.String() {
		t.Errorf("round trip mismatch:\n%s\nvs\n%s", k.String(), k2.String())
	}
	if k2.RootCount() != 1 || dict2.Name(k2.RootLabel()) != "a" {
		t.Error("root not preserved")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		[]byte("bogus"),
		[]byte("XSK1"),
		{'X', 'S', 'K', '1', 0xFF},
	} {
		if _, err := Read(bytes.NewReader(b), xmldoc.NewDict()); err == nil {
			t.Errorf("Read(%q) succeeded", b)
		}
	}
}

func TestMergeTwoDocuments(t *testing.T) {
	dict := xmldoc.NewDict()
	k1, err := Build(xmldoc.NewParserString("<a><b/><b/></a>"), dict)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := Build(xmldoc.NewParserString("<a><b/><c/></a>"), dict)
	if err != nil {
		t.Fatal(err)
	}
	if err := k1.Merge(k2, 1); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if k1.RootCount() != 2 {
		t.Errorf("root count = %d, want 2", k1.RootCount())
	}
	ab := k1.EdgeByName("a", "b")
	if ab == nil || ab.Levels[0] != (Level{P: 2, C: 3}) {
		t.Errorf("(a,b) = %v, want 2:3", ab)
	}
	ac := k1.EdgeByName("a", "c")
	if ac == nil || ac.Levels[0] != (Level{P: 1, C: 1}) {
		t.Errorf("(a,c) = %v, want 1:1", ac)
	}
}

func TestMergeErrors(t *testing.T) {
	dict := xmldoc.NewDict()
	ka, _ := Build(xmldoc.NewParserString("<a><b/></a>"), dict)
	kb, _ := Build(xmldoc.NewParserString("<b><a/></b>"), dict)
	if err := ka.Merge(kb, 1); err == nil {
		t.Error("merge of different roots succeeded")
	}
	other, _ := Build(xmldoc.NewParserString("<a><b/></a>"), xmldoc.NewDict())
	if err := ka.Merge(other, 1); err == nil {
		t.Error("merge across dictionaries succeeded")
	}
	kc, _ := Build(xmldoc.NewParserString("<a><b/></a>"), dict)
	if err := kc.Merge(kc.Clone(), 2); err == nil {
		t.Error("merge with sign 2 succeeded")
	}
}

func TestAddRemoveSubtreeRoundTrip(t *testing.T) {
	// Removing the u subtree from Figure 2 must yield exactly the kernel of
	// the document without it (u is the only u child of a, so the
	// parent-count assumption holds).
	dict := xmldoc.NewDict()
	k, err := Build(xmldoc.NewParserString(fixtures.PaperFigure2), dict)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.RemoveSubtree([]string{"a"}, xmldoc.NewParserString("<u/>")); err != nil {
		t.Fatalf("RemoveSubtree: %v", err)
	}
	without := strings.Replace(fixtures.PaperFigure2, "<u/>\n", "", 1)
	want, err := Build(xmldoc.NewParserString(without), dict)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Equal(want) {
		t.Errorf("after remove:\n%s\nwant:\n%s", k.String(), want.String())
	}
	// Adding it back restores the original.
	if err := k.AddSubtree([]string{"a"}, xmldoc.NewParserString("<u/>")); err != nil {
		t.Fatalf("AddSubtree: %v", err)
	}
	orig, _ := Build(xmldoc.NewParserString(fixtures.PaperFigure2), dict)
	if !k.Equal(orig) {
		t.Errorf("after add-back:\n%s\nwant:\n%s", k.String(), orig.String())
	}
}

func TestAddSubtreeDeepContext(t *testing.T) {
	// Insert a recursive subtree under a recursive context; levels must be
	// computed relative to the full rooted path.
	dict := xmldoc.NewDict()
	k, err := Build(xmldoc.NewParserString("<a><s><s/></s></a>"), dict)
	if err != nil {
		t.Fatal(err)
	}
	// Add <s><p/></s> under /a/s/s: the new s is at recursion level 2.
	if err := k.AddSubtree([]string{"a", "s", "s"}, xmldoc.NewParserString("<s><p/></s>")); err != nil {
		t.Fatal(err)
	}
	want, err := Build(xmldoc.NewParserString("<a><s><s><s><p/></s></s></s></a>"), dict)
	if err != nil {
		t.Fatal(err)
	}
	if !k.Equal(want) {
		t.Errorf("incremental:\n%s\nwant:\n%s", k.String(), want.String())
	}
}

func TestSubtractNegativeFails(t *testing.T) {
	dict := xmldoc.NewDict()
	k, _ := Build(xmldoc.NewParserString("<a><b/></a>"), dict)
	err := k.RemoveSubtree([]string{"a"}, xmldoc.NewParserString("<b><c/></b>"))
	if err == nil {
		t.Error("subtracting a larger subtree succeeded")
	}
}

func TestCloneIndependence(t *testing.T) {
	k := buildFig2(t)
	c := k.Clone()
	if !k.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.EdgeByName("a", "c").Levels[0].C = 99
	if k.EdgeByName("a", "c").Levels[0].C == 99 {
		t.Error("clone shares level storage")
	}
}

func TestEmptyKernelQueries(t *testing.T) {
	k := New(xmldoc.NewDict())
	if k.NumVertices() != 0 || k.NumEdges() != 0 {
		t.Error("empty kernel not empty")
	}
	if k.VertexByName("a") != nil || k.EdgeByName("a", "b") != nil {
		t.Error("lookups on empty kernel returned non-nil")
	}
	if k.TotalChildren(0, 0) != 0 {
		t.Error("TotalChildren on empty kernel")
	}
	if k.MaxRecLevel() != 0 {
		t.Error("MaxRecLevel on empty kernel")
	}
}
