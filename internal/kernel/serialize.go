package kernel

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"xseed/internal/xmldoc"
)

// Serialization format (all integers unsigned varints unless noted):
//
//	magic "XSK1" (4 bytes)
//	flags (1 byte): bit 0 = has root
//	numLabels, then per label: len, bytes      (only labels used by the kernel)
//	rootLabelIndex, rootCount                  (if has root)
//	numEdges, then per edge:
//	    fromIndex, toIndex, numLevels, then per level: P, C
//
// Label indices refer to the serialized label table, not to the in-memory
// dictionary, so a kernel can be loaded into any process.

var magic = [4]byte{'X', 'S', 'K', '1'}

// WriteTo serializes the kernel. It implements io.WriterTo.
func (k *Kernel) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}

	if _, err := cw.Write(magic[:]); err != nil {
		return cw.n, err
	}
	var flags byte
	if k.hasRoot {
		flags |= 1
	}
	if _, err := cw.Write([]byte{flags}); err != nil {
		return cw.n, err
	}

	// Collect used labels in sorted order for a deterministic encoding.
	used := map[xmldoc.LabelID]bool{}
	for l, v := range k.verts {
		used[l] = true
		for _, e := range v.Out {
			used[e.To] = true
		}
	}
	if k.hasRoot {
		used[k.rootLabel] = true
	}
	labels := make([]xmldoc.LabelID, 0, len(used))
	for l := range used {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })
	index := make(map[xmldoc.LabelID]uint64, len(labels))
	for i, l := range labels {
		index[l] = uint64(i)
	}

	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := cw.Write(buf[:n])
		return err
	}

	if err := putUvarint(uint64(len(labels))); err != nil {
		return cw.n, err
	}
	for _, l := range labels {
		name := k.dict.Name(l)
		if err := putUvarint(uint64(len(name))); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(cw, name); err != nil {
			return cw.n, err
		}
	}
	if k.hasRoot {
		if err := putUvarint(index[k.rootLabel]); err != nil {
			return cw.n, err
		}
		if err := putUvarint(uint64(k.rootCount)); err != nil {
			return cw.n, err
		}
	}

	if err := putUvarint(uint64(k.NumEdges())); err != nil {
		return cw.n, err
	}
	for _, l := range labels {
		v := k.verts[l]
		if v == nil {
			continue
		}
		for _, e := range v.Out {
			if err := putUvarint(index[e.From]); err != nil {
				return cw.n, err
			}
			if err := putUvarint(index[e.To]); err != nil {
				return cw.n, err
			}
			if err := putUvarint(uint64(len(e.Levels))); err != nil {
				return cw.n, err
			}
			for _, lv := range e.Levels {
				if err := putUvarint(uint64(lv.P)); err != nil {
					return cw.n, err
				}
				if err := putUvarint(uint64(lv.C)); err != nil {
					return cw.n, err
				}
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// Read deserializes a kernel, interning its labels into dict. When r is a
// *bufio.Reader it is used directly (no read-ahead beyond the kernel's own
// bytes is lost), so kernels can be embedded in larger streams.
func Read(r io.Reader, dict *xmldoc.Dict) (*Kernel, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	var m [5]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("kernel: read header: %w", err)
	}
	if [4]byte(m[:4]) != magic {
		return nil, errors.New("kernel: bad magic")
	}
	flags := m[4]

	getUvarint := func() (uint64, error) { return binary.ReadUvarint(br) }

	nLabels, err := getUvarint()
	if err != nil {
		return nil, fmt.Errorf("kernel: label count: %w", err)
	}
	const maxLabels = 1 << 24
	if nLabels > maxLabels {
		return nil, fmt.Errorf("kernel: implausible label count %d", nLabels)
	}
	labels := make([]xmldoc.LabelID, nLabels)
	nameBuf := make([]byte, 0, 64)
	for i := range labels {
		ln, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("kernel: label length: %w", err)
		}
		if ln > 1<<16 {
			return nil, fmt.Errorf("kernel: implausible label length %d", ln)
		}
		if cap(nameBuf) < int(ln) {
			nameBuf = make([]byte, ln)
		}
		nameBuf = nameBuf[:ln]
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("kernel: label bytes: %w", err)
		}
		labels[i] = dict.Intern(string(nameBuf))
	}

	k := New(dict)
	if flags&1 != 0 {
		ri, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("kernel: root index: %w", err)
		}
		if ri >= nLabels {
			return nil, fmt.Errorf("kernel: root index %d out of range", ri)
		}
		rc, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("kernel: root count: %w", err)
		}
		k.hasRoot = true
		k.rootLabel = labels[ri]
		k.rootCount = int64(rc)
		k.getVertex(k.rootLabel)
	}

	nEdges, err := getUvarint()
	if err != nil {
		return nil, fmt.Errorf("kernel: edge count: %w", err)
	}
	const maxEdges = 1 << 28
	if nEdges > maxEdges {
		return nil, fmt.Errorf("kernel: implausible edge count %d", nEdges)
	}
	for i := uint64(0); i < nEdges; i++ {
		fi, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("kernel: edge from: %w", err)
		}
		ti, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("kernel: edge to: %w", err)
		}
		if fi >= nLabels || ti >= nLabels {
			return nil, fmt.Errorf("kernel: edge label index out of range")
		}
		nl, err := getUvarint()
		if err != nil {
			return nil, fmt.Errorf("kernel: level count: %w", err)
		}
		if nl > 1<<20 {
			return nil, fmt.Errorf("kernel: implausible level count %d", nl)
		}
		from := k.getVertex(labels[fi])
		to := k.getVertex(labels[ti])
		e := k.getEdge(from, to)
		e.Levels = make([]Level, nl)
		for j := range e.Levels {
			p, err := getUvarint()
			if err != nil {
				return nil, fmt.Errorf("kernel: level P: %w", err)
			}
			c, err := getUvarint()
			if err != nil {
				return nil, fmt.Errorf("kernel: level C: %w", err)
			}
			e.Levels[j] = Level{P: int64(p), C: int64(c)}
		}
	}
	return k, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
