package kernel

import (
	"fmt"

	"xseed/internal/xmldoc"
)

// This file implements the paper's "Synopsis update" (Section 3): when
// subtrees are added to or deleted from the document, the kernel of each
// subtree is computed in isolation and then merged into (or subtracted
// from) the original kernel. The paper defers the details to its full
// version; our precise semantics are:
//
//   - A subtree kernel is built with the subtree's insertion context (the
//     rooted label path of its parent chain) pushed as *phantom* elements:
//     they establish correct recursion levels and the edge from the parent
//     to the subtree root, but contribute no counts among themselves.
//   - Merging adds (or subtracts) edge label vectors level-wise; edges and
//     vertices whose counts reach zero everywhere are removed.
//   - Parent-counts across the context boundary assume the parent did not
//     already have a child with the subtree root's (label, level); when it
//     did, parent-counts drift by one per violating update. This matches
//     the lazy-maintenance role the paper assigns to updates (the optimizer
//     "can choose to update the information eagerly or lazily"); rebuilds
//     restore exactness.

// BuildSubtree builds the kernel contribution of a subtree whose root will
// sit under the given context path (outermost label first, excluding the
// subtree root itself). The resulting kernel has no document root and can
// be merged into a full kernel with Merge.
func BuildSubtree(dict *xmldoc.Dict, contextPath []string, src xmldoc.Source) (*Kernel, error) {
	b := NewBuilder(dict)
	for _, name := range contextPath {
		b.open(dict.Intern(name), true)
	}
	b.phantomDepth = len(contextPath)
	if err := src.Emit(dict, b); err != nil {
		return nil, err
	}
	if len(b.pathStk) != b.phantomDepth {
		return nil, fmt.Errorf("kernel: subtree stream left %d elements open",
			len(b.pathStk)-b.phantomDepth)
	}
	for i := len(contextPath) - 1; i >= 0; i-- {
		id, _ := dict.Lookup(contextPath[i])
		b.CloseElement(id)
	}
	k, err := b.Kernel()
	if err != nil {
		return nil, err
	}
	return k, nil
}

// Merge adds (sign = +1) or subtracts (sign = -1) another kernel's counts
// into k. Both kernels must share a dictionary. Subtraction that would
// drive any count negative is an error and leaves k partially updated;
// callers that need atomicity should Clone first.
func (k *Kernel) Merge(other *Kernel, sign int) error {
	if sign != 1 && sign != -1 {
		return fmt.Errorf("kernel: merge sign must be ±1, got %d", sign)
	}
	if other.dict != k.dict {
		return fmt.Errorf("kernel: merge across dictionaries")
	}
	if other.hasRoot {
		if !k.hasRoot {
			if sign < 0 {
				return fmt.Errorf("kernel: subtracting rooted kernel from unrooted")
			}
			k.hasRoot = true
			k.rootLabel = other.rootLabel
		}
		if k.rootLabel != other.rootLabel {
			return fmt.Errorf("kernel: conflicting root labels %q and %q",
				k.dict.Name(k.rootLabel), k.dict.Name(other.rootLabel))
		}
		k.rootCount += int64(sign) * other.rootCount
		if k.rootCount < 0 {
			return fmt.Errorf("kernel: root count went negative")
		}
	}
	for _, v := range other.verts {
		for _, oe := range v.Out {
			from := k.getVertex(oe.From)
			to := k.getVertex(oe.To)
			e := k.getEdge(from, to)
			for i, lv := range oe.Levels {
				el := e.level(i)
				el.P += int64(sign) * lv.P
				el.C += int64(sign) * lv.C
				if el.P < 0 || el.C < 0 {
					return fmt.Errorf("kernel: edge (%s,%s) level %d went negative",
						k.dict.Name(e.From), k.dict.Name(e.To), i)
				}
			}
		}
	}
	k.compact()
	return nil
}

// AddSubtree incrementally accounts for a subtree inserted under
// contextPath.
func (k *Kernel) AddSubtree(contextPath []string, src xmldoc.Source) error {
	sub, err := BuildSubtree(k.dict, contextPath, src)
	if err != nil {
		return err
	}
	return k.Merge(sub, 1)
}

// RemoveSubtree incrementally accounts for a subtree deleted from under
// contextPath.
func (k *Kernel) RemoveSubtree(contextPath []string, src xmldoc.Source) error {
	sub, err := BuildSubtree(k.dict, contextPath, src)
	if err != nil {
		return err
	}
	return k.Merge(sub, -1)
}

// Clone returns a deep copy of the kernel sharing the dictionary.
func (k *Kernel) Clone() *Kernel {
	c := New(k.dict)
	c.hasRoot, c.rootLabel, c.rootCount = k.hasRoot, k.rootLabel, k.rootCount
	for _, v := range k.verts {
		for _, e := range v.Out {
			ce := c.getEdge(c.getVertex(e.From), c.getVertex(e.To))
			ce.Levels = append(ce.Levels[:0], e.Levels...)
		}
		// Preserve isolated vertices (possible mid-update).
		c.getVertex(v.Label)
	}
	return c
}

// Equal reports whether two kernels have identical structure and counts
// (trailing all-zero levels ignored).
func (k *Kernel) Equal(other *Kernel) bool {
	trim := func(ls []Level) []Level {
		for len(ls) > 0 && ls[len(ls)-1] == (Level{}) {
			ls = ls[:len(ls)-1]
		}
		return ls
	}
	if k.hasRoot != other.hasRoot || (k.hasRoot && (k.rootLabel != other.rootLabel || k.rootCount != other.rootCount)) {
		return false
	}
	count := func(x *Kernel) int {
		n := 0
		for _, v := range x.verts {
			for _, e := range v.Out {
				if len(trim(e.Levels)) > 0 {
					n++
				}
			}
		}
		return n
	}
	if count(k) != count(other) {
		return false
	}
	for _, v := range k.verts {
		for _, e := range v.Out {
			a := trim(e.Levels)
			if len(a) == 0 {
				continue
			}
			oe := other.Edge(e.From, e.To)
			if oe == nil {
				return false
			}
			b := trim(oe.Levels)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
	}
	return true
}

// compact removes edges whose vectors are all zero and vertices with no
// remaining edges (except the root vertex).
func (k *Kernel) compact() {
	for _, v := range k.verts {
		out := v.Out[:0]
		for _, e := range v.Out {
			if !e.allZero() {
				out = append(out, e)
			}
		}
		v.Out = out
	}
	for _, v := range k.verts {
		in := v.In[:0]
		for _, e := range v.In {
			if !e.allZero() {
				in = append(in, e)
			}
		}
		v.In = in
	}
	for l, v := range k.verts {
		if len(v.Out) == 0 && len(v.In) == 0 && !(k.hasRoot && l == k.rootLabel) {
			delete(k.verts, l)
		}
	}
}

func (e *Edge) allZero() bool {
	for _, lv := range e.Levels {
		if lv != (Level{}) {
			return false
		}
	}
	return true
}
