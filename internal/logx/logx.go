// Package logx is the small slog toolkit shared by xseedd's serving and
// storage layers: a discard logger (slog.DiscardHandler is Go 1.24+; this
// module supports 1.22), a bridge that lets the legacy *log.Logger
// configuration field keep working, and the -log-format/-log-level flag
// constructor.
package logx

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"strings"
)

// Discard returns a logger that drops everything.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Bridge wraps a legacy *log.Logger as a slog.Logger: records render as the
// message followed by key=value pairs and go through l.Printf, so callers
// that configured Config.Log (tests capturing output, callers with a shared
// log.Logger) keep seeing every line. Level filtering is the caller's
// problem — the bridge passes everything, like log.Logger always did.
func Bridge(l *log.Logger) *slog.Logger {
	return slog.New(&bridgeHandler{l: l})
}

type bridgeHandler struct {
	l     *log.Logger
	attrs []slog.Attr
}

func (h *bridgeHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *bridgeHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Message)
	writeAttr := func(a slog.Attr) bool {
		if a.Equal(slog.Attr{}) {
			return true
		}
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Resolve())
		return true
	}
	for _, a := range h.attrs {
		writeAttr(a)
	}
	rec.Attrs(writeAttr)
	h.l.Printf("%s", b.String())
	return nil
}

func (h *bridgeHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := &bridgeHandler{l: h.l}
	n.attrs = append(append(n.attrs, h.attrs...), attrs...)
	return n
}

func (h *bridgeHandler) WithGroup(name string) slog.Handler {
	// Flat output: groups are rare in this codebase; prefixing would be the
	// refinement if they appear.
	return h
}

// New builds a logger from the daemon's -log-format and -log-level flag
// values. format is "text" or "json"; level is "debug", "info", "warn", or
// "error". Unknown values are an error (flag validation, not a fallback).
func New(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (text|json)", format)
	}
}
