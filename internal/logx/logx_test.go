package logx

import (
	"bytes"
	"encoding/json"
	"log"
	"strings"
	"testing"
)

func TestBridgeRendersAttrs(t *testing.T) {
	var buf bytes.Buffer
	lg := Bridge(log.New(&buf, "xseedd: ", 0))
	lg.With("synopsis", "xmark").Warn("persist failed", "err", "disk full", "gen", 3)
	got := buf.String()
	for _, want := range []string{"xseedd: ", "persist failed", "synopsis=xmark", "err=disk full", "gen=3"} {
		if !strings.Contains(got, want) {
			t.Errorf("bridge output %q missing %q", got, want)
		}
	}
}

func TestDiscardDropsEverything(t *testing.T) {
	Discard().Error("nothing happens") // must not panic or write anywhere
}

func TestNewFormatsAndLevels(t *testing.T) {
	var buf bytes.Buffer
	lg, err := New(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("filtered out")
	lg.Warn("kept", "k", "v")
	line := strings.TrimSpace(buf.String())
	if strings.Count(line, "\n") != 0 {
		t.Fatalf("want exactly one line, got %q", line)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(line), &m); err != nil {
		t.Fatalf("not JSON: %v in %q", err, line)
	}
	if m["msg"] != "kept" || m["k"] != "v" {
		t.Fatalf("unexpected record %v", m)
	}
	if _, err := New(&buf, "xml", "info"); err == nil {
		t.Error("unknown format accepted")
	}
	if _, err := New(&buf, "text", "loud"); err == nil {
		t.Error("unknown level accepted")
	}
}
