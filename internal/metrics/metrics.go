// Package metrics implements the estimation-quality metrics of the paper's
// Section 6.3: root-mean-squared error (RMSE), normalized RMSE (NRMSE =
// RMSE divided by the mean actual result size), the coefficient of
// determination (R²), and the order-preserving degree (OPD — the fraction
// of query pairs whose estimates are ordered like their actuals).
package metrics

import "math"

// Sample is one (estimate, actual) observation.
type Sample struct {
	Est    float64
	Actual float64
}

// Accumulator collects samples and computes the error metrics.
type Accumulator struct {
	samples []Sample
}

// Add records one observation.
func (a *Accumulator) Add(est, actual float64) {
	a.samples = append(a.samples, Sample{est, actual})
}

// N returns the number of observations.
func (a *Accumulator) N() int { return len(a.samples) }

// Samples returns the recorded observations (not a copy).
func (a *Accumulator) Samples() []Sample { return a.samples }

// RMSE returns sqrt(Σ(eᵢ-aᵢ)²/n), the paper's primary error metric.
func (a *Accumulator) RMSE() float64 {
	if len(a.samples) == 0 {
		return 0
	}
	var s float64
	for _, x := range a.samples {
		d := x.Est - x.Actual
		s += d * d
	}
	return math.Sqrt(s / float64(len(a.samples)))
}

// MeanActual returns the mean actual result size ā.
func (a *Accumulator) MeanActual() float64 {
	if len(a.samples) == 0 {
		return 0
	}
	var s float64
	for _, x := range a.samples {
		s += x.Actual
	}
	return s / float64(len(a.samples))
}

// NRMSE returns RMSE/ā, the paper's error per unit of accurate result size
// (adopted from Zhang et al., VLDB 2005). Zero when ā is zero.
func (a *Accumulator) NRMSE() float64 {
	m := a.MeanActual()
	if m == 0 {
		return 0
	}
	return a.RMSE() / m
}

// R2 returns the coefficient of determination of estimates against
// actuals: 1 - Σ(aᵢ-eᵢ)²/Σ(aᵢ-ā)². Can be negative for estimators worse
// than predicting the mean; 1 is perfect. Returns 1 when all actuals are
// identical and matched, 0 when identical but unmatched.
func (a *Accumulator) R2() float64 {
	if len(a.samples) == 0 {
		return 0
	}
	mean := a.MeanActual()
	var ssRes, ssTot float64
	for _, x := range a.samples {
		ssRes += (x.Actual - x.Est) * (x.Actual - x.Est)
		ssTot += (x.Actual - mean) * (x.Actual - mean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// OPD returns the order-preserving degree: over all pairs (i < j) with
// distinct actuals, the fraction whose estimates are ordered the same way
// (ties in estimates count as half). Returns 1 for fewer than two usable
// pairs.
func (a *Accumulator) OPD() float64 {
	n := len(a.samples)
	pairs, score := 0, 0.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			ai, aj := a.samples[i].Actual, a.samples[j].Actual
			if ai == aj {
				continue
			}
			pairs++
			ei, ej := a.samples[i].Est, a.samples[j].Est
			switch {
			case ei == ej:
				score += 0.5
			case (ai < aj) == (ei < ej):
				score++
			}
		}
	}
	if pairs == 0 {
		return 1
	}
	return score / float64(pairs)
}
