package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestRMSEKnownValues(t *testing.T) {
	var a Accumulator
	a.Add(3, 1) // error 2
	a.Add(1, 3) // error -2
	if got := a.RMSE(); !approx(got, 2, 1e-12) {
		t.Errorf("RMSE = %g, want 2", got)
	}
	if got := a.MeanActual(); !approx(got, 2, 1e-12) {
		t.Errorf("MeanActual = %g, want 2", got)
	}
	if got := a.NRMSE(); !approx(got, 1, 1e-12) {
		t.Errorf("NRMSE = %g, want 1", got)
	}
	if a.N() != 2 {
		t.Errorf("N = %d", a.N())
	}
}

func TestPerfectEstimator(t *testing.T) {
	var a Accumulator
	for i := 1; i <= 10; i++ {
		a.Add(float64(i), float64(i))
	}
	if got := a.RMSE(); got != 0 {
		t.Errorf("RMSE = %g", got)
	}
	if got := a.NRMSE(); got != 0 {
		t.Errorf("NRMSE = %g", got)
	}
	if got := a.R2(); got != 1 {
		t.Errorf("R2 = %g", got)
	}
	if got := a.OPD(); got != 1 {
		t.Errorf("OPD = %g", got)
	}
}

func TestEmptyAccumulator(t *testing.T) {
	var a Accumulator
	if a.RMSE() != 0 || a.NRMSE() != 0 || a.R2() != 0 || a.OPD() != 1 {
		t.Error("empty accumulator metrics not at neutral values")
	}
}

func TestR2WorseThanMean(t *testing.T) {
	var a Accumulator
	a.Add(100, 1)
	a.Add(-100, 2)
	a.Add(100, 3)
	if got := a.R2(); got >= 0 {
		t.Errorf("R2 = %g, want negative for a terrible estimator", got)
	}
}

func TestR2ConstantActuals(t *testing.T) {
	var a Accumulator
	a.Add(5, 5)
	a.Add(5, 5)
	if got := a.R2(); got != 1 {
		t.Errorf("R2 = %g, want 1 for exact constant fit", got)
	}
	var b Accumulator
	b.Add(4, 5)
	b.Add(6, 5)
	if got := b.R2(); got != 0 {
		t.Errorf("R2 = %g, want 0 for inexact constant fit", got)
	}
}

func TestOPD(t *testing.T) {
	var a Accumulator
	// Actuals 1<2<3; estimates reversed: OPD 0.
	a.Add(3, 1)
	a.Add(2, 2)
	a.Add(1, 3)
	if got := a.OPD(); got != 0 {
		t.Errorf("OPD = %g, want 0", got)
	}
	var b Accumulator
	// One inversion among three ordered pairs.
	b.Add(1, 1)
	b.Add(3, 2)
	b.Add(2, 3)
	if got := b.OPD(); !approx(got, 2.0/3.0, 1e-12) {
		t.Errorf("OPD = %g, want 2/3", got)
	}
	var c Accumulator
	// Tied estimates count half.
	c.Add(1, 1)
	c.Add(1, 2)
	if got := c.OPD(); got != 0.5 {
		t.Errorf("OPD = %g, want 0.5", got)
	}
	var d Accumulator
	// Equal actuals are skipped entirely.
	d.Add(1, 5)
	d.Add(9, 5)
	if got := d.OPD(); got != 1 {
		t.Errorf("OPD = %g, want 1 (no usable pairs)", got)
	}
}

// Property: RMSE is invariant under sample order and scales linearly with
// uniform error scaling.
func TestQuickRMSEProperties(t *testing.T) {
	f := func(errs []float64) bool {
		var a Accumulator
		for i, e := range errs {
			if math.IsNaN(e) || math.IsInf(e, 0) || math.Abs(e) > 1e6 {
				return true // skip pathological float inputs
			}
			a.Add(float64(i)+e, float64(i))
		}
		rmse := a.RMSE()
		if rmse < 0 {
			return false
		}
		// Doubling all errors doubles RMSE.
		var b Accumulator
		for i, e := range errs {
			b.Add(float64(i)+2*e, float64(i))
		}
		return approx(b.RMSE(), 2*rmse, 1e-6*(1+rmse))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: NRMSE = RMSE / mean(actual) whenever mean > 0.
func TestQuickNRMSEDefinition(t *testing.T) {
	f := func(pairs [][2]uint8) bool {
		var a Accumulator
		for _, p := range pairs {
			a.Add(float64(p[0]), float64(p[1])+1)
		}
		if a.N() == 0 {
			return true
		}
		return approx(a.NRMSE(), a.RMSE()/a.MeanActual(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
