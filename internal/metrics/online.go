package metrics

import (
	"math"
	"sync"
)

// Online is a concurrency-safe, constant-memory accumulator of the Section
// 6.3 error metrics, for long-running servers that observe (estimate,
// actual) pairs as feedback arrives. Unlike Accumulator it does not retain
// samples, so OPD (which needs all pairs) is not available.
type Online struct {
	mu    sync.Mutex
	n     int64
	sumA  float64 // Σ actual
	sumA2 float64 // Σ actual²
	ssRes float64 // Σ (actual-est)²
}

// Add records one observation.
func (o *Online) Add(est, actual float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.n++
	o.sumA += actual
	o.sumA2 += actual * actual
	d := actual - est
	o.ssRes += d * d
}

// OnlineStats is a consistent snapshot of the accumulated metrics.
type OnlineStats struct {
	N          int64   `json:"n"`
	RMSE       float64 `json:"rmse"`
	NRMSE      float64 `json:"nrmse"`
	R2         float64 `json:"r2"`
	MeanActual float64 `json:"meanActual"`
}

// N returns the number of observations.
func (o *Online) N() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.n
}

// Snapshot returns all metrics under one lock acquisition.
func (o *Online) Snapshot() OnlineStats {
	o.mu.Lock()
	defer o.mu.Unlock()
	st := OnlineStats{N: o.n}
	if o.n == 0 {
		return st
	}
	fn := float64(o.n)
	st.RMSE = math.Sqrt(o.ssRes / fn)
	st.MeanActual = o.sumA / fn
	if st.MeanActual != 0 {
		st.NRMSE = st.RMSE / st.MeanActual
	}
	// Σ(a-ā)² = Σa² - n·ā²
	ssTot := o.sumA2 - fn*st.MeanActual*st.MeanActual
	switch {
	case ssTot > 0:
		st.R2 = 1 - o.ssRes/ssTot
	case o.ssRes == 0:
		st.R2 = 1
	}
	return st
}

// RMSE returns sqrt(Σ(aᵢ-eᵢ)²/n).
func (o *Online) RMSE() float64 { return o.Snapshot().RMSE }

// NRMSE returns RMSE divided by the mean actual result size.
func (o *Online) NRMSE() float64 { return o.Snapshot().NRMSE }

// R2 returns the coefficient of determination of estimates against actuals.
func (o *Online) R2() float64 { return o.Snapshot().R2 }
