package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestOnlineMatchesAccumulator cross-checks the constant-memory accumulator
// against the reference implementation on the same samples.
func TestOnlineMatchesAccumulator(t *testing.T) {
	samples := [][2]float64{
		{10, 12}, {5, 5}, {100, 80}, {0.5, 1}, {7, 0}, {42, 40}, {3, 9},
	}
	var ref Accumulator
	var on Online
	for _, s := range samples {
		ref.Add(s[0], s[1])
		on.Add(s[0], s[1])
	}
	st := on.Snapshot()
	if st.N != int64(ref.N()) {
		t.Fatalf("N = %d, want %d", st.N, ref.N())
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"RMSE", st.RMSE, ref.RMSE()},
		{"NRMSE", st.NRMSE, ref.NRMSE()},
		{"R2", st.R2, ref.R2()},
		{"MeanActual", st.MeanActual, ref.MeanActual()},
	} {
		if math.Abs(c.got-c.want) > 1e-9*math.Max(1, math.Abs(c.want)) {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestOnlineEmptyAndDegenerate(t *testing.T) {
	var on Online
	st := on.Snapshot()
	if st.N != 0 || st.RMSE != 0 || st.NRMSE != 0 || st.R2 != 0 {
		t.Fatalf("empty snapshot = %+v", st)
	}
	// All actuals identical and matched: R² is 1 by convention.
	var perfect Online
	perfect.Add(4, 4)
	perfect.Add(4, 4)
	if r2 := perfect.R2(); r2 != 1 {
		t.Fatalf("R2 on perfect constant = %v, want 1", r2)
	}
	// All actuals identical but unmatched: R² is 0 by convention.
	var off Online
	off.Add(5, 4)
	off.Add(3, 4)
	if r2 := off.R2(); r2 != 0 {
		t.Fatalf("R2 on unmatched constant = %v, want 0", r2)
	}
}

func TestOnlineConcurrent(t *testing.T) {
	var on Online
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				on.Add(1, 2)
				on.Snapshot()
			}
		}()
	}
	wg.Wait()
	if n := on.N(); n != 8000 {
		t.Fatalf("N = %d, want 8000", n)
	}
}
