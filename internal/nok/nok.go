// Package nok implements exact path-expression evaluation over the succinct
// preorder-array document storage — our rendition of the Next-of-Kin (NoK)
// pattern matching operator [Zhang, Kacholia, Özsu, ICDE 2004] that the
// XSEED paper uses (extended with //-axes) to obtain actual cardinalities
// and actual query running times.
//
// Evaluation proceeds one location step at a time over sorted node-ID
// context sets. Child steps iterate children by subtree-size arithmetic;
// descendant steps make a single forward scan over the union of the context
// nodes' subtree ranges, which is the storage-scan evaluation style NoK is
// built on. Node-set semantics (deduplication, document order) follow
// XPath.
package nok

import (
	"sort"

	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

// Evaluator evaluates queries against one document. It is not safe for
// concurrent use; create one per goroutine (construction is cheap).
type Evaluator struct {
	doc *xmldoc.Document
}

// New returns an evaluator over doc.
func New(doc *xmldoc.Document) *Evaluator {
	return &Evaluator{doc: doc}
}

// Count returns the number of elements selected by the absolute path q.
func (ev *Evaluator) Count(q *xpath.Path) int64 {
	return int64(len(ev.Select(q)))
}

// CountString parses and counts in one call.
func (ev *Evaluator) CountString(query string) (int64, error) {
	q, err := xpath.Parse(query)
	if err != nil {
		return 0, err
	}
	return ev.Count(q), nil
}

// Select returns the elements selected by the absolute path q, in document
// order without duplicates.
func (ev *Evaluator) Select(q *xpath.Path) []xmldoc.NodeID {
	ctx := []xmldoc.NodeID{xmldoc.VirtualRoot}
	for i := range q.Steps {
		ctx = ev.step(ctx, &q.Steps[i])
		if len(ctx) == 0 {
			return nil
		}
	}
	return ctx
}

// step applies one location step to a sorted, duplicate-free context set and
// returns the sorted, duplicate-free result set.
func (ev *Evaluator) step(ctx []xmldoc.NodeID, st *xpath.Step) []xmldoc.NodeID {
	label, labelKnown := ev.resolve(st)
	if !labelKnown {
		return nil
	}
	var out []xmldoc.NodeID
	if st.Axis == xpath.Child {
		for _, c := range ctx {
			for m := ev.doc.FirstChild(c); m >= 0; m = ev.doc.NextSibling(c, m) {
				if ev.matchNode(m, st, label) {
					out = append(out, m)
				}
			}
		}
		// Children of distinct parents are distinct, but when the context
		// contains both a node and its descendant the outputs interleave;
		// restore document order. Duplicates are impossible (one parent per
		// node).
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	// Descendant axis: scan the union of subtree ranges once, left to
	// right. The context is sorted, so tracking the furthest covered
	// position both deduplicates and yields document order.
	covered := xmldoc.NodeID(0)
	for _, c := range ctx {
		var lo, hi xmldoc.NodeID
		if c == xmldoc.VirtualRoot {
			lo, hi = 0, xmldoc.NodeID(ev.doc.NumNodes())
		} else {
			lo, hi = c+1, ev.doc.SubtreeEnd(c)
		}
		if lo < covered {
			lo = covered
		}
		for m := lo; m < hi; m++ {
			if ev.matchNode(m, st, label) {
				out = append(out, m)
			}
		}
		if hi > covered {
			covered = hi
		}
	}
	return out
}

// resolve maps the step's node test to a label ID. labelKnown is false when
// the test names a label absent from the document (no node can match).
// Wildcards return (-1, true).
func (ev *Evaluator) resolve(st *xpath.Step) (xmldoc.LabelID, bool) {
	if st.Wildcard {
		return -1, true
	}
	id, ok := ev.doc.Dict().Lookup(st.Label)
	if !ok {
		return 0, false
	}
	return id, true
}

// matchNode reports whether node m passes the step's node test and all of
// its predicates.
func (ev *Evaluator) matchNode(m xmldoc.NodeID, st *xpath.Step, label xmldoc.LabelID) bool {
	if !st.Wildcard && ev.doc.Label(m) != label {
		return false
	}
	for _, pred := range st.Preds {
		if !ev.exists(m, pred.Steps) {
			return false
		}
	}
	return true
}

// exists reports whether the relative path steps can be matched starting
// from context node n (existential predicate semantics).
func (ev *Evaluator) exists(n xmldoc.NodeID, steps []xpath.Step) bool {
	if len(steps) == 0 {
		return true
	}
	st := &steps[0]
	label, ok := ev.resolve(st)
	if !ok {
		return false
	}
	if st.Axis == xpath.Child {
		for m := ev.doc.FirstChild(n); m >= 0; m = ev.doc.NextSibling(n, m) {
			if ev.matchNode(m, st, label) && ev.exists(m, steps[1:]) {
				return true
			}
		}
		return false
	}
	lo, hi := n+1, ev.doc.SubtreeEnd(n)
	if n == xmldoc.VirtualRoot {
		lo, hi = 0, xmldoc.NodeID(ev.doc.NumNodes())
	}
	for m := lo; m < hi; m++ {
		if ev.matchNode(m, st, label) && ev.exists(m, steps[1:]) {
			return true
		}
	}
	return false
}
