package nok

import (
	"sort"
	"testing"

	"xseed/internal/fixtures"
	"xseed/internal/xmldoc"
	"xseed/internal/xpath"
)

func fig2Evaluator(t *testing.T) *Evaluator {
	t.Helper()
	doc, err := xmldoc.Parse(fixtures.PaperFigure2)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(doc)
}

func TestCountsOnFigure2(t *testing.T) {
	ev := fig2Evaluator(t)
	cases := []struct {
		q    string
		want int64
	}{
		// Simple paths (these equal the path tree cardinalities).
		{"/a", 1},
		{"/a/t", 1},
		{"/a/u", 1},
		{"/a/c", 2},
		{"/a/c/t", 2},
		{"/a/c/p", 3},
		{"/a/c/s", 5},
		{"/a/c/s/t", 2},
		{"/a/c/s/p", 9},
		{"/a/c/s/s", 2},
		{"/a/c/s/s/t", 1},
		{"/a/c/s/s/p", 2},
		{"/a/c/s/s/s", 2},
		{"/a/c/s/s/s/p", 3},
		{"/a/c/s/s/s/s", 0},
		{"/a/x", 0},
		{"/b", 0}, // root is not b
		// Branching paths.
		{"/a/c/s[t]/p", 4},
		{"/a/c[p]/s", 5},
		{"/a/c/s[p]", 5},
		{"/a/c/s[s]", 2},
		{"/a/c/s[s]/p", 4}, // level-0 s with an s child: s2 and s3, 2 p's each
		{"/a/c/s/s[t]/p", 2},
		{"/a/c[s/s]/t", 2},
		{"/a/c[s[t]/s]/p", 0},
		// Complex paths.
		{"//s", 9},
		{"//p", 17},
		{"//t", 6},
		{"//s//s//p", 5}, // paper Observation 3
		{"//s/p", 14},
		{"//s//p", 14},
		{"//s[s]/p", 6},
		{"/a/*/t", 2},
		{"//*/t", 6},
		{"/a/c/s[.//t]/p", 6},
		{"//s//s", 4}, // s nodes with an s ancestor: s21, s211, s212, s31
		{"//s//s//s", 2},
		{"//*", 36},
		{"/*", 1},
		{"//zzz", 0},
	}
	for _, tc := range cases {
		got, err := ev.CountString(tc.q)
		if err != nil {
			t.Errorf("%s: %v", tc.q, err)
			continue
		}
		if got != tc.want {
			t.Errorf("Count(%s) = %d, want %d", tc.q, got, tc.want)
		}
	}
}

func TestSelectOrderAndDedup(t *testing.T) {
	ev := fig2Evaluator(t)
	// //s from a context that includes both an s and its ancestor must not
	// duplicate.
	res := ev.Select(xpath.MustParse("//s//p"))
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i] < res[j] }) {
		t.Error("result not in document order")
	}
	seen := map[xmldoc.NodeID]bool{}
	for _, n := range res {
		if seen[n] {
			t.Fatalf("duplicate node %d in result", n)
		}
		seen[n] = true
	}
	for _, n := range res {
		if ev.doc.LabelName(n) != "p" {
			t.Fatalf("node %d has label %s, want p", n, ev.doc.LabelName(n))
		}
	}
}

func TestChildOrderWithNestedContext(t *testing.T) {
	// Context containing both a node and its descendant: //s/s — the result
	// children must come back sorted.
	ev := fig2Evaluator(t)
	res := ev.Select(xpath.MustParse("//s/s"))
	if !sort.SliceIsSorted(res, func(i, j int) bool { return res[i] < res[j] }) {
		t.Error("child-step result not sorted")
	}
	if len(res) != 4 {
		t.Errorf("//s/s = %d, want 4", len(res))
	}
}

func TestPredicateOnVirtualRootDescendant(t *testing.T) {
	ev := fig2Evaluator(t)
	// Leading // with a predicate.
	got, err := ev.CountString("//c[t]/s")
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("//c[t]/s = %d, want 5", got)
	}
}

func TestWildcardPredicates(t *testing.T) {
	ev := fig2Evaluator(t)
	got, _ := ev.CountString("/a/c/s[*]")
	if got != 5 { // every level-0 s has some child
		t.Errorf("/a/c/s[*] = %d, want 5", got)
	}
	got, _ = ev.CountString("/a/t[*]")
	if got != 0 { // a's t is a leaf
		t.Errorf("/a/t[*] = %d, want 0", got)
	}
}

func TestDeepRecursionQuery(t *testing.T) {
	ev := fig2Evaluator(t)
	got, _ := ev.CountString("//s//s//s//s")
	if got != 0 {
		t.Errorf("//s//s//s//s = %d, want 0 (DRL is 2)", got)
	}
}

func TestCountStringParseError(t *testing.T) {
	ev := fig2Evaluator(t)
	if _, err := ev.CountString("not a query"); err == nil {
		t.Error("CountString accepted garbage")
	}
}
