package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, children
// sorted by label values, histograms as cumulative _bucket/_sum/_count
// series with `le` boundaries in scaled units. Counters render as integers
// (a ns total can exceed float64's 2^53 integer range). Scraping is
// lock-light: it snapshots each family's child list under the family mutex,
// then reads stripes with atomic loads.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil || r.disabled {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) {
	typ := "counter"
	switch f.kind {
	case kindGauge, kindGaugeFunc:
		typ = "gauge"
	case kindHistogram:
		typ = "histogram"
	}
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, typ)

	switch f.kind {
	case kindGaugeFunc:
		fmt.Fprintf(w, "%s %s\n", f.name, formatFloat(f.fn()))
		return
	case kindCounterFunc:
		if f.fnU != nil { // unlabeled CounterFunc
			fmt.Fprintf(w, "%s %d\n", f.name, f.fnU())
			return
		}
		// Labeled CounterFuncVec: fall through to per-child rendering.
	}

	f.mu.Lock()
	children := append([]*child(nil), f.order...)
	var fns map[*child]func() uint64
	if f.kind == kindCounterFunc {
		// Snapshot the per-child fns under the lock: With may rebind one
		// concurrently with a scrape.
		fns = make(map[*child]func() uint64, len(children))
		for _, c := range children {
			fns[c] = c.fnU
		}
	}
	f.mu.Unlock()
	sort.Slice(children, func(i, j int) bool {
		return labelKey(children[i].labelVals) < labelKey(children[j].labelVals)
	})

	for _, c := range children {
		lbl := f.labelString(c.labelVals, "")
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, lbl, c.counter.Value())
		case kindCounterFunc:
			if fn := fns[c]; fn != nil {
				fmt.Fprintf(w, "%s%s %d\n", f.name, lbl, fn())
			}
		case kindGauge:
			fmt.Fprintf(w, "%s%s %s\n", f.name, lbl, formatFloat(float64(c.gauge.Value())))
		case kindHistogram:
			f.writeHistogram(w, c)
		}
	}
}

// writeHistogram emits the cumulative bucket series. Trailing empty buckets
// are trimmed (the layout spans ~18 minutes of nanoseconds; most of it is
// never hit), but the +Inf bucket is always present.
func (f *family) writeHistogram(w *bufio.Writer, c *child) {
	counts, sum := c.hist.Snapshot()
	last := -1
	for i, n := range counts {
		if n > 0 {
			last = i
		}
	}
	scale := c.hist.opts.Scale
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		le := formatFloat(c.hist.upperEdge(i) / scale)
		fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, f.labelString(c.labelVals, le), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, f.labelString(c.labelVals, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", f.name, f.labelString(c.labelVals, ""), formatFloat(float64(sum)/scale))
	fmt.Fprintf(w, "%s_count%s %d\n", f.name, f.labelString(c.labelVals, ""), cum)
}

// labelString renders {k="v",...}, appending le when non-empty. Empty label
// sets render as nothing (bare metric name).
func (f *family) labelString(vals []string, le string) string {
	if len(vals) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, name := range f.labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(vals) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus clients expect: shortest
// round-trip representation, integral values without an exponent where
// reasonable.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
