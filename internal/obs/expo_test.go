package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden locks the exact exposition bytes for a registry
// exercising every metric kind — counters as integers, histograms with
// trimmed trailing buckets plus +Inf, scaled `le` edges, label escaping,
// families sorted by name and children by label values.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "registered first, sorts last").Add(7)
	r.Counter("aa_first_total", "registered later, sorts first").Add(1)
	r.Gauge("budget_bytes", "a gauge").Set(-42)
	r.GaugeFunc("computed_ratio", "a gauge func", func() float64 { return 0.5 })

	vec := r.CounterVec("requests_total", "by route and class", "route", "code")
	vec.With("/v1/estimate", "5xx").Inc()
	vec.With("/v1/estimate", "2xx").Add(10)
	vec.With(`/odd"path\n`, "2xx").Inc() // label escaping

	gv := r.GaugeVec("repl_lag_bytes", "a labeled gauge family", "target")
	gv.With("node-b").Set(4096)
	gv.With("node-c").Set(0)
	gv.With("gone").Set(1)
	gv.Delete("gone") // deleted children stop exporting
	r.GaugeVec("repl_empty_bytes", "labeled family with no children yet", "target")

	// Nanosecond histogram exposed in seconds: 1500ns lands in (1024,2048],
	// le renders as 2.048e-06.
	lat := r.Histogram("estimate_seconds", "latency\nwith newline in help", HistogramOpts{Scale: 1e9})
	lat.Observe(1500)
	lat.Observe(1500)
	lat.Observe(40) // bucket (32,64]

	// Sub-bucketed ratio histogram (q-error shape): Scale 64, SubBits 2.
	q := r.Histogram("qerror", "ratio", HistogramOpts{Scale: 64, SubBits: 2, MaxExp: 20})
	q.Observe(64)  // q=1.0
	q.Observe(200) // q=3.125

	empty := r.Histogram("never_observed_seconds", "only +Inf and zero sum", HistogramOpts{Scale: 1e9})
	_ = empty

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "expo.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionParses is a light-weight format lint: every non-comment
// line is `name{labels} value` with balanced quotes, every family has HELP
// then TYPE, histogram children end with a +Inf bucket.
func TestExpositionParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "x").Inc()
	h := r.Histogram("b_seconds", "y", HistogramOpts{Scale: 1e9})
	h.Observe(5000)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	sawInf := false
	for _, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("bad comment line %q", line)
			}
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("no value separator in %q", line)
			continue
		}
		if strings.Count(line[:i], `"`)%2 != 0 {
			t.Errorf("unbalanced quotes in %q", line)
		}
		if strings.Contains(line, `le="+Inf"`) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Error("histogram exposition missing +Inf bucket")
	}
}
