// Package obs is xseedd's zero-dependency metrics core: atomic counters,
// gauges, and fixed-bucket histograms designed so that hot-path updates are
// wait-free and allocation-free, plus a hand-rolled Prometheus text-format
// exposition (expo.go) and a pooled per-stage span recorder (span.go) for
// the estimate path.
//
// # Wait-free updates
//
// Every counter and histogram is striped: writers pick a stripe with
// goroutine affinity and each stripe owns its own cache line, so concurrent
// increments from different goroutines never contend on one line (no CAS
// loops, no mutexes — a single atomic add per update). Reads (scrapes, the
// /v1/stats projection) sum the stripes; a scrape concurrent with updates
// sees some valid intermediate total, and after writers quiesce the sum is
// exact — no increment is ever lost or double-counted.
//
// # Registration vs. update
//
// Registering families and resolving labeled children takes locks and
// allocates; it is meant to happen once, at construction time (a server
// resolves its per-route children when it mounts the mux, the registry
// resolves per-synopsis children when an entry is created). The resolved
// *Counter/*Histogram handles are what hot paths touch.
//
// # Disabled mode
//
// Disabled is a registry whose constructors return inert metrics: updates
// are a nil-check and return. It exists so the instrumentation overhead is
// measurable — BenchmarkEstimateObsOverhead runs the estimate path against
// a live registry and against Disabled, and CI gates the difference.
package obs

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

// numStripes is the number of independently updated cells behind each
// counter and histogram. Power of two (stripe selection masks).
const numStripes = 8

// cellStride spaces stripes one cache line (64 bytes = 8 uint64s) apart so
// two stripes never share a line.
const cellStride = 8

// stripe returns a stripe index with goroutine affinity: goroutines live on
// distinct stack allocations, so the address of a stack byte — shifted past
// typical frame sizes — spreads concurrent writers across stripes while
// costing a handful of instructions and no allocation (the pointer never
// escapes; it is converted to an integer immediately).
func stripe() int {
	var b byte
	return int(uintptr(unsafe.Pointer(&b))>>10) & (numStripes - 1)
}

// A Counter is a monotonically increasing striped counter. The zero/nil
// Counter (and any counter from Disabled) is inert.
type Counter struct {
	cells []atomic.Uint64 // numStripes * cellStride; nil = disabled
}

func newCounter() *Counter {
	return &Counter{cells: make([]atomic.Uint64, numStripes*cellStride)}
}

// Add adds n. Wait-free, allocation-free.
func (c *Counter) Add(n uint64) {
	if c == nil || c.cells == nil {
		return
	}
	c.cells[stripe()*cellStride].Add(n)
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes. Exact once writers quiesce; a valid intermediate
// total while they run.
func (c *Counter) Value() uint64 {
	if c == nil || c.cells == nil {
		return 0
	}
	var v uint64
	for i := 0; i < numStripes; i++ {
		v += c.cells[i*cellStride].Load()
	}
	return v
}

// A Gauge is a settable instantaneous value (not striped: gauges are
// set/add from cold paths, and a striped Set has no meaning).
type Gauge struct {
	v *atomic.Int64 // nil = disabled
}

func newGauge() *Gauge { return &Gauge{v: new(atomic.Int64)} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil || g.v == nil {
		return
	}
	g.v.Store(v)
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d int64) {
	if g == nil || g.v == nil {
		return
	}
	g.v.Add(d)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil || g.v == nil {
		return 0
	}
	return g.v.Load()
}

// HistogramOpts shapes a histogram's fixed bucket layout.
type HistogramOpts struct {
	// Scale divides recorded values on exposition. Durations are recorded
	// in integer nanoseconds with Scale 1e9, so the wire unit is seconds;
	// dimensionless ratios (q-error) record value*2^k with Scale 2^k.
	// 0 means 1.
	Scale float64

	// SubBits adds 2^SubBits sub-buckets per power-of-two octave (0 = pure
	// power-of-two buckets; 2 = factor-1.25 resolution). Values below
	// 2^SubBits get exact singleton buckets.
	SubBits uint

	// MaxExp caps the bucket range at 2^MaxExp (larger values land in the
	// final bucket). 0 means 40 (~18 minutes in nanoseconds).
	MaxExp uint
}

func (o HistogramOpts) withDefaults() HistogramOpts {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.MaxExp == 0 {
		o.MaxExp = 40
	}
	if o.SubBits > 3 {
		o.SubBits = 3
	}
	if o.MaxExp <= o.SubBits {
		o.MaxExp = o.SubBits + 1
	}
	return o
}

// A Histogram counts observations into fixed log2 buckets: bucket i of the
// base layout (SubBits 0) holds values in [2^(i-1), 2^i), so exposition
// boundaries are exact powers of two of the recorded unit. Observing is one
// or two striped atomic adds — wait-free, allocation-free.
type Histogram struct {
	opts    HistogramOpts
	buckets int
	stride  int             // uint64 slots per stripe: buckets + sum, padded to a line
	cells   []atomic.Uint64 // numStripes * stride; nil = disabled
}

func newHistogram(opts HistogramOpts) *Histogram {
	opts = opts.withDefaults()
	b := int(opts.MaxExp-opts.SubBits+1) << opts.SubBits
	stride := (b + 1 + cellStride - 1) / cellStride * cellStride
	return &Histogram{
		opts:    opts,
		buckets: b,
		stride:  stride,
		cells:   make([]atomic.Uint64, numStripes*stride),
	}
}

// bucketIndex places a non-negative value: exact singletons below
// 2^SubBits, then 2^SubBits sub-buckets per octave.
func (h *Histogram) bucketIndex(v uint64) int {
	b := h.opts.SubBits
	var idx int
	if v < 1<<b {
		idx = int(v)
	} else {
		exp := uint(bits.Len64(v)) - 1
		sub := (v >> (exp - b)) - (1 << b)
		idx = int((exp-b+1)<<b) + int(sub)
	}
	if idx >= h.buckets {
		idx = h.buckets - 1
	}
	return idx
}

// upperEdge is bucket i's exclusive upper boundary in recorded units.
func (h *Histogram) upperEdge(i int) float64 {
	b := h.opts.SubBits
	if i < 1<<b {
		return float64(i + 1)
	}
	block := uint(i) >> b
	sub := uint64(i) & (1<<b - 1)
	return float64((1<<b + sub + 1) << (block - 1))
}

// Observe records one value (negative values clamp to zero). Wait-free,
// allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil || h.cells == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	base := stripe() * h.stride
	h.cells[base+h.bucketIndex(uint64(v))].Add(1)
	h.cells[base+h.buckets].Add(uint64(v))
}

// Snapshot sums the stripes into per-bucket counts plus the value sum.
func (h *Histogram) Snapshot() (counts []uint64, sum uint64) {
	if h == nil || h.cells == nil {
		return nil, 0
	}
	counts = make([]uint64, h.buckets)
	for s := 0; s < numStripes; s++ {
		base := s * h.stride
		for i := range counts {
			counts[i] += h.cells[base+i].Load()
		}
		sum += h.cells[base+h.buckets].Load()
	}
	return counts, sum
}

// Count is the total number of observations.
func (h *Histogram) Count() uint64 {
	counts, _ := h.Snapshot()
	var n uint64
	for _, c := range counts {
		n += c
	}
	return n
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper edge of the
// bucket holding it, in exposition units (recorded value / Scale) — an
// upper bound with the bucket layout's resolution. 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _ := h.Snapshot()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= target {
			return h.upperEdge(i) / h.opts.Scale
		}
	}
	return h.upperEdge(h.buckets-1) / h.opts.Scale
}

// metricKind discriminates exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// child is one labeled instance of a family.
type child struct {
	labelVals []string
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
	fnU       func() uint64 // kindCounterFunc children (CounterFuncVec)
}

// family is one named metric with its labeled children.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	hopts  HistogramOpts
	fn     func() float64 // kindGaugeFunc
	fnU    func() uint64  // kindCounterFunc

	mu    sync.Mutex
	byKey map[string]*child
	order []*child // insertion order; sorted on exposition
}

// Registry is a set of metric families. Register families once, resolve
// labeled children once, and hand the resolved metrics to hot paths; scrape
// with WritePrometheus. A nil or Disabled registry hands out inert metrics.
type Registry struct {
	disabled bool

	mu       sync.Mutex
	families map[string]*family
	order    []*family
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Disabled is the no-op registry: every metric it creates is inert (updates
// are a nil check), and scraping it writes nothing. Use it to run serving
// benchmarks with instrumentation compiled in but switched off.
var Disabled = &Registry{disabled: true}

// noop singletons handed out by Disabled.
var (
	noopCounter = &Counter{}
	noopGauge   = &Gauge{}
	noopHist    = &Histogram{}
)

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// register creates (or fetches the identical) family. Mismatched
// re-registration is a programming error and panics — silently serving two
// shapes under one name would corrupt the exposition.
func (r *Registry) register(name, help string, kind metricKind, labels []string, hopts HistogramOpts, fn func() float64) *family {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %q re-registered with different labels", name))
			}
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, hopts: hopts, fn: fn, byKey: make(map[string]*child)}
	r.families[name] = f
	r.order = append(r.order, f)
	sort.Slice(r.order, func(i, j int) bool { return r.order[i].name < r.order[j].name })
	return f
}

const labelSep = "\x00"

func labelKey(vals []string) string {
	switch len(vals) {
	case 0:
		return ""
	case 1:
		return vals[0]
	}
	n := 0
	for _, v := range vals {
		n += len(v) + 1
	}
	var b []byte
	b = make([]byte, 0, n)
	for i, v := range vals {
		if i > 0 {
			b = append(b, labelSep...)
		}
		b = append(b, v...)
	}
	return string(b)
}

// resolve returns the child for vals, creating it on first use.
func (f *family) resolve(vals []string) *child {
	if len(vals) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(vals)))
	}
	key := labelKey(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.byKey[key]; ok {
		return c
	}
	c := &child{labelVals: append([]string(nil), vals...)}
	switch f.kind {
	case kindCounter:
		c.counter = newCounter()
	case kindGauge:
		c.gauge = newGauge()
	case kindHistogram:
		c.hist = newHistogram(f.hopts)
	}
	f.byKey[key] = c
	f.order = append(f.order, c)
	return c
}

// remove drops the child for vals (a deleted synopsis's series stop being
// exported; handles already resolved keep working, unexported).
func (f *family) remove(vals []string) {
	key := labelKey(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.byKey[key]
	if !ok {
		return
	}
	delete(f.byKey, key)
	for i, o := range f.order {
		if o == c {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil || r.disabled {
		return noopCounter
	}
	return r.register(name, help, kindCounter, nil, HistogramOpts{}, nil).resolve(nil).counter
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil || r.disabled {
		return noopGauge
	}
	return r.register(name, help, kindGauge, nil, HistogramOpts{}, nil).resolve(nil).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// for values another subsystem already maintains (rebalance generations,
// cache entry counts). fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil || r.disabled {
		return
	}
	r.register(name, help, kindGaugeFunc, nil, HistogramOpts{}, fn)
}

// CounterFunc registers a counter whose value is read at scrape time from a
// monotone source another subsystem already maintains (the cache's hit
// counters). The JSON stats view and the exposition then read the same
// cells, so they can never disagree. fn must be monotonically non-decreasing
// and safe to call from any goroutine.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	if r == nil || r.disabled {
		return
	}
	f := r.register(name, help, kindCounterFunc, nil, HistogramOpts{}, nil)
	f.fnU = fn
}

// Histogram registers (or fetches) an unlabeled histogram.
func (r *Registry) Histogram(name, help string, opts HistogramOpts) *Histogram {
	if r == nil || r.disabled {
		return noopHist
	}
	return r.register(name, help, kindHistogram, nil, opts, nil).resolve(nil).hist
}

// CounterVec is a labeled counter family; resolve children once with With.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil || r.disabled {
		return &CounterVec{}
	}
	return &CounterVec{f: r.register(name, help, kindCounter, labels, HistogramOpts{}, nil)}
}

// With resolves the child counter for the label values (creating it on
// first use). Resolve once, outside hot paths.
func (v *CounterVec) With(vals ...string) *Counter {
	if v == nil || v.f == nil {
		return noopCounter
	}
	return v.f.resolve(vals).counter
}

// Delete stops exporting the child for the label values.
func (v *CounterVec) Delete(vals ...string) {
	if v == nil || v.f == nil {
		return
	}
	v.f.remove(vals)
}

// GaugeVec is a labeled gauge family; resolve children once with With.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil || r.disabled {
		return &GaugeVec{}
	}
	return &GaugeVec{f: r.register(name, help, kindGauge, labels, HistogramOpts{}, nil)}
}

// With resolves the child gauge for the label values (creating it on first
// use). Resolve once, outside hot paths.
func (v *GaugeVec) With(vals ...string) *Gauge {
	if v == nil || v.f == nil {
		return noopGauge
	}
	return v.f.resolve(vals).gauge
}

// Delete stops exporting the child for the label values.
func (v *GaugeVec) Delete(vals ...string) {
	if v == nil || v.f == nil {
		return
	}
	v.f.remove(vals)
}

// CounterFuncVec is a labeled family of scrape-time counters: each child
// reads its value from a monotone source another subsystem already
// maintains, so a JSON stats view and the exposition can share one set of
// atomics and never disagree. Register the family once, then attach each
// child with With.
type CounterFuncVec struct{ f *family }

// CounterFuncVec registers (or fetches) a labeled counter-func family.
func (r *Registry) CounterFuncVec(name, help string, labels ...string) *CounterFuncVec {
	if r == nil || r.disabled {
		return &CounterFuncVec{}
	}
	return &CounterFuncVec{f: r.register(name, help, kindCounterFunc, labels, HistogramOpts{}, nil)}
}

// With binds the child for the label values to fn (replacing any previous
// binding). fn must be monotonically non-decreasing and safe to call from
// any goroutine.
func (v *CounterFuncVec) With(fn func() uint64, vals ...string) {
	if v == nil || v.f == nil {
		return
	}
	c := v.f.resolve(vals)
	v.f.mu.Lock()
	c.fnU = fn
	v.f.mu.Unlock()
}

// Delete stops exporting the child for the label values.
func (v *CounterFuncVec) Delete(vals ...string) {
	if v == nil || v.f == nil {
		return
	}
	v.f.remove(vals)
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, opts HistogramOpts, labels ...string) *HistogramVec {
	if r == nil || r.disabled {
		return &HistogramVec{}
	}
	return &HistogramVec{f: r.register(name, help, kindHistogram, labels, opts, nil)}
}

// With resolves the child histogram for the label values.
func (v *HistogramVec) With(vals ...string) *Histogram {
	if v == nil || v.f == nil {
		return noopHist
	}
	return v.f.resolve(vals).hist
}

// Delete stops exporting the child for the label values.
func (v *HistogramVec) Delete(vals ...string) {
	if v == nil || v.f == nil {
		return
	}
	v.f.remove(vals)
}
