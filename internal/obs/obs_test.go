package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterExactUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test")
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	// Scrape concurrently with the writers: totals must be torn-read-free
	// (monotone, never above the final value).
	done := make(chan struct{})
	go func() {
		defer close(done)
		var prev uint64
		for i := 0; i < 1000; i++ {
			v := c.Value()
			if v < prev {
				t.Errorf("counter went backwards: %d -> %d", prev, v)
				return
			}
			if v > goroutines*perG {
				t.Errorf("counter overshot: %d", v)
				return
			}
			prev = v
		}
	}()
	wg.Wait()
	<-done
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestHistogramExactUnderConcurrency(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "test", HistogramOpts{})
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}()
	}
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	var wantSum uint64
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			wantSum += uint64(g*1000 + i)
		}
	}
	if _, sum := h.Snapshot(); sum != wantSum {
		t.Fatalf("sum = %d, want %d", sum, wantSum)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("allocs_c_total", "test")
	h := r.Histogram("allocs_h", "test", HistogramOpts{})
	vec := r.HistogramVec("allocs_v", "test", HistogramOpts{}, "stage")
	set := NewStageSet(vec)
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		h.Observe(1234)
		set.Observe(StagePlanRun, 999)
	}); n != 0 {
		t.Fatalf("metric updates allocate: %.1f allocs/op", n)
	}
	// Pin sampling to 1 so the allocation check covers the *sampled* (clock
	// reading, histogram charging) path, not just the skip branch.
	defer func(old uint32) { spanSampleEvery = old }(spanSampleEvery)
	spanSampleEvery = 1
	if n := testing.AllocsPerRun(1000, func() {
		sp := set.Span()
		sp.Mark(StageParse)
		sp.Mark(StageCompile)
		sp.Flush()
		sp.End()
	}); n != 0 {
		t.Fatalf("span lifecycle allocates: %.1f allocs/op", n)
	}
}

func TestDisabledIsInert(t *testing.T) {
	c := Disabled.Counter("x_total", "test")
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("disabled counter counted")
	}
	Disabled.Gauge("g", "test").Set(7)
	Disabled.Histogram("h", "test", HistogramOpts{}).Observe(5)
	set := NewStageSet(Disabled.HistogramVec("v", "test", HistogramOpts{}, "stage"))
	if set.Enabled() {
		t.Fatal("disabled stage set reports enabled")
	}
	if sp := set.Span(); sp != nil {
		t.Fatal("disabled stage set leased a span")
	}
	// Nil-safe all the way down.
	var nilSpan *Span
	nilSpan.Mark(StageParse)
	nilSpan.Reset()
	nilSpan.Flush()
	nilSpan.End()
	var sb strings.Builder
	if err := Disabled.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("disabled scrape wrote %q, err %v", sb.String(), err)
	}
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(1)
		set.Observe(StagePlanRun, 1)
		sp := set.Span()
		sp.Mark(StageParse)
		sp.End()
	}); n != 0 {
		t.Fatalf("disabled updates allocate: %.1f allocs/op", n)
	}
}

func TestBucketLayout(t *testing.T) {
	// Pure power-of-two (SubBits 0): bucket i covers [2^(i-1), 2^i).
	h := newHistogram(HistogramOpts{})
	cases := []struct {
		v    uint64
		idx  int
		edge float64
	}{
		{0, 0, 1}, {1, 1, 2}, {2, 2, 4}, {3, 2, 4}, {4, 3, 8},
		{1023, 10, 1024}, {1024, 11, 2048}, {1500, 11, 2048},
	}
	for _, c := range cases {
		if got := h.bucketIndex(c.v); got != c.idx {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.idx)
		}
		if got := h.upperEdge(c.idx); got != c.edge {
			t.Errorf("upperEdge(%d) = %g, want %g", c.idx, got, c.edge)
		}
	}
	// Overflow clamps to the last bucket; negatives clamp to zero.
	h.Observe(math.MaxInt64)
	h.Observe(-5)
	counts, _ := h.Snapshot()
	if counts[0] != 1 || counts[len(counts)-1] != 1 {
		t.Fatalf("clamping: counts[0]=%d counts[last]=%d", counts[0], counts[len(counts)-1])
	}

	// SubBits 2: singletons below 4, then 4 sub-buckets per octave, and
	// every value lands strictly below its bucket's upper edge but at or
	// above the previous bucket's.
	h2 := newHistogram(HistogramOpts{SubBits: 2, MaxExp: 12})
	for v := uint64(0); v < 1<<13; v++ {
		i := h2.bucketIndex(v)
		if float64(v) >= h2.upperEdge(i) && i < h2.buckets-1 {
			t.Fatalf("v=%d >= upperEdge(%d)=%g", v, i, h2.upperEdge(i))
		}
		if i > 0 && float64(v) < h2.upperEdge(i-1) {
			t.Fatalf("v=%d < upperEdge(%d)=%g but placed in %d", v, i-1, h2.upperEdge(i-1), i)
		}
	}
}

func TestQuantile(t *testing.T) {
	h := newHistogram(HistogramOpts{})
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(100) // bucket [64,128), edge 128
	}
	h.Observe(100000) // outlier, edge 131072
	if q := h.Quantile(0.5); q != 128 {
		t.Fatalf("p50 = %g, want 128", q)
	}
	if q := h.Quantile(1); q != 131072 {
		t.Fatalf("p100 = %g, want 131072", q)
	}
	// Scale divides on the way out.
	hs := newHistogram(HistogramOpts{Scale: 64})
	hs.Observe(64) // 1.0 in scaled units; bucket edge 128 -> 2.0
	if q := hs.Quantile(0.5); q != 2 {
		t.Fatalf("scaled p50 = %g, want 2", q)
	}
}

func TestVecResolveAndDelete(t *testing.T) {
	r := NewRegistry()
	vec := r.CounterVec("req_total", "test", "route", "status")
	a := vec.With("/v1/estimate", "2xx")
	if b := vec.With("/v1/estimate", "2xx"); a != b {
		t.Fatal("resolve not idempotent")
	}
	a.Add(2)
	vec.With("/v1/estimate", "5xx").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`req_total{route="/v1/estimate",status="2xx"} 2`,
		`req_total{route="/v1/estimate",status="5xx"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	vec.Delete("/v1/estimate", "5xx")
	sb.Reset()
	r.WritePrometheus(&sb)
	if strings.Contains(sb.String(), "5xx") {
		t.Fatal("deleted child still exported")
	}
	// The surviving handle still works, it's just unexported.
	a.Inc()
	if a.Value() != 3 {
		t.Fatal("surviving handle broken after sibling delete")
	}
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "test")
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("shape change", func() { r.Gauge("dup_total", "test") })
	mustPanic("bad name", func() { r.Counter("bad name", "test") })
	mustPanic("bad label", func() { r.CounterVec("ok_total", "test", "bad-label") })
	mustPanic("label arity", func() { r.CounterVec("arity_total", "test", "a").With("x", "y") })
	// Identical re-registration is fine and returns the same handle.
	if r.Counter("dup_total", "test") == nil {
		t.Fatal("re-registration returned nil")
	}
}

func TestSpanAccumulates(t *testing.T) {
	defer func(old uint32) { spanSampleEvery = old }(spanSampleEvery)
	spanSampleEvery = 1 // deterministic: every query sampled
	r := NewRegistry()
	vec := r.HistogramVec("stage_ns", "test", HistogramOpts{}, "stage", "syn")
	set := NewStageSet(vec, "xmark")
	sp := set.Span()
	sp.Mark(StageParse)
	sp.Mark(StageCompile)
	sp.Reset()
	sp.Mark(StageParse) // second parse charge accumulates before Flush
	sp.Flush()
	sp.End()
	if got := vec.With(StageParse.String(), "xmark").Count(); got != 1 {
		t.Fatalf("parse count = %d, want 1 (accumulated, flushed once)", got)
	}
	if got := vec.With(StageCompile.String(), "xmark").Count(); got != 1 {
		t.Fatalf("compile count = %d, want 1", got)
	}
	if got := vec.With(StagePlanRun.String(), "xmark").Count(); got != 0 {
		t.Fatalf("plan_run count = %d, want 0", got)
	}
}
