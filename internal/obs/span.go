package obs

import (
	"sync"
	"time"
)

// A Stage names one phase of answering an estimate. The estimate path
// accounts every query's nanoseconds to exactly these stages, so the sum of
// the stage histograms is the path's total serving time.
type Stage int

const (
	// StageCacheProbe is plan-cache and result-cache lookup/insert time.
	StageCacheProbe Stage = iota
	// StageParse is XPath text → parsed query.
	StageParse
	// StageCompile is parsed query → label-resolved plan.
	StageCompile
	// StagePlanRun is compiled-plan execution against the snapshot.
	StagePlanRun

	numStages
)

var stageNames = [numStages]string{"cache_probe", "parse", "compile", "plan_run"}

// String returns the stage's label value ("parse", "plan_run", ...).
func (s Stage) String() string {
	if s < 0 || s >= numStages {
		return "unknown"
	}
	return stageNames[s]
}

// Stages lists every stage in order, for registration loops.
func Stages() []Stage {
	return []Stage{StageCacheProbe, StageParse, StageCompile, StagePlanRun}
}

// A StageSet is the resolved per-stage histograms for one synopsis —
// resolved once at entry creation so the hot path indexes an array instead
// of touching a label map. A nil StageSet (or one built from Disabled) is
// inert and skips all clock reads.
type StageSet struct {
	hist [numStages]*Histogram
	on   bool
}

// NewStageSet resolves the per-stage children of a HistogramVec whose first
// label is the stage name; extra label values (synopsis name) follow.
func NewStageSet(v *HistogramVec, labels ...string) *StageSet {
	s := &StageSet{}
	if v == nil || v.f == nil {
		return s
	}
	vals := make([]string, 0, len(labels)+1)
	for _, st := range Stages() {
		vals = append(vals[:0], st.String())
		vals = append(vals, labels...)
		s.hist[st] = v.With(vals...)
	}
	s.on = true
	return s
}

// Observe records ns against one stage directly (no span) — for durations
// the caller already measured, like the plan-run time the estimate path
// records anyway for cache cost accounting.
func (s *StageSet) Observe(st Stage, ns int64) {
	if s == nil || !s.on {
		return
	}
	s.hist[st].Observe(ns)
}

// Enabled reports whether observations will be recorded; lets callers skip
// building inputs that only feed the set.
func (s *StageSet) Enabled() bool { return s != nil && s.on }

// spanSampleEvery is the span sampling period: one in this many queries
// carries stage timing (the decision is made at each Reset). A stage
// breakdown needs a clock read per stage boundary — ~5 per query — which
// alone costs more than the metrics layer's overhead budget on a
// microsecond-scale estimate; sampling keeps the histograms statistically
// faithful while the other spanSampleEvery-1 queries pay a single branch.
// Must be a power of two. A var (not const) only so tests can pin it to 1.
var spanSampleEvery uint32 = 64

// A Span accumulates one query's stage durations with a single running
// timestamp: each Mark charges the time since the previous mark to a stage,
// so adjacent stages share one clock read. Spans are pooled — the estimate
// loop's per-query cost is zero allocations, and when the StageSet is
// disabled, zero clock reads too. Stage timing is sampled (one query in
// spanSampleEvery records; the rest skip every clock read), so the
// histograms' _count series count sampled queries, not all queries.
//
//	sp := set.Span()
//	... probe cache ...
//	sp.Mark(StageCacheProbe)
//	... parse ...
//	sp.Mark(StageParse)
//	sp.Flush() // record accumulated stages (once per query)
//	sp.End()   // return to pool (once per batch)
type Span struct {
	set  *StageSet
	last time.Time
	ns   [numStages]int64
	any  bool
	tick uint32 // survives pooling: rotates the sampling phase
	skip bool   // this query is not sampled; Mark is a branch, no clocks
}

var spanPool = sync.Pool{New: func() any { return new(Span) }}

// Span leases a recorder. When the set is disabled it returns nil, and
// every Span method is nil-safe and free.
func (s *StageSet) Span() *Span {
	if s == nil || !s.on {
		return nil
	}
	sp := spanPool.Get().(*Span)
	sp.set = s
	sp.sample()
	return sp
}

// sample decides whether the next query is timed and, when it is, starts
// its clock. The tick survives pooling, so the rotation spreads samples
// across batches and single-query calls alike.
func (sp *Span) sample() {
	sp.tick++
	sp.skip = sp.tick&(spanSampleEvery-1) != 0
	if !sp.skip {
		sp.last = time.Now()
	}
}

// Reset starts the next query: makes its sampling decision and, when
// sampled, restarts the running timestamp without charging anything — call
// at a boundary where the elapsed time belongs to no stage (e.g. work
// between queries of a batch).
func (sp *Span) Reset() {
	if sp == nil {
		return
	}
	sp.sample()
}

// Mark charges the time since the last mark (or Reset, or Span) to st and
// restarts the clock. On an unsampled query it is a single branch.
func (sp *Span) Mark(st Stage) {
	if sp == nil || sp.skip {
		return
	}
	now := time.Now()
	sp.ns[st] += now.Sub(sp.last).Nanoseconds()
	sp.last = now
	sp.any = true
}

// Flush records the accumulated stage durations into the set's histograms
// and zeroes the accumulator — once per query in a batch loop.
func (sp *Span) Flush() {
	if sp == nil || !sp.any {
		return
	}
	for st, ns := range sp.ns {
		if ns > 0 {
			sp.set.hist[st].Observe(ns)
			sp.ns[st] = 0
		}
	}
	sp.any = false
}

// End flushes any remainder and returns the span to the pool. The span must
// not be used after End.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.Flush()
	sp.set = nil
	spanPool.Put(sp)
}
