// Package optdemo is the core of examples/optimizer: a toy cost-based
// plan choice driven purely through the xseed.Estimator interface, so the
// same logic runs against an embedded synopsis or a remote xseedd (the
// example's -remote flag) and an end-to-end test can prove both backends
// produce identical decisions.
package optdemo

import (
	"context"
	"fmt"
	"io"

	"xseed"
)

// Plan is a predicate evaluation order for a two-predicate twig: check
// First, then Second on the survivors.
type Plan struct {
	First, Second string
}

// Case is one twig whose predicate order the optimizer must pick.
type Case struct {
	Base string // context path, e.g. //open_auction
	A, B string // the two predicates to order
}

// DefaultCases are the XMark-flavored twigs the example scores.
func DefaultCases() []Case {
	return []Case{
		{"/site/open_auctions/open_auction", "bidder", "privacy"},
		{"/site/open_auctions/open_auction", "reserve", "bidder"},
		{"//person", "homepage", "creditcard"},
		{"//item", "shipping", "mailbox"},
	}
}

// Decision records one case's outcome: estimated plan costs, the chosen
// plan, and whether the choice matched the exact-cost decision.
type Decision struct {
	Case         Case
	Cost1, Cost2 float64 // estimated costs of [A->B] and [B->A]
	Chosen       Plan
	Correct      bool
}

// cost models a navigational evaluator: it pays |context| for the first
// filter and |survivors of First| for the second. Both cardinalities come
// from the estimator in one batch.
func cost(ctx context.Context, est xseed.Estimator, base string, p Plan) (float64, error) {
	res, err := est.EstimateBatch(ctx, []string{base, base + "[" + p.First + "]"})
	if err != nil {
		return 0, err
	}
	for _, r := range res {
		if r.Err != nil {
			return 0, r.Err
		}
	}
	return res[0].Estimate + res[1].Estimate, nil
}

func exactCost(d *xseed.Document, base string, p Plan) (float64, error) {
	all, err := d.Count(base)
	if err != nil {
		return 0, err
	}
	firstSurvivors, err := d.Count(base + "[" + p.First + "]")
	if err != nil {
		return 0, err
	}
	return float64(all + firstSurvivors), nil
}

// Run scores every case's two candidate plans with est, picks the cheaper,
// and verifies the pick against exact cardinalities from d. It renders the
// paper-style report to w (nil discards) and returns the decisions plus
// how many matched the exact-cost choice.
func Run(ctx context.Context, est xseed.Estimator, d *xseed.Document, cases []Case, w io.Writer) ([]Decision, int, error) {
	if w == nil {
		w = io.Discard
	}
	agree := 0
	out := make([]Decision, 0, len(cases))
	for _, c := range cases {
		p1 := Plan{c.A, c.B}
		p2 := Plan{c.B, c.A}
		est1, err := cost(ctx, est, c.Base, p1)
		if err != nil {
			return out, agree, fmt.Errorf("cost %s[%s]: %w", c.Base, p1.First, err)
		}
		est2, err := cost(ctx, est, c.Base, p2)
		if err != nil {
			return out, agree, fmt.Errorf("cost %s[%s]: %w", c.Base, p2.First, err)
		}
		act1, err := exactCost(d, c.Base, p1)
		if err != nil {
			return out, agree, err
		}
		act2, err := exactCost(d, c.Base, p2)
		if err != nil {
			return out, agree, err
		}

		chosen, alt := p1, p2
		if est2 < est1 {
			chosen, alt = p2, p1
		}
		correct := (est2 < est1) == (act2 < act1)
		if correct {
			agree++
		}
		out = append(out, Decision{Case: c, Cost1: est1, Cost2: est2, Chosen: chosen, Correct: correct})

		fmt.Fprintf(w, "twig %s[%s][%s]\n", c.Base, c.A, c.B)
		fmt.Fprintf(w, "  plan [%s]->[%s]: estimated cost %.0f (exact %.0f)\n", p1.First, p1.Second, est1, act1)
		fmt.Fprintf(w, "  plan [%s]->[%s]: estimated cost %.0f (exact %.0f)\n", p2.First, p2.Second, est2, act2)
		verdict := "matches"
		if !correct {
			verdict = "DIFFERS FROM"
		}
		fmt.Fprintf(w, "  optimizer picks [%s] first (over [%s]) — %s the exact-cost choice\n\n",
			chosen.First, alt.First, verdict)
	}
	fmt.Fprintf(w, "%d/%d plan choices match the exact-cost decision\n", agree, len(cases))
	return out, agree, nil
}
