package optdemo

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"

	"xseed"
	"xseed/client"
	"xseed/internal/server"
)

// TestLocalAndRemoteBackendsAgree is the acceptance end-to-end: the same
// optimizer logic produces identical estimated costs and identical plan
// choices whether its Estimator is the embedded adapter or the client SDK
// against a live xseedd serving the same synopsis — including identical
// rendered output.
func TestLocalAndRemoteBackendsAgree(t *testing.T) {
	ctx := context.Background()
	d, err := xseed.Generate("xmark", 0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Embedded run.
	var localOut bytes.Buffer
	localDecisions, localAgree, err := Run(ctx, xseed.NewLocalEstimator(syn), d, DefaultCases(), &localOut)
	if err != nil {
		t.Fatal(err)
	}

	// Remote run: upload the identical synopsis to a live daemon and
	// estimate through the SDK.
	s, err := server.New(server.Config{CacheCapacity: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	var blob bytes.Buffer
	if _, err := syn.WriteTo(&blob); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SnapshotPut(ctx, "optimizer-demo", &blob); err != nil {
		t.Fatal(err)
	}
	var remoteOut bytes.Buffer
	remoteDecisions, remoteAgree, err := Run(ctx, c.Synopsis("optimizer-demo"), d, DefaultCases(), &remoteOut)
	if err != nil {
		t.Fatal(err)
	}

	if localAgree != remoteAgree || len(localDecisions) != len(remoteDecisions) {
		t.Fatalf("agree local=%d remote=%d, decisions %d/%d",
			localAgree, remoteAgree, len(localDecisions), len(remoteDecisions))
	}
	for i := range localDecisions {
		l, r := localDecisions[i], remoteDecisions[i]
		if l.Cost1 != r.Cost1 || l.Cost2 != r.Cost2 {
			t.Errorf("case %d: estimated costs differ: local (%v, %v), remote (%v, %v)",
				i, l.Cost1, l.Cost2, r.Cost1, r.Cost2)
		}
		if l.Chosen != r.Chosen || l.Correct != r.Correct {
			t.Errorf("case %d: decision differs: local %+v, remote %+v", i, l, r)
		}
	}
	if localOut.String() != remoteOut.String() {
		t.Errorf("rendered reports differ:\nlocal:\n%s\nremote:\n%s", localOut.String(), remoteOut.String())
	}

	// The demo itself should make sense: the synopsis agrees with the
	// exact-cost decision on most cases.
	if localAgree < len(localDecisions)-1 {
		t.Errorf("only %d/%d decisions match exact costs", localAgree, len(localDecisions))
	}

	// Cancellation flows through the interface: a canceled context aborts
	// a remote run with the context's error.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := Run(cctx, c.Synopsis("optimizer-demo"), d, DefaultCases(), nil); err == nil {
		t.Error("canceled remote run succeeded")
	}
}
