// Package pathhash implements the incremental path hashing the XSEED paper
// uses to key hyper-edge table entries: a 32-bit hash (the paper stores
// "a hashed integer (32 bits)") computed incrementally as labels are
// appended to a rooted path (the incHash function of Section 5), plus a
// canonical hash for branching patterns of the form p[q1]...[qk]/r
// (Table 1 stores branching hyper-edges relative to the parent label).
//
// FNV-1a is used: it is cheap, incremental over byte streams, and collides
// negligibly at the path counts the paper reports (< 500,000 entries).
package pathhash

import "sort"

// Basis is the hash of the empty path (FNV-1a 32-bit offset basis).
const Basis uint32 = 2166136261

const prime = 16777619

func addByte(h uint32, b byte) uint32 {
	return (h ^ uint32(b)) * prime
}

// AddLabel extends a path hash with one more label (the paper's incHash):
// given the hash of p, it returns the hash of p/label.
func AddLabel(h uint32, label string) uint32 {
	h = addByte(h, '/')
	for i := 0; i < len(label); i++ {
		h = addByte(h, label[i])
	}
	return h
}

// String returns the FNV-1a hash of an arbitrary string. It is the hash the
// estimate cache uses to shard (synopsis, normalized query) keys, and is
// deliberately the same function family as the path hashes so the whole
// system shares one cheap, well-distributed 32-bit hash.
func String(s string) uint32 {
	h := Basis
	for i := 0; i < len(s); i++ {
		h = addByte(h, s[i])
	}
	return h
}

// Bytes extends a hash with raw bytes. It is the primitive compiled query
// plans use to finish a pattern hash at match time: the plan precomputes the
// canonical suffix bytes once (PatternSuffix) and combines them with the
// context label's precomputed String hash, byte-for-byte equivalent to
// calling Pattern with the label name.
func Bytes(h uint32, b []byte) uint32 {
	for i := 0; i < len(b); i++ {
		h = addByte(h, b[i])
	}
	return h
}

// Path returns the hash of a rooted label path.
func Path(labels ...string) uint32 {
	h := Basis
	for _, l := range labels {
		h = AddLabel(h, l)
	}
	return h
}

// Pattern returns the canonical hash of a branching pattern
// parent[pred1]...[predk]/next. Predicate labels are sorted so the key does
// not depend on predicate order in the query. next may be empty for
// patterns with no main-path continuation.
func Pattern(parent string, preds []string, next string) uint32 {
	sorted := make([]string, len(preds))
	copy(sorted, preds)
	sort.Strings(sorted)
	h := Basis
	for i := 0; i < len(parent); i++ {
		h = addByte(h, parent[i])
	}
	for _, p := range sorted {
		h = addByte(h, '[')
		for i := 0; i < len(p); i++ {
			h = addByte(h, p[i])
		}
		h = addByte(h, ']')
	}
	h = addByte(h, '/')
	for i := 0; i < len(next); i++ {
		h = addByte(h, next[i])
	}
	return h
}

// PatternSuffix returns the canonical byte suffix of a branching pattern —
// everything after the parent label: "[p1]...[pk]/next" with predicate
// labels sorted. For any parent label,
//
//	Pattern(parent, preds, next) == Bytes(String(parent), PatternSuffix(preds, next))
//
// which lets a compiled plan hash one pattern against many context labels
// without re-sorting or re-walking the predicate labels.
func PatternSuffix(preds []string, next string) []byte {
	sorted := make([]string, len(preds))
	copy(sorted, preds)
	sort.Strings(sorted)
	n := len(next) + 1
	for _, p := range sorted {
		n += len(p) + 2
	}
	out := make([]byte, 0, n)
	for _, p := range sorted {
		out = append(out, '[')
		out = append(out, p...)
		out = append(out, ']')
	}
	out = append(out, '/')
	out = append(out, next...)
	return out
}
