package pathhash

import (
	"testing"
	"testing/quick"
)

func TestStringMatchesIncremental(t *testing.T) {
	// String over a rendered path equals the incremental AddLabel hash the
	// HET uses, so cache keys and table keys share one hash family.
	if got, want := String("/a/b/c"), Path("a", "b", "c"); got != want {
		t.Fatalf("String(\"/a/b/c\") = %#x, Path(a,b,c) = %#x", got, want)
	}
	if String("") != Basis {
		t.Fatalf("String(\"\") = %#x, want Basis %#x", String(""), Basis)
	}
	if String("a") == String("b") {
		t.Fatal("distinct strings collide trivially")
	}
}

func TestIncrementality(t *testing.T) {
	// Path must equal chained AddLabel (the paper's incHash contract).
	h := Basis
	for _, l := range []string{"a", "c", "s", "s", "t"} {
		h = AddLabel(h, l)
	}
	if got := Path("a", "c", "s", "s", "t"); got != h {
		t.Errorf("Path = %x, incremental = %x", got, h)
	}
}

func TestDistinctness(t *testing.T) {
	// Separator must prevent concatenation aliasing.
	pairs := [][2]uint32{
		{Path("ab"), Path("a", "b")},
		{Path("a", "bc"), Path("ab", "c")},
		{Path("a"), Path("a", "")},
		{Path("a", "b"), Path("b", "a")},
	}
	for i, p := range pairs {
		if p[0] == p[1] {
			t.Errorf("pair %d collides: %x", i, p[0])
		}
	}
}

func TestPatternCanonicalization(t *testing.T) {
	if Pattern("d", []string{"e", "f"}, "g") != Pattern("d", []string{"f", "e"}, "g") {
		t.Error("pattern hash depends on predicate order")
	}
	if Pattern("d", []string{"e"}, "f") == Pattern("d", []string{"f"}, "e") {
		t.Error("pattern hash ignores pred/next roles")
	}
	if Pattern("d", []string{"e"}, "") == Pattern("d", []string{"e"}, "f") {
		t.Error("pattern hash ignores next label")
	}
	if Pattern("d", nil, "f") == Path("d", "f") {
		t.Error("pattern and path hashes alias")
	}
}

func TestQuickFewCollisions(t *testing.T) {
	// Property: distinct short label paths rarely collide. With ~2000
	// random paths the chance of any FNV-1a 32-bit collision is ~0.05%; use
	// fixed-seed quick generation and require zero collisions for
	// determinism.
	seen := map[uint32][]string{}
	collisions := 0
	f := func(a, b, c uint8) bool {
		labels := []string{
			string(rune('a' + a%26)),
			string(rune('a'+b%26)) + string(rune('a'+c%26)),
			string(rune('a' + c%26)),
		}
		h := Path(labels...)
		if prev, ok := seen[h]; ok {
			if prev[0] != labels[0] || prev[1] != labels[1] || prev[2] != labels[2] {
				collisions++
			}
		} else {
			seen[h] = labels
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if collisions > 0 {
		t.Errorf("%d collisions among short paths", collisions)
	}
}
