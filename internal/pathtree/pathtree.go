// Package pathtree implements the path tree of Aboulnaga et al. (VLDB 2001)
// as used by the XSEED paper: the tree of distinct rooted label paths of an
// XML document, annotated per node with the exact cardinality of the path
// and the exact backward selectivity (the fraction of parent-path elements
// that have at least one child with this label).
//
// The path tree drives hyper-edge table (HET) pre-computation — it supplies
// the actual cardinalities of all simple paths without touching the
// document again — and simple-path workload generation.
package pathtree

import (
	"strings"

	"xseed/internal/xmldoc"
)

// Node is a path tree node: one distinct rooted label path.
type Node struct {
	Label    xmldoc.LabelID
	Parent   *Node
	Children []*Node

	// Card is the number of document elements whose rooted label path is
	// exactly this node's path.
	Card int64

	// ParentsWithChild is the number of document elements on the parent
	// path that have at least one child with this label. The exact backward
	// selectivity of the path is ParentsWithChild / Parent.Card.
	ParentsWithChild int64

	Depth int // root = 1
}

// Bsel returns the exact backward selectivity of the node's path:
// |parentPath[label]| / |parentPath|. The root's bsel is 1.
func (n *Node) Bsel() float64 {
	if n.Parent == nil {
		return 1
	}
	return float64(n.ParentsWithChild) / float64(n.Parent.Card)
}

// Child returns the child with the given label, or nil.
func (n *Node) Child(label xmldoc.LabelID) *Node {
	for _, c := range n.Children {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// Path returns the rooted label-ID path ending at n.
func (n *Node) Path() []xmldoc.LabelID {
	var rev []xmldoc.LabelID
	for m := n; m != nil; m = m.Parent {
		rev = append(rev, m.Label)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// PathString renders the rooted path as an absolute XPath simple path, e.g.
// "/a/c/s".
func (n *Node) PathString(dict *xmldoc.Dict) string {
	var sb strings.Builder
	for _, id := range n.Path() {
		sb.WriteByte('/')
		sb.WriteString(dict.Name(id))
	}
	return sb.String()
}

// Tree is a document's path tree.
type Tree struct {
	Root  *Node
	dict  *xmldoc.Dict
	nodes int
}

// Dict returns the dictionary the tree's label IDs belong to.
func (t *Tree) Dict() *xmldoc.Dict { return t.dict }

// NumNodes returns the number of distinct rooted label paths.
func (t *Tree) NumNodes() int { return t.nodes }

// Walk visits every node in depth-first preorder.
func (t *Tree) Walk(visit func(*Node)) {
	var rec func(*Node)
	rec = func(n *Node) {
		visit(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	if t.Root != nil {
		rec(t.Root)
	}
}

// Find returns the node for the given rooted label path, or nil.
func (t *Tree) Find(path []xmldoc.LabelID) *Node {
	if t.Root == nil || len(path) == 0 || t.Root.Label != path[0] {
		return nil
	}
	n := t.Root
	for _, id := range path[1:] {
		n = n.Child(id)
		if n == nil {
			return nil
		}
	}
	return n
}

// FindNames is Find with label names, for tests and tools.
func (t *Tree) FindNames(names ...string) *Node {
	path := make([]xmldoc.LabelID, len(names))
	for i, s := range names {
		id, ok := t.dict.Lookup(s)
		if !ok {
			return nil
		}
		path[i] = id
	}
	return t.Find(path)
}

// Builder is an event sink that constructs a Tree in one document pass.
type Builder struct {
	tree  *Tree
	stack []*frame
	free  []*frame
}

type frame struct {
	node *Node
	// seen holds the distinct child labels of the current document element,
	// so ParentsWithChild is incremented once per (element, child label).
	// Distinct child labels per element are few; linear scan wins over a
	// map.
	seen []xmldoc.LabelID
}

// NewBuilder returns a path tree builder for documents using dict.
func NewBuilder(dict *xmldoc.Dict) *Builder {
	return &Builder{tree: &Tree{dict: dict}}
}

// OpenElement implements xmldoc.Sink.
func (b *Builder) OpenElement(label xmldoc.LabelID) {
	var node *Node
	if len(b.stack) == 0 {
		if b.tree.Root == nil {
			b.tree.Root = &Node{Label: label, Depth: 1}
			b.tree.nodes++
		}
		node = b.tree.Root
	} else {
		top := b.stack[len(b.stack)-1]
		parent := top.node
		node = parent.Child(label)
		if node == nil {
			node = &Node{Label: label, Parent: parent, Depth: parent.Depth + 1}
			parent.Children = append(parent.Children, node)
			b.tree.nodes++
		}
		if !contains(top.seen, label) {
			top.seen = append(top.seen, label)
			node.ParentsWithChild++
		}
	}
	node.Card++

	var f *frame
	if n := len(b.free); n > 0 {
		f = b.free[n-1]
		b.free = b.free[:n-1]
		f.node, f.seen = node, f.seen[:0]
	} else {
		f = &frame{node: node}
	}
	b.stack = append(b.stack, f)
}

// CloseElement implements xmldoc.Sink.
func (b *Builder) CloseElement(label xmldoc.LabelID) {
	n := len(b.stack)
	f := b.stack[n-1]
	b.stack = b.stack[:n-1]
	b.free = append(b.free, f)
}

// Tree returns the built tree. Call after the event stream completes.
func (b *Builder) Tree() *Tree { return b.tree }

func contains(s []xmldoc.LabelID, v xmldoc.LabelID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
