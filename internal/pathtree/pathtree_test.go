package pathtree

import (
	"testing"

	"xseed/internal/fixtures"
	"xseed/internal/xmldoc"
)

func buildFig2(t *testing.T) (*xmldoc.Document, *Tree) {
	t.Helper()
	dict := xmldoc.NewDict()
	pb := NewBuilder(dict)
	doc, err := xmldoc.Build(xmldoc.NewParserString(fixtures.PaperFigure2), dict, pb)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return doc, pb.Tree()
}

func TestCardinalitiesOnFigure2(t *testing.T) {
	_, pt := buildFig2(t)
	cases := []struct {
		path []string
		card int64
	}{
		{[]string{"a"}, 1},
		{[]string{"a", "t"}, 1},
		{[]string{"a", "u"}, 1},
		{[]string{"a", "c"}, 2},
		{[]string{"a", "c", "t"}, 2},
		{[]string{"a", "c", "p"}, 3},
		{[]string{"a", "c", "s"}, 5},
		{[]string{"a", "c", "s", "t"}, 2},
		{[]string{"a", "c", "s", "p"}, 9},
		{[]string{"a", "c", "s", "s"}, 2},
		{[]string{"a", "c", "s", "s", "t"}, 1},
		{[]string{"a", "c", "s", "s", "p"}, 2},
		{[]string{"a", "c", "s", "s", "s"}, 2},
		{[]string{"a", "c", "s", "s", "s", "p"}, 3},
	}
	for _, tc := range cases {
		n := pt.FindNames(tc.path...)
		if n == nil {
			t.Errorf("path %v not in tree", tc.path)
			continue
		}
		if n.Card != tc.card {
			t.Errorf("card(%v) = %d, want %d", tc.path, n.Card, tc.card)
		}
	}
	// The path tree must not contain paths absent from the document.
	if n := pt.FindNames("a", "c", "s", "s", "s", "s"); n != nil {
		t.Error("nonexistent path /a/c/s/s/s/s present in path tree")
	}
	if n := pt.FindNames("a", "p"); n != nil {
		t.Error("nonexistent path /a/p present in path tree")
	}
}

func TestBselOnFigure2(t *testing.T) {
	_, pt := buildFig2(t)
	cases := []struct {
		path []string
		bsel float64
	}{
		{[]string{"a"}, 1},                       // root
		{[]string{"a", "c"}, 1},                  // 1 of 1 a has c
		{[]string{"a", "c", "s"}, 1},             // 2 of 2 c have s
		{[]string{"a", "c", "s", "s"}, 0.4},      // 2 of 5 s have s child
		{[]string{"a", "c", "s", "t"}, 0.4},      // 2 of 5 s have t child
		{[]string{"a", "c", "s", "p"}, 1},        // 5 of 5 s have p child
		{[]string{"a", "c", "s", "s", "t"}, 0.5}, // 1 of 2 s/s has t
		{[]string{"a", "c", "s", "s", "s"}, 0.5}, // 1 of 2 s/s has s
	}
	for _, tc := range cases {
		n := pt.FindNames(tc.path...)
		if n == nil {
			t.Fatalf("path %v not in tree", tc.path)
		}
		if got := n.Bsel(); got != tc.bsel {
			t.Errorf("bsel(%v) = %g, want %g", tc.path, got, tc.bsel)
		}
	}
}

func TestStructure(t *testing.T) {
	_, pt := buildFig2(t)
	if pt.Root == nil || pt.Dict().Name(pt.Root.Label) != "a" {
		t.Fatal("root is not a")
	}
	// Distinct rooted paths in Figure 2: a, a/t, a/u, a/c, a/c/t, a/c/p,
	// a/c/s, a/c/s/{t,p,s}, a/c/s/s/{t,p,s}, a/c/s/s/s/p = 14.
	if got := pt.NumNodes(); got != 14 {
		t.Errorf("NumNodes = %d, want 14", got)
	}
	var walked int
	var cardSum int64
	pt.Walk(func(n *Node) {
		walked++
		cardSum += n.Card
	})
	if walked != pt.NumNodes() {
		t.Errorf("Walk visited %d nodes, want %d", walked, pt.NumNodes())
	}
	// Sum of path tree cardinalities = document node count.
	if cardSum != fixtures.PaperFigure2Nodes {
		t.Errorf("sum of cards = %d, want %d", cardSum, fixtures.PaperFigure2Nodes)
	}
}

func TestPathAndString(t *testing.T) {
	_, pt := buildFig2(t)
	n := pt.FindNames("a", "c", "s", "s")
	if n == nil {
		t.Fatal("path not found")
	}
	if got := n.PathString(pt.Dict()); got != "/a/c/s/s" {
		t.Errorf("PathString = %q, want /a/c/s/s", got)
	}
	if got := n.Depth; got != 4 {
		t.Errorf("Depth = %d, want 4", got)
	}
	if got := len(n.Path()); got != 4 {
		t.Errorf("len(Path) = %d, want 4", got)
	}
}

func TestFindMisses(t *testing.T) {
	_, pt := buildFig2(t)
	if pt.FindNames() != nil {
		t.Error("empty path should not resolve")
	}
	if pt.FindNames("zzz") != nil {
		t.Error("unknown label should not resolve")
	}
	if pt.FindNames("c") != nil {
		t.Error("non-root start should not resolve")
	}
}

func TestDepthsAndParents(t *testing.T) {
	_, pt := buildFig2(t)
	pt.Walk(func(n *Node) {
		if n.Parent == nil {
			if n.Depth != 1 {
				t.Errorf("root depth = %d", n.Depth)
			}
			return
		}
		if n.Depth != n.Parent.Depth+1 {
			t.Errorf("depth of %s = %d, parent %d", n.PathString(pt.Dict()), n.Depth, n.Parent.Depth)
		}
		if n.ParentsWithChild > n.Parent.Card {
			t.Errorf("ParentsWithChild %d exceeds parent card %d at %s",
				n.ParentsWithChild, n.Parent.Card, n.PathString(pt.Dict()))
		}
		if n.ParentsWithChild <= 0 {
			t.Errorf("ParentsWithChild = %d at %s, want > 0", n.ParentsWithChild, n.PathString(pt.Dict()))
		}
	})
}
