package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"
	"xseed/api"

	"xseed"
)

var benchState struct {
	once    sync.Once
	err     error
	doc     *xseed.Document
	syn     *xseed.Synopsis
	queries []string
}

// benchSetup builds one XMark synopsis and a simple-path workload, shared
// across the latency test and the benchmarks.
func benchSetup(t testing.TB) (*xseed.Synopsis, []string) {
	benchState.once.Do(func() {
		doc, err := xseed.Generate("xmark", 0.01, 1)
		if err != nil {
			benchState.err = err
			return
		}
		syn, err := xseed.BuildSynopsis(doc, nil)
		if err != nil {
			benchState.err = err
			return
		}
		var queries []string
		for _, q := range doc.SimplePathQueries(16) {
			queries = append(queries, q.String())
		}
		benchState.doc, benchState.syn, benchState.queries = doc, syn, queries
	})
	if benchState.err != nil {
		t.Fatal(benchState.err)
	}
	if len(benchState.queries) == 0 {
		t.Fatal("no benchmark queries")
	}
	return benchState.syn, benchState.queries
}

func percentile50(durations []time.Duration) time.Duration {
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return durations[len(durations)/2]
}

// TestWarmCacheBeatsUncachedP50 asserts the acceptance criterion: the p50
// per-query latency of the batched estimate endpoint on a warm cache is
// below the uncached Synopsis.Estimate path.
func TestWarmCacheBeatsUncachedP50(t *testing.T) {
	syn, queries := benchSetup(t)

	s, err := New(Config{CacheCapacity: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Add("xmark", syn, "bench"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// One large batch repeats the query set, the shape of optimizer traffic;
	// per-query latency is the request duration over the batch size.
	const reps = 64
	batch := make([]string, 0, reps*len(queries))
	for i := 0; i < reps; i++ {
		batch = append(batch, queries...)
	}
	body, err := json.Marshal(api.EstimateRequest{Queries: batch})
	if err != nil {
		t.Fatal(err)
	}
	post := func() {
		resp, err := ts.Client().Post(ts.URL+"/synopses/xmark/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out api.EstimateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(out.Results) != len(batch) {
			t.Fatalf("batch estimate: status %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
	post() // warm the cache

	const rounds = 20
	warm := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		post()
		warm = append(warm, time.Since(start)/time.Duration(len(batch)))
	}

	uncached := make([]time.Duration, 0, rounds*len(queries))
	for i := 0; i < rounds; i++ {
		for _, q := range queries {
			start := time.Now()
			if _, err := syn.Estimate(q); err != nil {
				t.Fatal(err)
			}
			uncached = append(uncached, time.Since(start))
		}
	}

	warmP50, uncachedP50 := percentile50(warm), percentile50(uncached)
	t.Logf("p50 per-query latency: warm cache %v, uncached Synopsis.Estimate %v", warmP50, uncachedP50)
	if warmP50 >= uncachedP50 {
		t.Fatalf("warm-cache p50 %v not below uncached p50 %v", warmP50, uncachedP50)
	}
}

// BenchmarkEstimateUncached is the library path every miss pays.
func BenchmarkEstimateUncached(b *testing.B) {
	syn, queries := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := syn.Estimate(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateWarmCache is the registry path on repeat traffic.
func BenchmarkEstimateWarmCache(b *testing.B) {
	syn, queries := benchSetup(b)
	r := NewRegistry(4096, 0)
	if _, err := r.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	if _, err := r.EstimateBatch(context.Background(), "xmark", queries, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Estimate(context.Background(), "xmark", queries[i%len(queries)], false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateDuringRebalance measures the serving path while a
// background goroutine churns the aggregate budget — the CI artifact's
// contention number. The budget flips invalidate the cache, so most
// estimates pay the full lock + estimator path while rebalance plans are
// being created and applied around them.
func BenchmarkEstimateDuringRebalance(b *testing.B) {
	syn, queries := benchSetup(b)
	r := NewRegistry(4096, 1<<20)
	r.StartRebalancer()
	defer r.Close()
	if _, err := r.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SetAggregateBudget(1<<20 + (i%2)*4096)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Estimate(context.Background(), "xmark", queries[i%len(queries)], false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkEstimateBatchWarmCache amortizes parse + lock over a batch.
func BenchmarkEstimateBatchWarmCache(b *testing.B) {
	syn, queries := benchSetup(b)
	r := NewRegistry(4096, 0)
	if _, err := r.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	if _, err := r.EstimateBatch(context.Background(), "xmark", queries, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.EstimateBatch(context.Background(), "xmark", queries, false); err != nil {
			b.Fatal(err)
		}
	}
}
