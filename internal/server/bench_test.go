package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"
	"xseed/api"

	"xseed"
	"xseed/internal/obs"
	"xseed/internal/store"
)

var benchState struct {
	once    sync.Once
	err     error
	doc     *xseed.Document
	syn     *xseed.Synopsis
	queries []string
}

// benchSetup builds one XMark synopsis and a simple-path workload, shared
// across the latency test and the benchmarks.
func benchSetup(t testing.TB) (*xseed.Synopsis, []string) {
	benchState.once.Do(func() {
		doc, err := xseed.Generate("xmark", 0.01, 1)
		if err != nil {
			benchState.err = err
			return
		}
		syn, err := xseed.BuildSynopsis(doc, nil)
		if err != nil {
			benchState.err = err
			return
		}
		var queries []string
		for _, q := range doc.SimplePathQueries(16) {
			queries = append(queries, q.String())
		}
		benchState.doc, benchState.syn, benchState.queries = doc, syn, queries
	})
	if benchState.err != nil {
		t.Fatal(benchState.err)
	}
	if len(benchState.queries) == 0 {
		t.Fatal("no benchmark queries")
	}
	return benchState.syn, benchState.queries
}

func percentile50(durations []time.Duration) time.Duration {
	sort.Slice(durations, func(i, j int) bool { return durations[i] < durations[j] })
	return durations[len(durations)/2]
}

// TestWarmCacheBeatsMissP50 asserts the cache still earns its keep on the
// served path: the p50 per-query latency of the batched estimate endpoint
// on a warm cache is below the same endpoint forced to miss (capacity-1
// cache). The original form of this test compared against the raw library
// estimate, which paid an EPT construction per call; estimation snapshots
// build the EPT once per synopsis version, so the honest baseline is now
// the served miss path (parse + compile + plan run) rather than the
// library.
func TestWarmCacheBeatsMissP50(t *testing.T) {
	syn, queries := benchSetup(t)

	newServer := func(capacity int) *httptest.Server {
		s, err := New(Config{CacheCapacity: capacity})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Registry().Add("xmark", syn, "bench"); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	warmTS := newServer(4096)
	missTS := newServer(1) // one entry total: effectively every lookup misses

	// One large batch repeats the query set, the shape of optimizer traffic;
	// per-query latency is the request duration over the batch size.
	const reps = 64
	batch := make([]string, 0, reps*len(queries))
	for i := 0; i < reps; i++ {
		batch = append(batch, queries...)
	}
	body, err := json.Marshal(api.EstimateRequest{Queries: batch})
	if err != nil {
		t.Fatal(err)
	}
	post := func(ts *httptest.Server) {
		resp, err := ts.Client().Post(ts.URL+"/v1/synopses/xmark/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out api.EstimateResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(out.Results) != len(batch) {
			t.Fatalf("batch estimate: status %d, %d results", resp.StatusCode, len(out.Results))
		}
	}
	post(warmTS) // warm the cache
	post(missTS) // build the EPT so both sides amortize it

	const rounds = 20
	warm := make([]time.Duration, 0, rounds)
	missed := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		post(warmTS)
		warm = append(warm, time.Since(start)/time.Duration(len(batch)))
		start = time.Now()
		post(missTS)
		missed = append(missed, time.Since(start)/time.Duration(len(batch)))
	}

	warmP50, missP50 := percentile50(warm), percentile50(missed)
	t.Logf("p50 per-query latency: warm cache %v, forced miss %v", warmP50, missP50)
	if warmP50 >= missP50 {
		t.Fatalf("warm-cache p50 %v not below forced-miss p50 %v", warmP50, missP50)
	}
}

// BenchmarkEstimateUncached is the library path every miss pays.
func BenchmarkEstimateUncached(b *testing.B) {
	syn, queries := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := syn.Estimate(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateWarmCache is the registry path on repeat traffic.
func BenchmarkEstimateWarmCache(b *testing.B) {
	syn, queries := benchSetup(b)
	r := NewRegistry(4096, 0)
	if _, err := r.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	if _, err := r.EstimateBatch(context.Background(), "xmark", queries, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Estimate(context.Background(), "xmark", queries[i%len(queries)], false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateDuringRebalance measures the serving path while a
// background goroutine churns the aggregate budget — the CI artifact's
// contention number. The budget flips invalidate the cache, so most
// estimates pay the full lock + estimator path while rebalance plans are
// being created and applied around them.
func BenchmarkEstimateDuringRebalance(b *testing.B) {
	syn, queries := benchSetup(b)
	r := NewRegistry(4096, 1<<20)
	r.StartRebalancer()
	defer r.Close()
	if _, err := r.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SetAggregateBudget(1<<20 + (i%2)*4096)
			time.Sleep(100 * time.Microsecond)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Estimate(context.Background(), "xmark", queries[i%len(queries)], false); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
}

// BenchmarkEstimateBatchWarmCache amortizes parse + lock over a batch.
func BenchmarkEstimateBatchWarmCache(b *testing.B) {
	syn, queries := benchSetup(b)
	r := NewRegistry(4096, 0)
	if _, err := r.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	if _, err := r.EstimateBatch(context.Background(), "xmark", queries, false); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.EstimateBatch(context.Background(), "xmark", queries, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateParallel measures the lock-free estimate path under
// concurrency — the tentpole number. The registry's cache is capacity 1, so
// effectively every request pays the full plan-run path against the pinned
// snapshot; with the path CPU-bound instead of lock-bound, ns/op should
// drop near-linearly with -cpu (CI runs it at -cpu 1,4,8 and fails the
// bench job if 8 procs are not at least 2× faster than 1).
func BenchmarkEstimateParallel(b *testing.B) {
	syn, queries := benchSetup(b)
	r := NewRegistry(1, 0) // capacity-1 cache: estimates always miss
	if _, err := r.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.EstimateBatch(ctx, "xmark", queries, false); err != nil {
		b.Fatal(err) // build the snapshot's EPT once, outside the timer
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := r.Estimate(ctx, "xmark", queries[i%len(queries)], false); err != nil {
				b.Error(err) // FailNow must not run on a RunParallel worker
				return
			}
			i++
		}
	})
}

// BenchmarkEstimateMultiTenant measures the warm-cache estimate path on a
// tenanted registry: four tenants, each with its own synopsis, quota, and
// rate limit, hit from parallel workers. Comparing against
// BenchmarkEstimateWarmCache exposes what tenancy costs the hot path — the
// intended answer is "one pointer indirection and a striped counter bump".
func BenchmarkEstimateMultiTenant(b *testing.B) {
	syn, queries := benchSetup(b)
	cfgs := []TenantConfig{
		{ID: "t0", Token: "tok0", CacheQuota: 1 << 16, RatePerSec: 1e9, Burst: 1e9},
		{ID: "t1", Token: "tok1", CacheQuota: 1 << 16, RatePerSec: 1e9, Burst: 1e9},
		{ID: "t2", Token: "tok2"},
		{ID: "t3", Token: "tok3"},
	}
	ts, err := NewTenantSet(obs.Disabled, cfgs)
	if err != nil {
		b.Fatal(err)
	}
	r := NewRegistry(4096, 0)
	r.AttachTenants(ts)
	ctx := context.Background()
	keys := make([]string, len(cfgs))
	tens := make([]*Tenant, len(cfgs))
	for i, cfg := range cfgs {
		keys[i] = store.Key(cfg.ID, "xmark")
		tens[i] = ts.lookup(cfg.ID)
		if _, err := r.Add(keys[i], syn, "bench"); err != nil {
			b.Fatal(err)
		}
		if _, err := r.EstimateBatch(ctx, keys[i], queries, false); err != nil {
			b.Fatal(err) // warm each tenant's cache and EPT outside the timer
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			ten := i % len(keys)
			if !tens[ten].allow() {
				b.Error("rate limiter rejected a benchmark request")
				return
			}
			if _, err := r.Estimate(ctx, keys[ten], queries[i%len(queries)], false); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}

// BenchmarkEstimateDuringFeedbackStorm measures estimate latency while
// feedback continuously mutates the same synopsis — every applied feedback
// publishes a successor snapshot and retires the estimate cache, so this is
// the worst case for the lock-free read path. Before the snapshot refactor
// each feedback held the entry's write lock across a full estimate +
// table-rank update and every estimate queued behind it; now the measured
// path never blocks on the storm. The p99 is reported alongside the mean.
func BenchmarkEstimateDuringFeedbackStorm(b *testing.B) {
	doc, err := xseed.Generate("xmark", 0.01, 2)
	if err != nil {
		b.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, nil)
	if err != nil {
		b.Fatal(err)
	}
	var queries []string
	for _, q := range doc.SimplePathQueries(16) {
		queries = append(queries, q.String())
	}
	r := NewRegistry(4096, 0)
	if _, err := r.Add("storm", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.EstimateBatch(ctx, "storm", queries, false); err != nil {
		b.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.Feedback("storm", queries[(g+i)%len(queries)], float64(1+i%17)); err != nil {
					b.Error(err)
					return
				}
			}
		}(g)
	}
	b.ResetTimer()
	lat := make([]time.Duration, 0, b.N)
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := r.Estimate(ctx, "storm", queries[i%len(queries)], false); err != nil {
			b.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	if len(lat) > 0 {
		p99 := len(lat) - 1 - (len(lat)-1)/100
		b.ReportMetric(float64(lat[len(lat)/2].Nanoseconds()), "p50-ns")
		b.ReportMetric(float64(lat[p99].Nanoseconds()), "p99-ns")
	}
}

// BenchmarkEstimateObsOverhead is the paired benchmark behind the metrics
// layer's acceptance gate: the always-miss estimate path (capacity-1 cache,
// so every query pays cache probe + parse + compile + plan run, the fully
// instrumented route) with a live obs.Registry versus obs.Disabled. CI
// fails the bench job if the instrumented side exceeds the disabled side by
// more than 3%.
func BenchmarkEstimateObsOverhead(b *testing.B) {
	syn, queries := benchSetup(b)
	run := func(b *testing.B, om *obs.Registry) {
		r := NewRegistryObs(1, 0, om)
		if _, err := r.Add("xmark", syn, "bench"); err != nil {
			b.Fatal(err)
		}
		ctx := context.Background()
		if _, err := r.EstimateBatch(ctx, "xmark", queries, false); err != nil {
			b.Fatal(err) // build the snapshot's EPT outside the timer
		}
		// Collect the setup garbage (EPT construction, registry churn from
		// the paired side) before timing: whichever side happens to host the
		// GC cycle would otherwise absorb its pause and skew the comparison.
		runtime.GC()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Estimate(ctx, "xmark", queries[i%len(queries)], false); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("instrumented", func(b *testing.B) { run(b, obs.NewRegistry()) })
	b.Run("disabled", func(b *testing.B) { run(b, obs.Disabled) })
}

// BenchmarkMetricsScrape is the cost of one /metrics render against a
// registry with live per-synopsis series and traffic in every family.
func BenchmarkMetricsScrape(b *testing.B) {
	syn, queries := benchSetup(b)
	om := obs.NewRegistry()
	r := NewRegistryObs(4096, 0, om)
	if _, err := r.Add("xmark", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := r.EstimateBatch(ctx, "xmark", queries, false); err != nil {
		b.Fatal(err)
	}
	for i, q := range queries {
		if err := r.Feedback("xmark", q, float64(1+i%7)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := om.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeedbackBatchPublish is the batched mutator path: one
// FeedbackBatch of 64 observations per op, applied under a single entry
// critical section and published as ONE successor snapshot. Against
// BenchmarkFeedbackPublish (one publication per event) the delta is the
// coalesced publication economics: the O(resident) view copy is paid once
// per 64 events instead of once per event.
func BenchmarkFeedbackBatchPublish(b *testing.B) {
	doc, err := xseed.Generate("xmark", 0.01, 3)
	if err != nil {
		b.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, &xseed.Config{HET: &xseed.HETConfig{FeedbackOnly: true}})
	if err != nil {
		b.Fatal(err)
	}
	r := NewRegistry(64, 0)
	if _, err := r.Add("fb", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	var queries []string
	for _, q := range doc.SimplePathQueries(0) {
		queries = append(queries, q.String())
	}
	for i, q := range queries { // seed the resident set
		if err := r.Feedback("fb", q, float64(1+i)); err != nil {
			b.Fatal(err)
		}
	}
	const batch = 64
	items := make([]api.FeedbackItem, batch)
	for i := range items {
		items[i] = api.FeedbackItem{Query: queries[i%len(queries)], Actual: float64(1 + i%23)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		errs, err := r.FeedbackBatch("fb", items)
		if err != nil {
			b.Fatal(err)
		}
		for _, e := range errs {
			if e != nil {
				b.Fatal(e)
			}
		}
	}
	b.ReportMetric(float64(batch), "events/op")
}

// BenchmarkFeedbackDurable is the paired benchmark behind the group-commit
// acceptance gate: the per-event durable path (-store-fsync, one fsync per
// feedback) versus a 64-event batch under -store-fsync=batch (one group
// commit per batch). Both sides ack only after their bytes are fsynced.
// CI computes per-event throughput from ns/op (the batch side carries 64
// events per op) and fails the bench job if batching is not >=3x faster.
// The flush window is deliberately tiny: a sequential caller pays the full
// window every op, and the production 2ms default would measure the timer,
// not the write path.
func BenchmarkFeedbackDurable(b *testing.B) {
	run := func(b *testing.B, fsync string, batch int) {
		s, err := New(Config{
			StoreDir:          b.TempDir(),
			StoreFsync:        fsync,
			StoreBatchLatency: 50 * time.Microsecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		reg := s.Registry()
		if _, err := reg.Add("fb", tenantTestSynopsis(b), "bench"); err != nil {
			b.Fatal(err)
		}
		queries := []string{"/a/c/s/s/t", "/a/c/s", "/a/c/p", "/a/t", "/a/c/s/p", "/a/c/s/s", "/a/c/t", "/a/c/s[t]/p"}
		items := make([]api.FeedbackItem, batch)
		for i := range items {
			items[i] = api.FeedbackItem{Query: queries[i%len(queries)], Actual: float64(1 + i%17)}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if batch == 1 {
				if err := reg.Feedback("fb", items[0].Query, float64(1+i%17)); err != nil {
					b.Fatal(err)
				}
				continue
			}
			errs, err := reg.FeedbackBatch("fb", items)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range errs {
				if e != nil {
					b.Fatal(e)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(batch), "events/op")
	}
	b.Run("event", func(b *testing.B) { run(b, "every", 1) })
	b.Run("batch64", func(b *testing.B) { run(b, "batch", 64) })
}

// BenchmarkFeedbackPublish measures the mutator side of the snapshot
// design: each applied feedback pays the HET rank upsert plus the snapshot
// publication (an O(resident) hyper-edge view copy — the price of lock-free
// readers). Seeded with a few thousand resident entries so the view-copy
// term dominates and a regression in it is visible in the CI artifact.
func BenchmarkFeedbackPublish(b *testing.B) {
	doc, err := xseed.Generate("xmark", 0.01, 3)
	if err != nil {
		b.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, &xseed.Config{HET: &xseed.HETConfig{FeedbackOnly: true}})
	if err != nil {
		b.Fatal(err)
	}
	r := NewRegistry(64, 0)
	if _, err := r.Add("fb", syn, "bench"); err != nil {
		b.Fatal(err)
	}
	var queries []string
	for _, q := range doc.SimplePathQueries(0) {
		queries = append(queries, q.String())
	}
	for i, q := range queries { // seed the resident set
		if err := r.Feedback("fb", q, float64(1+i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Feedback("fb", queries[i%len(queries)], float64(1+i%23)); err != nil {
			b.Fatal(err)
		}
	}
}
