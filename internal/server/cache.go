package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"xseed/api"
	"xseed/internal/pathhash"
)

// numShards is the number of independently locked cache shards. Shard
// selection hashes the full (synopsis, query) key, so concurrent estimate
// traffic — even against a single synopsis — spreads across locks.
const numShards = 16

// EstimateResult is a cached estimate.
type EstimateResult struct {
	Est      float64
	Streamed bool
}

type cacheKey struct {
	syn   string
	query string // normalized (parsed and re-rendered) form
}

type cacheEntry struct {
	key cacheKey
	val EstimateResult
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int        // max entries this shard holds (0: shard is disabled)
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
}

// Cache is a sharded LRU cache of estimate results keyed on (synopsis
// scope, normalized query string). It serves repeat estimates without
// touching the kernel/EPT machinery or the synopsis locks. Invalidation is
// the registry's job: mutations version the synopsis scope (Entry.cacheScope),
// making old entries unreachable so they age out of the LRU.
type Cache struct {
	shards [numShards]cacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

// NewCache returns a cache holding at most capacity entries in total
// (capacity <= 0 picks a default of 4096). Capacity is distributed across
// the shards with the remainder spread one entry at a time, so the total is
// honored exactly: a capacity of 1 holds at most 1 entry, not one per shard.
// Shards left with zero capacity never admit entries, which costs hit rate
// at tiny capacities but keeps the configured memory bound true.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	base, rem := capacity/numShards, capacity%numShards
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].cap = base
		if i < rem {
			c.shards[i].cap++
		}
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[cacheKey]*list.Element)
	}
	return c
}

func (c *Cache) shardFor(k cacheKey) *cacheShard {
	h := pathhash.String(k.syn)
	h = pathhash.AddLabel(h, k.query)
	return &c.shards[h%numShards]
}

// Get returns the cached result for (syn, query), if present.
func (c *Cache) Get(syn, query string) (EstimateResult, bool) {
	k := cacheKey{syn, query}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*cacheEntry).val, true
	}
	c.misses.Add(1)
	return EstimateResult{}, false
}

// Put stores a result, evicting the shard's least recently used entry when
// the shard is full.
func (c *Cache) Put(syn, query string, v EstimateResult) {
	k := cacheKey{syn, query}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		el.Value.(*cacheEntry).val = v
		s.ll.MoveToFront(el)
		return
	}
	if s.cap == 0 {
		return
	}
	s.items[k] = s.ll.PushFront(&cacheEntry{key: k, val: v})
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		s.ll.Remove(oldest)
		delete(s.items, oldest.Value.(*cacheEntry).key)
	}
}

// Stats reports entry count and hit/miss counters as the wire type.
func (c *Cache) Stats() api.CacheStats {
	var st api.CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.ll.Len()
		s.mu.Unlock()
	}
	st.Hits = c.hits.Load()
	st.Misses = c.misses.Load()
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	return st
}
