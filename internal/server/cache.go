package server

import (
	"container/list"
	"sync"
	"sync/atomic"

	"xseed"
	"xseed/api"
	"xseed/internal/pathhash"
)

// numShards is the number of independently locked cache shards. Shard
// selection hashes the full (synopsis, query) key, so concurrent estimate
// traffic — even against a single synopsis — spreads across locks.
const numShards = 16

// evictionWindow is how many least-recently-used entries an over-capacity
// shard considers before evicting: the cheapest (lowest CostNs) of the
// window goes, so recency still dominates but an expensive deep/recursive
// estimate outlives same-age cheap ones under pressure (the cost-aware
// LRU tiebreak of the cache-admission roadmap item).
const evictionWindow = 4

// EstimateResult is a cached estimate. CostNs records what the uncached
// computation cost, which (a) feeds the cache.costSavedNs stats counter on
// every later hit and (b) biases eviction toward cheap entries. It is
// wall-clock time: under a saturated worker pool scheduler contention
// inflates it somewhat, so it is an eviction *tiebreak* signal and a
// savings *estimate*, not a calibrated CPU-time measurement.
type EstimateResult struct {
	Est      float64
	Streamed bool
	CostNs   int64
}

type cacheKey struct {
	syn   string
	query string // normalized (parsed and re-rendered) form; raw for plans
	plan  bool   // plan entries key separately: same (scope, query) never collides
}

type cacheEntry struct {
	key  cacheKey
	val  EstimateResult
	plan *xseed.Plan // non-nil: a compiled-plan entry (val holds compile cost only)
	ten  *Tenant     // owner, for quota accounting (nil: unaccounted)
}

type cacheShard struct {
	mu    sync.Mutex
	cap   int        // max entries this shard holds (0: shard is disabled)
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element

	// tenCount tracks per-tenant occupancy for quota enforcement; keys are
	// deleted at zero so an idle tenant costs nothing here.
	tenCount map[*Tenant]int
}

// Cache is a sharded LRU cache of estimate results keyed on (synopsis
// scope, normalized query string), which also stores compiled query plans
// keyed on (plan scope, raw query string) so repeat queries skip
// parse + compile entirely. It serves repeat estimates without touching the
// kernel/EPT machinery or any synopsis state. Invalidation is the
// registry's job: estimate scopes embed the estimation-snapshot version
// (Entry.scopeFor), so a mutation retires every cached estimate by
// publishing the next snapshot; plan scopes are version-free (plans survive
// feedback, which never changes the dictionary) and stale plans are
// detected per-hit with Plan.CompatibleWith.
type Cache struct {
	shards     [numShards]cacheShard
	hits       atomic.Int64
	misses     atomic.Int64
	planHits   atomic.Int64 // compiled-plan lookups, counted apart from estimates
	planMisses atomic.Int64
	costSaved  atomic.Int64 // Σ CostNs of served hits (estimates and plans)
	evictions  atomic.Int64
}

// NewCache returns a cache holding at most capacity entries in total
// (capacity <= 0 picks a default of 4096). Capacity is distributed across
// the shards with the remainder spread one entry at a time, so the total is
// honored exactly: a capacity of 1 holds at most 1 entry, not one per shard.
// Shards left with zero capacity never admit entries, which costs hit rate
// at tiny capacities but keeps the configured memory bound true.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = 4096
	}
	base, rem := capacity/numShards, capacity%numShards
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].cap = base
		if i < rem {
			c.shards[i].cap++
		}
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[cacheKey]*list.Element)
		c.shards[i].tenCount = make(map[*Tenant]int)
	}
	return c
}

func (c *Cache) shardFor(k cacheKey) int {
	h := pathhash.String(k.syn)
	h = pathhash.AddLabel(h, k.query)
	return int(h % numShards)
}

// Get returns the cached result for (syn, query), if present. ten (may be
// nil) receives the tenant-scoped hit/miss accounting: the counters are
// striped per shard and bumped under the shard lock already held, so tenant
// stats add no atomics contended across shards.
func (c *Cache) Get(syn, query string, ten *Tenant) (EstimateResult, bool) {
	k := cacheKey{syn: syn, query: query}
	si := c.shardFor(k)
	s := &c.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		e := el.Value.(*cacheEntry)
		s.ll.MoveToFront(el)
		c.hits.Add(1)
		if ten != nil {
			ten.hits.add(si)
		}
		c.costSaved.Add(e.val.CostNs)
		return e.val, true
	}
	c.misses.Add(1)
	if ten != nil {
		ten.misses.add(si)
	}
	return EstimateResult{}, false
}

// Put stores a result, evicting from the shard's least-recently-used tail
// when the shard is full, and from the owning tenant's own entries when its
// quota is full.
func (c *Cache) Put(syn, query string, v EstimateResult, ten *Tenant) {
	c.put(&cacheEntry{key: cacheKey{syn: syn, query: query}, val: v, ten: ten})
}

// GetPlan returns the cached compiled plan for (scope, raw query) when it
// is present AND still authoritative for the pinned snapshot sn. A stale
// plan (the dictionary grew since compilation) counts as a miss — no hit
// counter, no costSaved credit, no LRU refresh — since the caller re-pays
// the full parse + compile and overwrites the entry via PutPlan.
func (c *Cache) GetPlan(scope, raw string, sn *xseed.Snapshot) (*xseed.Plan, bool) {
	k := cacheKey{syn: scope, query: raw, plan: true}
	s := &c.shards[c.shardFor(k)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		if e := el.Value.(*cacheEntry); e.plan.CompatibleWith(sn) {
			s.ll.MoveToFront(el)
			c.planHits.Add(1)
			c.costSaved.Add(e.val.CostNs)
			return e.plan, true
		}
	}
	c.planMisses.Add(1)
	return nil, false
}

// PutPlan stores a compiled plan; costNs is what parse + compile cost. Plan
// entries count toward the owning tenant's cache quota like estimate
// entries do (both occupy the same capacity).
func (c *Cache) PutPlan(scope, raw string, p *xseed.Plan, costNs int64, ten *Tenant) {
	c.put(&cacheEntry{key: cacheKey{syn: scope, query: raw, plan: true}, val: EstimateResult{CostNs: costNs}, plan: p, ten: ten})
}

func (c *Cache) put(e *cacheEntry) {
	si := c.shardFor(e.key)
	s := &c.shards[si]
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[e.key]; ok {
		// Replacement: the key embeds the tenant-qualified scope, so the
		// owner cannot change and occupancy counts stay put.
		e.ten = el.Value.(*cacheEntry).ten
		*el.Value.(*cacheEntry) = *e
		s.ll.MoveToFront(el)
		return
	}
	if s.cap == 0 {
		return
	}
	if t := e.ten; t != nil && t.cacheQuota > 0 && s.tenCount[t] >= t.quotaForShard(si) {
		// Over quota: this fill may only displace one of the tenant's own
		// entries. A zero per-shard quota admits nothing (exactly like a
		// zero-capacity shard).
		if !s.evictOwn(t) {
			return
		}
		c.evictions.Add(1)
	}
	s.items[e.key] = s.ll.PushFront(e)
	if e.ten != nil {
		s.tenCount[e.ten]++
	}
	if s.ll.Len() > s.cap {
		s.evict()
		c.evictions.Add(1)
	}
}

// evictOwn removes the least-recently-used entry owned by t, reporting
// false when t has none in this shard (per-shard quota 0).
func (s *cacheShard) evictOwn(t *Tenant) bool {
	for el := s.ll.Back(); el != nil; el = el.Prev() {
		if e := el.Value.(*cacheEntry); e.ten == t {
			s.removeEntry(el, e)
			return true
		}
	}
	return false
}

// removeEntry unlinks one entry and settles its tenant accounting.
func (s *cacheShard) removeEntry(el *list.Element, e *cacheEntry) {
	s.ll.Remove(el)
	delete(s.items, e.key)
	if e.ten != nil {
		if n := s.tenCount[e.ten] - 1; n > 0 {
			s.tenCount[e.ten] = n
		} else {
			delete(s.tenCount, e.ten)
		}
	}
}

// evict removes one entry: the cheapest (lowest CostNs) among the
// evictionWindow least recently used that share the LRU entry's scope, so
// the tail's expensive entries survive a flood of cheap same-scope ones.
// The cost tiebreak deliberately never reaches across scopes: entries of a
// retired snapshot scope are unreachable, and letting a dead-but-expensive
// entry outrank live cheap fills would pin it forever in small shards —
// across scopes, plain LRU order applies and dead scopes age out normally.
func (s *cacheShard) evict() {
	victim := s.ll.Back()
	scope := victim.Value.(*cacheEntry).key.syn
	el := victim
	for i := 1; i < evictionWindow && el != nil; i++ {
		el = el.Prev()
		if el == nil {
			break
		}
		e := el.Value.(*cacheEntry)
		if e.key.syn == scope && e.val.CostNs < victim.Value.(*cacheEntry).val.CostNs {
			victim = el
		}
	}
	s.removeEntry(victim, victim.Value.(*cacheEntry))
}

// TenantEntries reports how many cache entries t occupies across shards
// (the quota the eviction policy enforces).
func (c *Cache) TenantEntries(t *Tenant) int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.tenCount[t]
		s.mu.Unlock()
	}
	return n
}

// Stats reports entry count and hit/miss/cost counters as the wire type.
func (c *Cache) Stats() api.CacheStats {
	var st api.CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.ll.Len()
		s.mu.Unlock()
	}
	st.Hits = c.hits.Load()
	st.Misses = c.misses.Load()
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	st.PlanHits = c.planHits.Load()
	st.PlanMisses = c.planMisses.Load()
	st.CostSavedNs = c.costSaved.Load()
	st.Evictions = c.evictions.Load()
	return st
}
