package server

import (
	"fmt"
	"sync"
	"testing"

	"xseed"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(64)
	if _, ok := c.Get("s", "/a/b", nil); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("s", "/a/b", EstimateResult{Est: 7}, nil)
	v, ok := c.Get("s", "/a/b", nil)
	if !ok || v.Est != 7 {
		t.Fatalf("got %v %v, want 7 true", v, ok)
	}
	// Same query under another synopsis is a distinct key.
	if _, ok := c.Get("other", "/a/b", nil); ok {
		t.Fatal("key leaked across synopses")
	}
	// Overwrite.
	c.Put("s", "/a/b", EstimateResult{Est: 9, Streamed: true}, nil)
	v, _ = c.Get("s", "/a/b", nil)
	if v.Est != 9 || !v.Streamed {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want entries=1 hits=2 misses=2", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity numShards means one entry per shard: inserting two keys that
	// land in the same shard must evict the older one.
	c := NewCache(numShards)
	var a, b string
	keys := make(map[uint32]string)
	for i := 0; ; i++ {
		q := fmt.Sprintf("/q%d", i)
		k := cacheKey{syn: "s", query: q}
		idx := uint32(0)
		for j := range c.shards {
			if c.shardFor(k) == j {
				idx = uint32(j)
				break
			}
		}
		if prev, ok := keys[idx]; ok {
			a, b = prev, q
			break
		}
		keys[idx] = q
	}
	c.Put("s", a, EstimateResult{Est: 1}, nil)
	c.Put("s", b, EstimateResult{Est: 2}, nil)
	if _, ok := c.Get("s", a, nil); ok {
		t.Fatalf("%s should have been evicted by %s", a, b)
	}
	if v, ok := c.Get("s", b, nil); !ok || v.Est != 2 {
		t.Fatalf("%s missing after eviction of %s", b, a)
	}
}

// TestCacheCapacityBound pins the satellite fix: the configured capacity is
// a true total bound, not a per-shard round-up (capacity 1 used to inflate
// to one entry per shard, 16 resident).
func TestCacheCapacityBound(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, numShards, 33, 100} {
		c := NewCache(capacity)
		for i := 0; i < 500; i++ {
			c.Put("s", fmt.Sprintf("/q%d", i), EstimateResult{Est: float64(i)}, nil)
		}
		if got := c.Stats().Entries; got > capacity {
			t.Errorf("capacity %d: %d resident entries", capacity, got)
		}
	}
	// A tiny cache still serves: a key landing in the one live shard sticks.
	c := NewCache(1)
	var kept string
	for i := 0; ; i++ {
		q := fmt.Sprintf("/q%d", i)
		if c.shardFor(cacheKey{syn: "s", query: q}) == 0 {
			kept = q
			break
		}
	}
	c.Put("s", kept, EstimateResult{Est: 42}, nil)
	if v, ok := c.Get("s", kept, nil); !ok || v.Est != 42 {
		t.Fatalf("capacity-1 cache lost its only admissible entry: %v %v", v, ok)
	}
	// Keys hashing to zero-capacity shards are refused, not crashed on.
	for i := 0; i < 64; i++ {
		q := fmt.Sprintf("/z%d", i)
		c.Put("s", q, EstimateResult{Est: 1}, nil)
	}
	if got := c.Stats().Entries; got > 1 {
		t.Fatalf("capacity-1 cache holds %d entries", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q := fmt.Sprintf("/q%d", i%64)
				c.Put("s", q, EstimateResult{Est: float64(i)}, nil)
				c.Get("s", q, nil)
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
}

// sameShardKeys returns n query strings that all land in the shard holding
// capacity in a NewCache(numShards) layout (one entry per shard), so
// eviction behavior is deterministic.
func sameShardKeys(c *Cache, syn string, n int) []string {
	var out []string
	target := c.shardFor(cacheKey{syn: syn, query: "/probe"})
	for i := 0; len(out) < n; i++ {
		q := fmt.Sprintf("/k%d", i)
		if c.shardFor(cacheKey{syn: syn, query: q}) == target {
			out = append(out, q)
		}
	}
	return out
}

// TestCacheCostAwareEviction pins the cache-admission satellite: under
// pressure the LRU tail prefers dropping cheap entries, so an expensive
// (deep/recursive) estimate outlives a flood of cheap ones regardless of
// insertion order, while equal costs keep plain LRU order.
func TestCacheCostAwareEviction(t *testing.T) {
	// Expensive first, cheap second: the cheap newcomer is the victim.
	c := NewCache(numShards)
	keys := sameShardKeys(c, "s", 3)
	c.Put("s", keys[0], EstimateResult{Est: 1, CostNs: 1_000_000}, nil)
	c.Put("s", keys[1], EstimateResult{Est: 2, CostNs: 10}, nil)
	if _, ok := c.Get("s", keys[0], nil); !ok {
		t.Fatal("expensive entry evicted by a cheap newcomer")
	}
	if _, ok := c.Get("s", keys[1], nil); ok {
		t.Fatal("cheap newcomer admitted over a more expensive resident")
	}

	// Cheap first, expensive second: the cheap resident is the victim.
	c = NewCache(numShards)
	c.Put("s", keys[0], EstimateResult{Est: 1, CostNs: 10}, nil)
	c.Put("s", keys[1], EstimateResult{Est: 2, CostNs: 1_000_000}, nil)
	if _, ok := c.Get("s", keys[1], nil); !ok {
		t.Fatal("expensive newcomer not admitted")
	}
	if _, ok := c.Get("s", keys[0], nil); ok {
		t.Fatal("cheap resident survived an expensive newcomer")
	}

	// Equal costs: plain LRU (oldest goes) — the tiebreak never reorders
	// recency among equals.
	c = NewCache(numShards)
	c.Put("s", keys[0], EstimateResult{Est: 1, CostNs: 50}, nil)
	c.Put("s", keys[1], EstimateResult{Est: 2, CostNs: 50}, nil)
	if _, ok := c.Get("s", keys[0], nil); ok {
		t.Fatal("equal-cost eviction did not follow LRU order")
	}
	if _, ok := c.Get("s", keys[1], nil); !ok {
		t.Fatal("equal-cost newest entry missing")
	}
}

// TestCacheCostSaved: every hit credits the entry's recorded compute cost
// to the aggregate costSavedNs counter (estimates and compiled plans both).
func TestCacheCostSaved(t *testing.T) {
	c := NewCache(64)
	c.Put("s", "/a/b", EstimateResult{Est: 7, CostNs: 500}, nil)
	c.Get("s", "/a/b", nil)
	c.Get("s", "/a/b", nil)
	c.Get("s", "/missing", nil) // misses credit nothing
	if got := c.Stats().CostSavedNs; got != 1000 {
		t.Fatalf("costSavedNs = %d, want 1000", got)
	}
	_, syn := buildFixtureSynopsis(t, nil)
	sn := syn.Snapshot()
	p := sn.Compile(xseed.MustParseQuery("/a/b"))
	c.PutPlan("plans", "/a/b", p, 200, nil)
	if got, ok := c.GetPlan("plans", "/a/b", sn); !ok || got != p {
		t.Fatalf("plan roundtrip failed: %v %v", got, ok)
	}
	c.GetPlan("plans", "/never-compiled", sn)
	st := c.Stats()
	if st.CostSavedNs != 1200 {
		t.Fatalf("costSavedNs after plan hit = %d, want 1200", st.CostSavedNs)
	}
	// Plan lookups are counted apart from estimate hits/misses.
	if st.PlanHits != 1 || st.PlanMisses != 1 {
		t.Fatalf("plan counters = %d/%d, want 1/1", st.PlanHits, st.PlanMisses)
	}
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("estimate counters moved with plan traffic: %d/%d", st.Hits, st.Misses)
	}
}

// TestCacheCostEvictionScopeBound: the cost tiebreak never reaches across
// scopes — an expensive entry of a retired (unreachable) scope at the LRU
// tail must not outrank live cheap fills, or a small shard would starve.
func TestCacheCostEvictionScopeBound(t *testing.T) {
	c := NewCache(numShards)
	keys := sameShardKeys(c, "dead", 2)
	c.Put("dead", keys[0], EstimateResult{Est: 1, CostNs: 1_000_000}, nil)
	// A different scope's cheap fill lands in the same shard (scope strings
	// share the shard only via hashing — force it by probing).
	var liveScope string
	target := c.shardFor(cacheKey{syn: "dead", query: keys[0]})
	for i := 0; ; i++ {
		s := fmt.Sprintf("live%d", i)
		if c.shardFor(cacheKey{syn: s, query: keys[0]}) == target {
			liveScope = s
			break
		}
	}
	c.Put(liveScope, keys[0], EstimateResult{Est: 2, CostNs: 10}, nil)
	if _, ok := c.Get(liveScope, keys[0], nil); !ok {
		t.Fatal("live cheap fill starved by a dead scope's expensive entry")
	}
	if _, ok := c.Get("dead", keys[0], nil); ok {
		t.Fatal("dead-scope LRU-tail entry survived cross-scope pressure")
	}
}

// TestCachePlanEstimateNamespaces: a plan entry never answers an estimate
// Get and vice versa, even under an identical (scope, key) pair — and a
// plan compiled before the dictionary grew counts as a miss, not a hit.
func TestCachePlanEstimateNamespaces(t *testing.T) {
	_, syn := buildFixtureSynopsis(t, nil)
	sn := syn.Snapshot()
	c := NewCache(64)
	c.PutPlan("s", "/a/b", sn.Compile(xseed.MustParseQuery("/a/b")), 1, nil)
	if _, ok := c.Get("s", "/a/b", nil); ok {
		t.Fatal("estimate Get answered by a plan entry")
	}
	c.Put("s", "/a/c", EstimateResult{Est: 3}, nil)
	if _, ok := c.GetPlan("s", "/a/c", sn); ok {
		t.Fatal("GetPlan answered by an estimate entry")
	}
	// Staleness is the cache's own concern: grow the dictionary via a
	// subtree update and the cached plan must stop hitting.
	if err := syn.AddSubtree([]string{"a"}, "<brandnewlabel/>"); err != nil {
		t.Fatal(err)
	}
	grown := syn.Snapshot()
	before := c.Stats().PlanHits
	if _, ok := c.GetPlan("s", "/a/b", grown); ok {
		t.Fatal("stale plan served after dictionary growth")
	}
	if c.Stats().PlanHits != before {
		t.Fatal("stale plan lookup counted as a hit")
	}
}
