package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := NewCache(64)
	if _, ok := c.Get("s", "/a/b"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("s", "/a/b", EstimateResult{Est: 7})
	v, ok := c.Get("s", "/a/b")
	if !ok || v.Est != 7 {
		t.Fatalf("got %v %v, want 7 true", v, ok)
	}
	// Same query under another synopsis is a distinct key.
	if _, ok := c.Get("other", "/a/b"); ok {
		t.Fatal("key leaked across synopses")
	}
	// Overwrite.
	c.Put("s", "/a/b", EstimateResult{Est: 9, Streamed: true})
	v, _ = c.Get("s", "/a/b")
	if v.Est != 9 || !v.Streamed {
		t.Fatalf("overwrite lost: %v", v)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want entries=1 hits=2 misses=2", st)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Capacity numShards means one entry per shard: inserting two keys that
	// land in the same shard must evict the older one.
	c := NewCache(numShards)
	var a, b string
	keys := make(map[uint32]string)
	for i := 0; ; i++ {
		q := fmt.Sprintf("/q%d", i)
		k := cacheKey{"s", q}
		idx := uint32(0)
		for j := range c.shards {
			if c.shardFor(k) == &c.shards[j] {
				idx = uint32(j)
				break
			}
		}
		if prev, ok := keys[idx]; ok {
			a, b = prev, q
			break
		}
		keys[idx] = q
	}
	c.Put("s", a, EstimateResult{Est: 1})
	c.Put("s", b, EstimateResult{Est: 2})
	if _, ok := c.Get("s", a); ok {
		t.Fatalf("%s should have been evicted by %s", a, b)
	}
	if v, ok := c.Get("s", b); !ok || v.Est != 2 {
		t.Fatalf("%s missing after eviction of %s", b, a)
	}
}

// TestCacheCapacityBound pins the satellite fix: the configured capacity is
// a true total bound, not a per-shard round-up (capacity 1 used to inflate
// to one entry per shard, 16 resident).
func TestCacheCapacityBound(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, numShards, 33, 100} {
		c := NewCache(capacity)
		for i := 0; i < 500; i++ {
			c.Put("s", fmt.Sprintf("/q%d", i), EstimateResult{Est: float64(i)})
		}
		if got := c.Stats().Entries; got > capacity {
			t.Errorf("capacity %d: %d resident entries", capacity, got)
		}
	}
	// A tiny cache still serves: a key landing in the one live shard sticks.
	c := NewCache(1)
	var kept string
	for i := 0; ; i++ {
		q := fmt.Sprintf("/q%d", i)
		if c.shardFor(cacheKey{"s", q}) == &c.shards[0] {
			kept = q
			break
		}
	}
	c.Put("s", kept, EstimateResult{Est: 42})
	if v, ok := c.Get("s", kept); !ok || v.Est != 42 {
		t.Fatalf("capacity-1 cache lost its only admissible entry: %v %v", v, ok)
	}
	// Keys hashing to zero-capacity shards are refused, not crashed on.
	for i := 0; i < 64; i++ {
		q := fmt.Sprintf("/z%d", i)
		c.Put("s", q, EstimateResult{Est: 1})
	}
	if got := c.Stats().Entries; got > 1 {
		t.Fatalf("capacity-1 cache holds %d entries", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q := fmt.Sprintf("/q%d", i%64)
				c.Put("s", q, EstimateResult{Est: float64(i)})
				c.Get("s", q)
				c.Stats()
			}
		}(g)
	}
	wg.Wait()
}
