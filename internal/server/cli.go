package server

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xseed/internal/cluster"
	"xseed/internal/logx"
	"xseed/internal/store"
)

// fsyncModeValue is -store-fsync's flag value: a durability mode ("off",
// "batch", "every") that also behaves as the boolean flag it used to be —
// bare `-store-fsync` still means every, `-store-fsync=false` still means
// off — so existing scripts keep working.
type fsyncModeValue struct{ mode store.FsyncMode }

func (v *fsyncModeValue) String() string   { return v.mode.String() }
func (v *fsyncModeValue) IsBoolFlag() bool { return true }
func (v *fsyncModeValue) Set(s string) error {
	m, err := store.ParseFsyncMode(s)
	if err != nil {
		return err
	}
	v.mode = m
	return nil
}

func fsyncFlag(fs *flag.FlagSet) *fsyncModeValue {
	v := &fsyncModeValue{}
	fs.Var(v, "store-fsync", "delta-log durability `mode`: off (default; survives process crashes), batch (group commit: one fsync per -store-batch-latency window, ack after durable), or every (fsync per append)")
	return v
}

// RunCLI parses daemon flags and serves until SIGINT/SIGTERM, shutting down
// gracefully: in-flight requests drain first, then the background budget
// rebalancer (so planned budgets and their persisted deltas land), and the
// store flushes last. It backs both the xseedd binary and `xseed serve`.
// Startup failures — a taken port, an unreadable store, a bad preload — are
// returned to the caller, which exits non-zero with the error on stderr.
func RunCLI(name string, args []string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	xtpAddr := fs.String("xtp", "", "additional listen address for the xtp binary protocol (docs/PROTOCOL.md; empty = disabled)")
	cache := fs.Int("cache", 4096, "estimate cache capacity (entries)")
	budget := fs.Int("budget", 0, "aggregate synopsis memory budget in bytes (0 = unlimited)")
	dataDir := fs.String("data-dir", "", "directory the HTTP xmlFile/synopsisFile sources may read (empty = disabled)")
	storeDir := fs.String("store-dir", "", "durable store directory: persist synopses and reload them on start (empty = in-memory only)")
	compactRatio := fs.Float64("store-compact-ratio", 0, "compact when delta log exceeds this ratio of the base snapshot (0 = default 0.5)")
	compactIvl := fs.Duration("store-compact-interval", 0, "background compaction check interval (0 = default 15s)")
	storeFsync := fsyncFlag(fs)
	batchLatency := fs.Duration("store-batch-latency", 0, "max extra latency a -store-fsync=batch record waits for its group fsync (0 = default 2ms)")
	fsck := fs.Bool("store-fsck", false, "validate -store-dir (manifest, snapshot loads, delta checksums and replay), print a report, and exit")
	tenantsFile := fs.String("tenants", "", "enable multi-tenant mode: JSON file of [{\"id\",\"token\",\"budgetBytes\",\"cacheQuota\",\"ratePerSec\",\"burst\"}] tenant configs (empty = single-tenant)")
	clusterFile := fs.String("cluster", "", "cluster topology JSON file (replicas, router, nodes); requires -cluster-node or -router")
	clusterNode := fs.String("cluster-node", "", "run as this node of the -cluster topology: partitioned ownership plus delta-log replication to warm standbys")
	routerMode := fs.Bool("router", false, "run as the -cluster topology's router instead of a node: membership health checks, ring epochs, and request proxying")
	logFormat := fs.String("log-format", "text", "log output format: text or json")
	logLevel := fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
	pprofAddr := fs.String("pprof", "", "admin listen address for net/http/pprof profiles (empty = disabled; keep it off public interfaces)")
	var preloads []string
	fs.Func("synopsis", "preload `name=path` (synopsis file or XML; repeatable)", func(v string) error {
		preloads = append(preloads, v)
		return nil
	})
	fs.Parse(args)

	if *fsck {
		if *storeDir == "" {
			return fmt.Errorf("-store-fsck requires -store-dir")
		}
		rep, err := store.Fsck(*storeDir)
		if err != nil {
			return err
		}
		rep.WriteReport(os.Stdout)
		if !rep.OK {
			return fmt.Errorf("store %s failed fsck", *storeDir)
		}
		return nil
	}

	logger, err := logx.New(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}

	if (*clusterNode != "" || *routerMode) && *clusterFile == "" {
		return fmt.Errorf("-cluster-node and -router require -cluster FILE")
	}
	var clusterOpts *ClusterOptions
	if *clusterFile != "" {
		ccfg, err := cluster.LoadConfigFile(*clusterFile)
		if err != nil {
			return err
		}
		if *routerMode {
			// The router is a separate role: membership authority and thin
			// proxy, never a registry. It ignores every serving flag.
			ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
			defer stop()
			return cluster.NewRouter(ccfg, logger).Run(ctx)
		}
		if *clusterNode == "" {
			return fmt.Errorf("-cluster requires -cluster-node ID (or -router)")
		}
		node, ok := ccfg.Node(*clusterNode)
		if !ok {
			return fmt.Errorf("node %q is not in %s", *clusterNode, *clusterFile)
		}
		// The topology file is the single source of listen addresses in
		// cluster mode, so the fleet cannot disagree with the ring it serves.
		*addr = node.HTTP
		if node.XTP != "" {
			*xtpAddr = node.XTP
		}
		clusterOpts = &ClusterOptions{Config: ccfg, NodeID: *clusterNode}
	}

	var tenants []TenantConfig
	if *tenantsFile != "" {
		if tenants, err = LoadTenantsFile(*tenantsFile); err != nil {
			return err
		}
		if tenants == nil {
			// An empty config file still enables tenancy (Config.Tenants
			// distinguishes nil from empty).
			tenants = []TenantConfig{}
		}
	}

	srv, err := New(Config{
		Addr:                 *addr,
		XTPAddr:              *xtpAddr,
		CacheCapacity:        *cache,
		AggregateBudgetBytes: *budget,
		DataDir:              *dataDir,
		StoreDir:             *storeDir,
		StoreCompactRatio:    *compactRatio,
		StoreCompactInterval: time.Duration(*compactIvl),
		StoreFsync:           storeFsync.String(),
		StoreBatchLatency:    *batchLatency,
		Logger:               logger,
		PprofAddr:            *pprofAddr,
		Tenants:              tenants,
		Cluster:              clusterOpts,
	})
	if err != nil {
		return err
	}
	if err := Preload(srv.Registry(), preloads); err != nil {
		srv.Close()
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Run(ctx)
}
