package server

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
)

// RunCLI parses daemon flags and serves until SIGINT/SIGTERM, shutting down
// gracefully. It backs both the xseedd binary and `xseed serve`.
func RunCLI(name string, args []string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	cache := fs.Int("cache", 4096, "estimate cache capacity (entries)")
	budget := fs.Int("budget", 0, "aggregate synopsis memory budget in bytes (0 = unlimited)")
	dataDir := fs.String("data-dir", "", "directory the HTTP xmlFile/synopsisFile sources may read (empty = disabled)")
	var preloads []string
	fs.Func("synopsis", "preload `name=path` (synopsis file or XML; repeatable)", func(v string) error {
		preloads = append(preloads, v)
		return nil
	})
	fs.Parse(args)

	srv := New(Config{
		Addr:                 *addr,
		CacheCapacity:        *cache,
		AggregateBudgetBytes: *budget,
		DataDir:              *dataDir,
	})
	if err := Preload(srv.Registry(), preloads); err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return srv.Run(ctx)
}
