package server

import (
	"errors"
	"fmt"
	"net/http"
	"path/filepath"

	"xseed/api"
	"xseed/internal/cluster"
	"xseed/internal/store"
)

// ClusterOptions runs the daemon as one node of a distributed xseed
// cluster (the -cluster/-cluster-node flags): the synopsis registry is
// partitioned across the configured nodes by consistent hashing on the
// (tenant, name) store key, this node replicates its primaries' delta
// logs to warm standbys, and requests for synopses owned elsewhere answer
// with a typed moved error naming the owner. Requires a store
// (Config.StoreDir): replication is log shipping.
type ClusterOptions struct {
	Config cluster.Config // shared topology file (cluster.LoadConfigFile)
	NodeID string         // this node's ID within Config.Nodes
}

// attachCluster wires the cluster manager and standby receiver into a
// freshly built server (New calls it after store recovery, so the
// manager's first ownership sweep sees every restored synopsis).
func (s *Server) attachCluster(opts *ClusterOptions) error {
	if s.st == nil {
		return fmt.Errorf("cluster mode requires a store (set -store-dir): replication ships the delta log")
	}
	node, ok := opts.Config.Node(opts.NodeID)
	if !ok {
		return fmt.Errorf("cluster: node %q is not in the cluster config", opts.NodeID)
	}
	if node.Repl == "" {
		return fmt.Errorf("cluster: node %q has no repl listen address", opts.NodeID)
	}
	host := &clusterHost{s: s}
	mgr, err := cluster.NewManager(opts.Config, opts.NodeID, host,
		filepath.Join(s.st.Dir(), "repl"), s.om, s.log)
	if err != nil {
		return err
	}
	s.cl = mgr
	s.replAddr = node.Repl
	s.replSrv = cluster.NewReplServer(opts.NodeID, host, mgr.RingJSON, s.log)
	if s.xtp != nil {
		s.xtp.AttachCluster(s.ownerCheck, mgr.RingJSON)
	}
	return nil
}

// ownerCheck gates a data-path request on partition ownership: nil when
// this node owns key (or the server is not clustered / the ring is not
// yet known — bootstrap serves locally), a typed moved error naming the
// owner otherwise.
func (s *Server) ownerCheck(key string) *api.Error {
	if s.cl == nil {
		return nil
	}
	owner, epoch, known := s.cl.Owner(key)
	if !known || owner.ID == s.cl.Self() {
		return nil
	}
	_, bare := store.SplitKey(key)
	return api.NewMovedError(bare, "http://"+owner.HTTP, epoch)
}

// handleClusterRing serves this node's view of the partition ring.
func (s *Server) handleClusterRing(w http.ResponseWriter, r *http.Request) {
	if s.cl == nil {
		writeAPIError(w, r, api.Errorf(api.CodeConflict, "server is not part of a cluster (start with -cluster)"))
		return
	}
	data, ok := s.cl.RingJSON()
	if !ok {
		writeAPIError(w, r, api.Errorf(api.CodeUnavailable, "ring not yet known"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleClusterLag serves the replication lag this node observes toward
// each of its standby targets (the router polls it to activate joiners).
func (s *Server) handleClusterLag(w http.ResponseWriter, r *http.Request) {
	if s.cl == nil {
		writeAPIError(w, r, api.Errorf(api.CodeConflict, "server is not part of a cluster (start with -cluster)"))
		return
	}
	writeJSON(w, http.StatusOK, api.ClusterLag{Node: s.cl.Self(), Targets: s.cl.Lag()})
}

// clusterHost adapts the registry + store pair to cluster.Host. It is the
// only bridge between the cluster layer and the serving node, and the
// reason internal/cluster never imports internal/server.
type clusterHost struct {
	s *Server
}

func (h *clusterHost) PrimaryKeys() []string { return h.s.reg.PrimaryKeys() }
func (h *clusterHost) AllKeys() []string     { return h.s.reg.Keys() }

func (h *clusterHost) SetPrimary(key string, primary bool) bool {
	e, err := h.s.reg.Get(key)
	if err != nil {
		return false
	}
	changed := e.replica.Swap(!primary) == primary
	if changed {
		// Role flips move the entry in or out of the budget domains (replicas
		// never plan locally — their budget records replicate in).
		h.s.reg.Replan()
	}
	return changed
}

func (h *clusterHost) Tail(key string) (uint64, int64, bool) { return h.s.st.Tail(key) }

func (h *clusterHost) ReadSegment(key string, seq uint64, off, max int64) ([]byte, error) {
	return h.s.st.ReadSegment(key, seq, off, max)
}

func (h *clusterHost) ExportBase(key string) (store.BaseExport, error) {
	return h.s.st.ExportBase(key)
}

func (h *clusterHost) ImportBase(key string, seq uint64, meta store.BaseMeta, snapshot []byte) error {
	l, err := h.s.st.ImportBase(key, seq, meta, snapshot)
	if err != nil {
		return err
	}
	_, err = h.s.reg.AdoptReplica(l)
	return err
}

func (h *clusterHost) ApplySegment(key string, seq uint64, off int64, data []byte) (int64, error) {
	newSize, records, err := h.s.st.AppendSegment(key, seq, off, data)
	if err != nil {
		return 0, err
	}
	if records == 0 {
		return newSize, nil // duplicate retransmit: already applied in memory
	}
	e, gerr := h.s.reg.Get(key)
	if gerr != nil {
		// Durable but not hosted (a replica whose base import was lost to a
		// restart-and-recover race): resync from the base.
		return 0, store.ErrSeqMismatch
	}
	e.mu.Lock()
	_, rerr := store.ReplaySegment(e.syn, data)
	if rerr == nil {
		e.invalidate()
	}
	e.mu.Unlock()
	if rerr != nil {
		return 0, rerr
	}
	return newSize, nil
}

func (h *clusterHost) DeleteReplica(key string) error {
	err := h.s.reg.Delete(key)
	if err != nil && errors.Is(err, ErrNotFound) {
		return nil // idempotent: the delete may be a retransmit
	}
	return err
}
