package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xseed/api"
	"xseed/client"
	"xseed/internal/cluster"
	"xseed/internal/fixtures"
	"xseed/internal/logx"
	"xseed/internal/store"
)

// freeAddrs reserves n distinct loopback addresses. All listeners are held
// open until every port is allocated, so the kernel cannot hand the same
// port out twice within one call.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	lns := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns = append(lns, ln)
		addrs = append(addrs, ln.Addr().String())
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// clusterNode is one in-process xseedd instance of a test cluster.
type clusterNode struct {
	id     string
	srv    *Server
	dir    string
	cancel context.CancelFunc
	done   chan error
}

// startClusterNode builds and runs one node of ccfg, returning once New
// succeeded (Run's listeners bind asynchronously; waitHealthy gates on
// them).
func startClusterNode(t *testing.T, ccfg cluster.Config, id string) *clusterNode {
	t.Helper()
	nc, ok := ccfg.Node(id)
	if !ok {
		t.Fatalf("node %q not in config", id)
	}
	dir := t.TempDir()
	s, err := New(Config{
		Addr:          nc.HTTP,
		StoreDir:      dir,
		CacheCapacity: 256,
		Logger:        logx.Discard(),
		Cluster:       &ClusterOptions{Config: ccfg, NodeID: id},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	n := &clusterNode{id: id, srv: s, dir: dir, cancel: cancel, done: make(chan error, 1)}
	go func() { n.done <- s.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-n.done:
		case <-time.After(15 * time.Second):
			t.Error("node did not shut down")
		}
	})
	return n
}

// stop kills the node (the in-process analog of kill -9 for routing
// purposes: its listeners vanish mid-traffic) and waits for Run to return.
func (n *clusterNode) stop(t *testing.T) {
	t.Helper()
	n.cancel()
	select {
	case err := <-n.done:
		n.done <- err // keep the cleanup's receive satisfied
	case <-time.After(15 * time.Second):
		t.Fatal("killed node's Run did not return")
	}
}

// waitUntil polls cond every 20ms until it holds or the deadline passes.
func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// fetchRing reads the router's current ring; ok is false until the first
// sweep publishes one.
func fetchRing(routerAddr string) (api.Ring, bool) {
	resp, err := http.Get("http://" + routerAddr + "/v1/cluster/ring")
	if err != nil {
		return api.Ring{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.Ring{}, false
	}
	var r api.Ring
	if json.NewDecoder(resp.Body).Decode(&r) != nil {
		return api.Ring{}, false
	}
	return r, true
}

func countActive(r api.Ring) int {
	n := 0
	for _, m := range r.Nodes {
		if m.State == api.RingStateActive {
			n++
		}
	}
	return n
}

// caughtUp reports whether every replication target of every key holds a
// delta log bit-identical in extent to its primary's: same base
// generation, same byte length. Compared directly on the in-process
// stores, so there is no polling-lag ambiguity.
func caughtUp(r api.Ring, nodes map[string]*clusterNode, keys []string) bool {
	ring := cluster.NewRing(r)
	for _, key := range keys {
		owner, ok := ring.Owner(key)
		if !ok {
			return false
		}
		oSeq, oSize, ok := nodes[owner.ID].srv.st.Tail(key)
		if !ok {
			return false
		}
		for _, tgt := range ring.Targets(key, owner.ID) {
			tSeq, tSize, ok := nodes[tgt.ID].srv.st.Tail(key)
			if !ok || tSeq != oSeq || tSize != oSize {
				return false
			}
		}
	}
	return true
}

// estimatesOf projects a response onto comparable (query, estimate) pairs:
// cache provenance legitimately differs between a warm primary and a
// freshly promoted standby, the numbers must not.
func estimatesOf(t *testing.T, resp api.EstimateResponse) []float64 {
	t.Helper()
	out := make([]float64, len(resp.Results))
	for i, it := range resp.Results {
		if it.Error != nil {
			t.Fatalf("estimate item %q failed: %v", it.Query, it.Error)
		}
		out[i] = it.Estimate
	}
	return out
}

// TestClusterFailoverEndToEnd is the acceptance test for the distributed
// subsystem: a 3-node cluster behind a router serves partitioned synopses
// under continuous estimate traffic; one primary is killed mid-traffic;
// after the router's failover epoch, no estimate has failed (the
// partition-aware client retries across the detection window) and the
// promoted standby answers bit-identically to the dead primary — the
// delta-log replay parity the replication design promises.
func TestClusterFailoverEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-node failover e2e")
	}
	addrs := freeAddrs(t, 7) // router + 3×(http, repl)
	ccfg := cluster.Config{
		Replicas:       1,
		Router:         addrs[0],
		PollIntervalMs: 50,
		ReplIntervalMs: 20,
		Nodes: []cluster.NodeConfig{
			{ID: "a", HTTP: addrs[1], Repl: addrs[2]},
			{ID: "b", HTTP: addrs[3], Repl: addrs[4]},
			{ID: "c", HTTP: addrs[5], Repl: addrs[6]},
		},
	}
	if err := ccfg.Validate(); err != nil {
		t.Fatal(err)
	}

	rctx, rcancel := context.WithCancel(context.Background())
	t.Cleanup(rcancel)
	rt := cluster.NewRouter(ccfg, logx.Discard())
	go rt.Run(rctx)

	nodes := map[string]*clusterNode{
		"a": startClusterNode(t, ccfg, "a"),
		"b": startClusterNode(t, ccfg, "b"),
		"c": startClusterNode(t, ccfg, "c"),
	}
	waitUntil(t, 10*time.Second, "3-node ring", func() bool {
		r, ok := fetchRing(ccfg.Router)
		return ok && countActive(r) == 3
	})

	cl, err := client.NewCluster([]string{"http://" + ccfg.Router},
		client.WithRetry(25, 10*time.Millisecond), client.WithRetryCap(100*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()

	// A handful of synopses so every node owns some partition, plus
	// feedback so the delta logs replicated to the standbys are non-empty —
	// parity after promotion then proves replay, not just the base ship.
	names := make([]string, 6)
	keys := make([]string, 6)
	for i := range names {
		names[i] = fmt.Sprintf("syn-%d", i)
		keys[i] = store.Key(store.DefaultTenant, names[i])
		if _, err := cl.Create(ctx, api.CreateRequest{Name: names[i], XML: fixtures.PaperFigure2}); err != nil {
			t.Fatalf("create %s: %v", names[i], err)
		}
		est := cl.Synopsis(names[i])
		if err := est.Feedback(ctx, "/a/c/s/s/t", float64(2+i)); err != nil {
			t.Fatalf("feedback %s: %v", names[i], err)
		}
		if err := est.Feedback(ctx, "/a/c/s[t]/p", float64(7+i)); err != nil {
			t.Fatalf("feedback %s: %v", names[i], err)
		}
	}

	probes := []string{"/a/c/s", "/a/c/s/s/t", "//s", "/a/c/s[t]/p"}
	baseline := make(map[string][]float64, len(names))
	for _, name := range names {
		resp, err := cl.Estimate(ctx, name, api.EstimateRequest{Queries: probes})
		if err != nil {
			t.Fatalf("baseline estimate %s: %v", name, err)
		}
		baseline[name] = estimatesOf(t, resp)
	}

	ringBefore, _ := fetchRing(ccfg.Router)
	waitUntil(t, 10*time.Second, "standby delta logs to match their primaries", func() bool {
		return caughtUp(ringBefore, nodes, keys)
	})

	// Continuous traffic across every synopsis; failures are counted after
	// the client's own retries, so the assertion below is the ISSUE's
	// acceptance bar: a primary kill must cost zero failed estimates.
	var failed atomic.Int64
	var firstErr atomic.Value
	trafficCtx, stopTraffic := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; trafficCtx.Err() == nil; i++ {
			name := names[i%len(names)]
			_, err := cl.Estimate(trafficCtx, name, api.EstimateRequest{Queries: probes[:1]})
			if err != nil && trafficCtx.Err() == nil {
				failed.Add(1)
				firstErr.CompareAndSwap(nil, fmt.Errorf("%s: %w", name, err))
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Kill the node that owns the first synopsis's partition.
	victimNode, ok := cluster.NewRing(ringBefore).Owner(keys[0])
	if !ok {
		t.Fatal("no owner for the probe key")
	}
	victim := nodes[victimNode.ID]
	t.Logf("killing %s (owner of %s) at epoch %d", victim.id, names[0], ringBefore.Epoch)
	victim.stop(t)

	waitUntil(t, 10*time.Second, "failover epoch excluding the dead node", func() bool {
		r, ok := fetchRing(ccfg.Router)
		if !ok || r.Epoch == ringBefore.Epoch {
			return false
		}
		for _, n := range r.Nodes {
			if n.ID == victim.id {
				return false
			}
		}
		return countActive(r) == 2
	})
	// Let traffic run over the new topology before judging it.
	time.Sleep(500 * time.Millisecond)
	stopTraffic()
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d estimates failed across the failover (first: %v)", n, firstErr.Load())
	}

	// The promoted standby must answer exactly what the dead primary did:
	// the replica state is a base ship plus a replay of the same delta
	// records, so the numbers are bit-identical, not merely close.
	ringAfter, _ := fetchRing(ccfg.Router)
	promoted, ok := cluster.NewRing(ringAfter).Owner(keys[0])
	if !ok || promoted.ID == victim.id {
		t.Fatalf("ownership of %s did not move off the dead node (owner %q)", names[0], promoted.ID)
	}
	for _, name := range names {
		resp, err := cl.Estimate(ctx, name, api.EstimateRequest{Queries: probes})
		if err != nil {
			t.Fatalf("post-failover estimate %s: %v", name, err)
		}
		got := estimatesOf(t, resp)
		for i, want := range baseline[name] {
			if got[i] != want {
				t.Errorf("%s %q: post-failover estimate %v, primary served %v", name, probes[i], got[i], want)
			}
		}
	}

	// The killed node's store must fsck clean: an interrupted primary
	// leaves at worst a recoverable torn tail, never corruption.
	rep, err := store.Fsck(victim.dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Fatalf("dead node's store failed fsck: %+v", rep)
	}
}

// TestClusterRebalanceUnderTraffic hammers one clustered node with
// concurrent estimate traffic while ring epochs flip ownership back and
// forth — the -race acceptance check for rebalance: promotions, demotions,
// sender reconciliation, and estimates race, and every request must end in
// a clean 200 (owned here) or typed 421 moved (owned elsewhere), never a
// 5xx or a torn response.
func TestClusterRebalanceUnderTraffic(t *testing.T) {
	ccfg := cluster.Config{
		Replicas: 1,
		Router:   "127.0.0.1:1", // never dialed: rings are installed directly
		Nodes: []cluster.NodeConfig{
			{ID: "a", HTTP: "127.0.0.1:1", Repl: "127.0.0.1:1"},
			{ID: "b", HTTP: "127.0.0.1:1", Repl: "127.0.0.1:1"},
		},
	}
	s, err := New(Config{CacheCapacity: 256, StoreDir: t.TempDir(), Logger: logx.Discard(),
		Cluster: &ClusterOptions{Config: ccfg, NodeID: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	names := []string{"h-0", "h-1", "h-2", "h-3"}
	for _, name := range names {
		createFixture(t, ts, name)
	}

	ringWith := func(epoch uint64, withB bool) api.Ring {
		r := api.Ring{Epoch: epoch, Replicas: 1, Nodes: []api.RingNode{
			{ID: "a", HTTP: "127.0.0.1:1", Repl: "127.0.0.1:1", State: api.RingStateActive},
		}}
		if withB {
			r.Nodes = append(r.Nodes, api.RingNode{
				ID: "b", HTTP: "127.0.0.1:1", Repl: "127.0.0.1:1", State: api.RingStateActive})
		} else {
			r.Replicas = 0
		}
		return r
	}

	done := make(chan struct{})
	var flips atomic.Uint64
	go func() {
		defer close(done)
		// Alternating b in and out of the active set re-owns roughly half
		// the key space every epoch: each flip promotes and demotes entries
		// while the workers below are mid-estimate.
		for epoch := uint64(1); epoch <= 120; epoch++ {
			s.cl.SetRing(ringWith(epoch, epoch%2 == 0))
			flips.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	var served, moved atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				name := names[(w+i)%len(names)]
				var out api.EstimateResponse
				resp := doJSON(t, ts.Client(), "POST",
					ts.URL+"/v1/synopses/"+name+"/estimate",
					api.EstimateRequest{Query: "/a/c/s"}, &out)
				switch resp.StatusCode {
				case http.StatusOK:
					served.Add(1)
					if len(out.Results) != 1 || out.Results[0].Error != nil {
						t.Errorf("torn 200 for %s: %+v", name, out)
					}
				case http.StatusMisdirectedRequest:
					moved.Add(1)
				default:
					t.Errorf("estimate %s: status %d during rebalance", name, resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Wait()
	<-done

	if served.Load() == 0 {
		t.Error("no estimate was served during the rebalance storm")
	}
	if moved.Load() == 0 {
		t.Error("no estimate was redirected during the rebalance storm — the flips never raced the traffic")
	}
	t.Logf("rebalance hammer: %d served, %d moved, %d ring flips", served.Load(), moved.Load(), flips.Load())
}
