package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/fixtures"
)

// postBatch posts a feedback batch and decodes the per-item results.
func postBatch(t *testing.T, ts *httptest.Server, token, name string, items []api.FeedbackItem) (int, *api.FeedbackBatchResponse) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/synopses/"+name+"/feedback:batch",
		strings.NewReader(string(mustJSON(t, api.FeedbackBatchRequest{Items: items})))) //nolint:noctx
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var out api.FeedbackBatchResponse
	if err := jsonUnmarshal(string(b), &out); err != nil {
		t.Fatalf("batch response: %v in %s", err, b)
	}
	return resp.StatusCode, &out
}

// TestFeedbackBatchHTTPPartialSuccess: one malformed query mid-batch gets
// a typed per-item error while its neighbors apply — the same contract
// batch estimate has had since v1 — and the applied items are observable
// through both the feedback counter and a shifted estimate.
func TestFeedbackBatchHTTPPartialSuccess(t *testing.T) {
	s, ts := newTestServer(t)
	createFixture(t, ts, "fig2")

	st, resp := postBatch(t, ts, "", "fig2", []api.FeedbackItem{
		{Query: "/a/c/s/s/t", Actual: 2},
		{Query: "broken[", Actual: 1},
		{Query: "/a/c/s[t]/p", Actual: 7},
	})
	if st != http.StatusOK {
		t.Fatalf("batch status %d", st)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %+v, want 3 items", resp.Results)
	}
	if resp.Results[0].Error != nil || resp.Results[2].Error != nil {
		t.Errorf("good items carry errors: %+v", resp.Results)
	}
	if e := resp.Results[1].Error; e == nil || e.Code != api.CodeParseError {
		t.Errorf("malformed item error = %+v, want parse_error", resp.Results[1].Error)
	}
	e, err := s.Registry().Get("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if info := e.Info(); info.Feedbacks != 2 {
		t.Errorf("feedbacks = %d, want the 2 good items", info.Feedbacks)
	}
	if got := estimateHTTP(t, ts, "fig2", "/a/c/s/s/t"); got != 2 {
		t.Errorf("estimate after feedback = %g, want absorbed 2", got)
	}

	// An empty batch is a whole-request error, not an empty success.
	if st, _ := postBatch(t, ts, "", "fig2", nil); st != http.StatusBadRequest {
		t.Errorf("empty batch status %d, want 400", st)
	}
	// Unknown synopsis fails wholesale.
	if st, _ := postBatch(t, ts, "", "nope", []api.FeedbackItem{{Query: "/a", Actual: 1}}); st != http.StatusNotFound {
		t.Errorf("unknown synopsis status %d, want 404", st)
	}
}

// TestFeedbackBatchRateLimitChargesPerEvent is the anti-bypass regression:
// a batch of N feedback events costs N tokens, admitted or rejected as one
// unit, and one tenant's rejection leaves its sibling's bucket untouched.
func TestFeedbackBatchRateLimitChargesPerEvent(t *testing.T) {
	s, err := New(Config{CacheCapacity: 64, Tenants: []TenantConfig{
		// Effectively no refill during the test: capacity is the burst.
		{ID: "acme", Token: "acme-tok", RatePerSec: 0.0001, Burst: 10},
		{ID: "rival", Token: "rival-tok", RatePerSec: 0.0001, Burst: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })

	for _, tok := range []string{"acme-tok", "rival-tok"} {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/synopses",
			strings.NewReader(string(mustJSON(t, api.CreateRequest{Name: "doc", XML: fixtures.PaperFigure2}))))
		req.Header.Set("Authorization", "Bearer "+tok)
		resp, err := ts.Client().Do(req)
		if err != nil || resp.StatusCode != http.StatusCreated {
			t.Fatalf("create as %s: %v %v", tok, resp.Status, err)
		}
		resp.Body.Close()
	}
	acme := s.Registry().Tenants().lookup("acme")
	// The two creates cost one token each; top the buckets back up.
	acme.rlMu.Lock()
	acme.rlTok = 10
	acme.rlMu.Unlock()
	rival := s.Registry().Tenants().lookup("rival")
	rival.rlMu.Lock()
	rival.rlTok = 10
	rival.rlMu.Unlock()

	items := func(n int) []api.FeedbackItem {
		out := make([]api.FeedbackItem, n)
		for i := range out {
			out[i] = api.FeedbackItem{Query: "/a/c/s/s/t", Actual: float64(2 + i)}
		}
		return out
	}
	// 4 + 4 = 8 of 10 tokens.
	for i := 0; i < 2; i++ {
		if st, _ := postBatch(t, ts, "acme-tok", "doc", items(4)); st != http.StatusOK {
			t.Fatalf("batch %d status %d", i, st)
		}
	}
	// A batch of 4 against the remaining 2 is rejected whole...
	if st, _ := postBatch(t, ts, "acme-tok", "doc", items(4)); st != http.StatusTooManyRequests {
		t.Fatalf("over-limit batch status %d, want 429", st)
	}
	// ...consuming nothing: the 2 remaining tokens still admit a batch of 2.
	if st, _ := postBatch(t, ts, "acme-tok", "doc", items(2)); st != http.StatusOK {
		t.Fatalf("post-rejection batch status %d, want 200 from unconsumed tokens", st)
	}
	if st, _ := postBatch(t, ts, "acme-tok", "doc", items(1)); st != http.StatusTooManyRequests {
		t.Fatalf("drained bucket admitted another event: status %d", st)
	}
	// The sibling tenant's bucket is untouched by acme's rejections: a
	// full-burst batch of 10 is admitted in one shot.
	if st, _ := postBatch(t, ts, "rival-tok", "doc", items(10)); st != http.StatusOK {
		t.Fatalf("rival batch status %d; neighbor's limit leaked", st)
	}
	if got := acme.rateLimited.Load(); got != 2 {
		t.Errorf("acme rateLimited = %d, want the 2 rejected requests", got)
	}
}

// TestFeedbackBatchCoalescesPublishes pins the tentpole's publication
// economics: concurrent batches against one synopsis produce far fewer
// snapshot publications than applied events — enqueuers piggyback on the
// active drainer's rounds instead of publishing one successor each.
func TestFeedbackBatchCoalescesPublishes(t *testing.T) {
	s, ts := newTestServer(t)
	createFixture(t, ts, "fig2")
	reg := s.Registry()

	const workers, perBatch, rounds = 8, 16, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			items := make([]api.FeedbackItem, perBatch)
			for i := range items {
				items[i] = api.FeedbackItem{Query: "/a/c/s/s/t", Actual: float64(1 + (w+i)%9)}
			}
			for r := 0; r < rounds; r++ {
				errs, err := reg.FeedbackBatch("fig2", items)
				if err != nil {
					t.Error(err)
					return
				}
				for _, e := range errs {
					if e != nil {
						t.Errorf("item error: %v", e)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	applied := reg.obs.fbApplied.Value()
	publishes := reg.obs.fbPublishes.Value()
	if applied != workers*perBatch*rounds {
		t.Fatalf("applied = %d, want %d", applied, workers*perBatch*rounds)
	}
	// Every drain round publishes once and carries at least one whole batch,
	// so publications can never exceed batches — and under contention they
	// come in well below. The hard bound is what the test pins.
	if maxPub := uint64(workers * rounds); publishes > maxPub {
		t.Errorf("publishes = %d for %d batches; coalescing regressed", publishes, maxPub)
	}
	if publishes == 0 {
		t.Error("no publications recorded")
	}
}

// TestFeedbackBatchCrashRecoveryBatchedFsync is the server-level durability
// drill under -store-fsync=batch: kill -9 (abandon, no Close) right after a
// hammer of acked batches, restart, and every estimate must match the
// moment of death — acked means fsynced, even in group-commit mode.
func TestFeedbackBatchCrashRecoveryBatchedFsync(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{StoreDir: dir, StoreFsync: "batch", StoreBatchLatency: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	d, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("fig2", syn, "hammer"); err != nil {
		t.Fatal(err)
	}

	queries := []string{"/a/c/s/s/t", "/a/c/s", "/a/c/p", "/a/t", "/a/c/s/p", "/a/c/s/s", "/a/c/t", "/a/c/s[t]/p"}
	const workers, rounds, perBatch = 8, 20, 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				items := make([]api.FeedbackItem, perBatch)
				for i := range items {
					items[i] = api.FeedbackItem{
						Query:  queries[(w+r+i)%len(queries)],
						Actual: float64(1 + (w*rounds+r*perBatch+i)%17),
					}
				}
				errs, err := reg.FeedbackBatch("fig2", items)
				if err != nil {
					t.Error(err)
					return
				}
				for _, e := range errs {
					if e != nil {
						t.Errorf("item error: %v", e)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	e, err := reg.Get("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if info := e.Info(); info.Feedbacks != workers*rounds*perBatch {
		t.Fatalf("applied %d feedbacks, want %d", info.Feedbacks, workers*rounds*perBatch)
	}
	want := make([]float64, len(queries))
	for i, q := range queries {
		if want[i], err = e.Synopsis().Estimate(q); err != nil {
			t.Fatal(err)
		}
	}

	// Die without flushing or closing, restart on the same dir.
	s2, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e2, err := s2.Registry().Get("fig2")
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		got, err := e2.Synopsis().Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Errorf("%s: post-restart %g != pre-kill %g", q, got, want[i])
		}
	}
}
