package server

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"xseed"
)

// TestEstimateLockFreeUnderWedgedMutation is the blocking-injection proof of
// the acceptance criterion: after the entry lookup, the estimate path
// acquires no entry mutex. The entry's write lock is held (wedged, as a
// stuck feedback or a slow base-snapshot fsync would) for the whole test;
// batches — cold and warm, standard and streaming — must complete promptly
// and match the pinned snapshot's values exactly. Before the snapshot
// refactor this test would deadlock: estimates took the read side of the
// wedged RWMutex.
func TestEstimateLockFreeUnderWedgedMutation(t *testing.T) {
	_, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(64, 0)
	e, err := r.Add("fig2", syn, "test")
	if err != nil {
		t.Fatal(err)
	}

	e.mu.Lock() // wedge every mutator for the duration of the test
	defer e.mu.Unlock()

	queries := []string{"/a/c/s", "/a/c/s/s/t", "//s//p", "/a/c/s[p]/t"}
	sn := syn.Snapshot()
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i] = sn.EstimateQuery(xseed.MustParseQuery(q))
	}

	done := make(chan error, 1)
	go func() {
		for round := 0; round < 3; round++ {
			for _, streaming := range []bool{false, true} {
				items, err := r.EstimateBatch(context.Background(), "fig2", queries, streaming)
				if err != nil {
					done <- err
					return
				}
				if !streaming {
					for i := range items {
						if items[i].Estimate != want[i] {
							t.Errorf("%s = %v, want %v", queries[i], items[i].Estimate, want[i])
						}
					}
				}
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("estimate batch blocked behind a wedged mutation lock")
	}
}

// TestEstimateScopeNoStalePollution hammers a registry with concurrent
// estimates, feedback, subtree updates, and aggregate-budget rebalances
// (run under -race), then quiesces and asserts the served estimates equal
// the final snapshot's values bit for bit — twice, so the second round is
// answered from the cache. A stale cache entry leaking across a mutation
// into the live scope (the bug the snapshot-version scopes exist to
// prevent) would surface as a mismatch on either round.
func TestEstimateScopeNoStalePollution(t *testing.T) {
	_, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(4096, 1<<20)
	r.StartRebalancer()
	defer r.Close()
	e, err := r.Add("fig2", syn, "test")
	if err != nil {
		t.Fatal(err)
	}

	queries := []string{"/a/c/s", "/a/c/s/s/t", "//s//p", "/a/c/s[p]/t", "/a/c/s/p"}
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ { // estimate traffic
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.EstimateBatch(ctx, "fig2", queries, i%2 == 0); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	var mutations atomic.Int64
	mutatorDead := make(chan struct{})
	wg.Add(1)
	go func() { // feedback + subtree churn (serialized per entry by e.mu inside)
		defer wg.Done()
		defer close(mutatorDead)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			switch i % 4 {
			case 0:
				err = r.Feedback("fig2", "/a/c/s/p", float64(1+i%9))
			case 1:
				err = r.Feedback("fig2", "/a/c/s[p]/t", float64(1+i%4))
			case 2:
				err = r.AddSubtree("fig2", []string{"a"}, "<c><s/></c>")
			case 3:
				err = r.RemoveSubtree("fig2", []string{"a"}, "<c><s/></c>")
			}
			if err != nil {
				t.Error(err)
				return
			}
			mutations.Add(1)
		}
	}()
	wg.Add(1)
	go func() { // aggregate-budget churn driving rebalancer SetBudget applies
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			r.SetAggregateBudget(1<<20 + (i%2)*4096)
			time.Sleep(200 * time.Microsecond)
		}
	}()

	for alive := true; alive && mutations.Load() < 200; {
		select {
		case <-mutatorDead: // died on error: fail fast, don't hang the wait
			alive = false
		case <-time.After(time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	r.waitRebalanced() // no more SetBudget applications in flight

	// Quiesced: the final snapshot's answers are the only acceptable ones.
	sn := e.syn.Snapshot()
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i] = sn.EstimateQuery(xseed.MustParseQuery(q))
	}
	for round := 0; round < 2; round++ {
		items, err := r.EstimateBatch(ctx, "fig2", queries, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := range items {
			if items[i].Estimate != want[i] {
				t.Fatalf("round %d: %s = %v, want %v (stale cache scope?)",
					round, queries[i], items[i].Estimate, want[i])
			}
		}
		if round == 1 {
			for i := range items {
				if !items[i].Cached {
					t.Errorf("round 1: %s not served from cache", queries[i])
				}
			}
		}
	}
}

// TestEstimateP99BoundedDuringFeedbackStorm asserts the latency half of the
// acceptance criterion: with a feedback storm continuously mutating the
// same synopsis (every applied feedback publishes a new snapshot and
// retires the estimate cache), concurrent estimates stay bounded — they
// never wait on the mutators' lock, worst case they rebuild the small EPT
// for a fresh snapshot. The bound is deliberately generous (wall-clock CI
// noise), catching only a return to reader-blocks-on-writer behavior,
// where estimates would queue behind every feedback's critical section.
func TestEstimateP99BoundedDuringFeedbackStorm(t *testing.T) {
	_, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(4096, 0)
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	queries := []string{"/a/c/s", "/a/c/s/s/t", "//s//p", "/a/c/s[p]/t"}
	ctx := context.Background()
	if _, err := r.EstimateBatch(ctx, "fig2", queries, false); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var storms atomic.Int64
	stormDead := make(chan struct{})
	var deadOnce sync.Once
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := r.Feedback("fig2", "/a/c/s/p", float64(1+(g+i)%13)); err != nil {
					t.Error(err)
					deadOnce.Do(func() { close(stormDead) })
					return
				}
				storms.Add(1)
			}
		}(g)
	}

	for alive := true; alive && storms.Load() < 10; { // storm demonstrably running
		select {
		case <-stormDead: // died on error: fail fast, don't hang the wait
			alive = false
		case <-time.After(time.Millisecond):
		}
	}
	const probes = 400
	lat := make([]time.Duration, 0, probes)
	for i := 0; i < probes; i++ {
		start := time.Now()
		if _, err := r.Estimate(ctx, "fig2", queries[i%len(queries)], false); err != nil {
			t.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	close(stop)
	wg.Wait()

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[int(math.Ceil(0.99*float64(len(lat))))-1]
	t.Logf("estimate p99 %v (p50 %v) during %d feedbacks", p99, lat[len(lat)/2], storms.Load())
	if storms.Load() == 0 {
		t.Fatal("feedback storm never ran")
	}
	if p99 > 250*time.Millisecond {
		t.Fatalf("estimate p99 %v during feedback storm exceeds 250ms", p99)
	}
}
