package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"net/http/pprof"
	"time"

	"xseed/internal/obs"
)

// httpMetrics is the HTTP layer's metric families. Each route resolves its
// labeled children once at mount time (routeMetrics), so the per-request
// cost is array indexing plus wait-free increments — no label-map lookups.
type httpMetrics struct {
	requests *obs.CounterVec   // xseed_http_requests_total{route, code}
	latency  *obs.HistogramVec // xseed_http_request_seconds{route}
	bytes    *obs.HistogramVec // xseed_http_response_bytes{route}
}

func newHTTPMetrics(om *obs.Registry) *httpMetrics {
	return &httpMetrics{
		requests: om.CounterVec("xseed_http_requests_total",
			"HTTP requests by route and status class.", "route", "code"),
		latency: om.HistogramVec("xseed_http_request_seconds",
			"HTTP request latency by route.", obs.HistogramOpts{Scale: 1e9}, "route"),
		bytes: om.HistogramVec("xseed_http_response_bytes",
			"HTTP response body size by route.", obs.HistogramOpts{}, "route"),
	}
}

var statusClasses = [...]string{"1xx", "2xx", "3xx", "4xx", "5xx"}

// routeMetrics is one route's resolved children: a counter per status
// class plus the latency and size histograms.
type routeMetrics struct {
	codes   [len(statusClasses)]*obs.Counter
	latency *obs.Histogram
	bytes   *obs.Histogram
}

// route resolves the children for one route label ("POST
// /v1/synopses/{name}/estimate"). The legacy alias shares its canonical
// route's series — the handler, and therefore its cost profile, is the same.
func (m *httpMetrics) route(label string) *routeMetrics {
	rm := &routeMetrics{
		latency: m.latency.With(label),
		bytes:   m.bytes.With(label),
	}
	for i, c := range statusClasses {
		rm.codes[i] = m.requests.With(label, c)
	}
	return rm
}

func (rm *routeMetrics) observe(status int, bytes int64, dur time.Duration) {
	i := status/100 - 1
	if i < 0 || i >= len(statusClasses) {
		i = 4 // malformed WriteHeader values count as 5xx
	}
	rm.codes[i].Inc()
	rm.latency.Observe(dur.Nanoseconds())
	rm.bytes.Observe(bytes)
}

// statusWriter captures the status code and body size a handler produced.
// The API surface is plain JSON/octet-stream responses — no hijacking, no
// server-push — so the two wrapped methods are the whole contract.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// instrument wraps one route's handler with its resolved metrics.
func instrument(rm *routeMetrics, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		rm.observe(status, sw.bytes, time.Since(start))
	}
}

type ctxKey int

const ctxKeyRequestID ctxKey = 0

// requestID returns the request's ID ("" outside the middleware).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// newRequestID mints a 16-hex-character ID. crypto/rand never fails on the
// supported platforms; if it somehow does, a constant non-empty ID is still
// more useful in logs than an absent one.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "00000000-rng-err"
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID confines a client-supplied X-Request-Id to something
// loggable: printable ASCII, no quotes or backslashes (it lands inside JSON
// log lines and error details), capped at 64 bytes.
func sanitizeRequestID(id string) string {
	if len(id) > 64 {
		id = id[:64]
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < 0x21 || c > 0x7e || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}

// withRequestID is the outermost middleware: it accepts or generates the
// X-Request-Id, echoes it on the response, stashes it in the context (5xx
// error envelopes attach it, see writeAPIError), and emits the access-log
// line — so a client-reported failure is grep-able in one hop from either
// the response header or the error body.
func (s *Server) withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), ctxKeyRequestID, id))
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		s.log.Info("request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"bytes", sw.bytes,
			"durMs", float64(time.Since(start).Microseconds())/1e3,
			"requestId", id,
		)
	})
}

// mountPprof registers the net/http/pprof handlers on an admin mux. Kept
// off the public Handler() deliberately: profiles and heap dumps are
// operator surface, served only on the -pprof listener.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Redirect(w, r, "/debug/pprof/", http.StatusFound)
	})
}
