package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"log/slog"

	"xseed/api"
	"xseed/internal/cluster"
	"xseed/internal/logx"
)

// scrapeMetrics fetches /metrics and parses every sample line into a
// series -> value map keyed by the full series name with labels
// (`xseed_cache_hits_total`, `xseed_qerror_count{synopsis="a"}`).
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content-type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsCoverEveryRoute keeps the HTTP instrumentation in sync with the
// route table: mounting a route must register its latency series, so a new
// endpoint cannot silently ship unobserved.
func TestMetricsCoverEveryRoute(t *testing.T) {
	_, ts := newTestServer(t)
	m := scrapeMetrics(t, ts)
	for _, rt := range api.Routes() {
		key := fmt.Sprintf(`xseed_http_request_seconds_count{route="%s %s"}`, rt.Method, rt.Path)
		if _, ok := m[key]; !ok {
			t.Errorf("route %s %s has no latency series %s", rt.Method, rt.Path, key)
		}
	}
}

// TestMetricsFamilies drives every subsystem once and asserts each promised
// family shows up in the exposition: HTTP, estimate stages, cache, plan
// cache, rebalancer, store, and accuracy.
func TestMetricsFamilies(t *testing.T) {
	s, err := New(Config{CacheCapacity: 1024, StoreDir: t.TempDir(), Logger: logx.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	createFixture(t, ts, "a")
	var est api.EstimateResponse
	for i := 0; i < 2; i++ { // second run hits the estimate cache
		doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/a/estimate",
			api.EstimateRequest{Query: "//A"}, &est)
	}
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/a/feedback",
		api.FeedbackRequest{Query: "//A", Actual: 3}, nil)
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/admin/compact", nil, nil)

	m := scrapeMetrics(t, ts)
	mustHave := []string{
		`xseed_http_requests_total{route="POST /v1/synopses/{name}/estimate",code="2xx"}`,
		`xseed_estimate_stage_seconds_count{stage="plan_run",synopsis="a"}`,
		`xseed_estimate_stage_seconds_count{stage="parse",synopsis="a"}`,
		`xseed_cache_hits_total`,
		`xseed_cache_misses_total`,
		`xseed_cache_evictions_total`,
		`xseed_cache_cost_saved_ns_total`,
		`xseed_plan_cache_hits_total`,
		`xseed_plan_cache_misses_total`,
		`xseed_rebalance_generation`,
		`xseed_rebalance_applied_generation`,
		`xseed_rebalance_pending`,
		`xseed_store_appends_total`,
		`xseed_store_base_saves_total`,
		`xseed_store_save_errors_total{op="append"}`,
		`xseed_qerror_count{synopsis="a"}`,
		`xseed_synopses`,
	}
	for _, key := range mustHave {
		if _, ok := m[key]; !ok {
			t.Errorf("exposition is missing %s", key)
		}
	}
	if got := m[`xseed_qerror_count{synopsis="a"}`]; got != 1 {
		t.Errorf("qerror count = %v after one feedback, want 1", got)
	}
	if got := m[`xseed_store_base_saves_total`]; got < 1 {
		t.Errorf("base saves = %v, want >= 1", got)
	}
	if got := m[`xseed_cache_hits_total`]; got < 1 {
		t.Errorf("cache hits = %v after repeat estimate, want >= 1", got)
	}
}

// TestMetricsFamiliesRepl extends the family coverage to the replication
// layer: a clustered node with one replication target must expose every
// xseed_repl_* family, with per-target children resolved the moment the
// sender exists — before a single byte ships.
func TestMetricsFamiliesRepl(t *testing.T) {
	ccfg := cluster.Config{
		Replicas: 1,
		Router:   "127.0.0.1:1", // never dialed: the test installs rings directly
		Nodes: []cluster.NodeConfig{
			{ID: "a", HTTP: "127.0.0.1:1", Repl: "127.0.0.1:1"},
			{ID: "b", HTTP: "127.0.0.1:1", Repl: "127.0.0.1:1"},
		},
	}
	s, err := New(Config{CacheCapacity: 1024, StoreDir: t.TempDir(), Logger: logx.Discard(),
		Cluster: &ClusterOptions{Config: ccfg, NodeID: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	createFixture(t, ts, "a")
	// b joining: this node owns every key (ownership walks actives only)
	// and replicates toward b (replication walks actives and joiners).
	s.cl.SetRing(api.Ring{Epoch: 1, Replicas: 1, Nodes: []api.RingNode{
		{ID: "a", HTTP: "127.0.0.1:1", Repl: "127.0.0.1:1", State: api.RingStateActive},
		{ID: "b", HTTP: "127.0.0.1:1", Repl: "127.0.0.1:1", State: api.RingStateJoining},
	}})

	m := scrapeMetrics(t, ts)
	mustHave := []string{
		`xseed_repl_failovers_total`,
		`xseed_repl_lag_bytes{target="b"}`,
		`xseed_repl_lag_seconds{target="b"}`,
		`xseed_repl_segments_sent_total{target="b"}`,
		`xseed_repl_bytes_sent_total{target="b"}`,
		`xseed_repl_base_ships_total{target="b"}`,
	}
	for _, key := range mustHave {
		if _, ok := m[key]; !ok {
			t.Errorf("exposition is missing %s", key)
		}
	}
}

// TestStatsMatchesMetrics is the can-never-disagree contract: /v1/stats and
// /metrics read the same atomics, so at a quiet moment the two views carry
// identical numbers.
func TestStatsMatchesMetrics(t *testing.T) {
	_, ts := newTestServer(t)
	createFixture(t, ts, "a")
	createFixture(t, ts, "b")
	var est api.EstimateResponse
	for _, q := range []string{"//A", "//A", "/A/B", "//A[B]"} {
		doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/a/estimate",
			api.EstimateRequest{Query: q}, &est)
	}
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/admin/budget",
		api.BudgetRequest{Bytes: 1 << 20}, nil)
	waitRebalanced(t, ts)

	var stats api.Stats
	doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, &stats)
	m := scrapeMetrics(t, ts)

	same := []struct {
		name string
		json float64
		key  string
	}{
		{"cache hits", float64(stats.Cache.Hits), "xseed_cache_hits_total"},
		{"cache misses", float64(stats.Cache.Misses), "xseed_cache_misses_total"},
		{"cache evictions", float64(stats.Cache.Evictions), "xseed_cache_evictions_total"},
		{"cost saved ns", float64(stats.Cache.CostSavedNs), "xseed_cache_cost_saved_ns_total"},
		{"plan hits", float64(stats.Cache.PlanHits), "xseed_plan_cache_hits_total"},
		{"plan misses", float64(stats.Cache.PlanMisses), "xseed_plan_cache_misses_total"},
		{"cache entries", float64(stats.Cache.Entries), "xseed_cache_entries"},
		{"rebalance gen", float64(stats.Rebalance.Gen), "xseed_rebalance_generation"},
		{"applied gen", float64(stats.Rebalance.AppliedGen), "xseed_rebalance_applied_generation"},
		{"pending", float64(stats.Rebalance.Pending), "xseed_rebalance_pending"},
		{"synopses", float64(len(stats.Synopses)), "xseed_synopses"},
	}
	for _, c := range same {
		got, ok := m[c.key]
		if !ok {
			t.Errorf("%s: exposition missing %s", c.name, c.key)
			continue
		}
		if got != c.json {
			t.Errorf("%s: /v1/stats says %v, /metrics %s says %v", c.name, c.json, c.key, got)
		}
	}
}

func waitRebalanced(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for i := 0; i < 500; i++ {
		var stats api.Stats
		doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, &stats)
		if stats.Rebalance.AppliedGen == stats.Rebalance.Gen && stats.Rebalance.Pending == 0 {
			return
		}
	}
	t.Fatal("rebalance did not settle")
}

var hexID = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestRequestIDEcho(t *testing.T) {
	_, ts := newTestServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "trace-me-42")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-42" {
		t.Errorf("client-supplied ID not echoed: got %q", got)
	}

	resp, err = ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); !hexID.MatchString(got) {
		t.Errorf("generated ID = %q, want 16 hex chars", got)
	}

	req, _ = http.NewRequest("GET", ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "bad id\twith control chars")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); !hexID.MatchString(got) {
		t.Errorf("unsafe ID should be replaced with a generated one, got %q", got)
	}
}

// TestRequestIDIn5xxDetail pins the triage contract: a 5xx envelope carries
// the request ID in its detail, matching the response header and the access
// log line.
func TestRequestIDIn5xxDetail(t *testing.T) {
	req := httptest.NewRequest("GET", "/v1/stats", nil)
	req = req.WithContext(context.WithValue(req.Context(), ctxKeyRequestID, "rid-123"))
	rr := httptest.NewRecorder()
	writeAPIError(rr, req, api.Errorf(api.CodeInternal, "boom"))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status %d", rr.Code)
	}
	e := api.DecodeErrorBody(rr.Code, rr.Body.Bytes())
	if !strings.Contains(string(e.Detail), `"rid-123"`) {
		t.Errorf("5xx detail %q does not carry the request ID", e.Detail)
	}
}

func TestAccessLogCarriesRequestID(t *testing.T) {
	var buf strings.Builder
	s, err := New(Config{
		CacheCapacity: 1024,
		Logger:        slog.New(slog.NewJSONHandler(&buf, nil)),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req, _ := http.NewRequest("GET", ts.URL+"/v1/healthz", nil)
	req.Header.Set("X-Request-Id", "log-me-7")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	logged := buf.String()
	for _, want := range []string{`"msg":"request"`, `"requestId":"log-me-7"`, `"path":"/v1/healthz"`, `"status":200`} {
		if !strings.Contains(logged, want) {
			t.Errorf("access log %q is missing %s", logged, want)
		}
	}
}
