package server

import (
	"xseed/internal/obs"
)

// Metric families served on /metrics. The estimate path's families are
// per-synopsis (labeled children resolved once at entry creation, so the
// hot path indexes arrays, never label maps); the cache and rebalancer
// families are scrape-time reads of the same atomics /v1/stats serves, so
// the JSON view and the exposition cannot disagree.
const (
	// qerrScale is the fixed-point factor for recorded q-errors: a q-error
	// q is stored as int64(q*qerrScale), and the histogram's Scale divides
	// it back out on exposition, giving factor-1.25 bucket resolution
	// (SubBits 2) on a dimensionless ratio.
	qerrScale = 64
	// qerrClamp caps a recorded q-error at ~2^34 (after scaling): estimates
	// against an actual of zero are "infinitely" wrong, and infinity must
	// land in the top bucket, not overflow int64 conversion.
	qerrClamp = float64(1) * (1 << 34)
)

// regMetrics is the registry's handle on its metric families.
type regMetrics struct {
	om       *obs.Registry
	stageVec *obs.HistogramVec // estimate-stage latency {stage, synopsis}
	qerrVec  *obs.HistogramVec // accuracy {synopsis}

	// Publish-coalescing counters: fbApplied counts feedback events that
	// mutated an HET; fbPublishes counts the successor snapshots those
	// mutations published. applied/publishes is the coalescing factor the
	// batched write path buys (1.0 = every event paid its own publication).
	fbApplied   *obs.Counter // xseed_feedback_applied_total
	fbPublishes *obs.Counter // xseed_feedback_publishes_total
}

func newRegMetrics(om *obs.Registry) *regMetrics {
	return &regMetrics{
		om: om,
		stageVec: om.HistogramVec("xseed_estimate_stage_seconds",
			"Estimate-path time per stage per synopsis. cache_probe/parse/compile are sampled (1 in 64 queries); plan_run is exact (it reuses the cost measurement the cache already makes).",
			obs.HistogramOpts{Scale: 1e9}, "stage", "synopsis"),
		qerrVec: om.HistogramVec("xseed_qerror",
			"Per-synopsis q-error (max(est/actual, actual/est)) observed via feedback.",
			obs.HistogramOpts{Scale: qerrScale, SubBits: 2, MaxExp: 40}, "synopsis"),
		fbApplied: om.Counter("xseed_feedback_applied_total",
			"Feedback events that mutated a hyper-edge table."),
		fbPublishes: om.Counter("xseed_feedback_publishes_total",
			"Snapshot publications those mutations coalesced into (applied/publishes = coalescing factor)."),
	}
}

// wire registers the scrape-time families that read state the registry and
// cache already maintain. Called once from NewRegistryObs; every fn is safe
// from any goroutine and takes no registry-ordering locks.
func (m *regMetrics) wire(r *Registry) {
	c := r.cache
	m.om.CounterFunc("xseed_cache_hits_total",
		"Estimate-result cache hits.", func() uint64 { return uint64(c.hits.Load()) })
	m.om.CounterFunc("xseed_cache_misses_total",
		"Estimate-result cache misses.", func() uint64 { return uint64(c.misses.Load()) })
	m.om.CounterFunc("xseed_cache_evictions_total",
		"Cache entries evicted (estimates and compiled plans).", func() uint64 { return uint64(c.evictions.Load()) })
	m.om.CounterFunc("xseed_cache_cost_saved_ns_total",
		"Recorded compute cost of every served cache hit, in nanoseconds.", func() uint64 { return uint64(c.costSaved.Load()) })
	m.om.CounterFunc("xseed_plan_cache_hits_total",
		"Compiled-plan cache hits.", func() uint64 { return uint64(c.planHits.Load()) })
	m.om.CounterFunc("xseed_plan_cache_misses_total",
		"Compiled-plan cache misses (including stale plans recompiled in place).", func() uint64 { return uint64(c.planMisses.Load()) })
	m.om.GaugeFunc("xseed_cache_entries",
		"Entries resident in the estimate cache (estimates and compiled plans).",
		func() float64 { return float64(c.Stats().Entries) })
	m.om.GaugeFunc("xseed_synopses",
		"Registered synopses.", func() float64 {
			r.mu.RLock()
			n := len(r.entries)
			r.mu.RUnlock()
			return float64(n)
		})
	m.om.GaugeFunc("xseed_rebalance_generation",
		"Newest budget-rebalance plan generation.", func() float64 { return float64(r.rebalGen.Load()) })
	m.om.GaugeFunc("xseed_rebalance_applied_generation",
		"Newest fully applied budget-rebalance generation.", func() float64 { return float64(r.rebalApplied.Load()) })
	m.om.GaugeFunc("xseed_rebalance_pending",
		"Rebalance generations planned but not yet applied.", func() float64 {
			gen, applied := r.rebalGen.Load(), r.rebalApplied.Load()
			if gen > applied {
				return float64(gen - applied)
			}
			return 0
		})
}

// entry resolves one synopsis's hot-path metric handles. Children are keyed
// by name only: a Put replacement inherits its predecessor's series (the
// counters stay monotone, which is what Prometheus wants), and the series
// end only when the name is Deleted.
func (m *regMetrics) entry(name string) (*obs.StageSet, *obs.Histogram) {
	return obs.NewStageSet(m.stageVec, name), m.qerrVec.With(name)
}

// deleteEntry stops exporting a deleted synopsis's series.
func (m *regMetrics) deleteEntry(name string) {
	for _, st := range obs.Stages() {
		m.stageVec.Delete(st.String(), name)
	}
	m.qerrVec.Delete(name)
}

// qerrValue converts a feedback observation into the fixed-point q-error
// the accuracy histogram records: max(est/actual, actual/est), clamped into
// the top bucket when either side is zero or the ratio overflows. Both
// sides zero is a perfect prediction (q = 1).
func qerrValue(est, actual float64) int64 {
	var q float64
	switch {
	case est <= 0 && actual <= 0:
		q = 1
	case est <= 0 || actual <= 0:
		q = qerrClamp
	default:
		q = est / actual
		if q < 1 {
			q = 1 / q
		}
	}
	if q > qerrClamp {
		q = qerrClamp
	}
	return int64(q * qerrScale)
}
