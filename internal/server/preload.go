package server

import (
	"errors"
	"fmt"
	"os"
	"strings"

	"xseed"
)

// Preload registers synopses before the server starts listening. Each spec
// is name=path, where path is either a serialized synopsis from
// `xseed build` (loaded with ReadSynopsis) or an XML document (parsed and
// summarized with default settings). The two are distinguished by trying
// the synopsis format first.
//
// A name that is already registered is skipped, not an error: with a store
// dir, every restart restores the persisted synopses before preloading, and
// the restored copy (which carries absorbed feedback the file does not) must
// win — otherwise `-store-dir` plus `-synopsis` would boot exactly once and
// then fail forever with "already exists".
func Preload(reg *Registry, specs []string) error {
	for _, spec := range specs {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("preload spec %q: want name=path", spec)
		}
		if _, err := reg.Get(name); err == nil {
			continue
		}
		syn, source, err := loadAny(path)
		if err != nil {
			return fmt.Errorf("preload %s: %w", name, err)
		}
		if _, err := reg.Add(name, syn, source); err != nil && !errors.Is(err, ErrExists) {
			return err
		}
	}
	return nil
}

func loadAny(path string) (*xseed.Synopsis, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	syn, serr := xseed.ReadSynopsis(f)
	f.Close()
	if serr == nil {
		return syn, "file " + path, nil
	}
	doc, xerr := xseed.LoadFile(path)
	if xerr != nil {
		return nil, "", fmt.Errorf("not a synopsis (%v) nor XML (%v)", serr, xerr)
	}
	syn, err = xseed.BuildSynopsis(doc, nil)
	if err != nil {
		return nil, "", err
	}
	return syn, "xml file " + path, nil
}
