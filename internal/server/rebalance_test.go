package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
	"xseed/api"

	"xseed"
)

// buildFig2 wraps the shared fixture helper when only the synopsis matters.
func buildFig2(t testing.TB) *xseed.Synopsis {
	t.Helper()
	_, syn := buildFixtureSynopsis(t, nil)
	return syn
}

func percentile99(d []time.Duration) time.Duration {
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d[(len(d)*99)/100]
}

// TestRebalanceDoesNotStallUnrelatedEstimates is the acceptance criterion:
// while synopsis "a"'s registration is stalled inside its base-snapshot
// write (entry write-locked, registerMu held — the slow-fsync shape) and a
// SetAggregateBudget lands mid-flight, estimates to the unrelated synopsis
// "b" must keep flowing under a p99 bound. Before the async rebalancer,
// SetAggregateBudget held the registry-wide lock while waiting on "a"'s
// entry lock, so every Get — and with it every estimate — queued behind the
// stalled registration.
func TestRebalanceDoesNotStallUnrelatedEstimates(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), AggregateBudgetBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := s.Registry()
	if _, err := reg.Add("b", buildFig2(t), "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Estimate(context.Background(), "b", "/a/c/s", false); err != nil {
		t.Fatal(err)
	}

	const hold = 2 * time.Second
	const bound = 500 * time.Millisecond
	stalled := make(chan struct{})
	release := make(chan struct{})
	reg.registerHook = func(name string) {
		if name != "a" {
			return
		}
		close(stalled)
		select {
		case <-release:
		case <-time.After(hold): // fail via blown p99, not a hung test
		}
	}

	synA := buildFig2(t) // built on the test goroutine: t.Fatal must not run off it
	addDone := make(chan error, 1)
	go func() {
		_, err := reg.Add("a", synA, "test")
		addDone <- err
	}()
	<-stalled

	// The shape change lands while "a" is stalled. It must return promptly
	// (planning only) and must not drag the serving path down with it.
	budgetDone := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		reg.SetAggregateBudget(96 << 10)
		budgetDone <- time.Since(start)
	}()

	const rounds = 400
	lat := make([]time.Duration, 0, rounds)
	for i := 0; i < rounds; i++ {
		start := time.Now()
		if _, err := reg.Estimate(context.Background(), "b", "/a/c/s", false); err != nil {
			t.Fatal(err)
		}
		lat = append(lat, time.Since(start))
	}
	if p99 := percentile99(lat); p99 > bound {
		t.Errorf("estimate p99 to unrelated synopsis = %v during stalled registration, want < %v", p99, bound)
	}
	if d := <-budgetDone; d > bound {
		t.Errorf("SetAggregateBudget took %v while a registration was stalled, want < %v", d, bound)
	}

	close(release)
	if err := <-addDone; err != nil {
		t.Fatal(err)
	}
	reg.waitRebalanced()

	// Budgets converge once the stall clears: both entries carry the targets
	// of a fresh plan over the final aggregate budget.
	var kernels int
	for _, name := range []string{"a", "b"} {
		e, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		kernels += int(e.kernBytes.Load())
	}
	share := ((96 << 10) - kernels) / 2
	for _, name := range []string{"a", "b"} {
		e, _ := reg.Get(name)
		e.mu.RLock()
		got := e.lastBudget
		e.mu.RUnlock()
		want := int(e.kernBytes.Load()) + share
		if got != want {
			t.Errorf("%s: lastBudget = %d after drain, want %d", name, got, want)
		}
	}
	st := reg.Stats()
	if st.Rebalance.Pending != 0 || st.Rebalance.Gen == 0 || st.Rebalance.AppliedGen != st.Rebalance.Gen {
		t.Errorf("rebalance stats after drain = %+v", st.Rebalance)
	}
	if !st.Rebalance.Async {
		t.Error("server registry reports a synchronous rebalancer")
	}
}

// TestRebalanceRestartReplayConvergence is the durability half of the
// acceptance criterion: after a burst of coalesced rebalances (with
// registry-shape churn mixed in), a kill -9 and restart must replay the
// budget deltas to the same per-synopsis budgets and resident HET sets the
// live daemon held.
func TestRebalanceRestartReplayConvergence(t *testing.T) {
	dir := t.TempDir()
	const budget0 = 32 << 10
	s, err := New(Config{StoreDir: dir, AggregateBudgetBytes: budget0})
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	names := []string{"s0", "s1", "s2"}
	for _, name := range names {
		if _, err := reg.Add(name, buildFig2(t), "test"); err != nil {
			t.Fatal(err)
		}
	}

	// Burst: the worker coalesces most of these plans into a few passes.
	final := 0
	for i := 0; i < 20; i++ {
		final = budget0 + (i%7)*2048
		reg.SetAggregateBudget(final)
		if i%6 == 0 {
			if _, err := reg.Add("churn", buildFig2(t), "test"); err != nil {
				t.Fatal(err)
			}
			if err := reg.Delete("churn"); err != nil {
				t.Fatal(err)
			}
		}
	}
	reg.waitRebalanced()

	type state struct {
		budget   int
		resident int
	}
	want := make(map[string]state)
	for _, name := range names {
		e, err := reg.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		e.mu.RLock()
		budget := e.lastBudget
		resident, _ := e.syn.HETEntries()
		e.mu.RUnlock()
		want[name] = state{budget, resident}
	}

	// kill -9: no Close, no flush. Budget deltas were O_APPEND writes inside
	// each entry's critical section, so they are already in the page cache's
	// hands, exactly like the feedback crash tests.
	s2, err := New(Config{StoreDir: dir, AggregateBudgetBytes: final})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, name := range names {
		e, err := s2.Registry().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		e.mu.RLock()
		budget := e.lastBudget
		resident, _ := e.syn.HETEntries()
		e.mu.RUnlock()
		if budget != want[name].budget || resident != want[name].resident {
			t.Errorf("%s: restart replayed to budget=%d resident=%d, live had budget=%d resident=%d",
				name, budget, resident, want[name].budget, want[name].resident)
		}
	}
	if _, err := s2.Registry().Get("churn"); err == nil {
		t.Error("churn synopsis resurrected by restart")
	}
}

// TestRebalanceCoalescesBursts pins the coalescing contract: with the worker
// wedged behind a stalled entry, a burst of shape changes collapses into few
// applied plans (the newest wins), not one pass per call.
func TestRebalanceCoalescesBursts(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), AggregateBudgetBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := s.Registry()
	if _, err := reg.Add("b", buildFig2(t), "test"); err != nil {
		t.Fatal(err)
	}

	// Wedge the worker: hold b's write lock so the in-flight plan blocks.
	e, _ := reg.Get("b")
	e.mu.Lock()
	const burst = 50
	for i := 0; i < burst; i++ {
		reg.SetAggregateBudget(64<<10 + i*1024)
	}
	gen := reg.rebalGen.Load()
	e.mu.Unlock()
	reg.waitRebalanced()

	st := reg.RebalanceStats()
	if st.AppliedGen < gen {
		t.Fatalf("drain left applied gen %d < planned %d", st.AppliedGen, gen)
	}
	// The worker can have applied at most: the plan in flight when the lock
	// was taken, plus one coalesced survivor of the burst (plus whatever ran
	// before the wedge). It must not have applied ~burst passes.
	e.mu.RLock()
	lastGen := e.budgetGen
	got := e.lastBudget
	e.mu.RUnlock()
	if lastGen != gen {
		t.Errorf("entry's final budget came from plan %d, want newest plan %d", lastGen, gen)
	}
	// Single entry: its target is the whole aggregate budget of the newest plan.
	if wantFinal := 64<<10 + (burst-1)*1024; got != wantFinal {
		t.Errorf("final budget = %d, want %d (newest plan's target)", got, wantFinal)
	}
}

// TestRegistrySyncRebalanceWithoutWorker pins the fallback contract Restore
// depends on: a registry whose worker was never started applies budget plans
// synchronously, before the shape change returns.
func TestRegistrySyncRebalanceWithoutWorker(t *testing.T) {
	syn := buildFig2(t)
	r := NewRegistry(0, syn.KernelSizeBytes())
	if _, err := r.Add("only", syn, "test"); err != nil {
		t.Fatal(err)
	}
	// Kernel-only budget: the HET must already be evicted when Add returns.
	if n := syn.HETSizeBytes(); n != 0 {
		t.Fatalf("resident HET bytes = %d immediately after sync Add, want 0", n)
	}
	if st := r.RebalanceStats(); st.Async || st.Pending != 0 {
		t.Errorf("bare registry rebalance stats = %+v, want sync and drained", st)
	}
	// Returning to unlimited (0) must lift the fleet-imposed bound, not
	// leave the synopsis pinned at its last tight budget.
	r.SetAggregateBudget(0)
	if syn.HETSizeBytes() == 0 {
		t.Fatal("HET still evicted after the aggregate budget was lifted")
	}
	resident, total := syn.HETEntries()
	if resident != total {
		t.Errorf("unlimited budget left %d/%d HET entries resident", resident, total)
	}
	e, _ := r.Get("only")
	if got := int64(e.lastBudget); got != -1 {
		t.Errorf("lastBudget = %d after lifting the budget, want -1", got)
	}

	// A registry that never had a budget plans nothing at all.
	r2 := NewRegistry(0, 0)
	syn2 := buildFig2(t)
	hetBefore := syn2.HETSizeBytes()
	if _, err := r2.Add("x", syn2, "test"); err != nil {
		t.Fatal(err)
	}
	if g := r2.rebalGen.Load(); g != 0 {
		t.Errorf("budget-less registry planned %d rebalances", g)
	}
	if syn2.HETSizeBytes() != hetBefore {
		t.Error("budget-less registry touched a synopsis's build-time budget")
	}
}

// TestRebalanceStatsJSON drives the new /stats fields and the runtime
// budget endpoint over HTTP.
func TestRebalanceStatsJSON(t *testing.T) {
	s, ts := newTestServer(t)
	defer s.Close()
	createFixture(t, ts, "fig2")
	var st api.Stats
	doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, &st)
	if !st.Rebalance.Async {
		t.Errorf("stats.rebalance = %+v, want async worker reported", st.Rebalance)
	}

	var rb api.RebalanceStats
	if r := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/admin/budget", api.BudgetRequest{Bytes: 32 << 10}, &rb); r.StatusCode != 202 {
		t.Fatalf("budget change: status %d", r.StatusCode)
	}
	if rb.Gen == 0 {
		t.Errorf("budget change planned no rebalance: %+v", rb)
	}
	s.Registry().waitRebalanced()
	doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, &st)
	if st.AggregateBudget != 32<<10 || st.Rebalance.AppliedGen < rb.Gen || st.Rebalance.Pending != 0 {
		t.Errorf("stats after budget change = budget %d rebalance %+v", st.AggregateBudget, st.Rebalance)
	}
	if r := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/admin/budget", api.BudgetRequest{Bytes: -1}, nil); r.StatusCode != 400 {
		t.Errorf("negative budget: status %d", r.StatusCode)
	}
}

// TestRebalanceConcurrentChurnHammer races shape changes, budget changes,
// estimates, and feedback against the async rebalancer; meaningful under
// -race, and the drain at the end must converge.
func TestRebalanceConcurrentChurnHammer(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir(), AggregateBudgetBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := s.Registry()
	if _, err := reg.Add("base", buildFig2(t), "test"); err != nil {
		t.Fatal(err)
	}
	// Pre-build on the test goroutine: t.Fatal must not run off it, and a
	// synopsis must not be shared across add/delete generations (a plan
	// holding the retired entry and the re-add would mutate one synopsis
	// under two different entry locks).
	const churners, churnRounds = 3, 30
	var churnSyns [churners][churnRounds]*xseed.Synopsis
	for g := range churnSyns {
		for i := range churnSyns[g] {
			churnSyns[g][i] = buildFig2(t)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < churnRounds; i++ {
				name := fmt.Sprintf("churn%d", g)
				if _, err := reg.Add(name, churnSyns[g][i], "test"); err != nil {
					t.Error(err)
					return
				}
				if err := reg.Delete(name); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 60; i++ {
			reg.SetAggregateBudget(48<<10 + (i%4)*4096)
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 120; i++ {
			if _, err := reg.Estimate(context.Background(), "base", "/a/c/s", false); err != nil {
				t.Error(err)
				return
			}
			if i%10 == 0 {
				if err := reg.Feedback("base", "/a/c/s/s/t", 2); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
	reg.waitRebalanced()
	if st := reg.RebalanceStats(); st.Pending != 0 {
		t.Errorf("pending plans after drain: %+v", st)
	}
}
