// Package server is the xseedd serving subsystem: a concurrent registry of
// named XSEED synopses, a sharded LRU cache of estimate results and
// compiled query plans, and an HTTP JSON API over both.
//
// The estimate path is lock-free: a batch pins the synopsis's immutable
// estimation snapshot (one atomic load), estimates every cache miss against
// it — fanning large batches across a bounded worker pool — and caches
// results under a scope embedding the snapshot's version, so a concurrent
// mutation can never publish a stale value into the new scope. After the
// entry lookup, the only synchronization an estimate touches is the cache's
// fine-grained shard mutexes; it never acquires the entry's RWMutex, which
// now exists solely to serialize mutators (feedback, subtree updates,
// budget application, snapshot serialization) against each other.
//
// Budget rebalancing is split into planning and application: registry-shape
// changes compute per-entry targets under the registry lock (no entry locks
// taken) and a background worker applies them under each entry's own lock,
// so a slow critical section on one synopsis never stalls estimates to the
// others. Budgets are therefore eventually applied; /stats exposes the plan
// and applied generations.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/logx"
	"xseed/internal/metrics"
	"xseed/internal/obs"
	"xseed/internal/store"
)

// ErrNotFound and ErrExists classify registry failures for the HTTP layer
// (matched with errors.Is, never by message text).
var (
	ErrNotFound = errors.New("not found")
	ErrExists   = errors.New("already exists")
)

// Entry is one registered synopsis plus its lock and serving counters.
type Entry struct {
	name    string        // qualified registry key: store.Key(tenant, bare)
	bare    string        // name within the tenant's namespace (what clients see)
	ten     *Tenant       // owning tenant (never nil; default on untenanted servers)
	id      uint64        // registry-unique; scopes this entry's cache keys
	ver     atomic.Uint64 // durable mutation counter, persisted with base snapshots
	source  string        // human-readable provenance ("xml upload", "dataset xmark", ...)
	created time.Time

	// mu serializes mutators (feedback, subtree updates, budget application,
	// snapshot serialization) against each other — the synopsis requires
	// that. Estimates do NOT take it: they pin the synopsis's estimation
	// snapshot and run lock-free, so a wedged mutation never stalls reads.
	mu  sync.RWMutex
	syn *xseed.Synopsis

	// retired flips (under the registry lock) when this entry leaves the
	// registry map — replaced by Put or removed by Delete. A mutation that
	// captured the entry before that must not persist its delta: the store
	// log for this name now belongs to the successor's generation, and a
	// stale record replayed onto the successor's base would diverge the
	// restarted daemon from the live one.
	retired atomic.Bool

	// replica marks an entry hosted as a warm standby for another cluster
	// node's primary: it applies replicated delta-log segments, is hidden
	// from listings, and serves no client traffic (the ownership check
	// answers with a moved error first). Flipped by the cluster manager on
	// ring epoch changes; failover is one Store(false).
	replica atomic.Bool

	// kernBytes mirrors syn.KernelSizeBytes() so the rebalance planner can
	// snapshot kernel sizes under r.mu without touching entry locks (the
	// whole point of planning: never block the registry on a slow entry
	// critical section). Updated after every subtree mutation.
	kernBytes atomic.Int64

	// lastBudget is the last SetBudget applied by rebalancing: 0 = never
	// touched (the synopsis keeps its build-time budget), -1 = fleet budget
	// explicitly lifted. Guarded by mu, like budgetGen — the planner
	// deliberately never reads it (apply-time decisions under mu are what
	// keep lift plans race-free against in-flight constraining plans).
	lastBudget int
	budgetGen  uint64 // rebalance plan generation of lastBudget; guarded by mu

	estimates atomic.Int64 // uncached estimates served
	feedbacks atomic.Int64
	updates   atomic.Int64
	acc       *metrics.Online // accuracy observed via feedback

	// Feedback coalescing: concurrent feedback ops enqueue onto fbQueue and
	// the first arriver (fbActive's winner) becomes the publisher — it
	// drains the queue under mu, applies every delta with publication
	// deferred, and publishes ONE successor snapshot per drain round, so a
	// feedback storm pays the O(resident) view copy once per round instead
	// of once per event. fbMu guards only the queue and is never held while
	// applying. Log order still equals apply order: the publisher appends
	// each delta inside the same mu critical section that applied it.
	fbMu     sync.Mutex
	fbQueue  []*fbOp
	fbActive bool

	// stages and qerr are this entry's hot-path metric handles, resolved
	// once at creation (inert when the registry's obs.Registry is Disabled):
	// per-stage estimate latency and the online q-error histogram whose
	// quantiles Info() serves. Keyed by name, so a Put replacement inherits
	// the series (counters stay monotone) and Delete ends them.
	stages *obs.StageSet
	qerr   *obs.Histogram
}

// Synopsis returns the underlying synopsis. Callers must hold the entry's
// lock discipline themselves; it exists for tests and trusted callers.
func (e *Entry) Synopsis() *xseed.Synopsis { return e.syn }

// scopeFor is the cache's synopsis identifier for estimates computed
// against sn: name plus the entry's registry-unique id plus the estimation
// snapshot's version. A mutation publishes the successor snapshot inside
// its critical section, so every later batch pins a higher version and the
// old scope — including fills still in flight from readers pinned to the
// old snapshot — is unreachable and ages out of the LRU. No stale value can
// ever land in the new scope, because fills are keyed by the version the
// value was computed from. The id covers replacement: when a name is Put
// over or deleted and re-registered, the new entry's scope shares nothing
// with the old one's.
func (e *Entry) scopeFor(sn *xseed.Snapshot) string {
	return fmt.Sprintf("%s\x00%d\x00%d", e.name, e.id, sn.Version())
}

// planScope keys the entry's compiled-plan cache. Deliberately
// version-free: plans depend only on the label dictionary (append-only, so
// only subtree updates can grow it), which is exactly why they survive the
// feedback storms that retire every estimate scope; staleness after a
// dictionary change is detected per-hit with Plan.CompatibleWith.
func (e *Entry) planScope() string {
	return fmt.Sprintf("%s\x00%d\x00plans", e.name, e.id)
}

// invalidate bumps the durable mutation counter persisted with base
// snapshots. Cache invalidation no longer depends on it — that is the
// estimation snapshot version's job — but the count still travels through
// the store so a restarted registry resumes it. Callers must hold e.mu
// exclusively (it marks a mutation of the synopsis).
func (e *Entry) invalidate() { e.ver.Add(1) }

// Registry manages named synopses under an aggregate memory budget.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*Entry
	budget  int // aggregate bytes across all synopses; 0 = unlimited
	// everBudgeted flips when a constraining plan is created (or a
	// constrained synopsis is restored); until then a zero budget plans
	// nothing, so budget-less registries pay no rebalance overhead.
	everBudgeted bool
	ids          atomic.Uint64

	cache *Cache

	// tenants resolves (tenant, name) keys to their owning Tenant. Never
	// nil: NewRegistry installs a disabled single-tenant set; the server
	// swaps in the real one (AttachTenants) before any entry is registered.
	tenants *TenantSet

	// estSem globally bounds the *extra* worker goroutines EstimateBatch
	// spawns for large miss sets: each batch always works on its own
	// request goroutine and adds helpers only while a slot is free, so K
	// concurrent large batches share one GOMAXPROCS-sized pool instead of
	// starting K×GOMAXPROCS CPU-bound goroutines.
	estSem chan struct{}

	// st, when attached, makes every registry mutation durable: new and
	// replaced synopses get a full base snapshot, while feedback, subtree
	// updates, and budget changes append O(delta) records to the synopsis's
	// log inside the same critical section that applied them in memory (so
	// the log order is the apply order). Nil means no persistence.
	st  *store.Store
	log *slog.Logger

	// obs holds the registry's metric families (see obsmetrics.go). Always
	// non-nil; built over obs.Disabled the handles are inert.
	obs *regMetrics

	// registerMu serializes Add/Put registrations end to end so the store's
	// base-write order for a name always matches the registry's map-update
	// order (two racing Puts of one name must not commit their manifests in
	// the opposite order of their map swaps).
	registerMu sync.Mutex

	// registerHook, when set, runs inside register's base-snapshot critical
	// section (new entry write-locked, registerMu held). Test-only: it is
	// how the contention tests stall a registration the way a slow fsync or
	// an in-flight compaction of the same name would.
	registerHook func(name string)

	// Budget rebalancing is asynchronous when the worker is running (see
	// StartRebalancer): registry-shape changes plan under r.mu — a cheap
	// snapshot of entry pointers and atomically-read kernel sizes — and the
	// worker applies SetBudget/AppendBudget per entry under only that
	// entry's lock. rebalGen stamps each plan (bumped under r.mu, so plans
	// are totally ordered by registry state); rebalApplied trails it and the
	// two together expose progress in /stats. pending is a one-plan
	// coalescing slot: a burst of shape changes overwrites it and the worker
	// applies only the newest plan. Without the worker (Restore during
	// recovery, bare registries in tests) plans apply synchronously on the
	// caller, preserving the old apply-before-return contract.
	rebalGen     atomic.Uint64
	rebalApplied atomic.Uint64
	rebalMu      sync.Mutex // guards the fields below; never held while applying
	rebalCond    *sync.Cond // signaled on new plan, plan applied, and close
	pending      *rebalPlan
	rebalOn      bool // worker goroutine is running
	rebalClosed  bool
	rebalWG      sync.WaitGroup
}

// rebalPlan is one planned redistribution of the aggregate budget: the
// per-entry targets computed from a snapshot of the registry's shape.
type rebalPlan struct {
	gen     uint64
	targets []rebalTarget
}

type rebalTarget struct {
	e      *Entry
	target int // total budget bytes for this entry's SetBudget
}

// NewRegistry returns a registry whose estimate cache holds cacheCapacity
// entries (<= 0 for the default) and whose synopses together target
// aggregateBudgetBytes of memory (0 = unlimited). Kernels are irreducible:
// when their sizes alone exceed the budget, hyper-edge tables are emptied
// but the kernels stay resident.
func NewRegistry(cacheCapacity, aggregateBudgetBytes int) *Registry {
	return NewRegistryObs(cacheCapacity, aggregateBudgetBytes, obs.Disabled)
}

// NewRegistryObs is NewRegistry with a metrics registry: estimate-stage
// latency, per-synopsis accuracy, cache, and rebalance families register on
// om and appear on its exposition. Pass obs.Disabled (what NewRegistry
// does) for a registry with instrumentation compiled in but inert — the
// overhead benchmark's baseline.
func NewRegistryObs(cacheCapacity, aggregateBudgetBytes int, om *obs.Registry) *Registry {
	r := &Registry{
		entries: make(map[string]*Entry),
		budget:  aggregateBudgetBytes,
		cache:   NewCache(cacheCapacity),
		log:     logx.Discard(),
		estSem:  make(chan struct{}, runtime.GOMAXPROCS(0)),
	}
	r.obs = newRegMetrics(om)
	r.obs.wire(r)
	r.tenants = noTenants()
	r.rebalCond = sync.NewCond(&r.rebalMu)
	return r
}

// AttachTenants installs the tenant set. Call before any entry is
// registered (the server does this before store recovery), so every entry
// resolves its tenant against the final set.
func (r *Registry) AttachTenants(ts *TenantSet) {
	if ts == nil {
		return
	}
	r.mu.Lock()
	r.tenants = ts
	r.mu.Unlock()
}

// Tenants returns the registry's tenant set.
func (r *Registry) Tenants() *TenantSet {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tenants
}

// StartRebalancer launches the background budget rebalancer. Before it runs
// — and again after Close — budget plans apply synchronously on the caller,
// which is what registry recovery (Restore) relies on. Idempotent.
func (r *Registry) StartRebalancer() {
	r.rebalMu.Lock()
	defer r.rebalMu.Unlock()
	if r.rebalOn || r.rebalClosed {
		return
	}
	r.rebalOn = true
	r.rebalWG.Add(1)
	go r.rebalanceWorker()
}

// Close drains the rebalancer: any pending budget plan is applied — and its
// budget deltas appended to the store — before Close returns, so a graceful
// shutdown can flush the store afterwards without losing planned budgets.
// The registry stays usable; later shape changes rebalance synchronously.
func (r *Registry) Close() {
	r.rebalMu.Lock()
	if !r.rebalClosed {
		r.rebalClosed = true
		r.rebalCond.Broadcast()
	}
	r.rebalMu.Unlock()
	r.rebalWG.Wait()
}

func (r *Registry) rebalanceWorker() {
	defer r.rebalWG.Done()
	for {
		r.rebalMu.Lock()
		for r.pending == nil && !r.rebalClosed {
			r.rebalCond.Wait()
		}
		p := r.pending
		r.pending = nil
		if p == nil {
			// Closed with nothing pending: flip rebalOn inside this critical
			// section so a dispatch that lost the race falls back to applying
			// synchronously instead of parking a plan nobody will pick up.
			r.rebalOn = false
			r.rebalMu.Unlock()
			return
		}
		r.rebalMu.Unlock()
		r.applyPlan(p)
	}
}

// planRebalanceLocked computes per-entry budget targets from the current
// registry shape: each synopsis keeps its kernel and gets an equal share of
// its budget domain's remaining bytes for its hyper-edge table (the paper's
// dynamic reconfiguration, applied fleet-wide). Budget domains partition
// the registry by tenant: a tenant with a private budget plans over its own
// synopses alone, and everyone else — including the whole registry on an
// untenanted server — pools under the fleet budget, so the untenanted plan
// is exactly the pre-tenancy one. A domain with no budget (unlimited)
// plans the lift target (-1) for entries a previous rebalance constrained;
// whether an entry was actually constrained is decided at apply time under
// its own lock (deciding here from lastBudget would race an in-flight
// constraining plan and could leave a synopsis pinned at a tight budget
// forever). Caller holds r.mu. Kernel sizes and tenant budgets come from
// atomic mirrors, so planning never blocks on an entry's critical section;
// they may be slightly stale, which is fine — a budget is a target, not an
// invariant.
func (r *Registry) planRebalanceLocked() *rebalPlan {
	if len(r.entries) == 0 {
		return nil
	}
	var fleet []*Entry
	var private map[*Tenant][]*Entry
	for _, e := range r.entries {
		if e.replica.Load() {
			// Standby replicas never plan or apply budgets locally: a budget
			// apply appends to the delta log, and a replica's log must stay
			// byte-identical to its primary's — the primary's own budget
			// records arrive through replication instead.
			continue
		}
		if e.ten != nil && e.ten.budget.Load() > 0 {
			if private == nil {
				private = make(map[*Tenant][]*Entry)
			}
			private[e.ten] = append(private[e.ten], e)
		} else {
			fleet = append(fleet, e)
		}
	}
	if r.budget > 0 || len(private) > 0 {
		r.everBudgeted = true
	}
	if !r.everBudgeted {
		return nil
	}
	targets := make([]rebalTarget, 0, len(r.entries))
	appendDomain := func(ents []*Entry, budget int) {
		if len(ents) == 0 {
			return
		}
		if budget <= 0 {
			for _, e := range ents {
				targets = append(targets, rebalTarget{e: e, target: -1})
			}
			return
		}
		kernels := 0
		start := len(targets)
		for _, e := range ents {
			k := int(e.kernBytes.Load())
			targets = append(targets, rebalTarget{e: e, target: k})
			kernels += k
		}
		share := (budget - kernels) / len(ents)
		if share < 0 {
			share = 0
		}
		for i := start; i < len(targets); i++ {
			targets[i].target += share
		}
	}
	appendDomain(fleet, r.budget)
	for t, ents := range private {
		appendDomain(ents, int(t.budget.Load()))
	}
	return &rebalPlan{gen: r.rebalGen.Add(1), targets: targets}
}

// dispatch hands a plan to the worker (coalescing: a newer plan overwrites
// an unapplied older one — never the reverse, since planning under r.mu and
// dispatching here are separate steps and two shape changes can reach this
// point out of order) or, with no worker running, applies it inline.
// Callers must not hold r.mu.
func (r *Registry) dispatch(p *rebalPlan) {
	if p == nil {
		return
	}
	r.rebalMu.Lock()
	if r.rebalOn {
		if r.pending == nil || p.gen > r.pending.gen {
			r.pending = p
		}
		r.rebalCond.Broadcast()
		r.rebalMu.Unlock()
		return
	}
	r.rebalMu.Unlock()
	r.applyPlan(p)
}

// applyPlan applies one plan's SetBudget targets, taking only each entry's
// lock in turn — never r.mu, so a slow entry critical section (a base
// snapshot fsync, a stuck feedback) never touches the serving path. A first
// pass TryLocks, so a wedged entry delays only its own budget, not the rest
// of the plan's; the second pass waits the stragglers out, still yielding
// to a superseding plan (whose targets are fresher for every entry).
// Entries that retired since planning are skipped. Budget deltas append
// inside the entry critical section, so replay order still equals apply
// order.
func (r *Registry) applyPlan(p *rebalPlan) {
	r.mu.RLock()
	st, lg := r.st, r.log
	r.mu.RUnlock()
	var busy []rebalTarget
	superseded := func() bool { return r.rebalGen.Load() > p.gen }
	for _, t := range p.targets {
		if superseded() {
			busy = nil
			break
		}
		if !r.applyTarget(st, lg, p, t, false) {
			busy = append(busy, t)
		}
	}
	for _, t := range busy {
		if superseded() {
			break
		}
		r.applyTarget(st, lg, p, t, true)
	}
	// Advance the applied generation (a superseded plan counts as applied:
	// its successor covers every entry) and wake drain waiters.
	for {
		cur := r.rebalApplied.Load()
		if cur >= p.gen || r.rebalApplied.CompareAndSwap(cur, p.gen) {
			break
		}
	}
	r.rebalMu.Lock()
	r.rebalCond.Broadcast()
	r.rebalMu.Unlock()
}

// applyTarget applies one entry's budget target. With block unset it only
// tries the entry lock, reporting false when the entry is busy; with block
// set it waits, polling so a plan superseded mid-wait aborts instead of
// pinning the worker to a stalled entry.
func (r *Registry) applyTarget(st *store.Store, lg *slog.Logger, p *rebalPlan, t rebalTarget, block bool) bool {
	e := t.e
	if e.retired.Load() {
		return true
	}
	if !e.mu.TryLock() {
		if !block {
			return false
		}
		for !e.mu.TryLock() {
			if r.rebalGen.Load() > p.gen {
				return true
			}
			time.Sleep(time.Millisecond)
		}
	}
	defer e.mu.Unlock()
	if e.retired.Load() || e.budgetGen > p.gen {
		return true
	}
	e.budgetGen = p.gen
	if t.target < 0 && e.lastBudget == 0 {
		// Lift target on an entry no fleet rebalance ever constrained: keep
		// its build-time budget. Read under e.mu, so it cannot race the
		// constraining write it exists to observe.
		return true
	}
	if t.target != e.lastBudget {
		e.lastBudget = t.target
		e.syn.SetBudget(t.target)
		if e.syn.HasHET() {
			// Admitting or evicting HET entries changes estimates; an
			// unchanged target is skipped entirely so membership churn
			// doesn't flush warm caches for nothing.
			e.invalidate()
		}
		if st != nil && !e.retired.Load() {
			if err := st.AppendBudget(e.name, t.target); err != nil {
				lg.Error("persist budget failed",
					"synopsis", e.name, "targetBytes", t.target, "gen", p.gen, "err", err)
			}
		}
	}
	return true
}

// waitRebalanced blocks until every budget plan created so far has been
// applied (or superseded by an applied successor). Tests use it to observe
// the eventually-applied budget state deterministically.
func (r *Registry) waitRebalanced() {
	target := r.rebalGen.Load()
	r.rebalMu.Lock()
	defer r.rebalMu.Unlock()
	for r.rebalApplied.Load() < target {
		r.rebalCond.Wait()
	}
}

// RebalanceStats snapshots rebalance progress (the /v1/stats "rebalance"
// payload): Gen is the newest plan, AppliedGen the newest applied one;
// Pending > 0 means targets are still in flight to some entries.
func (r *Registry) RebalanceStats() api.RebalanceStats {
	r.rebalMu.Lock()
	on := r.rebalOn
	r.rebalMu.Unlock()
	gen := r.rebalGen.Load()
	applied := r.rebalApplied.Load()
	st := api.RebalanceStats{Async: on, Gen: gen, AppliedGen: applied}
	if gen > applied {
		st.Pending = gen - applied
	}
	return st
}

// AttachStore makes subsequent mutations durable. Attach after Restore-ing
// recovered synopses so recovery itself is not re-persisted.
func (r *Registry) AttachStore(st *store.Store, lg *slog.Logger) {
	r.mu.Lock()
	r.st = st
	if lg != nil {
		r.log = lg
	}
	r.mu.Unlock()
}

// Store returns the attached store (nil when the registry is ephemeral).
func (r *Registry) Store() *store.Store {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.st
}

// Restore registers a synopsis recovered from the store without writing a
// new base snapshot. The cache-scope version resumes from the persisted
// counter — today that is belt-and-braces (the estimate cache and the scope's
// entry id are both per-process, so no pre-crash scope can be presented) and
// doubles as a durable mutation count; it becomes load-bearing if the cache
// ever moves out of process. Recovery runs before StartRebalancer, so the
// rebalance each Restore triggers applies synchronously: when the last
// synopsis is restored, every budget matches what a fresh plan over the full
// registry would assign, with no worker racing the replay.
func (r *Registry) Restore(l store.Loaded) (*Entry, error) {
	if l.Name == "" {
		return nil, fmt.Errorf("synopsis name must be non-empty")
	}
	r.mu.Lock()
	if _, ok := r.entries[l.Name]; ok {
		r.mu.Unlock()
		return nil, fmt.Errorf("synopsis %q %w", seriesFor(l.Name), ErrExists)
	}
	e := r.newEntry(l.Name, l.Syn, l.Source)
	if !l.Created.IsZero() {
		e.created = l.Created
	}
	e.ver.Store(l.Ver)
	e.lastBudget = l.Budget
	if l.Budget != 0 {
		r.everBudgeted = true
	}
	r.entries[l.Name] = e
	p := r.planRebalanceLocked()
	r.mu.Unlock()
	r.dispatch(p)
	return e, nil
}

// Add registers a synopsis under name. It fails if the name is taken.
func (r *Registry) Add(name string, syn *xseed.Synopsis, source string) (*Entry, error) {
	return r.register(name, syn, source, false)
}

// register is the shared Add/Put path. It reserves the name under the
// registry lock but writes the base snapshot — a full serialize + fsync,
// which can also wait out an in-flight compaction of the same name — while
// holding only the entry's write lock (plus registerMu against other
// registrations), so estimate and feedback traffic to other synopses does
// not queue behind one synopsis's base write.
func (r *Registry) register(name string, syn *xseed.Synopsis, source string, replace bool) (*Entry, error) {
	if name == "" {
		return nil, fmt.Errorf("synopsis name must be non-empty")
	}
	r.registerMu.Lock()
	defer r.registerMu.Unlock()

	r.mu.Lock()
	old, exists := r.entries[name]
	if exists && !replace {
		r.mu.Unlock()
		return nil, fmt.Errorf("synopsis %q %w", seriesFor(name), ErrExists)
	}
	e := r.newEntry(name, syn, source)
	st := r.st
	// Reserve the name with the entry write-locked: concurrent estimates and
	// mutations of it queue until the base snapshot is on disk, so no delta
	// can be appended to a log that does not exist yet. The replaced entry is
	// retired in the same critical section, so any mutation that captured it
	// earlier skips persistence once it runs.
	e.mu.Lock()
	if exists {
		old.retired.Store(true)
	}
	r.entries[name] = e
	r.mu.Unlock()

	if exists {
		// Drain: a mutation already inside the old entry's critical section
		// (it saw retired == false) may still be appending to the old
		// generation's log. Wait it out before SaveBase truncates the log
		// for the new generation, so its record dies with the old base
		// instead of leaking into the new one.
		old.mu.Lock()
		//lint:ignore SA2001 empty critical section is the drain
		old.mu.Unlock()
	}

	if r.registerHook != nil {
		r.registerHook(name)
	}
	var saveErr error
	if st != nil {
		if err := st.SaveBase(name, syn, source, e.created, e.lastBudget, e.ver.Load()); err != nil {
			saveErr = fmt.Errorf("persist synopsis %q: %w", name, err)
		}
	}
	e.mu.Unlock()

	r.mu.Lock()
	if saveErr != nil {
		// Unwind the reservation (Delete is excluded by registerMu, so it is
		// still ours). A failed replacement reinstates the old entry rather
		// than leaving the name serving nothing: the store still holds the
		// old generation, so live and disk reconverge. Any feedback the old
		// entry absorbed while retired skipped persistence — the same
		// "applied but not persisted" outcome its caller was already told
		// about.
		e.retired.Store(true)
		if exists {
			old.retired.Store(false)
			r.entries[name] = old
		} else {
			delete(r.entries, name)
		}
		// Replan over the unwound membership: a plan created during the
		// register window computed its shares against the doomed entry, and
		// the worker will skip that entry as retired — without a fresh plan
		// the reinstated synopsis would keep a stale budget while /stats
		// reported the rebalance settled.
		p := r.planRebalanceLocked()
		r.mu.Unlock()
		r.dispatch(p)
		return nil, saveErr
	}
	p := r.planRebalanceLocked()
	r.mu.Unlock()
	r.dispatch(p)
	return e, nil
}

// Put registers or replaces the synopsis under name. The replacement gets a
// fresh cache scope, so estimates cached against the old synopsis — even by
// requests still in flight — are unreachable afterwards.
func (r *Registry) Put(name string, syn *xseed.Synopsis, source string) (*Entry, error) {
	return r.register(name, syn, source, true)
}

func (r *Registry) newEntry(name string, syn *xseed.Synopsis, source string) *Entry {
	_, bare := store.SplitKey(name)
	e := &Entry{
		name:    name,
		bare:    bare,
		ten:     r.tenants.forKey(name),
		id:      r.ids.Add(1),
		source:  source,
		created: time.Now(),
		syn:     syn,
		acc:     &metrics.Online{},
	}
	e.stages, e.qerr = r.obs.entry(seriesFor(name))
	e.kernBytes.Store(int64(syn.KernelSizeBytes()))
	return e
}

// Get returns the entry for name.
func (r *Registry) Get(name string) (*Entry, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	e, ok := r.entries[name]
	if !ok {
		return nil, fmt.Errorf("synopsis %q %w", seriesFor(name), ErrNotFound)
	}
	return e, nil
}

// Keys returns every registered qualified key, sorted. Admin surface: the
// compact route enumerates the fleet across tenants with it.
func (r *Registry) Keys() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.entries))
	for k := range r.entries {
		out = append(out, k)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// PrimaryKeys returns the qualified keys this registry serves as primary
// (every key on an unclustered server), sorted. The cluster layer
// replicates exactly these.
func (r *Registry) PrimaryKeys() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.entries))
	for k, e := range r.entries {
		if !e.replica.Load() {
			out = append(out, k)
		}
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// AdoptReplica hosts a shipped base snapshot as a warm standby entry,
// replacing any previous generation of the name. Unlike Restore it allows
// replacement (a re-shipped base supersedes the old replica) and unlike
// Put it writes nothing to the store — the caller (store.ImportBase)
// already made the shipped generation durable.
func (r *Registry) AdoptReplica(l store.Loaded) (*Entry, error) {
	if l.Name == "" {
		return nil, fmt.Errorf("synopsis name must be non-empty")
	}
	r.registerMu.Lock()
	defer r.registerMu.Unlock()
	r.mu.Lock()
	old, exists := r.entries[l.Name]
	e := r.newEntry(l.Name, l.Syn, l.Source)
	if !l.Created.IsZero() {
		e.created = l.Created
	}
	e.ver.Store(l.Ver)
	e.lastBudget = l.Budget
	if l.Budget != 0 {
		r.everBudgeted = true
	}
	e.replica.Store(true)
	if exists {
		old.retired.Store(true)
	}
	r.entries[l.Name] = e
	p := r.planRebalanceLocked()
	r.mu.Unlock()
	if exists {
		// Drain any mutation still inside the old entry's critical section
		// (same reasoning as register's replacement path).
		old.mu.Lock()
		//lint:ignore SA2001 empty critical section is the drain
		old.mu.Unlock()
	}
	r.dispatch(p)
	return e, nil
}

// Delete removes the synopsis. Its cached estimates become unreachable
// (the scope dies with the entry's id) and age out of the LRU, and its
// persisted state is removed from the store. It takes registerMu so a
// concurrent re-Add of the same name cannot write its new generation
// between our map removal and our store removal — st.Remove would then wipe
// the new registration's persistence while it stays live.
func (r *Registry) Delete(name string) error {
	r.registerMu.Lock()
	defer r.registerMu.Unlock()
	r.mu.Lock()
	e, ok := r.entries[name]
	st := r.st
	var p *rebalPlan
	if ok {
		e.retired.Store(true)
		delete(r.entries, name)
		p = r.planRebalanceLocked()
	}
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("synopsis %q %w", seriesFor(name), ErrNotFound)
	}
	r.obs.deleteEntry(seriesFor(name))
	r.dispatch(p)
	if st != nil {
		if err := st.Remove(name); err != nil {
			return fmt.Errorf("synopsis removed but store cleanup failed: %w", err)
		}
	}
	return nil
}

// SetAggregateBudget changes the fleet-wide budget and rebalances. With the
// background rebalancer running it returns as soon as the plan is computed;
// the per-synopsis budgets are applied eventually (watch /stats).
func (r *Registry) SetAggregateBudget(bytes int) {
	r.mu.Lock()
	r.budget = bytes
	p := r.planRebalanceLocked()
	r.mu.Unlock()
	r.dispatch(p)
}

// SetTenantBudget changes one tenant's private budget (0 = rejoin the
// fleet-wide budget) and rebalances its domain.
func (r *Registry) SetTenantBudget(t *Tenant, bytes int) {
	t.budget.Store(int64(bytes))
	r.mu.Lock()
	p := r.planRebalanceLocked()
	r.mu.Unlock()
	r.dispatch(p)
}

// Replan recomputes budget targets over the current registry shape. The
// cluster manager calls it after promotions and demotions: role flips move
// entries in and out of the budget domains without changing the map.
func (r *Registry) Replan() {
	r.mu.Lock()
	p := r.planRebalanceLocked()
	r.mu.Unlock()
	r.dispatch(p)
}

// Estimate estimates a single query against the named synopsis, consulting
// the cache first. streaming selects the single-pass bounded-memory matcher
// with fallback to the standard matcher.
func (r *Registry) Estimate(ctx context.Context, name, query string, streaming bool) (api.EstimateItem, error) {
	items, err := r.EstimateBatch(ctx, name, []string{query}, streaming)
	if err != nil {
		return api.EstimateItem{}, err
	}
	return items[0], nil
}

// minParallelMisses is the batch-miss count below which EstimateBatch stays
// on the caller's goroutine: per-estimate cost is microseconds, so tiny
// batches would pay more in goroutine handoff than they win in parallelism.
const minParallelMisses = 8

// EstimateBatch estimates queries in order against the named synopsis. The
// estimate path is lock-free after the entry lookup: the batch pins the
// synopsis's immutable estimation snapshot, resolves every query through
// the compiled-plan cache (repeat queries skip parse + compile entirely),
// answers what it can from the estimate cache, and computes the remaining
// misses against the pinned snapshot — fanning out across a bounded worker
// pool (GOMAXPROCS slots shared registry-wide) when the batch is large.
// Results are
// cached under a scope tagged with the snapshot's version, so a concurrent
// mutation retires them wholesale by publishing the next version and no
// stale value can cross into the new scope. Per-query parse errors are
// reported in the item — typed, with the parse offset in the error detail —
// not as a batch error (partial-success semantics, documented in
// xseed/api). Cancelling ctx aborts the batch between per-query estimates
// and fails the whole call with the context's error.
func (r *Registry) EstimateBatch(ctx context.Context, name string, queries []string, streaming bool) ([]api.EstimateItem, error) {
	e, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sn := e.syn.Snapshot()
	scope := e.scopeFor(sn)
	planScope := e.planScope()
	items := make([]api.EstimateItem, len(queries))
	type miss struct {
		plan    *xseed.Plan
		key     string
		indices []int // item positions sharing this normalized query
	}
	var order []*miss // misses in first-seen order
	misses := make(map[string]*miss)
	// The span accumulates each query's stage nanoseconds and flushes once
	// per query; it is pooled and nil when instrumentation is disabled, so
	// this loop allocates nothing for it and, disabled, reads no clocks.
	sp := e.stages.Span()
	defer sp.End()
	for i, raw := range queries {
		sp.Reset()
		pl, ok := r.cache.GetPlan(planScope, raw, sn)
		sp.Mark(obs.StageCacheProbe)
		if !ok {
			start := time.Now()
			q, err := xseed.ParseQuery(raw)
			if err != nil {
				sp.Mark(obs.StageParse)
				sp.Flush()
				items[i] = api.EstimateItem{Query: raw, Error: api.WrapError(err, api.CodeBadRequest)}
				continue
			}
			sp.Mark(obs.StageParse)
			pl = sn.Compile(q)
			sp.Mark(obs.StageCompile)
			r.cache.PutPlan(planScope, raw, pl, time.Since(start).Nanoseconds(), e.ten)
			sp.Mark(obs.StageCacheProbe)
		}
		// The cache key is the normalized (parsed, re-rendered) query, so
		// spelling variants of one query share an entry. Streaming-mode
		// results are keyed separately: the single-pass matcher can produce
		// slightly different values than the standard one, and a cached
		// answer must come from the matcher the caller asked for.
		norm := pl.String()
		items[i].Query = norm
		key := norm
		if streaming {
			key = "stream\x00" + norm
		}
		if m, ok := misses[key]; ok { // duplicate within the batch
			m.indices = append(m.indices, i)
			sp.Flush()
			continue
		}
		if v, ok := r.cache.Get(scope, key, e.ten); ok {
			items[i].Estimate, items[i].Streamed, items[i].Cached = v.Est, v.Streamed, true
			sp.Mark(obs.StageCacheProbe)
			sp.Flush()
			continue
		}
		sp.Mark(obs.StageCacheProbe)
		m := &miss{plan: pl, key: key, indices: []int{i}}
		misses[key] = m
		order = append(order, m)
		sp.Flush()
	}
	if len(order) == 0 {
		return items, nil
	}
	// Materialize the snapshot's EPT before timing anything: it is built
	// once per snapshot (singleflight) and shared by every query, so letting
	// the first miss pay for it inside its timed window would crown an
	// arbitrary query as the shard's most expensive entry and credit the
	// whole construction to costSavedNs on every later hit.
	sn.EPTStats()
	// Compute the misses against the pinned snapshot. Every miss writes
	// disjoint item slots, so workers need no coordination beyond the work
	// index; the cache fill is safe at any time because the scope embeds the
	// pinned snapshot's version (see scopeFor).
	run := func(m *miss) {
		start := time.Now()
		var v EstimateResult
		if streaming {
			v.Est, v.Streamed = m.plan.RunStreaming(sn)
		} else {
			v.Est = m.plan.Run(sn)
		}
		v.CostNs = time.Since(start).Nanoseconds()
		// The plan-run stage reuses the CostNs measurement the cache needs
		// anyway — the stage breakdown adds zero clock reads here, and
		// workers observe wait-free from any goroutine.
		e.stages.Observe(obs.StagePlanRun, v.CostNs)
		for _, i := range m.indices {
			items[i].Estimate, items[i].Streamed = v.Est, v.Streamed
		}
		r.cache.Put(scope, m.key, v, e.ten)
	}
	if len(order) >= minParallelMisses {
		var next atomic.Int64
		process := func() {
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= len(order) {
					return
				}
				run(order[i])
			}
		}
		// Helpers are best-effort: each needs a free slot from the
		// registry-wide semaphore, so total extra workers across all
		// concurrent batches never exceed GOMAXPROCS. The request's own
		// goroutine always processes regardless, so a busy pool degrades to
		// the serial path rather than queueing.
		var wg sync.WaitGroup
		maxHelpers := min(runtime.GOMAXPROCS(0)-1, len(order)-1)
	spawn:
		for w := 0; w < maxHelpers; w++ {
			select {
			case r.estSem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-r.estSem }()
					process()
				}()
			default:
				break spawn
			}
		}
		process()
		wg.Wait()
	} else {
		for _, m := range order {
			if ctx.Err() != nil {
				break
			}
			run(m)
		}
	}
	// The read path honors cancellation between per-query estimates: a
	// caller that gave up (or a server whose client went away) stops
	// consuming CPU after in-flight queries instead of finishing the batch
	// into the void, and the whole call reports the context's error.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.estimates.Add(int64(len(order)))
	return items, nil
}

// Feedback records an executed query's actual cardinality into the named
// synopsis (self-tuning) and the entry's accuracy accumulator; the applied
// mutation publishes a successor estimation snapshot, retiring the
// synopsis's cached estimates. Parse failures are typed *api.Error values
// with the parse offset in the detail — the same api.WrapError path
// EstimateBatch reports per-query errors through, so a Registry caller (or
// the HTTP layer) sees one error shape regardless of endpoint.
func (r *Registry) Feedback(name, query string, actual float64) error {
	e, err := r.Get(name)
	if err != nil {
		return err
	}
	q, err := xseed.ParseQuery(query)
	if err != nil {
		return api.WrapError(err, api.CodeBadRequest)
	}
	if !e.syn.HasHET() {
		// Kernel-only: feedback cannot change the synopsis, so record the
		// accuracy observation against the current snapshot — lock-free,
		// like any estimate — and keep the cache warm.
		est := e.syn.Snapshot().EstimateQuery(q)
		e.acc.Add(est, actual)
		qv := qerrValue(est, actual)
		e.qerr.Observe(qv)
		e.ten.qerr.Observe(qv)
		e.feedbacks.Add(1)
		return nil
	}
	r.mu.RLock()
	st := r.st
	r.mu.RUnlock()
	op := &fbOp{q: q, actual: actual, done: make(chan struct{})}
	r.runFeedback(e, st, []*fbOp{op})
	e.acc.Add(op.est, actual)
	qv := qerrValue(op.est, actual)
	e.qerr.Observe(qv)
	e.ten.qerr.Observe(qv)
	e.feedbacks.Add(1)
	if op.err != nil {
		return op.err
	}
	return nil
}

// fbOp is one feedback observation moving through an entry's coalescing
// queue. The publisher fills est/applied/pend/err before closing done; the
// originating goroutine then waits on pend (durability) outside every lock.
type fbOp struct {
	q      *xseed.Query
	actual float64

	est     float64
	applied bool
	pend    *store.Pending // group-commit handle; nil = nothing to persist
	err     *api.Error     // persist failure, typed for the wire
	done    chan struct{}
}

// runFeedback pushes ops through e's coalescing queue and returns once
// every op is applied AND durable. ops must be non-empty; they are enqueued
// contiguously, so one drain round processes them all.
func (r *Registry) runFeedback(e *Entry, st *store.Store, ops []*fbOp) {
	e.fbMu.Lock()
	e.fbQueue = append(e.fbQueue, ops...)
	publisher := !e.fbActive
	if publisher {
		e.fbActive = true
	}
	e.fbMu.Unlock()
	if publisher {
		r.drainFeedback(e, st)
	} else {
		<-ops[len(ops)-1].done // contiguous: last done ⇒ all done
	}
	// Durability wait happens out here, after e.mu is released: blocking the
	// entry's critical section for a group-commit window would cap a hot
	// synopsis at 1/BatchLatency events per second.
	for _, op := range ops {
		if op.pend == nil {
			continue
		}
		if werr := op.pend.Wait(); werr != nil && op.err == nil {
			op.err = api.WrapError(fmt.Errorf("feedback applied but not persisted: %w", werr), api.CodeInternal)
		}
	}
}

// drainFeedback is the publisher side of the coalescing queue: under the
// entry lock it repeatedly takes the whole queue, applies every delta with
// publication deferred, enqueues each applied delta's log record inside the
// same critical section (log order = apply order — replicated standbys
// depend on it), and publishes one successor snapshot per round.
func (r *Registry) drainFeedback(e *Entry, st *store.Store) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		e.fbMu.Lock()
		batch := e.fbQueue
		e.fbQueue = nil
		if len(batch) == 0 {
			e.fbActive = false
			e.fbMu.Unlock()
			return
		}
		e.fbMu.Unlock()
		applied := 0
		for _, op := range batch {
			var delta xseed.HETDelta
			op.est, delta, op.applied = e.syn.FeedbackQueryDeltaDeferred(op.q, op.actual)
			if !op.applied {
				continue
			}
			applied++
			e.invalidate()
			if st != nil && !e.retired.Load() {
				// A retired entry (replaced or deleted while this op was in
				// flight) skips the append — the log belongs to its successor.
				if p, perr := st.AppendFeedbackEnq(e.name, delta); perr != nil {
					op.err = api.WrapError(perr, api.CodeInternal)
				} else {
					op.pend = p
				}
			}
		}
		if applied > 0 {
			e.syn.Publish()
			r.obs.fbApplied.Add(uint64(applied))
			r.obs.fbPublishes.Inc()
		}
		for _, op := range batch {
			close(op.done)
		}
	}
}

// FeedbackBatch records a batch of observations against one synopsis with
// partial-success semantics: one *api.Error slot per item in request order
// (nil = absorbed, and durable to the store's configured discipline), plus
// a whole-call error when the synopsis itself is unavailable. The batch
// coalesces into at most one snapshot publication and rides one
// group-commit flush, which is what makes bulk feedback cheap.
func (r *Registry) FeedbackBatch(name string, items []api.FeedbackItem) ([]*api.Error, error) {
	e, err := r.Get(name)
	if err != nil {
		return nil, err
	}
	out := make([]*api.Error, len(items))
	if !e.syn.HasHET() {
		// Kernel-only: feedback cannot change the synopsis; record accuracy
		// observations lock-free against the current snapshot.
		sn := e.syn.Snapshot()
		for i, it := range items {
			q, perr := xseed.ParseQuery(it.Query)
			if perr != nil {
				out[i] = api.WrapError(perr, api.CodeBadRequest)
				continue
			}
			est := sn.EstimateQuery(q)
			e.acc.Add(est, it.Actual)
			qv := qerrValue(est, it.Actual)
			e.qerr.Observe(qv)
			e.ten.qerr.Observe(qv)
			e.feedbacks.Add(1)
		}
		return out, nil
	}
	r.mu.RLock()
	st := r.st
	r.mu.RUnlock()
	ops := make([]*fbOp, 0, len(items))
	idx := make([]int, 0, len(items))
	for i, it := range items {
		q, perr := xseed.ParseQuery(it.Query)
		if perr != nil {
			out[i] = api.WrapError(perr, api.CodeBadRequest)
			continue
		}
		ops = append(ops, &fbOp{q: q, actual: it.Actual, done: make(chan struct{})})
		idx = append(idx, i)
	}
	if len(ops) == 0 {
		return out, nil
	}
	r.runFeedback(e, st, ops)
	for j, op := range ops {
		i := idx[j]
		e.acc.Add(op.est, items[i].Actual)
		qv := qerrValue(op.est, items[i].Actual)
		e.qerr.Observe(qv)
		e.ten.qerr.Observe(qv)
		e.feedbacks.Add(1)
		out[i] = op.err
	}
	return out, nil
}

// AddSubtree incrementally maintains the named synopsis after an insertion
// and drops its cached estimates.
func (r *Registry) AddSubtree(name string, contextPath []string, xml string) error {
	return r.updateSubtree(name, contextPath, xml, true)
}

// RemoveSubtree incrementally maintains the named synopsis after a deletion
// and drops its cached estimates.
func (r *Registry) RemoveSubtree(name string, contextPath []string, xml string) error {
	return r.updateSubtree(name, contextPath, xml, false)
}

func (r *Registry) updateSubtree(name string, contextPath []string, xml string, add bool) error {
	e, err := r.Get(name)
	if err != nil {
		return err
	}
	r.mu.RLock()
	st := r.st
	r.mu.RUnlock()
	var persistErr error
	e.mu.Lock()
	if add {
		err = e.syn.AddSubtree(contextPath, xml)
	} else {
		err = e.syn.RemoveSubtree(contextPath, xml)
	}
	if err == nil {
		e.invalidate()
		e.kernBytes.Store(int64(e.syn.KernelSizeBytes()))
		if st != nil && !e.retired.Load() {
			persistErr = st.AppendSubtree(name, add, contextPath, xml)
		}
	}
	e.mu.Unlock()
	if err != nil {
		// Same typed-error path as estimate and feedback failures: XML (or
		// context-path) rejections surface as *api.Error bad_request.
		return api.WrapError(err, api.CodeBadRequest)
	}
	e.updates.Add(1)
	if persistErr != nil {
		return fmt.Errorf("subtree update applied but not persisted: %w", persistErr)
	}
	return nil
}

// Info snapshots one entry's stats as the served wire type.
func (e *Entry) Info() api.SynopsisInfo {
	e.mu.RLock()
	kern := e.syn.KernelSizeBytes()
	het := e.syn.HETSizeBytes()
	total := e.syn.SizeBytes()
	resident, all := e.syn.HETEntries()
	e.mu.RUnlock()
	acc := e.acc.Snapshot()
	return api.SynopsisInfo{
		Name:           e.bare,
		Source:         e.source,
		Created:        e.created,
		KernelBytes:    kern,
		HETBytes:       het,
		TotalBytes:     total,
		HETResident:    resident,
		HETTotal:       all,
		Estimates:      e.estimates.Load(),
		Feedbacks:      e.feedbacks.Load(),
		SubtreeUpdates: e.updates.Load(),
		Accuracy: api.AccuracyStats{
			N:          acc.N,
			RMSE:       acc.RMSE,
			NRMSE:      acc.NRMSE,
			R2:         acc.R2,
			MeanActual: acc.MeanActual,
			// Quantiles read the same online histogram /metrics exposes as
			// xseed_qerror{synopsis}, so the two views agree by construction
			// (zero with instrumentation disabled or before any feedback).
			QErrorP50: e.qerr.Quantile(0.50),
			QErrorP90: e.qerr.Quantile(0.90),
			QErrorP99: e.qerr.Quantile(0.99),
		},
	}
}

// List returns info for every synopsis the default tenant owns, sorted by
// name (the untenanted view; see ListFor).
func (r *Registry) List() []api.SynopsisInfo {
	return r.ListFor(nil)
}

// ListFor returns info for every synopsis t owns, sorted by name. A nil t
// means the default tenant.
func (r *Registry) ListFor(t *Tenant) []api.SynopsisInfo {
	r.mu.RLock()
	if t == nil {
		t = r.tenants.def
	}
	entries := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		// Replicas are invisible to clients: they serve no traffic here, and
		// hiding them keeps a cluster-wide list merge duplicate-free (each
		// synopsis appears only in its owner's listing).
		if e.ten == t && !e.replica.Load() {
			entries = append(entries, e)
		}
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].bare < entries[j].bare })
	out := make([]api.SynopsisInfo, len(entries))
	for i, e := range entries {
		out[i] = e.Info()
	}
	return out
}

// Stats snapshots the registry as the /v1/stats wire payload from the
// default tenant's perspective (the untenanted view; see StatsFor).
func (r *Registry) Stats() api.Stats {
	return r.StatsFor(nil)
}

// StatsFor snapshots the registry as the /v1/stats payload scoped to t (nil
// = default): its synopses, its effective budget, and — when tenancy is on
// and t is the admin (default) tenant — the fleet-wide per-tenant rollups.
// A non-default tenant's Cache block covers only its own lookups and
// occupancy; the default tenant sees the whole cache, byte-identical to the
// untenanted payload.
func (r *Registry) StatsFor(t *Tenant) api.Stats {
	r.mu.RLock()
	ts := r.tenants
	budget := r.budget
	st := r.st
	r.mu.RUnlock()
	if t == nil {
		t = ts.def
	}
	infos := r.ListFor(t)
	total := 0
	for _, in := range infos {
		total += in.TotalBytes
	}
	out := api.Stats{
		Synopses:        infos,
		TotalBytes:      total,
		AggregateBudget: budget,
		Rebalance:       r.RebalanceStats(),
		Cache:           r.cache.Stats(),
	}
	if tb := int(t.budget.Load()); tb > 0 {
		out.AggregateBudget = tb
	}
	if t != ts.def {
		hits, misses := t.hits.load(), t.misses.load()
		out.Cache = api.CacheStats{
			Entries: r.cache.TenantEntries(t),
			Hits:    hits,
			Misses:  misses,
		}
		if tot := hits + misses; tot > 0 {
			out.Cache.HitRate = float64(hits) / float64(tot)
		}
	}
	if st != nil {
		ss := storeStatsAPI(st.Stats(), ts, t)
		out.Store = &ss
	}
	if ts.enabled && t == ts.def {
		out.Tenants = r.tenantRollups(ts)
	}
	return out
}

// tenantRollups builds the admin's fleet-wide per-tenant summary.
func (r *Registry) tenantRollups(ts *TenantSet) []api.TenantStats {
	type agg struct {
		n     int
		bytes int
	}
	perTen := make(map[*Tenant]agg)
	r.mu.RLock()
	entries := make([]*Entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	for _, e := range entries {
		e.mu.RLock()
		sz := e.syn.SizeBytes()
		e.mu.RUnlock()
		a := perTen[e.ten]
		a.n++
		a.bytes += sz
		perTen[e.ten] = a
	}
	tens := ts.all()
	out := make([]api.TenantStats, 0, len(tens))
	for _, t := range tens {
		a := perTen[t]
		hits, misses := t.hits.load(), t.misses.load()
		s := api.TenantStats{
			ID:          t.id,
			Synopses:    a.n,
			TotalBytes:  a.bytes,
			BudgetBytes: int(t.budget.Load()),
			CacheQuota:  t.cacheQuota,
			CacheHits:   hits,
			CacheMisses: misses,
			RateLimited: t.rateLimited.Load(),
			QErrorP50:   t.qerr.Quantile(0.50),
			QErrorP90:   t.qerr.Quantile(0.90),
			QErrorP99:   t.qerr.Quantile(0.99),
		}
		if tot := hits + misses; tot > 0 {
			s.CacheHitRate = float64(hits) / float64(tot)
		}
		out = append(out, s)
	}
	return out
}
