package server

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"xseed"
	"xseed/internal/fixtures"
)

func buildFixtureSynopsis(t testing.TB, cfg *xseed.Config) (*xseed.Document, *xseed.Synopsis) {
	t.Helper()
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return doc, syn
}

func TestRegistryAddGetDelete(t *testing.T) {
	_, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(0, 0)
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("fig2", syn, "test"); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	if _, err := r.Get("fig2"); err != nil {
		t.Fatal(err)
	}
	infos := r.List()
	if len(infos) != 1 || infos[0].Name != "fig2" || infos[0].KernelBytes <= 0 {
		t.Fatalf("List = %+v", infos)
	}
	if err := r.Delete("fig2"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("fig2"); err == nil {
		t.Fatal("second Delete succeeded")
	}
	if _, err := r.Get("fig2"); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
}

func TestRegistryEstimateCaching(t *testing.T) {
	doc, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(0, 0)
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	const q = "/a/c/s"
	first, err := r.Estimate(context.Background(), "fig2", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first estimate was served from an empty cache")
	}
	actual, _ := doc.Count(q)
	if first.Estimate <= 0 {
		t.Fatalf("estimate %v for %s (actual %d)", first.Estimate, q, actual)
	}
	second, err := r.Estimate(context.Background(), "fig2", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.Estimate != first.Estimate {
		t.Fatalf("second = %+v, want cached repeat of %v", second, first.Estimate)
	}
	// A spelling variant normalizes to the same key.
	variant, err := r.Estimate(context.Background(), "fig2", "/a/c/s", false)
	if err != nil {
		t.Fatal(err)
	}
	if !variant.Cached {
		t.Fatalf("normalized variant missed the cache: %+v", variant)
	}
	// Streaming mode is keyed separately and reports its matcher.
	stream, err := r.Estimate(context.Background(), "fig2", q, true)
	if err != nil {
		t.Fatal(err)
	}
	if stream.Cached {
		t.Fatal("streaming estimate hit the standard-matcher cache entry")
	}
}

func TestRegistryPutReplacesCacheGeneration(t *testing.T) {
	_, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(0, 0)
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Estimate(context.Background(), "fig2", "/a/u", false); err != nil {
		t.Fatal(err)
	}
	// Replace the synopsis with one built from a different document; the
	// old warm cache must be unreachable for the new entry.
	doc2, err := xseed.ParseXMLString("<a><u/><u/><u/></a>")
	if err != nil {
		t.Fatal(err)
	}
	syn2, err := xseed.BuildSynopsis(doc2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put("fig2", syn2, "replacement"); err != nil {
		t.Fatal(err)
	}
	got, err := r.Estimate(context.Background(), "fig2", "/a/u", false)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cached {
		t.Fatal("estimate after Put served the replaced synopsis's cache entry")
	}
	if got.Estimate != 3 {
		t.Fatalf("estimate after Put = %v, want 3 from the replacement", got.Estimate)
	}
	// Delete + re-Add under the same name must likewise start cold.
	if err := r.Delete("fig2"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	again, err := r.Estimate(context.Background(), "fig2", "/a/u", false)
	if err != nil {
		t.Fatal(err)
	}
	if again.Cached || again.Estimate != 1 {
		t.Fatalf("estimate after re-Add = %+v, want cold 1", again)
	}
}

func TestRegistryKernelOnlyFeedbackKeepsCacheWarm(t *testing.T) {
	_, syn := buildFixtureSynopsis(t, &xseed.Config{HET: &xseed.HETConfig{Disable: true}})
	r := NewRegistry(0, 0)
	if _, err := r.Add("bare", syn, "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Estimate(context.Background(), "bare", "/a/u", false); err != nil {
		t.Fatal(err)
	}
	// Feedback on a kernel-only synopsis can't change estimates, so it must
	// not dump the warm cache; the accuracy observation is still recorded.
	if err := r.Feedback("bare", "/a/u", 1); err != nil {
		t.Fatal(err)
	}
	got, err := r.Estimate(context.Background(), "bare", "/a/u", false)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cached {
		t.Fatal("kernel-only feedback invalidated a still-valid cache")
	}
	e, _ := r.Get("bare")
	info := e.Info()
	if info.Feedbacks != 1 || info.Accuracy.N != 1 {
		t.Fatalf("info = %+v, want feedback recorded", info)
	}
}

func TestRegistryFeedbackInvalidatesAndTunes(t *testing.T) {
	doc, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(0, 0)
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	const q = "/a/c/s/s/t"
	actual, err := doc.Count(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Estimate(context.Background(), "fig2", q, false); err != nil {
		t.Fatal(err)
	}
	if err := r.Feedback("fig2", q, float64(actual)); err != nil {
		t.Fatal(err)
	}
	after, err := r.Estimate(context.Background(), "fig2", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("estimate after feedback served stale cache entry")
	}
	if after.Estimate != float64(actual) {
		t.Fatalf("post-feedback estimate = %v, want exact actual %d", after.Estimate, actual)
	}
	e, _ := r.Get("fig2")
	if n := e.Info().Accuracy.N; n != 1 {
		t.Fatalf("accuracy N = %d, want 1", n)
	}
}

func TestRegistrySubtreeUpdateInvalidates(t *testing.T) {
	// Kernel-only: with an HET, precomputed path cardinalities legitimately
	// shadow the updated kernel (the paper's lazy maintenance), which would
	// hide the cache-invalidation behavior this test is about.
	_, syn := buildFixtureSynopsis(t, &xseed.Config{HET: &xseed.HETConfig{Disable: true}})
	r := NewRegistry(0, 0)
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	before, err := r.Estimate(context.Background(), "fig2", "/a/u", false)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AddSubtree("fig2", []string{"a"}, "<u/>"); err != nil {
		t.Fatal(err)
	}
	after, err := r.Estimate(context.Background(), "fig2", "/a/u", false)
	if err != nil {
		t.Fatal(err)
	}
	if after.Cached {
		t.Fatal("estimate after subtree update served stale cache entry")
	}
	if after.Estimate != before.Estimate+1 {
		t.Fatalf("estimate after adding one <u/>: %v, want %v", after.Estimate, before.Estimate+1)
	}
	if err := r.RemoveSubtree("fig2", []string{"a"}, "<u/>"); err != nil {
		t.Fatal(err)
	}
	restored, err := r.Estimate(context.Background(), "fig2", "/a/u", false)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Estimate != before.Estimate {
		t.Fatalf("estimate after remove: %v, want %v", restored.Estimate, before.Estimate)
	}
}

func TestRegistryAggregateBudget(t *testing.T) {
	_, syn1 := buildFixtureSynopsis(t, nil)
	_, syn2 := buildFixtureSynopsis(t, nil)
	if syn1.HETSizeBytes() == 0 {
		t.Fatal("fixture synopsis has no HET; budget test is vacuous")
	}
	r := NewRegistry(0, 0)
	if _, err := r.Add("a", syn1, "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("b", syn2, "test"); err != nil {
		t.Fatal(err)
	}
	// Shrink the fleet to exactly its kernels: every HET must be evicted.
	kernels := syn1.KernelSizeBytes() + syn2.KernelSizeBytes()
	r.SetAggregateBudget(kernels)
	if n := syn1.HETSizeBytes() + syn2.HETSizeBytes(); n != 0 {
		t.Fatalf("resident HET bytes after kernel-only budget: %d, want 0", n)
	}
	// Restore headroom: rebalance re-admits entries up to the new budget.
	r.SetAggregateBudget(kernels + 1<<20)
	if syn1.HETSizeBytes() == 0 || syn2.HETSizeBytes() == 0 {
		t.Fatal("HET not re-admitted after budget increase")
	}
	st := r.Stats()
	if st.AggregateBudget != kernels+1<<20 || st.TotalBytes <= 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRegistryRebalanceInvalidatesCache(t *testing.T) {
	doc, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(0, 0)
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	// Teach the HET an exact cardinality and warm the cache with it.
	const q = "/a/c/s/s/t"
	actual, _ := doc.Count(q)
	if err := r.Feedback("fig2", q, float64(actual)); err != nil {
		t.Fatal(err)
	}
	warm, err := r.Estimate(context.Background(), "fig2", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Estimate != float64(actual) {
		t.Fatalf("tuned estimate = %v, want %d", warm.Estimate, actual)
	}
	// Shrinking the aggregate budget to the kernel evicts the HET; the
	// warm cache must not keep serving the HET-backed value.
	r.SetAggregateBudget(syn.KernelSizeBytes())
	cold, err := r.Estimate(context.Background(), "fig2", q, false)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cached {
		t.Fatal("estimate after rebalance served a pre-rebalance cache entry")
	}
}

// TestRegistryRebalanceConcurrentWithUpdates races registry membership
// churn (which rebalances and reads kernel sizes) against kernel mutations
// on an existing entry; meaningful under -race.
func TestRegistryRebalanceConcurrentWithUpdates(t *testing.T) {
	_, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(0, 64<<10)
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := r.AddSubtree("fig2", []string{"a"}, "<u/>"); err != nil {
				t.Error(err)
				return
			}
			if err := r.RemoveSubtree("fig2", []string{"a"}, "<u/>"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			_, other := buildFixtureSynopsis(t, nil)
			if _, err := r.Add("churn", other, "test"); err != nil {
				t.Error(err)
				return
			}
			if err := r.Delete("churn"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestRegistryBatchDeduplicatesMisses(t *testing.T) {
	_, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(0, 0)
	e, err := r.Add("fig2", syn, "test")
	if err != nil {
		t.Fatal(err)
	}
	// Three spellings of one query plus one distinct query: the synopsis
	// must be consulted exactly twice, and all items must be answered.
	items, err := r.EstimateBatch(context.Background(), "fig2", []string{"/a/c/s", "/a/c/s", "/a/c/s", "/a/u"}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Error != nil || it.Estimate <= 0 {
			t.Fatalf("item %d = %+v", i, it)
		}
	}
	if items[0].Estimate != items[1].Estimate || items[1].Estimate != items[2].Estimate {
		t.Fatalf("duplicate queries disagree: %+v", items[:3])
	}
	if n := e.Info().Estimates; n != 2 {
		t.Fatalf("uncached estimates = %d, want 2 (deduplicated)", n)
	}
}

// TestRegistryPersistRoundtrip proves estimates are identical before and
// after a serialize→load cycle, served through the registry.
func TestRegistryPersistRoundtrip(t *testing.T) {
	doc, syn := buildFixtureSynopsis(t, nil)
	queries := []string{"/a/c/s", "/a/c/s/s/t", "//s//p", "/a/c/s[p]/t", "//s[t]", "/a/*/s"}
	// Tune the synopsis first so the roundtrip also covers HET state.
	r := NewRegistry(0, 0)
	if _, err := r.Add("orig", syn, "test"); err != nil {
		t.Fatal(err)
	}
	actual, _ := doc.Count("/a/c/s")
	if err := r.Feedback("orig", "/a/c/s", float64(actual)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := syn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := xseed.ReadSynopsis(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("loaded", loaded, "roundtrip"); err != nil {
		t.Fatal(err)
	}
	want, err := r.EstimateBatch(context.Background(), "orig", queries, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.EstimateBatch(context.Background(), "loaded", queries, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if want[i].Error != nil || got[i].Error != nil {
			t.Fatalf("query %s errored: %v / %v", queries[i], want[i].Error, got[i].Error)
		}
		if want[i].Estimate != got[i].Estimate {
			t.Errorf("%s: original %v, loaded %v", queries[i], want[i].Estimate, got[i].Estimate)
		}
	}
}

// TestRegistryConcurrentHammer drives one registry entry with parallel
// estimates, feedback, and subtree updates; run under -race it proves the
// RWMutex discipline makes the non-thread-safe library serve safely.
func TestRegistryConcurrentHammer(t *testing.T) {
	doc, syn := buildFixtureSynopsis(t, nil)
	r := NewRegistry(512, 0)
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	queries := []string{"/a/c/s", "/a/c/s/s/t", "//s//p", "/a/c/s[p]/t", "//s[t]", "/a/u", "/a/*/s"}
	actual, _ := doc.Count("/a/c/s")

	var wg sync.WaitGroup
	const rounds = 60
	// Parallel estimators, mixing batch, single, and streaming calls.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := r.EstimateBatch(context.Background(), "fig2", queries, i%3 == 0); err != nil {
					t.Error(err)
					return
				}
				if _, err := r.Estimate(context.Background(), "fig2", queries[(g+i)%len(queries)], false); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	// Feedback writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := r.Feedback("fig2", "/a/c/s", float64(actual)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Subtree updater (balanced add/remove keeps the kernel consistent).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := r.AddSubtree("fig2", []string{"a"}, "<u/>"); err != nil {
				t.Error(err)
				return
			}
			if err := r.RemoveSubtree("fig2", []string{"a"}, "<u/>"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Stats readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			r.Stats()
		}
	}()
	wg.Wait()

	// The document is back to its original shape; a fresh estimate must
	// agree with a never-hammered synopsis.
	_, control := buildFixtureSynopsis(t, nil)
	got, err := r.Estimate(context.Background(), "fig2", "/a/u", false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := control.Estimate("/a/u")
	if err != nil {
		t.Fatal(err)
	}
	if got.Estimate != want {
		t.Fatalf("post-hammer /a/u estimate = %v, want %v", got.Estimate, want)
	}
}

func TestPreloadSpecErrors(t *testing.T) {
	r := NewRegistry(0, 0)
	for _, bad := range []string{"noequals", "=path", "name="} {
		if err := Preload(r, []string{bad}); err == nil {
			t.Errorf("Preload(%q) succeeded", bad)
		}
	}
	if err := Preload(r, []string{fmt.Sprintf("x=%s", t.TempDir()+"/missing.xsd")}); err == nil {
		t.Error("Preload of missing file succeeded")
	}
}
