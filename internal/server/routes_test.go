package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"xseed"
	"xseed/api"
	"xseed/internal/fixtures"
)

// normalizeBody makes two servers' responses comparable: JSON bodies are
// re-marshaled with volatile fields (creation timestamps) stripped
// recursively; non-JSON bodies compare raw.
func normalizeBody(t *testing.T, b []byte) string {
	t.Helper()
	if len(bytes.TrimSpace(b)) == 0 {
		return ""
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return string(b)
	}
	var strip func(any) any
	strip = func(x any) any {
		switch x := x.(type) {
		case map[string]any:
			delete(x, "created")
			for k, v := range x {
				x[k] = strip(v)
			}
		case []any:
			for i := range x {
				x[i] = strip(x[i])
			}
		}
		return x
	}
	out, err := json.Marshal(strip(v))
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestRemovedAliasRoutes locks the alias sunset: every pre-/v1 unversioned
// path (the api.Routes Legacy column) now answers 404 with a typed
// not_found whose message and Link header point at the /v1 successor —
// never a plain-text mux 404, and never the old aliased behavior. The /v1
// twin keeps serving. The table comes from api.Routes, so the regression
// holds for exactly the set of paths that were ever aliased.
func TestRemovedAliasRoutes(t *testing.T) {
	s, err := New(Config{CacheCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	fig2, err := xseed.BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Registry().Add("fig2", fig2, "xml upload"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })

	aliased := 0
	for _, rt := range api.Routes() {
		if rt.Legacy == "" {
			continue
		}
		aliased++
		t.Run(rt.Method+" "+rt.Legacy, func(t *testing.T) {
			path := strings.ReplaceAll(rt.Legacy, "{name}", "fig2")
			req, err := http.NewRequest(rt.Method, ts.URL+path, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusNotFound {
				t.Fatalf("removed alias %s %s: status %d, want 404", rt.Method, path, resp.StatusCode)
			}
			var env api.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("removed alias body is not the error envelope: %v", err)
			}
			if env.Err == nil || env.Err.Code != api.CodeNotFound {
				t.Fatalf("removed alias error = %+v, want typed %s", env.Err, api.CodeNotFound)
			}
			if !strings.Contains(env.Err.Msg, "/v1"+path) {
				t.Errorf("error message %q does not name the successor /v1%s", env.Err.Msg, path)
			}
			if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1"+path) || !strings.Contains(link, "successor-version") {
				t.Errorf("Link header = %q, want successor-version /v1%s", link, path)
			}
			// The /v1 twin is mounted and does not 404 on the same method
			// (GET routes answer 200; mutating routes at worst reject the
			// placeholder body with a 4xx that is not not_found-at-the-mux).
			v1req, err := http.NewRequest(rt.Method, ts.URL+"/v1"+path, strings.NewReader("{}"))
			if err != nil {
				t.Fatal(err)
			}
			v1resp, err := ts.Client().Do(v1req)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, v1resp.Body)
			v1resp.Body.Close()
			if v1resp.StatusCode == http.StatusMethodNotAllowed {
				t.Errorf("/v1%s: successor not mounted for %s", path, rt.Method)
			}
		})
	}
	if aliased < 10 {
		t.Fatalf("only %d removed aliases exercised; the regression surface shrank", aliased)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHTTPEstimatePartialSuccess locks the batch contract: a mid-batch
// parse failure yields 200 with per-query typed errors — offset preserved —
// alongside the successful estimates.
func TestHTTPEstimatePartialSuccess(t *testing.T) {
	_, ts := newTestServer(t)
	createFixture(t, ts, "fig2")

	var resp api.EstimateResponse
	httpResp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate",
		api.EstimateRequest{Queries: []string{"/a/c/s", "/a/c[", "//s//p"}}, &resp)
	if httpResp.StatusCode != http.StatusOK {
		t.Fatalf("partial-success batch: status %d, want 200", httpResp.StatusCode)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("results = %+v", resp.Results)
	}
	if resp.Results[0].Error != nil || resp.Results[0].Estimate <= 0 {
		t.Errorf("results[0] = %+v", resp.Results[0])
	}
	if resp.Results[2].Error != nil || resp.Results[2].Estimate <= 0 {
		t.Errorf("results[2] = %+v", resp.Results[2])
	}
	bad := resp.Results[1]
	if bad.Error == nil || bad.Error.Code != api.CodeParseError {
		t.Fatalf("results[1] error = %+v, want %s", bad.Error, api.CodeParseError)
	}
	if d, ok := bad.Error.ParseDetail(); !ok || d.Offset != len("/a/c[") {
		t.Errorf("parse detail = %+v ok=%v, want offset %d", d, ok, len("/a/c["))
	}
}

// TestFeedbackParseErrorTyped locks the satellite fix: a feedback (and
// subtree) request whose input does not parse fails through the same
// api.WrapError path as estimate queries — Registry.Feedback itself returns
// a typed *api.Error, and the wire response is a parse_error whose detail
// carries the byte offset, exactly like a batch-estimate parse failure.
func TestFeedbackParseErrorTyped(t *testing.T) {
	srv, ts := newTestServer(t)
	createFixture(t, ts, "fig2")

	// Registry-level: the error is typed before the HTTP layer touches it.
	err := srv.Registry().Feedback("fig2", "/a/c[", 5)
	var ae *api.Error
	if !errors.As(err, &ae) || ae.Code != api.CodeParseError {
		t.Fatalf("Registry.Feedback parse failure = %#v, want *api.Error %s", err, api.CodeParseError)
	}
	if d, ok := ae.ParseDetail(); !ok || d.Offset != len("/a/c[") {
		t.Fatalf("registry parse detail = %+v ok=%v, want offset %d", d, ok, len("/a/c["))
	}

	// Wire-level: same code and structural offset as the estimate endpoint.
	var env api.ErrorResponse
	httpResp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/feedback",
		api.FeedbackRequest{Query: "/a/c[", Actual: 5}, &env)
	if httpResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("feedback parse failure: status %d, want 400", httpResp.StatusCode)
	}
	if env.Err == nil || env.Err.Code != api.CodeParseError {
		t.Fatalf("feedback error = %+v, want %s", env.Err, api.CodeParseError)
	}
	if d, ok := env.Err.ParseDetail(); !ok || d.Offset != len("/a/c[") {
		t.Fatalf("feedback parse detail = %+v ok=%v, want offset %d", d, ok, len("/a/c["))
	}

	// Subtree: a malformed XML payload follows the same typed path
	// (bad_request — there is no XPath offset to carry).
	if err := srv.Registry().AddSubtree("fig2", []string{"a"}, "<unclosed"); err == nil {
		t.Fatal("malformed subtree XML accepted")
	} else if !errors.As(err, &ae) || ae.Code != api.CodeBadRequest {
		t.Fatalf("Registry.AddSubtree parse failure = %#v, want *api.Error %s", err, api.CodeBadRequest)
	}
}

// TestEstimateBatchCancellation proves the registry read path honors
// context cancellation instead of estimating a dead request's batch.
func TestEstimateBatchCancellation(t *testing.T) {
	r := NewRegistry(0, 0)
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.EstimateBatch(ctx, "fig2", []string{"/a/c/s"}, false); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch returned %v, want context.Canceled", err)
	}
	// An unknown synopsis still reports not-found even when canceled —
	// registry lookup precedes the context gate — and a live context works.
	if _, err := r.EstimateBatch(context.Background(), "fig2", []string{"/a/c/s"}, false); err != nil {
		t.Fatalf("live batch failed: %v", err)
	}
}
