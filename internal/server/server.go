package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/cluster"
	"xseed/internal/logx"
	"xseed/internal/obs"
	"xseed/internal/store"
)

// Config configures an xseedd server.
type Config struct {
	Addr                 string // listen address, e.g. ":8080"
	CacheCapacity        int    // estimate cache entries (0 = default 4096)
	AggregateBudgetBytes int    // total synopsis memory budget (0 = unlimited)

	// XTPAddr, when non-empty, additionally serves the xtp binary protocol
	// (docs/PROTOCOL.md) on that TCP address — the same registry, cache,
	// and error taxonomy as the HTTP API, framed for pipelining clients
	// (xseed/client.XTP). Shutdown drains both listeners together.
	XTPAddr string

	// DataDir is the only directory the xmlFile/synopsisFile create sources
	// may read from; requested paths are resolved inside it. Empty disables
	// file sources over HTTP entirely (inline XML, datasets, and snapshot
	// uploads still work) — the API is otherwise an arbitrary-file-read
	// oracle for anyone who can reach the listen address.
	DataDir string

	// StoreDir enables durability: registered synopses are persisted there
	// (base snapshots + delta logs, see internal/store) and reloaded on
	// start. Empty keeps the registry in memory only.
	StoreDir string

	// StoreCompactRatio and StoreCompactInterval tune the background
	// compactor (zero values: store defaults of 0.5 and 15s). StoreFsync
	// selects the delta-log durability mode: "off" (or empty), "batch"
	// (group commit, see StoreBatchLatency), or "every" (fsync per append);
	// "true"/"false" stay accepted as aliases of every/off.
	StoreCompactRatio    float64
	StoreCompactInterval time.Duration
	StoreFsync           string

	// StoreBatchLatency bounds how long a group-committed record may wait
	// for its batch's fsync with StoreFsync "batch" (0 = store default 2ms).
	StoreBatchLatency time.Duration

	// PprofAddr, when non-empty, serves net/http/pprof on a second,
	// admin-only listener (e.g. "localhost:6060") — never on the public
	// mux, so reaching the API does not grant heap dumps and CPU profiles.
	PprofAddr string

	// Logger is the server's structured logger. Nil falls back to Log
	// (bridged), then to a text slog logger on stderr.
	Logger *slog.Logger

	// Log is the legacy logger field, kept working for existing callers
	// and tests: when Logger is nil, records are rendered as
	// "msg key=value ..." lines through it.
	Log *log.Logger

	// Metrics receives every metric family the server and its registry,
	// cache, and store register, and backs GET /metrics. Nil means a fresh
	// obs.NewRegistry (metrics on); pass obs.Disabled to switch
	// instrumentation off (benchmark baselines).
	Metrics *obs.Registry

	// Tenants, when non-nil, enables multi-tenant mode (the -tenants flag):
	// bearer tokens resolve to the configured tenants, synopsis namespaces,
	// budgets, cache quotas, rate limits, and stats become tenant-scoped,
	// and tokenless requests resolve to the "default" tenant. Nil — not
	// merely empty — keeps the server single-tenant, byte-identical to
	// pre-tenancy behavior.
	Tenants []TenantConfig

	// Cluster, when non-nil, runs the daemon as one node of a distributed
	// xseed cluster: partition ownership, delta-log replication to warm
	// standbys, and typed moved redirects for synopses owned elsewhere.
	// Requires StoreDir. See ClusterOptions.
	Cluster *ClusterOptions
}

// Server is the xseedd HTTP server: a registry plus its JSON API. Its wire
// contract — request/response/error shapes and the /v1 route table — is
// the public xseed/api package; handlers marshal only api types.
type Server struct {
	reg       *Registry
	http      *http.Server
	xtp       *XTP   // nil unless Config.XTPAddr was set
	xtpAddr   string // requested xtp listen address
	dataDir   string
	st        *store.Store // nil when not persisting
	compact   time.Duration
	log       *slog.Logger
	om        *obs.Registry
	httpM     *httpMetrics
	pprofAddr string
	tenants   *TenantSet

	// Cluster mode (nil/-empty off-cluster): the node-side manager that
	// follows ring epochs and replicates primaries out, the standby
	// receiver for segments shipped in, and its listen address.
	cl       *cluster.Manager
	replSrv  *cluster.ReplServer
	replAddr string
}

// New builds a server around a fresh registry. With cfg.StoreDir set it
// opens the store and recovers every persisted synopsis — base snapshot plus
// delta-log replay — before the server accepts traffic.
func New(cfg Config) (*Server, error) {
	if cfg.Addr == "" {
		cfg.Addr = ":8080"
	}
	logger := cfg.Logger
	if logger == nil {
		if cfg.Log != nil {
			logger = logx.Bridge(cfg.Log)
		} else {
			logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
	}
	om := cfg.Metrics
	if om == nil {
		om = obs.NewRegistry()
	}
	ts := noTenants()
	if cfg.Tenants != nil {
		var err error
		if ts, err = NewTenantSet(om, cfg.Tenants); err != nil {
			return nil, err
		}
	}
	s := &Server{
		reg:       NewRegistryObs(cfg.CacheCapacity, cfg.AggregateBudgetBytes, om),
		dataDir:   cfg.DataDir,
		compact:   cfg.StoreCompactInterval,
		log:       logger,
		om:        om,
		httpM:     newHTTPMetrics(om),
		pprofAddr: cfg.PprofAddr,
		xtpAddr:   cfg.XTPAddr,
		tenants:   ts,
	}
	// Attach before store recovery: restored entries must resolve their
	// tenants (and tenant budget domains) against the final set.
	s.reg.AttachTenants(ts)
	if cfg.XTPAddr != "" {
		s.xtp = NewXTP(s.reg, XTPOptions{Logger: logger, Metrics: om})
	}
	if cfg.StoreDir != "" {
		fsync, err := store.ParseFsyncMode(cfg.StoreFsync)
		if err != nil {
			return nil, err
		}
		st, err := store.Open(cfg.StoreDir, store.Options{
			CompactRatio: cfg.StoreCompactRatio,
			Fsync:        fsync,
			BatchLatency: cfg.StoreBatchLatency,
			Log:          logger,
			Metrics:      om,
		})
		if err != nil {
			return nil, fmt.Errorf("open store %s: %w", cfg.StoreDir, err)
		}
		loaded, err := st.LoadAll()
		if err != nil {
			st.Close()
			return nil, fmt.Errorf("recover store %s: %w", cfg.StoreDir, err)
		}
		for _, l := range loaded {
			if _, err := s.reg.Restore(l); err != nil {
				st.Close()
				return nil, fmt.Errorf("restore %q: %w", l.Name, err)
			}
			logger.Info("restored synopsis", "synopsis", l.Name, "source", l.Source, "replayedDeltas", l.Replay)
		}
		s.reg.AttachStore(st, logger)
		s.st = st
	}
	if cfg.Cluster != nil {
		// After store recovery: the manager's first ownership sweep must see
		// every restored synopsis to demote the ones owned elsewhere.
		if err := s.attachCluster(cfg.Cluster); err != nil {
			if s.st != nil {
				s.st.Close()
			}
			return nil, err
		}
	}
	// Start the async budget rebalancer only after recovery: Restore's
	// rebalances must apply synchronously so the registry's budgets are
	// settled (and match a fresh plan over the full fleet) before traffic.
	s.reg.StartRebalancer()
	s.http = &http.Server{Addr: cfg.Addr, Handler: s.Handler()}
	return s, nil
}

// Close drains the registry's budget rebalancer, then releases the store
// (flushing delta logs) — in that order, so budget deltas from a pending
// rebalance reach the log before it is flushed and closed. Run does this on
// shutdown; callers that never Run (tests mounting Handler) should Close
// themselves.
func (s *Server) Close() error {
	s.reg.Close()
	if s.st == nil {
		return nil
	}
	return s.st.Close()
}

// Registry returns the server's registry (for preloading synopses).
func (s *Server) Registry() *Registry { return s.reg }

// Handler mounts the api.Routes table: every route under its /v1 path,
// wrapped with its per-route metrics (children resolved here, once) and the
// bearer-token tenant resolver; the retired unversioned aliases answer with
// a typed not_found pointing at their /v1 successor. The whole mux sits
// behind the request-ID/access-log middleware. It is independent of any
// listener — this is what httptest mounts in the end-to-end tests.
func (s *Server) Handler() http.Handler {
	handlers := map[string]http.HandlerFunc{
		"GET /v1/healthz":                         s.handleHealthz,
		"GET /v1/stats":                           s.handleStats,
		"GET /v1/synopses":                        s.handleList,
		"POST /v1/synopses":                       s.handleCreate,
		"GET /v1/synopses/{name}":                 s.handleGet,
		"DELETE /v1/synopses/{name}":              s.handleDelete,
		"POST /v1/synopses/{name}/estimate":       s.handleEstimate,
		"POST /v1/synopses/{name}/feedback":       s.handleFeedback,
		"POST /v1/synopses/{name}/feedback:batch": s.handleFeedbackBatch,
		"POST /v1/synopses/{name}/subtree":        s.handleSubtree,
		"GET /v1/synopses/{name}/snapshot":        s.handleSnapshotGet,
		"PUT /v1/synopses/{name}/snapshot":        s.handleSnapshotPut,
		"GET /v1/cluster/ring":                    s.handleClusterRing,
		"GET /v1/cluster/lag":                     s.handleClusterLag,
		"POST /v1/admin/budget":                   s.handleBudget,
		"POST /v1/admin/compact":                  s.handleCompact,
		"GET /metrics":                            s.handleMetrics,
	}
	mux := http.NewServeMux()
	mounted := 0
	for _, rt := range api.Routes() {
		h, ok := handlers[rt.Method+" "+rt.Path]
		if !ok {
			panic(fmt.Sprintf("server: api.Routes declares %s %s but no handler is bound", rt.Method, rt.Path))
		}
		if rt.Path != "/metrics" {
			// /metrics stays tokenless (a Prometheus scraper carries no
			// bearer token and serves no tenant-scoped payload).
			h = s.withTenant(h)
		}
		h = instrument(s.httpM.route(rt.Method+" "+rt.Path), h)
		mux.HandleFunc(rt.Method+" "+rt.Path, h)
		if rt.Legacy != "" {
			mux.HandleFunc(rt.Method+" "+rt.Legacy, removedAlias)
		}
		mounted++
	}
	if mounted != len(handlers) {
		panic("server: handler bound to a route api.Routes does not declare")
	}
	return s.withRequestID(mux)
}

// removedAlias answers the retired pre-/v1 alias paths. The aliases were
// removed after their deprecation window, but the mux's default 404 is
// plain text — the old paths keep speaking the typed error envelope, with
// the /v1 successor named in the message and a Link header, so a stale
// client's failure mode is self-diagnosing.
func removedAlias(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Link", fmt.Sprintf("</v1%s>; rel=\"successor-version\"", r.URL.Path))
	writeAPIError(w, r, api.Errorf(api.CodeNotFound,
		"this unversioned route was removed; use /v1%s", r.URL.Path))
}

// ctxKeyTenant carries the resolved *Tenant through the request context.
const ctxKeyTenant ctxKey = 1

// withTenant resolves the request's tenant from its Authorization header
// (see TenantSet.resolveHTTP) before the handler runs: unauthorized
// requests never reach a handler, and handlers read the tenant back with
// s.tenant. On untenanted servers resolution is two branches and the
// per-tenant request counter is inert.
func (s *Server) withTenant(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t, aerr := s.tenants.resolveHTTP(r)
		if aerr != nil {
			writeAPIError(w, r, aerr)
			return
		}
		t.reqs.Inc()
		h(w, r.WithContext(context.WithValue(r.Context(), ctxKeyTenant, t)))
	}
}

// tenant returns the request's resolved tenant (default when the route ran
// without withTenant, e.g. in handler-level tests).
func (s *Server) tenant(r *http.Request) *Tenant {
	if t, ok := r.Context().Value(ctxKeyTenant).(*Tenant); ok {
		return t
	}
	return s.tenants.Default()
}

// synKey qualifies a client-supplied synopsis name with the tenant's
// namespace. A NUL byte is rejected at this boundary on every route that
// takes a name: store.Key reserves NUL as its separator, so a crafted name
// could otherwise alias another tenant's key.
func synKey(t *Tenant, name string) (string, *api.Error) {
	if strings.ContainsRune(name, 0) {
		return "", api.Errorf(api.CodeBadRequest, "synopsis name must not contain NUL")
	}
	return store.Key(t.ID(), name), nil
}

// adminOnly gates the admin routes (budget, compact): on a tenanted server
// only the default tenant — the operator — may call them.
func (s *Server) adminOnly(t *Tenant) *api.Error {
	if s.tenants.Enabled() && t != s.tenants.Default() {
		return api.Errorf(api.CodeUnauthorized, "admin routes require the default tenant's token")
	}
	return nil
}

// Run serves until ctx is cancelled, then shuts down gracefully: in-flight
// requests drain for up to 10 seconds, and the store's delta logs are
// flushed and closed last. A listener that cannot bind (port taken,
// privileged port, bad address) is a hard error returned to the caller —
// never exit silently leaving the caller to discover a daemon that isn't
// there.
func (s *Server) Run(ctx context.Context) error {
	ln, err := net.Listen("tcp", s.http.Addr)
	if err != nil {
		s.Close()
		return fmt.Errorf("listen: %w", err)
	}
	s.log.Info("listening", "addr", ln.Addr().String())
	// The replication listener is cluster-internal but still a hard
	// dependency: a node that cannot receive segments can never be a warm
	// standby, so failing to bind it is a startup error.
	var replLn net.Listener
	if s.cl != nil {
		replLn, err = net.Listen("tcp", s.replAddr)
		if err != nil {
			ln.Close()
			s.Close()
			return fmt.Errorf("repl listen: %w", err)
		}
		s.log.Info("replication listening", "addr", replLn.Addr().String(), "node", s.cl.Self())
	}
	// The xtp listener is a requested serving transport, so like the HTTP
	// one a bind failure is a hard startup error, not a logged degradation.
	var xtpErrc chan error
	if s.xtp != nil {
		xln, err := net.Listen("tcp", s.xtpAddr)
		if err != nil {
			ln.Close()
			if replLn != nil {
				replLn.Close()
			}
			s.Close()
			return fmt.Errorf("xtp listen: %w", err)
		}
		s.log.Info("xtp listening", "addr", xln.Addr().String())
		xtpErrc = make(chan error, 1)
		go func() { xtpErrc <- s.xtp.Serve(xln) }()
	}
	if s.st != nil {
		go s.st.StartCompactor(ctx, s.compact)
	}
	if s.cl != nil {
		// Both halves of replication ride Run's ctx: the standby receiver
		// applies segments shipped in, the manager polls the router's ring
		// and streams this node's primaries out.
		go func() {
			if err := s.replSrv.Serve(ctx, replLn); err != nil {
				s.log.Error("replication serve failed", "err", err)
			}
		}()
		go s.cl.Run(ctx)
	}
	// The pprof listener is best-effort operator surface: it must never take
	// the serving daemon down with it, so bind failures are logged, not
	// returned, and Serve errors are swallowed after shutdown.
	var pprofSrv *http.Server
	if s.pprofAddr != "" {
		pln, perr := net.Listen("tcp", s.pprofAddr)
		if perr != nil {
			s.log.Error("pprof listen failed", "addr", s.pprofAddr, "err", perr)
		} else {
			pmux := http.NewServeMux()
			mountPprof(pmux)
			pprofSrv = &http.Server{Handler: pmux}
			s.log.Info("pprof listening", "addr", pln.Addr().String())
			go func() {
				if err := pprofSrv.Serve(pln); err != nil && !errors.Is(err, http.ErrServerClosed) {
					s.log.Error("pprof serve failed", "err", err)
				}
			}()
		}
	}
	errc := make(chan error, 1)
	go func() { errc <- s.http.Serve(ln) }()
	serveErr := func(err error) error {
		if cerr := s.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}
	select {
	case err := <-errc:
		if s.xtp != nil {
			sctx, cancel := context.WithTimeout(context.Background(), time.Second)
			s.xtp.Shutdown(sctx)
			cancel()
		}
		return serveErr(err)
	case err := <-xtpErrc: // nil channel (no xtp) blocks forever
		s.http.Close()
		<-errc
		return serveErr(fmt.Errorf("xtp serve: %w", err))
	case <-ctx.Done():
	}
	s.log.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if pprofSrv != nil {
		pprofSrv.Shutdown(shutdownCtx)
	}
	// Both serving transports drain in parallel under the same deadline:
	// in-flight HTTP requests and in-flight xtp frames finish, pipelining
	// clients get a Goaway, and only then do the sockets close.
	var xtpDone chan error
	if s.xtp != nil {
		xtpDone = make(chan error, 1)
		go func() { xtpDone <- s.xtp.Shutdown(shutdownCtx) }()
	}
	if err := s.http.Shutdown(shutdownCtx); err != nil {
		if xtpDone != nil {
			<-xtpDone
		}
		return serveErr(err)
	}
	if xtpDone != nil {
		if err := <-xtpDone; err != nil {
			return serveErr(fmt.Errorf("xtp shutdown: %w", err))
		}
		<-xtpErrc // Serve returned nil after Shutdown closed its listener
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return serveErr(err)
	}
	return serveErr(nil)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps any error onto the api taxonomy and writes the standard
// envelope: registry sentinels become not_found/conflict, XPath parse
// failures become parse_error with their offset in the detail, context
// cancellation becomes canceled, and anything else is a bad_request.
func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	writeAPIError(w, r, toAPIError(err))
}

// writeAPIError writes the error envelope; on 5xx it attaches the request
// ID to the error detail so the client-reported failure matches the
// server's access-log line in one grep.
func writeAPIError(w http.ResponseWriter, r *http.Request, e *api.Error) {
	if r != nil && e.HTTPStatus() >= 500 && len(e.Detail) == 0 {
		if id := requestID(r.Context()); id != "" {
			e = &api.Error{Code: e.Code, Msg: e.Msg,
				Detail: json.RawMessage(fmt.Sprintf(`{"requestId":%q}`, id))}
		}
	}
	api.WriteError(w, e)
}

// internalErr logs and serves a 5xx with the request ID attached.
func (s *Server) internalErr(w http.ResponseWriter, r *http.Request, err error) {
	s.log.Error("internal error",
		"path", r.URL.Path, "requestId", requestID(r.Context()), "err", err)
	writeAPIError(w, r, api.WrapError(err, api.CodeInternal))
}

// toAPIError is the single server-side mapping from Go errors onto the
// wire taxonomy (statuses come from the code via api.Error.HTTPStatus,
// never from message text).
func toAPIError(err error) *api.Error {
	switch {
	case errors.Is(err, ErrNotFound):
		return api.Errorf(api.CodeNotFound, "%s", err)
	case errors.Is(err, ErrExists):
		return api.Errorf(api.CodeConflict, "%s", err)
	default:
		return api.WrapError(err, api.CodeBadRequest)
	}
}

func readBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, 64<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeErr(w, r, fmt.Errorf("decode request: %w", err))
		return false
	}
	return true
}

// synopsisConfig converts the wire config into construction options.
func synopsisConfig(c *api.SynopsisConfig) *xseed.Config {
	if c == nil {
		return nil
	}
	cfg := &xseed.Config{CardThreshold: c.CardThreshold, ReuseEPT: c.ReuseEPT}
	switch {
	case c.KernelOnly:
		cfg.HET = &xseed.HETConfig{Disable: true}
	default:
		cfg.HET = &xseed.HETConfig{
			FeedbackOnly:  c.FeedbackOnly,
			MBP:           c.MBP,
			BselThreshold: c.BselThreshold,
			BudgetBytes:   c.BudgetBytes,
		}
		if cfg.HET.MBP == 0 {
			cfg.HET.MBP = 1
		}
	}
	return cfg
}

// resolveDataPath confines a client-supplied file path to dataDir: the path
// is treated as relative to dataDir and cleaned with a forced leading slash
// first, so ".." segments cannot escape it.
func resolveDataPath(dataDir, p string) (string, error) {
	if dataDir == "" {
		return "", fmt.Errorf("file sources are disabled (start the server with -data-dir)")
	}
	return filepath.Join(dataDir, filepath.Clean("/"+p)), nil
}

// buildSynopsis realizes a CreateRequest's single source into a synopsis.
func buildSynopsis(req api.CreateRequest, dataDir string) (*xseed.Synopsis, string, error) {
	sources := 0
	for _, set := range []bool{req.XML != "", req.XMLFile != "", req.Dataset != "", req.SynopsisFile != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, "", fmt.Errorf("specify exactly one of xml, xmlFile, dataset, synopsisFile")
	}
	var (
		doc    *xseed.Document
		source string
		err    error
	)
	switch {
	case req.SynopsisFile != "":
		path, err := resolveDataPath(dataDir, req.SynopsisFile)
		if err != nil {
			return nil, "", err
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		syn, err := xseed.ReadSynopsis(f)
		if err != nil {
			return nil, "", err
		}
		return syn, "file " + req.SynopsisFile, nil
	case req.XML != "":
		doc, err = xseed.ParseXMLString(req.XML)
		source = "xml upload"
	case req.XMLFile != "":
		var path string
		if path, err = resolveDataPath(dataDir, req.XMLFile); err != nil {
			return nil, "", err
		}
		doc, err = xseed.LoadFile(path)
		source = "xml file " + req.XMLFile
	default:
		factor := req.Factor
		if factor == 0 {
			factor = 1
		}
		doc, err = xseed.Generate(req.Dataset, factor, req.Seed)
		source = fmt.Sprintf("dataset %s ×%g", req.Dataset, factor)
	}
	if err != nil {
		return nil, "", err
	}
	syn, err := xseed.BuildSynopsis(doc, synopsisConfig(req.Config))
	if err != nil {
		return nil, "", err
	}
	return syn, source, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeErr(w, r, fmt.Errorf("missing name"))
		return
	}
	key, aerr := synKey(s.tenant(r), req.Name)
	if aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	if aerr := s.ownerCheck(key); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	// Racy early uniqueness check: building a synopsis can cost seconds of
	// CPU, so reject an already-taken name before paying for it. Add below
	// remains the authoritative check.
	if _, err := s.reg.Get(key); err == nil {
		writeErr(w, r, fmt.Errorf("synopsis %q %w", req.Name, ErrExists))
		return
	}
	syn, source, err := buildSynopsis(req, s.dataDir)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	e, err := s.reg.Add(key, syn, source)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, e.Info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.ListFor(s.tenant(r)))
}

// pathKey resolves the {name} path segment into the request tenant's
// qualified key, writing the error itself on a bad name.
func (s *Server) pathKey(w http.ResponseWriter, r *http.Request) (string, bool) {
	key, aerr := synKey(s.tenant(r), r.PathValue("name"))
	if aerr != nil {
		writeAPIError(w, r, aerr)
		return "", false
	}
	return key, true
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	if aerr := s.ownerCheck(key); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	e, err := s.reg.Get(key)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, e.Info())
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	if aerr := s.ownerCheck(key); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	if err := s.reg.Delete(key); err != nil {
		writeErr(w, r, err)
		return
	}
	if s.cl != nil {
		// Propagate to the standbys so the replica copies die with the
		// primary instead of resurrecting the name on the next failover.
		s.cl.NotifyDelete(key)
	}
	w.WriteHeader(http.StatusNoContent)
}

// rateLimit takes one token from the tenant's bucket, writing the typed
// quota_exceeded rejection itself when the bucket is dry. Applied to the
// traffic routes (estimate, feedback) — the ones a noisy neighbor floods.
func rateLimit(w http.ResponseWriter, r *http.Request, t *Tenant) bool {
	return rateLimitN(w, r, t, 1)
}

// rateLimitN charges n tokens atomically — a batch of n feedback events
// costs exactly what n single-event requests would, so the batch endpoint
// cannot bypass a tenant's rate limit.
func rateLimitN(w http.ResponseWriter, r *http.Request, t *Tenant, n int) bool {
	if t.allowN(n) {
		return true
	}
	writeAPIError(w, r, api.Errorf(api.CodeQuotaExceeded, "tenant %q rate limit exceeded", t.ID()))
	return false
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !rateLimit(w, r, s.tenant(r)) {
		return
	}
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	if aerr := s.ownerCheck(key); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	var req api.EstimateRequest
	if !readBody(w, r, &req) {
		return
	}
	queries := req.Queries
	if req.Query != "" {
		queries = append([]string{req.Query}, queries...)
	}
	if len(queries) == 0 {
		writeErr(w, r, fmt.Errorf("missing query or queries"))
		return
	}
	items, err := s.reg.EstimateBatch(r.Context(), key, queries, req.Streaming)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, api.EstimateResponse{Results: items})
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if !rateLimit(w, r, s.tenant(r)) {
		return
	}
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	if aerr := s.ownerCheck(key); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	var req api.FeedbackRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Query == "" {
		writeErr(w, r, fmt.Errorf("missing query"))
		return
	}
	if err := s.reg.Feedback(key, req.Query, req.Actual); err != nil {
		writeErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleFeedbackBatch(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	if aerr := s.ownerCheck(key); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	var req api.FeedbackBatchRequest
	if !readBody(w, r, &req) {
		return
	}
	if len(req.Items) == 0 {
		writeErr(w, r, fmt.Errorf("missing items"))
		return
	}
	// Charged after decode — the batch size IS the cost — and before any
	// registry work, so an over-limit batch is rejected whole.
	if !rateLimitN(w, r, s.tenant(r), len(req.Items)) {
		return
	}
	errs, err := s.reg.FeedbackBatch(key, req.Items)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	resp := api.FeedbackBatchResponse{Results: make([]api.FeedbackBatchItem, len(errs))}
	for i, e := range errs {
		resp.Results[i].Error = e
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSubtree(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	if aerr := s.ownerCheck(key); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	var req api.SubtreeRequest
	if !readBody(w, r, &req) {
		return
	}
	var err error
	switch req.Op {
	case "add":
		err = s.reg.AddSubtree(key, req.Context, req.XML)
	case "remove":
		err = s.reg.RemoveSubtree(key, req.Context, req.XML)
	default:
		writeErr(w, r, fmt.Errorf("op must be \"add\" or \"remove\""))
		return
	}
	if err != nil {
		writeErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	if aerr := s.ownerCheck(key); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	e, err := s.reg.Get(key)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	// Serialize into memory under the read lock, write to the client after
	// releasing it: streaming WriteTo directly to a slow client would pin
	// the entry lock (and, through rebalancing, potentially the whole
	// registry) for the duration of the download.
	var buf bytes.Buffer
	e.mu.RLock()
	_, err = e.syn.WriteTo(&buf)
	e.mu.RUnlock()
	if err != nil {
		s.internalErr(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	if _, err := w.Write(buf.Bytes()); err != nil {
		// The body write failing mid-stream cannot change the status line, so
		// the only record is the log: name the synopsis, the generation the
		// bytes came from, and the error's taxonomy code.
		s.log.Error("snapshot download failed",
			"synopsis", e.name,
			"generation", e.ver.Load(),
			"bytes", buf.Len(),
			"code", api.WrapError(err, api.CodeInternal).Code,
			"requestId", requestID(r.Context()),
			"err", err)
	}
}

func (s *Server) handleSnapshotPut(w http.ResponseWriter, r *http.Request) {
	key, ok := s.pathKey(w, r)
	if !ok {
		return
	}
	if aerr := s.ownerCheck(key); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	syn, err := xseed.ReadSynopsis(io.LimitReader(r.Body, 256<<20))
	if err != nil {
		writeErr(w, r, err)
		return
	}
	e, err := s.reg.Put(key, syn, "snapshot upload")
	if err != nil {
		writeErr(w, r, err)
		return
	}
	writeJSON(w, http.StatusCreated, e.Info())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.StatsFor(s.tenant(r)))
}

// handleMetrics serves the Prometheus text exposition. Every family reads
// the same atomics /v1/stats serves, so the two views cannot disagree.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.om.WritePrometheus(w)
}

// handleBudget re-targets the aggregate budget (or, with "tenant" set in
// the body, one tenant's private budget). Admin-only on tenanted servers.
// The response carries the rebalance generation the change planned;
// per-synopsis budgets are applied asynchronously — poll /v1/stats until
// rebalance.appliedGen reaches it.
func (s *Server) handleBudget(w http.ResponseWriter, r *http.Request) {
	if aerr := s.adminOnly(s.tenant(r)); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	var req api.BudgetRequest
	if !readBody(w, r, &req) {
		return
	}
	if req.Bytes < 0 {
		writeErr(w, r, fmt.Errorf("bytes must be >= 0"))
		return
	}
	if req.Tenant != "" {
		t := s.tenants.lookup(req.Tenant)
		if t == nil {
			writeAPIError(w, r, api.Errorf(api.CodeNotFound, "tenant %q not found", req.Tenant))
			return
		}
		s.reg.SetTenantBudget(t, req.Bytes)
	} else {
		s.reg.SetAggregateBudget(req.Bytes)
	}
	writeJSON(w, http.StatusAccepted, s.reg.RebalanceStats())
}

// handleCompact folds delta logs into fresh base snapshots on demand:
// POST /v1/admin/compact[?synopsis=name] compacts one synopsis (resolved in
// the default tenant's namespace) or, without the parameter, every
// registered one across all tenants. Admin-only on tenanted servers.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if aerr := s.adminOnly(s.tenant(r)); aerr != nil {
		writeAPIError(w, r, aerr)
		return
	}
	if s.st == nil {
		writeAPIError(w, r, api.Errorf(api.CodeConflict, "server has no store (start with -store-dir)"))
		return
	}
	var keys []string
	if name := r.URL.Query().Get("synopsis"); name != "" {
		key, ok := s.pathKeyFrom(w, r, name)
		if !ok {
			return
		}
		if _, err := s.reg.Get(key); err != nil {
			writeErr(w, r, err)
			return
		}
		keys = []string{key}
	} else {
		keys = s.reg.Keys()
	}
	resp := api.CompactResponse{Compacted: []string{}}
	for _, key := range keys {
		folded, err := s.st.CompactNow(key)
		if err != nil {
			s.internalErr(w, r, err)
			return
		}
		if folded {
			resp.Compacted = append(resp.Compacted, seriesFor(key))
		}
	}
	resp.Store = storeStatsAPI(s.st.Stats(), s.tenants, nil)
	writeJSON(w, http.StatusOK, resp)
}

// pathKeyFrom is pathKey for a name arriving outside the path (?synopsis=).
func (s *Server) pathKeyFrom(w http.ResponseWriter, r *http.Request, name string) (string, bool) {
	key, aerr := synKey(s.tenant(r), name)
	if aerr != nil {
		writeAPIError(w, r, aerr)
		return "", false
	}
	return key, true
}

// storeStatsAPI projects the store's stats onto the wire type, scoped to
// the requesting tenant: only t's synopses appear, under their bare names.
// A nil t skips the filter (the admin compact response reports the whole
// store), tagging each row with its tenant — empty for the default, so
// untenanted payloads are byte-identical to pre-tenancy ones.
func storeStatsAPI(st store.Stats, ts *TenantSet, t *Tenant) api.StoreStats {
	out := api.StoreStats{Dir: st.Dir}
	for _, s := range st.Synopses {
		ten, bare := store.SplitKey(s.Name)
		if t != nil && ts.lookup(ten) != t {
			continue
		}
		row := api.StoreSynopsisStats{
			Name:         bare,
			Seq:          s.Seq,
			BaseBytes:    s.BaseBytes,
			DeltaBytes:   s.DeltaBytes,
			DeltaRecords: s.DeltaRecords,
			Compactions:  s.Compactions,
		}
		if ten != store.DefaultTenant {
			row.Tenant = ten
		}
		out.Synopses = append(out.Synopses, row)
	}
	return out
}
