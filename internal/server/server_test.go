package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"xseed/api"

	"xseed"
	"xseed/internal/fixtures"
	"xseed/internal/logx"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{CacheCapacity: 1024, Logger: logx.Discard()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func doJSON(t *testing.T, client *http.Client, method, url string, body any, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: unmarshal %q: %v", method, url, data, err)
		}
	}
	return resp
}

func createFixture(t *testing.T, ts *httptest.Server, name string) api.SynopsisInfo {
	t.Helper()
	var info api.SynopsisInfo
	resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses",
		api.CreateRequest{Name: name, XML: fixtures.PaperFigure2}, &info)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d", name, resp.StatusCode)
	}
	return info
}

func TestHTTPHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestHTTPCreateListGetDelete(t *testing.T) {
	_, ts := newTestServer(t)
	info := createFixture(t, ts, "fig2")
	if info.Name != "fig2" || info.KernelBytes <= 0 || info.Source != "xml upload" {
		t.Fatalf("create info = %+v", info)
	}

	// Duplicate name conflicts, with the typed conflict code.
	var apiErr api.ErrorResponse
	resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses",
		api.CreateRequest{Name: "fig2", XML: fixtures.PaperFigure2}, &apiErr)
	if resp.StatusCode != http.StatusConflict || apiErr.Err == nil || apiErr.Err.Code != api.CodeConflict {
		t.Fatalf("duplicate create: status %d, err %+v", resp.StatusCode, apiErr.Err)
	}

	// Bad requests: no source, two sources, unknown field, bad XML.
	for _, req := range []api.CreateRequest{
		{Name: "x"},
		{Name: "x", XML: "<a/>", Dataset: "xmark"},
		{Name: "x", XML: "<a><unclosed>"},
	} {
		if resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses", req, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("create %+v: status %d, want 400", req, resp.StatusCode)
		}
	}

	// Kernel-only config is honored.
	var bare api.SynopsisInfo
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses",
		api.CreateRequest{Name: "bare", XML: fixtures.PaperFigure2, Config: &api.SynopsisConfig{KernelOnly: true}}, &bare)
	if bare.HETBytes != 0 || bare.HETTotal != 0 {
		t.Fatalf("kernel-only synopsis has HET: %+v", bare)
	}

	// File sources are disabled without a configured data dir, and confined
	// to it when one is set.
	if resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses",
		api.CreateRequest{Name: "leak", XMLFile: "/etc/hostname"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("xmlFile without data dir: status %d, want 400", resp.StatusCode)
	}
	dataDir := t.TempDir()
	if err := os.WriteFile(dataDir+"/doc.xml", []byte(fixtures.PaperFigure2), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, err := New(Config{DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	dts := httptest.NewServer(ds.Handler())
	defer dts.Close()
	if resp := doJSON(t, dts.Client(), "POST", dts.URL+"/v1/synopses",
		api.CreateRequest{Name: "fromfile", XMLFile: "doc.xml"}, nil); resp.StatusCode != http.StatusCreated {
		t.Fatalf("xmlFile inside data dir: status %d, want 201", resp.StatusCode)
	}
	var escErr api.ErrorResponse
	if resp := doJSON(t, dts.Client(), "POST", dts.URL+"/v1/synopses",
		api.CreateRequest{Name: "esc", XMLFile: "../../../etc/hostname"}, &escErr); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("path escape: status %d (%+v), want 400", resp.StatusCode, escErr.Err)
	}

	// Dataset generation source.
	var gen api.SynopsisInfo
	resp = doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses",
		api.CreateRequest{Name: "gen", Dataset: "xmark", Factor: 0.001, Seed: 7}, &gen)
	if resp.StatusCode != http.StatusCreated || gen.KernelBytes <= 0 {
		t.Fatalf("dataset create: status %d info %+v", resp.StatusCode, gen)
	}

	var list []api.SynopsisInfo
	doJSON(t, ts.Client(), "GET", ts.URL+"/v1/synopses", nil, &list)
	if len(list) != 3 || list[0].Name != "bare" || list[1].Name != "fig2" || list[2].Name != "gen" {
		t.Fatalf("list = %+v", list)
	}

	var got api.SynopsisInfo
	doJSON(t, ts.Client(), "GET", ts.URL+"/v1/synopses/fig2", nil, &got)
	if got.Name != "fig2" {
		t.Fatalf("get = %+v", got)
	}

	if resp := doJSON(t, ts.Client(), "DELETE", ts.URL+"/v1/synopses/fig2", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, ts.Client(), "GET", ts.URL+"/v1/synopses/fig2", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, ts.Client(), "DELETE", ts.URL+"/v1/synopses/fig2", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete: status %d", resp.StatusCode)
	}
}

func TestHTTPEstimateSingleBatchStreaming(t *testing.T) {
	_, ts := newTestServer(t)
	createFixture(t, ts, "fig2")

	var one api.EstimateResponse
	resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate",
		api.EstimateRequest{Query: "/a/c/s"}, &one)
	if resp.StatusCode != http.StatusOK || len(one.Results) != 1 {
		t.Fatalf("single estimate: status %d resp %+v", resp.StatusCode, one)
	}
	if one.Results[0].Cached || one.Results[0].Estimate <= 0 {
		t.Fatalf("first estimate = %+v", one.Results[0])
	}

	// Batch with a parse error in the middle: order preserved, per-item error.
	var batch api.EstimateResponse
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate",
		api.EstimateRequest{Queries: []string{"/a/c/s", "not a query ???", "//s//p"}}, &batch)
	if len(batch.Results) != 3 {
		t.Fatalf("batch results: %+v", batch.Results)
	}
	if !batch.Results[0].Cached || batch.Results[0].Estimate != one.Results[0].Estimate {
		t.Fatalf("batch[0] should be the cached single result: %+v", batch.Results[0])
	}
	if batch.Results[1].Error == nil {
		t.Fatalf("batch[1] should carry a parse error: %+v", batch.Results[1])
	}
	if batch.Results[2].Error != nil || batch.Results[2].Estimate <= 0 {
		t.Fatalf("batch[2] = %+v", batch.Results[2])
	}

	// Streaming mode reports which matcher ran; a simple path streams.
	var stream api.EstimateResponse
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate",
		api.EstimateRequest{Query: "/a/c/s/s/t", Streaming: true}, &stream)
	if !stream.Results[0].Streamed {
		t.Fatalf("simple path did not stream: %+v", stream.Results[0])
	}

	// A parse failure whose query text contains "not found" is still a 400:
	// statuses come from typed errors, not message matching.
	if resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/feedback",
		api.FeedbackRequest{Query: "//a not found (", Actual: 1}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parse error resembling not-found: status %d, want 400", resp.StatusCode)
	}

	// Unknown synopsis and empty request.
	if resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/nope/estimate",
		api.EstimateRequest{Query: "/a"}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("estimate on missing synopsis: status %d", resp.StatusCode)
	}
	if resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate",
		api.EstimateRequest{}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty estimate request: status %d", resp.StatusCode)
	}
}

func TestHTTPFeedbackAndStats(t *testing.T) {
	_, ts := newTestServer(t)
	createFixture(t, ts, "fig2")
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	const q = "/a/c/s/s/t"
	actual, err := doc.Count(q)
	if err != nil {
		t.Fatal(err)
	}

	// Warm the cache, then feed back the true cardinality.
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate", api.EstimateRequest{Query: q}, nil)
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate", api.EstimateRequest{Query: q}, nil)
	resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/feedback",
		api.FeedbackRequest{Query: q, Actual: float64(actual)}, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("feedback: status %d", resp.StatusCode)
	}

	var after api.EstimateResponse
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate", api.EstimateRequest{Query: q}, &after)
	if after.Results[0].Cached {
		t.Fatal("feedback did not invalidate the cache")
	}
	if after.Results[0].Estimate != float64(actual) {
		t.Fatalf("post-feedback estimate = %v, want %d", after.Results[0].Estimate, actual)
	}

	var st api.Stats
	doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, &st)
	if len(st.Synopses) != 1 {
		t.Fatalf("stats synopses = %+v", st.Synopses)
	}
	in := st.Synopses[0]
	if in.KernelBytes <= 0 || in.HETBytes < 0 || in.Feedbacks != 1 || in.Accuracy.N != 1 {
		t.Fatalf("synopsis stats = %+v", in)
	}
	if st.Cache.Hits < 1 || st.Cache.Misses < 1 {
		t.Fatalf("cache stats = %+v", st.Cache)
	}
	if st.TotalBytes < in.KernelBytes {
		t.Fatalf("total bytes %d < kernel %d", st.TotalBytes, in.KernelBytes)
	}
}

func TestHTTPSubtree(t *testing.T) {
	_, ts := newTestServer(t)
	var info api.SynopsisInfo
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses",
		api.CreateRequest{Name: "fig2", XML: fixtures.PaperFigure2, Config: &api.SynopsisConfig{KernelOnly: true}}, &info)

	var before api.EstimateResponse
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate", api.EstimateRequest{Query: "/a/u"}, &before)
	resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/subtree",
		api.SubtreeRequest{Op: "add", Context: []string{"a"}, XML: "<u/>"}, nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("subtree add: status %d", resp.StatusCode)
	}
	var after api.EstimateResponse
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate", api.EstimateRequest{Query: "/a/u"}, &after)
	if after.Results[0].Estimate != before.Results[0].Estimate+1 {
		t.Fatalf("estimate after add = %v, want %v", after.Results[0].Estimate, before.Results[0].Estimate+1)
	}

	if resp := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/subtree",
		api.SubtreeRequest{Op: "frobnicate"}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad op: status %d", resp.StatusCode)
	}
}

// TestHTTPSnapshotRoundtrip persists a tuned synopsis through the HTTP
// snapshot endpoints and proves the restored copy estimates identically.
func TestHTTPSnapshotRoundtrip(t *testing.T) {
	_, ts := newTestServer(t)
	createFixture(t, ts, "orig")
	queries := []string{"/a/c/s", "/a/c/s/s/t", "//s//p", "/a/c/s[p]/t", "//s[t]"}

	// Tune it so the snapshot carries feedback-learned HET state too.
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/orig/feedback",
		api.FeedbackRequest{Query: "/a/c/s", Actual: 5}, nil)

	resp, err := ts.Client().Get(ts.URL + "/v1/synopses/orig/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot get: status %d err %v", resp.StatusCode, err)
	}

	req, err := http.NewRequest("PUT", ts.URL+"/v1/synopses/copy/snapshot", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusCreated {
		t.Fatalf("snapshot put: status %d", putResp.StatusCode)
	}

	var want, got api.EstimateResponse
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/orig/estimate", api.EstimateRequest{Queries: queries}, &want)
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/copy/estimate", api.EstimateRequest{Queries: queries}, &got)
	for i := range queries {
		if want.Results[i].Estimate != got.Results[i].Estimate {
			t.Errorf("%s: original %v, restored %v", queries[i], want.Results[i].Estimate, got.Results[i].Estimate)
		}
	}

	// Garbage snapshot is rejected.
	req, _ = http.NewRequest("PUT", ts.URL+"/v1/synopses/bad/snapshot", strings.NewReader("not a synopsis"))
	badResp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage snapshot: status %d", badResp.StatusCode)
	}
}

// TestHTTPConcurrentClients exercises the full stack under parallel HTTP
// traffic mixing reads and writes (meaningful under -race).
func TestHTTPConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t)
	createFixture(t, ts, "fig2")
	queries := []string{"/a/c/s", "/a/c/s/s/t", "//s//p", "//s[t]"}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch g % 3 {
				case 0:
					doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/estimate",
						api.EstimateRequest{Queries: queries}, nil)
				case 1:
					doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/feedback",
						api.FeedbackRequest{Query: "/a/c/s", Actual: 5}, nil)
				case 2:
					doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, nil)
				}
			}
		}(g)
	}
	wg.Wait()

	var st api.Stats
	doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, &st)
	if st.Synopses[0].Feedbacks != 50 {
		t.Fatalf("feedbacks = %d, want 50", st.Synopses[0].Feedbacks)
	}
}

func TestHTTPPreloadAndServe(t *testing.T) {
	// Build a synopsis file the way `xseed build` would, then preload it.
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := syn.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	synPath := dir + "/fig2.xsd"
	xmlPath := dir + "/fig2.xml"
	if err := os.WriteFile(synPath, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(xmlPath, []byte(fixtures.PaperFigure2), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t)
	if err := Preload(s.Registry(), []string{
		fmt.Sprintf("fromsyn=%s", synPath),
		fmt.Sprintf("fromxml=%s", xmlPath),
	}); err != nil {
		t.Fatal(err)
	}
	var want, got api.EstimateResponse
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fromsyn/estimate", api.EstimateRequest{Query: "/a/c/s"}, &want)
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fromxml/estimate", api.EstimateRequest{Query: "/a/c/s"}, &got)
	if want.Results[0].Estimate != got.Results[0].Estimate {
		t.Fatalf("preloaded synopsis (%v) and XML (%v) disagree", want.Results[0].Estimate, got.Results[0].Estimate)
	}
}
