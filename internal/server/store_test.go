package server

import (
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"xseed/api"

	"xseed"
	"xseed/internal/fixtures"
)

// newStoreServer builds a server persisting to dir. Callers that simulate a
// crash simply abandon it (no Close) — delta appends are unbuffered O_APPEND
// writes, which is exactly what a kill -9 leaves behind.
func newStoreServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{CacheCapacity: 1024, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func estimateHTTP(t *testing.T, ts *httptest.Server, name, query string) float64 {
	t.Helper()
	var resp api.EstimateResponse
	r := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/"+name+"/estimate",
		api.EstimateRequest{Query: query}, &resp)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("estimate %s %s: status %d", name, query, r.StatusCode)
	}
	if resp.Results[0].Error != nil {
		t.Fatalf("estimate %s: %s", query, resp.Results[0].Error)
	}
	return resp.Results[0].Estimate
}

// TestServerStoreRestart is the end-to-end durability path over HTTP: a
// daemon with a store dir is "killed" (abandoned un-flushed) and a new one
// on the same dir must reload the registry from the manifest, replay the
// deltas, and serve identical estimates.
func TestServerStoreRestart(t *testing.T) {
	dir := t.TempDir()
	_, ts := newStoreServer(t, dir)
	createFixture(t, ts, "fig2")

	// Mutate through every persisted path: feedback, subtree, and a second
	// synopsis via snapshot upload.
	for q, actual := range map[string]float64{"/a/c/s/s/t": 2, "/a/c/s[t]/p": 7} {
		if r := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/feedback",
			api.FeedbackRequest{Query: q, Actual: actual}, nil); r.StatusCode != http.StatusNoContent {
			t.Fatalf("feedback: status %d", r.StatusCode)
		}
	}
	if r := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/subtree",
		api.SubtreeRequest{Op: "add", Context: []string{"a"}, XML: "<u/><u/>"}, nil); r.StatusCode != http.StatusNoContent {
		t.Fatalf("subtree: status %d", r.StatusCode)
	}
	queries := []string{"/a/c/s/s/t", "/a/c/s[t]/p", "/a/u", "//s//p"}
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i] = estimateHTTP(t, ts, "fig2", q)
	}

	// "kill -9": no graceful shutdown, no store close.
	ts.Close()

	s2, ts2 := newStoreServer(t, dir)
	defer s2.Close()
	infos := s2.Registry().List()
	if len(infos) != 1 || infos[0].Name != "fig2" || infos[0].Source != "xml upload" {
		t.Fatalf("restarted registry = %+v", infos)
	}
	for i, q := range queries {
		if got := estimateHTTP(t, ts2, "fig2", q); got != want[i] {
			t.Errorf("%s: post-restart %g, pre-kill %g", q, got, want[i])
		}
	}
}

// TestRegistryCrashRecoveryHammer is the acceptance criterion: kill -9 in
// the middle of a concurrent feedback hammer, restart, and every fed-back
// query must estimate exactly as it did at the moment of death.
func TestRegistryCrashRecoveryHammer(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	d, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("fig2", syn, "hammer"); err != nil {
		t.Fatal(err)
	}

	queries := []string{"/a/c/s/s/t", "/a/c/s", "/a/c/p", "/a/t", "/a/c/s/p", "/a/c/s/s", "/a/c/t", "/a/c/s[t]/p"}
	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := queries[(w+i)%len(queries)]
				if err := reg.Feedback("fig2", q, float64(1+(w*rounds+i)%17)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	e, err := reg.Get("fig2")
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(queries))
	for i, q := range queries {
		want[i], err = e.Synopsis().Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	if info := e.Info(); info.Feedbacks != workers*rounds {
		t.Fatalf("hammer applied %d feedbacks, want %d", info.Feedbacks, workers*rounds)
	}

	// Die without flushing, restart on the same dir.
	s2, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	e2, err := s2.Registry().Get("fig2")
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		got, err := e2.Synopsis().Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Errorf("%s: post-restart %g != pre-kill %g", q, got, want[i])
		}
	}
}

// TestDeleteAndReplacePersist covers the other registry shapes: a deleted
// synopsis stays deleted across restart, and a snapshot PUT replacement
// restarts as the replacement.
func TestDeleteAndReplacePersist(t *testing.T) {
	dir := t.TempDir()
	_, ts := newStoreServer(t, dir)
	createFixture(t, ts, "keep")
	createFixture(t, ts, "drop")

	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/synopses/drop", nil)
	if resp, err := ts.Client().Do(req); err != nil || resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %v %v", resp, err)
	}

	// Replace "keep" with a Figure-4 synopsis via snapshot upload.
	d, err := xseed.ParseXMLString(fixtures.PaperFigure4)
	if err != nil {
		t.Fatal(err)
	}
	syn4, err := xseed.BuildSynopsis(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if _, err := syn4.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	putReq, _ := http.NewRequest("PUT", ts.URL+"/v1/synopses/keep/snapshot", strings.NewReader(buf.String()))
	if resp, err := ts.Client().Do(putReq); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("snapshot put: %v %v", resp, err)
	}
	wantD := estimateHTTP(t, ts, "keep", "/a/b/d")
	ts.Close()

	s2, ts2 := newStoreServer(t, dir)
	defer s2.Close()
	if _, err := s2.Registry().Get("drop"); err == nil {
		t.Error("deleted synopsis resurrected by restart")
	}
	if got := estimateHTTP(t, ts2, "keep", "/a/b/d"); got != wantD {
		t.Errorf("replaced synopsis: post-restart %g, want %g", got, wantD)
	}
}

func TestAdminCompact(t *testing.T) {
	dir := t.TempDir()
	s, ts := newStoreServer(t, dir)
	defer s.Close()
	createFixture(t, ts, "fig2")
	for i := 0; i < 5; i++ {
		doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/feedback",
			api.FeedbackRequest{Query: "/a/c/s/s/t", Actual: float64(2 + i)}, nil)
	}
	want := estimateHTTP(t, ts, "fig2", "/a/c/s/s/t")

	var resp api.CompactResponse
	if r := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/admin/compact", nil, &resp); r.StatusCode != http.StatusOK {
		t.Fatalf("compact: status %d", r.StatusCode)
	}
	if len(resp.Compacted) != 1 || resp.Compacted[0] != "fig2" {
		t.Errorf("compacted = %v", resp.Compacted)
	}
	if len(resp.Store.Synopses) != 1 || resp.Store.Synopses[0].DeltaBytes != 0 || resp.Store.Synopses[0].Compactions != 1 {
		t.Errorf("store stats after compact = %+v", resp.Store.Synopses)
	}
	if got := estimateHTTP(t, ts, "fig2", "/a/c/s/s/t"); got != want {
		t.Errorf("compaction changed estimate: %g != %g", got, want)
	}

	// Stats exposes the store section.
	var stats api.Stats
	doJSON(t, ts.Client(), "GET", ts.URL+"/v1/stats", nil, &stats)
	if stats.Store == nil || len(stats.Store.Synopses) != 1 {
		t.Errorf("stats.store = %+v", stats.Store)
	}

	// Unknown synopsis 404s; a store-less server 409s.
	if r := doJSON(t, ts.Client(), "POST", ts.URL+"/v1/admin/compact?synopsis=nope", nil, nil); r.StatusCode != http.StatusNotFound {
		t.Errorf("compact unknown: status %d", r.StatusCode)
	}
	_, plain := newTestServer(t)
	if r := doJSON(t, plain.Client(), "POST", plain.URL+"/v1/admin/compact", nil, nil); r.StatusCode != http.StatusConflict {
		t.Errorf("compact without store: status %d", r.StatusCode)
	}
}

// TestPutRetiresOldEntry pins the replacement protocol: an entry leaving
// the registry (Put replacement or Delete) is marked retired so mutations
// that captured it earlier skip persisting into the successor's log.
func TestPutRetiresOldEntry(t *testing.T) {
	s, err := New(Config{StoreDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := s.Registry()
	build := func() *xseed.Synopsis {
		d, err := xseed.ParseXMLString(fixtures.PaperFigure2)
		if err != nil {
			t.Fatal(err)
		}
		syn, err := xseed.BuildSynopsis(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		return syn
	}
	if _, err := reg.Add("x", build(), "v1"); err != nil {
		t.Fatal(err)
	}
	old, err := reg.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Put("x", build(), "v2"); err != nil {
		t.Fatal(err)
	}
	if !old.retired.Load() {
		t.Error("replaced entry not retired")
	}
	cur, err := reg.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	if cur.retired.Load() {
		t.Error("live entry marked retired")
	}
	if err := reg.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if !cur.retired.Load() {
		t.Error("deleted entry not retired")
	}
}

// TestPutFeedbackRaceRecovery races snapshot replacements against feedback
// on the same name, then restarts from the store: the recovered synopsis
// must estimate exactly like the live winner (a stale entry's delta leaking
// into the new generation's log would diverge them).
func TestPutFeedbackRaceRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	build := func() *xseed.Synopsis {
		d, err := xseed.ParseXMLString(fixtures.PaperFigure2)
		if err != nil {
			t.Fatal(err)
		}
		syn, err := xseed.BuildSynopsis(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		return syn
	}
	if _, err := reg.Add("x", build(), "v0"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if _, err := reg.Put("x", build(), "replacement"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			// Feedback may race a replacement; only hard failures matter.
			if err := reg.Feedback("x", "/a/c/s/s/t", float64(1+i%7)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	live, err := reg.Get("x")
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{"/a/c/s/s/t", "/a/c/s", "//s//p"}
	want := make([]float64, len(queries))
	for i, q := range queries {
		if want[i], err = live.Synopsis().Estimate(q); err != nil {
			t.Fatal(err)
		}
	}

	s2, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec, err := s2.Registry().Get("x")
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		got, err := rec.Synopsis().Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Errorf("%s: recovered %g != live %g", q, got, want[i])
		}
	}
}

// TestPreloadWithStoreRestart pins the -store-dir + -synopsis combination:
// on restart the restored synopsis (which carries absorbed feedback) must
// win over the preload spec instead of failing with "already exists".
func TestPreloadWithStoreRestart(t *testing.T) {
	dir := t.TempDir()
	xmlPath := dir + "/fig2.xml"
	if err := os.WriteFile(xmlPath, []byte(fixtures.PaperFigure2), 0o644); err != nil {
		t.Fatal(err)
	}
	specs := []string{"fig2=" + xmlPath}
	storeDir := t.TempDir()

	s, err := New(Config{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	if err := Preload(s.Registry(), specs); err != nil {
		t.Fatal(err)
	}
	if err := s.Registry().Feedback("fig2", "/a/c/s/s/t", 2); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{StoreDir: storeDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := Preload(s2.Registry(), specs); err != nil {
		t.Fatalf("second boot with same preload: %v", err)
	}
	e, err := s2.Registry().Get("fig2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.Synopsis().Estimate("/a/c/s/s/t")
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("restored synopsis lost to preload: estimate %g, want fed-back 2", got)
	}
}

// TestRunListenError pins the satellite fix: a taken port must surface as a
// non-nil error from Run/RunCLI (which main prints to stderr with exit 1),
// never a silent exit.
func TestRunListenError(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()
	err = RunCLI("test", []string{"-addr", addr})
	if err == nil {
		t.Fatal("RunCLI on a taken port returned nil")
	}
	if !strings.Contains(err.Error(), "listen") {
		t.Errorf("error %q does not mention the listener", err)
	}
}

// TestRunCLIFsck drives the -store-fsck mode end to end.
func TestRunCLIFsck(t *testing.T) {
	if err := RunCLI("test", []string{"-store-fsck"}); err == nil {
		t.Error("-store-fsck without -store-dir succeeded")
	}
	dir := t.TempDir()
	s, ts := newStoreServer(t, dir)
	createFixture(t, ts, "fig2")
	doJSON(t, ts.Client(), "POST", ts.URL+"/v1/synopses/fig2/feedback",
		api.FeedbackRequest{Query: "/a/c/s/s/t", Actual: 2}, nil)
	s.Close()
	ts.Close()
	if err := RunCLI("test", []string{"-store-fsck", "-store-dir", dir}); err != nil {
		t.Errorf("fsck of healthy store: %v", err)
	}
	if err := RunCLI("test", []string{"-store-fsck", "-store-dir", t.TempDir()}); err == nil {
		t.Error("fsck of store-less dir succeeded")
	}
}

// TestStoreBudgetRebalancePersists: registering a second synopsis under an
// aggregate budget rebalances the first; the budget deltas must survive
// restart so the resident HET sets (and therefore estimates) match.
func TestStoreBudgetRebalancePersists(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{StoreDir: dir, AggregateBudgetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	reg := s.Registry()
	for _, name := range []string{"one", "two"} {
		d, err := xseed.ParseXMLString(fixtures.PaperFigure2)
		if err != nil {
			t.Fatal(err)
		}
		syn, err := xseed.BuildSynopsis(d, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Add(name, syn, "test"); err != nil {
			t.Fatal(err)
		}
	}
	// Budgets are applied by the background rebalancer; drain it so the
	// resident sets (and the persisted budget deltas) are settled.
	reg.waitRebalanced()
	var wantRes [2]int
	for i, name := range []string{"one", "two"} {
		e, _ := reg.Get(name)
		wantRes[i], _ = e.Synopsis().HETEntries()
	}

	s2, err := New(Config{StoreDir: dir, AggregateBudgetBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i, name := range []string{"one", "two"} {
		e, err := s2.Registry().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := e.Synopsis().HETEntries(); got != wantRes[i] {
			t.Errorf("%s: resident HET after restart = %d, want %d", name, got, wantRes[i])
		}
	}
}
