package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xseed/api"
	"xseed/internal/obs"
	"xseed/internal/store"
)

// Tenancy model. A TenantSet resolves bearer tokens to tenants and owns the
// per-tenant quota state; every registry Entry holds its tenant pointer, so
// the hot paths (estimate, feedback, cache fills) reach quota counters with
// one indirection and zero lookups. An untenanted server (no -tenants flag)
// runs on a disabled set whose single default tenant has no token, no
// quotas, and inert metric handles — the tenancy plumbing then costs the
// request path nothing observable, which is what keeps single-tenant
// behavior byte-identical.

// TenantConfig is one entry of the -tenants JSON file: an array of
//
//	{"id": "acme", "token": "s3cret", "budgetBytes": 0, "cacheQuota": 0,
//	 "ratePerSec": 0, "burst": 0}
//
// objects. Zero values mean "no private limit": the tenant shares the
// fleet-wide budget, uses the cache without a quota, and is not rate
// limited. An entry with id "default" configures the default tenant — the
// one tokenless requests resolve to, and the only one allowed to call the
// admin routes (budget, compact) on a tenanted server.
type TenantConfig struct {
	ID          string  `json:"id"`
	Token       string  `json:"token"`
	BudgetBytes int     `json:"budgetBytes,omitempty"`
	CacheQuota  int     `json:"cacheQuota,omitempty"`
	RatePerSec  float64 `json:"ratePerSec,omitempty"`
	Burst       float64 `json:"burst,omitempty"`
}

// LoadTenantsFile reads a -tenants JSON file.
func LoadTenantsFile(path string) ([]TenantConfig, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cfgs []TenantConfig
	if err := json.Unmarshal(b, &cfgs); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	return cfgs, nil
}

// validTenantID accepts 1..40 bytes: an alphanumeric first byte, then
// alphanumerics plus "._-". That keeps IDs usable verbatim as store
// directory names and metric label values, and excludes the NUL the
// (tenant, name) key scheme reserves as its separator.
func validTenantID(id string) bool {
	if len(id) == 0 || len(id) > 40 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case (c == '.' || c == '_' || c == '-') && i > 0:
		default:
			return false
		}
	}
	return true
}

// tenStripe spaces per-shard counter slots a cache line apart so two shards
// bumping one tenant's counters never ping-pong a line.
const tenStripe = 8

// stripedCount is a per-cache-shard counter: each shard writes only its own
// slot (while already holding that shard's mutex), so the estimate path adds
// tenant accounting without any cross-shard contention; readers sum.
type stripedCount [numShards * tenStripe]atomic.Int64

func (s *stripedCount) add(shard int) { s[shard*tenStripe].Add(1) }

func (s *stripedCount) load() int64 {
	var n int64
	for i := 0; i < numShards; i++ {
		n += s[i*tenStripe].Load()
	}
	return n
}

// Tenant is one isolated namespace: its synopses, budget, cache quota, and
// rate limit. The zero-quota default tenant of an untenanted server is also
// a Tenant, so no path needs a nil check to mean "tenancy off".
type Tenant struct {
	id    string
	token string // empty: unreachable via Authorization (default, or orphaned store tenant)

	// budget is the tenant's private synopsis-memory budget in bytes; 0
	// means it shares the fleet-wide budget. The rebalance planner groups
	// entries by budget domain, so changing this re-partitions only this
	// tenant's synopses.
	budget atomic.Int64

	// cacheQuota caps how many estimate-cache entries (estimates and
	// compiled plans) this tenant may occupy fleet-wide; 0 = uncapped. The
	// quota is split across shards the way capacity is, and an over-quota
	// fill evicts the tenant's own LRU entry — never a neighbor's.
	cacheQuota int

	// Token bucket for the estimate/feedback paths; rate <= 0 = unlimited
	// (the fast path is one predictable branch).
	rlRate  float64
	rlBurst float64
	rlMu    sync.Mutex
	rlTok   float64
	rlLast  time.Time

	rateLimited atomic.Int64

	hits, misses stripedCount // estimate-cache lookups (shard-striped)

	reqs *obs.Counter   // xseed_tenant_requests_total{tenant}
	qerr *obs.Histogram // xseed_tenant_qerror{tenant}
}

// ID returns the tenant's identifier.
func (t *Tenant) ID() string { return t.id }

// allow takes one token from the tenant's bucket, reporting false (and
// counting the rejection) when the bucket is empty.
func (t *Tenant) allow() bool { return t.allowN(1) }

// allowN takes n tokens atomically: all or nothing, so a batch of n events
// costs exactly n single events and cannot slip under the limit. A batch
// larger than the burst capacity can never be admitted — callers split or
// are rejected, by design.
func (t *Tenant) allowN(n int) bool {
	if t == nil || t.rlRate <= 0 || n <= 0 {
		return true
	}
	now := time.Now()
	t.rlMu.Lock()
	t.rlTok += now.Sub(t.rlLast).Seconds() * t.rlRate
	t.rlLast = now
	if t.rlTok > t.rlBurst {
		t.rlTok = t.rlBurst
	}
	if t.rlTok < float64(n) {
		t.rlMu.Unlock()
		t.rateLimited.Add(1)
		return false
	}
	t.rlTok -= float64(n)
	t.rlMu.Unlock()
	return true
}

// quotaForShard splits the tenant's cache quota across shards the way
// NewCache splits capacity, so the fleet-wide bound is exact.
func (t *Tenant) quotaForShard(shard int) int {
	base, rem := t.cacheQuota/numShards, t.cacheQuota%numShards
	if shard < rem {
		return base + 1
	}
	return base
}

// TenantSet resolves tokens and IDs to tenants. Immutable after
// construction except for getOrCreate, which only ever adds tokenless
// tenants discovered in a migrated store.
type TenantSet struct {
	enabled bool
	def     *Tenant

	mu      sync.RWMutex
	byID    map[string]*Tenant
	byToken map[string]*Tenant

	om      *obs.Registry
	reqVec  *obs.CounterVec
	qerrVec *obs.HistogramVec
	hitsVec *obs.CounterFuncVec
	missVec *obs.CounterFuncVec
	rlVec   *obs.CounterFuncVec
}

// noTenants is the disabled set an untenanted server runs on: one default
// tenant, no tokens, inert metrics.
func noTenants() *TenantSet {
	ts := &TenantSet{
		byID:    make(map[string]*Tenant),
		byToken: make(map[string]*Tenant),
		om:      obs.Disabled,
	}
	ts.wireVecs()
	ts.def = ts.newTenant(TenantConfig{ID: store.DefaultTenant})
	return ts
}

// NewTenantSet builds an enabled set from the -tenants config. The default
// tenant always exists; a config entry with id "default" gives it a token
// and limits. Duplicate IDs or tokens and invalid IDs are rejected.
func NewTenantSet(om *obs.Registry, cfgs []TenantConfig) (*TenantSet, error) {
	if om == nil {
		om = obs.Disabled
	}
	ts := &TenantSet{
		enabled: true,
		byID:    make(map[string]*Tenant),
		byToken: make(map[string]*Tenant),
		om:      om,
	}
	ts.wireVecs()
	for _, cfg := range cfgs {
		if !validTenantID(cfg.ID) {
			return nil, fmt.Errorf("tenant id %q invalid (1-40 chars of [A-Za-z0-9._-], leading alphanumeric)", cfg.ID)
		}
		if _, dup := ts.byID[cfg.ID]; dup {
			return nil, fmt.Errorf("tenant id %q configured twice", cfg.ID)
		}
		if cfg.Token != "" {
			if _, dup := ts.byToken[cfg.Token]; dup {
				return nil, fmt.Errorf("tenant %q: token already assigned to another tenant", cfg.ID)
			}
		}
		ts.newTenant(cfg)
	}
	if ts.byID[store.DefaultTenant] == nil {
		ts.newTenant(TenantConfig{ID: store.DefaultTenant})
	}
	ts.def = ts.byID[store.DefaultTenant]
	return ts, nil
}

func (ts *TenantSet) wireVecs() {
	ts.reqVec = ts.om.CounterVec("xseed_tenant_requests_total",
		"API requests by tenant (HTTP and xtp).", "tenant")
	ts.qerrVec = ts.om.HistogramVec("xseed_tenant_qerror",
		"Per-tenant q-error (max(est/actual, actual/est)) observed via feedback.",
		obs.HistogramOpts{Scale: qerrScale, SubBits: 2, MaxExp: 40}, "tenant")
	ts.hitsVec = ts.om.CounterFuncVec("xseed_tenant_cache_hits_total",
		"Estimate-result cache hits by tenant. Reads the same striped counters /v1/stats serves.", "tenant")
	ts.missVec = ts.om.CounterFuncVec("xseed_tenant_cache_misses_total",
		"Estimate-result cache misses by tenant. Reads the same striped counters /v1/stats serves.", "tenant")
	ts.rlVec = ts.om.CounterFuncVec("xseed_tenant_rate_limited_total",
		"Requests rejected by the tenant's token-bucket rate limit.", "tenant")
}

// newTenant builds a tenant, indexes it, and resolves its metric children
// once (the hot paths then never touch label maps). Caller must hold ts.mu
// or have exclusive access (construction).
func (ts *TenantSet) newTenant(cfg TenantConfig) *Tenant {
	t := &Tenant{
		id:         cfg.ID,
		token:      cfg.Token,
		cacheQuota: cfg.CacheQuota,
		rlRate:     cfg.RatePerSec,
		rlBurst:    cfg.Burst,
		rlLast:     time.Now(),
	}
	if t.rlRate > 0 && t.rlBurst < 1 {
		t.rlBurst = t.rlRate // default burst: one second's worth
	}
	t.rlTok = t.rlBurst
	t.budget.Store(int64(cfg.BudgetBytes))
	t.reqs = ts.reqVec.With(t.id)
	t.qerr = ts.qerrVec.With(t.id)
	ts.hitsVec.With(t.hits.load0, t.id)
	ts.missVec.With(t.misses.load0, t.id)
	ts.rlVec.With(func() uint64 { return uint64(t.rateLimited.Load()) }, t.id)
	ts.byID[t.id] = t
	if t.token != "" {
		ts.byToken[t.token] = t
	}
	return t
}

// load0 adapts a stripedCount to the CounterFuncVec signature.
func (s *stripedCount) load0() uint64 { return uint64(s.load()) }

// Enabled reports whether token resolution is on (-tenants given).
func (ts *TenantSet) Enabled() bool { return ts.enabled }

// Default returns the default tenant.
func (ts *TenantSet) Default() *Tenant { return ts.def }

// lookup returns the tenant with the given ID, or nil.
func (ts *TenantSet) lookup(id string) *Tenant {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return ts.byID[id]
}

// getOrCreate returns the tenant for id, creating a tokenless one when a
// store directory references a tenant the config no longer lists: its data
// stays registered (and persists) but is unreachable over the API until an
// operator re-adds a token for it.
func (ts *TenantSet) getOrCreate(id string) *Tenant {
	if id == "" || id == store.DefaultTenant {
		return ts.def
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t, ok := ts.byID[id]; ok {
		return t
	}
	return ts.newTenant(TenantConfig{ID: id})
}

// forKey resolves the tenant owning a qualified (tenant NUL name) key.
func (ts *TenantSet) forKey(key string) *Tenant {
	ten, _ := store.SplitKey(key)
	return ts.getOrCreate(ten)
}

// resolveToken maps a bearer token to its tenant.
func (ts *TenantSet) resolveToken(token string) (*Tenant, *api.Error) {
	ts.mu.RLock()
	t := ts.byToken[token]
	ts.mu.RUnlock()
	if t == nil {
		return nil, api.Errorf(api.CodeUnauthorized, "unknown bearer token")
	}
	return t, nil
}

// resolveXTP maps an xtp AuthReq token to its tenant, mirroring resolveHTTP:
// with tenancy disabled any token resolves to the default tenant; enabled, an
// empty token is the default (the tokenless-client rule) and an unknown one
// is unauthorized — terminal for the connection (docs/PROTOCOL.md §4.9).
func (ts *TenantSet) resolveXTP(token string) (*Tenant, *api.Error) {
	if !ts.enabled || token == "" {
		return ts.def, nil
	}
	return ts.resolveToken(token)
}

// resolveHTTP maps a request to its tenant. With tenancy disabled every
// request — headers or not — is the default tenant, preserving untenanted
// behavior exactly. Enabled, a missing Authorization header still resolves
// to the default tenant (today's tokenless clients keep working); a header
// that is present but malformed or unknown is unauthorized.
func (ts *TenantSet) resolveHTTP(req *http.Request) (*Tenant, *api.Error) {
	if !ts.enabled {
		return ts.def, nil
	}
	h := req.Header.Get("Authorization")
	if h == "" {
		return ts.def, nil
	}
	tok, ok := strings.CutPrefix(h, "Bearer ")
	if !ok {
		return nil, api.Errorf(api.CodeUnauthorized, "malformed Authorization header (want: Bearer <token>)")
	}
	return ts.resolveToken(strings.TrimSpace(tok))
}

// all returns every known tenant, sorted by ID.
func (ts *TenantSet) all() []*Tenant {
	ts.mu.RLock()
	out := make([]*Tenant, 0, len(ts.byID))
	for _, t := range ts.byID {
		out = append(out, t)
	}
	ts.mu.RUnlock()
	for i := 1; i < len(out); i++ { // insertion sort: tenant counts are small
		for j := i; j > 0 && out[j].id < out[j-1].id; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// seriesFor maps a registry key onto the label value its per-synopsis
// metric series use: the bare name for the default tenant (byte-compatible
// with pre-tenancy exposition), "tenant/name" otherwise.
func seriesFor(key string) string {
	ten, bare := store.SplitKey(key)
	if ten == store.DefaultTenant {
		return bare
	}
	return ten + "/" + bare
}
