package server

import (
	"testing"
	"time"
)

// rateTenant builds a one-tenant set and returns the tenant.
func rateTenant(t *testing.T, cfg TenantConfig) *Tenant {
	t.Helper()
	if cfg.ID == "" {
		cfg.ID = "acme"
	}
	if cfg.Token == "" {
		cfg.Token = "tok-acme"
	}
	ts, err := NewTenantSet(nil, []TenantConfig{cfg})
	if err != nil {
		t.Fatal(err)
	}
	ten := ts.byID[cfg.ID]
	if ten == nil {
		t.Fatalf("tenant %q not indexed", cfg.ID)
	}
	return ten
}

// drain counts how many consecutive requests the bucket allows right now.
func drain(t *testing.T, ten *Tenant, max int) int {
	t.Helper()
	for i := 0; i < max; i++ {
		if !ten.allow() {
			return i
		}
	}
	return max
}

// rewind moves the bucket's refill clock back, simulating elapsed time
// without sleeping.
func rewind(ten *Tenant, d time.Duration) {
	ten.rlMu.Lock()
	ten.rlLast = ten.rlLast.Add(-d)
	ten.rlMu.Unlock()
}

// TestTenantFlatRateDefaultsBurstToRate pins the pre-burst contract: a
// config that sets ratePerSec without burst gets exactly one second's
// worth of immediate capacity — the behavior every flat-rate deployment
// shipped with. A change to this default is a breaking config change.
func TestTenantFlatRateDefaultsBurstToRate(t *testing.T) {
	ten := rateTenant(t, TenantConfig{RatePerSec: 10})
	if ten.rlBurst != 10 {
		t.Fatalf("flat-rate burst = %g, want defaulted to rate 10", ten.rlBurst)
	}
	if got := drain(t, ten, 100); got != 10 {
		t.Fatalf("flat-rate config allowed %d immediate requests, want exactly 10", got)
	}
	if ten.rateLimited.Load() != 1 {
		t.Fatalf("rateLimited = %d, want 1", ten.rateLimited.Load())
	}
	// Sustained rate: a second of refill buys another second's worth.
	rewind(ten, time.Second)
	if got := drain(t, ten, 100); got != 10 {
		t.Fatalf("after 1s refill allowed %d, want 10", got)
	}
}

// TestTenantSubUnitBurstClampsToRate: a burst below one token cannot
// admit any request, so it falls back to the flat-rate default rather
// than configuring a tenant into a silent total outage.
func TestTenantSubUnitBurstClampsToRate(t *testing.T) {
	ten := rateTenant(t, TenantConfig{RatePerSec: 3, Burst: 0.5})
	if ten.rlBurst != 3 {
		t.Fatalf("sub-unit burst = %g, want clamped to rate 3", ten.rlBurst)
	}
	if got := drain(t, ten, 10); got != 3 {
		t.Fatalf("allowed %d immediate requests, want 3", got)
	}
}

// TestTenantBurstAboveRate: burst > rate admits the configured spike at
// once, then throttles to the sustained rate — and idle time never
// accumulates capacity past the burst ceiling.
func TestTenantBurstAboveRate(t *testing.T) {
	ten := rateTenant(t, TenantConfig{RatePerSec: 5, Burst: 20})
	if got := drain(t, ten, 100); got != 20 {
		t.Fatalf("burst admitted %d immediate requests, want 20", got)
	}
	// Sustained: one second refills rate (5), not burst (20) tokens.
	rewind(ten, time.Second)
	if got := drain(t, ten, 100); got != 5 {
		t.Fatalf("after 1s the bucket admitted %d, want sustained rate 5", got)
	}
	// A long idle stretch caps at the burst ceiling.
	rewind(ten, time.Hour)
	if got := drain(t, ten, 1000); got != 20 {
		t.Fatalf("after an idle hour the bucket admitted %d, want burst cap 20", got)
	}
}

// TestTenantZeroRateUnlimited: rate 0 disables limiting even with a
// burst configured — burst shapes a limit, it does not create one.
func TestTenantZeroRateUnlimited(t *testing.T) {
	ten := rateTenant(t, TenantConfig{Burst: 50})
	if got := drain(t, ten, 10000); got != 10000 {
		t.Fatalf("unlimited tenant denied a request after %d", got)
	}
	if ten.rateLimited.Load() != 0 {
		t.Fatalf("rateLimited = %d, want 0", ten.rateLimited.Load())
	}
}
