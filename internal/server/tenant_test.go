package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/fixtures"
	"xseed/internal/store"
)

// tenantTestSynopsis builds one fig2 synopsis for registry-level tests.
func tenantTestSynopsis(t testing.TB) *xseed.Synopsis {
	t.Helper()
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return syn
}

// TestTenantDefaultByteCompat is the compatibility lock for the tenancy
// rollout: a tokenless client against a -tenants server must see responses
// identical to an untenanted server's — same status, same normalized body —
// on every route it exercises. The single allowed divergence is the
// documented "tenants" rollup array inside /v1/stats, which normalization
// strips alongside the volatile "created" timestamps.
func TestTenantDefaultByteCompat(t *testing.T) {
	mk := func(tenants []TenantConfig) *httptest.Server {
		s, err := New(Config{CacheCapacity: 64, Tenants: tenants})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { s.Close() })
		return ts
	}
	plain := mk(nil)
	tenanted := mk([]TenantConfig{{ID: "acme", Token: "acme-tok"}})

	stripTenants := func(body string) string {
		var v map[string]any
		if err := jsonUnmarshal(body, &v); err != nil {
			return body
		}
		delete(v, "tenants")
		// costSavedNs is wall-clock-derived (nanoseconds saved by cache
		// hits) and so never byte-stable between two servers.
		if c, ok := v["cache"].(map[string]any); ok {
			delete(c, "costSavedNs")
		}
		return string(mustJSON(t, v))
	}

	steps := []struct {
		method, path string
		body         string
	}{
		{"GET", "/v1/healthz", ""},
		{"POST", "/v1/synopses", fmt.Sprintf(`{"name":"fig2","xml":%q}`, fixtures.PaperFigure2)},
		{"GET", "/v1/synopses", ""},
		{"GET", "/v1/synopses/fig2", ""},
		{"POST", "/v1/synopses/fig2/estimate", `{"queries":["/a/c/s","//s//p"]}`},
		{"POST", "/v1/synopses/fig2/estimate", `{"queries":["/a/c/s"]}`}, // warm-cache path
		{"POST", "/v1/synopses/fig2/feedback", `{"query":"/a/c/s","actual":5}`},
		{"POST", "/v1/synopses/nope/estimate", `{"queries":["/a"]}`}, // not_found parity
		{"GET", "/v1/synopses/nope", ""},
		{"POST", "/v1/admin/budget", `{"bytes":1000000}`},
		{"POST", "/v1/admin/compact", ""},
		{"GET", "/v1/stats", ""},
		{"DELETE", "/v1/synopses/fig2", ""},
	}
	for _, stp := range steps {
		run := func(ts *httptest.Server) (int, string) {
			var rd io.Reader
			if stp.body != "" {
				rd = strings.NewReader(stp.body)
			}
			req, err := http.NewRequest(stp.method, ts.URL+stp.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ts.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			return resp.StatusCode, stripTenants(normalizeBody(t, b))
		}
		wantStatus, wantBody := run(plain)
		gotStatus, gotBody := run(tenanted)
		if gotStatus != wantStatus {
			t.Errorf("%s %s: tenanted status %d, untenanted %d", stp.method, stp.path, gotStatus, wantStatus)
		}
		if gotBody != wantBody {
			t.Errorf("%s %s: tokenless bodies diverge\n tenanted:   %s\n untenanted: %s",
				stp.method, stp.path, gotBody, wantBody)
		}
	}
}

func jsonUnmarshal(s string, v any) error {
	return json.Unmarshal([]byte(s), v)
}

// TestTenantCrossNamespaceIsolation: one tenant's synopsis names do not
// resolve in another's namespace — not over HTTP, and not via NUL-forged
// names trying to alias a foreign tenant's key.
func TestTenantCrossNamespaceIsolation(t *testing.T) {
	s, err := New(Config{CacheCapacity: 64, Tenants: []TenantConfig{
		{ID: "acme", Token: "acme-tok"},
		{ID: "rival", Token: "rival-tok"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })

	do := func(token, method, path, body string) (int, string) {
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if st, body := do("acme-tok", "POST", "/v1/synopses",
		fmt.Sprintf(`{"name":"doc","xml":%q}`, fixtures.PaperFigure2)); st != http.StatusCreated {
		t.Fatalf("acme create: %d %s", st, body)
	}
	// Same bare name is free in every other namespace.
	if st, body := do("rival-tok", "POST", "/v1/synopses",
		fmt.Sprintf(`{"name":"doc","xml":%q}`, fixtures.PaperFigure2)); st != http.StatusCreated {
		t.Fatalf("rival create of same bare name: %d %s", st, body)
	}
	// A tenant sees only its own listing.
	for _, tok := range []string{"acme-tok", "rival-tok"} {
		if st, body := do(tok, "GET", "/v1/synopses", ""); st != http.StatusOK || strings.Count(body, `"name"`) != 1 {
			t.Fatalf("%s listing: %d %s, want exactly its own synopsis", tok, st, body)
		}
	}
	// The default tenant does not see either, and deleting by bare name 404s.
	if st, body := do("", "GET", "/v1/synopses/doc", ""); st != http.StatusNotFound {
		t.Fatalf("default tenant reads acme's synopsis: %d %s", st, body)
	}
	// NUL-forged names cannot alias a qualified key from another namespace.
	forged := "/v1/synopses/acme%00doc"
	if st, body := do("", "GET", forged, ""); st != http.StatusBadRequest {
		t.Fatalf("NUL-forged name: %d %s, want 400", st, body)
	}
	// Tenant-scoped estimate works against its own copy.
	if st, body := do("acme-tok", "POST", "/v1/synopses/doc/estimate", `{"queries":["/a/c/s"]}`); st != http.StatusOK {
		t.Fatalf("acme estimate: %d %s", st, body)
	}
}

// TestTenantIsolationHammer is the noisy-neighbor test (run under -race in
// CI): tenant "noisy" floods feedback writes and distinct-query cache fills
// while tenant "victim" replays a tiny query set. Isolation holds when the
// victim's requests all succeed, its cache hit rate stays high (the noisy
// tenant's quota makes it evict its own entries, never the victim's), the
// noisy tenant's cache occupancy respects its quota, and the victim's
// latency stays bounded.
func TestTenantIsolationHammer(t *testing.T) {
	const noisyQuota = 32
	s, err := New(Config{CacheCapacity: 4096, Tenants: []TenantConfig{
		{ID: "noisy", Token: "noisy-tok", CacheQuota: noisyQuota},
		{ID: "victim", Token: "victim-tok"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	reg := s.Registry()
	ts := reg.Tenants()
	noisy, victim := ts.lookup("noisy"), ts.lookup("victim")

	if _, err := reg.Add(store.Key("noisy", "doc"), tenantTestSynopsis(t), "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add(store.Key("victim", "doc"), tenantTestSynopsis(t), "test"); err != nil {
		t.Fatal(err)
	}
	victimQueries := []string{"/a/c/s", "//s//p", "/a/b", "//c/s"}
	// Warm the victim's working set so the steady state is all hits.
	for _, q := range victimQueries {
		if _, err := reg.EstimateBatch(context.Background(), store.Key("victim", "doc"), []string{q}, false); err != nil {
			t.Fatal(err)
		}
	}
	h0, m0 := victim.hits.load(), victim.misses.load()

	const hammerWorkers, hammerIters = 4, 300
	var wg sync.WaitGroup
	for w := 0; w < hammerWorkers; w++ {
		wg.Add(1)
		go func(w int) { // noisy: distinct-query cache fills
			defer wg.Done()
			for i := 0; i < hammerIters; i++ {
				q := fmt.Sprintf("/a/c/s%d_%d", w, i)
				if _, err := reg.EstimateBatch(context.Background(), store.Key("noisy", "doc"), []string{q}, false); err != nil {
					t.Errorf("noisy estimate: %v", err)
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() { // noisy: feedback flood
			defer wg.Done()
			for i := 0; i < hammerIters; i++ {
				if err := reg.Feedback(store.Key("noisy", "doc"), "/a/c/s", float64(1+i%7)); err != nil {
					t.Errorf("noisy feedback: %v", err)
					return
				}
			}
		}()
	}
	var victimLat []time.Duration
	wg.Add(1)
	go func() { // victim: steady reads over its warmed set
		defer wg.Done()
		for i := 0; i < hammerWorkers*hammerIters/2; i++ {
			q := victimQueries[i%len(victimQueries)]
			start := time.Now()
			items, err := reg.EstimateBatch(context.Background(), store.Key("victim", "doc"), []string{q}, false)
			victimLat = append(victimLat, time.Since(start))
			if err != nil || items[0].Error != nil {
				t.Errorf("victim estimate %q: %v %v", q, err, items[0].Error)
				return
			}
		}
	}()
	wg.Wait()

	if got := reg.cache.TenantEntries(noisy); got > noisyQuota {
		t.Errorf("noisy tenant holds %d cache entries, quota is %d", got, noisyQuota)
	}
	hits, misses := victim.hits.load()-h0, victim.misses.load()-m0
	if tot := hits + misses; tot == 0 || float64(hits)/float64(tot) < 0.95 {
		t.Errorf("victim hit rate %d/%d under flood; noisy neighbor evicted its working set", hits, tot)
	}
	sort.Slice(victimLat, func(i, j int) bool { return victimLat[i] < victimLat[j] })
	if p99 := victimLat[len(victimLat)*99/100]; p99 > 250*time.Millisecond {
		// Generous absolute bound: cached estimates are microseconds; only a
		// victim serialized behind the flood would get anywhere near it.
		t.Errorf("victim p99 = %v under flood", p99)
	}
}

// TestCacheTenantQuotaBounds pins quota mechanics at the cache layer: an
// over-quota tenant evicts its own LRU entry (fleet occupancy permitting),
// other tenants' entries are untouched, and plan entries count against the
// same quota.
func TestCacheTenantQuotaBounds(t *testing.T) {
	ts, err := NewTenantSet(nil, []TenantConfig{
		{ID: "capped", Token: "a", CacheQuota: numShards}, // one entry per shard
		{ID: "free", Token: "b"},
	})
	if err != nil {
		t.Fatal(err)
	}
	capped, free := ts.lookup("capped"), ts.lookup("free")
	c := NewCache(numShards * 64)

	for i := 0; i < numShards*8; i++ {
		c.Put("syn", fmt.Sprintf("/q%d", i), EstimateResult{Est: float64(i)}, capped)
		c.Put("syn", fmt.Sprintf("/free%d", i), EstimateResult{Est: float64(i)}, free)
	}
	if got := c.TenantEntries(capped); got > numShards {
		t.Errorf("capped tenant occupies %d entries, quota %d", got, numShards)
	}
	if got := c.TenantEntries(free); got != numShards*8 {
		t.Errorf("unquota'd tenant occupies %d entries, want %d untouched", got, numShards*8)
	}
	// The capped tenant still caches: its newest entry is resident.
	last := fmt.Sprintf("/q%d", numShards*8-1)
	if _, ok := c.Get("syn", last, capped); !ok {
		t.Errorf("capped tenant's most recent entry was not cached")
	}
}

// TestTenantStatsRollups: the default tenant's /v1/stats carries per-tenant
// rollups on a tenanted server, scoped stats carry only the caller's view,
// and the rollup numbers agree with the tenants' own counters.
func TestTenantStatsRollups(t *testing.T) {
	s, err := New(Config{CacheCapacity: 256, Tenants: []TenantConfig{
		{ID: "acme", Token: "acme-tok", CacheQuota: 17},
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	reg := s.Registry()
	acme := reg.Tenants().lookup("acme")

	if _, err := reg.Add(store.Key("acme", "doc"), tenantTestSynopsis(t), "test"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // one miss, one hit
		if _, err := reg.EstimateBatch(context.Background(), store.Key("acme", "doc"), []string{"/a/c/s"}, false); err != nil {
			t.Fatal(err)
		}
	}

	admin := reg.StatsFor(nil)
	var acmeRoll *api.TenantStats
	for i := range admin.Tenants {
		if admin.Tenants[i].ID == "acme" {
			acmeRoll = &admin.Tenants[i]
		}
	}
	if acmeRoll == nil {
		t.Fatalf("admin stats carry no acme rollup: %+v", admin.Tenants)
	}
	if acmeRoll.Synopses != 1 || acmeRoll.CacheQuota != 17 {
		t.Errorf("acme rollup = %+v", acmeRoll)
	}
	if acmeRoll.CacheHits != 1 || acmeRoll.CacheMisses != 1 {
		t.Errorf("acme rollup hits/misses = %d/%d, want 1/1", acmeRoll.CacheHits, acmeRoll.CacheMisses)
	}

	scoped := reg.StatsFor(acme)
	if scoped.Tenants != nil {
		t.Error("tenant-scoped stats leak the fleet rollup")
	}
	if len(scoped.Synopses) != 1 || scoped.Synopses[0].Name != "doc" {
		t.Errorf("scoped synopses = %+v, want bare-named doc", scoped.Synopses)
	}
	// Entries is 2: the cached estimate plus its compiled plan, both owned
	// by (and counted against) the tenant.
	if scoped.Cache.Hits != 1 || scoped.Cache.Misses != 1 || scoped.Cache.Entries != 2 {
		t.Errorf("scoped cache stats = %+v, want the tenant's own hits=1 misses=1 entries=2", scoped.Cache)
	}
}
