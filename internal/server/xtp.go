package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"xseed/api"
	"xseed/internal/obs"
	"xseed/internal/wire"
)

// xtpHandshakeTimeout bounds how long an accepted connection may take to
// complete the 4-byte handshake before the server drops it — a slot held
// open by a port scanner costs one goroutine for at most this long.
const xtpHandshakeTimeout = 10 * time.Second

// XTPOptions configures an XTP listener.
type XTPOptions struct {
	// Logger receives connection lifecycle and protocol-error records.
	// Nil discards.
	Logger *slog.Logger

	// Metrics receives the xseed_xtp_* families. Nil disables them.
	Metrics *obs.Registry
}

// XTP serves the xtp binary protocol (docs/PROTOCOL.md) over TCP against
// a registry — the same registry, estimate cache, and error taxonomy the
// HTTP JSON API serves, minus the HTTP and JSON. Requests multiplex over
// each connection by correlation ID, so one pipelining client drives the
// registry from many concurrent calls on a single socket.
type XTP struct {
	reg *Registry
	log *slog.Logger
	m   *xtpMetrics

	// Cluster hooks, both nil off-cluster: ownerCheck answers with a typed
	// moved error for keys owned by another node, ringJSON serves RingReq.
	// Set once via AttachCluster before the listener serves.
	ownerCheck func(key string) *api.Error
	ringJSON   func() ([]byte, bool)

	// baseCtx parents every request handler; cancel aborts in-flight work
	// when a drain deadline expires.
	baseCtx context.Context
	cancel  context.CancelFunc

	mu     sync.Mutex
	lns    map[net.Listener]struct{}
	conns  map[*xtpConn]struct{}
	closed bool

	wg sync.WaitGroup // one per live connection handler
}

// NewXTP builds an XTP listener over the registry. Serve it on as many
// listeners as needed; Shutdown drains them all.
func NewXTP(reg *Registry, opts XTPOptions) *XTP {
	lg := opts.Logger
	if lg == nil {
		lg = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &XTP{
		reg:     reg,
		log:     lg,
		m:       newXTPMetrics(opts.Metrics),
		baseCtx: ctx,
		cancel:  cancel,
		lns:     make(map[net.Listener]struct{}),
		conns:   make(map[*xtpConn]struct{}),
	}
}

// AttachCluster installs the cluster hooks: the per-key ownership check
// (moved errors over xtp mirror the HTTP 421s) and the RingReq answer.
// Call before Serve.
func (x *XTP) AttachCluster(ownerCheck func(string) *api.Error, ringJSON func() ([]byte, bool)) {
	x.ownerCheck = ownerCheck
	x.ringJSON = ringJSON
}

// checkOwner applies the cluster ownership hook (nil off-cluster).
func (x *XTP) checkOwner(key string) *api.Error {
	if x.ownerCheck == nil {
		return nil
	}
	return x.ownerCheck(key)
}

// Serve accepts connections on ln until Shutdown (which returns nil here)
// or a listener error. Each connection gets its own handler goroutine;
// requests within a connection dispatch concurrently.
func (x *XTP) Serve(ln net.Listener) error {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		ln.Close()
		return errors.New("xtp: server closed")
	}
	x.lns[ln] = struct{}{}
	x.mu.Unlock()
	defer func() {
		x.mu.Lock()
		delete(x.lns, ln)
		x.mu.Unlock()
	}()
	for {
		c, err := ln.Accept()
		if err != nil {
			x.mu.Lock()
			closed := x.closed
			x.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		x.wg.Add(1)
		go x.handleConn(c)
	}
}

// Shutdown drains gracefully: stop accepting, tell every connection to go
// away (clients redial elsewhere or fail over), let in-flight requests
// finish writing, and close. When ctx expires first, in-flight handlers
// are canceled and connections force-closed.
func (x *XTP) Shutdown(ctx context.Context) error {
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return nil
	}
	x.closed = true
	for ln := range x.lns {
		ln.Close()
	}
	conns := make([]*xtpConn, 0, len(x.conns))
	for cn := range x.conns {
		conns = append(conns, cn)
	}
	x.mu.Unlock()
	for _, cn := range conns {
		cn.beginDrain()
	}
	done := make(chan struct{})
	go func() { x.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		x.cancel() // abort in-flight registry work
		x.mu.Lock()
		for cn := range x.conns {
			cn.c.Close()
		}
		x.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// xtpConn is one accepted connection: a frame reader loop plus a mutex-
// serialized frame writer shared by every in-flight request handler.
type xtpConn struct {
	c net.Conn
	x *XTP

	// ten is the tenant this connection is bound to: the default until an
	// AuthReq rebinds it. Written and read only on the reader goroutine;
	// dispatched handlers receive the value as an argument, so a later
	// AuthReq never races an in-flight request.
	ten *Tenant

	wmu sync.Mutex
	w   *wire.Writer

	inflight sync.WaitGroup // dispatched request handlers

	draining bool // guarded by wmu; set once Goaway is sent
}

// handleConn owns one connection from accept to close.
func (x *XTP) handleConn(c net.Conn) {
	defer x.wg.Done()
	defer c.Close()
	x.m.connsTotal.Inc()

	// Handshake under a deadline: read the client's, answer with ours.
	// A version we don't speak still gets our answer — that is how the
	// client learns what the server does speak — then the connection ends.
	c.SetReadDeadline(time.Now().Add(xtpHandshakeTimeout))
	ver, err := wire.ReadHandshake(c)
	if err != nil {
		x.m.handshakeErr.Inc()
		x.log.Debug("xtp handshake failed", "remote", c.RemoteAddr().String(), "err", err)
		return
	}
	if err := wire.WriteHandshake(c, wire.Version); err != nil {
		x.m.handshakeErr.Inc()
		return
	}
	if ver != wire.Version {
		x.m.handshakeErr.Inc()
		x.log.Warn("xtp version mismatch", "remote", c.RemoteAddr().String(),
			"clientVersion", ver, "serverVersion", wire.Version)
		return
	}
	c.SetReadDeadline(time.Time{})

	cn := &xtpConn{c: c, x: x, w: wire.NewWriter(c), ten: x.reg.Tenants().Default()}
	x.mu.Lock()
	if x.closed {
		x.mu.Unlock()
		return
	}
	x.conns[cn] = struct{}{}
	x.mu.Unlock()
	x.m.connsOpen.Add(1)
	x.log.Debug("xtp connection open", "remote", c.RemoteAddr().String())
	defer func() {
		x.mu.Lock()
		delete(x.conns, cn)
		x.mu.Unlock()
		x.m.connsOpen.Add(-1)
		x.log.Debug("xtp connection closed", "remote", c.RemoteAddr().String())
	}()

	cn.readLoop()
	// Let dispatched handlers finish writing their responses before the
	// deferred close tears the socket down.
	cn.inflight.Wait()
}

// readLoop decodes and dispatches frames until the stream ends or breaks
// protocol. Request bodies are decoded here, on the reader goroutine —
// Frame.Payload aliases the reader's scratch buffer, so handlers receive
// decoded values, never the raw frame.
func (cn *xtpConn) readLoop() {
	x := cn.x
	r := wire.NewReader(cn.c)
	var lastBytes int64
	for {
		f, err := r.ReadFrame()
		if err != nil {
			if !isConnClosed(err) {
				x.m.decodeErrors.Inc()
				x.log.Warn("xtp framing error", "remote", cn.c.RemoteAddr().String(), "err", err)
			}
			return
		}
		x.m.frameIn(f.Type, r.BytesRead()-lastBytes)
		lastBytes = r.BytesRead()
		switch f.Type {
		case wire.FramePing:
			cn.write(wire.FramePong, f.Corr, nil)
		case wire.FrameAuthReq:
			token, err := wire.DecodeAuthReq(f.Payload)
			if err != nil {
				cn.protocolError(f.Corr, err)
				return
			}
			t, aerr := x.reg.Tenants().resolveXTP(token)
			if aerr != nil {
				// Terminal, like the HTTP 401: an unauthenticated peer gets
				// nothing further on this connection.
				cn.writeError(f.Corr, aerr)
				return
			}
			cn.ten = t
			t.reqs.Inc()
			buf := wire.GetBuf()
			*buf = wire.AppendAuthResp(*buf, t.ID())
			cn.write(wire.FrameAuthResp, f.Corr, *buf)
			wire.PutBuf(buf)
		case wire.FrameEstimateReq:
			name, queries, streaming, err := wire.DecodeEstimateReq(f.Payload)
			if err != nil {
				cn.protocolError(f.Corr, err)
				return
			}
			t := cn.ten
			t.reqs.Inc()
			if !t.allow() {
				cn.writeError(f.Corr, api.Errorf(api.CodeQuotaExceeded, "tenant %q rate limit exceeded", t.ID()))
				continue
			}
			key, aerr := synKey(t, name)
			if aerr == nil {
				aerr = x.checkOwner(key)
			}
			if aerr != nil {
				cn.writeError(f.Corr, aerr)
				continue
			}
			cn.inflight.Add(1)
			go cn.handleEstimate(f.Corr, key, queries, streaming)
		case wire.FrameFeedbackReq:
			name, query, actual, err := wire.DecodeFeedbackReq(f.Payload)
			if err != nil {
				cn.protocolError(f.Corr, err)
				return
			}
			t := cn.ten
			t.reqs.Inc()
			if !t.allow() {
				cn.writeError(f.Corr, api.Errorf(api.CodeQuotaExceeded, "tenant %q rate limit exceeded", t.ID()))
				continue
			}
			key, aerr := synKey(t, name)
			if aerr == nil {
				aerr = x.checkOwner(key)
			}
			if aerr != nil {
				cn.writeError(f.Corr, aerr)
				continue
			}
			cn.inflight.Add(1)
			go cn.handleFeedback(f.Corr, key, query, actual)
		case wire.FrameFeedbackBatchReq:
			name, items, err := wire.DecodeFeedbackBatchReq(f.Payload)
			if err != nil {
				cn.protocolError(f.Corr, err)
				return
			}
			t := cn.ten
			t.reqs.Inc()
			if len(items) == 0 {
				cn.writeError(f.Corr, api.Errorf(api.CodeBadRequest, "missing items"))
				continue
			}
			// A batch of n events costs n tokens — rejected whole when the
			// bucket cannot cover it, so batching never outruns the limit.
			if !t.allowN(len(items)) {
				cn.writeError(f.Corr, api.Errorf(api.CodeQuotaExceeded, "tenant %q rate limit exceeded", t.ID()))
				continue
			}
			key, aerr := synKey(t, name)
			if aerr == nil {
				aerr = x.checkOwner(key)
			}
			if aerr != nil {
				cn.writeError(f.Corr, aerr)
				continue
			}
			cn.inflight.Add(1)
			go cn.handleFeedbackBatch(f.Corr, key, items)
		case wire.FrameStatsReq:
			t := cn.ten
			t.reqs.Inc()
			cn.inflight.Add(1)
			go cn.handleStats(f.Corr, t)
		case wire.FrameRingReq:
			if len(f.Payload) != 0 {
				cn.protocolError(f.Corr, fmt.Errorf("RingReq carries no payload"))
				return
			}
			if x.ringJSON != nil {
				if data, ok := x.ringJSON(); ok {
					cn.write(wire.FrameRingResp, f.Corr, data)
					continue
				}
				cn.writeError(f.Corr, api.Errorf(api.CodeUnavailable, "ring not yet known"))
				continue
			}
			cn.writeError(f.Corr, api.Errorf(api.CodeConflict, "server is not part of a cluster"))
		default:
			// Unknown or direction-inverted frame: the stream cannot be
			// trusted past it (see the versioning rules in docs/PROTOCOL.md).
			cn.protocolError(f.Corr, fmt.Errorf("unexpected frame type %s", f.Type))
			return
		}
	}
}

func (cn *xtpConn) handleEstimate(corr uint64, name string, queries []string, streaming bool) {
	defer cn.inflight.Done()
	start := time.Now()
	items, err := cn.x.reg.EstimateBatch(cn.x.baseCtx, name, queries, streaming)
	if err != nil {
		cn.writeError(corr, toAPIError(err))
		cn.x.m.observe(cn.x.m.estimateSeconds, start)
		return
	}
	buf := wire.GetBuf()
	*buf = wire.AppendEstimateResp(*buf, items)
	cn.write(wire.FrameEstimateResp, corr, *buf)
	wire.PutBuf(buf)
	cn.x.m.observe(cn.x.m.estimateSeconds, start)
}

func (cn *xtpConn) handleFeedback(corr uint64, name, query string, actual float64) {
	defer cn.inflight.Done()
	start := time.Now()
	var ae *api.Error
	if err := cn.x.reg.Feedback(name, query, actual); err != nil {
		ae = toAPIError(err)
		cn.x.m.errorSent(ae.Code)
	}
	buf := wire.GetBuf()
	*buf = wire.AppendFeedbackAck(*buf, ae)
	cn.write(wire.FrameFeedbackAck, corr, *buf)
	wire.PutBuf(buf)
	cn.x.m.observe(cn.x.m.feedbackSeconds, start)
}

func (cn *xtpConn) handleFeedbackBatch(corr uint64, name string, items []api.FeedbackItem) {
	defer cn.inflight.Done()
	start := time.Now()
	errs, err := cn.x.reg.FeedbackBatch(name, items)
	if err != nil {
		ae := toAPIError(err)
		cn.x.m.errorSent(ae.Code)
		cn.writeError(corr, ae)
		cn.x.m.observe(cn.x.m.feedbackSeconds, start)
		return
	}
	buf := wire.GetBuf()
	*buf = wire.AppendFeedbackBatchAck(*buf, errs)
	cn.write(wire.FrameFeedbackBatchAck, corr, *buf)
	wire.PutBuf(buf)
	cn.x.m.observe(cn.x.m.feedbackSeconds, start)
}

func (cn *xtpConn) handleStats(corr uint64, t *Tenant) {
	defer cn.inflight.Done()
	start := time.Now()
	// Stats is a cold path; its deeply nested payload rides as JSON
	// (normatively specified — see the StatsResp section of PROTOCOL.md).
	data, err := json.Marshal(cn.x.reg.StatsFor(t))
	if err != nil {
		cn.writeError(corr, api.WrapError(err, api.CodeInternal))
		return
	}
	cn.write(wire.FrameStatsResp, corr, data)
	cn.x.m.observe(cn.x.m.statsSeconds, start)
}

// write sends one frame, serializing against concurrent handlers. Write
// failures mean the client is gone; the reader loop will notice and wind
// the connection down, so they are counted but not otherwise handled.
func (cn *xtpConn) write(t wire.FrameType, corr uint64, payload []byte) {
	cn.wmu.Lock()
	before := cn.w.BytesWritten()
	err := cn.w.WriteFrame(t, corr, payload)
	delta := cn.w.BytesWritten() - before
	cn.wmu.Unlock()
	if err == nil {
		cn.x.m.frameOut(t, delta)
	}
}

// writeError fails one request with a typed error frame.
func (cn *xtpConn) writeError(corr uint64, ae *api.Error) {
	cn.x.m.errorSent(ae.Code)
	buf := wire.GetBuf()
	*buf = wire.AppendError(*buf, ae)
	cn.write(wire.FrameError, corr, *buf)
	wire.PutBuf(buf)
}

// protocolError reports an undecodable or out-of-place frame and is
// followed by connection teardown: framing sync is gone, so unlike a
// request-level failure this is terminal.
func (cn *xtpConn) protocolError(corr uint64, err error) {
	cn.x.m.decodeErrors.Inc()
	cn.x.log.Warn("xtp protocol error", "remote", cn.c.RemoteAddr().String(), "err", err)
	cn.writeError(corr, api.Errorf(api.CodeBadRequest, "protocol error: %s", err))
}

// beginDrain pushes a Goaway and stops the reader by expiring its
// deadline; in-flight handlers keep writing until done (handleConn waits).
func (cn *xtpConn) beginDrain() {
	cn.wmu.Lock()
	already := cn.draining
	cn.draining = true
	cn.wmu.Unlock()
	if already {
		return
	}
	cn.write(wire.FrameGoaway, 0, nil)
	cn.c.SetReadDeadline(time.Now())
}

// isConnClosed classifies reader-loop exits that are lifecycle, not
// protocol: clean EOF, our own close/drain, or a vanished peer.
func isConnClosed(err error) bool {
	return errors.Is(err, io.EOF) ||
		errors.Is(err, net.ErrClosed) ||
		errors.Is(err, os.ErrDeadlineExceeded) ||
		errors.Is(err, syscall.ECONNRESET)
}
