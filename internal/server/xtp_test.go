package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"xseed"
	"xseed/api"
	"xseed/internal/fixtures"
	"xseed/internal/obs"
	"xseed/internal/wire"
)

// startXTP serves the binary protocol on a loopback listener over a
// registry preloaded with the paper's Figure 2 document as "fig2".
func startXTP(t testing.TB, om *obs.Registry) (*Registry, string) {
	t.Helper()
	reg := NewRegistry(1024, 0)
	doc, err := xseed.ParseXMLString(fixtures.PaperFigure2)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := xseed.BuildSynopsis(doc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("fig2", syn, "test"); err != nil {
		t.Fatal(err)
	}
	x := NewXTP(reg, XTPOptions{Metrics: om})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- x.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := x.Shutdown(ctx); err != nil {
			t.Errorf("xtp shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("xtp serve: %v", err)
		}
		reg.Close()
	})
	return reg, ln.Addr().String()
}

// dialRaw opens a handshaked raw-frame connection — tests drive the wire
// protocol directly, below the client SDK.
func dialRaw(t testing.TB, addr string) (net.Conn, *wire.Reader, *wire.Writer) {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetDeadline(time.Now().Add(10 * time.Second))
	if err := wire.WriteHandshake(c, wire.Version); err != nil {
		t.Fatal(err)
	}
	ver, err := wire.ReadHandshake(c)
	if err != nil {
		t.Fatal(err)
	}
	if ver != wire.Version {
		t.Fatalf("server version = %d, want %d", ver, wire.Version)
	}
	return c, wire.NewReader(c), wire.NewWriter(c)
}

func TestXTPEstimatePartialSuccess(t *testing.T) {
	_, addr := startXTP(t, nil)
	_, r, w := dialRaw(t, addr)

	// One good query, one with a syntax error at a known offset: the
	// response must carry a per-item split, not fail the batch.
	req := wire.AppendEstimateReq(nil, "fig2", []string{"/a/c/s", "//s[@"}, false)
	if err := w.WriteFrame(wire.FrameEstimateReq, 42, req); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameEstimateResp || f.Corr != 42 {
		t.Fatalf("frame = %s corr %d, want EstimateResp corr 42", f.Type, f.Corr)
	}
	items, err := wire.DecodeEstimateResp(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 {
		t.Fatalf("items = %d, want 2", len(items))
	}
	if items[0].Error != nil || items[0].Estimate <= 0 {
		t.Fatalf("good item = %+v", items[0])
	}
	if items[1].Error == nil || items[1].Error.Code != api.CodeParseError {
		t.Fatalf("bad item error = %+v", items[1].Error)
	}
	if d, ok := items[1].Error.ParseDetail(); !ok || d.Offset <= 0 {
		t.Fatalf("parse detail = %+v, ok=%v", d, ok)
	}
}

func TestXTPUnknownSynopsisError(t *testing.T) {
	_, addr := startXTP(t, nil)
	_, r, w := dialRaw(t, addr)

	req := wire.AppendEstimateReq(nil, "nope", []string{"/a"}, false)
	if err := w.WriteFrame(wire.FrameEstimateReq, 7, req); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameError || f.Corr != 7 {
		t.Fatalf("frame = %s corr %d, want Error corr 7", f.Type, f.Corr)
	}
	ae, err := wire.DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if ae.Code != api.CodeNotFound {
		t.Fatalf("code = %q, want %q", ae.Code, api.CodeNotFound)
	}
}

func TestXTPFeedbackAck(t *testing.T) {
	reg, addr := startXTP(t, nil)
	_, r, w := dialRaw(t, addr)

	ok := wire.AppendFeedbackReq(nil, "fig2", "/a/c/s", 3)
	if err := w.WriteFrame(wire.FrameFeedbackReq, 1, ok); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameFeedbackAck || f.Corr != 1 {
		t.Fatalf("frame = %s corr %d", f.Type, f.Corr)
	}
	if ae, err := wire.DecodeFeedbackAck(f.Payload); err != nil || ae != nil {
		t.Fatalf("ack = %+v, %v, want clean", ae, err)
	}
	if st := reg.Stats(); len(st.Synopses) != 1 || st.Synopses[0].Feedbacks != 1 {
		t.Fatalf("stats after feedback = %+v", st)
	}

	bad := wire.AppendFeedbackReq(nil, "nope", "/a", 3)
	if err := w.WriteFrame(wire.FrameFeedbackReq, 2, bad); err != nil {
		t.Fatal(err)
	}
	if f, err = r.ReadFrame(); err != nil {
		t.Fatal(err)
	}
	ae, err := wire.DecodeFeedbackAck(f.Payload)
	if err != nil || ae == nil || ae.Code != api.CodeNotFound {
		t.Fatalf("bad ack = %+v, %v, want not_found", ae, err)
	}
}

func TestXTPPingStats(t *testing.T) {
	_, addr := startXTP(t, nil)
	_, r, w := dialRaw(t, addr)

	if err := w.WriteFrame(wire.FramePing, 9, nil); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil || f.Type != wire.FramePong || f.Corr != 9 {
		t.Fatalf("pong = %+v, %v", f, err)
	}

	if err := w.WriteFrame(wire.FrameStatsReq, 10, nil); err != nil {
		t.Fatal(err)
	}
	if f, err = r.ReadFrame(); err != nil || f.Type != wire.FrameStatsResp {
		t.Fatalf("stats frame = %+v, %v", f, err)
	}
	var st api.Stats
	if err := json.Unmarshal(f.Payload, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Synopses) != 1 || st.Synopses[0].Name != "fig2" {
		t.Fatalf("stats = %+v", st)
	}
}

// TestXTPPipelining issues many requests before reading anything; every
// response must come back tagged with its own correlation ID.
func TestXTPPipelining(t *testing.T) {
	_, addr := startXTP(t, nil)
	_, r, w := dialRaw(t, addr)

	const n = 32
	for i := 1; i <= n; i++ {
		req := wire.AppendEstimateReq(nil, "fig2", []string{fmt.Sprintf("/a/c/s[%d]", i)}, false)
		if err := w.WriteFrame(wire.FrameEstimateReq, uint64(i), req); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		f, err := r.ReadFrame()
		if err != nil {
			t.Fatal(err)
		}
		if f.Type != wire.FrameEstimateResp {
			t.Fatalf("frame %d = %s", i, f.Type)
		}
		if f.Corr < 1 || f.Corr > n || seen[f.Corr] {
			t.Fatalf("corr %d out of range or duplicated", f.Corr)
		}
		seen[f.Corr] = true
	}
}

func TestXTPBadHandshakeDropsConnection(t *testing.T) {
	_, addr := startXTP(t, nil)
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte("GET /estimate HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}
	// The server must hang up without speaking xtp to a non-xtp peer.
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Fatalf("server answered a bad handshake with %q", buf)
	}
}

func TestXTPVersionMismatchAnswersThenCloses(t *testing.T) {
	_, addr := startXTP(t, nil)
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if err := wire.WriteHandshake(c, 99); err != nil {
		t.Fatal(err)
	}
	// The refusal still carries the server's version — that is how an old
	// client learns what to report.
	ver, err := wire.ReadHandshake(c)
	if err != nil {
		t.Fatal(err)
	}
	if ver != wire.Version {
		t.Fatalf("server answered version %d, want %d", ver, wire.Version)
	}
	buf := make([]byte, 1)
	if _, err := c.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("read after mismatch = %v, want EOF", err)
	}
}

func TestXTPUnknownFrameIsTerminal(t *testing.T) {
	_, addr := startXTP(t, nil)
	_, r, w := dialRaw(t, addr)

	if err := w.WriteFrame(wire.FrameType(0x7F), 5, []byte("junk")); err != nil {
		t.Fatal(err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != wire.FrameError || f.Corr != 5 {
		t.Fatalf("frame = %s corr %d, want Error corr 5", f.Type, f.Corr)
	}
	ae, err := wire.DecodeError(f.Payload)
	if err != nil || ae.Code != api.CodeBadRequest {
		t.Fatalf("error = %+v, %v, want bad_request", ae, err)
	}
	if _, err := r.ReadFrame(); err == nil {
		t.Fatal("connection survived a protocol error")
	}
}

func TestXTPGoawayOnShutdown(t *testing.T) {
	reg := NewRegistry(64, 0)
	defer reg.Close()
	x := NewXTP(reg, XTPOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- x.Serve(ln) }()

	c, r, _ := dialRaw(t, ln.Addr().String())
	_ = c

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := x.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	f, err := r.ReadFrame()
	if err != nil {
		t.Fatalf("expected Goaway before close, got %v", err)
	}
	if f.Type != wire.FrameGoaway || f.Corr != 0 {
		t.Fatalf("frame = %s corr %d, want Goaway corr 0", f.Type, f.Corr)
	}
}

// TestXTPMetricsFamilies drives every request kind and asserts the
// xseed_xtp_* families land in the Prometheus exposition.
func TestXTPMetricsFamilies(t *testing.T) {
	om := obs.NewRegistry()
	_, addr := startXTP(t, om)
	_, r, w := dialRaw(t, addr)

	req := wire.AppendEstimateReq(nil, "fig2", []string{"/a/c/s"}, false)
	w.WriteFrame(wire.FrameEstimateReq, 1, req)
	w.WriteFrame(wire.FrameFeedbackReq, 2, wire.AppendFeedbackReq(nil, "fig2", "/a/c/s", 2))
	w.WriteFrame(wire.FrameStatsReq, 3, nil)
	w.WriteFrame(wire.FrameEstimateReq, 4, wire.AppendEstimateReq(nil, "nope", []string{"/a"}, false))
	for i := 0; i < 4; i++ {
		if _, err := r.ReadFrame(); err != nil {
			t.Fatal(err)
		}
	}

	var sb strings.Builder
	if err := om.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"xseed_xtp_connections 1",
		"xseed_xtp_connections_total 1",
		`xseed_xtp_frames_total{dir="in",type="EstimateReq"} 2`,
		`xseed_xtp_frames_total{dir="out",type="FeedbackAck"} 1`,
		`xseed_xtp_request_seconds_count{kind="estimate"}`,
		`xseed_xtp_errors_total{code="not_found"} 1`,
		`xseed_xtp_bytes_total{dir="in"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
