package server

import (
	"time"

	"xseed/internal/obs"
	"xseed/internal/wire"
)

// xtpMetrics is the XTP listener's metric families (xseed_xtp_*). Frame
// counters are resolved once per frame type at construction into arrays
// indexed by the type byte, so the per-frame cost on the transport hot
// path is an array load plus a wait-free increment — the same discipline
// the HTTP middleware uses for its per-route children.
type xtpMetrics struct {
	connsOpen  *obs.Gauge
	connsTotal *obs.Counter

	framesIn  [maxFrameType + 1]*obs.Counter // {dir="in", type}
	framesOut [maxFrameType + 1]*obs.Counter // {dir="out", type}
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter

	estimateSeconds *obs.Histogram
	feedbackSeconds *obs.Histogram
	statsSeconds    *obs.Histogram

	errors       *obs.CounterVec // {code}: error frames + error acks by taxonomy code
	decodeErrors *obs.Counter
	handshakeErr *obs.Counter
}

// maxFrameType bounds the frame-counter arrays; a frame type above it
// (impossible from wire.Frames, defensive for the raw byte) shares the
// last slot.
const maxFrameType = 0x10

func newXTPMetrics(om *obs.Registry) *xtpMetrics {
	if om == nil {
		om = obs.Disabled
	}
	frames := om.CounterVec("xseed_xtp_frames_total",
		"XTP frames by direction and frame type.", "dir", "type")
	bytes := om.CounterVec("xseed_xtp_bytes_total",
		"XTP wire bytes by direction (frame headers + payloads).", "dir")
	seconds := om.HistogramVec("xseed_xtp_request_seconds",
		"XTP request handling latency by request kind, from frame decode to response write.",
		obs.HistogramOpts{Scale: 1e9}, "kind")
	m := &xtpMetrics{
		connsOpen: om.Gauge("xseed_xtp_connections",
			"XTP connections currently open (post-handshake)."),
		connsTotal: om.Counter("xseed_xtp_connections_total",
			"XTP connections accepted since start."),
		bytesIn:         bytes.With("in"),
		bytesOut:        bytes.With("out"),
		estimateSeconds: seconds.With("estimate"),
		feedbackSeconds: seconds.With("feedback"),
		statsSeconds:    seconds.With("stats"),
		errors: om.CounterVec("xseed_xtp_errors_total",
			"XTP error frames and error acks sent, by api error code.", "code"),
		decodeErrors: om.Counter("xseed_xtp_decode_errors_total",
			"Connections dropped for malformed frames (framing or payload decode failures)."),
		handshakeErr: om.Counter("xseed_xtp_handshake_failures_total",
			"Connections dropped during the handshake (bad magic, unsupported version, timeout)."),
	}
	for _, fi := range wire.Frames() {
		m.framesIn[frameSlot(fi.Type)] = frames.With("in", fi.Name)
		m.framesOut[frameSlot(fi.Type)] = frames.With("out", fi.Name)
	}
	unknownIn, unknownOut := frames.With("in", "unknown"), frames.With("out", "unknown")
	for i := range m.framesIn {
		if m.framesIn[i] == nil {
			m.framesIn[i] = unknownIn
		}
		if m.framesOut[i] == nil {
			m.framesOut[i] = unknownOut
		}
	}
	return m
}

func frameSlot(t wire.FrameType) int {
	if int(t) > maxFrameType {
		return maxFrameType
	}
	return int(t)
}

// frameIn records one received frame and its wire-byte delta.
func (m *xtpMetrics) frameIn(t wire.FrameType, bytes int64) {
	m.framesIn[frameSlot(t)].Inc()
	m.bytesIn.Add(uint64(bytes))
}

// frameOut records one sent frame and its wire-byte delta.
func (m *xtpMetrics) frameOut(t wire.FrameType, bytes int64) {
	m.framesOut[frameSlot(t)].Inc()
	m.bytesOut.Add(uint64(bytes))
}

// observe records one request's handling latency on the given kind's
// histogram.
func (m *xtpMetrics) observe(h *obs.Histogram, start time.Time) {
	h.Observe(time.Since(start).Nanoseconds())
}

// errorSent counts an error (frame or ack) by its taxonomy code.
func (m *xtpMetrics) errorSent(code string) {
	m.errors.With(code).Inc()
}
