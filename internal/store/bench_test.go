package store

import (
	"testing"
	"time"

	"xseed"
)

// benchStore returns a store with one saved synopsis ready for appends.
func benchStore(b *testing.B) (*Store, *xseed.Synopsis) {
	b.Helper()
	st := openStore(b, b.TempDir())
	syn := buildFig2(b)
	if err := st.SaveBase("bench", syn, "bench", time.Now(), 0, 0); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st, syn
}

// BenchmarkStoreAppendFeedback is the durability hot path: one feedback
// event persisted as an O(delta) log record (no fsync, the daemon default).
func BenchmarkStoreAppendFeedback(b *testing.B) {
	st, _ := benchStore(b)
	d := xseed.HETDelta{Hash: 0xdeadbeef, Card: 42, Err: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Card = float64(i)
		if err := st.AppendFeedback("bench", d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreFeedbackPersisted measures the full registry-shaped path:
// estimate + table update + persisted delta.
func BenchmarkStoreFeedbackPersisted(b *testing.B) {
	st, syn := benchStore(b)
	q, err := xseed.ParseQuery("/a/c/s/s/t")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, delta, applied := syn.FeedbackQueryDelta(q, float64(i%17+1))
		if !applied {
			b.Fatal("feedback not applied")
		}
		if err := st.AppendFeedback("bench", delta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreRecover measures cold recovery: base load plus replay of a
// 256-record delta log.
func BenchmarkStoreRecover(b *testing.B) {
	dir := b.TempDir()
	st := openStore(b, dir)
	syn := buildFig2(b)
	if err := st.SaveBase("bench", syn, "bench", time.Now(), 0, 0); err != nil {
		b.Fatal(err)
	}
	d := xseed.HETDelta{Hash: 0xdeadbeef, Card: 42, Err: 3}
	for i := 0; i < 256; i++ {
		d.Hash = uint32(i)
		if err := st.AppendFeedback("bench", d); err != nil {
			b.Fatal(err)
		}
	}
	st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st2, err := Open(dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		loaded, err := st2.LoadAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(loaded) != 1 || loaded[0].Replay != 256 {
			b.Fatalf("recovered %+v", loaded)
		}
		st2.Close()
	}
}

// BenchmarkStoreCompact measures folding a 256-record log into a new base.
func BenchmarkStoreCompact(b *testing.B) {
	st, syn := benchStore(b)
	q, err := xseed.ParseQuery("/a/c/s/s/t")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 256; j++ {
			_, delta, _ := syn.FeedbackQueryDelta(q, float64(j%17+1))
			if err := st.AppendFeedback("bench", delta); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := st.CompactNow("bench"); err != nil {
			b.Fatal(err)
		}
	}
}
