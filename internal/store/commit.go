package store

import (
	"fmt"
	"sync"
	"time"
)

// Pending is the durability handle for one group-committed record: Wait
// blocks until the record's batch has been written and fsynced, returning
// the flush outcome. A flush error fans out to every waiter in the batch —
// each acked caller learns its record may not be durable, not just the
// goroutine whose enqueue happened to trigger the flush.
type Pending struct {
	done chan struct{}
	err  error
}

// Wait blocks until the record's batch is durable (no-op if it already is).
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

// settled is the shared already-durable handle returned by non-batch modes.
var settled = func() *Pending {
	p := &Pending{done: make(chan struct{})}
	close(p.done)
	return p
}()

// committer is the per-store group-commit flusher: one goroutine that wakes
// on the first enqueue, sleeps one batch window so concurrent appends
// coalesce, then flushes every dirty synopsis's pending buffer with one
// write + one fsync each.
type committer struct {
	st *Store

	mu    sync.Mutex
	dirty map[*synStore]struct{}

	wake    chan struct{} // cap 1: first enqueue after an idle period
	quit    chan struct{}
	stopped chan struct{}
	once    sync.Once
}

func newCommitter(st *Store) *committer {
	cm := &committer{
		st:      st,
		dirty:   make(map[*synStore]struct{}),
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go cm.run()
	return cm
}

// markDirty registers s for the next flush round. Called with s.mu held or
// not — the dirty set has its own lock.
func (cm *committer) markDirty(s *synStore) {
	cm.mu.Lock()
	cm.dirty[s] = struct{}{}
	cm.mu.Unlock()
	select {
	case cm.wake <- struct{}{}:
	default:
	}
}

// stop flushes everything enqueued so far and terminates the goroutine.
func (cm *committer) stop() {
	cm.once.Do(func() { close(cm.quit) })
	<-cm.stopped
}

func (cm *committer) run() {
	defer close(cm.stopped)
	for {
		select {
		case <-cm.wake:
			// Batch window: let concurrent appends pile into pending
			// before paying the fsync.
			t := time.NewTimer(cm.st.opts.BatchLatency)
			select {
			case <-t.C:
			case <-cm.quit:
				t.Stop()
			}
			cm.flushAll()
		case <-cm.quit:
			cm.flushAll()
			return
		}
	}
}

// flushAll flushes every dirty synopsis. Holding s.mu across the write +
// fsync is deliberate: enqueuers arriving mid-flush queue on the mutex, land
// in the next batch, and re-wake the committer via markDirty.
func (cm *committer) flushAll() {
	cm.mu.Lock()
	dirty := cm.dirty
	cm.dirty = make(map[*synStore]struct{})
	cm.mu.Unlock()
	for s := range dirty {
		s.mu.Lock()
		cm.st.flushPendingLocked(s)
		s.mu.Unlock()
	}
}

// flushPendingLocked writes and fsyncs s's pending batch and settles every
// waiter with the outcome. Caller holds s.mu. Generation-changing paths
// (SaveBase, compaction's commit step, Remove, Close, ImportBase) call this
// first so no enqueued record is stranded against a superseded log file.
func (st *Store) flushPendingLocked(s *synStore) {
	if len(s.waiters) == 0 {
		return
	}
	buf, recs, waiters := s.pending, s.pendingN, s.waiters
	s.pending, s.pendingN, s.waiters = nil, 0, nil
	err := st.writeBatchLocked(s, buf, recs)
	for _, p := range waiters {
		p.err = err
		close(p.done)
	}
}

func (st *Store) writeBatchLocked(s *synStore, buf []byte, recs int) error {
	if s.log == nil {
		st.m.appendErrs.Inc()
		return fmt.Errorf("store: synopsis %q has no open log", s.name)
	}
	start := time.Now()
	if _, err := s.log.Write(buf); err != nil {
		st.m.appendErrs.Inc()
		return fmt.Errorf("store: flush %d-record batch for %q: %w", recs, s.name, err)
	}
	fstart := time.Now()
	if err := s.log.Sync(); err != nil {
		st.m.appendErrs.Inc()
		return fmt.Errorf("store: fsync %d-record batch for %q: %w", recs, s.name, err)
	}
	st.m.fsyncs.Inc()
	st.m.fsyncNs.Observe(time.Since(fstart).Nanoseconds())
	st.m.batchEvents.Observe(int64(recs))
	st.m.batchFlushNs.Observe(time.Since(start).Nanoseconds())
	st.m.appends.Add(uint64(recs))
	st.m.appendBytes.Add(uint64(len(buf)))
	st.m.appendNs.Observe(time.Since(start).Nanoseconds())
	s.logSize += int64(len(buf))
	s.deltaCount += int64(recs)
	return nil
}
