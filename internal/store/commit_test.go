package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"xseed"
	"xseed/internal/obs"
)

// openBatchStore opens a store in group-commit mode with a short flush
// window so tests coalesce without sleeping the full production default.
func openBatchStore(t testing.TB, dir string, om *obs.Registry) *Store {
	t.Helper()
	st, err := Open(dir, Options{Fsync: FsyncBatch, BatchLatency: time.Millisecond, Metrics: om})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// batchFeedback applies one feedback and enqueues its delta the way the
// registry does — apply and enqueue inside the caller's critical section
// (log order = apply order), wait for durability outside it.
func batchFeedback(t testing.TB, st *Store, synMu *sync.Mutex, syn *xseed.Synopsis, query string, actual float64) {
	t.Helper()
	q, err := xseed.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	synMu.Lock()
	_, delta, applied := syn.FeedbackQueryDelta(q, actual)
	if !applied {
		synMu.Unlock()
		t.Fatalf("feedback %s not applied", query)
	}
	p, err := st.AppendFeedbackEnq("fig2", delta)
	synMu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitAckedSurviveCrash is the durability contract of
// -store-fsync=batch: every feedback whose append call RETURNED (was
// acked) before a kill -9 must replay after restart. Concurrent workers
// hammer acked appends, then the store is abandoned without Close —
// nothing buffered in the committer may be needed, because every ack
// happened strictly after its batch's fsync. A fresh store on the same
// directory must recover the identical synopsis.
func TestGroupCommitAckedSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	om := obs.NewRegistry()
	st := openBatchStore(t, dir, om)
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}

	queries := []string{"/a/c/s/s/t", "/a/c/s", "/a/c/p", "/a/t", "/a/c/s/p", "/a/c/s/s", "/a/c/t", "/a/u"}
	var synMu sync.Mutex
	const workers, rounds = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := queries[(w+i)%len(queries)]
				batchFeedback(t, st, &synMu, syn, q, float64(1+(w*rounds+i)%13))
			}
		}(w)
	}
	wg.Wait()
	want := estimates(t, syn, queries...)

	// Group commit must have coalesced: far fewer fsyncs than records.
	// (workers goroutines share flush windows; even modest batching more
	// than halves the fsync count.)
	fsyncs := storeCounterValue(t, om, "xseed_store_fsyncs_total")
	if total := uint64(workers * rounds); fsyncs >= total/2 {
		t.Errorf("fsyncs = %d for %d acked records; group commit did not coalesce", fsyncs, total)
	}

	// kill -9: abandon st without Close. The committer goroutine and open
	// file die with the process in production; here they just leak idle.
	st2 := openStore(t, dir)
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Torn {
		t.Fatalf("recovery after abandon: %+v", loaded)
	}
	if loaded[0].Replay != workers*rounds {
		t.Errorf("replayed %d records, want all %d acked", loaded[0].Replay, workers*rounds)
	}
	got := estimates(t, loaded[0].Syn, queries...)
	for i, q := range queries {
		if got[i] != want[i] {
			t.Errorf("%s: recovered %g, want %g", q, got[i], want[i])
		}
	}
}

// storeCounterValue reads one counter family's value off the registry's
// text exposition — the same surface operators scrape.
func storeCounterValue(t testing.TB, om *obs.Registry, name string) uint64 {
	t.Helper()
	var buf bytes.Buffer
	if err := om.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v uint64
			for _, c := range rest {
				if c < '0' || c > '9' {
					break
				}
				v = v*10 + uint64(c-'0')
			}
			return v
		}
	}
	t.Fatalf("counter %s not in exposition", name)
	return 0
}

// TestGroupCommitFlushErrorFansOut: when the batched write or fsync
// fails, EVERY waiter in that batch must see the error — an acked-but-
// not-durable record is the one lie the store must never tell, and a
// waiter that hangs or reports nil on a failed flush would tell it.
func TestGroupCommitFlushErrorFansOut(t *testing.T) {
	dir := t.TempDir()
	// A very long window so the flush happens only when we force it.
	st, err := Open(dir, Options{Fsync: FsyncBatch, BatchLatency: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}

	enq := func(query string, actual float64) *Pending {
		q, err := xseed.ParseQuery(query)
		if err != nil {
			t.Fatal(err)
		}
		_, delta, applied := syn.FeedbackQueryDelta(q, actual)
		if !applied {
			t.Fatalf("feedback %s not applied", query)
		}
		p, err := st.AppendFeedbackEnq("fig2", delta)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1 := enq("/a/c/s", 5)
	p2 := enq("/a/c/p", 7)

	// Sabotage the log fd underneath the pending batch, then force the
	// flush directly (the committer would do the same at window end).
	s, err := st.syn("fig2")
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.log.Close()
	st.flushPendingLocked(s)
	s.mu.Unlock()

	err1, err2 := p1.Wait(), p2.Wait()
	if err1 == nil || err2 == nil {
		t.Fatalf("failed flush acked waiters: %v, %v", err1, err2)
	}
	if err1 != err2 {
		t.Errorf("waiters saw different errors: %v vs %v", err1, err2)
	}
	if !strings.Contains(err1.Error(), "batch") || !strings.Contains(err1.Error(), "fig2") {
		t.Errorf("flush error names neither the batch nor the synopsis: %v", err1)
	}
}

// TestGroupCommitStandbyLogByteIdentical: a standby fed through the
// replication path from a primary committing in batches ends with a
// delta log byte-identical to the primary's. Group commit changes WHEN
// bytes reach the file, never WHICH bytes — the record framing is
// self-delimiting, so concatenated batch writes are indistinguishable
// from record-at-a-time writes.
func TestGroupCommitStandbyLogByteIdentical(t *testing.T) {
	pdir, sdir := t.TempDir(), t.TempDir()
	p := openBatchStore(t, pdir, nil)
	syn := buildFig2(t)
	if err := p.SaveBase("fig2", syn, "test", time.Now(), 0, 1); err != nil {
		t.Fatal(err)
	}

	queries := []string{"/a/c/s/s/t", "/a/c/s", "/a/c/p", "/a/t"}
	var synMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				batchFeedback(t, p, &synMu, syn, queries[(w+i)%len(queries)], float64(1+i%9))
			}
		}(w)
	}
	wg.Wait()

	exp, err := p.ExportBase("fig2")
	if err != nil {
		t.Fatal(err)
	}
	seq, size, ok := p.Tail("fig2")
	if !ok || size == 0 {
		t.Fatalf("tail = (%d, %d, %v)", seq, size, ok)
	}
	seg, err := p.ReadSegment("fig2", seq, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	s := openStore(t, sdir)
	if _, err := s.ImportBase("fig2", exp.Seq, exp.Meta, exp.Data); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AppendSegment("fig2", seq, 0, seg); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	logBytes := func(dir string) []byte {
		matches, err := filepath.Glob(filepath.Join(dir, "synopses", "*", "*", deltaFile(seq)))
		if err != nil || len(matches) != 1 {
			t.Fatalf("delta log glob in %s = %v, %v", dir, matches, err)
		}
		b, err := os.ReadFile(matches[0])
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	pb, sb := logBytes(pdir), logBytes(sdir)
	if !bytes.Equal(pb, sb) {
		t.Fatalf("standby log diverges from batched primary: %d vs %d bytes", len(sb), len(pb))
	}
}
