package store

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"
)

// Compaction folds a synopsis's delta log into a fresh base snapshot so the
// log stays short and restart replay stays cheap. It works entirely from
// disk — the log is the source of truth for every mutation already applied
// in memory — so it never takes the serving registry's locks and runs
// concurrently with live traffic:
//
//  1. Under the synopsis's lock, note the current sequence N and the log
//     size L. Appends continue freely after.
//  2. Rebuild the synopsis from base-N plus the first L bytes of delta-N.log
//     and write it as base-(N+1) (temp + rename). This is the slow part and
//     holds no locks.
//  3. Under the lock again: copy whatever the log gained past L into
//     delta-(N+1).log, flip the manifest to sequence N+1 (the atomic commit
//     point), swap the append handle, and delete the old generation.
//
// A crash before the flip leaves generation N untouched (the new files are
// stale debris removed at next open); a crash after leaves generation N+1
// complete. No window loses or double-applies a delta.

// CompactNow compacts one synopsis immediately, regardless of ratio,
// reporting whether a fold actually happened: an empty delta log is skipped
// (false, nil) rather than folded.
func (st *Store) CompactNow(name string) (bool, error) {
	folded, err := st.compactNow(name)
	if err != nil {
		st.m.compactErrs.Inc()
	}
	return folded, err
}

func (st *Store) compactNow(name string) (bool, error) {
	s, err := st.syn(name)
	if err != nil {
		return false, err
	}
	start := time.Now()

	// genMu keeps SaveBase/Remove (and another CompactNow) from changing
	// the generation while this one is in flight; appends proceed under mu.
	s.genMu.Lock()
	defer s.genMu.Unlock()

	s.mu.Lock()
	if s.log == nil || s.logSize == 0 {
		s.mu.Unlock()
		return false, nil
	}
	s.compacting = true
	seq := s.seq
	limit := s.logSize
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.compacting = false
		s.mu.Unlock()
	}()

	st.manMu.Lock()
	me, ok := st.man.Synopses[name]
	var meCopy ManifestEntry
	if ok {
		meCopy = *me
	}
	st.manMu.Unlock()
	if !ok {
		return false, fmt.Errorf("store: compact %q: not in manifest", name)
	}

	// Step 2: rebuild from disk and write the next generation's base.
	syn, res, budget, err := loadFrom(s.dir, &meCopy, limit)
	if err != nil {
		return false, fmt.Errorf("store: compact %q: %w", name, err)
	}
	if res.Torn {
		// Open truncates torn tails before any append, so a live store's log
		// is never torn; seeing one here means the file changed under us.
		return false, fmt.Errorf("store: compact %q: log has a torn tail (%s); refusing", name, res.TornWhy)
	}
	newSeq := seq + 1
	baseN, err := writeBase(s.dir, newSeq, syn)
	if err != nil {
		return false, fmt.Errorf("store: compact %q: %w", name, err)
	}

	// Step 3: commit under the append lock. Queued group-commit records
	// flush into the old generation's log first, so they are part of the
	// suffix carried to the new one instead of stranded bytes.
	s.mu.Lock()
	defer s.mu.Unlock()
	st.flushPendingLocked(s)
	suffix := s.logSize - limit
	if err := copyLogSuffix(
		filepath.Join(s.dir, deltaFile(seq)), limit, suffix,
		filepath.Join(s.dir, deltaFile(newSeq)),
	); err != nil {
		os.Remove(filepath.Join(s.dir, baseFile(newSeq)))
		return false, fmt.Errorf("store: compact %q: carry log suffix: %w", name, err)
	}
	if err := st.flipManifest(name, &ManifestEntry{
		Dir:     meCopy.Dir,
		Tenant:  meCopy.Tenant,
		Name:    meCopy.Name,
		Seq:     newSeq,
		Source:  meCopy.Source,
		Created: meCopy.Created,
		Budget:  budget,
		Ver:     meCopy.Ver + uint64(res.Records),
	}); err != nil {
		os.Remove(filepath.Join(s.dir, baseFile(newSeq)))
		os.Remove(filepath.Join(s.dir, deltaFile(newSeq)))
		return false, fmt.Errorf("store: compact %q: %w", name, err)
	}
	s.seq = newSeq
	s.baseSize = baseN
	s.deltaCount -= int64(res.Records)
	s.compactions++
	if err := s.openLog(); err != nil {
		// The manifest already points at the new generation; leaving the old
		// handle open would silently append acknowledged mutations to a file
		// recovery will never read. Fail stop instead: with no open log,
		// every subsequent append errors loudly and the caller surfaces it.
		s.log.Close()
		s.log = nil
		s.logSize = 0
		return true, fmt.Errorf("store: compact %q: reopen log: %w", name, err)
	}
	os.Remove(filepath.Join(s.dir, baseFile(seq)))
	os.Remove(filepath.Join(s.dir, deltaFile(seq)))
	st.m.compactions.Inc()
	st.m.foldedBytes.Add(uint64(limit))
	st.m.compactNs.Observe(time.Since(start).Nanoseconds())
	st.opts.Log.Info("compacted delta log",
		"synopsis", name, "records", res.Records, "foldedBytes", limit,
		"seq", newSeq, "baseBytes", baseN, "carriedBytes", suffix)
	return true, nil
}

// copyLogSuffix writes src[off : off+n] to dst (temp + rename + fsync). The
// suffix always lies on a record boundary: off and the size were both
// observed under the append lock, and appends are whole-record writes.
func copyLogSuffix(src string, off, n int64, dst string) error {
	if n < 0 {
		return fmt.Errorf("negative suffix %d", n)
	}
	var data []byte
	if n > 0 {
		f, err := os.Open(src)
		if err != nil {
			return err
		}
		data = make([]byte, n)
		if _, err := f.ReadAt(data, off); err != nil && err != io.EOF {
			f.Close()
			return err
		}
		f.Close()
	}
	return writeFileAtomic(dst, data)
}

// maybeCompact compacts every synopsis whose delta log has outgrown the
// configured ratio of its base size. Errors are logged, not fatal — the next
// tick retries.
func (st *Store) maybeCompact() {
	st.mu.Lock()
	names := make([]string, 0, len(st.syns))
	for name := range st.syns {
		names = append(names, name)
	}
	st.mu.Unlock()
	for _, name := range names {
		s, err := st.syn(name)
		if err != nil {
			continue
		}
		s.mu.Lock()
		logSize, baseSize, busy := s.logSize, s.baseSize, s.compacting
		s.mu.Unlock()
		if busy || logSize < st.opts.CompactMinBytes {
			continue
		}
		if float64(logSize) <= st.opts.CompactRatio*float64(baseSize) {
			continue
		}
		if _, err := st.CompactNow(name); err != nil {
			// Logged with the synopsis, its live generation, and a typed
			// code — the next tick retries, but the operator can tell a
			// full disk from a vanished file without reading message text.
			s.mu.Lock()
			seq := s.seq
			s.mu.Unlock()
			st.opts.Log.Error("background compaction failed",
				"synopsis", name, "generation", seq, "code", errCode(err), "err", err)
		}
	}
}

// StartCompactor runs the background compactor until ctx is cancelled,
// checking ratios every interval (<= 0: a 15s default).
func (st *Store) StartCompactor(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 15 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			st.maybeCompact()
		}
	}
}
