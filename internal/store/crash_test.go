package store

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestCompactionConcurrentWithAppends hammers feedback appends while
// compactions run, then recovers from disk cold and checks the recovered
// synopsis estimates every fed-back query exactly like the live one: the
// suffix-carry in CompactNow must not lose or reorder records appended while
// a fold was in flight.
func TestCompactionConcurrentWithAppends(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}

	queries := []string{"/a/c/s/s/t", "/a/c/s", "/a/c/p", "/a/t", "/a/c/s/p", "/a/c/s/s", "/a/c/t", "/a/u"}
	var synMu sync.Mutex // plays the registry's entry lock: apply+append atomically
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := st.CompactNow("fig2"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	const workers, rounds = 4, 100
	var fwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		fwg.Add(1)
		go func(w int) {
			defer fwg.Done()
			for i := 0; i < rounds; i++ {
				q := queries[(w+i)%len(queries)]
				synMu.Lock()
				feedback(t, st, "fig2", syn, q, float64(1+(w*rounds+i)%13))
				synMu.Unlock()
			}
		}(w)
	}
	fwg.Wait()
	close(stop)
	wg.Wait()

	want := estimates(t, syn, queries...)
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if loaded[0].Torn {
		t.Error("live-process log reads as torn")
	}
	got := estimates(t, loaded[0].Syn, queries...)
	for i, q := range queries {
		if got[i] != want[i] {
			t.Errorf("%s: recovered %g, want %g", q, got[i], want[i])
		}
	}
}

// TestManyGenerations runs repeated compact/append cycles to shake out
// sequence bookkeeping across many generations.
func TestManyGenerations(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	syn := buildFig2(t)
	if err := st.SaveBase("fig2", syn, "test", time.Now(), 0, 0); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 10; g++ {
		feedback(t, st, "fig2", syn, "/a/c/s/s/t", float64(g+1))
		if folded, err := st.CompactNow("fig2"); err != nil || !folded {
			t.Fatalf("generation %d: folded=%v err=%v", g, folded, err)
		}
	}
	if seq := st.Stats().Synopses[0].Seq; seq != 11 {
		t.Errorf("seq = %d, want 11", seq)
	}
	want := estimates(t, syn, probeQueries...)
	st.Close()
	st2 := openStore(t, dir)
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	got := estimates(t, loaded[0].Syn, probeQueries...)
	for i := range probeQueries {
		if got[i] != want[i] {
			t.Errorf("%s: recovered %g, want %g", probeQueries[i], got[i], want[i])
		}
	}
}

// TestMultipleSynopses exercises the manifest with several entries and
// name→directory sanitization for hostile names.
func TestMultipleSynopses(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	names := []string{"plain", "with/slash", "with space", "../escape"}
	for i, name := range names {
		syn := buildFig2(t)
		if err := st.SaveBase(name, syn, fmt.Sprintf("src-%d", i), time.Now(), 0, 0); err != nil {
			t.Fatal(err)
		}
		feedback(t, st, name, syn, "/a/c/s/s/t", float64(i+2))
	}
	st.Close()

	st2 := openStore(t, dir)
	defer st2.Close()
	loaded, err := st2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(names) {
		t.Fatalf("recovered %d synopses, want %d", len(loaded), len(names))
	}
	byName := map[string]Loaded{}
	for _, l := range loaded {
		byName[l.Name] = l
	}
	for i, name := range names {
		l, ok := byName[name]
		if !ok {
			t.Errorf("missing %q", name)
			continue
		}
		got, err := l.Syn.Estimate("/a/c/s/s/t")
		if err != nil {
			t.Fatal(err)
		}
		if got != float64(i+2) {
			t.Errorf("%q: estimate %g, want %d", name, got, i+2)
		}
	}
}
