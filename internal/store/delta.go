package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"xseed"
)

// Delta log format: a sequence of self-delimiting records, each
//
//	length  uint32 LE   payload byte count
//	crc     uint32 LE   CRC-32 (IEEE) of the payload
//	payload []byte      JSON deltaRecord
//
// Records append in mutation order under the owning synopsis's lock, framed
// in a single O_APPEND write so a record is never interleaved or half-framed
// by a concurrent writer. A crash can still leave a torn tail (the final
// write cut short); replay treats any malformed tail — short header, short
// payload, CRC mismatch, implausible length — as the end of the log and
// reports how many bytes it trusted, which is exactly the prefix a restarted
// daemon resumes appending after.

const (
	recHeaderSize = 8
	// maxRecordLen bounds a single record (a subtree delta carries its XML
	// fragment inline; anything larger than this is corruption, not data).
	maxRecordLen = 64 << 20
)

// Delta ops.
const (
	opFeedback = "feedback"
	opAdd      = "subtree-add"
	opRemove   = "subtree-remove"
	opBudget   = "budget"
)

// deltaRecord is one persisted mutation. Exactly one op-specific field set
// is populated.
type deltaRecord struct {
	Op string `json:"op"`

	HET *xseed.HETDelta `json:"het,omitempty"` // opFeedback

	Context []string `json:"ctx,omitempty"` // opAdd / opRemove
	XML     string   `json:"xml,omitempty"`

	Bytes int `json:"bytes,omitempty"` // opBudget: SetBudget total
}

func encodeRecord(rec deltaRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	if len(payload) > maxRecordLen {
		// Replay rejects oversized records as corruption; writing one would
		// acknowledge a mutation that recovery then silently truncates away.
		// Fail the write loudly instead.
		return nil, fmt.Errorf("delta record %s: %d-byte payload exceeds the %d-byte record limit", rec.Op, len(payload), maxRecordLen)
	}
	buf := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderSize:], payload)
	return buf, nil
}

// applyRecord replays one delta onto a synopsis. Subtree replay re-parses
// the recorded XML fragment — deterministic, so recovered kernels are
// identical to the pre-crash ones.
func applyRecord(syn *xseed.Synopsis, rec deltaRecord) error {
	switch rec.Op {
	case opFeedback:
		if rec.HET == nil {
			return fmt.Errorf("feedback record without het delta")
		}
		syn.ApplyHETDelta(*rec.HET)
	case opAdd:
		return syn.AddSubtree(rec.Context, rec.XML)
	case opRemove:
		return syn.RemoveSubtree(rec.Context, rec.XML)
	case opBudget:
		syn.SetBudget(rec.Bytes)
	default:
		return fmt.Errorf("unknown delta op %q", rec.Op)
	}
	return nil
}

// replayResult reports what a log scan trusted and what it found after the
// trusted prefix.
type replayResult struct {
	Records  int   // valid records seen (and applied, when fn != nil)
	Good     int64 // bytes of trusted prefix
	Torn     bool  // the log ends in a malformed record
	TornWhy  string
	Trailing int64 // bytes beyond the trusted prefix
}

// scanLog reads records from r, calling fn for each valid one, stopping at
// limit bytes (<0: no limit) or the first malformed record. It never returns
// an error for a torn tail — that is expected after a crash — only for fn
// failures or I/O errors other than EOF.
func scanLog(r io.Reader, limit int64, fn func(deltaRecord) error) (replayResult, error) {
	var res replayResult
	var hdr [recHeaderSize]byte
	payload := make([]byte, 0, 256)
	for {
		if limit >= 0 && res.Good >= limit {
			return res, nil
		}
		n, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return res, nil
		}
		if err == io.ErrUnexpectedEOF {
			res.Torn, res.TornWhy, res.Trailing = true, "short record header", int64(n)
			return res, nil
		}
		if err != nil {
			return res, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:])
		want := binary.LittleEndian.Uint32(hdr[4:])
		if length > maxRecordLen {
			res.Torn, res.TornWhy, res.Trailing = true, fmt.Sprintf("implausible record length %d", length), recHeaderSize
			return res, nil
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		n, err = io.ReadFull(r, payload)
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			res.Torn, res.TornWhy, res.Trailing = true, "short record payload", recHeaderSize+int64(n)
			return res, nil
		}
		if err != nil {
			return res, err
		}
		if got := crc32.ChecksumIEEE(payload); got != want {
			res.Torn, res.TornWhy = true, fmt.Sprintf("checksum mismatch at offset %d", res.Good)
			res.Trailing = recHeaderSize + int64(length)
			return res, nil
		}
		var rec deltaRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			res.Torn, res.TornWhy = true, fmt.Sprintf("undecodable record at offset %d: %v", res.Good, err)
			res.Trailing = recHeaderSize + int64(length)
			return res, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return res, fmt.Errorf("replay record %d: %w", res.Records, err)
			}
		}
		res.Records++
		res.Good += recHeaderSize + int64(length)
	}
}

// scanLogFile is scanLog over a file path; a missing file is an empty log.
// Trailing counts everything in the file past the trusted prefix, not just
// the first malformed record.
func scanLogFile(path string, limit int64, fn func(deltaRecord) error) (replayResult, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return replayResult{}, nil
	}
	if err != nil {
		return replayResult{}, err
	}
	defer f.Close()
	res, err := scanLog(f, limit, fn)
	if err != nil {
		return res, err
	}
	if fi, serr := f.Stat(); serr == nil && fi.Size() > res.Good {
		res.Trailing = fi.Size() - res.Good
	}
	return res, err
}
