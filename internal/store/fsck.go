package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"xseed"
)

// FsckSynopsis is the validation result for one persisted synopsis.
type FsckSynopsis struct {
	Name         string   `json:"name"`
	Dir          string   `json:"dir"`
	Seq          uint64   `json:"seq"`
	BaseBytes    int64    `json:"baseBytes"`
	BaseOK       bool     `json:"baseOK"`
	BaseErr      string   `json:"baseErr,omitempty"`
	DeltaBytes   int64    `json:"deltaBytes"`
	DeltaRecords int      `json:"deltaRecords"`
	ReplayOK     bool     `json:"replayOK"`
	ReplayErr    string   `json:"replayErr,omitempty"`
	TornTail     bool     `json:"tornTail,omitempty"`
	TornWhy      string   `json:"tornWhy,omitempty"`
	Trailing     int64    `json:"trailingBytes,omitempty"`
	Stale        []string `json:"staleFiles,omitempty"`
}

// FsckReport is the result of validating a store directory.
type FsckReport struct {
	Dir      string         `json:"dir"`
	Synopses []FsckSynopsis `json:"synopses"`
	Orphans  []string       `json:"orphanDirs,omitempty"` // synopsis dirs no manifest entry claims

	// Migratable marks a healthy pre-tenancy (layout v1) store: not
	// corruption — the next daemon start upgrades it in place.
	Migratable bool `json:"migratable,omitempty"`

	OK bool `json:"ok"`
}

// Fsck validates a store directory without opening it for writing: the
// manifest parses, every synopsis's base snapshot loads, and its delta log
// replays record by record with checksums verified. A torn tail is reported
// but does not fail the check (recovery tolerates it by design); a base that
// won't load, a replay error, or corruption mid-log does.
func Fsck(dir string) (*FsckReport, error) {
	man, err := readManifest(dir)
	if err != nil {
		return nil, fmt.Errorf("store: fsck %s: %w", dir, err)
	}
	rep := &FsckReport{Dir: dir, OK: true, Migratable: man.Version == 1}
	claimed := make(map[string]bool)
	for _, name := range man.names() {
		me := man.Synopses[name]
		claimed[me.Dir] = true
		fs := FsckSynopsis{Name: name, Dir: me.Dir, Seq: me.Seq}
		sdir := filepath.Join(dir, "synopses", filepath.FromSlash(me.Dir))

		if fi, err := os.Stat(filepath.Join(sdir, baseFile(me.Seq))); err == nil {
			fs.BaseBytes = fi.Size()
		}
		syn, res, _, err := loadFrom(sdir, me, -1)
		if err != nil {
			// loadFrom fails either at the base or during replay; attribute
			// it by whether the base alone loads.
			if berr := checkBase(filepath.Join(sdir, baseFile(me.Seq))); berr != nil {
				fs.BaseErr = berr.Error()
			} else {
				fs.BaseOK = true
				fs.ReplayErr = err.Error()
			}
			rep.OK = false
		} else {
			fs.BaseOK = true
			fs.ReplayOK = true
			fs.DeltaRecords = res.Records
			fs.DeltaBytes = res.Good
			fs.TornTail = res.Torn
			fs.TornWhy = res.TornWhy
			fs.Trailing = res.Trailing
			_ = syn
		}
		if ents, err := os.ReadDir(sdir); err == nil {
			for _, e := range ents {
				n := e.Name()
				if n != baseFile(me.Seq) && n != deltaFile(me.Seq) {
					fs.Stale = append(fs.Stale, n)
				}
			}
		}
		rep.Synopses = append(rep.Synopses, fs)
	}
	if man.Version == 1 {
		// Pre-tenancy layout: synopsis dirs sit directly under synopses/.
		if ents, err := os.ReadDir(filepath.Join(dir, "synopses")); err == nil {
			for _, e := range ents {
				if e.IsDir() && !claimed[e.Name()] {
					rep.Orphans = append(rep.Orphans, e.Name())
				}
			}
		}
	} else {
		// Layout v2: synopses/<tenant>/<syndir>. A stray file at either
		// level, or a dir no manifest entry claims, is an orphan.
		root := filepath.Join(dir, "synopses")
		if ents, err := os.ReadDir(root); err == nil {
			for _, t := range ents {
				if !t.IsDir() {
					rep.Orphans = append(rep.Orphans, t.Name())
					continue
				}
				subs, err := os.ReadDir(filepath.Join(root, t.Name()))
				if err != nil {
					continue
				}
				for _, s := range subs {
					rel := t.Name() + "/" + s.Name()
					if !s.IsDir() || !claimed[rel] {
						rep.Orphans = append(rep.Orphans, rel)
					}
				}
			}
		}
	}
	sort.Strings(rep.Orphans)
	return rep, nil
}

func checkBase(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = xseed.ReadSynopsis(f)
	return err
}

// WriteReport prints a human-readable fsck report.
func (r *FsckReport) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "store %s: ", r.Dir)
	switch {
	case r.OK && r.Migratable:
		fmt.Fprintln(w, "OK (pre-tenancy layout, migratable — the next daemon start upgrades it in place)")
	case r.OK:
		fmt.Fprintln(w, "OK")
	default:
		fmt.Fprintln(w, "CORRUPT")
	}
	for _, s := range r.Synopses {
		status := "ok"
		switch {
		case !s.BaseOK:
			status = "BASE UNREADABLE: " + s.BaseErr
		case !s.ReplayOK:
			status = "REPLAY FAILED: " + s.ReplayErr
		case s.TornTail:
			status = fmt.Sprintf("ok (torn tail tolerated: %s, %d trailing bytes)", s.TornWhy, s.Trailing)
		}
		fmt.Fprintf(w, "  %-24s seq %-3d base %6dB  deltas %d (%dB)  %s\n",
			s.Name, s.Seq, s.BaseBytes, s.DeltaRecords, s.DeltaBytes, status)
		for _, st := range s.Stale {
			fmt.Fprintf(w, "    stale file: %s\n", st)
		}
	}
	for _, o := range r.Orphans {
		fmt.Fprintf(w, "  orphan dir (no manifest entry): synopses/%s\n", o)
	}
}
