package store

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// buildStandby replicates one synopsis into a fresh store directory via
// the replication apply path (ImportBase + AppendSegment) — the exact
// byte flow a warm standby receives — and returns the standby dir and
// the synopsis's directory inside it.
func buildStandby(t *testing.T) (standbyDir, synDir string, seq uint64) {
	t.Helper()
	pdir, sdir := t.TempDir(), t.TempDir()
	p := openStore(t, pdir)
	syn := buildFig2(t)
	if err := p.SaveBase("fig2", syn, "test", time.Now(), 0, 1); err != nil {
		t.Fatal(err)
	}
	feedback(t, p, "fig2", syn, "/a/c/s/s/t", 2)
	feedback(t, p, "fig2", syn, "/a/c/s[t]/p", 7)

	exp, err := p.ExportBase("fig2")
	if err != nil {
		t.Fatal(err)
	}
	seq, size, ok := p.Tail("fig2")
	if !ok || size == 0 {
		t.Fatalf("tail = (%d, %d, %v)", seq, size, ok)
	}
	segment, err := p.ReadSegment("fig2", seq, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	s := openStore(t, sdir)
	if _, err := s.ImportBase("fig2", exp.Seq, exp.Meta, exp.Data); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.AppendSegment("fig2", seq, 0, segment); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	matches, err := filepath.Glob(filepath.Join(sdir, "synopses", "*", "*", deltaFile(seq)))
	if err != nil || len(matches) != 1 {
		t.Fatalf("delta log glob = %v, %v", matches, err)
	}
	return sdir, filepath.Dir(matches[0]), seq
}

// TestFsckReplicatedStandbyClean: a standby built purely from replicated
// bytes passes fsck like any primary store.
func TestFsckReplicatedStandbyClean(t *testing.T) {
	sdir, _, _ := buildStandby(t)
	rep, err := Fsck(sdir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || len(rep.Synopses) != 1 || !rep.Synopses[0].ReplayOK {
		t.Fatalf("standby fsck = %+v", rep)
	}
	if rep.Synopses[0].DeltaRecords != 2 {
		t.Fatalf("delta records = %d, want 2", rep.Synopses[0].DeltaRecords)
	}
}

// TestFsckReplicatedStandbyTornTail: a standby killed mid-AppendSegment
// leaves a partial record at the log tail. Fsck must classify that as
// recoverable — a torn tail recovery truncates, exactly as on a primary
// killed mid-append — never as corruption.
func TestFsckReplicatedStandbyTornTail(t *testing.T) {
	sdir, synDir, seq := buildStandby(t)
	logPath := filepath.Join(synDir, deltaFile(seq))
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the middle of the last record: keep its length prefix and
	// checksum but lose part of the payload.
	if err := os.Truncate(logPath, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(sdir)
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.Synopses[0]
	if !rep.OK {
		t.Fatalf("torn standby tail reported corrupt: %+v", fs)
	}
	if !fs.TornTail || fs.Trailing == 0 {
		t.Fatalf("torn tail not reported: %+v", fs)
	}
	if fs.DeltaRecords != 1 {
		t.Fatalf("good records before the tear = %d, want 1", fs.DeltaRecords)
	}

	// And recovery agrees: the store opens and replays the good prefix
	// (the torn record is dropped, not fatal).
	s := openStore(t, sdir)
	defer s.Close()
	loaded, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 1 || loaded[0].Replay != 1 {
		t.Fatalf("recovery after torn standby tail = %+v", loaded)
	}
}

// TestFsckReplicatedStandbyStaleGeneration: after a base re-ship bumps
// the standby's generation, files of the superseded generation (a
// crashed cleanup, a kill -9 between rename and unlink) must fsck as
// stale — listed, recoverable — never as corruption of the live
// generation.
func TestFsckReplicatedStandbyStaleGeneration(t *testing.T) {
	sdir, synDir, seq := buildStandby(t)
	// Fabricate leftovers of a previous generation next to the live one.
	for _, name := range []string{baseFile(seq - 1), deltaFile(seq - 1)} {
		if err := os.WriteFile(filepath.Join(synDir, name), []byte("superseded"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := Fsck(sdir)
	if err != nil {
		t.Fatal(err)
	}
	fs := rep.Synopses[0]
	if !rep.OK || !fs.ReplayOK {
		t.Fatalf("stale generation flagged the standby corrupt: %+v", fs)
	}
	if len(fs.Stale) != 2 {
		t.Fatalf("stale files = %v, want the two superseded generation files", fs.Stale)
	}
	for _, st := range fs.Stale {
		if !strings.Contains(st, "-0") {
			t.Errorf("unexpected stale file %q", st)
		}
	}
}
