package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"
)

// manifestName is the store's root metadata file, rewritten atomically
// (tmp + rename) on registry-shape changes — synopsis add/replace/remove and
// compaction — never on per-mutation appends, which go to the delta logs.
const manifestName = "manifest.json"

// manifestVersion is the current (tenant-aware) layout. Version 1 — the
// pre-tenancy single-level layout — is still readable: Open migrates it in
// place (see migrateV1) and Fsck reports it as migratable.
const manifestVersion = 2

// DefaultTenant is the implicit tenant that owns every synopsis on an
// untenanted server and every pre-tenancy (layout v1) store entry.
const DefaultTenant = "default"

// Key builds the store/registry key for a (tenant, name) pair. The default
// tenant's key is the bare name, so a single-tenant deployment's keys are
// byte-identical to the pre-tenancy ones. Other tenants join with a NUL
// byte, which no valid synopsis name may contain (the API layer rejects
// it), so keys can never collide across tenants.
func Key(tenant, name string) string {
	if tenant == "" || tenant == DefaultTenant {
		return name
	}
	return tenant + "\x00" + name
}

// SplitKey inverts Key; a key without a NUL belongs to the default tenant.
func SplitKey(key string) (tenant, name string) {
	if i := strings.IndexByte(key, 0); i >= 0 {
		return key[:i], key[i+1:]
	}
	return DefaultTenant, key
}

// tenantDir maps a tenant ID onto its directory under <store>/synopses.
// Validated tenant IDs are filesystem-safe as-is; anything else (defense in
// depth against traversal or odd bytes) goes through the same sanitizer
// synopsis names use.
func tenantDir(tenant string) string {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if tenant[0] == '.' {
		return dirFor(tenant)
	}
	for i := 0; i < len(tenant); i++ {
		c := tenant[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return dirFor(tenant)
		}
	}
	return tenant
}

// Manifest is the durable registry: every synopsis the daemon must reload on
// start, with the snapshot sequence its files are named after.
type Manifest struct {
	Version  int                       `json:"version"`
	Synopses map[string]*ManifestEntry `json:"synopses"`
}

// ManifestEntry locates and describes one persisted synopsis.
type ManifestEntry struct {
	// Dir is the synopsis's directory under <store>/synopses, holding
	// base-<seq>.xsyn (a full snapshot in the versioned stream format) and
	// delta-<seq>.log (the append-only mutation log since that base). In
	// layout v2 it is the two-level "<tenant>/<sanitized>" relative path; in
	// a not-yet-migrated v1 manifest it is the single-level "<sanitized>".
	Dir string `json:"dir"`

	// Tenant and Name split the manifest key for non-default tenants (the
	// key itself joins them with a NUL). Both stay empty for the default
	// tenant, whose key is the bare synopsis name.
	Tenant string `json:"tenant,omitempty"`
	Name   string `json:"name,omitempty"`

	// Seq is the current snapshot sequence; compaction bumps it and retires
	// the previous base and log together.
	Seq uint64 `json:"seq"`

	Source  string    `json:"source"`
	Created time.Time `json:"created"`

	// Budget is the last SetBudget total applied when the base was written
	// (0 = never budgeted). Budget changes after the base are delta records.
	Budget int `json:"budget,omitempty"`

	// Ver is the synopsis's cache-scope version at the base; replayed delta
	// records each bump it by one, giving a durable monotonically-increasing
	// mutation count (diagnostic today — the estimate cache is per-process —
	// and the resume point if scope versions ever become externally visible).
	Ver uint64 `json:"ver,omitempty"`
}

func (m *Manifest) names() []string {
	out := make([]string, 0, len(m.Synopses))
	for n := range m.Synopses {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func readManifest(dir string) (*Manifest, error) {
	b, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("store: manifest: %w", err)
	}
	if m.Version != manifestVersion && m.Version != 1 {
		return nil, fmt.Errorf("store: manifest version %d (this build reads %d)", m.Version, manifestVersion)
	}
	if m.Synopses == nil {
		m.Synopses = make(map[string]*ManifestEntry)
	}
	return &m, nil
}

func writeManifest(dir string, m *Manifest) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return writeFileAtomic(filepath.Join(dir, manifestName), append(b, '\n'))
}

// writeFileAtomic writes data to path via a same-directory temp file, fsyncs,
// and renames into place, so readers (and crash recovery) only ever see the
// old contents or the complete new contents.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a machine
// crash, not only a process crash. Filesystems that reject fsync on
// directories are tolerated — rename ordering is all they offer.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}

// dirFor maps an arbitrary synopsis name onto a filesystem-safe directory
// name: a sanitized prefix for readability plus an fnv hash for uniqueness.
// The manifest records the mapping, so it never has to be inverted.
func dirFor(name string) string {
	safe := make([]byte, 0, len(name))
	for i := 0; i < len(name) && len(safe) < 40; i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	h := fnv.New32a()
	h.Write([]byte(name))
	return fmt.Sprintf("%s-%08x", safe, h.Sum32())
}

func baseFile(seq uint64) string  { return fmt.Sprintf("base-%d.xsyn", seq) }
func deltaFile(seq uint64) string { return fmt.Sprintf("delta-%d.log", seq) }
