package store

import (
	"errors"
	"io/fs"
	"syscall"

	"xseed/internal/obs"
)

// metrics is the store's observability surface: wait-free counters and
// histograms resolved once at Open, charged from the append/save/compact
// paths. With Options.Metrics unset they are obs.Disabled no-ops, so library
// users and tests pay nothing.
type metrics struct {
	appends      *obs.Counter   // xseed_store_appends_total
	appendBytes  *obs.Counter   // xseed_store_append_bytes_total
	appendNs     *obs.Histogram // xseed_store_append_seconds
	fsyncs       *obs.Counter   // xseed_store_fsyncs_total
	fsyncNs      *obs.Histogram // xseed_store_fsync_seconds
	batchEvents  *obs.Histogram // xseed_store_batch_events
	batchFlushNs *obs.Histogram // xseed_store_batch_flush_seconds
	baseSaves    *obs.Counter   // xseed_store_base_saves_total
	baseBytes    *obs.Counter   // xseed_store_base_save_bytes_total
	baseNs       *obs.Histogram // xseed_store_base_save_seconds
	compactions  *obs.Counter   // xseed_store_compactions_total
	compactNs    *obs.Histogram // xseed_store_compact_seconds
	foldedBytes  *obs.Counter   // xseed_store_compact_folded_bytes_total

	// save errors by path: op = append | base | compact. Children are
	// pre-resolved so error paths never take the vec's lock.
	appendErrs  *obs.Counter
	baseErrs    *obs.Counter
	compactErrs *obs.Counter
}

func newMetrics(om *obs.Registry) *metrics {
	seconds := obs.HistogramOpts{Scale: 1e9}
	errs := om.CounterVec("xseed_store_save_errors_total",
		"Persistence failures by path (append = delta-log write or fsync, base = full snapshot save, compact = log fold).",
		"op")
	return &metrics{
		appends: om.Counter("xseed_store_appends_total",
			"Delta-log records appended."),
		appendBytes: om.Counter("xseed_store_append_bytes_total",
			"Delta-log bytes appended."),
		appendNs: om.Histogram("xseed_store_append_seconds",
			"Delta-log append latency (write plus optional fsync).", seconds),
		fsyncs: om.Counter("xseed_store_fsyncs_total",
			"Delta-log fsyncs (only with -fsync)."),
		fsyncNs: om.Histogram("xseed_store_fsync_seconds",
			"Delta-log fsync latency.", seconds),
		batchEvents: om.Histogram("xseed_store_batch_events",
			"Records per group-commit flush (-store-fsync=batch): the batch factor by which fsyncs/event drops.", obs.HistogramOpts{}),
		batchFlushNs: om.Histogram("xseed_store_batch_flush_seconds",
			"Group-commit flush latency (batched write plus one fsync).", seconds),
		baseSaves: om.Counter("xseed_store_base_saves_total",
			"Full base snapshots written (register, snapshot upload, compaction)."),
		baseBytes: om.Counter("xseed_store_base_save_bytes_total",
			"Bytes written into base snapshots."),
		baseNs: om.Histogram("xseed_store_base_save_seconds",
			"Base snapshot save latency (serialize + fsync + rename).", seconds),
		compactions: om.Counter("xseed_store_compactions_total",
			"Delta logs folded into fresh base snapshots."),
		compactNs: om.Histogram("xseed_store_compact_seconds",
			"Compaction latency (rebuild, write, manifest flip).", seconds),
		foldedBytes: om.Counter("xseed_store_compact_folded_bytes_total",
			"Delta-log bytes folded away by compaction."),
		appendErrs:  errs.With("append"),
		baseErrs:    errs.With("base"),
		compactErrs: errs.With("compact"),
	}
}

// errCode classifies a persistence error for structured logs: a stable,
// grep-able token instead of platform-specific message text.
func errCode(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, syscall.ENOSPC):
		return "no_space"
	case errors.Is(err, fs.ErrPermission):
		return "permission"
	case errors.Is(err, fs.ErrNotExist):
		return "not_found"
	case errors.Is(err, fs.ErrClosed):
		return "closed"
	default:
		return "io"
	}
}
