package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// downgradeToV1 rewrites an on-disk store to the pre-tenancy layout: every
// default-tenant synopsis directory moves from synopses/default/<dir> back
// to synopses/<dir>, and the manifest is rewritten as version 1 with
// single-level Dir entries. This is exactly what a store written by a
// pre-tenancy daemon looks like, so opening it exercises the real
// migration path.
func downgradeToV1(t *testing.T, dir string) {
	t.Helper()
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for key, me := range man.Synopses {
		rel, ok := strings.CutPrefix(me.Dir, DefaultTenant+"/")
		if !ok {
			t.Fatalf("fixture %q is not a default-tenant entry: dir %q", key, me.Dir)
		}
		if err := os.Rename(
			filepath.Join(dir, "synopses", DefaultTenant, rel),
			filepath.Join(dir, "synopses", rel)); err != nil {
			t.Fatal(err)
		}
		me.Dir = rel
	}
	os.Remove(filepath.Join(dir, "synopses", DefaultTenant))
	man.Version = 1
	if err := writeManifest(dir, man); err != nil {
		t.Fatal(err)
	}
}

// seedV1Store builds a two-synopsis pre-tenancy store with feedback deltas
// on top of the bases, returning the expected probe estimates per name.
func seedV1Store(t *testing.T, dir string) map[string][]float64 {
	t.Helper()
	st := openStore(t, dir)
	want := make(map[string][]float64)
	for _, name := range []string{"alpha", "beta"} {
		syn := buildFig2(t)
		if err := st.SaveBase(name, syn, "test", time.Now(), 0, 0); err != nil {
			t.Fatal(err)
		}
		feedback(t, st, name, syn, "/a/c/s/s/t", 4)
		feedback(t, st, name, syn, "/a/c/s[t]/p", 9)
		want[name] = estimates(t, syn, probeQueries...)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	downgradeToV1(t, dir)
	return want
}

// verifyMigrated opens the store, asserts the v2 layout is in place, and
// checks every synopsis recovered with its deltas replayed.
func verifyMigrated(t *testing.T, dir string, want map[string][]float64) {
	t.Helper()
	st := openStore(t, dir)
	defer st.Close()
	loaded, err := st.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(want) {
		t.Fatalf("loaded %d synopses, want %d", len(loaded), len(want))
	}
	for _, l := range loaded {
		exp, ok := want[l.Name]
		if !ok {
			t.Fatalf("unexpected synopsis %q after migration", l.Name)
		}
		if l.Replay != 2 {
			t.Errorf("%s: replayed %d deltas, want 2", l.Name, l.Replay)
		}
		got := estimates(t, l.Syn, probeQueries...)
		for i, q := range probeQueries {
			if got[i] != exp[i] {
				t.Errorf("%s %s: migrated estimate %g, want %g", l.Name, q, got[i], exp[i])
			}
		}
	}
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if man.Version != manifestVersion {
		t.Errorf("manifest version after migration = %d, want %d", man.Version, manifestVersion)
	}
	for key, me := range man.Synopses {
		if !strings.HasPrefix(me.Dir, DefaultTenant+"/") {
			t.Errorf("entry %q not under the default tenant: dir %q", key, me.Dir)
		}
		if fi, err := os.Stat(filepath.Join(dir, "synopses", filepath.FromSlash(me.Dir))); err != nil || !fi.IsDir() {
			t.Errorf("entry %q directory missing at %s: %v", key, me.Dir, err)
		}
	}
}

// TestMigrateV1 locks the first-boot upgrade: opening a pre-tenancy store
// moves every synopsis under the default tenant, flips the manifest to v2,
// and loses nothing — bases, delta logs, and replay all intact.
func TestMigrateV1(t *testing.T) {
	dir := t.TempDir()
	want := seedV1Store(t, dir)
	verifyMigrated(t, dir, want)
	// A second open is a plain v2 open: migration is a one-time cost.
	verifyMigrated(t, dir, want)
}

// TestMigrateV1CrashResume simulates kill -9 mid-migration. The migration
// order is: rename synopsis dirs (idempotent), then write the v2 manifest
// as the single commit point. A crash between those leaves some dirs moved
// under a still-v1 manifest; reopening must resume — skipping dirs already
// at their new home — and complete the flip with no data loss.
func TestMigrateV1CrashResume(t *testing.T) {
	dir := t.TempDir()
	want := seedV1Store(t, dir)

	// Crash simulation: one of the two synopsis dirs already moved, the
	// manifest still at version 1 (the flip never happened).
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	moved := false
	if err := os.MkdirAll(filepath.Join(dir, "synopses", DefaultTenant), 0o755); err != nil {
		t.Fatal(err)
	}
	for _, me := range man.Synopses {
		if moved {
			break
		}
		if err := os.Rename(
			filepath.Join(dir, "synopses", me.Dir),
			filepath.Join(dir, "synopses", DefaultTenant, me.Dir)); err != nil {
			t.Fatal(err)
		}
		moved = true
	}
	if !moved {
		t.Fatal("fixture store has no synopses to half-migrate")
	}

	verifyMigrated(t, dir, want)
}

// TestMigrateV1MissingDirRefused: a v1 manifest entry whose directory
// exists at neither the old nor the new home is pre-existing damage; the
// migration must refuse loudly instead of silently dropping the synopsis.
func TestMigrateV1MissingDirRefused(t *testing.T) {
	dir := t.TempDir()
	seedV1Store(t, dir)
	man, err := readManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, me := range man.Synopses {
		if err := os.RemoveAll(filepath.Join(dir, "synopses", me.Dir)); err != nil {
			t.Fatal(err)
		}
		break
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("open with a vanished synopsis dir = %v, want refusal naming the missing dir", err)
	}
}

// TestFsckMigratable: fsck on a healthy pre-tenancy store reports it OK and
// migratable — never corrupt — and the human-readable report says so. The
// same store, once opened (and so migrated), fscks as a plain OK v2 store.
func TestFsckMigratable(t *testing.T) {
	dir := t.TempDir()
	want := seedV1Store(t, dir)

	rep, err := Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || !rep.Migratable {
		b, _ := json.Marshal(rep)
		t.Fatalf("v1 fsck: ok=%v migratable=%v (%s), want a healthy migratable store", rep.OK, rep.Migratable, b)
	}
	if len(rep.Orphans) != 0 {
		t.Errorf("v1 fsck reports orphans %v; pre-tenancy dirs must be claimed by their entries", rep.Orphans)
	}
	var buf bytes.Buffer
	rep.WriteReport(&buf)
	if out := buf.String(); !strings.Contains(out, "migratable") || strings.Contains(out, "CORRUPT") {
		t.Errorf("fsck report %q does not describe a migratable store", out)
	}

	verifyMigrated(t, dir, want) // daemon boot migrates...
	rep, err = Fsck(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.Migratable || len(rep.Orphans) != 0 {
		t.Errorf("post-migration fsck: ok=%v migratable=%v orphans=%v, want plain OK v2", rep.OK, rep.Migratable, rep.Orphans)
	}
}
